file(REMOVE_RECURSE
  "CMakeFiles/bench_analyzer_throughput.dir/bench_analyzer_throughput.cc.o"
  "CMakeFiles/bench_analyzer_throughput.dir/bench_analyzer_throughput.cc.o.d"
  "bench_analyzer_throughput"
  "bench_analyzer_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_analyzer_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
