file(REMOVE_RECURSE
  "CMakeFiles/bench_optimizer_effect.dir/bench_optimizer_effect.cc.o"
  "CMakeFiles/bench_optimizer_effect.dir/bench_optimizer_effect.cc.o.d"
  "bench_optimizer_effect"
  "bench_optimizer_effect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_optimizer_effect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
