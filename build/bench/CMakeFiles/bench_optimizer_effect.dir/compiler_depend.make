# Empty compiler generated dependencies file for bench_optimizer_effect.
# This may be replaced when dependencies are built.
