file(REMOVE_RECURSE
  "CMakeFiles/bench_conversion_coverage.dir/bench_conversion_coverage.cc.o"
  "CMakeFiles/bench_conversion_coverage.dir/bench_conversion_coverage.cc.o.d"
  "bench_conversion_coverage"
  "bench_conversion_coverage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_conversion_coverage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
