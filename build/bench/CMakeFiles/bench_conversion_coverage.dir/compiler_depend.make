# Empty compiler generated dependencies file for bench_conversion_coverage.
# This may be replaced when dependencies are built.
