# Empty compiler generated dependencies file for bench_data_translation.
# This may be replaced when dependencies are built.
