file(REMOVE_RECURSE
  "CMakeFiles/bench_data_translation.dir/bench_data_translation.cc.o"
  "CMakeFiles/bench_data_translation.dir/bench_data_translation.cc.o.d"
  "bench_data_translation"
  "bench_data_translation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_data_translation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
