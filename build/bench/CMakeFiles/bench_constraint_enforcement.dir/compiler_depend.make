# Empty compiler generated dependencies file for bench_constraint_enforcement.
# This may be replaced when dependencies are built.
