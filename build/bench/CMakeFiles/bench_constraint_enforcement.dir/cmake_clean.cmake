file(REMOVE_RECURSE
  "CMakeFiles/bench_constraint_enforcement.dir/bench_constraint_enforcement.cc.o"
  "CMakeFiles/bench_constraint_enforcement.dir/bench_constraint_enforcement.cc.o.d"
  "bench_constraint_enforcement"
  "bench_constraint_enforcement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_constraint_enforcement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
