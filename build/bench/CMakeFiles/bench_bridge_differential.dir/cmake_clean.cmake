file(REMOVE_RECURSE
  "CMakeFiles/bench_bridge_differential.dir/bench_bridge_differential.cc.o"
  "CMakeFiles/bench_bridge_differential.dir/bench_bridge_differential.cc.o.d"
  "bench_bridge_differential"
  "bench_bridge_differential.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_bridge_differential.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
