# Empty dependencies file for bench_strategy_overhead.
# This may be replaced when dependencies are built.
