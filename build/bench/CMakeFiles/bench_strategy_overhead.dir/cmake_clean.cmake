file(REMOVE_RECURSE
  "CMakeFiles/bench_strategy_overhead.dir/bench_strategy_overhead.cc.o"
  "CMakeFiles/bench_strategy_overhead.dir/bench_strategy_overhead.cc.o.d"
  "bench_strategy_overhead"
  "bench_strategy_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_strategy_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
