file(REMOVE_RECURSE
  "CMakeFiles/application_system.dir/application_system.cpp.o"
  "CMakeFiles/application_system.dir/application_system.cpp.o.d"
  "application_system"
  "application_system.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/application_system.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
