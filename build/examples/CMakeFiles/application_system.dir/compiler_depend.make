# Empty compiler generated dependencies file for application_system.
# This may be replaced when dependencies are built.
