file(REMOVE_RECURSE
  "CMakeFiles/school_constraints.dir/school_constraints.cpp.o"
  "CMakeFiles/school_constraints.dir/school_constraints.cpp.o.d"
  "school_constraints"
  "school_constraints.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/school_constraints.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
