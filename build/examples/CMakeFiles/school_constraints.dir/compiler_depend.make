# Empty compiler generated dependencies file for school_constraints.
# This may be replaced when dependencies are built.
