file(REMOVE_RECURSE
  "CMakeFiles/emulation_vs_rewrite.dir/emulation_vs_rewrite.cpp.o"
  "CMakeFiles/emulation_vs_rewrite.dir/emulation_vs_rewrite.cpp.o.d"
  "emulation_vs_rewrite"
  "emulation_vs_rewrite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emulation_vs_rewrite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
