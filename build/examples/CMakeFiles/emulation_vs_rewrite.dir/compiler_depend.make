# Empty compiler generated dependencies file for emulation_vs_rewrite.
# This may be replaced when dependencies are built.
