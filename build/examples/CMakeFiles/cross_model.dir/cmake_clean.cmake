file(REMOVE_RECURSE
  "CMakeFiles/cross_model.dir/cross_model.cpp.o"
  "CMakeFiles/cross_model.dir/cross_model.cpp.o.d"
  "cross_model"
  "cross_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cross_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
