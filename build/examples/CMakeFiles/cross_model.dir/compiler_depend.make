# Empty compiler generated dependencies file for cross_model.
# This may be replaced when dependencies are built.
