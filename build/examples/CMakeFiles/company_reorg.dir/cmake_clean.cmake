file(REMOVE_RECURSE
  "CMakeFiles/company_reorg.dir/company_reorg.cpp.o"
  "CMakeFiles/company_reorg.dir/company_reorg.cpp.o.d"
  "company_reorg"
  "company_reorg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/company_reorg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
