# Empty compiler generated dependencies file for company_reorg.
# This may be replaced when dependencies are built.
