file(REMOVE_RECURSE
  "libdbpc_common.a"
)
