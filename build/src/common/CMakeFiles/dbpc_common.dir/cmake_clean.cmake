file(REMOVE_RECURSE
  "CMakeFiles/dbpc_common.dir/lexer.cc.o"
  "CMakeFiles/dbpc_common.dir/lexer.cc.o.d"
  "CMakeFiles/dbpc_common.dir/status.cc.o"
  "CMakeFiles/dbpc_common.dir/status.cc.o.d"
  "CMakeFiles/dbpc_common.dir/string_util.cc.o"
  "CMakeFiles/dbpc_common.dir/string_util.cc.o.d"
  "CMakeFiles/dbpc_common.dir/trace.cc.o"
  "CMakeFiles/dbpc_common.dir/trace.cc.o.d"
  "CMakeFiles/dbpc_common.dir/value.cc.o"
  "CMakeFiles/dbpc_common.dir/value.cc.o.d"
  "libdbpc_common.a"
  "libdbpc_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbpc_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
