# Empty dependencies file for dbpc_common.
# This may be replaced when dependencies are built.
