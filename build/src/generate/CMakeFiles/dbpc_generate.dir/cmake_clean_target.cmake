file(REMOVE_RECURSE
  "libdbpc_generate.a"
)
