file(REMOVE_RECURSE
  "CMakeFiles/dbpc_generate.dir/generator.cc.o"
  "CMakeFiles/dbpc_generate.dir/generator.cc.o.d"
  "libdbpc_generate.a"
  "libdbpc_generate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbpc_generate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
