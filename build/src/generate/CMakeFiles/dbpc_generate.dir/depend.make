# Empty dependencies file for dbpc_generate.
# This may be replaced when dependencies are built.
