file(REMOVE_RECURSE
  "CMakeFiles/dbpc_schema.dir/ddl_parser.cc.o"
  "CMakeFiles/dbpc_schema.dir/ddl_parser.cc.o.d"
  "CMakeFiles/dbpc_schema.dir/schema.cc.o"
  "CMakeFiles/dbpc_schema.dir/schema.cc.o.d"
  "libdbpc_schema.a"
  "libdbpc_schema.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbpc_schema.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
