# Empty compiler generated dependencies file for dbpc_schema.
# This may be replaced when dependencies are built.
