file(REMOVE_RECURSE
  "libdbpc_schema.a"
)
