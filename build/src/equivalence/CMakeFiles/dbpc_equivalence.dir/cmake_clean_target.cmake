file(REMOVE_RECURSE
  "libdbpc_equivalence.a"
)
