# Empty compiler generated dependencies file for dbpc_equivalence.
# This may be replaced when dependencies are built.
