file(REMOVE_RECURSE
  "CMakeFiles/dbpc_equivalence.dir/checker.cc.o"
  "CMakeFiles/dbpc_equivalence.dir/checker.cc.o.d"
  "libdbpc_equivalence.a"
  "libdbpc_equivalence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbpc_equivalence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
