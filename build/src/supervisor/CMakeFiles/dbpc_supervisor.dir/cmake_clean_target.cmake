file(REMOVE_RECURSE
  "libdbpc_supervisor.a"
)
