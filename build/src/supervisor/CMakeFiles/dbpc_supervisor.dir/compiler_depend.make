# Empty compiler generated dependencies file for dbpc_supervisor.
# This may be replaced when dependencies are built.
