file(REMOVE_RECURSE
  "CMakeFiles/dbpc_supervisor.dir/supervisor.cc.o"
  "CMakeFiles/dbpc_supervisor.dir/supervisor.cc.o.d"
  "libdbpc_supervisor.a"
  "libdbpc_supervisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbpc_supervisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
