# Empty compiler generated dependencies file for dbpc_lang.
# This may be replaced when dependencies are built.
