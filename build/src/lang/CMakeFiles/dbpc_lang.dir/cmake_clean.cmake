file(REMOVE_RECURSE
  "CMakeFiles/dbpc_lang.dir/ast.cc.o"
  "CMakeFiles/dbpc_lang.dir/ast.cc.o.d"
  "CMakeFiles/dbpc_lang.dir/interpreter.cc.o"
  "CMakeFiles/dbpc_lang.dir/interpreter.cc.o.d"
  "CMakeFiles/dbpc_lang.dir/parser.cc.o"
  "CMakeFiles/dbpc_lang.dir/parser.cc.o.d"
  "libdbpc_lang.a"
  "libdbpc_lang.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbpc_lang.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
