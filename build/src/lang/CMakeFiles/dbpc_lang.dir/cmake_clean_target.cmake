file(REMOVE_RECURSE
  "libdbpc_lang.a"
)
