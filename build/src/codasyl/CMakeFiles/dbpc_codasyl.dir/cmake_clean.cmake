file(REMOVE_RECURSE
  "CMakeFiles/dbpc_codasyl.dir/machine.cc.o"
  "CMakeFiles/dbpc_codasyl.dir/machine.cc.o.d"
  "libdbpc_codasyl.a"
  "libdbpc_codasyl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbpc_codasyl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
