# Empty compiler generated dependencies file for dbpc_codasyl.
# This may be replaced when dependencies are built.
