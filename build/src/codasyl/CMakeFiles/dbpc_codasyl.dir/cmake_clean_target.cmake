file(REMOVE_RECURSE
  "libdbpc_codasyl.a"
)
