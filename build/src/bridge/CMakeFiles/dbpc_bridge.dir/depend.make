# Empty dependencies file for dbpc_bridge.
# This may be replaced when dependencies are built.
