file(REMOVE_RECURSE
  "CMakeFiles/dbpc_bridge.dir/bridge.cc.o"
  "CMakeFiles/dbpc_bridge.dir/bridge.cc.o.d"
  "libdbpc_bridge.a"
  "libdbpc_bridge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbpc_bridge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
