file(REMOVE_RECURSE
  "libdbpc_bridge.a"
)
