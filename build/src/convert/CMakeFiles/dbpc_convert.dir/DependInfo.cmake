
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/convert/converter.cc" "src/convert/CMakeFiles/dbpc_convert.dir/converter.cc.o" "gcc" "src/convert/CMakeFiles/dbpc_convert.dir/converter.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analyze/CMakeFiles/dbpc_analyze.dir/DependInfo.cmake"
  "/root/repo/build/src/restructure/CMakeFiles/dbpc_restructure.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/dbpc_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/lang/CMakeFiles/dbpc_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/codasyl/CMakeFiles/dbpc_codasyl.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/dbpc_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/schema/CMakeFiles/dbpc_schema.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/dbpc_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dbpc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
