file(REMOVE_RECURSE
  "CMakeFiles/dbpc_convert.dir/converter.cc.o"
  "CMakeFiles/dbpc_convert.dir/converter.cc.o.d"
  "libdbpc_convert.a"
  "libdbpc_convert.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbpc_convert.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
