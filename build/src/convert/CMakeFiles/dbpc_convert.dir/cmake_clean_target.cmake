file(REMOVE_RECURSE
  "libdbpc_convert.a"
)
