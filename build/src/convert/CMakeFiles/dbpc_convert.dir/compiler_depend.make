# Empty compiler generated dependencies file for dbpc_convert.
# This may be replaced when dependencies are built.
