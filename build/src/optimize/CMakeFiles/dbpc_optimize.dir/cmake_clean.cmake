file(REMOVE_RECURSE
  "CMakeFiles/dbpc_optimize.dir/optimizer.cc.o"
  "CMakeFiles/dbpc_optimize.dir/optimizer.cc.o.d"
  "libdbpc_optimize.a"
  "libdbpc_optimize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbpc_optimize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
