# Empty compiler generated dependencies file for dbpc_optimize.
# This may be replaced when dependencies are built.
