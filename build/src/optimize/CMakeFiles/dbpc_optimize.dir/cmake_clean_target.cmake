file(REMOVE_RECURSE
  "libdbpc_optimize.a"
)
