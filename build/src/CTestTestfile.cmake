# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("schema")
subdirs("storage")
subdirs("engine")
subdirs("codasyl")
subdirs("lang")
subdirs("ir")
subdirs("analyze")
subdirs("restructure")
subdirs("convert")
subdirs("optimize")
subdirs("generate")
subdirs("equivalence")
subdirs("supervisor")
subdirs("emulate")
subdirs("bridge")
subdirs("relational")
subdirs("hierarchical")
subdirs("corpus")
