# Empty dependencies file for dbpc_storage.
# This may be replaced when dependencies are built.
