file(REMOVE_RECURSE
  "libdbpc_storage.a"
)
