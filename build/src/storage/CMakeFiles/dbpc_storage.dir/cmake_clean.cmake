file(REMOVE_RECURSE
  "CMakeFiles/dbpc_storage.dir/store.cc.o"
  "CMakeFiles/dbpc_storage.dir/store.cc.o.d"
  "libdbpc_storage.a"
  "libdbpc_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbpc_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
