file(REMOVE_RECURSE
  "CMakeFiles/dbpc_corpus.dir/corpus.cc.o"
  "CMakeFiles/dbpc_corpus.dir/corpus.cc.o.d"
  "libdbpc_corpus.a"
  "libdbpc_corpus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbpc_corpus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
