file(REMOVE_RECURSE
  "libdbpc_corpus.a"
)
