# Empty compiler generated dependencies file for dbpc_corpus.
# This may be replaced when dependencies are built.
