file(REMOVE_RECURSE
  "libdbpc_emulate.a"
)
