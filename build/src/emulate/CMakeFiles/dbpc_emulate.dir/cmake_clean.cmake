file(REMOVE_RECURSE
  "CMakeFiles/dbpc_emulate.dir/emulator.cc.o"
  "CMakeFiles/dbpc_emulate.dir/emulator.cc.o.d"
  "libdbpc_emulate.a"
  "libdbpc_emulate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbpc_emulate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
