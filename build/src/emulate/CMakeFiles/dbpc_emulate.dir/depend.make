# Empty dependencies file for dbpc_emulate.
# This may be replaced when dependencies are built.
