# Empty dependencies file for dbpc_hierarchical.
# This may be replaced when dependencies are built.
