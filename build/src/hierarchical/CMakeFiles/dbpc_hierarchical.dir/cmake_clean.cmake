file(REMOVE_RECURSE
  "CMakeFiles/dbpc_hierarchical.dir/hierarchical.cc.o"
  "CMakeFiles/dbpc_hierarchical.dir/hierarchical.cc.o.d"
  "libdbpc_hierarchical.a"
  "libdbpc_hierarchical.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbpc_hierarchical.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
