file(REMOVE_RECURSE
  "libdbpc_hierarchical.a"
)
