file(REMOVE_RECURSE
  "libdbpc_ir.a"
)
