file(REMOVE_RECURSE
  "CMakeFiles/dbpc_ir.dir/access_pattern.cc.o"
  "CMakeFiles/dbpc_ir.dir/access_pattern.cc.o.d"
  "CMakeFiles/dbpc_ir.dir/compile.cc.o"
  "CMakeFiles/dbpc_ir.dir/compile.cc.o.d"
  "libdbpc_ir.a"
  "libdbpc_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbpc_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
