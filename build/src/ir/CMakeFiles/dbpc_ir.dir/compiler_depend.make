# Empty compiler generated dependencies file for dbpc_ir.
# This may be replaced when dependencies are built.
