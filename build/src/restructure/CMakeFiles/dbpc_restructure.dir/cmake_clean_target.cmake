file(REMOVE_RECURSE
  "libdbpc_restructure.a"
)
