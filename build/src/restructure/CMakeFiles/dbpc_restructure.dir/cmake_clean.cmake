file(REMOVE_RECURSE
  "CMakeFiles/dbpc_restructure.dir/data_copy.cc.o"
  "CMakeFiles/dbpc_restructure.dir/data_copy.cc.o.d"
  "CMakeFiles/dbpc_restructure.dir/plan_parser.cc.o"
  "CMakeFiles/dbpc_restructure.dir/plan_parser.cc.o.d"
  "CMakeFiles/dbpc_restructure.dir/rewrite_util.cc.o"
  "CMakeFiles/dbpc_restructure.dir/rewrite_util.cc.o.d"
  "CMakeFiles/dbpc_restructure.dir/transformation.cc.o"
  "CMakeFiles/dbpc_restructure.dir/transformation.cc.o.d"
  "CMakeFiles/dbpc_restructure.dir/transformation_misc.cc.o"
  "CMakeFiles/dbpc_restructure.dir/transformation_misc.cc.o.d"
  "CMakeFiles/dbpc_restructure.dir/transformation_split.cc.o"
  "CMakeFiles/dbpc_restructure.dir/transformation_split.cc.o.d"
  "CMakeFiles/dbpc_restructure.dir/transformation_structural.cc.o"
  "CMakeFiles/dbpc_restructure.dir/transformation_structural.cc.o.d"
  "libdbpc_restructure.a"
  "libdbpc_restructure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbpc_restructure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
