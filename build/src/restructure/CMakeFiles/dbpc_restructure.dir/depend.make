# Empty dependencies file for dbpc_restructure.
# This may be replaced when dependencies are built.
