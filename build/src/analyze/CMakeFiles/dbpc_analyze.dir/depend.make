# Empty dependencies file for dbpc_analyze.
# This may be replaced when dependencies are built.
