file(REMOVE_RECURSE
  "CMakeFiles/dbpc_analyze.dir/advisor.cc.o"
  "CMakeFiles/dbpc_analyze.dir/advisor.cc.o.d"
  "CMakeFiles/dbpc_analyze.dir/analyzer.cc.o"
  "CMakeFiles/dbpc_analyze.dir/analyzer.cc.o.d"
  "libdbpc_analyze.a"
  "libdbpc_analyze.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbpc_analyze.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
