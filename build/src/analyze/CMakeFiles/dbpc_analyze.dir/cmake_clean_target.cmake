file(REMOVE_RECURSE
  "libdbpc_analyze.a"
)
