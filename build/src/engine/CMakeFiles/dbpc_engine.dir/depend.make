# Empty dependencies file for dbpc_engine.
# This may be replaced when dependencies are built.
