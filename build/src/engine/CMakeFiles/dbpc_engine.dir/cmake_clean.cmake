file(REMOVE_RECURSE
  "CMakeFiles/dbpc_engine.dir/database.cc.o"
  "CMakeFiles/dbpc_engine.dir/database.cc.o.d"
  "CMakeFiles/dbpc_engine.dir/find_query.cc.o"
  "CMakeFiles/dbpc_engine.dir/find_query.cc.o.d"
  "CMakeFiles/dbpc_engine.dir/predicate.cc.o"
  "CMakeFiles/dbpc_engine.dir/predicate.cc.o.d"
  "CMakeFiles/dbpc_engine.dir/textio.cc.o"
  "CMakeFiles/dbpc_engine.dir/textio.cc.o.d"
  "libdbpc_engine.a"
  "libdbpc_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbpc_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
