file(REMOVE_RECURSE
  "libdbpc_engine.a"
)
