file(REMOVE_RECURSE
  "libdbpc_relational.a"
)
