# Empty compiler generated dependencies file for dbpc_relational.
# This may be replaced when dependencies are built.
