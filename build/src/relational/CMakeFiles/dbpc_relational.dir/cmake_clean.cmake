file(REMOVE_RECURSE
  "CMakeFiles/dbpc_relational.dir/relational.cc.o"
  "CMakeFiles/dbpc_relational.dir/relational.cc.o.d"
  "libdbpc_relational.a"
  "libdbpc_relational.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbpc_relational.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
