file(REMOVE_RECURSE
  "CMakeFiles/school_conversion_test.dir/school_conversion_test.cc.o"
  "CMakeFiles/school_conversion_test.dir/school_conversion_test.cc.o.d"
  "school_conversion_test"
  "school_conversion_test.pdb"
  "school_conversion_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/school_conversion_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
