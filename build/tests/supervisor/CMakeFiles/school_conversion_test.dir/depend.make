# Empty dependencies file for school_conversion_test.
# This may be replaced when dependencies are built.
