# CMake generated Testfile for 
# Source directory: /root/repo/tests/supervisor
# Build directory: /root/repo/build/tests/supervisor
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/supervisor/supervisor_test[1]_include.cmake")
include("/root/repo/build/tests/supervisor/school_conversion_test[1]_include.cmake")
