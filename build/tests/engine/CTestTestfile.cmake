# CMake generated Testfile for 
# Source directory: /root/repo/tests/engine
# Build directory: /root/repo/build/tests/engine
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/engine/database_test[1]_include.cmake")
include("/root/repo/build/tests/engine/find_query_test[1]_include.cmake")
include("/root/repo/build/tests/engine/textio_test[1]_include.cmake")
include("/root/repo/build/tests/engine/value_join_test[1]_include.cmake")
