file(REMOVE_RECURSE
  "CMakeFiles/value_join_test.dir/value_join_test.cc.o"
  "CMakeFiles/value_join_test.dir/value_join_test.cc.o.d"
  "value_join_test"
  "value_join_test.pdb"
  "value_join_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/value_join_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
