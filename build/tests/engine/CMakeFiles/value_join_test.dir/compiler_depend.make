# Empty compiler generated dependencies file for value_join_test.
# This may be replaced when dependencies are built.
