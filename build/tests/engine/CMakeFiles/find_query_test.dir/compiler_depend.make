# Empty compiler generated dependencies file for find_query_test.
# This may be replaced when dependencies are built.
