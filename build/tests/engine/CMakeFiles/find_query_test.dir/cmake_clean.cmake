file(REMOVE_RECURSE
  "CMakeFiles/find_query_test.dir/find_query_test.cc.o"
  "CMakeFiles/find_query_test.dir/find_query_test.cc.o.d"
  "find_query_test"
  "find_query_test.pdb"
  "find_query_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/find_query_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
