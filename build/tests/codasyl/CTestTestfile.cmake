# CMake generated Testfile for 
# Source directory: /root/repo/tests/codasyl
# Build directory: /root/repo/build/tests/codasyl
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/codasyl/machine_test[1]_include.cmake")
