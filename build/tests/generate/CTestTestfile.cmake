# CMake generated Testfile for 
# Source directory: /root/repo/tests/generate
# Build directory: /root/repo/build/tests/generate
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/generate/generator_test[1]_include.cmake")
