# CMake generated Testfile for 
# Source directory: /root/repo/tests/analyze
# Build directory: /root/repo/build/tests/analyze
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/analyze/analyzer_test[1]_include.cmake")
include("/root/repo/build/tests/analyze/advisor_test[1]_include.cmake")
