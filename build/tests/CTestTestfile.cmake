# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(dbpcc_end_to_end "/root/repo/build/tools/dbpcc" "--schema" "/root/repo/samples/company.ddl" "--plan" "/root/repo/samples/fig44.plan" "--data" "/root/repo/samples/company.dump" "--data-out" "/root/repo/build/company.dump.out" "--target-ddl" "/root/repo/samples/seniors.cpl" "/root/repo/samples/sales_report.cpl")
set_tests_properties(dbpcc_end_to_end PROPERTIES  PASS_REGULAR_EXPRESSION "system fully converted" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;31;add_test;/root/repo/tests/CMakeLists.txt;0;")
subdirs("common")
subdirs("schema")
subdirs("engine")
subdirs("codasyl")
subdirs("lang")
subdirs("analyze")
subdirs("restructure")
subdirs("ir")
subdirs("optimize")
subdirs("convert")
subdirs("generate")
subdirs("emulate")
subdirs("relational")
subdirs("hierarchical")
subdirs("supervisor")
subdirs("storage")
