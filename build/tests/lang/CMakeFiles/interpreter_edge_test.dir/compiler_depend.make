# Empty compiler generated dependencies file for interpreter_edge_test.
# This may be replaced when dependencies are built.
