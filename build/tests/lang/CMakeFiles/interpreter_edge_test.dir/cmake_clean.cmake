file(REMOVE_RECURSE
  "CMakeFiles/interpreter_edge_test.dir/interpreter_edge_test.cc.o"
  "CMakeFiles/interpreter_edge_test.dir/interpreter_edge_test.cc.o.d"
  "interpreter_edge_test"
  "interpreter_edge_test.pdb"
  "interpreter_edge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interpreter_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
