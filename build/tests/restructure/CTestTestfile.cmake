# CMake generated Testfile for 
# Source directory: /root/repo/tests/restructure
# Build directory: /root/repo/build/tests/restructure
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/restructure/transformation_test[1]_include.cmake")
include("/root/repo/build/tests/restructure/conversion_equivalence_test[1]_include.cmake")
include("/root/repo/build/tests/restructure/split_test[1]_include.cmake")
include("/root/repo/build/tests/restructure/plan_parser_test[1]_include.cmake")
include("/root/repo/build/tests/restructure/property_sweep_test[1]_include.cmake")
include("/root/repo/build/tests/restructure/data_copy_test[1]_include.cmake")
