file(REMOVE_RECURSE
  "CMakeFiles/data_copy_test.dir/data_copy_test.cc.o"
  "CMakeFiles/data_copy_test.dir/data_copy_test.cc.o.d"
  "data_copy_test"
  "data_copy_test.pdb"
  "data_copy_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/data_copy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
