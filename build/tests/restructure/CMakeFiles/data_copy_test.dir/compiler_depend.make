# Empty compiler generated dependencies file for data_copy_test.
# This may be replaced when dependencies are built.
