
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/restructure/conversion_equivalence_test.cc" "tests/restructure/CMakeFiles/conversion_equivalence_test.dir/conversion_equivalence_test.cc.o" "gcc" "tests/restructure/CMakeFiles/conversion_equivalence_test.dir/conversion_equivalence_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/tests/CMakeFiles/dbpc_testing.dir/DependInfo.cmake"
  "/root/repo/build/src/generate/CMakeFiles/dbpc_generate.dir/DependInfo.cmake"
  "/root/repo/build/src/equivalence/CMakeFiles/dbpc_equivalence.dir/DependInfo.cmake"
  "/root/repo/build/src/supervisor/CMakeFiles/dbpc_supervisor.dir/DependInfo.cmake"
  "/root/repo/build/src/emulate/CMakeFiles/dbpc_emulate.dir/DependInfo.cmake"
  "/root/repo/build/src/convert/CMakeFiles/dbpc_convert.dir/DependInfo.cmake"
  "/root/repo/build/src/optimize/CMakeFiles/dbpc_optimize.dir/DependInfo.cmake"
  "/root/repo/build/src/bridge/CMakeFiles/dbpc_bridge.dir/DependInfo.cmake"
  "/root/repo/build/src/relational/CMakeFiles/dbpc_relational.dir/DependInfo.cmake"
  "/root/repo/build/src/restructure/CMakeFiles/dbpc_restructure.dir/DependInfo.cmake"
  "/root/repo/build/src/analyze/CMakeFiles/dbpc_analyze.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/dbpc_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/hierarchical/CMakeFiles/dbpc_hierarchical.dir/DependInfo.cmake"
  "/root/repo/build/src/corpus/CMakeFiles/dbpc_corpus.dir/DependInfo.cmake"
  "/root/repo/build/src/lang/CMakeFiles/dbpc_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/codasyl/CMakeFiles/dbpc_codasyl.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/dbpc_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/schema/CMakeFiles/dbpc_schema.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/dbpc_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dbpc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
