file(REMOVE_RECURSE
  "CMakeFiles/conversion_equivalence_test.dir/conversion_equivalence_test.cc.o"
  "CMakeFiles/conversion_equivalence_test.dir/conversion_equivalence_test.cc.o.d"
  "conversion_equivalence_test"
  "conversion_equivalence_test.pdb"
  "conversion_equivalence_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/conversion_equivalence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
