# Empty dependencies file for conversion_equivalence_test.
# This may be replaced when dependencies are built.
