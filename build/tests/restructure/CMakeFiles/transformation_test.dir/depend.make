# Empty dependencies file for transformation_test.
# This may be replaced when dependencies are built.
