file(REMOVE_RECURSE
  "CMakeFiles/transformation_test.dir/transformation_test.cc.o"
  "CMakeFiles/transformation_test.dir/transformation_test.cc.o.d"
  "transformation_test"
  "transformation_test.pdb"
  "transformation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transformation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
