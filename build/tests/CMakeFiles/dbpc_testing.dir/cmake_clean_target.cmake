file(REMOVE_RECURSE
  "libdbpc_testing.a"
)
