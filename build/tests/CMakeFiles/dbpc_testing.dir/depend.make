# Empty dependencies file for dbpc_testing.
# This may be replaced when dependencies are built.
