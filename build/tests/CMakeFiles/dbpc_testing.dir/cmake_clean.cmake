file(REMOVE_RECURSE
  "CMakeFiles/dbpc_testing.dir/testing/fixtures.cc.o"
  "CMakeFiles/dbpc_testing.dir/testing/fixtures.cc.o.d"
  "libdbpc_testing.a"
  "libdbpc_testing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbpc_testing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
