# Empty compiler generated dependencies file for dbpcc.
# This may be replaced when dependencies are built.
