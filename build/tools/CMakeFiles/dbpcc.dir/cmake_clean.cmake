file(REMOVE_RECURSE
  "CMakeFiles/dbpcc.dir/dbpcc.cc.o"
  "CMakeFiles/dbpcc.dir/dbpcc.cc.o.d"
  "dbpcc"
  "dbpcc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbpcc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
