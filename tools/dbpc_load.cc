// dbpc_load — load generator for a running dbpcd.
//
// Opens N concurrent sessions and drives closed-loop (or rate-limited)
// SUBMIT + RESULT WAIT round trips for a fixed duration, then reports
// client-observed latency percentiles, sustained conversions/sec and an
// exact account of every request: accepted / refused / failed /
// backpressured — and, the number that matters for the daemon's contract,
// requests dropped without any response (a healthy daemon keeps this 0:
// overload is answered with `-ERR unavailable`, never a silent drop).
//
//   dbpc_load --port 7411 --connections 64 --duration-ms 2000
//
// Flags:
//   --host <addr>          daemon address (default 127.0.0.1)
//   --port <n>             daemon port (required)
//   --connections <n>      concurrent sessions (default 8)
//   --duration-ms <n>      how long each session submits (default 2000)
//   --rps <n>              global submit rate cap; 0 = closed loop (default)
//   --open-loop            open-loop mode (requires --rps > 0): latency is
//                          measured from each request's *scheduled* arrival
//                          time, not from when the worker got around to
//                          sending it, so a slow server shows up as rising
//                          latency (coordinated-omission-corrected) instead
//                          of silently lowering the offered rate
//   --deadline-ms <n>      per-request deadline_ms= on every SUBMIT
//   --malformed-pct <n>    percent of payloads replaced by non-CPL garbage
//                          (exercises the parse-error path; default 0)
//   --trace-pct <n>        percent of submits with trace=1 (default 0)
//   --program <file>       CPL payload source, repeatable; round-robin mix.
//                          Without it, two embedded company-schema
//                          programs are used.
//   --report <file>        write the summary as JSON ("-" for stdout)
//   --scrape-url <url>     dbpcd admin endpoint (http://host:port or
//                          host:port); /metrics is scraped before and
//                          after the run and the daemon-side queue depth
//                          and conversions/sec land in the JSON report
//                          next to the client-observed numbers
//   --drain                finish by sending DRAIN and checking it succeeds
//   --quiet                suppress the human-readable summary
//
// Exit status: 0 when every submitted request got a response (even an
// error one), any --drain succeeded, and any --scrape-url answered both
// scrapes; 1 otherwise; 2 on usage errors.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "api/dbpc.h"

namespace {

using namespace dbpc;
using Clock = std::chrono::steady_clock;

// Payloads valid against samples/company.ddl — the schema the smoke and
// bench daemons serve.
const char* kSeniorsCpl = R"(PROGRAM SENIORS.
  FOR EACH E IN FIND(EMP: SYSTEM, ALL-DIV, DIV, DIV-EMP, EMP(AGE > 30)) DO
    GET EMP-NAME OF E INTO N.
    DISPLAY N.
  END-FOR.
END PROGRAM.
)";

const char* kSalesRptCpl = R"(PROGRAM SALES-RPT.
  FIND ANY DIV (DIV-NAME = 'MACHINERY').
  FIND FIRST EMP WITHIN DIV-EMP USING (DEPT-NAME = 'SALES').
  WHILE DB-STATUS = '0000' DO
    GET EMP-NAME INTO N.
    WRITE REPORT FROM N.
    FIND NEXT EMP WITHIN DIV-EMP USING (DEPT-NAME = 'SALES').
  END-WHILE.
END PROGRAM.
)";

const char* kMalformedPayload = "THIS IS NOT A CPL PROGRAM AT ALL\n";

struct WorkerTally {
  std::vector<uint64_t> latencies_us;
  uint64_t submitted = 0;
  uint64_t accepted = 0;
  uint64_t refused = 0;       // kDone but not accepted
  uint64_t failed = 0;        // JobState::kFailed (parse errors)
  uint64_t backpressure = 0;  // -ERR unavailable on SUBMIT
  uint64_t dropped = 0;       // no response at all (connection died)
  uint64_t connect_errors = 0;
};

struct LoadConfig {
  std::string host = "127.0.0.1";
  int port = 0;
  int connections = 8;
  int duration_ms = 2000;
  int rps = 0;
  bool open_loop = false;
  int deadline_ms = 0;
  int malformed_pct = 0;
  int trace_pct = 0;
  std::vector<std::string> payloads;
};

/// Splits "http://host:port" (or bare "host:port") into its parts.
bool ParseScrapeUrl(const std::string& url, std::string* host, int* port) {
  std::string rest = url;
  const std::string scheme = "http://";
  if (rest.rfind(scheme, 0) == 0) rest = rest.substr(scheme.size());
  size_t slash = rest.find('/');
  if (slash != std::string::npos) rest = rest.substr(0, slash);
  size_t colon = rest.rfind(':');
  if (colon == std::string::npos || colon == 0) return false;
  *host = rest.substr(0, colon);
  *port = std::atoi(rest.c_str() + colon + 1);
  return *port > 0 && *port <= 65535;
}

/// The value of one exposition line ("<series> <value>"), or -1 when the
/// series is absent. Series names are matched at line starts only, so
/// "# TYPE <series> gauge" headers never shadow the sample.
double SeriesValue(const std::string& body, const std::string& series) {
  std::string needle = series + " ";
  size_t at;
  if (body.rfind(needle, 0) == 0) {
    at = 0;
  } else {
    at = body.find("\n" + needle);
    if (at == std::string::npos) return -1.0;
    ++at;
  }
  return std::atof(body.c_str() + at + needle.size());
}

/// One /metrics scrape reduced to the numbers the report records.
struct ScrapeSample {
  bool ok = false;
  double queue_depth = 0.0;
  double conversions_total = 0.0;
  double conversions_per_sec_10s = 0.0;
};

ScrapeSample ScrapeDaemon(const std::string& host, int port) {
  ScrapeSample sample;
  Result<HttpResponse> response = HttpGet(host, port, "/metrics");
  if (!response.ok() || response->status_code != 200) return sample;
  sample.ok = true;
  sample.queue_depth = SeriesValue(response->body, "dbpc_daemon_queue_depth");
  sample.conversions_total =
      SeriesValue(response->body, "dbpc_service_conversions_total");
  sample.conversions_per_sec_10s = SeriesValue(
      response->body, "dbpc_service_conversions_per_sec{window=\"10s\"}");
  return sample;
}

uint64_t PercentileUs(std::vector<uint64_t>& sorted, double p) {
  if (sorted.empty()) return 0;
  size_t index = static_cast<size_t>(p / 100.0 *
                                     static_cast<double>(sorted.size() - 1));
  return sorted[index];
}

void RunWorker(const LoadConfig& config, int worker_index,
               std::atomic<uint64_t>* rate_tickets, Clock::time_point start,
               WorkerTally* tally) {
  Result<std::unique_ptr<DaemonClient>> client =
      DaemonClient::Connect(config.host, config.port);
  if (!client.ok()) {
    ++tally->connect_errors;
    return;
  }
  Clock::time_point deadline =
      start + std::chrono::milliseconds(config.duration_ms);
  // Deterministic per-worker mix (no global RNG: runs are reproducible).
  uint64_t sequence = static_cast<uint64_t>(worker_index) * 7919;
  while (Clock::now() < deadline) {
    Clock::time_point scheduled_at = Clock::now();
    if (config.rps > 0) {
      // Global token pacing: ticket k may not be submitted before
      // start + k/rps.
      uint64_t ticket = rate_tickets->fetch_add(1);
      Clock::time_point not_before =
          start + std::chrono::microseconds(ticket * 1000000ull /
                                            static_cast<uint64_t>(config.rps));
      std::this_thread::sleep_until(not_before);
      if (Clock::now() >= deadline) break;
      // Open loop: the request "arrived" at its scheduled instant whether
      // or not a worker was free then. Measuring from not_before charges
      // any queueing delay inside the load generator to the server's
      // latency — the coordinated-omission correction — so an overloaded
      // server cannot hide behind a stalled client.
      if (config.open_loop) scheduled_at = not_before;
    }
    ++sequence;
    ConversionRequest request;
    bool malformed =
        config.malformed_pct > 0 &&
        sequence % 100 < static_cast<uint64_t>(config.malformed_pct);
    request.source =
        malformed ? kMalformedPayload
                  : config.payloads[sequence % config.payloads.size()];
    request.deadline_ms = config.deadline_ms;
    request.trace = config.trace_pct > 0 &&
                    (sequence + 50) % 100 <
                        static_cast<uint64_t>(config.trace_pct);
    Clock::time_point submit_start =
        config.open_loop ? scheduled_at : Clock::now();
    Result<JobId> id = (*client)->Submit(request);
    ++tally->submitted;
    if (!id.ok()) {
      if (id.status().code() == StatusCode::kUnavailable &&
          id.status().message().find("connect") == std::string::npos) {
        // The daemon answered with backpressure — a response, not a drop —
        // unless the transport itself died (peer closed / send failed).
        if (id.status().message().find("closed") != std::string::npos ||
            id.status().message().find("send:") != std::string::npos ||
            id.status().message().find("recv:") != std::string::npos) {
          ++tally->dropped;
          return;
        }
        ++tally->backpressure;
        continue;
      }
      ++tally->dropped;
      return;  // transport error: the session is unusable
    }
    Result<ConversionResponse> response = (*client)->Fetch(*id, true);
    if (!response.ok()) {
      ++tally->dropped;
      return;
    }
    tally->latencies_us.push_back(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                              submit_start)
            .count()));
    if (response->state == JobState::kFailed) {
      ++tally->failed;
    } else if (response->accepted) {
      ++tally->accepted;
    } else {
      ++tally->refused;
    }
  }
  (*client)->Quit();
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: dbpc_load --port <n> [--host <addr>] [--connections <n>] "
      "[--duration-ms <n>] [--rps <n>] [--open-loop] [--deadline-ms <n>] "
      "[--malformed-pct <n>] [--trace-pct <n>] [--program <file>]... "
      "[--report <file>] [--scrape-url <http://host:port>] [--drain] "
      "[--quiet]\n"
      "       --open-loop requires --rps > 0 (a fixed offered rate)\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  LoadConfig config;
  std::string report_path;
  std::string scrape_url;
  bool drain = false;
  bool quiet = false;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&](int* out) {
      if (i + 1 >= argc) return false;
      *out = std::atoi(argv[++i]);
      return true;
    };
    if (arg == "--host" && i + 1 < argc) {
      config.host = argv[++i];
    } else if (arg == "--port") {
      if (!next(&config.port)) return Usage();
    } else if (arg == "--connections") {
      if (!next(&config.connections)) return Usage();
    } else if (arg == "--duration-ms") {
      if (!next(&config.duration_ms)) return Usage();
    } else if (arg == "--rps") {
      if (!next(&config.rps)) return Usage();
    } else if (arg == "--open-loop") {
      config.open_loop = true;
    } else if (arg == "--deadline-ms") {
      if (!next(&config.deadline_ms)) return Usage();
    } else if (arg == "--malformed-pct") {
      if (!next(&config.malformed_pct)) return Usage();
    } else if (arg == "--trace-pct") {
      if (!next(&config.trace_pct)) return Usage();
    } else if (arg == "--program" && i + 1 < argc) {
      std::ifstream in(argv[++i]);
      if (!in) {
        std::fprintf(stderr, "dbpc_load: cannot open %s\n", argv[i]);
        return 2;
      }
      std::ostringstream buffer;
      buffer << in.rdbuf();
      config.payloads.push_back(buffer.str());
    } else if (arg == "--report" && i + 1 < argc) {
      report_path = argv[++i];
    } else if (arg == "--scrape-url" && i + 1 < argc) {
      scrape_url = argv[++i];
    } else if (arg == "--drain") {
      drain = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else {
      return Usage();
    }
  }
  if (config.port <= 0 || config.connections < 1 || config.duration_ms < 1 ||
      config.malformed_pct < 0 || config.malformed_pct > 100 ||
      config.trace_pct < 0 || config.trace_pct > 100 ||
      (config.open_loop && config.rps <= 0)) {
    return Usage();
  }
  if (config.payloads.empty()) {
    config.payloads = {kSeniorsCpl, kSalesRptCpl};
  }

  std::string scrape_host;
  int scrape_port = 0;
  if (!scrape_url.empty() &&
      !ParseScrapeUrl(scrape_url, &scrape_host, &scrape_port)) {
    std::fprintf(stderr, "dbpc_load: cannot parse --scrape-url \"%s\"\n",
                 scrape_url.c_str());
    return 2;
  }
  ScrapeSample scrape_before;
  if (!scrape_url.empty()) {
    scrape_before = ScrapeDaemon(scrape_host, scrape_port);
    if (!scrape_before.ok) {
      std::fprintf(stderr, "dbpc_load: initial scrape of %s failed\n",
                   scrape_url.c_str());
    }
  }

  std::vector<WorkerTally> tallies(config.connections);
  std::vector<std::thread> workers;
  std::atomic<uint64_t> rate_tickets{0};
  Clock::time_point start = Clock::now();
  for (int i = 0; i < config.connections; ++i) {
    workers.emplace_back(RunWorker, std::cref(config), i, &rate_tickets,
                         start, &tallies[i]);
  }
  for (std::thread& worker : workers) worker.join();
  double elapsed_s = std::chrono::duration_cast<std::chrono::duration<double>>(
                         Clock::now() - start)
                         .count();

  WorkerTally total;
  std::vector<uint64_t> latencies;
  for (const WorkerTally& tally : tallies) {
    total.submitted += tally.submitted;
    total.accepted += tally.accepted;
    total.refused += tally.refused;
    total.failed += tally.failed;
    total.backpressure += tally.backpressure;
    total.dropped += tally.dropped;
    total.connect_errors += tally.connect_errors;
    latencies.insert(latencies.end(), tally.latencies_us.begin(),
                     tally.latencies_us.end());
  }
  std::sort(latencies.begin(), latencies.end());
  uint64_t p50 = PercentileUs(latencies, 50);
  uint64_t p99 = PercentileUs(latencies, 99);
  double rps_done =
      elapsed_s > 0 ? static_cast<double>(latencies.size()) / elapsed_s : 0;

  // Scraped before any --drain, while the 10s rate window still covers the
  // load interval.
  ScrapeSample scrape_after;
  if (!scrape_url.empty()) scrape_after = ScrapeDaemon(scrape_host, scrape_port);

  Status drained = Status::OK();
  if (drain) {
    Result<std::unique_ptr<DaemonClient>> client =
        DaemonClient::Connect(config.host, config.port);
    drained = client.ok() ? (*client)->Drain() : client.status();
  }

  std::string daemon_json;
  if (!scrape_url.empty()) {
    char scrape_buffer[512];
    if (scrape_before.ok && scrape_after.ok) {
      std::snprintf(
          scrape_buffer, sizeof(scrape_buffer),
          "  \"daemon\": {\n"
          "    \"queue_depth_before\": %.0f,\n"
          "    \"queue_depth_after\": %.0f,\n"
          "    \"conversions_total_before\": %.0f,\n"
          "    \"conversions_total_after\": %.0f,\n"
          "    \"conversions_per_sec_10s\": %.1f\n"
          "  },\n",
          scrape_before.queue_depth, scrape_after.queue_depth,
          scrape_before.conversions_total, scrape_after.conversions_total,
          scrape_after.conversions_per_sec_10s);
    } else {
      std::snprintf(scrape_buffer, sizeof(scrape_buffer),
                    "  \"daemon\": \"scrape failed\",\n");
    }
    daemon_json = scrape_buffer;
  }

  char buffer[2048];
  std::snprintf(
      buffer, sizeof(buffer),
      "{\n"
      "  \"mode\": \"%s\",\n"
      "  \"offered_rps\": %d,\n"
      "  \"connections\": %d,\n"
      "  \"duration_s\": %.3f,\n"
      "  \"submitted\": %llu,\n"
      "  \"accepted\": %llu,\n"
      "  \"refused\": %llu,\n"
      "  \"failed\": %llu,\n"
      "  \"backpressure\": %llu,\n"
      "  \"dropped_without_response\": %llu,\n"
      "  \"connect_errors\": %llu,\n"
      "  \"conversions_per_sec\": %.1f,\n"
      "  \"p50_us\": %llu,\n"
      "  \"p99_us\": %llu,\n"
      "%s"
      "  \"drain\": \"%s\"\n"
      "}\n",
      config.open_loop ? "open-loop" : "closed-loop", config.rps,
      config.connections, elapsed_s,
      static_cast<unsigned long long>(total.submitted),
      static_cast<unsigned long long>(total.accepted),
      static_cast<unsigned long long>(total.refused),
      static_cast<unsigned long long>(total.failed),
      static_cast<unsigned long long>(total.backpressure),
      static_cast<unsigned long long>(total.dropped),
      static_cast<unsigned long long>(total.connect_errors),
      rps_done, static_cast<unsigned long long>(p50),
      static_cast<unsigned long long>(p99), daemon_json.c_str(),
      drain ? drained.ToString().c_str() : "not requested");

  if (!quiet) std::fputs(buffer, stderr);
  if (!report_path.empty()) {
    if (report_path == "-") {
      std::fputs(buffer, stdout);
    } else {
      std::ofstream out(report_path);
      if (!out) {
        std::fprintf(stderr, "dbpc_load: cannot write %s\n",
                     report_path.c_str());
        return 2;
      }
      out << buffer;
    }
  }
  bool clean = total.dropped == 0 && total.connect_errors == 0 &&
               (!drain || drained.ok()) &&
               (scrape_url.empty() || (scrape_before.ok && scrape_after.ok));
  return clean ? 0 : 1;
}
