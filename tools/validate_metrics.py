#!/usr/bin/env python3
"""Validates the dbpcd admin endpoint (tools/check.sh gate).

Usage:
    validate_metrics.py --base http://HOST:PORT [options]

Default mode fetches /metrics, /healthz, /readyz and /varz from a running
daemon's admin plane and checks that

  * /metrics is well-formed Prometheus text exposition (version 0.0.4):
    every non-comment line is `name{labels} value` with a parseable value,
    and every sample belongs to a family announced by a `# TYPE` line;
  * histogram families are internally consistent: `le` bounds strictly
    ascend, cumulative bucket counts never decrease, the `+Inf` bucket
    equals `_count`, and `_sum`/`_count` are present;
  * the operational families this daemon promises are all present
    (queue depth, inflight jobs, active/parked sessions, busy workers,
    cache entries, the conversions rolling rate, request latency);
  * /healthz answers 200, /readyz answers the expected status (default
    200), and /varz parses as JSON carrying the identity keys.

With --readyz-only the script polls only /readyz (up to --retries times)
until it answers --readyz-expect — the drain-window probe: during a
graceful shutdown the endpoint must serve 503, not connection-refused.

Exits 0 when all checks pass; prints the first failure and exits 1
otherwise. Stdlib only.
"""

import argparse
import json
import re
import sys
import time
import urllib.error
import urllib.request

REQUIRED_FAMILIES = (
    "dbpc_daemon_queue_depth",
    "dbpc_daemon_inflight_jobs",
    "dbpc_daemon_active_sessions",
    "dbpc_daemon_parked_sessions",
    "dbpc_service_workers_busy",
    "dbpc_cache_entries",
    "dbpc_service_conversions_total",
    "dbpc_service_conversions_per_sec",
    "dbpc_daemon_request_us",
)

VARZ_KEYS = ("server", "io_model", "uptime_s", "draining", "metrics")

SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>\S+)$"
)
TYPE_RE = re.compile(
    r"^# TYPE (?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r" (?P<kind>counter|gauge|histogram|summary|untyped)$"
)


def fail(message):
    print("validate_metrics.py: FAIL: %s" % message)
    sys.exit(1)


def fetch(base, path, timeout):
    """Returns (status_code, body_text); network errors become failures."""
    url = base.rstrip("/") + path
    try:
        with urllib.request.urlopen(url, timeout=timeout) as response:
            return response.status, response.read().decode("utf-8")
    except urllib.error.HTTPError as e:
        return e.code, e.read().decode("utf-8", errors="replace")
    except (urllib.error.URLError, OSError) as e:
        fail("cannot fetch %s: %s" % (url, e))


def parse_value(raw, where):
    if raw == "+Inf":
        return float("inf")
    try:
        return float(raw)
    except ValueError:
        fail("%s: unparseable sample value %r" % (where, raw))


def family_of(name, types):
    """The TYPE family a sample line belongs to, or None."""
    if name in types:
        return name
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix) and name[: -len(suffix)] in types:
            return name[: -len(suffix)]
    return None


def check_exposition(body):
    types = {}       # family -> kind
    samples = []     # (name, labels_str, value)
    for lineno, line in enumerate(body.splitlines(), 1):
        if not line:
            fail("/metrics line %d: blank line inside exposition" % lineno)
        if line.startswith("#"):
            if line.startswith("# TYPE "):
                m = TYPE_RE.match(line)
                if not m:
                    fail("/metrics line %d: bad TYPE line %r" % (lineno, line))
                if m.group("name") in types:
                    fail("/metrics line %d: duplicate TYPE for %s"
                         % (lineno, m.group("name")))
                types[m.group("name")] = m.group("kind")
            continue  # other comments (e.g. # HELP) are legal
        m = SAMPLE_RE.match(line)
        if not m:
            fail("/metrics line %d: unparseable sample %r" % (lineno, line))
        value = parse_value(m.group("value"), "/metrics line %d" % lineno)
        name = m.group("name")
        if family_of(name, types) is None:
            fail("/metrics line %d: sample %s has no preceding # TYPE"
                 % (lineno, name))
        samples.append((name, m.group("labels") or "", value))

    # Histogram consistency, per family.
    for family, kind in types.items():
        if kind != "histogram":
            continue
        buckets = []
        sums = counts = None
        for name, labels, value in samples:
            if name == family + "_bucket":
                le = re.search(r'le="([^"]+)"', labels)
                if not le:
                    fail("%s_bucket sample without an le label" % family)
                bound = (float("inf") if le.group(1) == "+Inf"
                         else float(le.group(1)))
                buckets.append((bound, value))
            elif name == family + "_sum":
                sums = value
            elif name == family + "_count":
                counts = value
        if not buckets:
            fail("histogram %s has no _bucket series" % family)
        if sums is None or counts is None:
            fail("histogram %s is missing _sum or _count" % family)
        if buckets[-1][0] != float("inf"):
            fail("histogram %s: last bucket is not le=\"+Inf\"" % family)
        for (lo_bound, lo_count), (hi_bound, hi_count) in zip(
                buckets, buckets[1:]):
            if hi_bound <= lo_bound:
                fail("histogram %s: le bounds not ascending (%g then %g)"
                     % (family, lo_bound, hi_bound))
            if hi_count < lo_count:
                fail("histogram %s: cumulative counts decrease at le=%g"
                     % (family, hi_bound))
        if buckets[-1][1] != counts:
            fail("histogram %s: +Inf bucket %g != _count %g"
                 % (family, buckets[-1][1], counts))

    present = set(types)
    for name, _, _ in samples:
        present.add(name)
    for family in REQUIRED_FAMILIES:
        if family not in present:
            fail("/metrics is missing required family %s" % family)
    return len(samples)


def check_varz(body):
    try:
        doc = json.loads(body)
    except ValueError as e:
        fail("/varz does not parse as JSON: %s" % e)
    for key in VARZ_KEYS:
        if key not in doc:
            fail("/varz is missing key %r" % key)
    if doc["server"] != "dbpcd":
        fail("/varz server is %r, want 'dbpcd'" % doc["server"])


def poll_readyz(base, expect, retries, timeout):
    last = None
    for _ in range(max(retries, 1)):
        try:
            url = base.rstrip("/") + "/readyz"
            with urllib.request.urlopen(url, timeout=timeout) as response:
                last = response.status
        except urllib.error.HTTPError as e:
            last = e.code
        except (urllib.error.URLError, OSError) as e:
            last = "unreachable (%s)" % e
        if last == expect:
            print("validate_metrics.py: /readyz answered %d" % expect)
            return
        time.sleep(0.05)
    fail("/readyz never answered %s (last: %s)" % (expect, last))


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--base", required=True,
                        help="admin endpoint base URL, e.g. http://127.0.0.1:7412")
    parser.add_argument("--readyz-expect", type=int, default=200)
    parser.add_argument("--readyz-only", action="store_true",
                        help="poll /readyz only (drain-window probe)")
    parser.add_argument("--retries", type=int, default=1)
    parser.add_argument("--timeout", type=float, default=5.0)
    args = parser.parse_args()

    if args.readyz_only:
        poll_readyz(args.base, args.readyz_expect, args.retries, args.timeout)
        return

    status, body = fetch(args.base, "/metrics", args.timeout)
    if status != 200:
        fail("/metrics answered %d" % status)
    sample_count = check_exposition(body)

    status, body = fetch(args.base, "/healthz", args.timeout)
    if status != 200:
        fail("/healthz answered %d" % status)

    poll_readyz(args.base, args.readyz_expect, args.retries, args.timeout)

    status, body = fetch(args.base, "/varz", args.timeout)
    if status != 200:
        fail("/varz answered %d" % status)
    check_varz(body)

    print("validate_metrics.py: OK (%d samples, all families present)"
          % sample_count)


if __name__ == "__main__":
    main()
