#!/bin/sh
# One-command verification: the tier-1 build + test suite, then the
# concurrency-sensitive service tests again under ThreadSanitizer.
#
#   tools/check.sh [jobs]
#
# Build trees: build/ (plain) and build-tsan/ (-DDBPC_SANITIZE=thread).
# The sanitizer matrix also accepts address and undefined; see the
# DBPC_SANITIZE option in the top-level CMakeLists.txt.
set -eu

cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc 2>/dev/null || echo 2)}"

echo "== tier-1: configure + build + ctest (build/, ${JOBS} jobs) =="
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"

echo "== facade: tools/ and examples/ stay behind the public API =="
# The only src/ headers a facade consumer may include are the facade
# itself and the public request/response types. (tests/testing fixtures
# are not src/ modules and stay allowed.)
BAD_INCLUDES="$(grep -RnE '#include "[a-z_]+/' tools/*.cc examples/*.cpp \
  | grep -vE '#include "(api/dbpc\.h|api/types\.h|testing/)' || true)"
if [ -n "$BAD_INCLUDES" ]; then
  echo "facade lint: tools/ and examples/ must include only api/dbpc.h or"
  echo "api/types.h from src/. Offending includes:"
  echo "$BAD_INCLUDES"
  exit 1
fi
echo "facade lint ok"

echo "== fuzz: fixed-seed differential sweep + regression corpus =="
./build/tools/dbpc_fuzz --seed 1 --iterations 200
for repro in samples/fuzz-regressions/*.repro; do
  ./build/tools/dbpc_fuzz --replay "$repro"
done

echo "== fuzz: optimizer-differential sweep (optimized vs. unoptimized) =="
./build/tools/dbpc_fuzz --diff-optimizer --seed 1 --iterations 200

echo "== fuzz: index-differential sweep (indexes on vs. off) =="
./build/tools/dbpc_fuzz --diff-index --seed 1 --iterations 200

echo "== fuzz: columnar-differential sweep (bulk vs. record copy engine) =="
./build/tools/dbpc_fuzz --diff-columnar --seed 1 --iterations 200

echo "== fuzz: cache-differential sweep (memoized vs. uncached pipeline) =="
./build/tools/dbpc_fuzz --diff-cache --seed 1 --iterations 200

echo "== observability: span trace + provenance on the company example =="
TRACE_DIR="$(mktemp -d)"
trap 'rm -rf "$TRACE_DIR"' EXIT
./build/tools/dbpcc --schema samples/company.ddl --plan samples/fig44.plan \
  --provenance --trace-json "$TRACE_DIR/trace.json" \
  samples/sales_report.cpl samples/seniors.cpl \
  > "$TRACE_DIR/provenance.txt"
python3 tools/validate_trace.py "$TRACE_DIR/trace.json" \
  "$TRACE_DIR/provenance.txt"

echo "== fuzz: traced sweep (tracing must not change outcomes) =="
./build/tools/dbpc_fuzz --seed 1 --iterations 200 --trace

echo "== bench: cost-based optimizer sanity (E10 --smoke) =="
./build/bench/bench_optimizer --smoke

echo "== bench: indexed access-path sanity (E11 --smoke) =="
./build/bench/bench_index_paths --smoke

echo "== bench: daemon load sanity (E13/E16 --smoke, epoll reactor) =="
./build/bench/bench_daemon --smoke

echo "== bench: columnar bulk translation sanity (E14 --smoke) =="
./build/bench/bench_data_translation --smoke

echo "== bench: conversion cache sanity (E15 --smoke) =="
./build/bench/bench_conversion_cache --smoke

# The end-to-end smoke runs once per io-model: the epoll reactor (the
# Linux default) and the thread-per-connection fallback must both serve a
# mixed burst and drain cleanly on SIGTERM. The epoll pass adds an
# open-loop (fixed offered rate) dbpc_load leg, which measures latency
# from each request's scheduled send instant — the coordinated-omission-
# corrected view.
for IO_MODEL in threads epoll; do
  echo "== daemon: dbpcd end-to-end smoke (io-model=$IO_MODEL) =="
  rm -f "$TRACE_DIR/dbpcd.port" "$TRACE_DIR/dbpcd.admin.port"
  ./build/tools/dbpcd --schema samples/company.ddl --plan samples/fig44.plan \
    --port 0 --port-file "$TRACE_DIR/dbpcd.port" --jobs 4 \
    --io-model "$IO_MODEL" \
    --admin-port 0 --admin-port-file "$TRACE_DIR/dbpcd.admin.port" \
    --slow-request-ms 2000 --drain-linger-ms 2000 \
    --metrics-json "$TRACE_DIR/dbpcd.metrics.json" \
    2> "$TRACE_DIR/dbpcd.log" &
  DBPCD_PID=$!
  PORT=""
  for _ in $(seq 1 100); do
    [ -s "$TRACE_DIR/dbpcd.port" ] && { PORT="$(cat "$TRACE_DIR/dbpcd.port")"; break; }
    sleep 0.1
  done
  if [ -z "$PORT" ]; then
    echo "dbpcd smoke: daemon did not report a port (io-model=$IO_MODEL)"
    cat "$TRACE_DIR/dbpcd.log"
    kill "$DBPCD_PID" 2>/dev/null || true
    exit 1
  fi
  ADMIN_PORT="$(cat "$TRACE_DIR/dbpcd.admin.port")"
  # A short mixed burst (10% malformed payloads exercise the failed-job
  # path); dbpc_load exits nonzero if any request went unanswered, and the
  # --scrape-url leg folds the daemon-side queue depth and conversions/sec
  # into its report.
  ./build/tools/dbpc_load --port "$PORT" --connections 16 --duration-ms 1000 \
    --malformed-pct 10 --trace-pct 5 --quiet \
    --scrape-url "http://127.0.0.1:$ADMIN_PORT" \
    --report "$TRACE_DIR/dbpc_load.json"
  if [ "$IO_MODEL" = "epoll" ]; then
    ./build/tools/dbpc_load --port "$PORT" --connections 8 \
      --duration-ms 1000 --rps 200 --open-loop --quiet \
      --report "$TRACE_DIR/dbpc_load_open.json"
  fi
  # The admin plane serves well-formed Prometheus exposition with every
  # operational family, a healthy /healthz + /readyz, and JSON /varz.
  python3 tools/validate_metrics.py --base "http://127.0.0.1:$ADMIN_PORT"
  # Graceful shutdown under SIGTERM must drain every admitted job (exit 0)
  # and keep /readyz scrapeable — answering 503 — through the
  # --drain-linger-ms lame-duck window.
  kill -TERM "$DBPCD_PID"
  python3 tools/validate_metrics.py --base "http://127.0.0.1:$ADMIN_PORT" \
    --readyz-only --readyz-expect 503 --retries 40
  wait "$DBPCD_PID"
  grep -q "drained" "$TRACE_DIR/dbpcd.log"
  grep -q "io=$IO_MODEL" "$TRACE_DIR/dbpcd.log"
  grep -q "daemon_started" "$TRACE_DIR/dbpcd.log"
  grep -q "drain_started" "$TRACE_DIR/dbpcd.log"
  # The metrics snapshot and the load report must both be valid JSON.
  python3 - "$TRACE_DIR/dbpcd.metrics.json" "$TRACE_DIR/dbpc_load.json" <<'EOF'
import json, sys
for path in sys.argv[1:]:
    with open(path) as f:
        json.load(f)
print("daemon smoke: metrics and load report parse as JSON")
EOF
done

echo "== tsan: service tests under -DDBPC_SANITIZE=thread (build-tsan/) =="
cmake -B build-tsan -S . -DDBPC_SANITIZE=thread >/dev/null
cmake --build build-tsan -j "$JOBS" \
  --target service_test worker_pool_test metrics_test log_test \
           sock_buffer_test daemon_test reactor_test admin_test store_test \
           extent_test template_cache_test
(cd build-tsan/tests/service && ./worker_pool_test && ./service_test)
(cd build-tsan/tests/common && ./metrics_test && ./log_test)
(cd build-tsan/tests/daemon && ./sock_buffer_test && ./daemon_test \
  && ./reactor_test && ./admin_test)
(cd build-tsan/tests/storage && ./store_test && ./extent_test)
(cd build-tsan/tests/convert && ./template_cache_test)

echo "== check.sh: all green =="
