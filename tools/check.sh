#!/bin/sh
# One-command verification: the tier-1 build + test suite, then the
# concurrency-sensitive service tests again under ThreadSanitizer.
#
#   tools/check.sh [jobs]
#
# Build trees: build/ (plain) and build-tsan/ (-DDBPC_SANITIZE=thread).
# The sanitizer matrix also accepts address and undefined; see the
# DBPC_SANITIZE option in the top-level CMakeLists.txt.
set -eu

cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc 2>/dev/null || echo 2)}"

echo "== tier-1: configure + build + ctest (build/, ${JOBS} jobs) =="
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"

echo "== fuzz: fixed-seed differential sweep + regression corpus =="
./build/tools/dbpc_fuzz --seed 1 --iterations 200
for repro in samples/fuzz-regressions/*.repro; do
  ./build/tools/dbpc_fuzz --replay "$repro"
done

echo "== fuzz: optimizer-differential sweep (optimized vs. unoptimized) =="
./build/tools/dbpc_fuzz --diff-optimizer --seed 1 --iterations 200

echo "== fuzz: index-differential sweep (indexes on vs. off) =="
./build/tools/dbpc_fuzz --diff-index --seed 1 --iterations 200

echo "== observability: span trace + provenance on the company example =="
TRACE_DIR="$(mktemp -d)"
trap 'rm -rf "$TRACE_DIR"' EXIT
./build/tools/dbpcc --schema samples/company.ddl --plan samples/fig44.plan \
  --provenance --trace-json "$TRACE_DIR/trace.json" \
  samples/sales_report.cpl samples/seniors.cpl \
  > "$TRACE_DIR/provenance.txt"
python3 tools/validate_trace.py "$TRACE_DIR/trace.json" \
  "$TRACE_DIR/provenance.txt"

echo "== fuzz: traced sweep (tracing must not change outcomes) =="
./build/tools/dbpc_fuzz --seed 1 --iterations 200 --trace

echo "== bench: cost-based optimizer sanity (E10 --smoke) =="
./build/bench/bench_optimizer --smoke

echo "== bench: indexed access-path sanity (E11 --smoke) =="
./build/bench/bench_index_paths --smoke

echo "== tsan: service tests under -DDBPC_SANITIZE=thread (build-tsan/) =="
cmake -B build-tsan -S . -DDBPC_SANITIZE=thread >/dev/null
cmake --build build-tsan -j "$JOBS" \
  --target service_test worker_pool_test metrics_test
(cd build-tsan/tests/service && ./worker_pool_test && ./service_test)
(cd build-tsan/tests/common && ./metrics_test)

echo "== check.sh: all green =="
