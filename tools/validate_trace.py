#!/usr/bin/env python3
"""Validates dbpcc observability output (tools/check.sh gate).

Usage:
    validate_trace.py TRACE_JSON PROVENANCE_TEXT

Checks that

  * TRACE_JSON parses as Chrome trace_event JSON ({"traceEvents": [...]})
    and every event is a complete ("ph" == "X") span with a name and
    non-negative timestamps;
  * the trace covers each of the five Figure 4.1 pipeline stages
    (conversion_analyzer, program_analyzer, program_converter, optimizer,
    program_generator) at least once;
  * PROVENANCE_TEXT (the `dbpcc --provenance` listing) contains at least
    one listing, maps every emitted statement to a source statement, and
    has no UNSTAMPED entries.

Exits 0 when all checks pass; prints the first failure and exits 1
otherwise. Stdlib only.
"""

import json
import re
import sys

STAGES = (
    "conversion_analyzer",
    "program_analyzer",
    "program_converter",
    "optimizer",
    "program_generator",
)


def fail(message):
    print("validate_trace.py: FAIL: %s" % message)
    sys.exit(1)


def check_trace(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        fail("cannot parse %s: %s" % (path, e))
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail("%s: traceEvents missing or empty" % path)
    names = set()
    for i, event in enumerate(events):
        if event.get("ph") != "X":
            fail("%s: event %d is not a complete ('X') span: %r"
                 % (path, i, event))
        if not event.get("name"):
            fail("%s: event %d has no name" % (path, i))
        if event.get("ts", -1) < 0 or event.get("dur", -1) < 0:
            fail("%s: event %d has negative ts/dur" % (path, i))
        names.add(event["name"])
    for stage in STAGES:
        if stage not in names:
            fail("%s: pipeline stage '%s' missing from trace (have: %s)"
                 % (path, stage, ", ".join(sorted(names))))
    return len(events)


def check_provenance(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            text = f.read()
    except OSError as e:
        fail("cannot read %s: %s" % (path, e))
    listings = re.findall(r"^== provenance for program ", text, re.M)
    if not listings:
        fail("%s: no provenance listings found" % path)
    statements = re.findall(r"^\[\d+\] ", text, re.M)
    if not statements:
        fail("%s: provenance listings contain no statements" % path)
    mapped = re.findall(r"^    <- src \d+ via ", text, re.M)
    unstamped = re.findall(r"^    <- UNSTAMPED", text, re.M)
    if unstamped:
        fail("%s: %d UNSTAMPED statement(s)" % (path, len(unstamped)))
    if len(mapped) != len(statements):
        fail("%s: %d statements but %d provenance mappings"
             % (path, len(statements), len(mapped)))
    return len(statements)


def main(argv):
    if len(argv) != 3:
        print(__doc__)
        return 2
    events = check_trace(argv[1])
    statements = check_provenance(argv[2])
    print("validate_trace.py: OK (%d trace events, all 5 stages; "
          "%d statements, 100%% provenance)" % (events, statements))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
