// dbpcd — the database program conversion daemon.
//
// Long-running TCP front-end to the Figure 4.1 pipeline: loads one schema
// and restructuring plan at startup, then serves conversion jobs over the
// line-oriented wire protocol specified in DAEMON.md
// (submit/status/result/metrics/trace/drain).
//
//   dbpcd --schema company.ddl --plan fig44.plan --port 7411
//
// Flags:
//   --schema <file>          source schema (required)
//   --plan <file>            restructuring plan (required)
//   --host <addr>            listen address (default 127.0.0.1)
//   --port <n>               TCP port; 0 picks an ephemeral port
//   --port-file <file>       write the bound port to <file> once listening
//                            (scripts start with --port 0 and read this)
//   --jobs <n>               conversion worker threads (default 4)
//   --deadline-ms <n>        default per-job soft deadline (a SUBMIT may
//                            tighten it with deadline_ms=<n>)
//   --queue-depth <n>        admitted-jobs bound; SUBMIT over it gets
//                            `-ERR unavailable` backpressure (default 256)
//   --max-connections <n>    concurrent session cap (default 256)
//   --read-timeout-ms <n>    per-read session deadline (default 10000)
//   --write-timeout-ms <n>   per-reply session deadline (default 10000)
//   --drain-grace-ms <n>     how long a drain waits for admitted jobs
//                            (default 30000)
//   --io-model <m>           session multiplexing: "epoll" (a small pool
//                            of reactor threads; default on Linux) or
//                            "threads" (one thread per connection)
//   --io-threads <n>         reactor threads under --io-model epoll
//                            (default 2)
//   --strict                 reject analyst-level conversions (default: an
//                            approve-all analyst, like dbpcc)
//   --no-optimizer           skip the optimizer stage
//   --no-cache               disable the template-level conversion memo
//                            (default: repeat-heavy traffic reuses
//                            converted templates; METRICS exposes cache.*)
//   --metrics-json <file>    write a final metrics snapshot on shutdown;
//                            "-" writes to stderr
//   --admin-port <n>         HTTP admin endpoint (GET /metrics /healthz
//                            /readyz /varz); 0 picks an ephemeral port,
//                            omit to disable (DAEMON.md "Admin endpoint")
//   --admin-port-file <file> write the bound admin port to <file>
//   --log-level <l>          structured-log threshold: debug|info|warn|
//                            error|off (default info)
//   --log-json               emit log lines as JSONL instead of logfmt
//   --slow-request-ms <n>    log one warn line per job slower than <n> ms
//                            end-to-end (0 = off)
//   --drain-linger-ms <n>    after a signal-triggered drain completes, keep
//                            serving (sessions + admin plane) this long
//                            before exiting, so orchestrators observe the
//                            503 /readyz before the listener vanishes
//                            (default 0)
//
// Shutdown: SIGTERM or SIGINT triggers a graceful drain — new SUBMITs are
// refused, every admitted job completes (bounded by --drain-grace-ms),
// sessions are torn down — then the process exits 0 on a clean drain, 1
// if the grace period elapsed with jobs still pending.

#include <signal.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "api/dbpc.h"

namespace {

using namespace dbpc;

std::atomic<int> g_signal{0};

void HandleSignal(int sig) { g_signal.store(sig); }

int Usage() {
  std::fprintf(
      stderr,
      "usage: dbpcd --schema <ddl> --plan <plan> [--host <addr>] "
      "[--port <n>] [--port-file <file>] [--jobs <n>] [--deadline-ms <n>] "
      "[--queue-depth <n>] [--max-connections <n>] [--read-timeout-ms <n>] "
      "[--write-timeout-ms <n>] [--drain-grace-ms <n>] "
      "[--io-model threads|epoll] [--io-threads <n>] [--strict] "
      "[--no-optimizer] [--no-cache] [--metrics-json <file>] "
      "[--admin-port <n>] [--admin-port-file <file>] "
      "[--log-level debug|info|warn|error|off] [--log-json] "
      "[--slow-request-ms <n>] [--drain-linger-ms <n>]\n");
  return 2;
}

Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

int Fail(const Status& status, const std::string& what) {
  std::fprintf(stderr, "dbpcd: %s: %s\n", what.c_str(),
               status.ToString().c_str());
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string schema_path, plan_path, port_file, metrics_json_path;
  std::string admin_port_file;
  DaemonOptions options;
  options.service.jobs = 4;
  bool strict = false;
  int drain_linger_ms = 0;
  Logger::Options log_options;
  log_options.level = LogLevel::kInfo;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&](int* out) {
      if (i + 1 >= argc) return false;
      *out = std::atoi(argv[++i]);
      return true;
    };
    if (arg == "--schema" && i + 1 < argc) {
      schema_path = argv[++i];
    } else if (arg == "--plan" && i + 1 < argc) {
      plan_path = argv[++i];
    } else if (arg == "--host" && i + 1 < argc) {
      options.host = argv[++i];
    } else if (arg == "--port-file" && i + 1 < argc) {
      port_file = argv[++i];
    } else if (arg == "--metrics-json" && i + 1 < argc) {
      metrics_json_path = argv[++i];
    } else if (arg == "--port") {
      if (!next(&options.port)) return Usage();
    } else if (arg == "--jobs") {
      if (!next(&options.service.jobs)) return Usage();
    } else if (arg == "--deadline-ms") {
      if (!next(&options.service.deadline_ms)) return Usage();
    } else if (arg == "--queue-depth") {
      if (!next(&options.queue_depth)) return Usage();
    } else if (arg == "--max-connections") {
      if (!next(&options.max_connections)) return Usage();
    } else if (arg == "--read-timeout-ms") {
      if (!next(&options.read_timeout_ms)) return Usage();
    } else if (arg == "--write-timeout-ms") {
      if (!next(&options.write_timeout_ms)) return Usage();
    } else if (arg == "--drain-grace-ms") {
      if (!next(&options.drain_grace_ms)) return Usage();
    } else if (arg == "--io-model" && i + 1 < argc) {
      Result<DaemonIoModel> model = ParseDaemonIoModel(argv[++i]);
      if (!model.ok()) return Fail(model.status(), "--io-model");
      options.io_model = *model;
    } else if (arg == "--io-threads") {
      if (!next(&options.io_threads)) return Usage();
    } else if (arg == "--strict") {
      strict = true;
    } else if (arg == "--no-optimizer") {
      options.service.supervisor.run_optimizer = false;
    } else if (arg == "--no-cache") {
      options.service.cache.enabled = false;
    } else if (arg == "--admin-port") {
      if (!next(&options.admin_port)) return Usage();
    } else if (arg == "--admin-port-file" && i + 1 < argc) {
      admin_port_file = argv[++i];
    } else if (arg == "--log-level" && i + 1 < argc) {
      if (!ParseLogLevel(argv[++i], &log_options.level)) {
        std::fprintf(stderr, "dbpcd: unknown --log-level \"%s\"\n", argv[i]);
        return Usage();
      }
    } else if (arg == "--log-json") {
      log_options.json = true;
    } else if (arg == "--slow-request-ms") {
      if (!next(&options.slow_request_ms)) return Usage();
    } else if (arg == "--drain-linger-ms") {
      if (!next(&drain_linger_ms)) return Usage();
    } else {
      return Usage();
    }
  }
  if (schema_path.empty() || plan_path.empty()) return Usage();
  if (drain_linger_ms < 0) return Usage();

  GlobalLogger().Configure(log_options);

  if (strict) {
    options.service.supervisor.mode = AnalystMode::kStrict;
  } else {
    options.service.supervisor.mode = AnalystMode::kAssisted;
    options.service.supervisor.analyst = ApproveAllAnalyst();
  }

  Result<std::string> ddl_text = ReadFile(schema_path);
  if (!ddl_text.ok()) return Fail(ddl_text.status(), schema_path);
  Result<Schema> schema = ParseDdl(*ddl_text);
  if (!schema.ok()) return Fail(schema.status(), schema_path);

  Result<std::string> plan_text = ReadFile(plan_path);
  if (!plan_text.ok()) return Fail(plan_text.status(), plan_path);
  Result<RestructuringPlan> plan = ParsePlan(*plan_text);
  if (!plan.ok()) return Fail(plan.status(), plan_path);

  Result<std::unique_ptr<ConversionDaemon>> daemon =
      ConversionDaemon::Start(*schema, plan->View(), options);
  if (!daemon.ok()) return Fail(daemon.status(), "daemon startup");

  struct sigaction action;
  memset(&action, 0, sizeof(action));
  action.sa_handler = HandleSignal;
  sigaction(SIGTERM, &action, nullptr);
  sigaction(SIGINT, &action, nullptr);

  std::fprintf(stderr,
               "dbpcd: listening on %s:%d (proto=%d, jobs=%d, io=%s)\n",
               options.host.c_str(), (*daemon)->port(), kProtocolVersion,
               options.service.jobs, DaemonIoModelName(options.io_model));
  if (!port_file.empty()) {
    std::ofstream out(port_file);
    if (!out) {
      return Fail(Status::NotFound("cannot write " + port_file), port_file);
    }
    out << (*daemon)->port() << "\n";
  }
  if (!admin_port_file.empty()) {
    if ((*daemon)->admin_port() < 0) {
      return Fail(
          Status::InvalidArgument("--admin-port-file requires --admin-port"),
          admin_port_file);
    }
    std::ofstream out(admin_port_file);
    if (!out) {
      return Fail(Status::NotFound("cannot write " + admin_port_file),
                  admin_port_file);
    }
    out << (*daemon)->admin_port() << "\n";
  }

  while (g_signal.load() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }

  std::fprintf(stderr, "dbpcd: %s received, draining...\n",
               g_signal.load() == SIGTERM ? "SIGTERM" : "SIGINT");
  Status drained = (*daemon)->Drain();
  if (drain_linger_ms > 0) {
    // Lame-duck window: drained but still serving, so health checkers see
    // /readyz answer 503 (instead of connection-refused) before exit.
    std::this_thread::sleep_for(std::chrono::milliseconds(drain_linger_ms));
  }
  (*daemon)->Stop();
  std::fprintf(stderr,
               "dbpcd: drained (%llu jobs admitted, %llu completed): %s\n",
               static_cast<unsigned long long>((*daemon)->jobs_admitted()),
               static_cast<unsigned long long>((*daemon)->jobs_completed()),
               drained.ToString().c_str());

  if (!metrics_json_path.empty()) {
    std::string snapshot = (*daemon)->metrics().ToJson();
    if (metrics_json_path == "-") {
      std::fprintf(stderr, "%s", snapshot.c_str());
    } else {
      std::ofstream out(metrics_json_path);
      if (out) out << snapshot;
    }
  }
  return drained.ok() ? 0 : 1;
}
