// dbpcc — the database program conversion compiler.
//
// Command-line front end to the Figure 4.1 pipeline:
//
//   dbpcc --schema company.ddl --plan fig44.plan prog1.cpl prog2.cpl
//
// reads a Maryland-DDL schema, a restructuring plan (see
// restructure/plan_parser.h for the plan language) and one or more CPL
// database programs, converts each program, and writes the converted
// source to stdout with the analyst report on stderr.
//
// Flags:
//   --schema <file>     source schema (required)
//   --plan <file>       restructuring plan (required)
//   --jobs <n>          worker threads for the conversion batch (default 1;
//                       the report is identical for any job count)
//   --deadline-ms <n>   per-program soft deadline; an overrunning program
//                       degrades to refused instead of stalling the batch
//   --metrics-json <f>  write a metrics snapshot (per-stage latency
//                       histograms, classification counters) to <f>;
//                       "-" writes to stderr
//   --trace-json <f>    trace the batch and write the span trees — one
//                       root per conversion job with children for every
//                       Figure 4.1 stage, per-transformation and
//                       per-rewrite-rule subspans — as Chrome trace_event
//                       JSON (loadable in chrome://tracing / Perfetto) to
//                       <f>; "-" writes to stderr
//   --provenance        print (to stdout) an annotated listing per
//                       converted program mapping every emitted statement
//                       to the source statement and rewrite rule that
//                       produced it
//   --strict            reject analyst-level conversions (default: an
//                       approve-all analyst stands in for the interactive
//                       Conversion Analyst)
//   --no-optimizer      skip the Figure 4.1 optimizer stage
//   --no-indexes        disable engine equality indexes on the translated
//                       database (ablation: results are identical, only
//                       access-path costs change); also priced into the
//                       cost model via the statistics catalog
//   --no-cache          disable the template-level conversion memo: every
//                       program pays the full pipeline (output is
//                       byte-identical either way); cache.* counters in
//                       --metrics-json show hit/miss/eviction activity
//   --emit <dialect>    cpl (default) | codasyl | sequel
//   --target-ddl        also print the restructured schema's DDL
//   --data <file>       load a database dump (engine/textio format) over
//                       the source schema and translate it along the plan;
//                       statistics collected from the translated instance
//                       switch the optimizer to cost-based plan selection
//   --data-out <file>   where to write the translated dump (default: the
//                       input path with ".out" appended)
//   --advise            print program-improvement advice for each source
//                       program (paper section 5.3's programmer's aid)
//   --explain           print (to stderr) the cost-based optimizer's plan
//                       choice per retrieval: every candidate access path
//                       with its estimated cost, and — with --data — the
//                       measured engine-op count of the chosen plan
//
// Exit status: 0 when every program was accepted, 1 otherwise, 2 on usage
// or input errors.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "api/dbpc.h"

namespace {

using namespace dbpc;

int Usage() {
  std::fprintf(stderr,
               "usage: dbpcc --schema <ddl> --plan <plan> [--jobs <n>] "
               "[--deadline-ms <n>] [--metrics-json <file>] "
               "[--trace-json <file>] [--provenance] [--strict] "
               "[--no-optimizer] [--no-indexes] [--no-cache] "
               "[--emit cpl|codasyl|sequel] [--target-ddl] "
               "[--data <dump> [--data-out <file>]] [--explain] "
               "<program>...\n");
  return 2;
}

Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

int Fail(const Status& status, const std::string& what) {
  std::fprintf(stderr, "dbpcc: %s: %s\n", what.c_str(),
               status.ToString().c_str());
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string schema_path;
  std::string plan_path;
  std::string emit = "cpl";
  bool strict = false;
  bool optimizer = true;
  bool indexes = true;
  bool cache = true;
  bool target_ddl = false;
  bool advise = false;
  bool explain = false;
  int jobs = 1;
  int deadline_ms = 0;
  std::string metrics_json_path;
  std::string trace_json_path;
  bool provenance = false;
  std::string data_path;
  std::string data_out_path;
  std::vector<std::string> program_paths;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--schema" && i + 1 < argc) {
      schema_path = argv[++i];
    } else if (arg == "--plan" && i + 1 < argc) {
      plan_path = argv[++i];
    } else if (arg == "--emit" && i + 1 < argc) {
      emit = argv[++i];
    } else if (arg == "--jobs" && i + 1 < argc) {
      jobs = std::atoi(argv[++i]);
    } else if (arg == "--deadline-ms" && i + 1 < argc) {
      deadline_ms = std::atoi(argv[++i]);
    } else if (arg == "--metrics-json" && i + 1 < argc) {
      metrics_json_path = argv[++i];
    } else if (arg == "--trace-json" && i + 1 < argc) {
      trace_json_path = argv[++i];
    } else if (arg == "--provenance") {
      provenance = true;
    } else if (arg == "--strict") {
      strict = true;
    } else if (arg == "--no-optimizer") {
      optimizer = false;
    } else if (arg == "--no-indexes") {
      indexes = false;
    } else if (arg == "--no-cache") {
      cache = false;
    } else if (arg == "--target-ddl") {
      target_ddl = true;
    } else if (arg == "--data" && i + 1 < argc) {
      data_path = argv[++i];
    } else if (arg == "--data-out" && i + 1 < argc) {
      data_out_path = argv[++i];
    } else if (arg == "--advise") {
      advise = true;
    } else if (arg == "--explain") {
      explain = true;
    } else if (!arg.empty() && arg[0] == '-') {
      return Usage();
    } else {
      program_paths.push_back(arg);
    }
  }
  if (schema_path.empty() || plan_path.empty() ||
      (program_paths.empty() && data_path.empty())) {
    return Usage();
  }
  if (emit != "cpl" && emit != "codasyl" && emit != "sequel") return Usage();

  Result<std::string> ddl_text = ReadFile(schema_path);
  if (!ddl_text.ok()) return Fail(ddl_text.status(), schema_path);
  Result<Schema> schema = ParseDdl(*ddl_text);
  if (!schema.ok()) return Fail(schema.status(), schema_path);

  Result<std::string> plan_text = ReadFile(plan_path);
  if (!plan_text.ok()) return Fail(plan_text.status(), plan_path);
  Result<RestructuringPlan> plan = ParsePlan(*plan_text);
  if (!plan.ok()) return Fail(plan.status(), plan_path);

  // The translated database (and the statistics collected from it) must
  // exist before the conversion batch runs: the optimizer prices candidate
  // access paths against the *target* instance.
  const IndexOptions index_options{.enabled = indexes,
                                   .auto_join_indexes = indexes};
  std::optional<Database> target_db;
  StatisticsCatalog catalog;
  if (!data_path.empty()) {
    Result<std::string> dump = ReadFile(data_path);
    if (!dump.ok()) return Fail(dump.status(), data_path);
    Result<Database> source_db = LoadDatabaseText(*schema, *dump);
    if (!source_db.ok()) return Fail(source_db.status(), data_path);
    Result<Database> translated =
        TranslateDatabase(*source_db, plan->View());
    if (!translated.ok()) return Fail(translated.status(), "data translation");
    target_db = std::move(translated).value();
    // Options first: the catalog records index availability, which the
    // cost model uses to price indexed vs. scan access paths.
    target_db->SetIndexOptions(index_options);
    catalog = StatisticsCatalog::Collect(*target_db);
  }

  ServiceOptions options;
  options.jobs = jobs;
  options.deadline_ms = deadline_ms;
  SpanCollector spans;
  if (!trace_json_path.empty()) options.supervisor.spans = &spans;
  options.supervisor.run_optimizer = optimizer;
  options.supervisor.index = index_options;
  options.cache.enabled = cache;
  if (target_db.has_value()) options.supervisor.statistics = &catalog;
  if (strict) {
    options.supervisor.mode = AnalystMode::kStrict;
  } else {
    options.supervisor.mode = AnalystMode::kAssisted;
    options.supervisor.analyst = ApproveAllAnalyst();
  }
  Result<std::unique_ptr<ConversionService>> service =
      ConversionService::Create(*schema, plan->View(), options);
  if (!service.ok()) return Fail(service.status(), "service setup");
  const ConversionSupervisor& supervisor = (*service)->supervisor();

  std::vector<Program> programs;
  for (const std::string& path : program_paths) {
    Result<std::string> source = ReadFile(path);
    if (!source.ok()) return Fail(source.status(), path);
    Result<Program> program = ParseProgram(*source);
    if (!program.ok()) return Fail(program.status(), path);
    programs.push_back(std::move(program).value());
  }

  // Submit through the public request type (api/types.h): the same model
  // the dbpcd wire protocol carries, so the CLI and the network path are
  // exercised identically.
  std::vector<ConversionRequest> requests;
  requests.reserve(programs.size());
  for (const Program& program : programs) {
    ConversionRequest request;
    request.program = program;
    requests.push_back(std::move(request));
  }
  Result<SystemConversionReport> report = (*service)->ConvertSystem(requests);
  if (!report.ok()) return Fail(report.status(), "conversion");

  if (advise) {
    for (const Program& program : programs) {
      std::vector<Advice> advice = AdviseProgram(*schema, program);
      if (advice.empty()) continue;
      std::fprintf(stderr, "advice for %s:\n", program.name.c_str());
      for (const Advice& a : advice) {
        std::fprintf(stderr, "  %s\n", a.ToString().c_str());
      }
    }
  }

  if (target_db.has_value()) {
    std::string out_path =
        data_out_path.empty() ? data_path + ".out" : data_out_path;
    Result<std::string> dump_out = DumpDatabaseText(*target_db);
    if (!dump_out.ok()) return Fail(dump_out.status(), "data dump");
    std::ofstream out(out_path);
    if (!out) return Fail(Status::NotFound("cannot write " + out_path), out_path);
    out << *dump_out;
    std::fprintf(stderr, "translated %zu records -> %s\n",
                 target_db->RecordCount(), out_path.c_str());
  }

  if (explain) {
    uint64_t measured_probes = 0;
    uint64_t measured_hits = 0;
    for (const PipelineOutcome& outcome : report->outcomes) {
      const OptimizerStats& os = outcome.optimizer_stats;
      if (!outcome.accepted) continue;
      std::fprintf(stderr, "explain %s:\n",
                   outcome.conversion.converted.name.c_str());
      // A memoized outcome's candidate costs were enumerated when the
      // entry was populated; say so instead of passing them off as fresh.
      std::string cached_line = ExplainCacheLine(outcome);
      if (!cached_line.empty()) std::fputs(cached_line.c_str(), stderr);
      if (os.plan_choices.empty()) {
        std::fprintf(stderr,
                     "  rules-only pass (no statistics): %d predicate(s) "
                     "pushed, %d sort(s) removed\n",
                     os.predicates_pushed, os.sorts_removed);
        continue;
      }
      // Plan choices are recorded in retrieval order; pair each with the
      // chosen retrieval so --data can measure the actual engine ops.
      std::vector<const Retrieval*> chosen;
      std::function<void(const std::vector<Stmt>&)> walk =
          [&](const std::vector<Stmt>& body) {
            for (const Stmt& s : body) {
              if ((s.kind == StmtKind::kForEach ||
                   s.kind == StmtKind::kRetrieve) &&
                  s.retrieval.has_value()) {
                chosen.push_back(&*s.retrieval);
              }
              walk(s.body);
              walk(s.else_body);
            }
          };
      walk(outcome.conversion.converted.body);
      for (size_t i = 0; i < os.plan_choices.size(); ++i) {
        const PlanChoice& pc = os.plan_choices[i];
        std::fprintf(stderr, "  retrieval %zu: %s\n", i + 1,
                     pc.original.c_str());
        for (const PlanCandidate& cand : pc.candidates) {
          std::fprintf(stderr, "    %c cost %10.1f  %s\n",
                       cand.chosen ? '*' : ' ', cand.cost, cand.plan.c_str());
        }
        if (target_db.has_value() && i < chosen.size()) {
          target_db->ResetStats();
          Result<std::vector<RecordId>> rows = EvaluateRetrieval(
              *target_db, *chosen[i], EmptyHostEnv(), EmptyCollectionEnv());
          measured_probes += target_db->stats().index_probes;
          measured_hits += target_db->stats().index_hits;
          if (rows.ok()) {
            std::fprintf(stderr,
                         "    estimated %.1f ops, actual %llu ops (%zu "
                         "records, %llu index probes)\n",
                         pc.cost_chosen,
                         static_cast<unsigned long long>(
                             target_db->stats().Total()),
                         rows->size(),
                         static_cast<unsigned long long>(
                             target_db->stats().index_probes));
          } else {
            // Host-variable or collection-start retrievals cannot run
            // standalone; the estimate stands on its own.
            std::fprintf(stderr, "    estimated %.1f ops, actual n/a (%s)\n",
                         pc.cost_chosen, rows.status().ToString().c_str());
          }
        }
      }
    }
    // Surface the measured engine access-path activity in the metrics
    // snapshot alongside the pipeline's own counters.
    (*service)->metrics().GetCounter("engine.index_probes")
        ->Increment(measured_probes);
    (*service)->metrics().GetCounter("engine.index_hits")
        ->Increment(measured_hits);
  }

  if (target_ddl) {
    std::printf("-- restructured schema\n%s\n",
                supervisor.target_schema().ToDdl().c_str());
  }

  if (provenance) {
    for (const PipelineOutcome& outcome : report->outcomes) {
      if (!outcome.accepted) continue;
      std::fputs(
          ProvenanceListing(outcome.conversion.converted.name,
                            outcome.conversion.source_statements,
                            outcome.conversion.converted)
              .c_str(),
          stdout);
    }
  }

  for (const PipelineOutcome& outcome : report->outcomes) {
    if (!outcome.accepted) {
      std::printf("-- program %s NOT converted (%s)\n",
                  outcome.conversion.converted.name.c_str(),
                  ConvertibilityName(outcome.classification));
      continue;
    }
    if (emit == "cpl") {
      std::printf("%s\n",
                  GenerateCplSource(outcome.conversion.converted).c_str());
    } else if (emit == "codasyl") {
      Result<LoweringResult> lowered = LowerToNavigational(
          supervisor.target_schema(), outcome.conversion.converted);
      if (!lowered.ok()) return Fail(lowered.status(), "lowering");
      std::printf("%s\n", lowered->program.ToSource().c_str());
    } else {  // sequel
      std::printf("-- program %s retrievals as SEQUEL\n",
                  outcome.conversion.converted.name.c_str());
      int index = 0;
      std::function<void(const std::vector<Stmt>&)> walk =
          [&](const std::vector<Stmt>& body) {
            for (const Stmt& s : body) {
              if ((s.kind == StmtKind::kForEach ||
                   s.kind == StmtKind::kRetrieve) &&
                  s.retrieval.has_value()) {
                Result<std::string> sql = GenerateSequel(
                    supervisor.target_schema(), *s.retrieval);
                if (sql.ok()) {
                  std::printf("-- retrieval %d\n%s;\n", ++index,
                              sql->c_str());
                } else {
                  std::printf("-- retrieval %d not expressible: %s\n",
                              ++index, sql.status().ToString().c_str());
                }
              }
              walk(s.body);
              walk(s.else_body);
            }
          };
      walk(outcome.conversion.converted.body);
    }
  }

  if (!metrics_json_path.empty()) {
    std::string snapshot = (*service)->metrics().ToJson();
    if (metrics_json_path == "-") {
      std::fprintf(stderr, "%s", snapshot.c_str());
    } else {
      std::ofstream out(metrics_json_path);
      if (!out) {
        return Fail(Status::NotFound("cannot write " + metrics_json_path),
                    metrics_json_path);
      }
      out << snapshot;
    }
  }

  if (!trace_json_path.empty()) {
    std::string trace = spans.ToChromeTraceJson();
    if (trace_json_path == "-") {
      std::fprintf(stderr, "%s", trace.c_str());
    } else {
      std::ofstream out(trace_json_path);
      if (!out) {
        return Fail(Status::NotFound("cannot write " + trace_json_path),
                    trace_json_path);
      }
      out << trace;
    }
  }

  std::fprintf(stderr, "%s", report->ToText().c_str());
  return report->fully_converted() ? 0 : 1;
}
