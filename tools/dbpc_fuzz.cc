// dbpc_fuzz — differential conversion fuzzer.
//
// Generates random (schema, restructuring plan, database, program) cases,
// converts each via the three strategies of paper section 2.1.2 — program
// rewrite, DML emulation, bridge — replays source and converted runs under
// identical I/O scripts, and diffs the observable traces (the paper's
// section 1.1 "runs equivalently" check). A fourth axis ("optimizer")
// diffs each converted program optimized vs. unoptimized, checking the
// cost-based optimizer's no-behaviour-change contract; a fifth ("index")
// repeats every run with engine index probing disabled, checking the
// index subsystem's trace-invisibility contract; a sixth ("columnar")
// repeats data translation and the converted runs under the columnar
// bulk copy engine vs. record-at-a-time, checking the bulk engine's
// equivalence contract; a seventh ("cache") converts every program
// cold-and-warm through a shared conversion memo and requires artifacts,
// span forests and execution traces byte-identical to the uncached
// pipeline's. Divergences are shrunk to minimal repros.
//
//   dbpc_fuzz --seed 1 --iterations 500
//   dbpc_fuzz --strategy bridge --no-shrink --iterations 50
//   dbpc_fuzz --diff-optimizer --iterations 500
//   dbpc_fuzz --diff-index --iterations 500
//   dbpc_fuzz --diff-columnar --iterations 500
//   dbpc_fuzz --diff-cache --iterations 500
//   dbpc_fuzz --replay samples/fuzz-regressions/*.repro
//   dbpc_fuzz --print-case 42
//
// Flags:
//   --seed <n>          base seed (default 1); per-iteration case seeds
//                       derive deterministically from it
//   --iterations <n>    cases to run (default 100)
//   --strategy <name>   rewrite | emulation | bridge | optimizer | index |
//                       columnar | cache; repeatable, default all seven
//   --diff-optimizer    shorthand for --strategy optimizer alone
//   --diff-index        shorthand for --strategy index alone
//   --diff-columnar     shorthand for --strategy columnar alone
//   --diff-cache        shorthand for --strategy cache alone
//   --shrink / --no-shrink
//                       minimize failing cases (default on)
//   --max-failures <n>  stop after this many divergences (default 5)
//   --write-repros <dir>
//                       write each shrunk failure as <dir>/seed-<n>.repro
//   --trace             capture a span tree of each divergent run (see
//                       common/span.h); written into the repro's
//                       == TRACE == section
//   --replay <file>     replay repro files instead of fuzzing; repeatable
//   --print-case <n>    print the generated case for seed <n>, run it, and
//                       report each strategy's outcome — for a divergence,
//                       the event index plus a two-line context window
//                       around it from both traces
//
// Exit status: 0 when the run is clean (all repros hold / no divergences
// and no setup errors), 1 otherwise, 2 on usage errors.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "api/dbpc.h"

namespace {

using namespace dbpc;

int Usage() {
  std::fprintf(stderr,
               "usage: dbpc_fuzz [--seed <n>] [--iterations <n>] "
               "[--strategy rewrite|emulation|bridge|optimizer|index|"
               "columnar|cache]... "
               "[--diff-optimizer] [--diff-index] [--diff-columnar] "
               "[--diff-cache] "
               "[--shrink|"
               "--no-shrink] [--max-failures <n>] [--write-repros <dir>] "
               "[--trace] [--replay <file>]... [--print-case <seed>]\n");
  return 2;
}

Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

int ReplayAll(const std::vector<std::string>& paths,
              const std::vector<FuzzStrategy>& strategies) {
  int failed = 0;
  for (const std::string& path : paths) {
    Result<std::string> text = ReadFile(path);
    if (!text.ok()) {
      std::fprintf(stderr, "dbpc_fuzz: %s: %s\n", path.c_str(),
                   text.status().ToString().c_str());
      ++failed;
      continue;
    }
    Result<FuzzRepro> repro = ParseRepro(*text);
    if (!repro.ok()) {
      std::fprintf(stderr, "dbpc_fuzz: %s: %s\n", path.c_str(),
                   repro.status().ToString().c_str());
      ++failed;
      continue;
    }
    Status status = ReplayRepro(*repro, strategies);
    if (status.ok()) {
      std::printf("PASS %s\n", path.c_str());
    } else {
      std::printf("FAIL %s: %s\n", path.c_str(), status.ToString().c_str());
      ++failed;
    }
  }
  return failed == 0 ? 0 : 1;
}

void WriteRepros(const FuzzReport& report, const std::string& dir) {
  for (const FuzzFailure& f : report.failures) {
    FuzzRepro repro;
    repro.note = "shrunk from seed " + std::to_string(f.seed) + " [" +
                 FuzzStrategyName(f.strategy) + "] " + f.detail;
    repro.c = f.shrunk;
    repro.span_tree = f.span_tree;
    std::string path = dir + "/seed-" + std::to_string(f.seed) + ".repro";
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "dbpc_fuzz: cannot write %s\n", path.c_str());
      continue;
    }
    out << ReproToText(repro);
    std::printf("wrote %s\n", path.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  FuzzOptions options;
  std::vector<FuzzStrategy> strategies;
  std::vector<std::string> replay_paths;
  std::string repro_dir;
  bool print_case = false;
  uint64_t print_seed = 0;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--seed") {
      const char* v = next();
      if (v == nullptr) return Usage();
      options.seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--iterations") {
      const char* v = next();
      if (v == nullptr) return Usage();
      options.iterations = std::atoi(v);
    } else if (arg == "--strategy") {
      const char* v = next();
      if (v == nullptr) return Usage();
      Result<FuzzStrategy> s = ParseFuzzStrategyName(v);
      if (!s.ok()) {
        std::fprintf(stderr, "dbpc_fuzz: %s\n", s.status().ToString().c_str());
        return 2;
      }
      strategies.push_back(*s);
    } else if (arg == "--diff-optimizer") {
      strategies = {FuzzStrategy::kOptimizerDiff};
    } else if (arg == "--diff-index") {
      strategies = {FuzzStrategy::kIndexDiff};
    } else if (arg == "--diff-columnar") {
      strategies = {FuzzStrategy::kColumnarDiff};
    } else if (arg == "--diff-cache") {
      strategies = {FuzzStrategy::kCacheDiff};
    } else if (arg == "--shrink") {
      options.shrink = true;
    } else if (arg == "--no-shrink") {
      options.shrink = false;
    } else if (arg == "--max-failures") {
      const char* v = next();
      if (v == nullptr) return Usage();
      options.max_failures = std::atoi(v);
    } else if (arg == "--write-repros") {
      const char* v = next();
      if (v == nullptr) return Usage();
      repro_dir = v;
    } else if (arg == "--trace") {
      options.trace = true;
    } else if (arg == "--replay") {
      const char* v = next();
      if (v == nullptr) return Usage();
      replay_paths.push_back(v);
    } else if (arg == "--print-case") {
      const char* v = next();
      if (v == nullptr) return Usage();
      print_case = true;
      print_seed = std::strtoull(v, nullptr, 10);
    } else {
      return Usage();
    }
  }
  if (!strategies.empty()) options.strategies = strategies;

  if (print_case) {
    FuzzRepro repro;
    repro.note = "generated case, seed " + std::to_string(print_seed);
    repro.c = GenerateFuzzCase(print_seed);
    std::fputs(ReproToText(repro).c_str(), stdout);
    // Run the case and show per-strategy verdicts; a divergence prints its
    // event index with a context window from both traces (the prefix case
    // shows "<end of trace>" on the side that stopped early).
    CaseRun run = RunFuzzCase(repro.c, options.strategies);
    if (!run.setup.ok()) {
      std::printf("setup: %s\n", run.setup.ToString().c_str());
      return 1;
    }
    bool divergent = false;
    for (const StrategyRun& s : run.strategies) {
      switch (s.outcome) {
        case StrategyOutcome::kEquivalent:
          std::printf("strategy %s: equivalent\n",
                      FuzzStrategyName(s.strategy));
          break;
        case StrategyOutcome::kSkipped:
          std::printf("strategy %s: skipped (%s)\n",
                      FuzzStrategyName(s.strategy), s.detail.c_str());
          break;
        case StrategyOutcome::kDivergent:
          divergent = true;
          std::printf("strategy %s: DIVERGENT (%s)\n",
                      FuzzStrategyName(s.strategy), s.detail.c_str());
          if (s.divergence >= 0) {
            std::fputs(Trace::DivergenceContext(s.source_trace,
                                                s.target_trace, s.divergence)
                           .c_str(),
                       stdout);
          }
          break;
      }
    }
    return divergent ? 1 : 0;
  }

  if (!replay_paths.empty()) {
    return ReplayAll(replay_paths, options.strategies);
  }

  FuzzReport report = RunFuzz(options);
  std::fputs(report.ToText().c_str(), stdout);
  if (!repro_dir.empty() && !report.failures.empty()) {
    WriteRepros(report, repro_dir);
  }
  return report.Clean() ? 0 : 1;
}
