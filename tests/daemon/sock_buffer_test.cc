#include "daemon/sock_buffer.h"

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>

namespace dbpc {
namespace {

/// A connected AF_UNIX pair: `reader` wraps one end, `peer_fd` is the raw
/// other end driven directly by the test.
struct Pair {
  std::unique_ptr<SockBuffer> reader;
  int peer_fd = -1;

  explicit Pair(SockBuffer::Limits limits) {
    int fds[2] = {-1, -1};
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    reader = std::make_unique<SockBuffer>(fds[0], limits);
    peer_fd = fds[1];
  }

  ~Pair() {
    if (peer_fd >= 0) ::close(peer_fd);
  }

  void Send(const std::string& bytes) {
    ASSERT_EQ(::send(peer_fd, bytes.data(), bytes.size(), 0),
              static_cast<ssize_t>(bytes.size()));
  }

  void CloseWrite() {
    ::shutdown(peer_fd, SHUT_WR);
  }
};

SockBuffer::Limits FastLimits() {
  return SockBuffer::Limits{/*read_timeout_ms=*/500,
                            /*write_timeout_ms=*/500,
                            /*max_line_bytes=*/64};
}

TEST(SockBufferTest, ReadsLineAndStripsTerminators) {
  Pair pair(FastLimits());
  pair.Send("PING\nSTATUS 1\r\n");
  Result<std::string> line = pair.reader->ReadLine();
  ASSERT_TRUE(line.ok()) << line.status();
  EXPECT_EQ(*line, "PING");
  line = pair.reader->ReadLine();
  ASSERT_TRUE(line.ok()) << line.status();
  EXPECT_EQ(*line, "STATUS 1");
}

TEST(SockBufferTest, ReassemblesLineFromPartialWrites) {
  // A command line split across many TCP segments must come out whole —
  // including a split in the middle of the terminator sequence.
  Pair pair(FastLimits());
  std::thread writer([&pair] {
    for (const char* chunk : {"SUB", "MIT 1", "23 trace", "=1\r", "\n"}) {
      pair.Send(chunk);
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  });
  Result<std::string> line = pair.reader->ReadLine();
  writer.join();
  ASSERT_TRUE(line.ok()) << line.status();
  EXPECT_EQ(*line, "SUBMIT 123 trace=1");
}

TEST(SockBufferTest, ReadExactSpansBufferBoundaries) {
  // Payload bytes arriving together with the command line stay buffered;
  // the rest arrives later; ReadExact must splice both.
  Pair pair(FastLimits());
  pair.Send("SUBMIT 10\nabcd");
  Result<std::string> line = pair.reader->ReadLine();
  ASSERT_TRUE(line.ok()) << line.status();
  std::thread writer([&pair] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    pair.Send("efghij");
  });
  Result<std::string> payload = pair.reader->ReadExact(10);
  writer.join();
  ASSERT_TRUE(payload.ok()) << payload.status();
  EXPECT_EQ(*payload, "abcdefghij");
}

TEST(SockBufferTest, OversizedLineIsStructuredError) {
  Pair pair(FastLimits());
  pair.Send(std::string(100, 'x'));  // no newline within max_line_bytes=64
  Result<std::string> line = pair.reader->ReadLine();
  ASSERT_FALSE(line.ok());
  EXPECT_EQ(line.status().code(), StatusCode::kInvalidArgument);
}

TEST(SockBufferTest, ReadTimesOutAsDeadlineExceeded) {
  Pair pair(FastLimits());
  auto start = std::chrono::steady_clock::now();
  Result<std::string> line = pair.reader->ReadLine();
  auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                     std::chrono::steady_clock::now() - start)
                     .count();
  ASSERT_FALSE(line.ok());
  EXPECT_EQ(line.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_GE(elapsed, 400);
}

TEST(SockBufferTest, SlowTrickleCannotExtendTheDeadline) {
  // The deadline is whole-call: a peer feeding one byte per poll interval
  // must still be cut off at read_timeout_ms, not kept alive per byte.
  Pair pair(FastLimits());
  std::atomic<bool> done{false};
  std::thread dripper([&pair, &done] {
    while (!done.load()) {
      ::send(pair.peer_fd, "x", 1, 0);
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  });
  auto start = std::chrono::steady_clock::now();
  Result<std::string> line = pair.reader->ReadLine();
  auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                     std::chrono::steady_clock::now() - start)
                     .count();
  done.store(true);
  dripper.join();
  ASSERT_FALSE(line.ok());
  // Either the deadline fired or the drip crossed max_line_bytes first;
  // both are structured, and neither lets the call run unboundedly.
  EXPECT_TRUE(line.status().code() == StatusCode::kDeadlineExceeded ||
              line.status().code() == StatusCode::kInvalidArgument)
      << line.status();
  EXPECT_LT(elapsed, 5000);
}

TEST(SockBufferTest, PeerCloseIsUnavailable) {
  Pair pair(FastLimits());
  pair.Send("no newline");
  pair.CloseWrite();
  Result<std::string> line = pair.reader->ReadLine();
  ASSERT_FALSE(line.ok());
  EXPECT_EQ(line.status().code(), StatusCode::kUnavailable);
}

TEST(SockBufferTest, MidPayloadDisconnectIsUnavailable) {
  // The mid-request disconnect shape: SUBMIT promised 100 bytes, the peer
  // died after 5. ReadExact must fail structurally, not hang or return a
  // short read.
  Pair pair(FastLimits());
  pair.Send("SUBMIT 100\nhello");
  ASSERT_TRUE(pair.reader->ReadLine().ok());
  pair.CloseWrite();
  Result<std::string> payload = pair.reader->ReadExact(100);
  ASSERT_FALSE(payload.ok());
  EXPECT_EQ(payload.status().code(), StatusCode::kUnavailable);
}

TEST(SockBufferTest, ShutdownUnblocksAReadFromAnotherThread) {
  Pair pair(SockBuffer::Limits{/*read_timeout_ms=*/30000,
                               /*write_timeout_ms=*/30000,
                               /*max_line_bytes=*/64});
  std::thread unblocker([&pair] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    pair.reader->Shutdown();
  });
  auto start = std::chrono::steady_clock::now();
  Result<std::string> line = pair.reader->ReadLine();
  auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                     std::chrono::steady_clock::now() - start)
                     .count();
  unblocker.join();
  ASSERT_FALSE(line.ok());
  EXPECT_EQ(line.status().code(), StatusCode::kUnavailable);
  EXPECT_LT(elapsed, 5000);  // did not wait out the 30s timeout
  EXPECT_TRUE(pair.reader->shutdown_requested());
}

TEST(SockBufferTest, WriteAllDeliversEverything) {
  Pair pair(FastLimits());
  std::string blob(256 * 1024, 'y');
  std::string received;
  // Drain concurrently: the blob exceeds any default socket buffer, so an
  // unread peer would otherwise hit the write deadline.
  std::thread drainer([&pair, &received, &blob] {
    char chunk[4096];
    while (received.size() < blob.size()) {
      ssize_t n = ::recv(pair.peer_fd, chunk, sizeof(chunk), 0);
      if (n <= 0) break;
      received.append(chunk, static_cast<size_t>(n));
    }
  });
  Status wrote = pair.reader->WriteAll(blob);
  drainer.join();
  ASSERT_TRUE(wrote.ok()) << wrote;
  EXPECT_EQ(received, blob);
}

TEST(SockBufferTest, TryReadLineReportsNeedMoreWithoutBlocking) {
  Pair pair(FastLimits());
  // Nothing buffered: kNeedMore immediately, no waiting.
  auto start = std::chrono::steady_clock::now();
  Result<SockBuffer::IoStep> step = pair.reader->TryReadLine(nullptr);
  auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                     std::chrono::steady_clock::now() - start)
                     .count();
  ASSERT_TRUE(step.ok()) << step.status();
  EXPECT_EQ(*step, SockBuffer::IoStep::kNeedMore);
  EXPECT_LT(elapsed, 100);

  // A partial line stays kNeedMore; completing it flips to kReady.
  pair.Send("PI");
  ASSERT_TRUE(pair.reader->FillOnce().ok());
  step = pair.reader->TryReadLine(nullptr);
  ASSERT_TRUE(step.ok()) << step.status();
  EXPECT_EQ(*step, SockBuffer::IoStep::kNeedMore);

  pair.Send("NG\r\nNEXT\n");
  ASSERT_TRUE(pair.reader->FillOnce().ok());
  std::string line;
  step = pair.reader->TryReadLine(&line);
  ASSERT_TRUE(step.ok()) << step.status();
  EXPECT_EQ(*step, SockBuffer::IoStep::kReady);
  EXPECT_EQ(line, "PING");
  // The second pipelined line is already buffered — consumable with no
  // further fill.
  step = pair.reader->TryReadLine(&line);
  ASSERT_TRUE(step.ok()) << step.status();
  EXPECT_EQ(*step, SockBuffer::IoStep::kReady);
  EXPECT_EQ(line, "NEXT");
}

TEST(SockBufferTest, TryReadExactAccumulatesAcrossFills) {
  Pair pair(FastLimits());
  pair.Send("abcd");
  ASSERT_TRUE(pair.reader->FillOnce().ok());
  std::string payload;
  Result<SockBuffer::IoStep> step = pair.reader->TryReadExact(10, &payload);
  ASSERT_TRUE(step.ok()) << step.status();
  EXPECT_EQ(*step, SockBuffer::IoStep::kNeedMore);

  pair.Send("efghij");
  ASSERT_TRUE(pair.reader->FillOnce().ok());
  step = pair.reader->TryReadExact(10, &payload);
  ASSERT_TRUE(step.ok()) << step.status();
  EXPECT_EQ(*step, SockBuffer::IoStep::kReady);
  EXPECT_EQ(payload, "abcdefghij");
}

TEST(SockBufferTest, QueuedWritesCoalesceIntoOneFlush) {
  Pair pair(FastLimits());
  // A multi-part reply (status line + payload + terminator) queued piece
  // by piece must reach the peer as one contiguous byte stream.
  pair.reader->QueueWrite("DATA 5\n");
  pair.reader->QueueWrite("hello");
  pair.reader->QueueWrite("\n");
  EXPECT_EQ(pair.reader->queued_write_bytes(), 13u);
  Result<SockBuffer::IoStep> step = pair.reader->FlushQueued();
  ASSERT_TRUE(step.ok()) << step.status();
  EXPECT_EQ(*step, SockBuffer::IoStep::kReady);
  EXPECT_EQ(pair.reader->queued_write_bytes(), 0u);

  char chunk[64];
  ssize_t n = ::recv(pair.peer_fd, chunk, sizeof(chunk), 0);
  ASSERT_EQ(n, 13);
  EXPECT_EQ(std::string(chunk, 13), "DATA 5\nhello\n");
}

TEST(SockBufferTest, FlushQueuedReportsNeedMoreOnFullSocketAndResumes) {
  Pair pair(FastLimits());
  // Shrink both kernel buffers so a modest blob overfills them while the
  // peer is not reading: FlushQueued must park at kNeedMore (the epoll
  // session re-arms EPOLLOUT on this), then complete once the peer drains.
  int small = 4096;
  ASSERT_EQ(::setsockopt(pair.reader->fd(), SOL_SOCKET, SO_SNDBUF, &small,
                         sizeof(small)),
            0);
  ASSERT_EQ(::setsockopt(pair.peer_fd, SOL_SOCKET, SO_RCVBUF, &small,
                         sizeof(small)),
            0);
  std::string blob(512 * 1024, 'w');
  pair.reader->QueueWrite(blob);
  Result<SockBuffer::IoStep> step = pair.reader->FlushQueued();
  ASSERT_TRUE(step.ok()) << step.status();
  EXPECT_EQ(*step, SockBuffer::IoStep::kNeedMore);
  EXPECT_GT(pair.reader->queued_write_bytes(), 0u);

  std::string received;
  std::thread drainer([&] {
    char chunk[4096];
    while (received.size() < blob.size()) {
      ssize_t n = ::recv(pair.peer_fd, chunk, sizeof(chunk), 0);
      if (n <= 0) break;
      received.append(chunk, static_cast<size_t>(n));
    }
  });
  // Keep flushing as the peer drains (what the reactor does on EPOLLOUT).
  while (pair.reader->queued_write_bytes() > 0) {
    step = pair.reader->FlushQueued();
    ASSERT_TRUE(step.ok()) << step.status();
    if (*step == SockBuffer::IoStep::kNeedMore) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  drainer.join();
  EXPECT_EQ(received, blob);
}

TEST(SockBufferTest, DestroyedBuffersAreRecycledThroughThePool) {
  size_t before = SockBuffer::RecycledBufferPoolSize();
  {
    Pair pair(FastLimits());
    pair.Send("PING\n");
    ASSERT_TRUE(pair.reader->ReadLine().ok());
  }  // reader destroyed: its input/output buffers return to the free list
  size_t after = SockBuffer::RecycledBufferPoolSize();
  EXPECT_GT(after, before);

  // A fresh session draws from the pool rather than growing it further.
  Pair reuse(FastLimits());
  EXPECT_LT(SockBuffer::RecycledBufferPoolSize(), after);
}

TEST(SockBufferTest, WriteToStalledPeerTimesOut) {
  Pair pair(FastLimits());
  // Nobody reads peer_fd: once both socket buffers fill, WriteAll must
  // give up at the write deadline instead of blocking forever.
  std::string blob(8 * 1024 * 1024, 'z');
  Status wrote = pair.reader->WriteAll(blob);
  ASSERT_FALSE(wrote.ok());
  EXPECT_EQ(wrote.code(), StatusCode::kDeadlineExceeded);
}

}  // namespace
}  // namespace dbpc
