#include "daemon/sock_buffer.h"

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>

namespace dbpc {
namespace {

/// A connected AF_UNIX pair: `reader` wraps one end, `peer_fd` is the raw
/// other end driven directly by the test.
struct Pair {
  std::unique_ptr<SockBuffer> reader;
  int peer_fd = -1;

  explicit Pair(SockBuffer::Limits limits) {
    int fds[2] = {-1, -1};
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    reader = std::make_unique<SockBuffer>(fds[0], limits);
    peer_fd = fds[1];
  }

  ~Pair() {
    if (peer_fd >= 0) ::close(peer_fd);
  }

  void Send(const std::string& bytes) {
    ASSERT_EQ(::send(peer_fd, bytes.data(), bytes.size(), 0),
              static_cast<ssize_t>(bytes.size()));
  }

  void CloseWrite() {
    ::shutdown(peer_fd, SHUT_WR);
  }
};

SockBuffer::Limits FastLimits() {
  return SockBuffer::Limits{/*read_timeout_ms=*/500,
                            /*write_timeout_ms=*/500,
                            /*max_line_bytes=*/64};
}

TEST(SockBufferTest, ReadsLineAndStripsTerminators) {
  Pair pair(FastLimits());
  pair.Send("PING\nSTATUS 1\r\n");
  Result<std::string> line = pair.reader->ReadLine();
  ASSERT_TRUE(line.ok()) << line.status();
  EXPECT_EQ(*line, "PING");
  line = pair.reader->ReadLine();
  ASSERT_TRUE(line.ok()) << line.status();
  EXPECT_EQ(*line, "STATUS 1");
}

TEST(SockBufferTest, ReassemblesLineFromPartialWrites) {
  // A command line split across many TCP segments must come out whole —
  // including a split in the middle of the terminator sequence.
  Pair pair(FastLimits());
  std::thread writer([&pair] {
    for (const char* chunk : {"SUB", "MIT 1", "23 trace", "=1\r", "\n"}) {
      pair.Send(chunk);
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  });
  Result<std::string> line = pair.reader->ReadLine();
  writer.join();
  ASSERT_TRUE(line.ok()) << line.status();
  EXPECT_EQ(*line, "SUBMIT 123 trace=1");
}

TEST(SockBufferTest, ReadExactSpansBufferBoundaries) {
  // Payload bytes arriving together with the command line stay buffered;
  // the rest arrives later; ReadExact must splice both.
  Pair pair(FastLimits());
  pair.Send("SUBMIT 10\nabcd");
  Result<std::string> line = pair.reader->ReadLine();
  ASSERT_TRUE(line.ok()) << line.status();
  std::thread writer([&pair] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    pair.Send("efghij");
  });
  Result<std::string> payload = pair.reader->ReadExact(10);
  writer.join();
  ASSERT_TRUE(payload.ok()) << payload.status();
  EXPECT_EQ(*payload, "abcdefghij");
}

TEST(SockBufferTest, OversizedLineIsStructuredError) {
  Pair pair(FastLimits());
  pair.Send(std::string(100, 'x'));  // no newline within max_line_bytes=64
  Result<std::string> line = pair.reader->ReadLine();
  ASSERT_FALSE(line.ok());
  EXPECT_EQ(line.status().code(), StatusCode::kInvalidArgument);
}

TEST(SockBufferTest, ReadTimesOutAsDeadlineExceeded) {
  Pair pair(FastLimits());
  auto start = std::chrono::steady_clock::now();
  Result<std::string> line = pair.reader->ReadLine();
  auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                     std::chrono::steady_clock::now() - start)
                     .count();
  ASSERT_FALSE(line.ok());
  EXPECT_EQ(line.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_GE(elapsed, 400);
}

TEST(SockBufferTest, SlowTrickleCannotExtendTheDeadline) {
  // The deadline is whole-call: a peer feeding one byte per poll interval
  // must still be cut off at read_timeout_ms, not kept alive per byte.
  Pair pair(FastLimits());
  std::atomic<bool> done{false};
  std::thread dripper([&pair, &done] {
    while (!done.load()) {
      ::send(pair.peer_fd, "x", 1, 0);
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  });
  auto start = std::chrono::steady_clock::now();
  Result<std::string> line = pair.reader->ReadLine();
  auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                     std::chrono::steady_clock::now() - start)
                     .count();
  done.store(true);
  dripper.join();
  ASSERT_FALSE(line.ok());
  // Either the deadline fired or the drip crossed max_line_bytes first;
  // both are structured, and neither lets the call run unboundedly.
  EXPECT_TRUE(line.status().code() == StatusCode::kDeadlineExceeded ||
              line.status().code() == StatusCode::kInvalidArgument)
      << line.status();
  EXPECT_LT(elapsed, 5000);
}

TEST(SockBufferTest, PeerCloseIsUnavailable) {
  Pair pair(FastLimits());
  pair.Send("no newline");
  pair.CloseWrite();
  Result<std::string> line = pair.reader->ReadLine();
  ASSERT_FALSE(line.ok());
  EXPECT_EQ(line.status().code(), StatusCode::kUnavailable);
}

TEST(SockBufferTest, MidPayloadDisconnectIsUnavailable) {
  // The mid-request disconnect shape: SUBMIT promised 100 bytes, the peer
  // died after 5. ReadExact must fail structurally, not hang or return a
  // short read.
  Pair pair(FastLimits());
  pair.Send("SUBMIT 100\nhello");
  ASSERT_TRUE(pair.reader->ReadLine().ok());
  pair.CloseWrite();
  Result<std::string> payload = pair.reader->ReadExact(100);
  ASSERT_FALSE(payload.ok());
  EXPECT_EQ(payload.status().code(), StatusCode::kUnavailable);
}

TEST(SockBufferTest, ShutdownUnblocksAReadFromAnotherThread) {
  Pair pair(SockBuffer::Limits{/*read_timeout_ms=*/30000,
                               /*write_timeout_ms=*/30000,
                               /*max_line_bytes=*/64});
  std::thread unblocker([&pair] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    pair.reader->Shutdown();
  });
  auto start = std::chrono::steady_clock::now();
  Result<std::string> line = pair.reader->ReadLine();
  auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                     std::chrono::steady_clock::now() - start)
                     .count();
  unblocker.join();
  ASSERT_FALSE(line.ok());
  EXPECT_EQ(line.status().code(), StatusCode::kUnavailable);
  EXPECT_LT(elapsed, 5000);  // did not wait out the 30s timeout
  EXPECT_TRUE(pair.reader->shutdown_requested());
}

TEST(SockBufferTest, WriteAllDeliversEverything) {
  Pair pair(FastLimits());
  std::string blob(256 * 1024, 'y');
  std::string received;
  // Drain concurrently: the blob exceeds any default socket buffer, so an
  // unread peer would otherwise hit the write deadline.
  std::thread drainer([&pair, &received, &blob] {
    char chunk[4096];
    while (received.size() < blob.size()) {
      ssize_t n = ::recv(pair.peer_fd, chunk, sizeof(chunk), 0);
      if (n <= 0) break;
      received.append(chunk, static_cast<size_t>(n));
    }
  });
  Status wrote = pair.reader->WriteAll(blob);
  drainer.join();
  ASSERT_TRUE(wrote.ok()) << wrote;
  EXPECT_EQ(received, blob);
}

TEST(SockBufferTest, WriteToStalledPeerTimesOut) {
  Pair pair(FastLimits());
  // Nobody reads peer_fd: once both socket buffers fill, WriteAll must
  // give up at the write deadline instead of blocking forever.
  std::string blob(8 * 1024 * 1024, 'z');
  Status wrote = pair.reader->WriteAll(blob);
  ASSERT_FALSE(wrote.ok());
  EXPECT_EQ(wrote.code(), StatusCode::kDeadlineExceeded);
}

}  // namespace
}  // namespace dbpc
