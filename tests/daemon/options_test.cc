#include <gtest/gtest.h>

#include <string>

#include "daemon/daemon.h"
#include "daemon/sock_buffer.h"
#include "service/service.h"

namespace dbpc {
namespace {

// DaemonOptions::Validate gates every daemon start; each rejection must
// name the offending knob and the offending value so an operator can fix
// the flag without reading source.

TEST(DaemonOptionsTest, DefaultsValidate) {
  EXPECT_TRUE(DaemonOptions{}.Validate().ok());
}

TEST(DaemonOptionsTest, RejectsEmptyHost) {
  DaemonOptions options;
  options.host = "";
  Status status = options.Validate();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("host"), std::string::npos);
}

TEST(DaemonOptionsTest, RejectsOutOfRangePort) {
  DaemonOptions options;
  options.port = 70000;
  Status status = options.Validate();
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("port"), std::string::npos);
  EXPECT_NE(status.message().find("70000"), std::string::npos);

  options.port = -1;
  EXPECT_FALSE(options.Validate().ok());

  options.port = 0;  // ephemeral: valid
  EXPECT_TRUE(options.Validate().ok());
  options.port = 65535;
  EXPECT_TRUE(options.Validate().ok());
}

TEST(DaemonOptionsTest, DefaultResultWaitStaysBelowClientReadTimeout) {
  // A `RESULT <id> WAIT` held server-side past the client's read deadline
  // desyncs any reused session (the late reply is read as the answer to
  // the next command), so out of the box the server must give up first.
  DaemonOptions options;
  SockBuffer::Limits client_defaults;
  EXPECT_LT(options.result_wait_ms, client_defaults.read_timeout_ms);
}

TEST(DaemonOptionsTest, RejectsNonPositiveKnobs) {
  // Every >= 1 knob produces the same message shape, naming itself.
  struct Case {
    const char* name;
    int DaemonOptions::* knob;
  } cases[] = {
      {"max_connections", &DaemonOptions::max_connections},
      {"queue_depth", &DaemonOptions::queue_depth},
      {"read_timeout_ms", &DaemonOptions::read_timeout_ms},
      {"write_timeout_ms", &DaemonOptions::write_timeout_ms},
      {"max_payload_bytes", &DaemonOptions::max_payload_bytes},
      {"result_wait_ms", &DaemonOptions::result_wait_ms},
      {"max_retained_results", &DaemonOptions::max_retained_results},
  };
  for (const Case& c : cases) {
    DaemonOptions options;
    options.*(c.knob) = 0;
    Status status = options.Validate();
    ASSERT_FALSE(status.ok()) << c.name;
    EXPECT_EQ(status.code(), StatusCode::kInvalidArgument) << c.name;
    EXPECT_NE(status.message().find(std::string("DaemonOptions::") + c.name),
              std::string::npos)
        << status.message();
    EXPECT_NE(status.message().find("(got 0)"), std::string::npos)
        << status.message();
  }
}

TEST(DaemonOptionsTest, RejectsTinyMaxLineBytes) {
  DaemonOptions options;
  options.max_line_bytes = 32;  // "SUBMIT <n> ..." would not even fit
  Status status = options.Validate();
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("max_line_bytes"), std::string::npos);
  EXPECT_NE(status.message().find("(got 32)"), std::string::npos);
  options.max_line_bytes = 64;
  EXPECT_TRUE(options.Validate().ok());
}

TEST(DaemonOptionsTest, RejectsNegativeDrainGrace) {
  DaemonOptions options;
  options.drain_grace_ms = -1;
  Status status = options.Validate();
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("drain_grace_ms"), std::string::npos);
  // Zero is legal: drain makes one pass and reports what is still pending.
  options.drain_grace_ms = 0;
  EXPECT_TRUE(options.Validate().ok());
}

TEST(DaemonOptionsTest, RejectsNonPositiveIoThreads) {
  DaemonOptions options;
  options.io_threads = 0;
  Status status = options.Validate();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("DaemonOptions::io_threads"),
            std::string::npos);
  options.io_threads = 1;
  EXPECT_TRUE(options.Validate().ok());
}

TEST(DaemonOptionsTest, ParseDaemonIoModelRoundTrips) {
  Result<DaemonIoModel> threads = ParseDaemonIoModel("threads");
  ASSERT_TRUE(threads.ok()) << threads.status();
  EXPECT_EQ(*threads, DaemonIoModel::kThreads);
  EXPECT_STREQ(DaemonIoModelName(*threads), "threads");

  Result<DaemonIoModel> epoll = ParseDaemonIoModel("epoll");
  ASSERT_TRUE(epoll.ok()) << epoll.status();
  EXPECT_EQ(*epoll, DaemonIoModel::kEpoll);
  EXPECT_STREQ(DaemonIoModelName(*epoll), "epoll");

  Result<DaemonIoModel> bogus = ParseDaemonIoModel("select");
  ASSERT_FALSE(bogus.ok());
  EXPECT_EQ(bogus.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(bogus.status().message().find("select"), std::string::npos);
}

#if !defined(__linux__)
TEST(DaemonOptionsTest, EpollModelIsRejectedOffLinux) {
  DaemonOptions options;
  options.io_model = DaemonIoModel::kEpoll;
  EXPECT_FALSE(options.Validate().ok());
}
#endif

TEST(DaemonOptionsTest, DelegatesToServiceValidation) {
  // The embedded pipeline configuration is validated through the same
  // gate, so a daemon can never start over a service that would not.
  DaemonOptions options;
  options.service.jobs = 0;
  Status status = options.Validate();
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("ServiceOptions::jobs"),
            std::string::npos);

  options.service.jobs = 2;
  options.service.deadline_ms = -5;
  status = options.Validate();
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("ServiceOptions::deadline_ms"),
            std::string::npos);
  EXPECT_NE(status.message().find("-5"), std::string::npos);

  options.service.deadline_ms = 0;
  options.service.retries = -1;
  status = options.Validate();
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("ServiceOptions::retries"),
            std::string::npos);
}

}  // namespace
}  // namespace dbpc
