#include "daemon/protocol.h"

#include <gtest/gtest.h>

#include <string>

#include "api/types.h"

namespace dbpc {
namespace {

// --- command lines ---------------------------------------------------------

TEST(ParseCommandLineTest, Ping) {
  Result<WireCommand> command = ParseCommandLine("PING");
  ASSERT_TRUE(command.ok()) << command.status();
  EXPECT_EQ(command->kind, CommandKind::kPing);
}

TEST(ParseCommandLineTest, SubmitWithAllOptions) {
  Result<WireCommand> command =
      ParseCommandLine("SUBMIT 123 name=SENIORS deadline_ms=250 trace=1");
  ASSERT_TRUE(command.ok()) << command.status();
  EXPECT_EQ(command->kind, CommandKind::kSubmit);
  EXPECT_EQ(command->payload_bytes, 123u);
  EXPECT_EQ(command->name, "SENIORS");
  EXPECT_EQ(command->deadline_ms, 250);
  EXPECT_TRUE(command->trace);
}

TEST(ParseCommandLineTest, SubmitIgnoresUnknownOptions) {
  // Forward compatibility within a protocol version: a newer client may
  // send options this daemon does not know.
  Result<WireCommand> command =
      ParseCommandLine("SUBMIT 7 shiny_new_option=yes");
  ASSERT_TRUE(command.ok()) << command.status();
  EXPECT_EQ(command->payload_bytes, 7u);
}

TEST(ParseCommandLineTest, SubmitNeedsPayloadSize) {
  EXPECT_FALSE(ParseCommandLine("SUBMIT").ok());
  EXPECT_FALSE(ParseCommandLine("SUBMIT notanumber").ok());
  EXPECT_FALSE(ParseCommandLine("SUBMIT -5").ok());
}

TEST(ParseCommandLineTest, ResultWait) {
  Result<WireCommand> command = ParseCommandLine("RESULT 42 WAIT");
  ASSERT_TRUE(command.ok()) << command.status();
  EXPECT_EQ(command->kind, CommandKind::kResult);
  EXPECT_EQ(command->id, 42u);
  EXPECT_TRUE(command->wait);

  command = ParseCommandLine("RESULT 42");
  ASSERT_TRUE(command.ok()) << command.status();
  EXPECT_FALSE(command->wait);
}

TEST(ParseCommandLineTest, StatusNeedsJobId) {
  EXPECT_FALSE(ParseCommandLine("STATUS").ok());
  EXPECT_FALSE(ParseCommandLine("STATUS abc").ok());
}

TEST(ParseCommandLineTest, UnknownCommandIsStructuredError) {
  Result<WireCommand> command = ParseCommandLine("FROBNICATE 1");
  ASSERT_FALSE(command.ok());
  EXPECT_EQ(command.status().code(), StatusCode::kInvalidArgument);
}

TEST(ParseCommandLineTest, EncodeSubmitSanitizesHostileNames) {
  // A name with whitespace would shift the space-delimited framing and a
  // '\n' would inject a command line; the codec must keep name a single
  // token so the SUBMIT line always parses server-side.
  ConversionRequest request;
  request.source = "PROGRAM X.\n";
  request.name = "bad name\nSUBMIT 0 injected";
  std::string wire = EncodeSubmit(request);
  std::string line = wire.substr(0, wire.find('\n'));
  Result<WireCommand> command = ParseCommandLine(line);
  ASSERT_TRUE(command.ok()) << command.status() << " line: " << line;
  EXPECT_EQ(command->kind, CommandKind::kSubmit);
  EXPECT_EQ(command->payload_bytes, request.source.size());
  EXPECT_EQ(command->name, "bad_name_SUBMIT_0_injected");
  // The payload block is byte-identical to the source.
  EXPECT_EQ(wire.substr(line.size() + 1), request.source + "\n");
}

TEST(ParseCommandLineTest, RoundTripsThroughFormat) {
  const char* lines[] = {"PING",      "SUBMIT 17 deadline_ms=9 trace=1",
                         "STATUS 3",  "RESULT 3 WAIT",
                         "METRICS",   "TRACE 8",
                         "DRAIN",     "QUIT"};
  for (const char* line : lines) {
    Result<WireCommand> command = ParseCommandLine(line);
    ASSERT_TRUE(command.ok()) << line << ": " << command.status();
    EXPECT_EQ(FormatCommandLine(*command), line);
  }
}

// --- reply lines -----------------------------------------------------------

TEST(ParseReplyLineTest, OkWithFields) {
  Result<WireReply> reply = ParseReplyLine("+OK id=12 state=queued");
  ASSERT_TRUE(reply.ok()) << reply.status();
  EXPECT_TRUE(reply->ok);
  EXPECT_FALSE(reply->has_payload);
  EXPECT_EQ(reply->fields.at("id"), "12");
  EXPECT_EQ(reply->fields.at("state"), "queued");
}

TEST(ParseReplyLineTest, DataCarriesPayloadSize) {
  Result<WireReply> reply = ParseReplyLine("+DATA 321 id=5");
  ASSERT_TRUE(reply.ok()) << reply.status();
  EXPECT_TRUE(reply->ok);
  EXPECT_TRUE(reply->has_payload);
  EXPECT_EQ(reply->payload_bytes, 321u);
  EXPECT_EQ(reply->fields.at("id"), "5");
}

TEST(ParseReplyLineTest, ErrDecodesWireToken) {
  Result<WireReply> reply =
      ParseReplyLine("-ERR unavailable queue full; retry later");
  ASSERT_TRUE(reply.ok()) << reply.status();
  EXPECT_FALSE(reply->ok);
  EXPECT_EQ(reply->code, StatusCode::kUnavailable);
  EXPECT_EQ(reply->message, "queue full; retry later");
}

TEST(ParseReplyLineTest, RejectsGarbage) {
  EXPECT_FALSE(ParseReplyLine("").ok());
  EXPECT_FALSE(ParseReplyLine("HELLO").ok());
  EXPECT_FALSE(ParseReplyLine("+DATA notasize").ok());
}

TEST(ReplyBuildersTest, ErrReplyKeepsOneLine) {
  std::string line =
      ErrReplyLine(Status::InvalidArgument("first\nsecond\nthird"));
  // One terminator at the end, none embedded: framing survives any message.
  EXPECT_EQ(line.find('\n'), line.size() - 1);
  Result<WireReply> reply =
      ParseReplyLine(line.substr(0, line.size() - 1));
  ASSERT_TRUE(reply.ok()) << reply.status();
  EXPECT_EQ(reply->code, StatusCode::kInvalidArgument);
}

TEST(ReplyBuildersTest, GreetingAdvertisesProtocol) {
  std::string line = GreetingLine();
  Result<WireReply> reply = ParseReplyLine(line.substr(0, line.size() - 1));
  ASSERT_TRUE(reply.ok()) << reply.status();
  EXPECT_TRUE(reply->ok);
  EXPECT_EQ(reply->fields.at("server"), "dbpcd");
  EXPECT_EQ(reply->fields.at("proto"), std::to_string(kProtocolVersion));
}

// --- the wire-error table --------------------------------------------------

TEST(WireErrorTest, TableIsStable) {
  // These token strings are the wire contract (DAEMON.md): clients match
  // on them, so a change here is a protocol break, not a rename.
  EXPECT_STREQ(WireErrorName(StatusCode::kOk), "ok");
  EXPECT_STREQ(WireErrorName(StatusCode::kInvalidArgument), "bad-request");
  EXPECT_STREQ(WireErrorName(StatusCode::kNotFound), "not-found");
  EXPECT_STREQ(WireErrorName(StatusCode::kAlreadyExists), "already-exists");
  EXPECT_STREQ(WireErrorName(StatusCode::kConstraintViolation), "constraint");
  EXPECT_STREQ(WireErrorName(StatusCode::kParseError), "parse-error");
  EXPECT_STREQ(WireErrorName(StatusCode::kTypeError), "type-error");
  EXPECT_STREQ(WireErrorName(StatusCode::kNotConvertible), "refused");
  EXPECT_STREQ(WireErrorName(StatusCode::kNeedsAnalyst), "needs-analyst");
  EXPECT_STREQ(WireErrorName(StatusCode::kUnsupported), "unsupported");
  EXPECT_STREQ(WireErrorName(StatusCode::kInternal), "internal");
  EXPECT_STREQ(WireErrorName(StatusCode::kUnavailable), "unavailable");
  EXPECT_STREQ(WireErrorName(StatusCode::kDeadlineExceeded), "deadline");
}

TEST(WireErrorTest, EveryCodeRoundTrips) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kAlreadyExists, StatusCode::kConstraintViolation,
        StatusCode::kParseError, StatusCode::kTypeError,
        StatusCode::kNotConvertible, StatusCode::kNeedsAnalyst,
        StatusCode::kUnsupported,
        StatusCode::kInternal, StatusCode::kUnavailable,
        StatusCode::kDeadlineExceeded}) {
    Result<StatusCode> parsed = ParseWireError(WireErrorName(code));
    ASSERT_TRUE(parsed.ok()) << WireErrorName(code);
    EXPECT_EQ(*parsed, code);
  }
  EXPECT_FALSE(ParseWireError("no-such-token").ok());
}

TEST(JobStateTest, NamesRoundTrip) {
  for (JobState state : {JobState::kQueued, JobState::kRunning,
                         JobState::kDone, JobState::kFailed}) {
    Result<JobState> parsed = ParseJobState(JobStateName(state));
    ASSERT_TRUE(parsed.ok()) << JobStateName(state);
    EXPECT_EQ(*parsed, state);
  }
  EXPECT_FALSE(ParseJobState("exploded").ok());
}

// --- submit / response codecs ----------------------------------------------

TEST(SubmitCodecTest, RoundTrips) {
  ConversionRequest request;
  request.name = "SENIORS";
  request.source = "PROGRAM SENIORS.\nEND PROGRAM.\n";
  request.deadline_ms = 125;
  request.trace = true;

  std::string wire = EncodeSubmit(request);
  // wire = command line + '\n' + payload + '\n'; split it back apart the
  // way the session loop does.
  size_t eol = wire.find('\n');
  ASSERT_NE(eol, std::string::npos);
  Result<WireCommand> command = ParseCommandLine(wire.substr(0, eol));
  ASSERT_TRUE(command.ok()) << command.status();
  EXPECT_EQ(command->payload_bytes, request.source.size());
  std::string payload = wire.substr(eol + 1, command->payload_bytes);

  ConversionRequest decoded = DecodeSubmit(*command, payload);
  EXPECT_EQ(decoded.name, request.name);
  EXPECT_EQ(decoded.source, request.source);
  EXPECT_EQ(decoded.deadline_ms, request.deadline_ms);
  EXPECT_EQ(decoded.trace, request.trace);
}

TEST(ResponseCodecTest, RoundTripsAcceptedConversion) {
  ConversionResponse response;
  response.id = 9;
  response.state = JobState::kDone;
  response.accepted = true;
  response.classification = Convertibility::kAutomatic;
  response.program_name = "SENIORS";
  response.converted_source = "PROGRAM SENIORS.\nDISPLAY N.\nEND PROGRAM.\n";
  response.notes = {"note one", "note two"};
  response.trace_text = "convert_program\n  analyze\n";
  response.latency_us = 1234;

  std::string payload = EncodeResponsePayload(response);
  std::string header_line =
      DataReplyLine(payload.size(), ResponseFields(response));
  Result<WireReply> reply =
      ParseReplyLine(header_line.substr(0, header_line.size() - 1));
  ASSERT_TRUE(reply.ok()) << reply.status();

  Result<ConversionResponse> decoded = DecodeResponse(*reply, payload);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->id, 9u);
  EXPECT_EQ(decoded->state, JobState::kDone);
  EXPECT_TRUE(decoded->accepted);
  EXPECT_EQ(decoded->classification, Convertibility::kAutomatic);
  EXPECT_EQ(decoded->program_name, "SENIORS");
  EXPECT_EQ(decoded->converted_source, response.converted_source);
  EXPECT_EQ(decoded->notes, response.notes);
  EXPECT_EQ(decoded->trace_text, response.trace_text);
  EXPECT_EQ(decoded->latency_us, 1234u);
}

TEST(ResponseCodecTest, RoundTripsFailedJob) {
  ConversionResponse response;
  response.id = 4;
  response.state = JobState::kFailed;
  response.accepted = false;
  response.status = Status::ParseError("line 3: expected FIND");

  std::string payload = EncodeResponsePayload(response);
  std::string header_line =
      DataReplyLine(payload.size(), ResponseFields(response));
  Result<WireReply> reply =
      ParseReplyLine(header_line.substr(0, header_line.size() - 1));
  ASSERT_TRUE(reply.ok()) << reply.status();

  Result<ConversionResponse> decoded = DecodeResponse(*reply, payload);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->state, JobState::kFailed);
  EXPECT_FALSE(decoded->accepted);
  EXPECT_EQ(decoded->status.code(), StatusCode::kParseError);
  EXPECT_NE(decoded->status.message().find("expected FIND"),
            std::string::npos);
}

TEST(ResponseCodecTest, SourceWithSectionLookalikeLinesSurvives) {
  // The sectioned payload must not be confused by payload lines that look
  // like its own headers mid-source: header matching is exact.
  ConversionResponse response;
  response.id = 2;
  response.state = JobState::kDone;
  response.accepted = true;
  response.converted_source = "LINE1\n== NOT A HEADER\nLINE3\n";

  std::string payload = EncodeResponsePayload(response);
  std::string header_line =
      DataReplyLine(payload.size(), ResponseFields(response));
  Result<WireReply> reply =
      ParseReplyLine(header_line.substr(0, header_line.size() - 1));
  ASSERT_TRUE(reply.ok()) << reply.status();
  Result<ConversionResponse> decoded = DecodeResponse(*reply, payload);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->converted_source, response.converted_source);
}

}  // namespace
}  // namespace dbpc
