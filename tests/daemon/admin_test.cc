#include "daemon/admin.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/log.h"
#include "common/metrics.h"
#include "daemon/client.h"
#include "daemon/daemon.h"
#include "restructure/plan_parser.h"
#include "testing/fixtures.h"

namespace dbpc {
namespace {

using HttpState = HttpRequestParser::State;

// --- HttpRequestParser ---

TEST(HttpParserTest, SimpleGetParsesInOneShot) {
  HttpRequestParser parser;
  EXPECT_EQ(parser.Consume("GET /metrics HTTP/1.0\r\nHost: x\r\n\r\n"),
            HttpState::kDone);
  EXPECT_EQ(parser.request().method, "GET");
  EXPECT_EQ(parser.request().target, "/metrics");
  EXPECT_EQ(parser.request().version, "HTTP/1.0");
}

TEST(HttpParserTest, ByteAtATimeFeedReachesDoneOnlyAtTheBlankLine) {
  const std::string raw = "GET /healthz HTTP/1.1\r\nAccept: */*\r\n\r\n";
  HttpRequestParser parser;
  for (size_t i = 0; i + 1 < raw.size(); ++i) {
    ASSERT_EQ(parser.Consume(std::string_view(&raw[i], 1)),
              HttpState::kNeedMore)
        << "byte " << i;
  }
  EXPECT_EQ(parser.Consume(std::string_view(&raw[raw.size() - 1], 1)),
            HttpState::kDone);
  EXPECT_EQ(parser.request().target, "/healthz");
}

TEST(HttpParserTest, BareLfFramingIsAccepted) {
  HttpRequestParser parser;
  EXPECT_EQ(parser.Consume("GET /varz HTTP/1.0\n\n"), HttpState::kDone);
  EXPECT_EQ(parser.request().target, "/varz");
}

TEST(HttpParserTest, StateIsFinalAfterDone) {
  HttpRequestParser parser;
  ASSERT_EQ(parser.Consume("GET /a HTTP/1.0\r\n\r\n"), HttpState::kDone);
  // A pipelined second request is ignored: one request per connection.
  EXPECT_EQ(parser.Consume("GET /b HTTP/1.0\r\n\r\n"), HttpState::kDone);
  EXPECT_EQ(parser.request().target, "/a");
}

TEST(HttpParserTest, OversizedHeadWithoutBlankLineFails) {
  HttpRequestParser parser(/*max_bytes=*/64);
  EXPECT_EQ(parser.Consume(std::string(100, 'A')), HttpState::kError);
  EXPECT_NE(parser.error().find("exceeds"), std::string::npos)
      << parser.error();
}

TEST(HttpParserTest, OversizedHeadFailsEvenWhenTheBlankLineArrives) {
  // The whole head lands in one Consume, so the search finds the blank
  // line — the size cap must still apply.
  HttpRequestParser parser(/*max_bytes=*/64);
  std::string raw = "GET /" + std::string(100, 'a') + " HTTP/1.0\r\n\r\n";
  EXPECT_EQ(parser.Consume(raw), HttpState::kError);
  EXPECT_NE(parser.error().find("exceeds"), std::string::npos);
}

TEST(HttpParserTest, MalformedRequestLineFails) {
  HttpRequestParser parser;
  EXPECT_EQ(parser.Consume("NOSPACESHERE\r\n\r\n"), HttpState::kError);
  EXPECT_NE(parser.error().find("malformed"), std::string::npos)
      << parser.error();
}

TEST(HttpParserTest, NonHttpProtocolFails) {
  HttpRequestParser parser;
  EXPECT_EQ(parser.Consume("GET / FTP/1.0\r\n\r\n"), HttpState::kError);
  EXPECT_NE(parser.error().find("unsupported protocol"), std::string::npos)
      << parser.error();
}

// --- RenderPrometheusText ---

TEST(PrometheusTest, CountersAndGaugesRenderWithTypeLinesAndMangledNames) {
  MetricsRegistry registry;
  registry.GetCounter("daemon.jobs_admitted")->Increment(3);
  registry.GetGauge("cache.entries")->Set(17);
  std::string text = RenderPrometheusText(registry.Snapshot());
  EXPECT_NE(text.find("# TYPE dbpc_daemon_jobs_admitted counter\n"
                      "dbpc_daemon_jobs_admitted 3\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("# TYPE dbpc_cache_entries gauge\n"
                      "dbpc_cache_entries 17\n"),
            std::string::npos)
      << text;
}

TEST(PrometheusTest, RatesRenderTotalAndWindowedSeries) {
  MetricsRegistry registry;
  RollingRate* rate = registry.GetRate("service.conversions");
  rate->Tick(5);
  std::string text = RenderPrometheusText(registry.Snapshot());
  EXPECT_NE(text.find("# TYPE dbpc_service_conversions_total counter\n"
                      "dbpc_service_conversions_total 5\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("# TYPE dbpc_service_conversions_per_sec gauge\n"),
            std::string::npos)
      << text;
  for (const char* window : {"1s", "10s", "60s"}) {
    EXPECT_NE(text.find("dbpc_service_conversions_per_sec{window=\"" +
                        std::string(window) + "\"} "),
              std::string::npos)
        << text;
  }
}

TEST(PrometheusTest, HistogramBucketsAreCumulativeAndInfEqualsCount) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("daemon.request_us");
  h->Record(1);     // bucket 0: [0, 2)
  h->Record(3);     // bucket 1: [2, 4)
  h->Record(1000);  // bucket 9: [512, 1024)
  std::string text = RenderPrometheusText(registry.Snapshot());
  EXPECT_NE(text.find("# TYPE dbpc_daemon_request_us histogram\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("dbpc_daemon_request_us_bucket{le=\"2\"} 1\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("dbpc_daemon_request_us_bucket{le=\"4\"} 2\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("dbpc_daemon_request_us_bucket{le=\"1024\"} 3\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("dbpc_daemon_request_us_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("dbpc_daemon_request_us_sum 1004\n"), std::string::npos)
      << text;
  EXPECT_NE(text.find("dbpc_daemon_request_us_count 3\n"), std::string::npos)
      << text;
}

// --- AdminServer routing + a standalone end-to-end scrape ---

/// A standalone admin server over a bare registry (no daemon): routing and
/// transport can be exercised without conversion machinery.
struct StandaloneAdmin {
  MetricsRegistry registry;
  std::atomic<bool> ready{true};
  std::unique_ptr<AdminServer> server;

  StandaloneAdmin() {
    AdminHooks hooks;
    hooks.metrics = &registry;
    hooks.ready = [this] { return ready.load(); };
    Result<std::unique_ptr<AdminServer>> started =
        AdminServer::Start(AdminOptions{}, hooks, /*reactor=*/nullptr);
    EXPECT_TRUE(started.ok()) << started.status();
    server = std::move(started).value();
  }
};

HttpRequest MakeRequest(const std::string& method, const std::string& target) {
  HttpRequest request;
  request.method = method;
  request.target = target;
  request.version = "HTTP/1.0";
  return request;
}

TEST(AdminServerTest, RoutingTableCoversEveryEndpoint) {
  StandaloneAdmin admin;
  admin.registry.GetCounter("daemon.jobs_admitted")->Increment();

  EXPECT_EQ(admin.server->BuildResponse(MakeRequest("GET", "/healthz"))
                .rfind("HTTP/1.0 200", 0),
            0u);
  EXPECT_EQ(admin.server->BuildResponse(MakeRequest("GET", "/nope"))
                .rfind("HTTP/1.0 404", 0),
            0u);
  EXPECT_EQ(admin.server->BuildResponse(MakeRequest("POST", "/metrics"))
                .rfind("HTTP/1.0 405", 0),
            0u);

  // Query strings are stripped before routing.
  std::string metrics =
      admin.server->BuildResponse(MakeRequest("GET", "/metrics?debug=1"));
  EXPECT_EQ(metrics.rfind("HTTP/1.0 200", 0), 0u);
  EXPECT_NE(metrics.find("dbpc_daemon_jobs_admitted 1"), std::string::npos);

  // /readyz follows the ready hook.
  EXPECT_EQ(admin.server->BuildResponse(MakeRequest("GET", "/readyz"))
                .rfind("HTTP/1.0 200", 0),
            0u);
  admin.ready.store(false);
  std::string draining =
      admin.server->BuildResponse(MakeRequest("GET", "/readyz"));
  EXPECT_EQ(draining.rfind("HTTP/1.0 503", 0), 0u);
  EXPECT_NE(draining.find("draining"), std::string::npos);
}

TEST(AdminServerTest, ServesHttpOverARealSocket) {
  StandaloneAdmin admin;
  admin.registry.GetGauge("daemon.queue_depth")->Set(4);

  Result<HttpResponse> health =
      HttpGet("127.0.0.1", admin.server->port(), "/healthz");
  ASSERT_TRUE(health.ok()) << health.status();
  EXPECT_EQ(health->status_code, 200);
  EXPECT_EQ(health->body, "ok\n");

  Result<HttpResponse> metrics =
      HttpGet("127.0.0.1", admin.server->port(), "/metrics");
  ASSERT_TRUE(metrics.ok()) << metrics.status();
  EXPECT_EQ(metrics->status_code, 200);
  EXPECT_NE(metrics->body.find("dbpc_daemon_queue_depth 4\n"),
            std::string::npos)
      << metrics->body;

  Result<HttpResponse> missing =
      HttpGet("127.0.0.1", admin.server->port(), "/no-such");
  ASSERT_TRUE(missing.ok()) << missing.status();
  EXPECT_EQ(missing->status_code, 404);

  // Stop is idempotent and leaves no serving threads behind.
  admin.server->Stop();
  admin.server->Stop();
}

// --- Daemon-integrated admin plane, both io-models ---

const char* kSeniorsCpl = R"(PROGRAM SENIORS.
  FOR EACH E IN FIND(EMP: SYSTEM, ALL-DIV, DIV, DIV-EMP, EMP(AGE > 30)) DO
    GET EMP-NAME OF E INTO N.
    DISPLAY N.
  END-FOR.
END PROGRAM.
)";

RestructuringPlan Figure44Plan() {
  return std::move(ParsePlan(R"(
RESTRUCTURE PLAN FIGURE-4-4.
  INTRODUCE RECORD DEPT BETWEEN DIV-EMP GROUPING BY DEPT-NAME
      AS DIV-DEPT AND DEPT-EMP.
END PLAN.
)"))
      .value();
}

DaemonOptions TestOptions(DaemonIoModel io_model) {
  DaemonOptions options;
  options.port = 0;
  options.admin_port = 0;  // ephemeral admin endpoint on every fixture
  options.io_model = io_model;
  options.read_timeout_ms = 2000;
  options.write_timeout_ms = 2000;
  options.result_wait_ms = 5000;
  options.drain_grace_ms = 10000;
  options.service.jobs = 2;
  options.service.supervisor.analyst = ApproveAllAnalyst();
  return options;
}

struct Fixture {
  RestructuringPlan plan = Figure44Plan();
  std::unique_ptr<ConversionDaemon> daemon;

  explicit Fixture(DaemonOptions options) {
    Schema schema = testing::MakeDatabase(testing::CompanyDdl()).schema();
    Result<std::unique_ptr<ConversionDaemon>> started =
        ConversionDaemon::Start(schema, plan.View(), std::move(options));
    EXPECT_TRUE(started.ok()) << started.status();
    daemon = std::move(started).value();
  }

  std::unique_ptr<DaemonClient> Connect() {
    Result<std::unique_ptr<DaemonClient>> client =
        DaemonClient::Connect("127.0.0.1", daemon->port());
    EXPECT_TRUE(client.ok()) << client.status();
    return std::move(client).value();
  }

  Result<HttpResponse> Scrape(const std::string& path) {
    return HttpGet("127.0.0.1", daemon->admin_port(), path);
  }
};

class DaemonAdminTest : public ::testing::TestWithParam<DaemonIoModel> {};

TEST_P(DaemonAdminTest, MetricsExposesTheOperationalFamilies) {
  Fixture fixture(TestOptions(GetParam()));
  ASSERT_GT(fixture.daemon->admin_port(), 0);
  std::unique_ptr<DaemonClient> client = fixture.Connect();
  ConversionRequest request;
  request.source = kSeniorsCpl;
  ASSERT_TRUE(client->Convert(request).ok());

  Result<HttpResponse> metrics = fixture.Scrape("/metrics");
  ASSERT_TRUE(metrics.ok()) << metrics.status();
  ASSERT_EQ(metrics->status_code, 200);
  const std::string& body = metrics->body;
  for (const char* family :
       {"dbpc_daemon_queue_depth", "dbpc_daemon_inflight_jobs",
        "dbpc_daemon_active_sessions", "dbpc_daemon_parked_sessions",
        "dbpc_service_workers_busy", "dbpc_cache_entries",
        "dbpc_service_conversions_total", "dbpc_daemon_request_us_count"}) {
    EXPECT_NE(body.find(family), std::string::npos)
        << "missing family " << family << " in:\n"
        << body;
  }
  // The scrape refreshes sampled gauges: the one connected session shows.
  EXPECT_NE(body.find("dbpc_daemon_active_sessions 1\n"), std::string::npos)
      << body;
  // The completed conversion is visible in the rate's running total.
  EXPECT_NE(body.find("dbpc_service_conversions_total 1\n"),
            std::string::npos)
      << body;
}

TEST_P(DaemonAdminTest, VarzServesAJsonSnapshot) {
  Fixture fixture(TestOptions(GetParam()));
  Result<HttpResponse> varz = fixture.Scrape("/varz");
  ASSERT_TRUE(varz.ok()) << varz.status();
  ASSERT_EQ(varz->status_code, 200);
  EXPECT_EQ(varz->body.front(), '{') << varz->body;
  for (const char* key : {"\"server\":\"dbpcd\"", "\"io_model\"",
                          "\"uptime_s\"", "\"draining\":false", "\"build\"",
                          "\"metrics\""}) {
    EXPECT_NE(varz->body.find(key), std::string::npos)
        << "missing " << key << " in:\n"
        << varz->body;
  }
}

TEST_P(DaemonAdminTest, ReadyzFlipsTo503WhileADrainIsInFlight) {
  DaemonOptions options = TestOptions(GetParam());
  options.service.jobs = 1;
  // The only worker blocks until released, so the DRAIN provably overlaps
  // the /readyz probes below.
  std::atomic<bool> release{false};
  options.service.pipeline_override =
      [&release](const Program& program) -> Result<PipelineOutcome> {
    while (!release.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    PipelineOutcome outcome;
    outcome.accepted = true;
    outcome.conversion.converted.name = program.name;
    return outcome;
  };
  Fixture fixture(std::move(options));

  Result<HttpResponse> before = fixture.Scrape("/readyz");
  ASSERT_TRUE(before.ok()) << before.status();
  EXPECT_EQ(before->status_code, 200);
  EXPECT_EQ(before->body, "ready\n");

  std::unique_ptr<DaemonClient> client = fixture.Connect();
  ConversionRequest request;
  request.source = kSeniorsCpl;
  ASSERT_TRUE(client->Submit(request).ok());

  // DRAIN blocks until the admitted job finishes; run it on the side.
  std::thread drainer([&fixture] {
    std::unique_ptr<DaemonClient> controller = fixture.Connect();
    EXPECT_TRUE(controller->Drain().ok());
  });

  // The endpoint keeps answering during the drain window, now with 503.
  bool flipped = false;
  for (int i = 0; i < 500 && !flipped; ++i) {
    Result<HttpResponse> probe = fixture.Scrape("/readyz");
    ASSERT_TRUE(probe.ok()) << probe.status();
    if (probe->status_code == 503) {
      flipped = true;
      EXPECT_EQ(probe->body, "draining\n");
    } else {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }
  EXPECT_TRUE(flipped) << "/readyz never reported 503 during the drain";

  release.store(true);
  drainer.join();
  EXPECT_TRUE(fixture.daemon->draining());

  // Drained is a terminal state: still alive, still not ready.
  Result<HttpResponse> after = fixture.Scrape("/readyz");
  ASSERT_TRUE(after.ok()) << after.status();
  EXPECT_EQ(after->status_code, 503);
  Result<HttpResponse> health = fixture.Scrape("/healthz");
  ASSERT_TRUE(health.ok()) << health.status();
  EXPECT_EQ(health->status_code, 200);
}

TEST_P(DaemonAdminTest, SlowRequestLogCarriesTheTimingBreakdown) {
  std::mutex mu;
  std::vector<std::string> lines;
  Logger::Options capture;
  capture.level = LogLevel::kInfo;
  capture.sink = [&mu, &lines](std::string_view line) {
    std::lock_guard<std::mutex> lock(mu);
    lines.emplace_back(line);
  };
  GlobalLogger().Configure(capture);

  {
    DaemonOptions options = TestOptions(GetParam());
    options.slow_request_ms = 1;
    options.service.pipeline_override =
        [](const Program& program) -> Result<PipelineOutcome> {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      PipelineOutcome outcome;
      outcome.accepted = true;
      outcome.conversion.converted.name = program.name;
      return outcome;
    };
    Fixture fixture(std::move(options));
    std::unique_ptr<DaemonClient> client = fixture.Connect();
    ConversionRequest request;
    request.source = kSeniorsCpl;
    Result<ConversionResponse> response = client->Convert(request);
    ASSERT_TRUE(response.ok()) << response.status();
  }  // daemon stopped: every log line is captured by now

  GlobalLogger().Configure({LogLevel::kInfo, false, nullptr});

  std::string slow;
  {
    std::lock_guard<std::mutex> lock(mu);
    for (const std::string& line : lines) {
      if (line.find("event=slow_request") != std::string::npos) slow = line;
    }
  }
  ASSERT_FALSE(slow.empty()) << "no slow_request line was logged";
  for (const char* field :
       {" level=warn ", " job=1", " session=1", " program=SENIORS",
        " queue_wait_us=", " convert_us=", " total_us=", " outcome=done",
        " accepted=true"}) {
    EXPECT_NE(slow.find(field), std::string::npos)
        << "missing " << field << " in: " << slow;
  }
}

#if defined(__linux__)
INSTANTIATE_TEST_SUITE_P(IoModels, DaemonAdminTest,
                         ::testing::Values(DaemonIoModel::kThreads,
                                           DaemonIoModel::kEpoll),
                         [](const ::testing::TestParamInfo<DaemonIoModel>&
                                info) {
                           return std::string(DaemonIoModelName(info.param));
                         });
#else
INSTANTIATE_TEST_SUITE_P(IoModels, DaemonAdminTest,
                         ::testing::Values(DaemonIoModel::kThreads),
                         [](const ::testing::TestParamInfo<DaemonIoModel>&
                                info) {
                           return std::string(DaemonIoModelName(info.param));
                         });
#endif

}  // namespace
}  // namespace dbpc
