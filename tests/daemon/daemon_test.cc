#include "daemon/daemon.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "daemon/client.h"
#include "restructure/plan_parser.h"
#include "testing/fixtures.h"

namespace dbpc {
namespace {

const char* kSeniorsCpl = R"(PROGRAM SENIORS.
  FOR EACH E IN FIND(EMP: SYSTEM, ALL-DIV, DIV, DIV-EMP, EMP(AGE > 30)) DO
    GET EMP-NAME OF E INTO N.
    DISPLAY N.
  END-FOR.
END PROGRAM.
)";

RestructuringPlan Figure44Plan() {
  return std::move(ParsePlan(R"(
RESTRUCTURE PLAN FIGURE-4-4.
  INTRODUCE RECORD DEPT BETWEEN DIV-EMP GROUPING BY DEPT-NAME
      AS DIV-DEPT AND DEPT-EMP.
END PLAN.
)"))
      .value();
}

DaemonOptions TestOptions(DaemonIoModel io_model) {
  DaemonOptions options;
  options.port = 0;
  options.io_model = io_model;
  options.read_timeout_ms = 2000;
  options.write_timeout_ms = 2000;
  options.result_wait_ms = 5000;
  options.drain_grace_ms = 10000;
  options.service.jobs = 2;
  options.service.supervisor.analyst = ApproveAllAnalyst();
  return options;
}

/// Daemon + plan kept alive together (the plan's transformations must
/// outlive the daemon).
struct Fixture {
  RestructuringPlan plan = Figure44Plan();
  std::unique_ptr<ConversionDaemon> daemon;

  explicit Fixture(DaemonOptions options) {
    Schema schema = testing::MakeDatabase(testing::CompanyDdl()).schema();
    Result<std::unique_ptr<ConversionDaemon>> started =
        ConversionDaemon::Start(schema, plan.View(), std::move(options));
    EXPECT_TRUE(started.ok()) << started.status();
    daemon = std::move(started).value();
  }

  std::unique_ptr<DaemonClient> Connect() {
    Result<std::unique_ptr<DaemonClient>> client =
        DaemonClient::Connect("127.0.0.1", daemon->port());
    EXPECT_TRUE(client.ok()) << client.status();
    return std::move(client).value();
  }
};

/// Every behavioral test runs under both io-models: one thread per
/// connection ("threads") and the epoll reactor ("epoll"). The daemon's
/// protocol contract must be indistinguishable between them.
class DaemonTest : public ::testing::TestWithParam<DaemonIoModel> {};

TEST_P(DaemonTest, GreetingAdvertisesServerAndProtocol) {
  Fixture fixture(TestOptions(GetParam()));
  std::unique_ptr<DaemonClient> client = fixture.Connect();
  EXPECT_EQ(client->greeting().at("server"), "dbpcd");
  EXPECT_EQ(client->greeting().at("proto"),
            std::to_string(kProtocolVersion));
  EXPECT_TRUE(client->Ping().ok());
}

TEST_P(DaemonTest, SubmitStatusResultRoundTrip) {
  Fixture fixture(TestOptions(GetParam()));
  std::unique_ptr<DaemonClient> client = fixture.Connect();

  ConversionRequest request;
  request.source = kSeniorsCpl;
  Result<JobId> id = client->Submit(request);
  ASSERT_TRUE(id.ok()) << id.status();
  EXPECT_GE(*id, 1u);

  // STATUS is answerable at any point in the job's life.
  Result<JobState> state = client->State(*id);
  ASSERT_TRUE(state.ok()) << state.status();

  Result<ConversionResponse> response = client->Fetch(*id, /*wait=*/true);
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_EQ(response->id, *id);
  EXPECT_EQ(response->state, JobState::kDone);
  EXPECT_TRUE(response->accepted);
  EXPECT_EQ(response->classification, Convertibility::kAutomatic);
  EXPECT_EQ(response->program_name, "SENIORS");
  EXPECT_NE(response->converted_source.find("PROGRAM SENIORS"),
            std::string::npos);

  // The result stays queryable after delivery.
  Result<ConversionResponse> again = client->Fetch(*id, /*wait=*/false);
  ASSERT_TRUE(again.ok()) << again.status();
  EXPECT_EQ(again->converted_source, response->converted_source);
}

TEST_P(DaemonTest, ParseFailureIsAFailedJobNotASessionError) {
  Fixture fixture(TestOptions(GetParam()));
  std::unique_ptr<DaemonClient> client = fixture.Connect();

  ConversionRequest request;
  request.source = "THIS IS NOT CPL\n";
  Result<ConversionResponse> response = client->Convert(request);
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_EQ(response->state, JobState::kFailed);
  EXPECT_FALSE(response->accepted);
  EXPECT_FALSE(response->status.ok());
  // Session is still usable afterwards.
  EXPECT_TRUE(client->Ping().ok());
}

TEST_P(DaemonTest, MalformedCommandsKeepTheSessionAlive) {
  Fixture fixture(TestOptions(GetParam()));
  std::unique_ptr<DaemonClient> client = fixture.Connect();

  for (const char* bad :
       {"FROBNICATE\n", "SUBMIT nope\n", "STATUS\n", "RESULT 1 SIDEWAYS\n"}) {
    ASSERT_TRUE(client->SendRaw(bad).ok());
    Result<std::string> reply = client->ReadReplyLineRaw();
    ASSERT_TRUE(reply.ok()) << reply.status();
    EXPECT_EQ(reply->rfind("-ERR bad-request", 0), 0u) << *reply;
  }
  // After four protocol errors the session still answers commands.
  EXPECT_TRUE(client->Ping().ok());
}

TEST_P(DaemonTest, OversizedLineTearsDownTheSessionStructurally) {
  Fixture fixture(TestOptions(GetParam()));
  std::unique_ptr<DaemonClient> client = fixture.Connect();
  // No newline within the daemon's max_line_bytes: the session must reply
  // -ERR and close, not hang or crash.
  std::string long_line(
      static_cast<size_t>(fixture.daemon->options().max_line_bytes) + 100,
      'A');
  ASSERT_TRUE(client->SendRaw(long_line).ok());
  Result<std::string> reply = client->ReadReplyLineRaw();
  ASSERT_TRUE(reply.ok()) << reply.status();
  EXPECT_EQ(reply->rfind("-ERR bad-request", 0), 0u) << *reply;
  // The daemon keeps serving fresh sessions.
  EXPECT_TRUE(fixture.Connect()->Ping().ok());
}

TEST_P(DaemonTest, OversizedPayloadIsRefusedBeforeReading) {
  DaemonOptions options = TestOptions(GetParam());
  options.max_payload_bytes = 128;
  Fixture fixture(std::move(options));
  std::unique_ptr<DaemonClient> client = fixture.Connect();
  ASSERT_TRUE(client->SendRaw("SUBMIT 4096\n").ok());
  Result<std::string> reply = client->ReadReplyLineRaw();
  ASSERT_TRUE(reply.ok()) << reply.status();
  EXPECT_EQ(reply->rfind("-ERR bad-request", 0), 0u) << *reply;
}

TEST_P(DaemonTest, MidRequestDisconnectAdmitsNothing) {
  Fixture fixture(TestOptions(GetParam()));
  {
    std::unique_ptr<DaemonClient> client = fixture.Connect();
    // Promise 1000 payload bytes, deliver 10, vanish.
    ASSERT_TRUE(client->SendRaw("SUBMIT 1000\nPROGRAM X.\n").ok());
  }  // client destroyed: connection closed mid-payload
  // Give the session loop a moment to observe the disconnect.
  for (int i = 0; i < 100 && fixture.daemon->active_sessions() > 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(fixture.daemon->jobs_admitted(), 0u);
  // And the daemon is unharmed.
  EXPECT_TRUE(fixture.Connect()->Ping().ok());
}

TEST_P(DaemonTest, ResultForUnknownJobIsNotFound) {
  Fixture fixture(TestOptions(GetParam()));
  std::unique_ptr<DaemonClient> client = fixture.Connect();
  Result<ConversionResponse> response = client->Fetch(777, /*wait=*/false);
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kNotFound);
}

TEST_P(DaemonTest, BackpressureWhenQueueIsFull) {
  DaemonOptions options = TestOptions(GetParam());
  options.queue_depth = 1;
  options.service.jobs = 1;
  // A pipeline that blocks until released, so the queue stays provably
  // full while the test probes admission.
  std::atomic<bool> release{false};
  options.service.pipeline_override =
      [&release](const Program& program) -> Result<PipelineOutcome> {
    while (!release.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    PipelineOutcome outcome;
    outcome.accepted = true;
    outcome.conversion.converted.name = program.name;
    return outcome;
  };
  Fixture fixture(std::move(options));
  std::unique_ptr<DaemonClient> client = fixture.Connect();

  ConversionRequest request;
  request.source = kSeniorsCpl;
  Result<JobId> first = client->Submit(request);
  ASSERT_TRUE(first.ok()) << first.status();

  // Queue depth 1 and the only worker is blocked: the next submit must be
  // answered with structured backpressure, not queued or dropped.
  Result<JobId> second = client->Submit(request);
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kUnavailable);

  release.store(true);
  Result<ConversionResponse> response = client->Fetch(*first, /*wait=*/true);
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_TRUE(response->accepted);

  // Capacity freed: submits are admitted again.
  EXPECT_TRUE(client->Submit(request).ok());
}

TEST_P(DaemonTest, PerRequestDeadlineDegradesToRefused) {
  DaemonOptions options = TestOptions(GetParam());
  options.service.retries = 0;
  // Every attempt takes ~40ms; a 1ms per-request deadline is always
  // overrun, so the job must degrade to a refused-but-answered conversion
  // (kDone, accepted=false) — the existing service degradation path.
  options.service.pipeline_override =
      [](const Program& program) -> Result<PipelineOutcome> {
    std::this_thread::sleep_for(std::chrono::milliseconds(40));
    PipelineOutcome outcome;
    outcome.accepted = true;
    outcome.conversion.converted.name = program.name;
    return outcome;
  };
  Fixture fixture(std::move(options));
  std::unique_ptr<DaemonClient> client = fixture.Connect();

  ConversionRequest request;
  request.source = kSeniorsCpl;
  request.deadline_ms = 1;
  Result<ConversionResponse> response = client->Convert(request);
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_EQ(response->state, JobState::kDone);
  EXPECT_FALSE(response->accepted);

  // Without the per-request override the same job completes fine.
  request.deadline_ms = 0;
  response = client->Convert(request);
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_TRUE(response->accepted);
}

TEST_P(DaemonTest, TraceIsServedOnlyForTracedJobs) {
  Fixture fixture(TestOptions(GetParam()));
  std::unique_ptr<DaemonClient> client = fixture.Connect();

  ConversionRequest untraced;
  untraced.source = kSeniorsCpl;
  Result<ConversionResponse> plain = client->Convert(untraced);
  ASSERT_TRUE(plain.ok()) << plain.status();
  Result<std::string> missing = client->Trace(plain->id);
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);

  ConversionRequest traced = untraced;
  traced.trace = true;
  Result<ConversionResponse> response = client->Convert(traced);
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_FALSE(response->trace_text.empty());
  Result<std::string> trace = client->Trace(response->id);
  ASSERT_TRUE(trace.ok()) << trace.status();
  EXPECT_NE(trace->find("convert SENIORS"), std::string::npos) << *trace;
}

TEST_P(DaemonTest, TraceOnAnUnfinishedJobIsAnsweredNotRaced) {
  DaemonOptions options = TestOptions(GetParam());
  options.service.jobs = 1;
  // The only worker blocks until released, so the job is provably
  // unfinished while TRACE probes it. Before the fix the TRACE handler
  // read job state and trace text without the job-table lock, racing
  // RunJob's completion writes.
  std::atomic<bool> release{false};
  options.service.pipeline_override =
      [&release](const Program& program) -> Result<PipelineOutcome> {
    while (!release.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    PipelineOutcome outcome;
    outcome.accepted = true;
    outcome.conversion.converted.name = program.name;
    return outcome;
  };
  Fixture fixture(std::move(options));
  std::unique_ptr<DaemonClient> client = fixture.Connect();

  ConversionRequest request;
  request.source = kSeniorsCpl;
  request.trace = true;
  Result<JobId> id = client->Submit(request);
  ASSERT_TRUE(id.ok()) << id.status();

  std::unique_ptr<DaemonClient> prober = fixture.Connect();
  // While the worker is provably blocked, every probe answers structured
  // unavailable.
  for (int i = 0; i < 5; ++i) {
    Result<std::string> trace = prober->Trace(*id);
    ASSERT_FALSE(trace.ok());
    EXPECT_EQ(trace.status().code(), StatusCode::kUnavailable);
  }

  // Hammer TRACE across the completion moment, so probes overlap
  // RunJob's writes of job->state and job->response (TSan flags the
  // pre-fix unlocked reads here).
  std::thread hammer([&prober, &id] {
    for (int i = 0; i < 300; ++i) prober->Trace(*id);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  release.store(true);
  Result<ConversionResponse> response = client->Fetch(*id, /*wait=*/true);
  hammer.join();
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_EQ(response->state, JobState::kDone);
  // After completion the probe session still gets definitive answers —
  // never a torn read.
  prober->Trace(*id);
  EXPECT_TRUE(prober->Ping().ok());
}

TEST_P(DaemonTest, StartFailureIsACleanErrorNotACrash) {
  // This plan parses but cannot apply to the company schema (no such
  // set), so ConversionService::Create fails after DaemonOptions already
  // validated. Start must return that error; destroying the partially
  // constructed daemon must not touch the never-wired service, metric
  // handles, or listener.
  RestructuringPlan bad = std::move(ParsePlan(R"(
RESTRUCTURE PLAN BAD.
  INTRODUCE RECORD DEPT BETWEEN NO-SUCH-SET GROUPING BY DEPT-NAME
      AS DIV-DEPT AND DEPT-EMP.
END PLAN.
)"))
                              .value();
  Schema schema = testing::MakeDatabase(testing::CompanyDdl()).schema();
  Result<std::unique_ptr<ConversionDaemon>> started =
      ConversionDaemon::Start(schema, bad.View(), TestOptions(GetParam()));
  ASSERT_FALSE(started.ok());
  EXPECT_FALSE(started.status().message().empty());
}

TEST_P(DaemonTest, MetricsSnapshotIsServed) {
  Fixture fixture(TestOptions(GetParam()));
  std::unique_ptr<DaemonClient> client = fixture.Connect();
  ConversionRequest request;
  request.source = kSeniorsCpl;
  ASSERT_TRUE(client->Convert(request).ok());
  Result<std::string> metrics = client->Metrics();
  ASSERT_TRUE(metrics.ok()) << metrics.status();
  EXPECT_NE(metrics->find("daemon.submits_admitted"), std::string::npos);
  EXPECT_NE(metrics->find("daemon.request_us"), std::string::npos);
}

TEST_P(DaemonTest, DrainFinishesAdmittedJobsAndRefusesNewOnes) {
  Fixture fixture(TestOptions(GetParam()));
  std::unique_ptr<DaemonClient> client = fixture.Connect();

  ConversionRequest request;
  request.source = kSeniorsCpl;
  Result<JobId> id = client->Submit(request);
  ASSERT_TRUE(id.ok()) << id.status();

  std::unique_ptr<DaemonClient> controller = fixture.Connect();
  ASSERT_TRUE(controller->Drain().ok());
  EXPECT_TRUE(fixture.daemon->draining());
  EXPECT_EQ(fixture.daemon->jobs_admitted(),
            fixture.daemon->jobs_completed());

  // Admitted before the drain: result still served.
  Result<ConversionResponse> response = client->Fetch(*id, /*wait=*/true);
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_TRUE(response->accepted);

  // Submitted after the drain: structured refusal.
  Result<JobId> late = client->Submit(request);
  ASSERT_FALSE(late.ok());
  EXPECT_EQ(late.status().code(), StatusCode::kUnavailable);
}

TEST_P(DaemonTest, DoubleDrainIsIdempotent) {
  Fixture fixture(TestOptions(GetParam()));
  std::unique_ptr<DaemonClient> client = fixture.Connect();
  ConversionRequest request;
  request.source = kSeniorsCpl;
  ASSERT_TRUE(client->Submit(request).ok());

  // Two DRAINs from two sessions (a client drain racing an operator
  // drain): both succeed and report the same settled state.
  EXPECT_TRUE(client->Drain().ok());
  std::unique_ptr<DaemonClient> second = fixture.Connect();
  EXPECT_TRUE(second->Drain().ok());
  EXPECT_EQ(fixture.daemon->jobs_admitted(),
            fixture.daemon->jobs_completed());
}

TEST_P(DaemonTest, StopTearsDownIdleSessions) {
  Fixture fixture(TestOptions(GetParam()));
  std::unique_ptr<DaemonClient> client = fixture.Connect();
  ASSERT_TRUE(client->Ping().ok());
  // Stop must not wait out the idle session's read timeout.
  auto start = std::chrono::steady_clock::now();
  fixture.daemon->Stop();
  auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                     std::chrono::steady_clock::now() - start)
                     .count();
  EXPECT_LT(elapsed, 1500);
  EXPECT_EQ(fixture.daemon->active_sessions(), 0);
}

TEST_P(DaemonTest, ConcurrentSessionsAllComplete) {
  Fixture fixture(TestOptions(GetParam()));
  constexpr int kSessions = 8;
  constexpr int kPerSession = 4;
  std::atomic<int> completed{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < kSessions; ++i) {
    threads.emplace_back([&fixture, &completed] {
      std::unique_ptr<DaemonClient> client = fixture.Connect();
      for (int j = 0; j < kPerSession; ++j) {
        ConversionRequest request;
        request.source = kSeniorsCpl;
        Result<ConversionResponse> response = client->Convert(request);
        if (response.ok() && response->accepted) ++completed;
      }
      client->Quit();
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(completed.load(), kSessions * kPerSession);
  EXPECT_EQ(fixture.daemon->jobs_completed(),
            static_cast<uint64_t>(kSessions * kPerSession));
}

#if defined(__linux__)
INSTANTIATE_TEST_SUITE_P(IoModels, DaemonTest,
                         ::testing::Values(DaemonIoModel::kThreads,
                                           DaemonIoModel::kEpoll),
                         [](const ::testing::TestParamInfo<DaemonIoModel>&
                                info) {
                           return std::string(DaemonIoModelName(info.param));
                         });
#else
INSTANTIATE_TEST_SUITE_P(IoModels, DaemonTest,
                         ::testing::Values(DaemonIoModel::kThreads),
                         [](const ::testing::TestParamInfo<DaemonIoModel>&
                                info) {
                           return std::string(DaemonIoModelName(info.param));
                         });
#endif

}  // namespace
}  // namespace dbpc
