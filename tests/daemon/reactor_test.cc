#include "daemon/reactor.h"

#include <gtest/gtest.h>

#if defined(__linux__)

#include <arpa/inet.h>
#include <netinet/in.h>
#include <string.h>
#include <sys/epoll.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <regex>
#include <string>
#include <thread>
#include <vector>

#include "daemon/client.h"
#include "daemon/daemon.h"
#include "daemon/sock_buffer.h"
#include "restructure/plan_parser.h"
#include "testing/fixtures.h"

namespace dbpc {
namespace {

using Clock = std::chrono::steady_clock;

// ---------------------------------------------------------------------------
// Reactor unit tests: the event-loop primitives the epoll sessions build on.
// ---------------------------------------------------------------------------

std::unique_ptr<Reactor> MakeReactor() {
  Result<std::unique_ptr<Reactor>> reactor = Reactor::Create("reactor-test");
  EXPECT_TRUE(reactor.ok()) << reactor.status();
  return std::move(reactor).value();
}

TEST(ReactorTest, PostedWorkRunsInOrderOnTheLoopThread) {
  std::unique_ptr<Reactor> reactor = MakeReactor();
  std::mutex mu;
  std::condition_variable cv;
  std::vector<int> order;
  bool all_on_loop_thread = true;
  for (int i = 0; i < 5; ++i) {
    reactor->Post([&, i] {
      std::lock_guard<std::mutex> lock(mu);
      order.push_back(i);
      if (!reactor->on_loop_thread()) all_on_loop_thread = false;
      cv.notify_all();
    });
  }
  std::unique_lock<std::mutex> lock(mu);
  ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(5),
                          [&] { return order.size() == 5; }));
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
  EXPECT_TRUE(all_on_loop_thread);
  reactor->Stop();
}

TEST(ReactorTest, StopDrainsWorkPostedBeforeIt) {
  std::unique_ptr<Reactor> reactor = MakeReactor();
  std::atomic<bool> ran{false};
  reactor->Post([&ran] { ran.store(true); });
  // No sleep: Stop must guarantee the happened-before Post executes even
  // if the loop never woke in between.
  reactor->Stop();
  EXPECT_TRUE(ran.load());
  reactor->Stop();  // idempotent
}

TEST(ReactorTest, TimersFireInDeadlineOrderAndCancelHolds) {
  std::unique_ptr<Reactor> reactor = MakeReactor();
  std::mutex mu;
  std::condition_variable cv;
  std::vector<int> fired;
  reactor->Post([&] {
    Clock::time_point now = Clock::now();
    reactor->ScheduleAt(now + std::chrono::milliseconds(60), [&] {
      std::lock_guard<std::mutex> lock(mu);
      fired.push_back(1);
      cv.notify_all();
    });
    reactor->ScheduleAt(now + std::chrono::milliseconds(10), [&] {
      std::lock_guard<std::mutex> lock(mu);
      fired.push_back(2);
      cv.notify_all();
    });
    Reactor::TimerId cancelled =
        reactor->ScheduleAt(now + std::chrono::milliseconds(30), [&] {
          std::lock_guard<std::mutex> lock(mu);
          fired.push_back(3);
          cv.notify_all();
        });
    reactor->CancelTimer(cancelled);
  });
  std::unique_lock<std::mutex> lock(mu);
  ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(5),
                          [&] { return fired.size() == 2; }));
  lock.unlock();
  // Give the cancelled timer's original deadline time to pass, then make
  // sure the tombstone never fired.
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  lock.lock();
  EXPECT_EQ(fired, (std::vector<int>{2, 1}));
  reactor->Stop();
}

TEST(ReactorTest, IoDispatchParkAndRemove) {
  std::unique_ptr<Reactor> reactor = MakeReactor();
  int fds[2] = {-1, -1};
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);

  std::mutex mu;
  std::condition_variable cv;
  int events_seen = 0;
  uint64_t token = 0;
  auto drain = [&](int fd) {
    char chunk[64];
    while (::recv(fd, chunk, sizeof(chunk), MSG_DONTWAIT) > 0) {
    }
  };
  reactor->Post([&] {
    Result<uint64_t> added =
        reactor->Add(fds[0], EPOLLIN, [&, fd = fds[0]](uint32_t) {
          drain(fd);
          std::lock_guard<std::mutex> lock(mu);
          ++events_seen;
          cv.notify_all();
        });
    ASSERT_TRUE(added.ok()) << added.status();
    token = *added;
  });

  auto wait_for = [&](int n) {
    std::unique_lock<std::mutex> lock(mu);
    return cv.wait_for(lock, std::chrono::seconds(5),
                       [&] { return events_seen >= n; });
  };
  ASSERT_EQ(::send(fds[1], "x", 1, 0), 1);
  ASSERT_TRUE(wait_for(1));

  // Parked (interest mask 0): readiness no longer dispatches.
  reactor->Post([&] {
    ASSERT_TRUE(reactor->SetEvents(fds[0], token, 0).ok());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  ASSERT_EQ(::send(fds[1], "y", 1, 0), 1);
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  {
    std::lock_guard<std::mutex> lock(mu);
    EXPECT_EQ(events_seen, 1);
  }

  // Re-armed: the still-buffered byte fires immediately (level-triggered).
  reactor->Post([&] {
    ASSERT_TRUE(reactor->SetEvents(fds[0], token, EPOLLIN).ok());
  });
  ASSERT_TRUE(wait_for(2));

  // Removed: no dispatch, and a stale token is a harmless no-op.
  reactor->Post([&] {
    reactor->Remove(fds[0], token);
    reactor->Remove(fds[0], token);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  ASSERT_EQ(::send(fds[1], "z", 1, 0), 1);
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  {
    std::lock_guard<std::mutex> lock(mu);
    EXPECT_EQ(events_seen, 2);
  }
  reactor->Stop();
  ::close(fds[0]);
  ::close(fds[1]);
}

// ---------------------------------------------------------------------------
// Epoll session state machine: interleavings a thread-per-connection loop
// never sees (partial reads re-entered from separate wakeups, deadlines
// firing mid-state, parked sessions woken by worker completions).
// ---------------------------------------------------------------------------

const char* kSeniorsCpl = R"(PROGRAM SENIORS.
  FOR EACH E IN FIND(EMP: SYSTEM, ALL-DIV, DIV, DIV-EMP, EMP(AGE > 30)) DO
    GET EMP-NAME OF E INTO N.
    DISPLAY N.
  END-FOR.
END PROGRAM.
)";

RestructuringPlan Figure44Plan() {
  return std::move(ParsePlan(R"(
RESTRUCTURE PLAN FIGURE-4-4.
  INTRODUCE RECORD DEPT BETWEEN DIV-EMP GROUPING BY DEPT-NAME
      AS DIV-DEPT AND DEPT-EMP.
END PLAN.
)"))
      .value();
}

DaemonOptions EpollOptions() {
  DaemonOptions options;
  options.port = 0;
  options.io_model = DaemonIoModel::kEpoll;
  options.read_timeout_ms = 2000;
  options.write_timeout_ms = 2000;
  options.result_wait_ms = 5000;
  options.drain_grace_ms = 10000;
  options.service.jobs = 2;
  options.service.supervisor.analyst = ApproveAllAnalyst();
  return options;
}

struct Fixture {
  RestructuringPlan plan = Figure44Plan();
  std::unique_ptr<ConversionDaemon> daemon;

  explicit Fixture(DaemonOptions options) {
    Schema schema = testing::MakeDatabase(testing::CompanyDdl()).schema();
    Result<std::unique_ptr<ConversionDaemon>> started =
        ConversionDaemon::Start(schema, plan.View(), std::move(options));
    EXPECT_TRUE(started.ok()) << started.status();
    daemon = std::move(started).value();
  }
};

/// A raw TCP client below the DaemonClient abstraction: the tests need
/// byte-level control over framing (partial commands, stalled payloads).
std::unique_ptr<SockBuffer> RawConnect(int port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  struct sockaddr_in addr;
  memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  EXPECT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  EXPECT_EQ(::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                      sizeof(addr)),
            0);
  return std::make_unique<SockBuffer>(
      fd, SockBuffer::Limits{/*read_timeout_ms=*/8000,
                             /*write_timeout_ms=*/8000,
                             /*max_line_bytes=*/1 << 16});
}

TEST(EpollSessionTest, CommandAndPayloadSplitAcrossManyWakeups) {
  Fixture fixture(EpollOptions());
  std::unique_ptr<SockBuffer> sock = RawConnect(fixture.daemon->port());
  ASSERT_TRUE(sock->ReadLine().ok());  // greeting

  // The SUBMIT line, its counted payload, and the terminator arrive in
  // seven separate TCP segments with pauses between them, so the session
  // re-enters kReadCommand / kReadPayload / kReadTerminator from distinct
  // epoll wakeups.
  std::string payload = kSeniorsCpl;
  std::string head = "SUBMIT " + std::to_string(payload.size()) + "\n";
  size_t half = payload.size() / 2;
  const std::string segments[] = {
      head.substr(0, 3),  head.substr(3),          payload.substr(0, 5),
      payload.substr(5, half - 5), payload.substr(half), "\r",
      "\n"};
  for (const std::string& segment : segments) {
    ASSERT_TRUE(sock->WriteAll(segment).ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  Result<std::string> reply = sock->ReadLine();
  ASSERT_TRUE(reply.ok()) << reply.status();
  EXPECT_EQ(reply->rfind("+OK id=", 0), 0u) << *reply;
}

TEST(EpollSessionTest, PipelinedCommandsAreAllAnsweredInOrder) {
  Fixture fixture(EpollOptions());
  std::unique_ptr<SockBuffer> sock = RawConnect(fixture.daemon->port());
  ASSERT_TRUE(sock->ReadLine().ok());  // greeting

  // One write, four commands: the session must drain its input buffer
  // iteratively (no lost commands, no re-read of consumed bytes).
  ASSERT_TRUE(sock->WriteAll("PING\nPING\nSTATUS 999\nPING\n").ok());
  for (const char* expect :
       {"+OK pong", "+OK pong", "-ERR not-found", "+OK pong"}) {
    Result<std::string> reply = sock->ReadLine();
    ASSERT_TRUE(reply.ok()) << reply.status();
    EXPECT_EQ(reply->rfind(expect, 0), 0u) << *reply;
  }
}

TEST(EpollSessionTest, IdleDeadlineFiresMidCommandLine) {
  DaemonOptions options = EpollOptions();
  options.read_timeout_ms = 200;
  Fixture fixture(std::move(options));
  std::unique_ptr<SockBuffer> sock = RawConnect(fixture.daemon->port());
  ASSERT_TRUE(sock->ReadLine().ok());  // greeting

  // Half a command, then silence: the timer-heap deadline must fire and
  // close the session with the same -ERR the threads model sends.
  ASSERT_TRUE(sock->WriteAll("PIN").ok());
  Result<std::string> reply = sock->ReadLine();
  ASSERT_TRUE(reply.ok()) << reply.status();
  EXPECT_EQ(reply->rfind("-ERR deadline idle timeout", 0), 0u) << *reply;
  Result<std::string> eof = sock->ReadLine();
  EXPECT_FALSE(eof.ok());
}

TEST(EpollSessionTest, SlowLorisPayloadIsCutOffAtTheDeadline) {
  DaemonOptions options = EpollOptions();
  options.read_timeout_ms = 300;
  Fixture fixture(std::move(options));
  std::unique_ptr<SockBuffer> sock = RawConnect(fixture.daemon->port());
  ASSERT_TRUE(sock->ReadLine().ok());  // greeting

  // Promise 5000 payload bytes and drip one byte per 50ms. Partial fills
  // must NOT re-arm the deadline — the whole payload wait shares one
  // deadline, so the session closes at ~read_timeout_ms.
  ASSERT_TRUE(sock->WriteAll("SUBMIT 5000\n").ok());
  Clock::time_point start = Clock::now();
  std::atomic<bool> done{false};
  std::thread dripper([&] {
    while (!done.load()) {
      if (!sock->WriteAll("x").ok()) return;
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  });
  Result<std::string> reply = sock->ReadLine();
  auto elapsed_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                        Clock::now() - start)
                        .count();
  done.store(true);
  dripper.join();
  ASSERT_TRUE(reply.ok()) << reply.status();
  EXPECT_EQ(reply->rfind("-ERR deadline payload not received in time", 0), 0u)
      << *reply;
  EXPECT_LT(elapsed_ms, 1500);
}

TEST(EpollSessionTest, DrainWakesParkedResultWaitSessions) {
  DaemonOptions options = EpollOptions();
  options.service.jobs = 1;
  std::atomic<bool> release{false};
  options.service.pipeline_override =
      [&release](const Program& program) -> Result<PipelineOutcome> {
    while (!release.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    PipelineOutcome outcome;
    outcome.accepted = true;
    outcome.conversion.converted.name = program.name;
    return outcome;
  };
  Fixture fixture(std::move(options));

  Result<std::unique_ptr<DaemonClient>> waiter =
      DaemonClient::Connect("127.0.0.1", fixture.daemon->port());
  ASSERT_TRUE(waiter.ok()) << waiter.status();
  ConversionRequest request;
  request.source = kSeniorsCpl;
  Result<JobId> id = (*waiter)->Submit(request);
  ASSERT_TRUE(id.ok()) << id.status();

  // Session 1 parks in RESULT WAIT on the (blocked) job; session 2 parks
  // in DRAIN behind the same job. Both are asleep with interest mask 0 —
  // no thread is burned on either. Releasing the worker must wake both.
  Result<ConversionResponse> fetched = Status::Internal("unset");
  std::thread wait_thread(
      [&] { fetched = (*waiter)->Fetch(*id, /*wait=*/true); });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  Result<std::unique_ptr<DaemonClient>> controller =
      DaemonClient::Connect("127.0.0.1", fixture.daemon->port());
  ASSERT_TRUE(controller.ok()) << controller.status();
  Status drained = Status::Internal("unset");
  std::thread drain_thread([&] { drained = (*controller)->Drain(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  release.store(true);
  wait_thread.join();
  drain_thread.join();
  ASSERT_TRUE(fetched.ok()) << fetched.status();
  EXPECT_TRUE(fetched->accepted);
  EXPECT_TRUE(drained.ok()) << drained;
  EXPECT_EQ(fixture.daemon->jobs_admitted(),
            fixture.daemon->jobs_completed());
}

// ---------------------------------------------------------------------------
// Differential: the two io-models must be byte-identical on the wire.
// ---------------------------------------------------------------------------

/// Runs a fixed pipelined script against a fresh daemon under `io_model`
/// and returns every byte the server sent, as newline-joined lines, with
/// the one legitimately nondeterministic token (latency_us) normalized.
std::string Transcript(DaemonIoModel io_model) {
  DaemonOptions options = EpollOptions();
  options.io_model = io_model;
  Fixture fixture(std::move(options));
  std::unique_ptr<SockBuffer> sock = RawConnect(fixture.daemon->port());

  std::string payload = kSeniorsCpl;
  std::string script;
  script += "PING\n";
  script += "FROBNICATE\n";
  script += "STATUS\n";
  script += "STATUS 424242\n";
  script += "SUBMIT " + std::to_string(payload.size()) + "\n" + payload + "\n";
  script += "RESULT 1 WAIT\n";
  script += "RESULT 999\n";
  script += "TRACE 1\n";
  script += "DRAIN\n";
  script += "QUIT\n";
  EXPECT_TRUE(sock->WriteAll(script).ok());

  std::string transcript;
  while (true) {
    Result<std::string> line = sock->ReadLine();
    if (!line.ok()) break;  // QUIT closed the session
    transcript += *line;
    transcript += '\n';
  }
  return std::regex_replace(transcript, std::regex("latency_us=[0-9]+"),
                            "latency_us=N");
}

TEST(EpollSessionTest, DifferentialTranscriptMatchesThreadsModel) {
  std::string threads = Transcript(DaemonIoModel::kThreads);
  std::string epoll = Transcript(DaemonIoModel::kEpoll);
  // Sanity: the script actually exercised the interesting replies.
  EXPECT_NE(threads.find("+OK pong"), std::string::npos);
  EXPECT_NE(threads.find("-ERR bad-request"), std::string::npos);
  EXPECT_NE(threads.find("+OK id=1"), std::string::npos);
  EXPECT_NE(threads.find("== SOURCE =="), std::string::npos);
  EXPECT_NE(threads.find("drained=1"), std::string::npos);
  EXPECT_EQ(threads, epoll);
}

// ---------------------------------------------------------------------------
// Scale: 1000 concurrent sessions on the reactor, multiplexed onto a few
// client threads so the test measures the server, not the test host.
// ---------------------------------------------------------------------------

TEST(EpollSessionTest, ThousandConcurrentSessionsAllComplete) {
  // ~1000 client fds + ~1000 daemon fds: raise the soft RLIMIT_NOFILE if
  // the environment allows, otherwise skip rather than fail spuriously.
  constexpr rlim_t kNeeded = 2600;
  struct rlimit rl;
  ASSERT_EQ(getrlimit(RLIMIT_NOFILE, &rl), 0);
  if (rl.rlim_cur < kNeeded) {
    rl.rlim_cur = std::min<rlim_t>(rl.rlim_max, kNeeded);
    setrlimit(RLIMIT_NOFILE, &rl);
    ASSERT_EQ(getrlimit(RLIMIT_NOFILE, &rl), 0);
    if (rl.rlim_cur < kNeeded) {
      GTEST_SKIP() << "RLIMIT_NOFILE too low for 1000 sessions";
    }
  }

  constexpr int kSessions = 1000;
  constexpr int kThreads = 8;
  DaemonOptions options = EpollOptions();
  options.max_connections = kSessions + 16;
  options.queue_depth = kSessions + 64;
  options.result_wait_ms = 20000;
  options.read_timeout_ms = 30000;
  options.write_timeout_ms = 30000;
  Fixture fixture(std::move(options));

  // Phase 1: every session connects and submits one job, so all 1000 are
  // open simultaneously. Phase 2: every session fetches its result.
  std::atomic<int> connected{0}, completed{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      int per_thread = kSessions / kThreads;
      std::vector<std::unique_ptr<DaemonClient>> clients;
      std::vector<JobId> ids;
      for (int i = 0; i < per_thread; ++i) {
        Result<std::unique_ptr<DaemonClient>> client =
            DaemonClient::Connect("127.0.0.1", fixture.daemon->port());
        if (!client.ok()) continue;
        ++connected;
        ConversionRequest request;
        request.source = kSeniorsCpl;
        Result<JobId> id = (*client)->Submit(request);
        if (!id.ok()) continue;
        clients.push_back(std::move(*client));
        ids.push_back(*id);
      }
      for (size_t i = 0; i < clients.size(); ++i) {
        Result<ConversionResponse> response =
            clients[i]->Fetch(ids[i], /*wait=*/true);
        if (response.ok() && response->accepted) ++completed;
        clients[i]->Quit();
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(connected.load(), kSessions);
  EXPECT_EQ(completed.load(), kSessions);
  EXPECT_EQ(fixture.daemon->jobs_admitted(),
            fixture.daemon->jobs_completed());
}

}  // namespace
}  // namespace dbpc

#else  // !defined(__linux__)

namespace dbpc {
namespace {

TEST(ReactorTest, CreateIsUnsupportedOffLinux) {
  Result<std::unique_ptr<Reactor>> reactor = Reactor::Create("reactor-test");
  EXPECT_FALSE(reactor.ok());
}

}  // namespace
}  // namespace dbpc

#endif
