#include "service/service.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "corpus/corpus.h"
#include "restructure/plan_parser.h"
#include "testing/fixtures.h"

namespace dbpc {
namespace {

RestructuringPlan Figure44Plan() {
  return std::move(ParsePlan(R"(
RESTRUCTURE PLAN FIGURE-4-4.
  INTRODUCE RECORD DEPT BETWEEN DIV-EMP GROUPING BY DEPT-NAME
      AS DIV-DEPT AND DEPT-EMP.
END PLAN.
)"))
      .value();
}

std::vector<Program> CompanyPrograms(int n = 0) {
  std::vector<CorpusProgram> corpus =
      n > 0 ? GenerateCompanyCorpus(n, 1979)
            : GenerateCompanyCorpus(CorpusMix{}, 1979);
  std::vector<Program> programs;
  for (CorpusProgram& entry : corpus) {
    programs.push_back(std::move(entry.program));
  }
  return programs;
}

std::unique_ptr<ConversionService> MakeService(const RestructuringPlan& plan,
                                               ServiceOptions options) {
  Schema schema = testing::MakeDatabase(testing::CompanyDdl()).schema();
  Result<std::unique_ptr<ConversionService>> service =
      ConversionService::Create(schema, plan.View(), std::move(options));
  EXPECT_TRUE(service.ok()) << service.status();
  return std::move(service).value();
}

ServiceOptions AssistedOptions(int jobs) {
  ServiceOptions options;
  options.jobs = jobs;
  options.supervisor.analyst = ApproveAllAnalyst();
  return options;
}

// --- option validation -----------------------------------------------------

TEST(ServiceOptionsTest, DefaultOptionsValidate) {
  EXPECT_TRUE(ServiceOptions{}.Validate().ok());
}

TEST(ServiceOptionsTest, ZeroJobsIsRejectedAtServiceEntry) {
  RestructuringPlan plan = Figure44Plan();
  Schema schema = testing::MakeDatabase(testing::CompanyDdl()).schema();
  ServiceOptions options;
  options.jobs = 0;
  Result<std::unique_ptr<ConversionService>> service =
      ConversionService::Create(schema, plan.View(), options);
  ASSERT_FALSE(service.ok());
  EXPECT_EQ(service.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(service.status().message().find("jobs"), std::string::npos);
}

TEST(ServiceOptionsTest, NegativeDeadlineAndRetriesAreRejected) {
  ServiceOptions options;
  options.deadline_ms = -1;
  EXPECT_EQ(options.Validate().code(), StatusCode::kInvalidArgument);
  options.deadline_ms = 0;
  options.retries = -1;
  EXPECT_EQ(options.Validate().code(), StatusCode::kInvalidArgument);
}

TEST(SupervisorOptionsTest, AssistedModeRequiresAnalyst) {
  SupervisorOptions options;
  options.mode = AnalystMode::kAssisted;
  Status status = options.Validate();
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("analyst"), std::string::npos);

  options.analyst = ApproveAllAnalyst();
  EXPECT_TRUE(options.Validate().ok());
}

TEST(SupervisorOptionsTest, StrictModeRejectsAnalystPolicy) {
  SupervisorOptions options;
  options.mode = AnalystMode::kStrict;
  options.analyst = ApproveAllAnalyst();
  EXPECT_EQ(options.Validate().code(), StatusCode::kInvalidArgument);
}

TEST(SupervisorOptionsTest, SupervisorCreateValidates) {
  RestructuringPlan plan = Figure44Plan();
  Schema schema = testing::MakeDatabase(testing::CompanyDdl()).schema();
  SupervisorOptions options;
  options.mode = AnalystMode::kAssisted;
  Result<ConversionSupervisor> supervisor =
      ConversionSupervisor::Create(schema, plan.View(), options);
  ASSERT_FALSE(supervisor.ok());
  EXPECT_EQ(supervisor.status().code(), StatusCode::kInvalidArgument);
}

TEST(ServiceOptionsTest, InvalidSupervisorOptionsAreCaughtByService) {
  ServiceOptions options;
  options.supervisor.mode = AnalystMode::kAssisted;  // analyst unset
  EXPECT_EQ(options.Validate().code(), StatusCode::kInvalidArgument);
}

// --- worker-pool correctness ----------------------------------------------

TEST(ConversionServiceTest, ParallelReportIsByteIdenticalToSerial) {
  RestructuringPlan plan = Figure44Plan();
  std::vector<Program> programs = CompanyPrograms();

  std::unique_ptr<ConversionService> serial =
      MakeService(plan, AssistedOptions(1));
  SystemConversionReport serial_report =
      std::move(serial->ConvertSystem(programs)).value();

  for (int jobs : {2, 4, 8}) {
    std::unique_ptr<ConversionService> parallel =
        MakeService(plan, AssistedOptions(jobs));
    SystemConversionReport report =
        std::move(parallel->ConvertSystem(programs)).value();
    EXPECT_EQ(report.ToText(), serial_report.ToText()) << "jobs=" << jobs;
    EXPECT_EQ(report.accepted, serial_report.accepted);
    EXPECT_EQ(report.refused, serial_report.refused);
  }
}

TEST(ConversionServiceTest, OutputOrderMatchesInputOrderUnderJitter) {
  // Programs finish in scrambled order (later programs sleep less); the
  // report must still list them in input order.
  RestructuringPlan plan = Figure44Plan();
  constexpr int kPrograms = 16;
  std::vector<Program> programs(kPrograms);
  for (int i = 0; i < kPrograms; ++i) {
    programs[i].name = "JITTER-" + std::to_string(i);
  }
  ServiceOptions options;
  options.jobs = 4;
  options.pipeline_override =
      [](const Program& program) -> Result<PipelineOutcome> {
    int index = std::stoi(program.name.substr(7));
    std::this_thread::sleep_for(
        std::chrono::milliseconds((kPrograms - index) % 5));
    PipelineOutcome outcome;
    outcome.accepted = true;
    outcome.conversion.converted.name = program.name;
    return outcome;
  };
  std::unique_ptr<ConversionService> service = MakeService(plan, options);
  SystemConversionReport report =
      std::move(service->ConvertSystem(programs)).value();
  ASSERT_EQ(report.outcomes.size(), programs.size());
  for (int i = 0; i < kPrograms; ++i) {
    EXPECT_EQ(report.outcomes[i].conversion.converted.name, programs[i].name);
  }
  EXPECT_EQ(report.accepted, kPrograms);
}

TEST(ConversionServiceTest, ServiceIsReusableAcrossBatches) {
  RestructuringPlan plan = Figure44Plan();
  std::vector<Program> programs = CompanyPrograms(10);
  std::unique_ptr<ConversionService> service =
      MakeService(plan, AssistedOptions(4));
  std::string first =
      std::move(service->ConvertSystem(programs)).value().ToText();
  std::string second =
      std::move(service->ConvertSystem(programs)).value().ToText();
  EXPECT_EQ(first, second);
  EXPECT_EQ(service->metrics().GetCounter("service.batches")->Value(), 2u);
}

// --- degradation paths -----------------------------------------------------

TEST(ConversionServiceTest, DeadlineOverrunDegradesToRefusedAfterRetry) {
  RestructuringPlan plan = Figure44Plan();
  std::vector<Program> programs(3);
  programs[0].name = "FAST-A";
  programs[1].name = "SLOW";
  programs[2].name = "FAST-B";
  ServiceOptions options;
  options.jobs = 2;
  options.deadline_ms = 20;
  options.retries = 1;
  options.pipeline_override =
      [](const Program& program) -> Result<PipelineOutcome> {
    if (program.name == "SLOW") {
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
    PipelineOutcome outcome;
    outcome.accepted = true;
    outcome.conversion.converted.name = program.name;
    return outcome;
  };
  std::unique_ptr<ConversionService> service = MakeService(plan, options);
  SystemConversionReport report =
      std::move(service->ConvertSystem(programs)).value();

  ASSERT_EQ(report.outcomes.size(), 3u);
  const PipelineOutcome& slow = report.outcomes[1];
  EXPECT_EQ(slow.classification, Convertibility::kNotConvertible);
  EXPECT_FALSE(slow.accepted);
  ASSERT_EQ(slow.conversion.notes.size(), 1u);
  EXPECT_NE(slow.conversion.notes[0].find("deadline"), std::string::npos)
      << slow.conversion.notes[0];
  EXPECT_NE(slow.conversion.notes[0].find("2 attempts"), std::string::npos);
  // The rest of the batch is unaffected.
  EXPECT_TRUE(report.outcomes[0].accepted);
  EXPECT_TRUE(report.outcomes[2].accepted);
  EXPECT_EQ(report.refused, 1);
  EXPECT_EQ(report.accepted, 2);

  MetricsRegistry& metrics = service->metrics();
  EXPECT_EQ(metrics.GetCounter("service.deadline_exceeded")->Value(), 2u);
  EXPECT_EQ(metrics.GetCounter("service.retries")->Value(), 1u);
  EXPECT_EQ(metrics.GetCounter("service.degraded")->Value(), 1u);
}

TEST(ConversionServiceTest, ThrowingPipelineDegradesToRefused) {
  RestructuringPlan plan = Figure44Plan();
  std::vector<Program> programs(2);
  programs[0].name = "THROWS";
  programs[1].name = "OK";
  ServiceOptions options;
  options.jobs = 2;
  options.retries = 0;
  options.pipeline_override =
      [](const Program& program) -> Result<PipelineOutcome> {
    if (program.name == "THROWS") {
      throw std::runtime_error("simulated pipeline crash");
    }
    PipelineOutcome outcome;
    outcome.accepted = true;
    outcome.conversion.converted.name = program.name;
    return outcome;
  };
  std::unique_ptr<ConversionService> service = MakeService(plan, options);
  SystemConversionReport report =
      std::move(service->ConvertSystem(programs)).value();

  EXPECT_EQ(report.outcomes[0].classification,
            Convertibility::kNotConvertible);
  ASSERT_EQ(report.outcomes[0].conversion.notes.size(), 1u);
  EXPECT_NE(
      report.outcomes[0].conversion.notes[0].find("simulated pipeline crash"),
      std::string::npos);
  EXPECT_TRUE(report.outcomes[1].accepted);
  EXPECT_EQ(service->metrics().GetCounter("service.exceptions")->Value(), 1u);
  EXPECT_EQ(service->metrics().GetCounter("service.degraded")->Value(), 1u);
}

TEST(ConversionServiceTest, ErrorStatusDegradesInsteadOfAbortingBatch) {
  RestructuringPlan plan = Figure44Plan();
  std::vector<Program> programs(2);
  programs[0].name = "BROKEN";
  programs[1].name = "OK";
  ServiceOptions options;
  options.retries = 0;
  options.pipeline_override =
      [](const Program& program) -> Result<PipelineOutcome> {
    if (program.name == "BROKEN") {
      return Status::Internal("stage exploded");
    }
    PipelineOutcome outcome;
    outcome.accepted = true;
    outcome.conversion.converted.name = program.name;
    return outcome;
  };
  std::unique_ptr<ConversionService> service = MakeService(plan, options);
  Result<SystemConversionReport> report = service->ConvertSystem(programs);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->refused, 1);
  EXPECT_EQ(report->accepted, 1);
  EXPECT_NE(report->outcomes[0].conversion.notes[0].find("stage exploded"),
            std::string::npos);
}

TEST(ConversionServiceTest, RetrySucceedsAfterTransientFailure) {
  RestructuringPlan plan = Figure44Plan();
  std::vector<Program> programs(1);
  programs[0].name = "FLAKY";
  ServiceOptions options;
  options.retries = 1;
  auto failures = std::make_shared<std::atomic<int>>(0);
  options.pipeline_override =
      [failures](const Program& program) -> Result<PipelineOutcome> {
    if (failures->fetch_add(1) == 0) {
      return Status::Internal("transient");
    }
    PipelineOutcome outcome;
    outcome.accepted = true;
    outcome.conversion.converted.name = program.name;
    return outcome;
  };
  std::unique_ptr<ConversionService> service = MakeService(plan, options);
  SystemConversionReport report =
      std::move(service->ConvertSystem(programs)).value();
  EXPECT_TRUE(report.outcomes[0].accepted);
  EXPECT_EQ(service->metrics().GetCounter("service.retries")->Value(), 1u);
  EXPECT_EQ(service->metrics().GetCounter("service.degraded")->Value(), 0u);
}

// --- metrics ---------------------------------------------------------------

TEST(ConversionServiceTest, MetricsSnapshotCoversPipelineStages) {
  RestructuringPlan plan = Figure44Plan();
  std::vector<Program> programs = CompanyPrograms();
  std::unique_ptr<ConversionService> service =
      MakeService(plan, AssistedOptions(4));
  SystemConversionReport report =
      std::move(service->ConvertSystem(programs)).value();

  MetricsRegistry& metrics = service->metrics();
  uint64_t classified =
      metrics.GetCounter("programs.automatic")->Value() +
      metrics.GetCounter("programs.needs_analyst")->Value() +
      metrics.GetCounter("programs.refused")->Value();
  EXPECT_EQ(classified, programs.size());
  EXPECT_EQ(metrics.GetCounter("programs.accepted")->Value(),
            static_cast<uint64_t>(report.accepted));
  EXPECT_EQ(metrics.GetCounter("programs.automatic")->Value(),
            static_cast<uint64_t>(report.automatic));

  // Every program passes analyze + convert unless the conversion memo
  // served it (a hit spends no stage time); accepted ones are generated.
  uint64_t cache_hits = metrics.GetCounter("cache.hits")->Value();
  EXPECT_EQ(metrics.GetHistogram("stage.analyze_us")->Count() + cache_hits,
            programs.size());
  EXPECT_EQ(metrics.GetHistogram("stage.convert_us")->Count() + cache_hits,
            programs.size());
  EXPECT_EQ(metrics.GetHistogram("stage.generate_us")->Count(),
            static_cast<uint64_t>(report.accepted));
  EXPECT_GT(metrics.GetHistogram("stage.optimize_us")->Count(), 0u);
  EXPECT_EQ(metrics.GetHistogram("program.total_us")->Count(),
            programs.size());

  // The corpus asks analyst questions and the optimizer rewrites programs.
  EXPECT_GT(metrics.GetCounter("analyst.questions")->Value(), 0u);
  EXPECT_GT(metrics.GetCounter("generator.bytes")->Value(), 0u);

  std::string json = metrics.ToJson();
  for (const char* key :
       {"stage.analyze_us", "stage.convert_us", "stage.optimize_us",
        "stage.generate_us", "programs.automatic", "programs.accepted",
        "analyst.questions"}) {
    EXPECT_NE(json.find(key), std::string::npos) << "missing " << key;
  }
}

// --- span tracing ----------------------------------------------------------

TEST(ConversionServiceTest, SpanForestIsIdenticalAcrossWorkerCounts) {
  RestructuringPlan plan = Figure44Plan();
  std::vector<Program> programs = CompanyPrograms();

  SpanCollector serial_spans;
  ServiceOptions serial_options = AssistedOptions(1);
  serial_options.supervisor.spans = &serial_spans;
  std::unique_ptr<ConversionService> serial =
      MakeService(plan, std::move(serial_options));
  ASSERT_TRUE(serial->ConvertSystem(programs).ok());

  SpanCollector pooled_spans;
  ServiceOptions pooled_options = AssistedOptions(4);
  pooled_options.supervisor.spans = &pooled_spans;
  std::unique_ptr<ConversionService> pooled =
      MakeService(plan, std::move(pooled_options));
  ASSERT_TRUE(pooled->ConvertSystem(programs).ok());

  // Roots sort by sequence (= batch index), so the structural export is
  // byte-identical regardless of thread scheduling.
  EXPECT_EQ(serial_spans.RootCount(), programs.size());
  EXPECT_EQ(serial_spans.ToText(/*with_timing=*/false),
            pooled_spans.ToText(/*with_timing=*/false));
}

TEST(ConversionServiceTest, ServiceSpansCoverAllFiveStages) {
  RestructuringPlan plan = Figure44Plan();
  SpanCollector spans;
  ServiceOptions options = AssistedOptions(1);
  options.supervisor.spans = &spans;
  std::unique_ptr<ConversionService> service =
      MakeService(plan, std::move(options));
  std::vector<Program> programs = CompanyPrograms();
  SystemConversionReport report = *service->ConvertSystem(programs);
  ASSERT_GT(report.accepted, 0);
  std::string tree = spans.ToText(/*with_timing=*/false);
  for (const char* stage :
       {"conversion_analyzer", "program_analyzer", "program_converter",
        "optimizer", "program_generator"}) {
    EXPECT_NE(tree.find(stage), std::string::npos) << "missing " << stage;
  }
  // Service roots are tagged with their batch job id.
  EXPECT_NE(tree.find("job=1"), std::string::npos) << tree;
}

}  // namespace
}  // namespace dbpc
