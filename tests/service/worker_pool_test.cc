#include "service/worker_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

namespace dbpc {
namespace {

TEST(WorkerPoolTest, RunsEveryTask) {
  WorkerPool pool(4);
  EXPECT_EQ(pool.thread_count(), 4);
  std::atomic<int> ran{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&ran] { ran.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(ran.load(), 100);
}

TEST(WorkerPoolTest, AtLeastOneThreadEvenWhenAskedForZero) {
  WorkerPool pool(0);
  EXPECT_EQ(pool.thread_count(), 1);
  std::atomic<bool> ran{false};
  pool.Submit([&ran] { ran.store(true); });
  pool.Wait();
  EXPECT_TRUE(ran.load());
}

TEST(WorkerPoolTest, WaitIsReusableAcrossRounds) {
  WorkerPool pool(2);
  std::atomic<int> ran{0};
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 10; ++i) {
      pool.Submit([&ran] { ran.fetch_add(1); });
    }
    pool.Wait();
    EXPECT_EQ(ran.load(), (round + 1) * 10);
  }
}

TEST(WorkerPoolTest, WaitWithNoTasksReturnsImmediately) {
  WorkerPool pool(2);
  pool.Wait();
}

TEST(WorkerPoolTest, TasksRunConcurrently) {
  // Two tasks that each block until the other has started can only finish
  // when two workers run them at the same time.
  WorkerPool pool(2);
  std::atomic<int> started{0};
  for (int i = 0; i < 2; ++i) {
    pool.Submit([&started] {
      started.fetch_add(1);
      while (started.load() < 2) std::this_thread::yield();
    });
  }
  pool.Wait();
  EXPECT_EQ(started.load(), 2);
}

TEST(WorkerPoolTest, DestructorDrainsOutstandingWork) {
  std::atomic<int> ran{0};
  {
    WorkerPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&ran] {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        ran.fetch_add(1);
      });
    }
  }
  EXPECT_EQ(ran.load(), 50);
}

}  // namespace
}  // namespace dbpc
