#include "storage/extent.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "storage/store.h"

namespace dbpc {
namespace {

TEST(ExtentColumnTest, TypedAppendAndAt) {
  ExtentColumn col(FieldType::kInt, /*dictionary=*/false);
  col.Append(Value::Int(7));
  col.Append(Value::Int(-3));
  ASSERT_EQ(col.rows(), 2u);
  EXPECT_EQ(col.ints(), (std::vector<int64_t>{7, -3}));
  EXPECT_EQ(col.At(0).as_int(), 7);
  EXPECT_EQ(col.At(1).as_int(), -3);
  EXPECT_FALSE(col.IsNull(0));
  EXPECT_FALSE(col.has_exceptions());
}

TEST(ExtentColumnTest, NullsSetBitmapAndKeepVectorsAligned) {
  ExtentColumn col(FieldType::kDouble, /*dictionary=*/false);
  col.Append(Value::Double(1.5));
  col.Append(Value::Null());
  col.Append(Value::Double(2.5));
  ASSERT_EQ(col.rows(), 3u);
  // Placeholder keeps the typed vector row-aligned.
  ASSERT_EQ(col.doubles().size(), 3u);
  EXPECT_FALSE(col.IsNull(0));
  EXPECT_TRUE(col.IsNull(1));
  EXPECT_FALSE(col.IsNull(2));
  EXPECT_TRUE(col.At(1).is_null());
  EXPECT_EQ(col.At(2).as_double(), 2.5);
}

TEST(ExtentColumnTest, DictionaryEncodesDistinctStringsOnce) {
  ExtentColumn col(FieldType::kString, /*dictionary=*/true);
  col.Append(Value::String("ACME"));
  col.Append(Value::String("GLOBEX"));
  col.Append(Value::String("ACME"));
  col.Append(Value::Null());
  col.Append(Value::String("ACME"));
  ASSERT_EQ(col.rows(), 5u);
  ASSERT_EQ(col.dictionary().size(), 2u);
  EXPECT_EQ(col.dictionary()[0], "ACME");
  EXPECT_EQ(col.dictionary()[1], "GLOBEX");
  EXPECT_EQ(col.codes()[0], 0u);
  EXPECT_EQ(col.codes()[1], 1u);
  EXPECT_EQ(col.codes()[2], 0u);
  EXPECT_EQ(col.codes()[3], ExtentColumn::kNullCode);
  EXPECT_EQ(col.codes()[4], 0u);
  EXPECT_EQ(col.At(2).as_string(), "ACME");
  EXPECT_TRUE(col.At(3).is_null());
}

TEST(ExtentColumnTest, PlainStringColumnHoldsRowsDirectly) {
  ExtentColumn col(FieldType::kString, /*dictionary=*/false);
  col.Append(Value::String("a"));
  col.Append(Value::String("a"));
  EXPECT_FALSE(col.dictionary_encoded());
  EXPECT_EQ(col.plain(), (std::vector<std::string>{"a", "a"}));
}

TEST(ExtentColumnTest, TypeMismatchGoesToExceptionSideTable) {
  ExtentColumn col(FieldType::kInt, /*dictionary=*/false);
  col.Append(Value::Int(1));
  col.Append(Value::String("not an int"));
  col.Append(Value::Int(2));
  ASSERT_EQ(col.rows(), 3u);
  ASSERT_TRUE(col.has_exceptions());
  ASSERT_EQ(col.exceptions().size(), 1u);
  // The snapshot stays faithful: At() returns the odd value verbatim.
  EXPECT_EQ(col.At(1).as_string(), "not an int");
  EXPECT_FALSE(col.IsNull(1));
  EXPECT_EQ(col.At(0).as_int(), 1);
  EXPECT_EQ(col.At(2).as_int(), 2);
  // Placeholder keeps ints() row-aligned.
  EXPECT_EQ(col.ints().size(), 3u);
}

TEST(ExtentColumnTest, ByteSizeGrowsWithRows) {
  ExtentColumn col(FieldType::kInt, /*dictionary=*/false);
  size_t empty = col.ByteSize();
  for (int i = 0; i < 100; ++i) col.Append(Value::Int(i));
  EXPECT_GT(col.ByteSize(), empty);
}

ExtentTable MakeTwoColumnTable(ExtentOptions options = {}) {
  return ExtentTable("T", {"name", "age"},
                     {FieldType::kString, FieldType::kInt}, options);
}

TEST(ExtentTableTest, CanonicalizesFieldNamesAndResolvesColumns) {
  ExtentTable table = MakeTwoColumnTable();
  EXPECT_EQ(table.field_names(), (std::vector<std::string>{"NAME", "AGE"}));
  EXPECT_EQ(table.ColumnIndex("AGE"), 1);
  EXPECT_EQ(table.ColumnIndex("MISSING"), -1);
}

TEST(ExtentTableTest, AppendRowAndRandomAccess) {
  ExtentTable table = MakeTwoColumnTable();
  table.AppendRow(11, {Value::String("a"), Value::Int(30)});
  table.AppendRow(12, {Value::String("b"), Value::Null()});
  ASSERT_EQ(table.rows(), 2u);
  EXPECT_EQ(table.IdAt(0), 11u);
  EXPECT_EQ(table.IdAt(1), 12u);
  EXPECT_EQ(table.At(0, 0).as_string(), "a");
  EXPECT_EQ(table.At(0, 1).as_int(), 30);
  EXPECT_TRUE(table.At(1, 1).is_null());
}

TEST(ExtentTableTest, RowsSplitAcrossFixedSizeExtents) {
  ExtentOptions options;
  options.extent_rows = 4;
  ExtentTable table("T", {"n"}, {FieldType::kInt}, options);
  // One over an extent boundary: 4 + 4 + 1.
  for (int i = 0; i < 9; ++i) {
    table.AppendRow(static_cast<RecordId>(i + 1), {Value::Int(i)});
  }
  ASSERT_EQ(table.rows(), 9u);
  ASSERT_EQ(table.extents().size(), 3u);
  EXPECT_EQ(table.extents()[0].rows(), 4u);
  EXPECT_EQ(table.extents()[1].rows(), 4u);
  EXPECT_EQ(table.extents()[2].rows(), 1u);
  EXPECT_TRUE(table.extents()[0].Full());
  EXPECT_FALSE(table.extents()[2].Full());
  // Random access crosses the boundary correctly.
  for (size_t r = 0; r < 9; ++r) {
    EXPECT_EQ(table.At(r, 0).as_int(), static_cast<int64_t>(r));
    EXPECT_EQ(table.IdAt(r), static_cast<RecordId>(r + 1));
  }
}

TEST(ExtentTableTest, ScanVisitsExtentsWithGlobalFirstRow) {
  ExtentOptions options;
  options.extent_rows = 3;
  ExtentTable table("T", {"n"}, {FieldType::kInt}, options);
  for (int i = 0; i < 7; ++i) table.AppendRow(0, {Value::Int(i)});
  std::vector<size_t> first_rows;
  size_t total = 0;
  table.Scan([&](const Extent& extent, size_t first_row) {
    first_rows.push_back(first_row);
    total += extent.rows();
  });
  EXPECT_EQ(first_rows, (std::vector<size_t>{0, 3, 6}));
  EXPECT_EQ(total, 7u);
}

TEST(ExtentTableTest, FromStoreSnapshotsAscendingWithMissingFieldsAsNull) {
  Store store;
  RecordId a = store.Insert("T", {{"NAME", Value::String("x")},
                                  {"AGE", Value::Int(1)}});
  (void)store.Insert("OTHER", {{"NAME", Value::String("skip")}});
  RecordId b = store.Insert("T", {{"NAME", Value::String("y")}});
  ExtentTable table = ExtentTable::FromStore(
      store, "T", {"NAME", "AGE"}, {FieldType::kString, FieldType::kInt});
  ASSERT_EQ(table.rows(), 2u);
  EXPECT_EQ(table.IdAt(0), a);
  EXPECT_EQ(table.IdAt(1), b);
  EXPECT_EQ(table.At(0, 0).as_string(), "x");
  EXPECT_EQ(table.At(0, 1).as_int(), 1);
  EXPECT_EQ(table.At(1, 0).as_string(), "y");
  // Field absent from the stored map snapshots as null.
  EXPECT_TRUE(table.At(1, 1).is_null());
}

TEST(ExtentTableTest, TypedAppendsMatchValueAppends) {
  // BeginRow + per-column typed appends must be indistinguishable from the
  // row-wise Append(Value) path (the bulk copy stages extent-to-extent
  // through them).
  ExtentTable by_value("T", {"S", "N", "D"},
                       {FieldType::kString, FieldType::kInt,
                        FieldType::kDouble});
  ExtentTable typed("T", {"S", "N", "D"},
                    {FieldType::kString, FieldType::kInt, FieldType::kDouble});
  for (int i = 0; i < 200; ++i) {
    const bool null_row = i % 7 == 0;
    std::vector<Value> row = {Value::String("V" + std::to_string(i % 5)),
                              null_row ? Value() : Value::Int(i),
                              Value::Double(i * 0.5)};
    by_value.AppendRow(0, row);
    Extent& out = typed.BeginRow(0);
    out.MutableColumn(0).AppendString(row[0].as_string());
    if (null_row) {
      out.MutableColumn(1).AppendNull();
    } else {
      out.MutableColumn(1).AppendInt(row[1].as_int());
    }
    out.MutableColumn(2).AppendDouble(row[2].as_double());
  }
  ASSERT_EQ(typed.rows(), by_value.rows());
  for (size_t r = 0; r < typed.rows(); ++r) {
    for (size_t c = 0; c < 3; ++c) {
      EXPECT_EQ(typed.At(r, c), by_value.At(r, c)) << r << "," << c;
      EXPECT_EQ(typed.IsNull(r, c), by_value.IsNull(r, c)) << r << "," << c;
    }
  }
  EXPECT_EQ(typed.ByteSize(), by_value.ByteSize());
}

TEST(ExtentTableTest, DictionaryShrinksRepetitiveStrings) {
  ExtentOptions dict;
  dict.dictionary_strings = true;
  ExtentOptions plain;
  plain.dictionary_strings = false;
  ExtentTable with_dict("T", {"s"}, {FieldType::kString}, dict);
  ExtentTable without("T", {"s"}, {FieldType::kString}, plain);
  // Long repeated values so per-row string storage dominates.
  const std::string v(64, 'x');
  for (int i = 0; i < 1000; ++i) {
    with_dict.AppendRow(0, {Value::String(v)});
    without.AppendRow(0, {Value::String(v)});
  }
  EXPECT_LT(with_dict.ByteSize(), without.ByteSize());
}

}  // namespace
}  // namespace dbpc
