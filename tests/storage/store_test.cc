#include "storage/store.h"

#include <gtest/gtest.h>

namespace dbpc {
namespace {

TEST(StoreTest, InsertAssignsMonotonicIds) {
  Store store;
  RecordId a = store.Insert("R", {});
  RecordId b = store.Insert("R", {});
  EXPECT_LT(a, b);
  EXPECT_TRUE(store.Exists(a));
  EXPECT_EQ(store.LiveCount(), 2u);
}

TEST(StoreTest, GetReturnsStoredFields) {
  Store store;
  RecordId id = store.Insert("R", {{"F", Value::Int(7)}});
  const StoredRecord* rec = store.Get(id);
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->type, "R");
  EXPECT_EQ(rec->fields.at("F").as_int(), 7);
  EXPECT_EQ(store.Get(999), nullptr);
}

TEST(StoreTest, RemoveDeletesRecord) {
  Store store;
  RecordId id = store.Insert("R", {});
  ASSERT_TRUE(store.Remove(id).ok());
  EXPECT_FALSE(store.Exists(id));
  EXPECT_EQ(store.Remove(id).code(), StatusCode::kNotFound);
}

TEST(StoreTest, AllOfTypeFiltersAndOrders) {
  Store store;
  RecordId a = store.Insert("A", {});
  (void)store.Insert("B", {});
  RecordId a2 = store.Insert("A", {});
  EXPECT_EQ(store.AllOfType("A"), (std::vector<RecordId>{a, a2}));
  EXPECT_EQ(store.AllRecords().size(), 3u);
}

TEST(StoreTest, LinkPositionsMembers) {
  Store store;
  RecordId owner = store.Insert("O", {});
  RecordId m1 = store.Insert("M", {});
  RecordId m2 = store.Insert("M", {});
  RecordId m3 = store.Insert("M", {});
  ASSERT_TRUE(store.LinkLast("S", owner, m1).ok());
  ASSERT_TRUE(store.LinkLast("S", owner, m3).ok());
  ASSERT_TRUE(store.Link("S", owner, m2, 1).ok());
  EXPECT_EQ(store.Members("S", owner), (std::vector<RecordId>{m1, m2, m3}));
  EXPECT_EQ(store.OwnerOf("S", m2), owner);
}

TEST(StoreTest, LinkBeyondEndClampsToAppend) {
  Store store;
  RecordId owner = store.Insert("O", {});
  RecordId m = store.Insert("M", {});
  ASSERT_TRUE(store.Link("S", owner, m, 99).ok());
  EXPECT_EQ(store.Members("S", owner).back(), m);
}

TEST(StoreTest, DoubleLinkRejected) {
  Store store;
  RecordId owner = store.Insert("O", {});
  RecordId m = store.Insert("M", {});
  ASSERT_TRUE(store.LinkLast("S", owner, m).ok());
  EXPECT_EQ(store.LinkLast("S", owner, m).code(), StatusCode::kAlreadyExists);
}

TEST(StoreTest, UnlinkRemovesMembership) {
  Store store;
  RecordId owner = store.Insert("O", {});
  RecordId m = store.Insert("M", {});
  ASSERT_TRUE(store.LinkLast("S", owner, m).ok());
  ASSERT_TRUE(store.Unlink("S", m).ok());
  EXPECT_EQ(store.OwnerOf("S", m), 0u);
  EXPECT_TRUE(store.Members("S", owner).empty());
  EXPECT_EQ(store.Unlink("S", m).code(), StatusCode::kNotFound);
  EXPECT_EQ(store.Unlink("NO-SET", m).code(), StatusCode::kNotFound);
}

TEST(StoreTest, IndependentSetsDoNotInterfere) {
  Store store;
  RecordId o1 = store.Insert("O", {});
  RecordId o2 = store.Insert("P", {});
  RecordId m = store.Insert("M", {});
  ASSERT_TRUE(store.LinkLast("S1", o1, m).ok());
  ASSERT_TRUE(store.LinkLast("S2", o2, m).ok());
  EXPECT_EQ(store.OwnerOf("S1", m), o1);
  EXPECT_EQ(store.OwnerOf("S2", m), o2);
  ASSERT_TRUE(store.Unlink("S1", m).ok());
  EXPECT_EQ(store.OwnerOf("S2", m), o2);
}

TEST(StoreTest, SystemOwnerIsJustAnotherOwnerId) {
  Store store;
  RecordId m = store.Insert("M", {});
  ASSERT_TRUE(store.LinkLast("SYS", kSystemOwner, m).ok());
  EXPECT_EQ(store.OwnerOf("SYS", m), kSystemOwner);
  EXPECT_EQ(store.Members("SYS", kSystemOwner).size(), 1u);
}

TEST(StoreTest, AllOfTypeKeepsInsertionOrderAcrossRemovals) {
  // Regression for the per-type directory: results must stay in ascending
  // id (insertion) order — exactly what the old full-heap walk produced —
  // with removed ids dropped and later inserts appended.
  Store store;
  RecordId a1 = store.Insert("A", {});
  RecordId b1 = store.Insert("B", {});
  RecordId a2 = store.Insert("A", {});
  RecordId a3 = store.Insert("A", {});
  RecordId b2 = store.Insert("B", {});
  ASSERT_TRUE(store.Remove(a2).ok());
  RecordId a4 = store.Insert("A", {});
  EXPECT_EQ(store.AllOfType("A"), (std::vector<RecordId>{a1, a3, a4}));
  EXPECT_EQ(store.AllOfType("B"), (std::vector<RecordId>{b1, b2}));
  EXPECT_TRUE(store.AllOfType("C").empty());
  EXPECT_EQ(store.AllRecords(), (std::vector<RecordId>{a1, b1, a3, b2, a4}));
}

TEST(StoreTest, OfTypeReferenceSurvivesInsertsOfOtherTypes) {
  // The reference-stability contract the extent loader leans on: the vector
  // OfType returns lives in a node-stable map, so inserting records — even
  // enough distinct types to rehash the per-type directory — never moves
  // it. Only same-type inserts change its contents.
  Store store;
  RecordId a1 = store.Insert("A", {});
  const std::vector<RecordId>& ref = store.OfType("A");
  const std::vector<RecordId>* address = &ref;
  for (int i = 0; i < 200; ++i) {
    store.Insert("T" + std::to_string(i), {});
  }
  EXPECT_EQ(&store.OfType("A"), address);
  EXPECT_EQ(ref, (std::vector<RecordId>{a1}));
  RecordId a2 = store.Insert("A", {});
  EXPECT_EQ(&store.OfType("A"), address);
  EXPECT_EQ(ref, (std::vector<RecordId>{a1, a2}));
}

TEST(StoreTest, GetPointerSurvivesLaterInserts) {
  // Record pointers are node-stable too: bulk loaders may hold a
  // StoredRecord* across subsequent inserts.
  Store store;
  RecordId id = store.Insert("A", {{"F", Value::Int(7)}});
  const StoredRecord* rec = store.Get(id);
  for (int i = 0; i < 1000; ++i) store.Insert("A", {});
  EXPECT_EQ(store.Get(id), rec);
  EXPECT_EQ(rec->fields.at("F").as_int(), 7);
}

TEST(StoreTest, ColumnarRunsExposeAdoptedSegmentsByType) {
  Store store;
  store.Insert("A", {{"F", Value::Int(0)}});  // heap rows are not runs
  ExtentTable a("A", {"F"}, {FieldType::kInt});
  a.AppendRow(0, {Value::Int(1)});
  a.AppendRow(0, {Value::Int(2)});
  ExtentTable b("B", {"G"}, {FieldType::kInt});
  b.AppendRow(0, {Value::Int(3)});
  const ExtentTable& a_rows = store.AdoptExtents(std::move(a));
  store.AdoptExtents(std::move(b));
  std::vector<Store::ColumnarRun> runs = store.ColumnarRuns("A");
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_EQ(runs[0].table, &a_rows);
  EXPECT_EQ(runs[0].first_id, a_rows.IdAt(0));
  EXPECT_EQ(runs[0].live, 2u);
  // Promotion vacates the row inside the run (live drops, vacated set):
  // bulk readers can tell the run is no longer a faithful full image.
  ASSERT_NE(store.Get(a_rows.IdAt(1)), nullptr);
  runs = store.ColumnarRuns("A");
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_EQ(runs[0].live, 1u);
  EXPECT_TRUE((*runs[0].vacated)[1]);
  EXPECT_TRUE(store.ColumnarRuns("C").empty());
}

TEST(StoreTest, CloneIsDeep) {
  Store store;
  RecordId owner = store.Insert("O", {});
  RecordId m = store.Insert("M", {{"F", Value::Int(1)}});
  ASSERT_TRUE(store.LinkLast("S", owner, m).ok());
  Store copy = store.Clone();
  ASSERT_TRUE(copy.Unlink("S", m).ok());
  copy.GetMutable(m)->fields["F"] = Value::Int(2);
  // Original unaffected.
  EXPECT_EQ(store.OwnerOf("S", m), owner);
  EXPECT_EQ(store.Get(m)->fields.at("F").as_int(), 1);
}

}  // namespace
}  // namespace dbpc
