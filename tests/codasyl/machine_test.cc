#include "codasyl/machine.h"

#include <gtest/gtest.h>

#include "testing/fixtures.h"

namespace dbpc {
namespace {

using testing::MakeCompanyDatabase;

Predicate NameIs(const std::string& field, const std::string& value) {
  return Predicate::Compare(field, CompareOp::kEq,
                            Operand::Literal(Value::String(value)));
}

TEST(CodasylMachineTest, FindAnyEstablishesCurrency) {
  Database db = MakeCompanyDatabase();
  CodasylMachine m(&db);
  Predicate p = NameIs("DIV-NAME", "MACHINERY");
  ASSERT_TRUE(m.FindAny("DIV", &p, EmptyHostEnv()).ok());
  EXPECT_EQ(m.db_status(), db_status::kOk);
  EXPECT_NE(m.current_of_run_unit(), 0u);
  EXPECT_EQ(m.CurrentOfType("DIV"), m.current_of_run_unit());
  EXPECT_EQ(m.Get("DIV-LOC")->as_string(), "EAST");
}

TEST(CodasylMachineTest, FindAnyNotFoundSetsStatus) {
  Database db = MakeCompanyDatabase();
  CodasylMachine m(&db);
  Predicate p = NameIs("DIV-NAME", "NOWHERE");
  ASSERT_TRUE(m.FindAny("DIV", &p, EmptyHostEnv()).ok());
  EXPECT_EQ(m.db_status(), db_status::kNotFound);
}

TEST(CodasylMachineTest, FindFirstNextWalksSetInOrder) {
  Database db = MakeCompanyDatabase();
  CodasylMachine m(&db);
  Predicate p = NameIs("DIV-NAME", "MACHINERY");
  ASSERT_TRUE(m.FindAny("DIV", &p, EmptyHostEnv()).ok());
  std::vector<std::string> names;
  ASSERT_TRUE(m.FindFirst("EMP", "DIV-EMP", nullptr, EmptyHostEnv()).ok());
  while (m.db_status() == db_status::kOk) {
    names.push_back(m.Get("EMP-NAME")->as_string());
    ASSERT_TRUE(m.FindNext("EMP", "DIV-EMP", nullptr, EmptyHostEnv()).ok());
  }
  EXPECT_EQ(m.db_status(), db_status::kEndOfSet);
  EXPECT_EQ(names, (std::vector<std::string>{"ADAMS", "BAKER", "CLARK"}));
}

TEST(CodasylMachineTest, FindNextUsingPredicateSkips) {
  Database db = MakeCompanyDatabase();
  CodasylMachine m(&db);
  Predicate div = NameIs("DIV-NAME", "MACHINERY");
  ASSERT_TRUE(m.FindAny("DIV", &div, EmptyHostEnv()).ok());
  Predicate sales = NameIs("DEPT-NAME", "SALES");
  ASSERT_TRUE(m.FindFirst("EMP", "DIV-EMP", &sales, EmptyHostEnv()).ok());
  EXPECT_EQ(m.Get("EMP-NAME")->as_string(), "ADAMS");
  ASSERT_TRUE(m.FindNext("EMP", "DIV-EMP", &sales, EmptyHostEnv()).ok());
  EXPECT_EQ(m.Get("EMP-NAME")->as_string(), "BAKER");
  ASSERT_TRUE(m.FindNext("EMP", "DIV-EMP", &sales, EmptyHostEnv()).ok());
  EXPECT_EQ(m.db_status(), db_status::kEndOfSet);
}

TEST(CodasylMachineTest, FindFirstWithoutOccurrenceSetsNotFound) {
  Database db = MakeCompanyDatabase();
  CodasylMachine m(&db);
  ASSERT_TRUE(m.FindFirst("EMP", "DIV-EMP", nullptr, EmptyHostEnv()).ok());
  EXPECT_EQ(m.db_status(), db_status::kNotFound);
}

TEST(CodasylMachineTest, SystemSetNeedsNoCurrency) {
  Database db = MakeCompanyDatabase();
  CodasylMachine m(&db);
  ASSERT_TRUE(m.FindFirst("DIV", "ALL-DIV", nullptr, EmptyHostEnv()).ok());
  EXPECT_EQ(m.db_status(), db_status::kOk);
  EXPECT_EQ(m.Get("DIV-NAME")->as_string(), "MACHINERY");
}

TEST(CodasylMachineTest, FindOwnerClimbsSet) {
  Database db = MakeCompanyDatabase();
  CodasylMachine m(&db);
  Predicate p = NameIs("EMP-NAME", "DAVIS");
  ASSERT_TRUE(m.FindAny("EMP", &p, EmptyHostEnv()).ok());
  ASSERT_TRUE(m.FindOwner("DIV-EMP").ok());
  EXPECT_EQ(m.db_status(), db_status::kOk);
  EXPECT_EQ(m.Get("DIV-NAME")->as_string(), "TEXTILES");
}

TEST(CodasylMachineTest, FindDuplicateContinuesScan) {
  Database db = MakeCompanyDatabase();
  CodasylMachine m(&db);
  Predicate sales = NameIs("DEPT-NAME", "SALES");
  ASSERT_TRUE(m.FindAny("EMP", &sales, EmptyHostEnv()).ok());
  std::string first = m.Get("EMP-NAME")->as_string();
  ASSERT_TRUE(m.FindDuplicate("EMP", &sales, EmptyHostEnv()).ok());
  EXPECT_EQ(m.db_status(), db_status::kOk);
  EXPECT_NE(m.Get("EMP-NAME")->as_string(), first);
}

TEST(CodasylMachineTest, StoreConnectsViaCurrency) {
  Database db = MakeCompanyDatabase();
  CodasylMachine m(&db);
  Predicate p = NameIs("DIV-NAME", "TEXTILES");
  ASSERT_TRUE(m.FindAny("DIV", &p, EmptyHostEnv()).ok());
  ASSERT_TRUE(m.StoreRecord("EMP", {{"EMP-NAME", Value::String("EVANS")},
                                    {"DEPT-NAME", Value::String("SALES")},
                                    {"AGE", Value::Int(50)}})
                  .ok());
  EXPECT_EQ(m.db_status(), db_status::kOk);
  // EVANS must be in TEXTILES' occurrence.
  RecordId textiles = m.CurrentOfType("DIV");
  std::vector<RecordId> members = db.Members("DIV-EMP", textiles);
  ASSERT_EQ(members.size(), 2u);
  EXPECT_EQ(db.GetField(members[1], "EMP-NAME")->as_string(), "EVANS");
}

TEST(CodasylMachineTest, StoreWithoutCurrencySetsNotFound) {
  Database db = MakeCompanyDatabase();
  CodasylMachine m(&db);
  ASSERT_TRUE(
      m.StoreRecord("EMP", {{"EMP-NAME", Value::String("EVANS")}}).ok());
  EXPECT_EQ(m.db_status(), db_status::kNotFound);
  EXPECT_NE(m.last_error().find("DIV-EMP"), std::string::npos);
}

TEST(CodasylMachineTest, ModifyCurrentRecord) {
  Database db = MakeCompanyDatabase();
  CodasylMachine m(&db);
  Predicate p = NameIs("EMP-NAME", "ADAMS");
  ASSERT_TRUE(m.FindAny("EMP", &p, EmptyHostEnv()).ok());
  ASSERT_TRUE(m.Modify({{"AGE", Value::Int(35)}}).ok());
  EXPECT_EQ(m.db_status(), db_status::kOk);
  EXPECT_EQ(m.Get("AGE")->as_int(), 35);
}

TEST(CodasylMachineTest, EraseClearsDanglingCurrency) {
  Database db = MakeCompanyDatabase();
  CodasylMachine m(&db);
  Predicate p = NameIs("EMP-NAME", "ADAMS");
  ASSERT_TRUE(m.FindAny("EMP", &p, EmptyHostEnv()).ok());
  ASSERT_TRUE(m.Erase().ok());
  EXPECT_EQ(m.db_status(), db_status::kOk);
  EXPECT_EQ(m.current_of_run_unit(), 0u);
  EXPECT_EQ(m.CurrentOfType("EMP"), 0u);
}

TEST(CodasylMachineTest, EraseOwnerWithMandatoryMembersReportsStatus) {
  Database db = MakeCompanyDatabase();
  CodasylMachine m(&db);
  Predicate p = NameIs("DIV-NAME", "MACHINERY");
  ASSERT_TRUE(m.FindAny("DIV", &p, EmptyHostEnv()).ok());
  ASSERT_TRUE(m.Erase().ok());
  EXPECT_EQ(m.db_status(), db_status::kNotFound);
  EXPECT_TRUE(db.Exists(m.current_of_run_unit()));
}

TEST(CodasylMachineTest, GetWithoutCurrencyIsMisuse) {
  Database db = MakeCompanyDatabase();
  CodasylMachine m(&db);
  EXPECT_FALSE(m.Get("EMP-NAME").ok());
}

TEST(CodasylMachineTest, UnknownSetIsMisuse) {
  Database db = MakeCompanyDatabase();
  CodasylMachine m(&db);
  EXPECT_EQ(m.FindFirst("EMP", "NO-SET", nullptr, EmptyHostEnv()).code(),
            StatusCode::kNotFound);
}

TEST(CodasylMachineTest, WrongMemberTypeIsMisuse) {
  Database db = MakeCompanyDatabase();
  CodasylMachine m(&db);
  EXPECT_EQ(m.FindFirst("DIV", "DIV-EMP", nullptr, EmptyHostEnv()).code(),
            StatusCode::kTypeError);
}

TEST(CodasylMachineTest, ConnectDisconnectWithCurrency) {
  Schema schema = MakeCompanyDatabase().schema();
  schema.FindSet("DIV-EMP")->insertion = InsertionClass::kManual;
  schema.FindSet("DIV-EMP")->retention = RetentionClass::kOptional;
  Database db = *Database::Create(schema);
  RecordId div =
      *db.StoreRecord({"DIV", {{"DIV-NAME", Value::String("M")}}, {}});
  (void)div;
  CodasylMachine m(&db);
  Predicate p = NameIs("DIV-NAME", "M");
  ASSERT_TRUE(m.FindAny("DIV", &p, EmptyHostEnv()).ok());
  ASSERT_TRUE(
      m.StoreRecord("EMP", {{"EMP-NAME", Value::String("X")}}).ok());
  // MANUAL set: the store did not connect.
  EXPECT_EQ(db.OwnerOf("DIV-EMP", m.current_of_run_unit()), 0u);
  ASSERT_TRUE(m.Connect("DIV-EMP").ok());
  EXPECT_EQ(m.db_status(), db_status::kOk);
  EXPECT_NE(db.OwnerOf("DIV-EMP", m.current_of_run_unit()), 0u);
  ASSERT_TRUE(m.Disconnect("DIV-EMP").ok());
  EXPECT_EQ(m.db_status(), db_status::kOk);
  EXPECT_EQ(db.OwnerOf("DIV-EMP", m.current_of_run_unit()), 0u);
}

TEST(CodasylMachineTest, ResetClearsState) {
  Database db = MakeCompanyDatabase();
  CodasylMachine m(&db);
  ASSERT_TRUE(m.FindAny("DIV", nullptr, EmptyHostEnv()).ok());
  m.Reset();
  EXPECT_EQ(m.current_of_run_unit(), 0u);
  EXPECT_EQ(m.db_status(), db_status::kOk);
}

}  // namespace
}  // namespace dbpc
