#include "relational/relational.h"

#include <gtest/gtest.h>

#include "testing/fixtures.h"

namespace dbpc {
namespace {

using testing::MakeCompanyDatabase;

Database RelCompany() { return *RelationalizeData(MakeCompanyDatabase()); }

std::vector<std::string> Col(const std::vector<Row>& rows, size_t idx = 0) {
  std::vector<std::string> out;
  for (const Row& r : rows) out.push_back(r[idx].ToDisplay());
  return out;
}

TEST(RelationalizeTest, SchemaHasNoSetsAndMaterializedColumns) {
  Result<Schema> rel = RelationalizeSchema(MakeCompanyDatabase().schema());
  ASSERT_TRUE(rel.ok()) << rel.status();
  EXPECT_TRUE(rel->sets().empty());
  const FieldDef* div_name = rel->FindRecordType("EMP")->FindField("DIV-NAME");
  ASSERT_NE(div_name, nullptr);
  EXPECT_FALSE(div_name->is_virtual);
}

TEST(RelationalizeTest, DataCarriesJoinColumns) {
  Database rel = RelCompany();
  EXPECT_EQ(rel.AllOfType("EMP").size(), 4u);
  for (RecordId id : rel.AllOfType("EMP")) {
    EXPECT_FALSE(rel.GetField(id, "DIV-NAME")->is_null());
  }
}

TEST(RelationalizeTest, SchoolConstraintsPartiallyCarry) {
  Result<Schema> rel =
      RelationalizeSchema(testing::MakeSchoolDatabase().schema());
  ASSERT_TRUE(rel.ok()) << rel.status();
  // Uniqueness carries; the cardinality rule has no relational expression.
  EXPECT_NE(rel->FindConstraint("UNIQ-CNO"), nullptr);
  EXPECT_EQ(rel->FindConstraint("TWICE-A-YEAR"), nullptr);
}

TEST(SelectTest, SimpleWhere) {
  Database rel = RelCompany();
  SelectQuery q = std::move(
      ParseSelect("SELECT EMP-NAME FROM EMP WHERE AGE > 30 ORDER BY EMP-NAME"))
      .value();
  std::vector<Row> rows = *EvaluateSelect(rel, q, EmptyHostEnv());
  EXPECT_EQ(Col(rows), (std::vector<std::string>{"ADAMS", "CLARK", "DAVIS"}));
}

TEST(SelectTest, PaperStyleInSubquery) {
  // The paper's (A) example shape: SELECT ... WHERE x IN (SELECT ...).
  Database rel = RelCompany();
  SelectQuery q = std::move(ParseSelect(R"(
SELECT EMP-NAME FROM EMP
WHERE DEPT-NAME = 'SALES'
  AND DIV-NAME IN (SELECT DIV-NAME FROM DIV WHERE DIV-LOC = 'EAST')
ORDER BY EMP-NAME)")).value();
  std::vector<Row> rows = *EvaluateSelect(rel, q, EmptyHostEnv());
  EXPECT_EQ(Col(rows), (std::vector<std::string>{"ADAMS", "BAKER"}));
}

TEST(SelectTest, SelectStarProjectsAllFields) {
  Database rel = RelCompany();
  SelectQuery q =
      std::move(ParseSelect("SELECT * FROM DIV WHERE DIV-NAME = 'MACHINERY'"))
          .value();
  std::vector<Row> rows = *EvaluateSelect(rel, q, EmptyHostEnv());
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].size(), 2u);  // DIV-NAME, DIV-LOC
}

TEST(SelectTest, AndOrNotCombinations) {
  Database rel = RelCompany();
  SelectQuery q = std::move(ParseSelect(
      "SELECT EMP-NAME FROM EMP WHERE (AGE < 30 OR AGE > 40) AND "
      "NOT DEPT-NAME = 'PLANNING' ORDER BY EMP-NAME")).value();
  std::vector<Row> rows = *EvaluateSelect(rel, q, EmptyHostEnv());
  EXPECT_EQ(Col(rows), (std::vector<std::string>{"BAKER"}));
}

TEST(SelectTest, HostVariableInWhere) {
  Database rel = RelCompany();
  SelectQuery q = std::move(
      ParseSelect("SELECT EMP-NAME FROM EMP WHERE AGE >= :MIN ORDER BY AGE"))
      .value();
  HostEnv env = [](const std::string& name) -> Result<Value> {
    if (name == "MIN") return Value::Int(34);
    return Status::NotFound(name);
  };
  std::vector<Row> rows = *EvaluateSelect(rel, q, env);
  EXPECT_EQ(Col(rows), (std::vector<std::string>{"ADAMS", "CLARK"}));
}

TEST(SelectTest, SubqueryMustProjectOneColumn) {
  Database rel = RelCompany();
  SelectQuery q = std::move(ParseSelect(
      "SELECT EMP-NAME FROM EMP WHERE DIV-NAME IN (SELECT * FROM DIV)"))
      .value();
  Result<std::vector<Row>> rows = EvaluateSelect(rel, q, EmptyHostEnv());
  ASSERT_FALSE(rows.ok());
  EXPECT_EQ(rows.status().code(), StatusCode::kInvalidArgument);
}

TEST(SelectTest, UnknownRelationFails) {
  Database rel = RelCompany();
  SelectQuery q = std::move(ParseSelect("SELECT * FROM NOWHERE")).value();
  EXPECT_EQ(EvaluateSelect(rel, q, EmptyHostEnv()).status().code(),
            StatusCode::kNotFound);
}

TEST(SelectTest, ParseErrors) {
  EXPECT_FALSE(ParseSelect("SELECT FROM EMP").ok());
  EXPECT_FALSE(ParseSelect("SELECT * EMP").ok());
  EXPECT_FALSE(ParseSelect("SELECT * FROM EMP WHERE").ok());
  EXPECT_FALSE(ParseSelect("SELECT * FROM EMP extra").ok());
}

TEST(SelectTest, ToStringRoundTrips) {
  const std::string text =
      "SELECT EMP-NAME FROM EMP WHERE DEPT-NAME = 'SALES' AND DIV-NAME IN "
      "(SELECT DIV-NAME FROM DIV WHERE DIV-LOC = 'EAST') ORDER BY EMP-NAME";
  SelectQuery q = std::move(ParseSelect(text)).value();
  SelectQuery again = std::move(ParseSelect(q.ToString())).value();
  EXPECT_EQ(q.ToString(), again.ToString());
}

}  // namespace
}  // namespace dbpc
