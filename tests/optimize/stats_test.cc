#include "optimize/stats.h"

#include <gtest/gtest.h>

#include "engine/find_query.h"
#include "lang/parser.h"
#include "optimize/optimizer.h"
#include "testing/fixtures.h"

namespace dbpc {
namespace {

using testing::FillCompany;
using testing::MakeCompanyDatabase;
using testing::MakeDatabase;

TEST(StatisticsCatalogTest, CollectCountsTypesSetsAndDistincts) {
  Database db = MakeCompanyDatabase();
  StatisticsCatalog catalog = StatisticsCatalog::Collect(db);
  ASSERT_FALSE(catalog.empty());
  EXPECT_EQ(catalog.TypeCount("DIV"), 2u);
  EXPECT_EQ(catalog.TypeCount("EMP"), 4u);
  EXPECT_EQ(catalog.TypeCount("NO-SUCH"), 0u);

  const SetStatistics* div_emp = catalog.SetStats("DIV-EMP");
  ASSERT_NE(div_emp, nullptr);
  EXPECT_EQ(div_emp->occurrences, 2u);
  EXPECT_EQ(div_emp->total_members, 4u);
  EXPECT_DOUBLE_EQ(div_emp->AvgFanout(), 2.0);

  const SetStatistics* all_div = catalog.SetStats("ALL-DIV");
  ASSERT_NE(all_div, nullptr);
  EXPECT_EQ(all_div->occurrences, 1u);
  EXPECT_EQ(all_div->total_members, 2u);
}

TEST(StatisticsCatalogTest, EqualitySelectivityFromDistinctValues) {
  Database db = MakeCompanyDatabase();
  StatisticsCatalog catalog = StatisticsCatalog::Collect(db);
  // 2 distinct DEPT-NAMEs over 4 EMPs, 4 distinct EMP-NAMEs.
  EXPECT_DOUBLE_EQ(catalog.EqualitySelectivity("EMP", "DEPT-NAME"), 0.5);
  EXPECT_DOUBLE_EQ(catalog.EqualitySelectivity("EMP", "EMP-NAME"), 0.25);
  // Unknown field falls back to the heuristic.
  EXPECT_DOUBLE_EQ(catalog.EqualitySelectivity("EMP", "NO-SUCH"), 0.1);
}

TEST(StatisticsCatalogTest, CollectionDoesNotDisturbOpStats) {
  Database db = MakeCompanyDatabase();
  db.ResetStats();
  StatisticsCatalog::Collect(db);
  EXPECT_EQ(db.stats().Total(), 0u);
}

TEST(StatisticsCatalogTest, CollectRecordsIndexAvailability) {
  Database db = MakeCompanyDatabase();
  StatisticsCatalog catalog = StatisticsCatalog::Collect(db);
  // Set-key fields get eager secondary indexes at Create time.
  EXPECT_TRUE(catalog.HasIndex("EMP", "EMP-NAME"));
  EXPECT_FALSE(catalog.HasIndex("EMP", "AGE"));
  EXPECT_TRUE(catalog.auto_join_indexes());

  db.SetIndexOptions({.enabled = false, .auto_join_indexes = false});
  StatisticsCatalog off = StatisticsCatalog::Collect(db);
  EXPECT_FALSE(off.auto_join_indexes());
}

TEST(CostModelTest, IndexedJoinEstimatesCheaperThanScan) {
  Database db = MakeDatabase(testing::CompanyDdl());
  FillCompany(&db, 10, 8);
  Retrieval join = *ParseRetrieval(
      "FIND(EMP: SYSTEM, ALL-DIV, DIV, "
      "JOIN EMP THROUGH (DEPT-NAME, DIV-LOC))");
  ASSERT_TRUE(ResolveFindQuery(db.schema(), &join.query).ok());
  StatisticsCatalog indexed = StatisticsCatalog::Collect(db);
  db.SetIndexOptions({.enabled = false, .auto_join_indexes = false});
  StatisticsCatalog scan = StatisticsCatalog::Collect(db);
  EXPECT_LT(EstimateRetrievalCost(db.schema(), indexed, join),
            EstimateRetrievalCost(db.schema(), scan, join));
}

TEST(CostModelTest, IndexedQualificationEstimatesCheaperThanScan) {
  Database db = MakeDatabase(testing::CompanyDdl());
  FillCompany(&db, 10, 8);
  // EMP-NAME is a DIV-EMP set key, so its equality conjunct can prefilter
  // through the eager secondary index.
  Retrieval qual = *ParseRetrieval(
      "FIND(EMP: SYSTEM, ALL-DIV, DIV, DIV-EMP, "
      "EMP(EMP-NAME = 'EMP-0002-00003'))");
  ASSERT_TRUE(ResolveFindQuery(db.schema(), &qual.query).ok());
  StatisticsCatalog indexed = StatisticsCatalog::Collect(db);
  db.SetIndexOptions({.enabled = false, .auto_join_indexes = false});
  StatisticsCatalog scan = StatisticsCatalog::Collect(db);
  EXPECT_LT(EstimateRetrievalCost(db.schema(), indexed, qual),
            EstimateRetrievalCost(db.schema(), scan, qual));
}

TEST(CostModelTest, VirtualFieldReadsCostMoreThanActual) {
  Database db = MakeCompanyDatabase();
  // EMP.DIV-NAME resolves through DIV-EMP to its owner: GetField + OwnerOf
  // + the owner's own read.
  EXPECT_DOUBLE_EQ(FieldReadCost(db.schema(), "EMP", "EMP-NAME"), 1.0);
  EXPECT_DOUBLE_EQ(FieldReadCost(db.schema(), "EMP", "DIV-NAME"), 3.0);
}

TEST(CostModelTest, SelectivityResolvesVirtualsToOwnerField) {
  Database db = MakeCompanyDatabase();
  StatisticsCatalog catalog = StatisticsCatalog::Collect(db);
  Predicate pred = Predicate::Compare("DIV-NAME", CompareOp::kEq,
                                      Operand::Literal(Value::String("X")));
  // EMP.DIV-NAME mirrors DIV.DIV-NAME: 2 distinct over 2 DIVs -> 0.5, not
  // the 0.1 unknown-field fallback EMP's own stats would give.
  EXPECT_DOUBLE_EQ(EstimateSelectivity(catalog, db.schema(), "EMP", pred),
                   0.5);
}

TEST(CostModelTest, QualifiedPathEstimatesCheaperThanFullScan) {
  Database db = MakeDatabase(testing::CompanyDdl());
  FillCompany(&db, 10, 8);
  StatisticsCatalog catalog = StatisticsCatalog::Collect(db);
  Retrieval all = *ParseRetrieval("FIND(EMP: SYSTEM, ALL-DIV, DIV, DIV-EMP, EMP)");
  Retrieval one = *ParseRetrieval(
      "FIND(EMP: SYSTEM, ALL-DIV, DIV(DIV-NAME = 'DIV-0003'), DIV-EMP, EMP)");
  ASSERT_TRUE(ResolveFindQuery(db.schema(), &all.query).ok());
  ASSERT_TRUE(ResolveFindQuery(db.schema(), &one.query).ok());
  double cost_all = EstimateRetrievalCost(db.schema(), catalog, all);
  double cost_one = EstimateRetrievalCost(db.schema(), catalog, one);
  EXPECT_LT(cost_one, cost_all);
}

// --- cost-based plan enumeration ----------------------------------------

/// Company schema plus a system-owned ALL-EMP set sorted by the globally
/// unique EMP-NAME: the entry point the enumerator can swap onto.
std::string CompanyAllEmpDdl() {
  return R"(
SCHEMA NAME IS COMPANY
RECORD SECTION.
  RECORD NAME IS DIV.
  FIELDS ARE.
    DIV-NAME PIC X(20).
    DIV-LOC PIC X(10).
  END RECORD.
  RECORD NAME IS EMP.
  FIELDS ARE.
    EMP-NAME PIC X(25).
    DEPT-NAME PIC X(5).
    AGE PIC 9(2).
    DIV-NAME VIRTUAL VIA DIV-EMP USING DIV-NAME.
  END RECORD.
END RECORD SECTION.
SET SECTION.
  SET NAME IS ALL-DIV.
  OWNER IS SYSTEM.
  MEMBER IS DIV.
  SET KEYS ARE (DIV-NAME).
  END SET.
  SET NAME IS ALL-EMP.
  OWNER IS SYSTEM.
  MEMBER IS EMP.
  SET KEYS ARE (EMP-NAME).
  END SET.
  SET NAME IS DIV-EMP.
  OWNER IS DIV.
  MEMBER IS EMP.
  SET KEYS ARE (EMP-NAME).
  END SET.
END SET SECTION.
END SCHEMA.
)";
}

Retrieval MustCostOptimize(const Database& db,
                           const StatisticsCatalog& catalog,
                           const std::string& text, OptimizerStats* stats) {
  Result<Retrieval> r = ParseRetrieval(text);
  EXPECT_TRUE(r.ok()) << r.status();
  Retrieval retrieval = *r;
  Status s = OptimizeRetrieval(db.schema(), &catalog, &retrieval, stats);
  EXPECT_TRUE(s.ok()) << s;
  return retrieval;
}

std::vector<RecordId> MustEval(const Database& db, const Retrieval& r) {
  Result<std::vector<RecordId>> rows =
      EvaluateRetrieval(db, r, EmptyHostEnv(), EmptyCollectionEnv());
  EXPECT_TRUE(rows.ok()) << rows.status();
  return rows.ok() ? *rows : std::vector<RecordId>{};
}

TEST(CostBasedOptimizerTest, EntrySwapReplacesScanAndSort) {
  Database db = MakeDatabase(CompanyAllEmpDdl());
  FillCompany(&db, 10, 8);
  StatisticsCatalog catalog = StatisticsCatalog::Collect(db);
  const std::string original_text =
      "SORT(FIND(EMP: SYSTEM, ALL-DIV, DIV, DIV-EMP, EMP)) ON (EMP-NAME)";
  OptimizerStats stats;
  Retrieval chosen = MustCostOptimize(db, catalog, original_text, &stats);
  EXPECT_EQ(chosen.ToString(), "FIND(EMP: SYSTEM, ALL-EMP, EMP)");
  EXPECT_EQ(stats.plans_rerouted, 1);
  EXPECT_GE(stats.plans_costed, 3);
  EXPECT_GT(stats.estimated_ops_saved, 0.0);
  ASSERT_EQ(stats.plan_choices.size(), 1u);
  EXPECT_LT(stats.plan_choices[0].cost_chosen,
            stats.plan_choices[0].cost_rules);

  Retrieval original = *ParseRetrieval(original_text);
  ASSERT_TRUE(ResolveFindQuery(db.schema(), &original.query).ok());
  EXPECT_EQ(MustEval(db, original), MustEval(db, chosen));
}

TEST(CostBasedOptimizerTest, UniqueKeyLookupReroutesThroughAllEmp) {
  Database db = MakeDatabase(CompanyAllEmpDdl());
  FillCompany(&db, 10, 8);
  StatisticsCatalog catalog = StatisticsCatalog::Collect(db);
  const std::string original_text =
      "FIND(EMP: SYSTEM, ALL-DIV, DIV, DIV-EMP, "
      "EMP(EMP-NAME = 'EMP-0002-00003'))";
  OptimizerStats stats;
  Retrieval chosen = MustCostOptimize(db, catalog, original_text, &stats);
  EXPECT_EQ(stats.plans_rerouted, 1);
  EXPECT_EQ(chosen.ToString(),
            "FIND(EMP: SYSTEM, ALL-EMP, EMP(EMP-NAME = 'EMP-0002-00003'))");

  Retrieval original = *ParseRetrieval(original_text);
  ASSERT_TRUE(ResolveFindQuery(db.schema(), &original.query).ok());
  EXPECT_EQ(MustEval(db, original), MustEval(db, chosen));
}

TEST(CostBasedOptimizerTest, KeepsRulesPlanWhenSwapCostsMore) {
  Database db = MakeDatabase(CompanyAllEmpDdl());
  FillCompany(&db, 10, 8);
  StatisticsCatalog catalog = StatisticsCatalog::Collect(db);
  // The pinned DIV makes the traversal touch one occurrence; a full
  // ALL-EMP scan evaluating the (virtual) DIV-NAME on every EMP is dearer,
  // so the enumerator must keep the rule-based plan.
  OptimizerStats stats;
  Retrieval chosen = MustCostOptimize(
      db, catalog,
      "FIND(EMP: SYSTEM, ALL-DIV, DIV(DIV-NAME = 'DIV-0003'), DIV-EMP, "
      "EMP(EMP-NAME = 'EMP-0003-00001'))",
      &stats);
  EXPECT_EQ(stats.plans_rerouted, 0);
  EXPECT_GE(stats.plans_costed, 3);
  EXPECT_NE(chosen.ToString().find("ALL-DIV"), std::string::npos);
}

TEST(CostBasedOptimizerTest, UnsafeOrderSwapNotGenerated) {
  Database db = MakeDatabase(CompanyAllEmpDdl());
  FillCompany(&db, 10, 8);
  StatisticsCatalog catalog = StatisticsCatalog::Collect(db);
  // No SORT and no unique pin: the occurrence-grouped output order is
  // observable, so no entry swap is legal whatever it would cost.
  OptimizerStats stats;
  Retrieval chosen = MustCostOptimize(
      db, catalog, "FIND(EMP: SYSTEM, ALL-DIV, DIV, DIV-EMP, EMP(AGE > 30))",
      &stats);
  EXPECT_EQ(stats.plans_rerouted, 0);
  EXPECT_NE(chosen.ToString().find("ALL-DIV"), std::string::npos);
}

TEST(CostBasedOptimizerTest, NullCatalogFallsBackToRules) {
  Database db = MakeDatabase(CompanyAllEmpDdl());
  FillCompany(&db, 4, 4);
  Retrieval r = *ParseRetrieval(
      "SORT(FIND(EMP: SYSTEM, ALL-DIV, DIV, DIV-EMP, EMP)) ON (EMP-NAME)");
  OptimizerStats stats;
  ASSERT_TRUE(OptimizeRetrieval(db.schema(), nullptr, &r, &stats).ok());
  EXPECT_EQ(stats.plans_costed, 0);
  EXPECT_TRUE(stats.plan_choices.empty());
  EXPECT_NE(r.ToString().find("ALL-DIV"), std::string::npos);
}

}  // namespace
}  // namespace dbpc
