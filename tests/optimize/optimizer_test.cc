#include "optimize/optimizer.h"

#include <gtest/gtest.h>

#include "engine/find_query.h"
#include "equivalence/checker.h"
#include "lang/parser.h"
#include "restructure/transformation.h"
#include "schema/ddl_parser.h"
#include "testing/fixtures.h"

namespace dbpc {
namespace {

using testing::MakeDatabase;

Database RevisedCompany() {
  Database db = MakeDatabase(testing::CompanyRevisedDdl());
  RecordId machinery = *db.StoreRecord(
      {"DIV",
       {{"DIV-NAME", Value::String("MACHINERY")},
        {"DIV-LOC", Value::String("EAST")}},
       {}});
  RecordId textiles = *db.StoreRecord(
      {"DIV",
       {{"DIV-NAME", Value::String("TEXTILES")},
        {"DIV-LOC", Value::String("SOUTH")}},
       {}});
  RecordId m_sales = *db.StoreRecord(
      {"DEPT", {{"DEPT-NAME", Value::String("SALES")}}, {{"DIV-DEPT", machinery}}});
  RecordId m_plan = *db.StoreRecord(
      {"DEPT",
       {{"DEPT-NAME", Value::String("PLANNING")}},
       {{"DIV-DEPT", machinery}}});
  RecordId t_sales = *db.StoreRecord(
      {"DEPT", {{"DEPT-NAME", Value::String("SALES")}}, {{"DIV-DEPT", textiles}}});
  auto emp = [&](const char* name, int64_t age, RecordId dept) {
    (void)*db.StoreRecord({"EMP",
                           {{"EMP-NAME", Value::String(name)},
                            {"AGE", Value::Int(age)}},
                           {{"DEPT-EMP", dept}}});
  };
  emp("ADAMS", 34, m_sales);
  emp("BAKER", 28, m_sales);
  emp("CLARK", 45, m_plan);
  emp("DAVIS", 31, t_sales);
  return db;
}

Retrieval MustOptimize(const Database& db, const std::string& text,
                       OptimizerStats* stats) {
  Result<Retrieval> r = ParseRetrieval(text);
  EXPECT_TRUE(r.ok()) << r.status();
  Retrieval retrieval = *r;
  Status s = OptimizeRetrieval(db.schema(), &retrieval, stats);
  EXPECT_TRUE(s.ok()) << s;
  return retrieval;
}

TEST(OptimizerTest, PushesVirtualFieldPredicateToOwnerStep) {
  Database db = RevisedCompany();
  OptimizerStats stats;
  Retrieval r = MustOptimize(
      db,
      "FIND(EMP: SYSTEM, ALL-DIV, DIV, DIV-DEPT, DEPT, DEPT-EMP, "
      "EMP(DEPT-NAME = 'SALES'))",
      &stats);
  EXPECT_EQ(stats.predicates_pushed, 1);
  EXPECT_EQ(r.ToString(),
            "FIND(EMP: SYSTEM, ALL-DIV, DIV, DIV-DEPT, "
            "DEPT(DEPT-NAME = 'SALES'), DEPT-EMP, EMP)");
}

TEST(OptimizerTest, ChainedVirtualClimbsTwoLevels) {
  Database db = RevisedCompany();
  OptimizerStats stats;
  Retrieval r = MustOptimize(
      db,
      "FIND(EMP: SYSTEM, ALL-DIV, DIV, DIV-DEPT, DEPT, DEPT-EMP, "
      "EMP(DIV-NAME = 'TEXTILES'))",
      &stats);
  // EMP.DIV-NAME -> DEPT.DIV-NAME -> DIV.DIV-NAME takes two pushes.
  EXPECT_EQ(stats.predicates_pushed, 2);
  EXPECT_EQ(r.ToString(),
            "FIND(EMP: SYSTEM, ALL-DIV, DIV(DIV-NAME = 'TEXTILES'), "
            "DIV-DEPT, DEPT, DEPT-EMP, EMP)");
}

TEST(OptimizerTest, PushdownPreservesResults) {
  Database db = RevisedCompany();
  const std::string unoptimized_text =
      "FIND(EMP: SYSTEM, ALL-DIV, DIV, DIV-DEPT, DEPT, DEPT-EMP, "
      "EMP(DEPT-NAME = 'SALES' AND AGE > 30))";
  Retrieval unopt = *ParseRetrieval(unoptimized_text);
  ASSERT_TRUE(ResolveFindQuery(db.schema(), &unopt.query).ok());
  OptimizerStats stats;
  Retrieval opt = MustOptimize(db, unoptimized_text, &stats);
  ASSERT_GT(stats.predicates_pushed, 0);
  Result<std::vector<RecordId>> a =
      EvaluateRetrieval(db, unopt, EmptyHostEnv(), EmptyCollectionEnv());
  Result<std::vector<RecordId>> b =
      EvaluateRetrieval(db, opt, EmptyHostEnv(), EmptyCollectionEnv());
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(*a, *b);
}

TEST(OptimizerTest, NonVirtualPredicateStays) {
  Database db = RevisedCompany();
  OptimizerStats stats;
  Retrieval r = MustOptimize(
      db, "FIND(EMP: SYSTEM, ALL-DIV, DIV, DIV-DEPT, DEPT, DEPT-EMP, EMP(AGE > 30))",
      &stats);
  EXPECT_EQ(stats.predicates_pushed, 0);
  EXPECT_NE(r.ToString().find("EMP(AGE > 30)"), std::string::npos);
}

TEST(OptimizerTest, OrPredicateNotPushed) {
  Database db = RevisedCompany();
  OptimizerStats stats;
  MustOptimize(db,
               "FIND(EMP: SYSTEM, ALL-DIV, DIV, DIV-DEPT, DEPT, DEPT-EMP, "
               "EMP(DEPT-NAME = 'SALES' OR AGE > 30))",
               &stats);
  EXPECT_EQ(stats.predicates_pushed, 0);
}

TEST(OptimizerTest, RemovesRedundantSort) {
  Database db = testing::MakeCompanyDatabase();
  OptimizerStats stats;
  Retrieval r = MustOptimize(
      db,
      "SORT(FIND(EMP: SYSTEM, ALL-DIV, DIV(DIV-NAME = 'MACHINERY'), "
      "DIV-EMP, EMP)) ON (EMP-NAME)",
      &stats);
  EXPECT_EQ(stats.sorts_removed, 1);
  EXPECT_TRUE(r.sort_on.empty());
}

TEST(OptimizerTest, KeepsNecessarySort) {
  Database db = testing::MakeCompanyDatabase();
  OptimizerStats stats;
  // Multiple divisions traversed: global EMP-NAME order differs from the
  // per-occurrence order, the SORT must stay.
  Retrieval r = MustOptimize(
      db, "SORT(FIND(EMP: SYSTEM, ALL-DIV, DIV, DIV-EMP, EMP)) ON (EMP-NAME)",
      &stats);
  EXPECT_EQ(stats.sorts_removed, 0);
  EXPECT_FALSE(r.sort_on.empty());
}

TEST(OptimizerTest, KeepsSortOnDifferentKey) {
  Database db = testing::MakeCompanyDatabase();
  OptimizerStats stats;
  Retrieval r = MustOptimize(
      db,
      "SORT(FIND(EMP: SYSTEM, ALL-DIV, DIV(DIV-NAME = 'MACHINERY'), "
      "DIV-EMP, EMP)) ON (AGE)",
      &stats);
  EXPECT_EQ(stats.sorts_removed, 0);
  EXPECT_FALSE(r.sort_on.empty());
}

TEST(OptimizerTest, SortRemovalAfterFullKeyEqualityOnIntermediate) {
  Database db = RevisedCompany();
  OptimizerStats stats;
  // DIV unique by name, DEPT pinned by full sort key equality: single
  // occurrence of DEPT-EMP, so the SORT on its key is redundant.
  Retrieval r = MustOptimize(
      db,
      "SORT(FIND(EMP: SYSTEM, ALL-DIV, DIV(DIV-NAME = 'MACHINERY'), "
      "DIV-DEPT, DEPT(DEPT-NAME = 'SALES'), DEPT-EMP, EMP)) ON (EMP-NAME)",
      &stats);
  EXPECT_EQ(stats.sorts_removed, 1);
}

TEST(OptimizerTest, OptimizeProgramTouchesAllRetrievals) {
  Database db = RevisedCompany();
  Program p = *ParseProgram(R"(
PROGRAM P.
  FOR EACH E IN FIND(EMP: SYSTEM, ALL-DIV, DIV, DIV-DEPT, DEPT, DEPT-EMP,
      EMP(DEPT-NAME = 'SALES')) DO
    GET EMP-NAME OF E INTO N.
    DISPLAY N.
  END-FOR.
  RETRIEVE C = FIND(EMP: SYSTEM, ALL-DIV, DIV, DIV-DEPT, DEPT, DEPT-EMP,
      EMP(DIV-NAME = 'TEXTILES')).
END PROGRAM.)");
  OptimizerStats stats;
  ASSERT_TRUE(OptimizeProgram(db.schema(), &p, &stats).ok());
  EXPECT_EQ(stats.predicates_pushed, 3);
}

TEST(OptimizerTest, OptimizedProgramRunsEquivalently) {
  Database db = RevisedCompany();
  Program original = *ParseProgram(R"(
PROGRAM P.
  FOR EACH E IN SORT(FIND(EMP: SYSTEM, ALL-DIV, DIV(DIV-NAME = 'MACHINERY'),
      DIV-DEPT, DEPT, DEPT-EMP, EMP(DEPT-NAME = 'SALES'))) ON (EMP-NAME) DO
    GET EMP-NAME OF E INTO N.
    DISPLAY N.
  END-FOR.
END PROGRAM.)");
  Program optimized = original;
  OptimizerStats stats;
  ASSERT_TRUE(OptimizeProgram(db.schema(), &optimized, &stats).ok());
  EXPECT_TRUE(stats.Changed());
  Result<EquivalenceReport> report =
      CheckEquivalence(db, original, db, optimized, IoScript());
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->equivalent) << report->detail;
}

// Five-level chain whose middle and last records both carry a virtual
// field, with the owner record steps omitted from the query path: both
// conjuncts force an owner-step insertion within one PushdownPass call,
// which reallocates `steps` twice. Regression for the dangling-reference
// pushdown loop (it held a PathStep& across the insert).
std::string ChainDdl() {
  return R"(
SCHEMA NAME IS CHAIN
RECORD SECTION.
  RECORD NAME IS A.
  FIELDS ARE.
    A-NAME PIC X(10).
  END RECORD.
  RECORD NAME IS B.
  FIELDS ARE.
    B-NAME PIC X(10).
  END RECORD.
  RECORD NAME IS C.
  FIELDS ARE.
    C-NAME PIC X(10).
    B-NAME VIRTUAL VIA BC USING B-NAME.
  END RECORD.
  RECORD NAME IS D.
  FIELDS ARE.
    D-NAME PIC X(10).
  END RECORD.
  RECORD NAME IS E.
  FIELDS ARE.
    E-NAME PIC X(10).
    D-NAME VIRTUAL VIA DE USING D-NAME.
  END RECORD.
END RECORD SECTION.
SET SECTION.
  SET NAME IS ALL-A.
  OWNER IS SYSTEM.
  MEMBER IS A.
  SET KEYS ARE (A-NAME).
  END SET.
  SET NAME IS AB.
  OWNER IS A.
  MEMBER IS B.
  SET KEYS ARE (B-NAME).
  END SET.
  SET NAME IS BC.
  OWNER IS B.
  MEMBER IS C.
  SET KEYS ARE (C-NAME).
  END SET.
  SET NAME IS CD.
  OWNER IS C.
  MEMBER IS D.
  SET KEYS ARE (D-NAME).
  END SET.
  SET NAME IS DE.
  OWNER IS D.
  MEMBER IS E.
  SET KEYS ARE (E-NAME).
  END SET.
END SET SECTION.
END SCHEMA.
)";
}

TEST(OptimizerTest, TwoOwnerStepInsertionsInOnePass) {
  Database db = MakeDatabase(ChainDdl());
  OptimizerStats stats;
  Retrieval r = MustOptimize(
      db,
      "FIND(E: SYSTEM, ALL-A, AB, BC, C(B-NAME = 'B1'), CD, DE, "
      "E(D-NAME = 'D1'))",
      &stats);
  EXPECT_EQ(stats.predicates_pushed, 2);
  EXPECT_EQ(r.ToString(),
            "FIND(E: SYSTEM, ALL-A, AB, B(B-NAME = 'B1'), BC, C, CD, "
            "D(D-NAME = 'D1'), DE, E)");
}

TEST(OptimizerTest, FailedRetrievalRestoredOnError) {
  Database db = RevisedCompany();
  const std::string broken =
      "RETRIEVE C1 = FIND(EMP: SYSTEM, NO-SUCH-SET, EMP).";
  Program p = *ParseProgram(
      "PROGRAM P.\n  " + broken +
      "\n  RETRIEVE C2 = FIND(EMP: SYSTEM, ALL-DIV, DIV, DIV-DEPT, DEPT, "
      "DEPT-EMP, EMP(DEPT-NAME = 'SALES')).\nEND PROGRAM.");
  Program before = p;
  OptimizerStats stats;
  Status s = OptimizeProgram(db.schema(), &p, &stats);
  EXPECT_FALSE(s.ok());
  // The failing retrieval keeps its pre-optimization text exactly...
  EXPECT_EQ(p.body[0].retrieval->ToString(),
            before.body[0].retrieval->ToString());
  // ...while the healthy one still gets its pushdown.
  EXPECT_EQ(stats.predicates_pushed, 1);
  EXPECT_EQ(p.body[1].retrieval->ToString(),
            "FIND(EMP: SYSTEM, ALL-DIV, DIV, DIV-DEPT, "
            "DEPT(DEPT-NAME = 'SALES'), DEPT-EMP, EMP)");
}

TEST(OptimizerTest, MultipleFailuresReportedInOneStatus) {
  Database db = RevisedCompany();
  Program p = *ParseProgram(R"(
PROGRAM P.
  RETRIEVE C1 = FIND(EMP: SYSTEM, NO-SUCH-SET, EMP).
  RETRIEVE C2 = FIND(EMP: SYSTEM, ALSO-MISSING, EMP).
END PROGRAM.)");
  OptimizerStats stats;
  Status s = OptimizeProgram(db.schema(), &p, &stats);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("1 more retrievals left unoptimized"),
            std::string::npos)
      << s;
}

TEST(NaturalOrderKeysTest, ChainedVirtualPushEnablesSortRemoval) {
  Database db = RevisedCompany();
  OptimizerStats stats;
  // DIV-NAME climbs two set levels, DEPT-NAME one; the pinned DIV and DEPT
  // leave a single DEPT-EMP occurrence whose key order satisfies the SORT.
  Retrieval r = MustOptimize(
      db,
      "SORT(FIND(EMP: SYSTEM, ALL-DIV, DIV, DIV-DEPT, DEPT, DEPT-EMP, "
      "EMP(DIV-NAME = 'MACHINERY' AND DEPT-NAME = 'SALES'))) ON (EMP-NAME)",
      &stats);
  EXPECT_EQ(stats.predicates_pushed, 3);
  EXPECT_EQ(stats.sorts_removed, 1);
  EXPECT_TRUE(r.sort_on.empty());
}

TEST(NaturalOrderKeysTest, IntermediatePinWithoutUpstreamSinglenessKeepsSort) {
  Database db = RevisedCompany();
  OptimizerStats stats;
  // DEPT is pinned by its full sort key, but DIV is not: one SALES DEPT per
  // division survives, so the result spans occurrences and the SORT stays.
  Retrieval r = MustOptimize(
      db,
      "SORT(FIND(EMP: SYSTEM, ALL-DIV, DIV, DIV-DEPT, "
      "DEPT(DEPT-NAME = 'SALES'), DEPT-EMP, EMP)) ON (EMP-NAME)",
      &stats);
  EXPECT_EQ(stats.sorts_removed, 0);
  EXPECT_FALSE(r.sort_on.empty());
}

TEST(NaturalOrderKeysTest, SortedSetWithEmptyKeyListYieldsEmptyKeys) {
  Schema schema = *ParseDdl(testing::CompanyDdl());
  schema.FindSet("DIV-EMP")->keys.clear();
  FindQuery q = *ParseFindQuery(
      "FIND(EMP: SYSTEM, ALL-DIV, DIV(DIV-NAME = 'X'), DIV-EMP, EMP)");
  ASSERT_TRUE(ResolveFindQuery(schema, &q).ok());
  // kSortedByKeys with no keys: the order is well-defined per occurrence
  // but names no fields, so the key list is empty and no SORT can match it.
  std::optional<std::vector<std::string>> keys = NaturalOrderKeys(schema, q);
  ASSERT_TRUE(keys.has_value());
  EXPECT_TRUE(keys->empty());
  Retrieval r = *ParseRetrieval(
      "SORT(FIND(EMP: SYSTEM, ALL-DIV, DIV(DIV-NAME = 'X'), DIV-EMP, EMP)) "
      "ON (EMP-NAME)");
  OptimizerStats stats;
  ASSERT_TRUE(OptimizeRetrieval(schema, &r, &stats).ok());
  EXPECT_EQ(stats.sorts_removed, 0);
  EXPECT_FALSE(r.sort_on.empty());
}

TEST(NaturalOrderKeysTest, EmptyKeyListCannotPinIntermediateSet) {
  Schema schema = *ParseDdl(testing::CompanyDdl());
  schema.FindSet("ALL-DIV")->keys.clear();
  FindQuery q = *ParseFindQuery(
      "FIND(EMP: SYSTEM, ALL-DIV, DIV(DIV-NAME = 'X'), DIV-EMP, EMP)");
  ASSERT_TRUE(ResolveFindQuery(schema, &q).ok());
  // With no keys on ALL-DIV the equality cannot cover a full key, so DIV is
  // no longer provably single and the whole order is unknown.
  EXPECT_FALSE(NaturalOrderKeys(schema, q).has_value());
}

TEST(NaturalOrderKeysTest, CollectionStartUnknown) {
  Database db = testing::MakeCompanyDatabase();
  FindQuery q = *ParseFindQuery("FIND(EMP: C, DIV-EMP, EMP)");
  ASSERT_TRUE(ResolveFindQuery(db.schema(), &q).ok());
  EXPECT_FALSE(NaturalOrderKeys(db.schema(), q).has_value());
}

TEST(NaturalOrderKeysTest, SingleOccurrenceYieldsKeys) {
  Database db = testing::MakeCompanyDatabase();
  FindQuery q = *ParseFindQuery(
      "FIND(EMP: SYSTEM, ALL-DIV, DIV(DIV-NAME = 'X'), DIV-EMP, EMP)");
  ASSERT_TRUE(ResolveFindQuery(db.schema(), &q).ok());
  std::optional<std::vector<std::string>> keys =
      NaturalOrderKeys(db.schema(), q);
  ASSERT_TRUE(keys.has_value());
  EXPECT_EQ(*keys, (std::vector<std::string>{"EMP-NAME"}));
}

}  // namespace
}  // namespace dbpc
