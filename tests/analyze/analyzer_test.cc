#include "analyze/analyzer.h"

#include <gtest/gtest.h>

#include "equivalence/checker.h"
#include "lang/parser.h"
#include "testing/fixtures.h"

namespace dbpc {
namespace {

using testing::MakeCompanyDatabase;

Analysis MustAnalyze(const Schema& schema, const std::string& source) {
  Result<Program> p = ParseProgram(source);
  EXPECT_TRUE(p.ok()) << p.status();
  ProgramAnalyzer analyzer(schema);
  Result<Analysis> a = analyzer.Analyze(*p);
  EXPECT_TRUE(a.ok()) << a.status();
  return a.ok() ? *a : Analysis();
}

/// The lifted program must run identically to the original (lifting is a
/// semantics-preserving rewrite on the same schema).
void ExpectLiftEquivalent(const std::string& source) {
  Database db = MakeCompanyDatabase();
  Program original = *ParseProgram(source);
  Analysis analysis = MustAnalyze(db.schema(), source);
  Result<EquivalenceReport> report =
      CheckEquivalence(db, original, db, analysis.lifted, IoScript());
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->equivalent)
      << report->detail << "\nlifted:\n"
      << analysis.lifted.ToSource();
}

constexpr const char* kSimpleNavLoop = R"(
PROGRAM NAV.
  FIND ANY DIV (DIV-NAME = 'MACHINERY').
  FIND FIRST EMP WITHIN DIV-EMP.
  WHILE DB-STATUS = '0000' DO
    GET EMP-NAME INTO N.
    DISPLAY N.
    FIND NEXT EMP WITHIN DIV-EMP.
  END-WHILE.
END PROGRAM.)";

TEST(AnalyzerTest, LiftsFindAnyPlusLoop) {
  Database db = MakeCompanyDatabase();
  Analysis a = MustAnalyze(db.schema(), kSimpleNavLoop);
  EXPECT_TRUE(a.fully_lifted);
  EXPECT_EQ(a.convertibility, Convertibility::kAutomatic);
  ASSERT_EQ(a.lifted.body.size(), 1u);
  const Stmt& loop = a.lifted.body[0];
  EXPECT_EQ(loop.kind, StmtKind::kForEach);
  ASSERT_TRUE(loop.retrieval.has_value());
  EXPECT_EQ(loop.retrieval->query.ToString(),
            "FIND(EMP: SYSTEM, ALL-DIV, DIV(DIV-NAME = 'MACHINERY'), "
            "DIV-EMP, EMP)");
  ASSERT_EQ(loop.body.size(), 2u);
  EXPECT_EQ(loop.body[0].kind, StmtKind::kGetField);
}

TEST(AnalyzerTest, LiftedProgramRunsEquivalently) {
  ExpectLiftEquivalent(kSimpleNavLoop);
}

TEST(AnalyzerTest, LiftsSystemSetLoop) {
  Database db = MakeCompanyDatabase();
  Analysis a = MustAnalyze(db.schema(), R"(
PROGRAM P.
  FIND FIRST DIV WITHIN ALL-DIV.
  WHILE DB-STATUS = '0000' DO
    GET DIV-NAME INTO D.
    DISPLAY D.
    FIND NEXT DIV WITHIN ALL-DIV.
  END-WHILE.
END PROGRAM.)");
  EXPECT_TRUE(a.fully_lifted);
  EXPECT_EQ(a.convertibility, Convertibility::kAutomatic);
  EXPECT_EQ(a.lifted.body[0].retrieval->query.ToString(),
            "FIND(DIV: SYSTEM, ALL-DIV, DIV)");
}

TEST(AnalyzerTest, LiftsNestedLoops) {
  const char* source = R"(
PROGRAM NST.
  FIND FIRST DIV WITHIN ALL-DIV.
  WHILE DB-STATUS = '0000' DO
    GET DIV-NAME INTO D.
    DISPLAY 'DIV ' & D.
    FIND FIRST EMP WITHIN DIV-EMP USING (AGE >= 30).
    WHILE DB-STATUS = '0000' DO
      GET EMP-NAME INTO N.
      DISPLAY '  ' & N.
      FIND NEXT EMP WITHIN DIV-EMP USING (AGE >= 30).
    END-WHILE.
    FIND NEXT DIV WITHIN ALL-DIV.
  END-WHILE.
END PROGRAM.)";
  Database db = MakeCompanyDatabase();
  Analysis a = MustAnalyze(db.schema(), source);
  EXPECT_TRUE(a.fully_lifted) << a.lifted.ToSource();
  EXPECT_EQ(a.convertibility, Convertibility::kAutomatic);
  // Outer FOR EACH over divisions, inner FOR EACH starting at the outer
  // cursor.
  const Stmt& outer = a.lifted.body[0];
  ASSERT_EQ(outer.kind, StmtKind::kForEach);
  bool found_inner = false;
  for (const Stmt& s : outer.body) {
    if (s.kind == StmtKind::kForEach) {
      found_inner = true;
      EXPECT_EQ(s.retrieval->query.start, outer.cursor);
    }
  }
  EXPECT_TRUE(found_inner);
  ExpectLiftEquivalent(source);
}

TEST(AnalyzerTest, LiftsUsingPredicate) {
  const char* source = R"(
PROGRAM P.
  FIND ANY DIV (DIV-NAME = 'MACHINERY').
  FIND FIRST EMP WITHIN DIV-EMP USING (DEPT-NAME = 'SALES').
  WHILE DB-STATUS = '0000' DO
    GET EMP-NAME INTO N.
    DISPLAY N.
    FIND NEXT EMP WITHIN DIV-EMP USING (DEPT-NAME = 'SALES').
  END-WHILE.
END PROGRAM.)";
  Database db = MakeCompanyDatabase();
  Analysis a = MustAnalyze(db.schema(), source);
  EXPECT_TRUE(a.fully_lifted);
  ExpectLiftEquivalent(source);
}

TEST(AnalyzerTest, MismatchedUsingPredicatesNotLifted) {
  Database db = MakeCompanyDatabase();
  Analysis a = MustAnalyze(db.schema(), R"(
PROGRAM P.
  FIND FIRST EMP WITHIN DIV-EMP USING (AGE > 30).
  WHILE DB-STATUS = '0000' DO
    FIND NEXT EMP WITHIN DIV-EMP USING (AGE > 40).
  END-WHILE.
END PROGRAM.)");
  EXPECT_FALSE(a.fully_lifted);
  EXPECT_EQ(a.convertibility, Convertibility::kNeedsAnalyst);
}

TEST(AnalyzerTest, AmbiguousOwnerFlagged) {
  // DIV-LOC is not a unique key: several divisions may match, and the
  // lifted path visits all while FIND ANY stopped at the first.
  Database db = MakeCompanyDatabase();
  Analysis a = MustAnalyze(db.schema(), R"(
PROGRAM P.
  FIND ANY DIV (DIV-LOC = 'EAST').
  FIND FIRST EMP WITHIN DIV-EMP.
  WHILE DB-STATUS = '0000' DO
    GET EMP-NAME INTO N.
    DISPLAY N.
    FIND NEXT EMP WITHIN DIV-EMP.
  END-WHILE.
END PROGRAM.)");
  EXPECT_TRUE(a.HasIssue(AnalysisIssue::Kind::kAmbiguousOwnerSelection));
  EXPECT_EQ(a.convertibility, Convertibility::kNeedsAnalyst);
}

TEST(AnalyzerTest, UniqueKeyOwnerNotFlagged) {
  Database db = MakeCompanyDatabase();
  Analysis a = MustAnalyze(db.schema(), kSimpleNavLoop);
  EXPECT_FALSE(a.HasIssue(AnalysisIssue::Kind::kAmbiguousOwnerSelection));
}

TEST(AnalyzerTest, EraseInsideScanNotLifted) {
  Database db = MakeCompanyDatabase();
  Analysis a = MustAnalyze(db.schema(), R"(
PROGRAM P.
  FIND ANY DIV (DIV-NAME = 'MACHINERY').
  FIND FIRST EMP WITHIN DIV-EMP.
  WHILE DB-STATUS = '0000' DO
    ERASE.
    FIND NEXT EMP WITHIN DIV-EMP.
  END-WHILE.
END PROGRAM.)");
  EXPECT_FALSE(a.fully_lifted);
  EXPECT_TRUE(a.HasIssue(AnalysisIssue::Kind::kUnliftedNavigation));
  EXPECT_EQ(a.convertibility, Convertibility::kNeedsAnalyst);
}

TEST(AnalyzerTest, ModifyOfScannedSetKeyNotLifted) {
  Database db = MakeCompanyDatabase();
  Analysis a = MustAnalyze(db.schema(), R"(
PROGRAM P.
  FIND ANY DIV (DIV-NAME = 'MACHINERY').
  FIND FIRST EMP WITHIN DIV-EMP.
  WHILE DB-STATUS = '0000' DO
    MODIFY SET (EMP-NAME = 'X').
    FIND NEXT EMP WITHIN DIV-EMP.
  END-WHILE.
END PROGRAM.)");
  EXPECT_FALSE(a.fully_lifted);
}

TEST(AnalyzerTest, ModifyOfNonKeyFieldLifted) {
  const char* source = R"(
PROGRAM P.
  FIND ANY DIV (DIV-NAME = 'MACHINERY').
  FIND FIRST EMP WITHIN DIV-EMP.
  WHILE DB-STATUS = '0000' DO
    MODIFY SET (AGE = 99).
    FIND NEXT EMP WITHIN DIV-EMP.
  END-WHILE.
  DISPLAY 'DONE'.
END PROGRAM.)";
  Database db = MakeCompanyDatabase();
  Analysis a = MustAnalyze(db.schema(), source);
  EXPECT_TRUE(a.fully_lifted) << a.lifted.ToSource();
  ExpectLiftEquivalent(source);
}

TEST(AnalyzerTest, RuntimeVariabilityRefused) {
  Database db = MakeCompanyDatabase();
  Analysis a = MustAnalyze(db.schema(), R"(
PROGRAM P.
  ACCEPT V.
  CALL DML(V, EMP).
END PROGRAM.)");
  EXPECT_TRUE(a.HasIssue(AnalysisIssue::Kind::kRuntimeVariability));
  EXPECT_EQ(a.convertibility, Convertibility::kNotConvertible);
}

TEST(AnalyzerTest, StatusCodeDependenceFlagged) {
  Database db = MakeCompanyDatabase();
  Analysis a = MustAnalyze(db.schema(), R"(
PROGRAM P.
  STORE EMP (EMP-NAME = 'X') IN DIV-EMP WHERE (DIV-NAME = 'MACHINERY').
  IF DB-STATUS = '0000' THEN DISPLAY 'OK'. END-IF.
END PROGRAM.)");
  EXPECT_TRUE(a.HasIssue(AnalysisIssue::Kind::kStatusCodeDependence));
  EXPECT_EQ(a.convertibility, Convertibility::kNeedsAnalyst);
}

TEST(AnalyzerTest, StatusLoopItselfNotFlagged) {
  Database db = MakeCompanyDatabase();
  Analysis a = MustAnalyze(db.schema(), kSimpleNavLoop);
  EXPECT_FALSE(a.HasIssue(AnalysisIssue::Kind::kStatusCodeDependence));
}

TEST(AnalyzerTest, OrderDependenceDetected) {
  Database db = MakeCompanyDatabase();
  Analysis a = MustAnalyze(db.schema(), R"(
PROGRAM P.
  FOR EACH E IN FIND(EMP: SYSTEM, ALL-DIV, DIV, DIV-EMP, EMP) DO
    GET EMP-NAME OF E INTO N.
    WRITE REPORT FROM N.
  END-FOR.
END PROGRAM.)");
  EXPECT_TRUE(a.HasIssue(AnalysisIssue::Kind::kOrderDependence));
  EXPECT_EQ(a.order_dependent_sets,
            (std::vector<std::string>{"ALL-DIV", "DIV-EMP"}));
  // Informational only: still automatic.
  EXPECT_EQ(a.convertibility, Convertibility::kAutomatic);
}

TEST(AnalyzerTest, SortedRetrievalNotOrderDependent) {
  Database db = MakeCompanyDatabase();
  Analysis a = MustAnalyze(db.schema(), R"(
PROGRAM P.
  FOR EACH E IN SORT(FIND(EMP: SYSTEM, ALL-DIV, DIV, DIV-EMP, EMP)) ON (EMP-NAME) DO
    GET EMP-NAME OF E INTO N.
    DISPLAY N.
  END-FOR.
END PROGRAM.)");
  EXPECT_FALSE(a.HasIssue(AnalysisIssue::Kind::kOrderDependence));
}

TEST(AnalyzerTest, LoopWithoutOutputNotOrderDependent) {
  Database db = MakeCompanyDatabase();
  Analysis a = MustAnalyze(db.schema(), R"(
PROGRAM P.
  FOR EACH E IN FIND(EMP: SYSTEM, ALL-DIV, DIV, DIV-EMP, EMP) DO
    MODIFY E SET (AGE = 1).
  END-FOR.
END PROGRAM.)");
  EXPECT_FALSE(a.HasIssue(AnalysisIssue::Kind::kOrderDependence));
}

TEST(AnalyzerTest, ProceduralConstraintDetected) {
  Database db = MakeCompanyDatabase();
  Analysis a = MustAnalyze(db.schema(), R"(
PROGRAM P.
  FOR EACH D IN FIND(DIV: SYSTEM, ALL-DIV, DIV(DIV-NAME = 'MACHINERY')) DO
    GET DIV-NAME OF D INTO DN.
  END-FOR.
  IF DN IS NOT NULL THEN
    STORE EMP (EMP-NAME = 'NEW') IN DIV-EMP WHERE (DIV-NAME = :DN).
  END-IF.
END PROGRAM.)");
  EXPECT_TRUE(a.HasIssue(AnalysisIssue::Kind::kProceduralConstraint));
}

TEST(AnalyzerTest, AccessSequencesDerived) {
  Database db = MakeCompanyDatabase();
  Analysis a = MustAnalyze(db.schema(), kSimpleNavLoop);
  ASSERT_EQ(a.sequences.size(), 1u);
  EXPECT_EQ(a.sequences[0].ToString(),
            "ACCESS DIV via DIV (DIV-NAME = 'MACHINERY')\n"
            "ACCESS DIV-EMP via DIV\n"
            "ACCESS EMP via DIV-EMP\n"
            "RETRIEVE\n");
}

TEST(AnalyzerOptionsTest, LiftingCanBeDisabled) {
  Database db = MakeCompanyDatabase();
  AnalyzerOptions options;
  options.lift_templates = false;
  ProgramAnalyzer analyzer(db.schema(), options);
  Analysis a = *analyzer.Analyze(*ParseProgram(kSimpleNavLoop));
  EXPECT_FALSE(a.fully_lifted);
  EXPECT_TRUE(a.HasIssue(AnalysisIssue::Kind::kUnliftedNavigation));
  EXPECT_EQ(a.convertibility, Convertibility::kNeedsAnalyst);
}

TEST(SelectsAtMostOneTest, SystemSetKeyEquality) {
  Database db = MakeCompanyDatabase();
  Predicate unique = Predicate::Compare(
      "DIV-NAME", CompareOp::kEq, Operand::Literal(Value::String("X")));
  EXPECT_TRUE(SelectsAtMostOne(db.schema(), "DIV", unique));
  Predicate loc = Predicate::Compare("DIV-LOC", CompareOp::kEq,
                                     Operand::Literal(Value::String("EAST")));
  EXPECT_FALSE(SelectsAtMostOne(db.schema(), "DIV", loc));
  // Inequality on the key is not unique.
  Predicate range = Predicate::Compare("DIV-NAME", CompareOp::kGt,
                                       Operand::Literal(Value::String("A")));
  EXPECT_FALSE(SelectsAtMostOne(db.schema(), "DIV", range));
  // OR defeats the guarantee even with key equalities on both sides.
  Predicate either = Predicate::Or(unique, unique);
  EXPECT_FALSE(SelectsAtMostOne(db.schema(), "DIV", either));
  // AND with extra conjuncts keeps it.
  Predicate both = Predicate::And(unique, loc);
  EXPECT_TRUE(SelectsAtMostOne(db.schema(), "DIV", both));
}

TEST(SelectsAtMostOneTest, UniquenessConstraint) {
  Database db = testing::MakeSchoolDatabase();
  Predicate cno = Predicate::Compare("CNO", CompareOp::kEq,
                                     Operand::Literal(Value::String("CS101")));
  EXPECT_TRUE(SelectsAtMostOne(db.schema(), "COURSE", cno));
  Predicate cname = Predicate::Compare(
      "CNAME", CompareOp::kEq, Operand::Literal(Value::String("INTRO")));
  EXPECT_FALSE(SelectsAtMostOne(db.schema(), "COURSE", cname));
}

}  // namespace
}  // namespace dbpc
