#include "analyze/advisor.h"

#include <gtest/gtest.h>

#include "lang/parser.h"
#include "testing/fixtures.h"

namespace dbpc {
namespace {

using testing::MakeCompanyDatabase;

bool HasKind(const std::vector<Advice>& advice, const std::string& kind) {
  for (const Advice& a : advice) {
    if (a.kind == kind) return true;
  }
  return false;
}

TEST(AdvisorTest, CleanProgramGetsNoAdvice) {
  Database db = MakeCompanyDatabase();
  Program p = *ParseProgram(R"(
PROGRAM P.
  FOR EACH E IN FIND(EMP: SYSTEM, ALL-DIV, DIV(DIV-NAME = 'MACHINERY'),
      DIV-EMP, EMP(AGE > 30)) DO
    GET EMP-NAME OF E INTO N.
    DISPLAY N.
  END-FOR.
END PROGRAM.)");
  EXPECT_TRUE(AdviseProgram(db.schema(), p).empty());
}

TEST(AdvisorTest, JoinOverExistingAssociationFlagged) {
  // The paper's "a programmer may try to relate two files through two data
  // items which are not related in application terms" — or, as here, relate
  // associated types the hard way.
  Database db = MakeCompanyDatabase();
  Program p = *ParseProgram(R"(
PROGRAM P.
  FOR EACH E IN FIND(EMP: SYSTEM, ALL-DIV, DIV(DIV-LOC = 'EAST'),
      JOIN EMP THROUGH (DIV-NAME, DIV-NAME)) DO
    GET EMP-NAME OF E INTO N.
    DISPLAY N.
  END-FOR.
END PROGRAM.)");
  std::vector<Advice> advice = AdviseProgram(db.schema(), p);
  ASSERT_TRUE(HasKind(advice, "join-duplicates-association"));
  EXPECT_NE(advice[0].detail.find("DIV-EMP"), std::string::npos);
}

TEST(AdvisorTest, JoinToUnrelatedTypeNotFlagged) {
  Schema schema = MakeCompanyDatabase().schema();
  RecordTypeDef loc;
  loc.name = "LOCATION";
  loc.fields.push_back({.name = "LOC-CODE", .type = FieldType::kString});
  ASSERT_TRUE(schema.AddRecordType(loc).ok());
  Program p = *ParseProgram(R"(
PROGRAM P.
  FOR EACH L IN FIND(LOCATION: SYSTEM, ALL-DIV, DIV,
      JOIN LOCATION THROUGH (LOC-CODE, DIV-LOC)) DO
    GET LOC-CODE OF L INTO C.
    DISPLAY C.
  END-FOR.
END PROGRAM.)");
  EXPECT_FALSE(HasKind(AdviseProgram(schema, p),
                       "join-duplicates-association"));
}

TEST(AdvisorTest, FilterAfterRetrievalFlagged) {
  Database db = MakeCompanyDatabase();
  Program p = *ParseProgram(R"(
PROGRAM P.
  FOR EACH E IN FIND(EMP: SYSTEM, ALL-DIV, DIV, DIV-EMP, EMP) DO
    GET AGE OF E INTO A.
    IF A > 30 THEN
      GET EMP-NAME OF E INTO N.
      DISPLAY N.
    END-IF.
  END-FOR.
END PROGRAM.)");
  std::vector<Advice> advice = AdviseProgram(db.schema(), p);
  ASSERT_TRUE(HasKind(advice, "filter-after-retrieval"));
  bool mentions = false;
  for (const Advice& a : advice) {
    if (a.detail.find("AGE > 30") != std::string::npos) mentions = true;
  }
  EXPECT_TRUE(mentions);
}

TEST(AdvisorTest, FilterOnHostInputNotFlagged) {
  // A test against terminal input is not a data qualification.
  Database db = MakeCompanyDatabase();
  Program p = *ParseProgram(R"(
PROGRAM P.
  ACCEPT LIMIT.
  FOR EACH E IN FIND(EMP: SYSTEM, ALL-DIV, DIV, DIV-EMP, EMP) DO
    IF LIMIT = 'Y' THEN
      DISPLAY 'X'.
    END-IF.
  END-FOR.
END PROGRAM.)");
  EXPECT_FALSE(HasKind(AdviseProgram(db.schema(), p),
                       "filter-after-retrieval"));
}

TEST(AdvisorTest, ProcessFirstSuspicionFromNavigationalShape) {
  Database db = MakeCompanyDatabase();
  Program p = *ParseProgram(R"(
PROGRAM P.
  FIND ANY DIV (DIV-LOC = 'EAST').
  FIND FIRST EMP WITHIN DIV-EMP.
  WHILE DB-STATUS = '0000' DO
    GET EMP-NAME INTO N.
    DISPLAY N.
    FIND NEXT EMP WITHIN DIV-EMP.
  END-WHILE.
END PROGRAM.)");
  EXPECT_TRUE(HasKind(AdviseProgram(db.schema(), p),
                      "process-first-suspicion"));
}

TEST(AdvisorTest, AdviceOnLiftedFormCoversNavigationalFilters) {
  // The filter advice applies to navigational programs too, through the
  // lifted form.
  Database db = MakeCompanyDatabase();
  Program p = *ParseProgram(R"(
PROGRAM P.
  FIND ANY DIV (DIV-NAME = 'MACHINERY').
  FIND FIRST EMP WITHIN DIV-EMP.
  WHILE DB-STATUS = '0000' DO
    GET AGE INTO A.
    IF A > 40 THEN
      DISPLAY 'SENIOR'.
    END-IF.
    FIND NEXT EMP WITHIN DIV-EMP.
  END-WHILE.
END PROGRAM.)");
  EXPECT_TRUE(HasKind(AdviseProgram(db.schema(), p),
                      "filter-after-retrieval"));
}

}  // namespace
}  // namespace dbpc
