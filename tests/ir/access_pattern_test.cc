#include "ir/access_pattern.h"

#include <gtest/gtest.h>

#include "lang/parser.h"
#include "schema/ddl_parser.h"
#include "testing/fixtures.h"

namespace dbpc {
namespace {

/// The paper's section 4.1 example schema: EMP, DEPT, and the association
/// EMP-DEPT represented as an intermediate record type owned by both ends'
/// counterpart (here: DEPT owns EMP-DEPT; EMP-DEPT carries the data).
std::string SuExampleDdl() {
  return R"(
SCHEMA NAME IS SU
RECORD SECTION.
  RECORD NAME IS DEPT.
  FIELDS ARE.
    D# PIC X(4).
    DNAME PIC X(20).
    MGR PIC X(20).
  END RECORD.
  RECORD NAME IS EMP-DEPT.
  FIELDS ARE.
    E# PIC X(4).
    YEAR-OF-SERVICE PIC 9(2).
  END RECORD.
  RECORD NAME IS EMP.
  FIELDS ARE.
    ENAME PIC X(20).
    E# VIRTUAL VIA ASSOC-EMP USING E#.
  END RECORD.
END RECORD SECTION.
SET SECTION.
  SET NAME IS ALL-DEPT.
  OWNER IS SYSTEM.
  MEMBER IS DEPT.
  SET KEYS ARE (D#).
  END SET.
  SET NAME IS DEPT-ASSOC.
  OWNER IS DEPT.
  MEMBER IS EMP-DEPT.
  SET KEYS ARE (E#).
  END SET.
  SET NAME IS ASSOC-EMP.
  OWNER IS EMP-DEPT.
  MEMBER IS EMP.
  SET KEYS ARE (ENAME).
  END SET.
END SET SECTION.
END SCHEMA.
)";
}

TEST(AccessPatternTest, PaperWorkedQuery) {
  // "Find the names of employees who work for Manager Smith for more than
  // ten years" — the paper's sequence:
  //   ACCESS DEPT via DEPT
  //   ACCESS EMP-DEPT via DEPT
  //   ACCESS EMP via EMP-DEPT
  //   RETRIEVE
  Schema schema = *ParseDdl(SuExampleDdl());
  Retrieval r = *ParseRetrieval(
      "FIND(EMP: SYSTEM, ALL-DEPT, DEPT(MGR = 'SMITH'), DEPT-ASSOC, "
      "EMP-DEPT(YEAR-OF-SERVICE > 10), ASSOC-EMP, EMP)");
  Result<AccessSequence> seq =
      DeriveAccessSequence(schema, r, TerminalOp::kRetrieve);
  ASSERT_TRUE(seq.ok()) << seq.status();
  EXPECT_EQ(seq->ToString(),
            "ACCESS DEPT via DEPT (MGR = 'SMITH')\n"
            "ACCESS DEPT-ASSOC via DEPT\n"
            "ACCESS EMP-DEPT via DEPT-ASSOC (YEAR-OF-SERVICE > 10)\n"
            "ACCESS ASSOC-EMP via EMP-DEPT\n"
            "ACCESS EMP via ASSOC-EMP\n"
            "RETRIEVE\n");
}

TEST(AccessPatternTest, DirectAccessAbsorbsSystemSet) {
  Schema schema = testing::MakeCompanyDatabase().schema();
  Retrieval r = *ParseRetrieval(
      "FIND(DIV: SYSTEM, ALL-DIV, DIV(DIV-LOC = 'EAST'))");
  AccessSequence seq =
      *DeriveAccessSequence(schema, r, TerminalOp::kRetrieve);
  ASSERT_EQ(seq.patterns.size(), 2u);
  EXPECT_EQ(seq.patterns[0].kind, AccessPatternKind::kDirect);
  EXPECT_EQ(seq.patterns[0].target, "DIV");
  EXPECT_EQ(seq.patterns[1].kind, AccessPatternKind::kTerminal);
}

TEST(AccessPatternTest, SortBecomesSortPattern) {
  Schema schema = testing::MakeCompanyDatabase().schema();
  Retrieval r = *ParseRetrieval(
      "SORT(FIND(EMP: SYSTEM, ALL-DIV, DIV, DIV-EMP, EMP)) ON (EMP-NAME)");
  AccessSequence seq =
      *DeriveAccessSequence(schema, r, TerminalOp::kRetrieve);
  ASSERT_GE(seq.patterns.size(), 2u);
  const AccessPattern& sort = seq.patterns[seq.patterns.size() - 2];
  EXPECT_EQ(sort.kind, AccessPatternKind::kSort);
  EXPECT_EQ(sort.sort_fields, (std::vector<std::string>{"EMP-NAME"}));
}

TEST(AccessPatternTest, AssociationsAndEntitiesUsed) {
  Schema schema = testing::MakeCompanyDatabase().schema();
  Retrieval r = *ParseRetrieval(
      "FIND(EMP: SYSTEM, ALL-DIV, DIV, DIV-EMP, EMP(AGE > 30))");
  AccessSequence seq =
      *DeriveAccessSequence(schema, r, TerminalOp::kRetrieve);
  EXPECT_EQ(seq.AssociationsUsed(), (std::vector<std::string>{"DIV-EMP"}));
  EXPECT_EQ(seq.EntitiesUsed(), (std::vector<std::string>{"DIV", "EMP"}));
}

TEST(AccessPatternTest, TerminalOpFromLoopBody) {
  Schema schema = testing::MakeCompanyDatabase().schema();
  Program p = *ParseProgram(R"(
PROGRAM P.
  FOR EACH E IN FIND(EMP: SYSTEM, ALL-DIV, DIV, DIV-EMP, EMP) DO
    MODIFY E SET (AGE = 1).
  END-FOR.
  FOR EACH E IN FIND(EMP: SYSTEM, ALL-DIV, DIV, DIV-EMP, EMP) DO
    DELETE E.
  END-FOR.
END PROGRAM.)");
  std::vector<AccessSequence> seqs = *DeriveProgramSequences(schema, p);
  ASSERT_EQ(seqs.size(), 2u);
  EXPECT_EQ(seqs[0].patterns.back().terminal, TerminalOp::kModify);
  EXPECT_EQ(seqs[1].patterns.back().terminal, TerminalOp::kDelete);
}

TEST(AccessPatternTest, StoreSequenceFromOwnerSelection) {
  Schema schema = testing::MakeCompanyDatabase().schema();
  Program p = *ParseProgram(R"(
PROGRAM P.
  STORE EMP (EMP-NAME = 'X') IN DIV-EMP WHERE (DIV-NAME = 'MACHINERY').
END PROGRAM.)");
  std::vector<AccessSequence> seqs = *DeriveProgramSequences(schema, p);
  ASSERT_EQ(seqs.size(), 1u);
  EXPECT_EQ(seqs[0].ToString(),
            "ACCESS DIV via DIV (DIV-NAME = 'MACHINERY')\n"
            "ACCESS DIV-EMP via DIV\n"
            "STORE\n");
}

TEST(AccessPatternTest, ValueJoinRendering) {
  AccessPattern join;
  join.kind = AccessPatternKind::kValueJoin;
  join.target = "A";
  join.via = "B";
  join.target_field = "AI";
  join.via_field = "BJ";
  EXPECT_EQ(join.ToString(), "ACCESS A via B through (AI, BJ)");
}

TEST(AccessPatternTest, NestedRetrievalsBothDerived) {
  Schema schema = testing::MakeCompanyDatabase().schema();
  Program p = *ParseProgram(R"(
PROGRAM P.
  FOR EACH D IN FIND(DIV: SYSTEM, ALL-DIV, DIV) DO
    FOR EACH E IN FIND(EMP: D, DIV-EMP, EMP) DO
      GET EMP-NAME OF E INTO N.
      DISPLAY N.
    END-FOR.
  END-FOR.
END PROGRAM.)");
  std::vector<AccessSequence> seqs = *DeriveProgramSequences(schema, p);
  EXPECT_EQ(seqs.size(), 2u);
}

}  // namespace
}  // namespace dbpc
