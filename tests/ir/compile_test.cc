#include "ir/compile.h"

#include <gtest/gtest.h>

#include "engine/find_query.h"
#include "testing/fixtures.h"

namespace dbpc {
namespace {

using testing::MakeCompanyDatabase;
using testing::MakeSchoolDatabase;

/// Derive-then-compile must reproduce a query with identical results.
void ExpectRoundTrip(const Database& db, const std::string& text) {
  Retrieval original = std::move(ParseRetrieval(text)).value();
  Retrieval resolved = original;
  ASSERT_TRUE(ResolveFindQuery(db.schema(), &resolved.query).ok());
  AccessSequence seq =
      *DeriveAccessSequence(db.schema(), original, TerminalOp::kRetrieve);
  Result<Retrieval> compiled = CompileAccessSequence(db.schema(), seq);
  ASSERT_TRUE(compiled.ok()) << compiled.status() << "\n" << seq.ToString();
  Result<std::vector<RecordId>> a = EvaluateRetrieval(
      db, resolved, EmptyHostEnv(), EmptyCollectionEnv());
  Result<std::vector<RecordId>> b = EvaluateRetrieval(
      db, *compiled, EmptyHostEnv(), EmptyCollectionEnv());
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(*a, *b) << "original: " << text
                    << "\ncompiled: " << compiled->ToString();
}

TEST(CompileSequenceTest, PaperExampleRoundTrips) {
  Database db = MakeCompanyDatabase();
  ExpectRoundTrip(db,
                  "FIND(EMP: SYSTEM, ALL-DIV, DIV, DIV-EMP, EMP(AGE > 30))");
}

TEST(CompileSequenceTest, QualifiedOwnerRoundTrips) {
  Database db = MakeCompanyDatabase();
  ExpectRoundTrip(db,
                  "FIND(EMP: SYSTEM, ALL-DIV, DIV(DIV-NAME = 'MACHINERY'), "
                  "DIV-EMP, EMP(DEPT-NAME = 'SALES'))");
}

TEST(CompileSequenceTest, SortRoundTrips) {
  Database db = MakeCompanyDatabase();
  ExpectRoundTrip(
      db, "SORT(FIND(EMP: SYSTEM, ALL-DIV, DIV, DIV-EMP, EMP)) ON (AGE)");
}

TEST(CompileSequenceTest, MultiParentSchoolRoundTrips) {
  Database db = MakeSchoolDatabase();
  ExpectRoundTrip(db,
                  "FIND(OFFERING: SYSTEM, ALL-SEM, SEMESTER(YEAR = 1979), "
                  "SEM-OFF, OFFERING)");
}

TEST(CompileSequenceTest, HandWrittenSequenceCompiles) {
  // The paper's section 4.1 presentation: a sequence written directly in
  // the calculus, compiled to a runnable query.
  Database db = MakeCompanyDatabase();
  AccessSequence seq;
  AccessPattern direct;
  direct.kind = AccessPatternKind::kDirect;
  direct.target = "DIV";
  direct.condition = Predicate::Compare(
      "DIV-LOC", CompareOp::kEq, Operand::Literal(Value::String("EAST")));
  seq.patterns.push_back(direct);
  AccessPattern assoc;
  assoc.kind = AccessPatternKind::kAssociationByEntity;
  assoc.target = "DIV-EMP";
  assoc.via = "DIV";
  seq.patterns.push_back(assoc);
  AccessPattern entity;
  entity.kind = AccessPatternKind::kEntityByAssociation;
  entity.target = "EMP";
  entity.via = "DIV-EMP";
  entity.condition = Predicate::Compare("AGE", CompareOp::kGe,
                                        Operand::Literal(Value::Int(30)));
  seq.patterns.push_back(entity);
  AccessPattern terminal;
  terminal.kind = AccessPatternKind::kTerminal;
  terminal.terminal = TerminalOp::kRetrieve;
  seq.patterns.push_back(terminal);

  Result<Retrieval> compiled = CompileAccessSequence(db.schema(), seq);
  ASSERT_TRUE(compiled.ok()) << compiled.status();
  std::vector<RecordId> ids = *EvaluateRetrieval(
      db, *compiled, EmptyHostEnv(), EmptyCollectionEnv());
  ASSERT_EQ(ids.size(), 2u);  // ADAMS 34, CLARK 45 (MACHINERY is EAST)
}

TEST(CompileSequenceTest, ValueJoinCompiles) {
  Schema schema = MakeCompanyDatabase().schema();
  RecordTypeDef loc;
  loc.name = "LOCATION";
  loc.fields.push_back({.name = "LOC-CODE", .type = FieldType::kString});
  ASSERT_TRUE(schema.AddRecordType(loc).ok());
  Retrieval original = std::move(ParseRetrieval(
      "FIND(LOCATION: SYSTEM, ALL-DIV, DIV, "
      "JOIN LOCATION THROUGH (LOC-CODE, DIV-LOC))")).value();
  AccessSequence seq =
      *DeriveAccessSequence(schema, original, TerminalOp::kRetrieve);
  Result<Retrieval> compiled = CompileAccessSequence(schema, seq);
  ASSERT_TRUE(compiled.ok()) << compiled.status();
  EXPECT_EQ(compiled->query.ToString(),
            "FIND(LOCATION: SYSTEM, ALL-DIV, DIV, "
            "JOIN LOCATION THROUGH (LOC-CODE, DIV-LOC))");
}

TEST(CompileSequenceTest, UpdateTerminalsUnsupported) {
  Database db = MakeCompanyDatabase();
  AccessSequence seq;
  AccessPattern direct;
  direct.kind = AccessPatternKind::kDirect;
  direct.target = "DIV";
  seq.patterns.push_back(direct);
  AccessPattern terminal;
  terminal.kind = AccessPatternKind::kTerminal;
  terminal.terminal = TerminalOp::kDelete;
  seq.patterns.push_back(terminal);
  Result<Retrieval> compiled = CompileAccessSequence(db.schema(), seq);
  ASSERT_FALSE(compiled.ok());
  EXPECT_EQ(compiled.status().code(), StatusCode::kUnsupported);
}

TEST(CompileSequenceTest, MalformedSequencesRejected) {
  Database db = MakeCompanyDatabase();
  // No terminal.
  AccessSequence no_terminal;
  AccessPattern direct;
  direct.kind = AccessPatternKind::kDirect;
  direct.target = "DIV";
  no_terminal.patterns.push_back(direct);
  EXPECT_FALSE(CompileAccessSequence(db.schema(), no_terminal).ok());
  // Entity access without its association.
  AccessSequence dangling;
  AccessPattern entity;
  entity.kind = AccessPatternKind::kEntityByAssociation;
  entity.target = "EMP";
  entity.via = "DIV-EMP";
  dangling.patterns.push_back(entity);
  EXPECT_FALSE(CompileAccessSequence(db.schema(), dangling).ok());
  // Empty.
  EXPECT_FALSE(CompileAccessSequence(db.schema(), AccessSequence{}).ok());
}

TEST(CompileSequenceTest, EntityWithoutSystemSetUnsupported) {
  // EMP has no system-owned set: a sequence opening with ACCESS EMP via EMP
  // cannot be rooted.
  Database db = MakeCompanyDatabase();
  AccessSequence seq;
  AccessPattern direct;
  direct.kind = AccessPatternKind::kDirect;
  direct.target = "EMP";
  seq.patterns.push_back(direct);
  AccessPattern terminal;
  terminal.kind = AccessPatternKind::kTerminal;
  terminal.terminal = TerminalOp::kRetrieve;
  seq.patterns.push_back(terminal);
  Result<Retrieval> compiled = CompileAccessSequence(db.schema(), seq);
  ASSERT_FALSE(compiled.ok());
  EXPECT_EQ(compiled.status().code(), StatusCode::kUnsupported);
}

}  // namespace
}  // namespace dbpc
