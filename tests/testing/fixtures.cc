#include "testing/fixtures.h"

#include <cstdio>
#include <cstdlib>

#include "schema/ddl_parser.h"

namespace dbpc::testing {

std::string CompanyDdl() {
  return R"(
SCHEMA NAME IS COMPANY
RECORD SECTION.
  RECORD NAME IS DIV.
  FIELDS ARE.
    DIV-NAME PIC X(20).
    DIV-LOC PIC X(10).
  END RECORD.
  RECORD NAME IS EMP.
  FIELDS ARE.
    EMP-NAME PIC X(25).
    DEPT-NAME PIC X(5).
    AGE PIC 9(2).
    DIV-NAME VIRTUAL VIA DIV-EMP USING DIV-NAME.
  END RECORD.
END RECORD SECTION.
SET SECTION.
  SET NAME IS ALL-DIV.
  OWNER IS SYSTEM.
  MEMBER IS DIV.
  SET KEYS ARE (DIV-NAME).
  END SET.
  SET NAME IS DIV-EMP.
  OWNER IS DIV.
  MEMBER IS EMP.
  SET KEYS ARE (EMP-NAME).
  END SET.
END SET SECTION.
END SCHEMA.
)";
}

std::string CompanyRevisedDdl() {
  return R"(
SCHEMA NAME IS COMPANY
RECORD SECTION.
  RECORD NAME IS DIV.
  FIELDS ARE.
    DIV-NAME PIC X(20).
    DIV-LOC PIC X(10).
  END RECORD.
  RECORD NAME IS DEPT.
  FIELDS ARE.
    DEPT-NAME PIC X(5).
    DIV-NAME VIRTUAL VIA DIV-DEPT USING DIV-NAME.
  END RECORD.
  RECORD NAME IS EMP.
  FIELDS ARE.
    EMP-NAME PIC X(25).
    AGE PIC 9(2).
    DEPT-NAME VIRTUAL VIA DEPT-EMP USING DEPT-NAME.
    DIV-NAME VIRTUAL VIA DEPT-EMP USING DIV-NAME.
  END RECORD.
END RECORD SECTION.
SET SECTION.
  SET NAME IS ALL-DIV.
  OWNER IS SYSTEM.
  MEMBER IS DIV.
  SET KEYS ARE (DIV-NAME).
  END SET.
  SET NAME IS DIV-DEPT.
  OWNER IS DIV.
  MEMBER IS DEPT.
  SET KEYS ARE (DEPT-NAME).
  END SET.
  SET NAME IS DEPT-EMP.
  OWNER IS DEPT.
  MEMBER IS EMP.
  SET KEYS ARE (EMP-NAME).
  END SET.
END SET SECTION.
END SCHEMA.
)";
}

std::string SchoolDdl() {
  return R"(
SCHEMA NAME IS SCHOOL
RECORD SECTION.
  RECORD NAME IS COURSE.
  FIELDS ARE.
    CNO PIC X(6).
    CNAME PIC X(20).
  END RECORD.
  RECORD NAME IS SEMESTER.
  FIELDS ARE.
    S PIC X(4).
    YEAR PIC 9(4).
  END RECORD.
  RECORD NAME IS OFFERING.
  FIELDS ARE.
    SECTION-NO PIC 9(2).
    YEAR PIC 9(4).
    CNO VIRTUAL VIA CRS-OFF USING CNO.
    S VIRTUAL VIA SEM-OFF USING S.
  END RECORD.
END RECORD SECTION.
SET SECTION.
  SET NAME IS ALL-COURSE.
  OWNER IS SYSTEM.
  MEMBER IS COURSE.
  SET KEYS ARE (CNO).
  END SET.
  SET NAME IS ALL-SEM.
  OWNER IS SYSTEM.
  MEMBER IS SEMESTER.
  SET KEYS ARE (S).
  END SET.
  SET NAME IS CRS-OFF.
  OWNER IS COURSE.
  MEMBER IS OFFERING.
  ORDER IS CHRONOLOGICAL.
  MEMBER IS CHARACTERIZING.
  END SET.
  SET NAME IS SEM-OFF.
  OWNER IS SEMESTER.
  MEMBER IS OFFERING.
  ORDER IS CHRONOLOGICAL.
  MEMBER IS CHARACTERIZING.
  END SET.
END SET SECTION.
CONSTRAINT SECTION.
  CONSTRAINT TWICE-A-YEAR IS CARDINALITY ON SET CRS-OFF LIMIT 2 PER YEAR.
  CONSTRAINT UNIQ-CNO IS UNIQUE ON COURSE (CNO).
  CONSTRAINT UNIQ-S IS UNIQUE ON SEMESTER (S).
END CONSTRAINT SECTION.
END SCHEMA.
)";
}

namespace {

[[noreturn]] void Die(const std::string& context, const Status& status) {
  std::fprintf(stderr, "fixture failure (%s): %s\n", context.c_str(),
               status.ToString().c_str());
  std::abort();
}

RecordId MustStore(Database* db, StoreRequest request) {
  Result<RecordId> id = db->StoreRecord(request);
  if (!id.ok()) Die("store " + request.type, id.status());
  return *id;
}

}  // namespace

Database MakeDatabase(const std::string& ddl) {
  Result<Schema> schema = ParseDdl(ddl);
  if (!schema.ok()) Die("parse ddl", schema.status());
  Result<Database> db = Database::Create(std::move(schema).value());
  if (!db.ok()) Die("create database", db.status());
  return std::move(db).value();
}

Database MakeCompanyDatabase() {
  Database db = MakeDatabase(CompanyDdl());
  RecordId machinery = MustStore(
      &db, {"DIV",
            {{"DIV-NAME", Value::String("MACHINERY")},
             {"DIV-LOC", Value::String("EAST")}},
            {}});
  RecordId textiles = MustStore(
      &db, {"DIV",
            {{"DIV-NAME", Value::String("TEXTILES")},
             {"DIV-LOC", Value::String("SOUTH")}},
            {}});
  auto emp = [&](const char* name, const char* dept, int64_t age,
                 RecordId div) {
    MustStore(&db, {"EMP",
                    {{"EMP-NAME", Value::String(name)},
                     {"DEPT-NAME", Value::String(dept)},
                     {"AGE", Value::Int(age)}},
                    {{"DIV-EMP", div}}});
  };
  emp("ADAMS", "SALES", 34, machinery);
  emp("BAKER", "SALES", 28, machinery);
  emp("CLARK", "PLANNING", 45, machinery);
  emp("DAVIS", "SALES", 31, textiles);
  return db;
}

void FillCompany(Database* db, int divisions, int emps_per_div) {
  static const char* kDepts[] = {"SALES", "PLANG", "ADMIN"};
  for (int d = 0; d < divisions; ++d) {
    char div_name[32];
    std::snprintf(div_name, sizeof(div_name), "DIV-%04d", d);
    RecordId div = MustStore(
        db, {"DIV",
             {{"DIV-NAME", Value::String(div_name)},
              {"DIV-LOC", Value::String(d % 2 == 0 ? "EAST" : "WEST")}},
             {}});
    for (int e = 0; e < emps_per_div; ++e) {
      char emp_name[32];
      std::snprintf(emp_name, sizeof(emp_name), "EMP-%04d-%05d", d, e);
      MustStore(db, {"EMP",
                     {{"EMP-NAME", Value::String(emp_name)},
                      {"DEPT-NAME", Value::String(kDepts[e % 3])},
                      {"AGE", Value::Int(20 + (e * 7 + d) % 45)}},
                     {{"DIV-EMP", div}}});
    }
  }
}

Database MakeSchoolDatabase() {
  Database db = MakeDatabase(SchoolDdl());
  RecordId cs101 = MustStore(&db, {"COURSE",
                                   {{"CNO", Value::String("CS101")},
                                    {"CNAME", Value::String("INTRO")}},
                                   {}});
  RecordId cs202 = MustStore(&db, {"COURSE",
                                   {{"CNO", Value::String("CS202")},
                                    {"CNAME", Value::String("DATABASES")}},
                                   {}});
  RecordId fall78 = MustStore(&db, {"SEMESTER",
                                    {{"S", Value::String("F78")},
                                     {"YEAR", Value::Int(1978)}},
                                    {}});
  RecordId spring79 = MustStore(&db, {"SEMESTER",
                                      {{"S", Value::String("S79")},
                                       {"YEAR", Value::Int(1979)}},
                                      {}});
  auto offer = [&](RecordId course, RecordId sem, int64_t section,
                   int64_t year) {
    MustStore(&db, {"OFFERING",
                    {{"SECTION-NO", Value::Int(section)},
                     {"YEAR", Value::Int(year)}},
                    {{"CRS-OFF", course}, {"SEM-OFF", sem}}});
  };
  offer(cs101, fall78, 1, 1978);
  offer(cs101, spring79, 1, 1979);
  offer(cs202, spring79, 1, 1979);
  return db;
}

}  // namespace dbpc::testing
