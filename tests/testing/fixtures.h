#ifndef DBPC_TESTS_TESTING_FIXTURES_H_
#define DBPC_TESTS_TESTING_FIXTURES_H_

#include <string>

#include "engine/database.h"
#include "schema/schema.h"

namespace dbpc::testing {

/// The Figure 4.3 company schema (DIV owns EMP through DIV-EMP; EMP carries
/// a VIRTUAL DIV-NAME) verbatim from the paper, in the Maryland DDL.
std::string CompanyDdl();

/// The Figure 4.4 revision: DIV -> DIV-DEPT -> DEPT -> DEPT-EMP -> EMP.
std::string CompanyRevisedDdl();

/// The Figure 3.1 school database as an owner-coupled-set schema:
/// COURSE and SEMESTER own COURSE-OFFERING (AUTOMATIC, MANDATORY),
/// plus the "course offered at most twice per year" cardinality rule.
std::string SchoolDdl();

/// Parses `ddl` and creates an empty database; aborts the test on failure.
Database MakeDatabase(const std::string& ddl);

/// Company database with divisions MACHINERY (SALES dept employees ADAMS,
/// BAKER; PLANNING dept employee CLARK) and TEXTILES (SALES dept employee
/// DAVIS), matching the shapes used by the paper's FIND examples.
Database MakeCompanyDatabase();

/// Populates an (empty) company database with `divisions` divisions and
/// `emps_per_div` employees each, deterministic contents (benchmarks).
void FillCompany(Database* db, int divisions, int emps_per_div);

/// School database with a handful of courses, semesters and offerings.
Database MakeSchoolDatabase();

}  // namespace dbpc::testing

#endif  // DBPC_TESTS_TESTING_FIXTURES_H_
