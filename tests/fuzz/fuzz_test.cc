#include "fuzz/fuzz.h"

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"

namespace dbpc {
namespace {

std::string ReadFile(const std::filesystem::path& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(FuzzGeneratorTest, SameSeedSameCase) {
  FuzzCase a = GenerateFuzzCase(123456789);
  FuzzCase b = GenerateFuzzCase(123456789);
  EXPECT_EQ(a.ddl, b.ddl);
  EXPECT_EQ(a.plan, b.plan);
  EXPECT_EQ(a.data, b.data);
  EXPECT_EQ(a.program, b.program);
  EXPECT_EQ(a.terminal_input, b.terminal_input);
}

TEST(FuzzGeneratorTest, DifferentSeedsDiverge) {
  // Not every pair of seeds must differ, but across a handful at least one
  // artifact has to change — a constant generator would fuzz nothing.
  FuzzCase base = GenerateFuzzCase(1);
  bool any_different = false;
  for (uint64_t seed = 2; seed <= 6; ++seed) {
    FuzzCase other = GenerateFuzzCase(seed);
    if (other.ddl != base.ddl || other.plan != base.plan ||
        other.data != base.data || other.program != base.program) {
      any_different = true;
    }
  }
  EXPECT_TRUE(any_different);
}

TEST(FuzzGeneratorTest, GeneratedArtifactsSetUpCleanly) {
  // Every generated case must come up through the real parsers and
  // loaders; a setup error is a generator bug, not a finding.
  for (uint64_t seed = 10; seed < 20; ++seed) {
    FuzzCase c = GenerateFuzzCase(seed);
    CaseRun run = RunFuzzCase(c, AllFuzzStrategies());
    EXPECT_TRUE(run.setup.ok()) << "seed " << seed << ": " << run.setup;
  }
}

TEST(FuzzReproTest, RoundTripsThroughText) {
  FuzzRepro repro;
  repro.note = "round-trip check";
  repro.expect = ReproExpectation::kEquivalent;
  repro.c = GenerateFuzzCase(42);
  Result<FuzzRepro> back = ParseRepro(ReproToText(repro));
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(back->expect, repro.expect);
  EXPECT_EQ(back->c.ddl, repro.c.ddl);
  EXPECT_EQ(back->c.plan, repro.c.plan);
  EXPECT_EQ(back->c.data, repro.c.data);
  EXPECT_EQ(back->c.program, repro.c.program);
  EXPECT_EQ(back->c.terminal_input, repro.c.terminal_input);
}

TEST(FuzzReproTest, RejectsUnknownSection) {
  Result<FuzzRepro> r = ParseRepro("== EXPECT ==\nEQUIVALENT\n== BOGUS ==\n");
  EXPECT_FALSE(r.ok());
}

TEST(FuzzReproTest, TraceSectionRoundTrips) {
  FuzzRepro repro;
  repro.note = "trace round-trip";
  repro.c = GenerateFuzzCase(42);
  repro.span_tree =
      "convert FUZZ\n"
      "  program_analyzer classification=automatic\n"
      "  program_converter\n";
  std::string text = ReproToText(repro);
  EXPECT_NE(text.find("== TRACE =="), std::string::npos) << text;
  Result<FuzzRepro> back = ParseRepro(text);
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(back->span_tree, repro.span_tree);
  EXPECT_EQ(back->c.program, repro.c.program);
}

TEST(FuzzReproTest, EmptyTraceSectionIsOmitted) {
  FuzzRepro repro;
  repro.c = GenerateFuzzCase(42);
  EXPECT_EQ(ReproToText(repro).find("== TRACE =="), std::string::npos);
}

TEST(FuzzCaseTest, TracingNeverChangesStrategyOutcomes) {
  for (uint64_t seed : {3u, 17u, 99u}) {
    FuzzCase c = GenerateFuzzCase(seed);
    CaseRun plain = RunFuzzCase(c, AllFuzzStrategies());
    SpanCollector spans;
    CaseRun traced = RunFuzzCase(c, AllFuzzStrategies(), &spans);
    ASSERT_EQ(plain.setup.ok(), traced.setup.ok()) << "seed " << seed;
    ASSERT_EQ(plain.strategies.size(), traced.strategies.size());
    for (size_t i = 0; i < plain.strategies.size(); ++i) {
      EXPECT_EQ(plain.strategies[i].outcome, traced.strategies[i].outcome)
          << "seed " << seed << " strategy "
          << FuzzStrategyName(plain.strategies[i].strategy);
      EXPECT_EQ(plain.strategies[i].source_trace,
                traced.strategies[i].source_trace);
      EXPECT_EQ(plain.strategies[i].target_trace,
                traced.strategies[i].target_trace);
    }
    if (plain.setup.ok()) {
      // At minimum the source run and each strategy rooted a tree.
      EXPECT_GE(spans.RootCount(), 1u + plain.strategies.size())
          << spans.ToText(false);
    }
  }
}

TEST(FuzzLoopTest, SmallRunIsClean) {
  FuzzOptions options;
  options.seed = 1;
  options.iterations = 25;
  FuzzReport report = RunFuzz(options);
  EXPECT_EQ(report.iterations, 25);
  EXPECT_TRUE(report.Clean()) << report.ToText();
  // The sweep must actually compare something, not skip everything.
  EXPECT_GT(report.equivalent, 0);
}

// Every checked-in regression repro must replay green: these cases each
// exposed a real conversion bug (silent output reorders, source-schema
// sort keys surviving into target programs, unhandled lexer overflow)
// that is now fixed.
TEST(FuzzRegressionCorpusTest, CheckedInReprosReplay) {
  std::filesystem::path dir(DBPC_FUZZ_CORPUS_DIR);
  ASSERT_TRUE(std::filesystem::is_directory(dir)) << dir;
  int replayed = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() != ".repro") continue;
    Result<FuzzRepro> repro = ParseRepro(ReadFile(entry.path()));
    ASSERT_TRUE(repro.ok()) << entry.path() << ": " << repro.status();
    Status replay = ReplayRepro(*repro, AllFuzzStrategies());
    EXPECT_TRUE(replay.ok()) << entry.path() << ": " << replay;
    ++replayed;
  }
  EXPECT_GE(replayed, 1) << "no .repro files found in " << dir;
}

}  // namespace
}  // namespace dbpc
