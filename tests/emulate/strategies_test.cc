// Tests for the two 1979 conversion strategies re-implemented as baselines:
// DML emulation (Task 609) and bridge programs with differential files.

#include <gtest/gtest.h>

#include "bridge/bridge.h"
#include "emulate/emulator.h"
#include "equivalence/checker.h"
#include "lang/parser.h"
#include "restructure/transformation.h"
#include "testing/fixtures.h"

namespace dbpc {
namespace {

using testing::MakeCompanyDatabase;

std::vector<TransformationPtr> Figure44Plan() {
  IntroduceIntermediateParams p;
  p.set_name = "DIV-EMP";
  p.intermediate = "DEPT";
  p.upper_set = "DIV-DEPT";
  p.lower_set = "DEPT-EMP";
  p.group_field = "DEPT-NAME";
  std::vector<TransformationPtr> plan;
  plan.push_back(MakeIntroduceIntermediate(p));
  return plan;
}

std::vector<const Transformation*> Raw(
    const std::vector<TransformationPtr>& owned) {
  std::vector<const Transformation*> out;
  for (const TransformationPtr& t : owned) out.push_back(t.get());
  return out;
}

constexpr const char* kReport = R"(
PROGRAM RPT.
  FOR EACH E IN FIND(EMP: SYSTEM, ALL-DIV, DIV, DIV-EMP, EMP(AGE > 30)) DO
    GET EMP-NAME OF E INTO N.
    DISPLAY N.
  END-FOR.
END PROGRAM.)";

TEST(DmlEmulatorTest, PreservesSourceBehaviour) {
  Database source_db = MakeCompanyDatabase();
  std::vector<TransformationPtr> owned = Figure44Plan();
  Database target_db = *TranslateDatabase(source_db, Raw(owned));

  Program program = *ParseProgram(kReport);
  Result<Trace> source_trace = TraceOf(source_db, program, IoScript());
  ASSERT_TRUE(source_trace.ok());

  DmlEmulator emulator =
      *DmlEmulator::Create(source_db.schema(), Raw(owned));
  Database run_db = target_db;
  DmlEmulator::EmulationRun run =
      *emulator.Run(program, &run_db, IoScript());
  EXPECT_EQ(run.run.trace, *source_trace)
      << "emulated:\n"
      << run.run.trace.ToString() << "\nsource:\n"
      << source_trace->ToString();
  EXPECT_GT(run.mapping_statements, 0u);
}

TEST(DmlEmulatorTest, ReconstructsOrderPerRetrieval) {
  Database source_db = MakeCompanyDatabase();
  std::vector<TransformationPtr> owned = Figure44Plan();
  Database target_db = *TranslateDatabase(source_db, Raw(owned));
  // An order-insensitive program still pays per-call order reconstruction:
  // emulation cannot know which orders matter.
  Program program = *ParseProgram(R"(
PROGRAM CNT.
  LET C = 0.
  FOR EACH E IN FIND(EMP: SYSTEM, ALL-DIV, DIV, DIV-EMP, EMP) DO
    LET C = C + 1.
  END-FOR.
  DISPLAY C.
END PROGRAM.)");
  DmlEmulator emulator =
      *DmlEmulator::Create(source_db.schema(), Raw(owned));
  Database run_db = target_db;
  DmlEmulator::EmulationRun run =
      *emulator.Run(program, &run_db, IoScript());
  EXPECT_EQ(run.reconstruction_sorts, 1u);
}

TEST(DmlEmulatorTest, RefusesRuntimeVariablePrograms) {
  Database source_db = MakeCompanyDatabase();
  std::vector<TransformationPtr> owned = Figure44Plan();
  Database target_db = *TranslateDatabase(source_db, Raw(owned));
  Program program = *ParseProgram(R"(
PROGRAM P.
  ACCEPT V.
  CALL DML(V, EMP).
END PROGRAM.)");
  DmlEmulator emulator =
      *DmlEmulator::Create(source_db.schema(), Raw(owned));
  Database run_db = target_db;
  Result<DmlEmulator::EmulationRun> run =
      emulator.Run(program, &run_db, IoScript());
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kNotConvertible);
}

TEST(BridgeRunnerTest, ReadOnlyRunPreservesBehaviour) {
  Database source_db = MakeCompanyDatabase();
  std::vector<TransformationPtr> owned = Figure44Plan();
  Database target_db = *TranslateDatabase(source_db, Raw(owned));
  Program program = *ParseProgram(kReport);

  Result<Trace> source_trace = TraceOf(source_db, program, IoScript());
  ASSERT_TRUE(source_trace.ok());

  BridgeRunner bridge =
      std::move(BridgeRunner::Create(source_db.schema(), Raw(owned))).value();
  Database run_db = target_db;
  BridgeRunner::BridgeRun run =
      *bridge.Run(program, &run_db, IoScript(), {.differential = true});
  EXPECT_EQ(run.run.trace, *source_trace);
  EXPECT_GT(run.records_reconstructed, 0u);
  // Differential file: nothing changed, no retranslation.
  EXPECT_FALSE(run.retranslated);
}

TEST(BridgeRunnerTest, WithoutDifferentialAlwaysRetranslates) {
  Database source_db = MakeCompanyDatabase();
  std::vector<TransformationPtr> owned = Figure44Plan();
  Database target_db = *TranslateDatabase(source_db, Raw(owned));
  Program program = *ParseProgram(kReport);
  BridgeRunner bridge =
      std::move(BridgeRunner::Create(source_db.schema(), Raw(owned))).value();
  Database run_db = target_db;
  BridgeRunner::BridgeRun run =
      *bridge.Run(program, &run_db, IoScript(), {.differential = false});
  EXPECT_TRUE(run.retranslated);
  EXPECT_GT(run.records_retranslated, 0u);
}

TEST(BridgeRunnerTest, UpdatePropagatesToTarget) {
  Database source_db = MakeCompanyDatabase();
  std::vector<TransformationPtr> owned = Figure44Plan();
  Database target_db = *TranslateDatabase(source_db, Raw(owned));
  Program update = *ParseProgram(R"(
PROGRAM UPD.
  STORE EMP (EMP-NAME = 'EVANS', DEPT-NAME = 'SALES', AGE = 50)
    IN DIV-EMP WHERE (DIV-NAME = 'TEXTILES').
  DISPLAY 'DONE'.
END PROGRAM.)");
  BridgeRunner bridge =
      std::move(BridgeRunner::Create(source_db.schema(), Raw(owned))).value();
  BridgeRunner::BridgeRun run =
      *bridge.Run(update, &target_db, IoScript(), {.differential = true});
  EXPECT_TRUE(run.retranslated);
  // The new employee must exist in the restructured target, grouped under
  // the TEXTILES SALES department.
  Predicate evans = Predicate::Compare(
      "EMP-NAME", CompareOp::kEq, Operand::Literal(Value::String("EVANS")));
  std::vector<RecordId> found =
      *target_db.SelectWhere("EMP", evans, EmptyHostEnv());
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(target_db.GetField(found[0], "DEPT-NAME")->as_string(), "SALES");
  EXPECT_EQ(target_db.GetField(found[0], "DIV-NAME")->as_string(), "TEXTILES");
}

TEST(BridgeRunnerTest, LossyPlanRejectedAtCreation) {
  Database source_db = MakeCompanyDatabase();
  TransformationPtr lossy = MakeRemoveField("EMP", "DEPT-NAME");
  Result<BridgeRunner> bridge =
      BridgeRunner::Create(source_db.schema(), {lossy.get()});
  ASSERT_FALSE(bridge.ok());
  EXPECT_EQ(bridge.status().code(), StatusCode::kUnsupported);
}

TEST(BridgeRunnerTest, MultiStepPlanReconstructs) {
  Database source_db = MakeCompanyDatabase();
  std::vector<TransformationPtr> owned;
  owned.push_back(MakeRenameRecord("EMP", "WORKER"));
  owned.push_back(MakeRenameField("WORKER", "AGE", "YEARS"));
  Database target_db = *TranslateDatabase(source_db, Raw(owned));
  Program program = *ParseProgram(kReport);
  Result<Trace> source_trace = TraceOf(source_db, program, IoScript());
  BridgeRunner bridge =
      std::move(BridgeRunner::Create(source_db.schema(), Raw(owned))).value();
  Database run_db = target_db;
  BridgeRunner::BridgeRun run =
      *bridge.Run(program, &run_db, IoScript(), {.differential = true});
  EXPECT_EQ(run.run.trace, *source_trace);
}

}  // namespace
}  // namespace dbpc
