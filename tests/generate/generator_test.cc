#include "generate/generator.h"

#include <gtest/gtest.h>

#include "analyze/analyzer.h"
#include "equivalence/checker.h"
#include "lang/parser.h"
#include "relational/relational.h"
#include "testing/fixtures.h"

namespace dbpc {
namespace {

using testing::MakeCompanyDatabase;

TEST(LoweringTest, SimpleLoopLowersToNavTemplate) {
  Database db = MakeCompanyDatabase();
  Program p = *ParseProgram(R"(
PROGRAM P.
  FOR EACH E IN FIND(EMP: SYSTEM, ALL-DIV, DIV(DIV-NAME = 'MACHINERY'),
      DIV-EMP, EMP) DO
    GET EMP-NAME OF E INTO N.
    DISPLAY N.
  END-FOR.
END PROGRAM.)");
  LoweringResult lowered = *LowerToNavigational(db.schema(), p);
  EXPECT_EQ(lowered.loops_lowered, 1);
  ASSERT_EQ(lowered.program.body.size(), 3u);
  EXPECT_EQ(lowered.program.body[0].nav_find->mode, NavFind::Mode::kAny);
  EXPECT_EQ(lowered.program.body[1].nav_find->mode, NavFind::Mode::kFirst);
  EXPECT_EQ(lowered.program.body[2].kind, StmtKind::kWhile);
}

TEST(LoweringTest, LoweredProgramRunsEquivalently) {
  Database db = MakeCompanyDatabase();
  Program p = *ParseProgram(R"(
PROGRAM P.
  FOR EACH E IN FIND(EMP: SYSTEM, ALL-DIV, DIV(DIV-NAME = 'MACHINERY'),
      DIV-EMP, EMP(AGE > 30)) DO
    GET EMP-NAME OF E INTO N.
    DISPLAY N.
  END-FOR.
END PROGRAM.)");
  LoweringResult lowered = *LowerToNavigational(db.schema(), p);
  ASSERT_EQ(lowered.loops_lowered, 1);
  EquivalenceReport report =
      *CheckEquivalence(db, p, db, lowered.program, IoScript());
  EXPECT_TRUE(report.equivalent)
      << report.detail << "\n"
      << lowered.program.ToSource();
}

TEST(LoweringTest, LowerThenLiftRoundTrips) {
  // lift(lower(p)) must reproduce p's behaviour and its retrieval paths.
  Database db = MakeCompanyDatabase();
  Program p = *ParseProgram(R"(
PROGRAM P.
  FOR EACH E IN FIND(EMP: SYSTEM, ALL-DIV, DIV(DIV-NAME = 'TEXTILES'),
      DIV-EMP, EMP) DO
    GET EMP-NAME OF E INTO N.
    DISPLAY N.
  END-FOR.
END PROGRAM.)");
  LoweringResult lowered = *LowerToNavigational(db.schema(), p);
  ASSERT_EQ(lowered.loops_lowered, 1);
  ProgramAnalyzer analyzer(db.schema());
  Analysis relifted = *analyzer.Analyze(lowered.program);
  EXPECT_TRUE(relifted.fully_lifted);
  EXPECT_EQ(relifted.lifted.body[0].retrieval->query.ToString(),
            p.body[0].retrieval->query.ToString());
}

TEST(LoweringTest, NestedLoopsLower) {
  Database db = MakeCompanyDatabase();
  Program p = *ParseProgram(R"(
PROGRAM P.
  FOR EACH D IN FIND(DIV: SYSTEM, ALL-DIV, DIV) DO
    FOR EACH E IN FIND(EMP: D, DIV-EMP, EMP) DO
      GET EMP-NAME OF E INTO N.
      DISPLAY N.
    END-FOR.
  END-FOR.
END PROGRAM.)");
  LoweringResult lowered = *LowerToNavigational(db.schema(), p);
  EXPECT_EQ(lowered.loops_lowered, 2) << lowered.program.ToSource();
  EquivalenceReport report =
      *CheckEquivalence(db, p, db, lowered.program, IoScript());
  EXPECT_TRUE(report.equivalent) << report.detail;
}

TEST(LoweringTest, SortWrapperStaysHighLevel) {
  Database db = MakeCompanyDatabase();
  Program p = *ParseProgram(R"(
PROGRAM P.
  FOR EACH E IN SORT(FIND(EMP: SYSTEM, ALL-DIV, DIV, DIV-EMP, EMP)) ON (AGE) DO
    GET EMP-NAME OF E INTO N.
    DISPLAY N.
  END-FOR.
END PROGRAM.)");
  LoweringResult lowered = *LowerToNavigational(db.schema(), p);
  EXPECT_EQ(lowered.loops_lowered, 0);
  EXPECT_EQ(lowered.program, p);
}

TEST(LoweringTest, DeleteInLoopStaysHighLevel) {
  Database db = MakeCompanyDatabase();
  Program p = *ParseProgram(R"(
PROGRAM P.
  FOR EACH E IN FIND(EMP: SYSTEM, ALL-DIV, DIV(DIV-NAME = 'MACHINERY'),
      DIV-EMP, EMP) DO
    DELETE E.
  END-FOR.
END PROGRAM.)");
  LoweringResult lowered = *LowerToNavigational(db.schema(), p);
  EXPECT_EQ(lowered.loops_lowered, 0);
}

TEST(LoweringTest, AmbiguousOwnerStaysHighLevel) {
  // FIND ANY only processes one owner; a multi-owner path must not lower.
  Database db = MakeCompanyDatabase();
  Program p = *ParseProgram(R"(
PROGRAM P.
  FOR EACH E IN FIND(EMP: SYSTEM, ALL-DIV, DIV(DIV-LOC = 'EAST'),
      DIV-EMP, EMP) DO
    GET EMP-NAME OF E INTO N.
    DISPLAY N.
  END-FOR.
END PROGRAM.)");
  LoweringResult lowered = *LowerToNavigational(db.schema(), p);
  EXPECT_EQ(lowered.loops_lowered, 0);
}

TEST(SequelTest, PaperStyleNestedSelect) {
  Database db = MakeCompanyDatabase();
  Retrieval r = *ParseRetrieval(
      "FIND(EMP: SYSTEM, ALL-DIV, DIV(DIV-NAME = 'MACHINERY'), DIV-EMP, "
      "EMP(DEPT-NAME = 'SALES'))");
  Result<std::string> sql = GenerateSequel(db.schema(), r);
  ASSERT_TRUE(sql.ok()) << sql.status();
  EXPECT_EQ(*sql,
            "SELECT * FROM EMP\n"
            "WHERE DEPT-NAME = 'SALES'\n"
            "  AND DIV-NAME IN (\n"
            "    SELECT DIV-NAME FROM DIV\n"
            "    WHERE DIV-NAME = 'MACHINERY'\n"
            ")");
}

TEST(SequelTest, GeneratedSequelEvaluatesToSameRecords) {
  Database network = MakeCompanyDatabase();
  Database relational = *RelationalizeData(network);
  Retrieval r = *ParseRetrieval(
      "FIND(EMP: SYSTEM, ALL-DIV, DIV(DIV-NAME = 'MACHINERY'), DIV-EMP, "
      "EMP(DEPT-NAME = 'SALES'))");
  std::string sql = *GenerateSequel(network.schema(), r);
  SelectQuery q = std::move(ParseSelect(sql)).value();

  // Compare by EMP-NAME sets.
  Retrieval resolved = r;
  ASSERT_TRUE(ResolveFindQuery(network.schema(), &resolved.query).ok());
  std::vector<RecordId> net_ids = *EvaluateRetrieval(
      network, resolved, EmptyHostEnv(), EmptyCollectionEnv());
  std::vector<RecordId> rel_ids =
      *EvaluateSelectIds(relational, q, EmptyHostEnv());
  std::vector<std::string> net_names, rel_names;
  for (RecordId id : net_ids) {
    net_names.push_back(network.GetField(id, "EMP-NAME")->as_string());
  }
  for (RecordId id : rel_ids) {
    rel_names.push_back(relational.GetField(id, "EMP-NAME")->as_string());
  }
  std::sort(net_names.begin(), net_names.end());
  std::sort(rel_names.begin(), rel_names.end());
  EXPECT_EQ(net_names, rel_names);
}

TEST(SequelTest, SortBecomesOrderBy) {
  Database db = MakeCompanyDatabase();
  Retrieval r = *ParseRetrieval(
      "SORT(FIND(EMP: SYSTEM, ALL-DIV, DIV, DIV-EMP, EMP)) ON (AGE)");
  std::string sql = *GenerateSequel(db.schema(), r);
  EXPECT_NE(sql.find("ORDER BY AGE"), std::string::npos);
}

TEST(SequelTest, SetWithoutVirtualJoinColumnUnsupported) {
  // School: OFFERING joins through virtual CNO/S — works. But a schema
  // whose set exposes no virtual field cannot be expressed.
  Schema schema = MakeCompanyDatabase().schema();
  RecordTypeDef* emp = schema.FindRecordType("EMP");
  std::erase_if(emp->fields,
                [](const FieldDef& f) { return f.name == "DIV-NAME"; });
  ASSERT_TRUE(schema.Validate().ok());
  Retrieval r = *ParseRetrieval(
      "FIND(EMP: SYSTEM, ALL-DIV, DIV(DIV-NAME = 'X'), DIV-EMP, EMP)");
  Result<std::string> sql = GenerateSequel(schema, r);
  ASSERT_FALSE(sql.ok());
  EXPECT_EQ(sql.status().code(), StatusCode::kUnsupported);
}

}  // namespace
}  // namespace dbpc
