#include "engine/database.h"

#include <gtest/gtest.h>

#include "testing/fixtures.h"

namespace dbpc {
namespace {

using testing::MakeCompanyDatabase;
using testing::MakeDatabase;
using testing::MakeSchoolDatabase;

TEST(DatabaseTest, StoreAndReadBack) {
  Database db = MakeDatabase(testing::CompanyDdl());
  Result<RecordId> div = db.StoreRecord(
      {"DIV",
       {{"DIV-NAME", Value::String("M")}, {"DIV-LOC", Value::String("E")}},
       {}});
  ASSERT_TRUE(div.ok()) << div.status();
  Result<Value> name = db.GetField(*div, "DIV-NAME");
  ASSERT_TRUE(name.ok());
  EXPECT_EQ(name->as_string(), "M");
}

TEST(DatabaseTest, UnknownFieldRejected) {
  Database db = MakeDatabase(testing::CompanyDdl());
  Result<RecordId> r = db.StoreRecord(
      {"DIV", {{"NO-SUCH", Value::String("X")}}, {}});
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(DatabaseTest, StoringVirtualFieldRejected) {
  Database db = MakeCompanyDatabase();
  RecordId div = db.AllOfType("DIV")[0];
  Result<RecordId> r = db.StoreRecord(
      {"EMP",
       {{"EMP-NAME", Value::String("X")}, {"DIV-NAME", Value::String("M")}},
       {{"DIV-EMP", div}}});
  EXPECT_FALSE(r.ok());
}

TEST(DatabaseTest, FieldTypeCoercedOnStore) {
  Database db = MakeCompanyDatabase();
  RecordId div = db.AllOfType("DIV")[0];
  // AGE is PIC 9; a digit string coerces.
  Result<RecordId> id = db.StoreRecord({"EMP",
                                        {{"EMP-NAME", Value::String("X")},
                                         {"AGE", Value::String("27")}},
                                        {{"DIV-EMP", div}}});
  ASSERT_TRUE(id.ok()) << id.status();
  EXPECT_EQ(db.GetField(*id, "AGE")->as_int(), 27);
}

TEST(DatabaseTest, AutomaticSetRequiresOwner) {
  Database db = MakeDatabase(testing::CompanyDdl());
  Result<RecordId> r =
      db.StoreRecord({"EMP", {{"EMP-NAME", Value::String("X")}}, {}});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kConstraintViolation);
}

TEST(DatabaseTest, SystemSetMembershipIsImplicit) {
  Database db = MakeCompanyDatabase();
  EXPECT_EQ(db.SystemMembers("ALL-DIV").size(), 2u);
}

TEST(DatabaseTest, SortedSetOrdersMembersByKey) {
  Database db = MakeCompanyDatabase();
  // ALL-DIV sorted by DIV-NAME: MACHINERY < TEXTILES.
  std::vector<RecordId> divs = db.SystemMembers("ALL-DIV");
  ASSERT_EQ(divs.size(), 2u);
  EXPECT_EQ(db.GetField(divs[0], "DIV-NAME")->as_string(), "MACHINERY");
  EXPECT_EQ(db.GetField(divs[1], "DIV-NAME")->as_string(), "TEXTILES");
  // DIV-EMP sorted by EMP-NAME within MACHINERY: ADAMS, BAKER, CLARK.
  std::vector<RecordId> emps = db.Members("DIV-EMP", divs[0]);
  ASSERT_EQ(emps.size(), 3u);
  EXPECT_EQ(db.GetField(emps[0], "EMP-NAME")->as_string(), "ADAMS");
  EXPECT_EQ(db.GetField(emps[2], "EMP-NAME")->as_string(), "CLARK");
}

TEST(DatabaseTest, DuplicateSetKeyWithinOccurrenceRejected) {
  Database db = MakeCompanyDatabase();
  RecordId machinery = db.SystemMembers("ALL-DIV")[0];
  Result<RecordId> dup = db.StoreRecord(
      {"EMP", {{"EMP-NAME", Value::String("ADAMS")}}, {{"DIV-EMP", machinery}}});
  ASSERT_FALSE(dup.ok());
  EXPECT_EQ(dup.status().code(), StatusCode::kConstraintViolation);
  // The same key in a *different* occurrence is fine.
  RecordId textiles = db.SystemMembers("ALL-DIV")[1];
  EXPECT_TRUE(db.StoreRecord({"EMP",
                              {{"EMP-NAME", Value::String("ADAMS")}},
                              {{"DIV-EMP", textiles}}})
                  .ok());
}

TEST(DatabaseTest, VirtualFieldResolvesThroughSet) {
  Database db = MakeCompanyDatabase();
  RecordId machinery = db.SystemMembers("ALL-DIV")[0];
  RecordId adams = db.Members("DIV-EMP", machinery)[0];
  Result<Value> div_name = db.GetField(adams, "DIV-NAME");
  ASSERT_TRUE(div_name.ok());
  EXPECT_EQ(div_name->as_string(), "MACHINERY");
}

TEST(DatabaseTest, ChainedVirtualFieldResolves) {
  Database db = MakeDatabase(testing::CompanyRevisedDdl());
  RecordId div = *db.StoreRecord(
      {"DIV", {{"DIV-NAME", Value::String("MACHINERY")}}, {}});
  RecordId dept = *db.StoreRecord(
      {"DEPT", {{"DEPT-NAME", Value::String("SALES")}}, {{"DIV-DEPT", div}}});
  RecordId emp = *db.StoreRecord(
      {"EMP", {{"EMP-NAME", Value::String("ADAMS")}}, {{"DEPT-EMP", dept}}});
  EXPECT_EQ(db.GetField(emp, "DEPT-NAME")->as_string(), "SALES");
  EXPECT_EQ(db.GetField(emp, "DIV-NAME")->as_string(), "MACHINERY");
}

TEST(DatabaseTest, VirtualFieldNullWhenUnconnected) {
  Database db = MakeDatabase(testing::CompanyDdl());
  // Make DIV-EMP manual so an EMP can exist unconnected.
  Schema schema = db.schema();
  schema.FindSet("DIV-EMP")->insertion = InsertionClass::kManual;
  schema.FindSet("DIV-EMP")->retention = RetentionClass::kOptional;
  Database db2 = *Database::Create(schema);
  RecordId emp =
      *db2.StoreRecord({"EMP", {{"EMP-NAME", Value::String("X")}}, {}});
  EXPECT_TRUE(db2.GetField(emp, "DIV-NAME")->is_null());
}

TEST(DatabaseTest, EraseOwnerWithMandatoryMembersBlocked) {
  Database db = MakeCompanyDatabase();
  RecordId machinery = db.SystemMembers("ALL-DIV")[0];
  Status s = db.EraseRecord(machinery);
  EXPECT_EQ(s.code(), StatusCode::kConstraintViolation);
}

TEST(DatabaseTest, EraseCascadesToCharacterizingMembers) {
  Database db = MakeSchoolDatabase();
  std::vector<RecordId> courses = db.SystemMembers("ALL-COURSE");
  RecordId cs101 = courses[0];
  size_t before = db.AllOfType("OFFERING").size();
  ASSERT_EQ(before, 3u);
  ASSERT_TRUE(db.EraseRecord(cs101).ok());
  EXPECT_EQ(db.AllOfType("OFFERING").size(), 1u);  // CS101 had two offerings
  EXPECT_EQ(db.AllOfType("COURSE").size(), 1u);
}

TEST(DatabaseTest, EraseDisconnectsOptionalMembers) {
  Schema schema = MakeDatabase(testing::CompanyDdl()).schema();
  schema.FindSet("DIV-EMP")->retention = RetentionClass::kOptional;
  Database db = *Database::Create(schema);
  RecordId div =
      *db.StoreRecord({"DIV", {{"DIV-NAME", Value::String("M")}}, {}});
  RecordId emp = *db.StoreRecord(
      {"EMP", {{"EMP-NAME", Value::String("X")}}, {{"DIV-EMP", div}}});
  ASSERT_TRUE(db.EraseRecord(div).ok());
  EXPECT_TRUE(db.Exists(emp));
  EXPECT_EQ(db.OwnerOf("DIV-EMP", emp), 0u);
}

TEST(DatabaseTest, ModifyUpdatesFieldAndResorts) {
  Database db = MakeCompanyDatabase();
  RecordId machinery = db.SystemMembers("ALL-DIV")[0];
  std::vector<RecordId> emps = db.Members("DIV-EMP", machinery);
  RecordId adams = emps[0];
  // Rename ADAMS to ZEBRA: must move to the end of the sorted occurrence.
  ASSERT_TRUE(
      db.ModifyRecord(adams, {{"EMP-NAME", Value::String("ZEBRA")}}).ok());
  std::vector<RecordId> after = db.Members("DIV-EMP", machinery);
  EXPECT_EQ(after.back(), adams);
}

TEST(DatabaseTest, ModifyToDuplicateSetKeyRejected) {
  Database db = MakeCompanyDatabase();
  RecordId machinery = db.SystemMembers("ALL-DIV")[0];
  std::vector<RecordId> emps = db.Members("DIV-EMP", machinery);
  Status s = db.ModifyRecord(emps[0], {{"EMP-NAME", Value::String("BAKER")}});
  EXPECT_EQ(s.code(), StatusCode::kConstraintViolation);
}

TEST(DatabaseTest, CardinalityLimitEnforced) {
  Database db = MakeSchoolDatabase();
  RecordId cs101 = db.SystemMembers("ALL-COURSE")[0];
  RecordId s79 = db.SystemMembers("ALL-SEM")[1];
  // CS101 already offered once in 1979; a second 1979 offering is fine...
  Result<RecordId> second = db.StoreRecord(
      {"OFFERING",
       {{"SECTION-NO", Value::Int(2)}, {"YEAR", Value::Int(1979)}},
       {{"CRS-OFF", cs101}, {"SEM-OFF", s79}}});
  ASSERT_TRUE(second.ok()) << second.status();
  // ...but a third violates the twice-per-year rule.
  Result<RecordId> third = db.StoreRecord(
      {"OFFERING",
       {{"SECTION-NO", Value::Int(3)}, {"YEAR", Value::Int(1979)}},
       {{"CRS-OFF", cs101}, {"SEM-OFF", s79}}});
  ASSERT_FALSE(third.ok());
  EXPECT_EQ(third.status().code(), StatusCode::kConstraintViolation);
  // A different year is unaffected.
  RecordId f78 = db.SystemMembers("ALL-SEM")[0];
  EXPECT_TRUE(db.StoreRecord({"OFFERING",
                              {{"SECTION-NO", Value::Int(9)},
                               {"YEAR", Value::Int(1980)}},
                              {{"CRS-OFF", cs101}, {"SEM-OFF", f78}}})
                  .ok());
}

TEST(DatabaseTest, UniquenessConstraintEnforced) {
  Database db = MakeSchoolDatabase();
  Result<RecordId> dup = db.StoreRecord(
      {"COURSE",
       {{"CNO", Value::String("CS101")}, {"CNAME", Value::String("AGAIN")}},
       {}});
  ASSERT_FALSE(dup.ok());
  EXPECT_EQ(dup.status().code(), StatusCode::kConstraintViolation);
}

TEST(DatabaseTest, UniquenessReleasedOnErase) {
  Database db = MakeSchoolDatabase();
  RecordId cs101 = db.SystemMembers("ALL-COURSE")[0];
  ASSERT_TRUE(db.EraseRecord(cs101).ok());
  EXPECT_TRUE(db.StoreRecord({"COURSE",
                              {{"CNO", Value::String("CS101")},
                               {"CNAME", Value::String("REBORN")}},
                              {}})
                  .ok());
}

TEST(DatabaseTest, UniquenessFollowsModify) {
  Database db = MakeSchoolDatabase();
  std::vector<RecordId> courses = db.SystemMembers("ALL-COURSE");
  // Renaming CS202 to CS101 collides.
  Status s = db.ModifyRecord(courses[1], {{"CNO", Value::String("CS101")}});
  EXPECT_EQ(s.code(), StatusCode::kConstraintViolation);
  // Renaming to a fresh key then reusing the old key is fine.
  ASSERT_TRUE(
      db.ModifyRecord(courses[1], {{"CNO", Value::String("CS303")}}).ok());
  EXPECT_TRUE(db.StoreRecord({"COURSE", {{"CNO", Value::String("CS202")}}, {}})
                  .ok());
}

TEST(DatabaseTest, ConnectDisconnectManualOptionalSet) {
  Schema schema = MakeDatabase(testing::CompanyDdl()).schema();
  schema.FindSet("DIV-EMP")->insertion = InsertionClass::kManual;
  schema.FindSet("DIV-EMP")->retention = RetentionClass::kOptional;
  Database db = *Database::Create(schema);
  RecordId div =
      *db.StoreRecord({"DIV", {{"DIV-NAME", Value::String("M")}}, {}});
  RecordId emp =
      *db.StoreRecord({"EMP", {{"EMP-NAME", Value::String("X")}}, {}});
  EXPECT_EQ(db.OwnerOf("DIV-EMP", emp), 0u);
  ASSERT_TRUE(db.Connect("DIV-EMP", emp, div).ok());
  EXPECT_EQ(db.OwnerOf("DIV-EMP", emp), div);
  // Connecting twice is a violation.
  EXPECT_FALSE(db.Connect("DIV-EMP", emp, div).ok());
  ASSERT_TRUE(db.Disconnect("DIV-EMP", emp).ok());
  EXPECT_EQ(db.OwnerOf("DIV-EMP", emp), 0u);
}

TEST(DatabaseTest, DisconnectMandatoryRejected) {
  Database db = MakeCompanyDatabase();
  RecordId machinery = db.SystemMembers("ALL-DIV")[0];
  RecordId adams = db.Members("DIV-EMP", machinery)[0];
  Status s = db.Disconnect("DIV-EMP", adams);
  EXPECT_EQ(s.code(), StatusCode::kConstraintViolation);
}

TEST(DatabaseTest, OwnerOfReportsConnection) {
  Database db = MakeCompanyDatabase();
  RecordId machinery = db.SystemMembers("ALL-DIV")[0];
  RecordId adams = db.Members("DIV-EMP", machinery)[0];
  EXPECT_EQ(db.OwnerOf("DIV-EMP", adams), machinery);
}

TEST(DatabaseTest, SelectWhereFiltersByPredicate) {
  Database db = MakeCompanyDatabase();
  Predicate over30 = Predicate::Compare("AGE", CompareOp::kGt,
                                        Operand::Literal(Value::Int(30)));
  Result<std::vector<RecordId>> r =
      db.SelectWhere("EMP", over30, EmptyHostEnv());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 3u);  // ADAMS 34, CLARK 45, DAVIS 31
}

TEST(DatabaseTest, StatsCountOperations) {
  Database db = MakeCompanyDatabase();
  db.ResetStats();
  (void)db.GetField(db.AllOfType("EMP")[0], "EMP-NAME");
  EXPECT_GT(db.stats().records_read, 0u);
}

TEST(DatabaseTest, GetAllFieldsIncludesVirtual) {
  Database db = MakeCompanyDatabase();
  RecordId machinery = db.SystemMembers("ALL-DIV")[0];
  RecordId adams = db.Members("DIV-EMP", machinery)[0];
  Result<FieldMap> all = db.GetAllFields(adams);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->at("DIV-NAME").as_string(), "MACHINERY");
  EXPECT_EQ(all->at("EMP-NAME").as_string(), "ADAMS");
  EXPECT_EQ(all->size(), 4u);
}

}  // namespace
}  // namespace dbpc
