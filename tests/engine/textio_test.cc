#include "engine/textio.h"

#include <gtest/gtest.h>

#include "testing/fixtures.h"

namespace dbpc {
namespace {

using testing::MakeCompanyDatabase;
using testing::MakeSchoolDatabase;

TEST(TextIoTest, DumpMentionsEveryRecordAndMembership) {
  Database db = MakeCompanyDatabase();
  std::string dump = *DumpDatabaseText(db);
  EXPECT_NE(dump.find("DATABASE COMPANY."), std::string::npos);
  EXPECT_NE(dump.find("'MACHINERY'"), std::string::npos);
  EXPECT_NE(dump.find("'ADAMS'"), std::string::npos);
  EXPECT_NE(dump.find("IN DIV-EMP"), std::string::npos);
}

TEST(TextIoTest, RoundTripPreservesContent) {
  Database db = MakeCompanyDatabase();
  std::string dump = *DumpDatabaseText(db);
  Result<Database> loaded = LoadDatabaseText(db.schema(), dump);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->RecordCount(), db.RecordCount());
  // Structure and values survive.
  RecordId machinery = loaded->SystemMembers("ALL-DIV")[0];
  std::vector<RecordId> emps = loaded->Members("DIV-EMP", machinery);
  ASSERT_EQ(emps.size(), 3u);
  EXPECT_EQ(loaded->GetField(emps[0], "EMP-NAME")->as_string(), "ADAMS");
  EXPECT_EQ(loaded->GetField(emps[0], "AGE")->as_int(), 34);
  EXPECT_EQ(loaded->GetField(emps[0], "DIV-NAME")->as_string(), "MACHINERY");
  // A second dump is byte-identical (canonical form).
  EXPECT_EQ(*DumpDatabaseText(*loaded), dump);
}

TEST(TextIoTest, MultiParentSchoolRoundTrips) {
  Database db = MakeSchoolDatabase();
  std::string dump = *DumpDatabaseText(db);
  Result<Database> loaded = LoadDatabaseText(db.schema(), dump);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->AllOfType("OFFERING").size(), 3u);
  // Chronological member order inside CRS-OFF is preserved.
  RecordId cs101 = loaded->SystemMembers("ALL-COURSE")[0];
  std::vector<RecordId> offerings = loaded->Members("CRS-OFF", cs101);
  ASSERT_EQ(offerings.size(), 2u);
  EXPECT_EQ(loaded->GetField(offerings[0], "YEAR")->as_int(), 1978);
  EXPECT_EQ(loaded->GetField(offerings[1], "YEAR")->as_int(), 1979);
}

TEST(TextIoTest, TwoChronologicalSetsBothPreserveOrderOnRoundTrip) {
  Database db = testing::MakeDatabase(testing::SchoolDdl());
  RecordId cs101 = *db.StoreRecord({"COURSE",
                                    {{"CNO", Value::String("CS101")},
                                     {"CNAME", Value::String("INTRO")}},
                                    {}});
  RecordId cs202 = *db.StoreRecord({"COURSE",
                                    {{"CNO", Value::String("CS202")},
                                     {"CNAME", Value::String("DATABASES")}},
                                    {}});
  RecordId s79 = *db.StoreRecord({"SEMESTER",
                                  {{"S", Value::String("S79")},
                                   {"YEAR", Value::Int(1979)}},
                                  {}});
  // The offering of the *later* course is stored first, so the SEM-OFF
  // occurrence order (1 then 2) disagrees with a dump grouped by CRS-OFF
  // owner (which would emit CS101's offering first).
  (void)*db.StoreRecord({"OFFERING",
                         {{"SECTION-NO", Value::Int(1)},
                          {"YEAR", Value::Int(1979)}},
                         {{"CRS-OFF", cs202}, {"SEM-OFF", s79}}});
  (void)*db.StoreRecord({"OFFERING",
                         {{"SECTION-NO", Value::Int(2)},
                          {"YEAR", Value::Int(1979)}},
                         {{"CRS-OFF", cs101}, {"SEM-OFF", s79}}});
  std::string dump = *DumpDatabaseText(db);
  Result<Database> loaded = LoadDatabaseText(db.schema(), dump);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  RecordId loaded_s79 = loaded->AllOfType("SEMESTER")[0];
  std::vector<RecordId> sem = loaded->Members("SEM-OFF", loaded_s79);
  ASSERT_EQ(sem.size(), 2u);
  EXPECT_EQ(loaded->GetField(sem[0], "SECTION-NO")->as_int(), 1);
  EXPECT_EQ(loaded->GetField(sem[1], "SECTION-NO")->as_int(), 2);
}

TEST(TextIoTest, CyclicOwnerMemberGraphFailsInsteadOfDroppingRecords) {
  Schema schema("CYCLIC");
  RecordTypeDef a;
  a.name = "A";
  a.fields.push_back({.name = "AN", .type = FieldType::kString});
  RecordTypeDef b;
  b.name = "B";
  b.fields.push_back({.name = "BN", .type = FieldType::kString});
  ASSERT_TRUE(schema.AddRecordType(a).ok());
  ASSERT_TRUE(schema.AddRecordType(b).ok());
  SetDef ab;
  ab.name = "A-B";
  ab.owner = "A";
  ab.member = "B";
  ab.insertion = InsertionClass::kManual;
  ab.retention = RetentionClass::kOptional;
  ab.ordering = SetOrdering::kChronological;
  SetDef ba;
  ba.name = "B-A";
  ba.owner = "B";
  ba.member = "A";
  ba.insertion = InsertionClass::kManual;
  ba.retention = RetentionClass::kOptional;
  ba.ordering = SetOrdering::kChronological;
  ASSERT_TRUE(schema.AddSet(ab).ok());
  ASSERT_TRUE(schema.AddSet(ba).ok());
  Database db = *Database::Create(schema);
  (void)*db.StoreRecord({"A", {{"AN", Value::String("X")}}, {}});
  // The dump used to succeed with an empty body, silently losing the data.
  Result<std::string> dump = DumpDatabaseText(db);
  ASSERT_FALSE(dump.ok());
  EXPECT_EQ(dump.status().code(), StatusCode::kUnsupported);
}

TEST(TextIoTest, LoadEnforcesConstraints) {
  Database db = MakeSchoolDatabase();
  std::string dump = *DumpDatabaseText(db);
  // Tighten the schema before reloading: only one offering ever.
  Schema strict = db.schema();
  ConstraintDef once;
  once.name = "ONCE";
  once.kind = ConstraintKind::kCardinalityLimit;
  once.set_name = "CRS-OFF";
  once.limit = 1;
  ASSERT_TRUE(strict.AddConstraint(once).ok());
  Result<Database> loaded = LoadDatabaseText(strict, dump);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kConstraintViolation);
}

TEST(TextIoTest, ForwardReferenceRejected) {
  Database db = MakeCompanyDatabase();
  std::string dump =
      "DATABASE COMPANY.\n"
      "RECORD EMP 1 (EMP-NAME = 'X') IN DIV-EMP 2.\n"
      "RECORD DIV 2 (DIV-NAME = 'M').\n"
      "END DATABASE.\n";
  Result<Database> loaded = LoadDatabaseText(db.schema(), dump);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kParseError);
}

TEST(TextIoTest, MalformedDumpRejected) {
  Database db = MakeCompanyDatabase();
  EXPECT_FALSE(LoadDatabaseText(db.schema(), "NOT A DUMP").ok());
  EXPECT_FALSE(
      LoadDatabaseText(db.schema(), "DATABASE X.\nRECORD DIV 1 (").ok());
  EXPECT_FALSE(LoadDatabaseText(db.schema(),
                                "DATABASE X.\nRECORD DIV 1 ().\n")
                   .ok());  // missing END DATABASE
}

TEST(TextIoTest, NegativeAndNullValues) {
  Schema schema("T");
  RecordTypeDef r;
  r.name = "R";
  r.fields.push_back({.name = "N", .type = FieldType::kInt});
  r.fields.push_back({.name = "S", .type = FieldType::kString});
  ASSERT_TRUE(schema.AddRecordType(r).ok());
  Database db = *Database::Create(schema);
  (void)*db.StoreRecord({"R", {{"N", Value::Int(-5)}}, {}});
  std::string dump = *DumpDatabaseText(db);
  Result<Database> loaded = LoadDatabaseText(schema, dump);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  RecordId id = loaded->AllOfType("R")[0];
  EXPECT_EQ(loaded->GetField(id, "N")->as_int(), -5);
  EXPECT_TRUE(loaded->GetField(id, "S")->is_null());
}

}  // namespace
}  // namespace dbpc
