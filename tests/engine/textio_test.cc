#include "engine/textio.h"

#include <gtest/gtest.h>

#include "testing/fixtures.h"

namespace dbpc {
namespace {

using testing::MakeCompanyDatabase;
using testing::MakeSchoolDatabase;

TEST(TextIoTest, DumpMentionsEveryRecordAndMembership) {
  Database db = MakeCompanyDatabase();
  std::string dump = DumpDatabaseText(db);
  EXPECT_NE(dump.find("DATABASE COMPANY."), std::string::npos);
  EXPECT_NE(dump.find("'MACHINERY'"), std::string::npos);
  EXPECT_NE(dump.find("'ADAMS'"), std::string::npos);
  EXPECT_NE(dump.find("IN DIV-EMP"), std::string::npos);
}

TEST(TextIoTest, RoundTripPreservesContent) {
  Database db = MakeCompanyDatabase();
  std::string dump = DumpDatabaseText(db);
  Result<Database> loaded = LoadDatabaseText(db.schema(), dump);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->RecordCount(), db.RecordCount());
  // Structure and values survive.
  RecordId machinery = loaded->SystemMembers("ALL-DIV")[0];
  std::vector<RecordId> emps = loaded->Members("DIV-EMP", machinery);
  ASSERT_EQ(emps.size(), 3u);
  EXPECT_EQ(loaded->GetField(emps[0], "EMP-NAME")->as_string(), "ADAMS");
  EXPECT_EQ(loaded->GetField(emps[0], "AGE")->as_int(), 34);
  EXPECT_EQ(loaded->GetField(emps[0], "DIV-NAME")->as_string(), "MACHINERY");
  // A second dump is byte-identical (canonical form).
  EXPECT_EQ(DumpDatabaseText(*loaded), dump);
}

TEST(TextIoTest, MultiParentSchoolRoundTrips) {
  Database db = MakeSchoolDatabase();
  std::string dump = DumpDatabaseText(db);
  Result<Database> loaded = LoadDatabaseText(db.schema(), dump);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->AllOfType("OFFERING").size(), 3u);
  // Chronological member order inside CRS-OFF is preserved.
  RecordId cs101 = loaded->SystemMembers("ALL-COURSE")[0];
  std::vector<RecordId> offerings = loaded->Members("CRS-OFF", cs101);
  ASSERT_EQ(offerings.size(), 2u);
  EXPECT_EQ(loaded->GetField(offerings[0], "YEAR")->as_int(), 1978);
  EXPECT_EQ(loaded->GetField(offerings[1], "YEAR")->as_int(), 1979);
}

TEST(TextIoTest, LoadEnforcesConstraints) {
  Database db = MakeSchoolDatabase();
  std::string dump = DumpDatabaseText(db);
  // Tighten the schema before reloading: only one offering ever.
  Schema strict = db.schema();
  ConstraintDef once;
  once.name = "ONCE";
  once.kind = ConstraintKind::kCardinalityLimit;
  once.set_name = "CRS-OFF";
  once.limit = 1;
  ASSERT_TRUE(strict.AddConstraint(once).ok());
  Result<Database> loaded = LoadDatabaseText(strict, dump);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kConstraintViolation);
}

TEST(TextIoTest, ForwardReferenceRejected) {
  Database db = MakeCompanyDatabase();
  std::string dump =
      "DATABASE COMPANY.\n"
      "RECORD EMP 1 (EMP-NAME = 'X') IN DIV-EMP 2.\n"
      "RECORD DIV 2 (DIV-NAME = 'M').\n"
      "END DATABASE.\n";
  Result<Database> loaded = LoadDatabaseText(db.schema(), dump);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kParseError);
}

TEST(TextIoTest, MalformedDumpRejected) {
  Database db = MakeCompanyDatabase();
  EXPECT_FALSE(LoadDatabaseText(db.schema(), "NOT A DUMP").ok());
  EXPECT_FALSE(
      LoadDatabaseText(db.schema(), "DATABASE X.\nRECORD DIV 1 (").ok());
  EXPECT_FALSE(LoadDatabaseText(db.schema(),
                                "DATABASE X.\nRECORD DIV 1 ().\n")
                   .ok());  // missing END DATABASE
}

TEST(TextIoTest, NegativeAndNullValues) {
  Schema schema("T");
  RecordTypeDef r;
  r.name = "R";
  r.fields.push_back({.name = "N", .type = FieldType::kInt});
  r.fields.push_back({.name = "S", .type = FieldType::kString});
  ASSERT_TRUE(schema.AddRecordType(r).ok());
  Database db = *Database::Create(schema);
  (void)*db.StoreRecord({"R", {{"N", Value::Int(-5)}}, {}});
  std::string dump = DumpDatabaseText(db);
  Result<Database> loaded = LoadDatabaseText(schema, dump);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  RecordId id = loaded->AllOfType("R")[0];
  EXPECT_EQ(loaded->GetField(id, "N")->as_int(), -5);
  EXPECT_TRUE(loaded->GetField(id, "S")->is_null());
}

}  // namespace
}  // namespace dbpc
