// The bulk extent path: SnapshotExtents / BulkLoad round trips, and
// RebuildIndexes correctness after bulk loads through mutable_store() —
// including the uniqueness-probe rebuild.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "engine/database.h"
#include "engine/predicate.h"
#include "storage/extent.h"
#include "testing/fixtures.h"

namespace dbpc {
namespace {

using testing::CompanyDdl;
using testing::MakeCompanyDatabase;
using testing::MakeDatabase;
using testing::SchoolDdl;

Predicate Eq(const std::string& field, Value v) {
  return Predicate::Compare(field, CompareOp::kEq,
                            Operand::Literal(std::move(v)));
}

TEST(SnapshotExtentsTest, ColumnsAreActualFieldsInDeclarationOrder) {
  Database db = MakeCompanyDatabase();
  Result<ExtentTable> table = db.SnapshotExtents("EMP");
  ASSERT_TRUE(table.ok()) << table.status();
  // Virtual DIV-NAME is not a stored column.
  EXPECT_EQ(table->field_names(),
            (std::vector<std::string>{"EMP-NAME", "DEPT-NAME", "AGE"}));
  EXPECT_EQ(table->rows(), db.AllOfType("EMP").size());
}

TEST(SnapshotExtentsTest, RowsMatchStoreAscendingById) {
  Database db = MakeCompanyDatabase();
  Result<ExtentTable> table = db.SnapshotExtents("EMP");
  ASSERT_TRUE(table.ok()) << table.status();
  std::vector<RecordId> ids = db.AllOfType("EMP");
  ASSERT_EQ(table->rows(), ids.size());
  for (size_t r = 0; r < ids.size(); ++r) {
    EXPECT_EQ(table->IdAt(r), ids[r]);
    const StoredRecord* rec = db.raw_store().Get(ids[r]);
    ASSERT_NE(rec, nullptr);
    for (size_t c = 0; c < table->columns(); ++c) {
      auto it = rec->fields.find(table->field_names()[c]);
      Value expect = it == rec->fields.end() ? Value::Null() : it->second;
      EXPECT_TRUE(table->At(r, c) == expect)
          << "row " << r << " col " << table->field_names()[c];
    }
  }
}

TEST(SnapshotExtentsTest, UnknownTypeIsNotFound) {
  Database db = MakeCompanyDatabase();
  Result<ExtentTable> table = db.SnapshotExtents("NOPE");
  EXPECT_EQ(table.status().code(), StatusCode::kNotFound);
}

TEST(SnapshotExtentsTest, SnapshotDoesNotDisturbOpStats) {
  Database db = MakeCompanyDatabase();
  db.ResetStats();
  ASSERT_TRUE(db.SnapshotExtents("EMP").ok());
  EXPECT_EQ(db.stats().Total(), 0u);
}

TEST(BulkLoadTest, RoundTripPreservesRecordsAndReturnsAscendingIds) {
  Database source = MakeCompanyDatabase();
  Database target = MakeDatabase(CompanyDdl());
  for (const char* type : {"DIV", "EMP"}) {
    Result<ExtentTable> table = source.SnapshotExtents(type);
    ASSERT_TRUE(table.ok()) << table.status();
    Result<std::vector<RecordId>> ids = target.BulkLoad(*table);
    ASSERT_TRUE(ids.ok()) << ids.status();
    ASSERT_EQ(ids->size(), table->rows());
    for (size_t i = 1; i < ids->size(); ++i) {
      EXPECT_LT((*ids)[i - 1], (*ids)[i]);
    }
    // Values land verbatim.
    for (size_t r = 0; r < table->rows(); ++r) {
      const StoredRecord* rec = target.raw_store().Get((*ids)[r]);
      ASSERT_NE(rec, nullptr);
      EXPECT_EQ(rec->type, type);
      for (size_t c = 0; c < table->columns(); ++c) {
        EXPECT_TRUE(rec->fields.at(table->field_names()[c]) ==
                    table->At(r, c));
      }
    }
  }
  EXPECT_EQ(target.RecordCount(), source.RecordCount());
}

TEST(BulkLoadTest, RebuildsSecondaryIndexesForProbes) {
  Database source = MakeCompanyDatabase();
  Database target = MakeDatabase(CompanyDdl());
  Result<ExtentTable> table = source.SnapshotExtents("EMP");
  ASSERT_TRUE(table.ok()) << table.status();
  Result<std::vector<RecordId>> ids = target.BulkLoad(*table);
  ASSERT_TRUE(ids.ok()) << ids.status();

  // EMP-NAME carries an eager secondary index (DIV-EMP set key); BulkLoad
  // must leave it answering probes over the loaded rows.
  auto probe = target.ProbeIndex("EMP", "EMP-NAME", Value::String("ADAMS"));
  ASSERT_TRUE(probe.has_value());
  ASSERT_EQ(probe->size(), 1u);
  EXPECT_EQ(target.raw_store().Get((*probe)[0])->fields.at("EMP-NAME")
                .as_string(),
            "ADAMS");

  // Probe and scan agree after the bulk load.
  Predicate pred = Eq("EMP-NAME", Value::String("DAVIS"));
  target.SetIndexOptions(IndexOptions{});
  Result<std::vector<RecordId>> probed =
      target.SelectWhere("EMP", pred, EmptyHostEnv());
  target.SetIndexOptions({.enabled = false, .auto_join_indexes = false});
  Result<std::vector<RecordId>> scanned =
      target.SelectWhere("EMP", pred, EmptyHostEnv());
  ASSERT_TRUE(probed.ok());
  ASSERT_TRUE(scanned.ok());
  EXPECT_EQ(*probed, *scanned);
  EXPECT_EQ(probed->size(), 1u);
}

TEST(BulkLoadTest, RejectsUnknownTypeUnknownColumnAndVirtualColumn) {
  Database db = MakeDatabase(CompanyDdl());
  ExtentTable unknown_type("NOPE", {"F"}, {FieldType::kString});
  EXPECT_EQ(db.BulkLoad(unknown_type).status().code(), StatusCode::kNotFound);

  ExtentTable unknown_col("EMP", {"NO-SUCH"}, {FieldType::kString});
  Status s = db.BulkLoad(unknown_col).status();
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("no field"), std::string::npos) << s;

  ExtentTable virtual_col("EMP", {"DIV-NAME"}, {FieldType::kString});
  s = db.BulkLoad(virtual_col).status();
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("virtual"), std::string::npos) << s;
}

TEST(RebuildIndexesTest, RestoresProbesAfterMutableStoreLoad) {
  Database db = MakeDatabase(CompanyDdl());
  for (int i = 0; i < 50; ++i) {
    db.mutable_store().Insert(
        "EMP", {{"EMP-NAME", Value::String("E" + std::to_string(i))},
                {"DEPT-NAME", Value::String("SALES")},
                {"AGE", Value::Int(20 + i % 40)}});
  }
  db.RebuildIndexes();
  auto probe = db.ProbeIndex("EMP", "EMP-NAME", Value::String("E7"));
  ASSERT_TRUE(probe.has_value());
  ASSERT_EQ(probe->size(), 1u);
  EXPECT_EQ(db.raw_store().Get((*probe)[0])->fields.at("EMP-NAME").as_string(),
            "E7");
}

TEST(RebuildIndexesTest, RebuildsUniquenessProbeAfterMutableStoreLoad) {
  Database db = MakeDatabase(SchoolDdl());
  db.mutable_store().Insert("COURSE", {{"CNO", Value::String("CS101")},
                                       {"CNAME", Value::String("INTRO")}});
  db.RebuildIndexes();
  // The rebuilt uniqueness probe must see the bulk-loaded key: storing a
  // duplicate CNO through the validated path is a constraint violation...
  StoreRequest dup{"COURSE",
                   {{"CNO", Value::String("CS101")},
                    {"CNAME", Value::String("INTRO AGAIN")}},
                   {}};
  Result<RecordId> stored = db.StoreRecord(dup);
  ASSERT_FALSE(stored.ok());
  EXPECT_EQ(stored.status().code(), StatusCode::kConstraintViolation);
  EXPECT_NE(stored.status().message().find("duplicate key"),
            std::string::npos)
      << stored.status();
  // ...while a fresh key stores fine.
  StoreRequest fresh{"COURSE",
                     {{"CNO", Value::String("CS102")},
                      {"CNAME", Value::String("DATA")}},
                     {}};
  EXPECT_TRUE(db.StoreRecord(fresh).ok());
}

}  // namespace
}  // namespace dbpc
