#include "engine/find_query.h"

#include <gtest/gtest.h>

#include "testing/fixtures.h"

namespace dbpc {
namespace {

using testing::MakeCompanyDatabase;

std::vector<std::string> Names(const Database& db,
                               const std::vector<RecordId>& ids,
                               const std::string& field = "EMP-NAME") {
  std::vector<std::string> out;
  for (RecordId id : ids) out.push_back(db.GetField(id, field)->ToDisplay());
  return out;
}

Result<std::vector<RecordId>> RunFind(const Database& db, const std::string& text) {
  Result<Retrieval> r = ParseRetrieval(text);
  if (!r.ok()) return r.status();
  Retrieval retrieval = *r;
  DBPC_RETURN_IF_ERROR(ResolveFindQuery(db.schema(), &retrieval.query));
  return EvaluateRetrieval(db, retrieval, EmptyHostEnv(), EmptyCollectionEnv());
}

// The paper's first example (section 4.2): all employees older than 30.
TEST(FindQueryTest, PaperExampleOne) {
  Database db = MakeCompanyDatabase();
  Result<std::vector<RecordId>> ids = RunFind(
      db, "FIND(EMP: SYSTEM, ALL-DIV, DIV, DIV-EMP, EMP(AGE > 30))");
  ASSERT_TRUE(ids.ok()) << ids.status();
  EXPECT_EQ(Names(db, *ids),
            (std::vector<std::string>{"ADAMS", "CLARK", "DAVIS"}));
}

// The paper's second example: SALES employees of the MACHINERY division.
TEST(FindQueryTest, PaperExampleTwo) {
  Database db = MakeCompanyDatabase();
  Result<std::vector<RecordId>> ids = RunFind(
      db,
      "FIND(EMP: SYSTEM, ALL-DIV, DIV(DIV-NAME = 'MACHINERY'), DIV-EMP, "
      "EMP(DEPT-NAME = 'SALES'))");
  ASSERT_TRUE(ids.ok()) << ids.status();
  EXPECT_EQ(Names(db, *ids), (std::vector<std::string>{"ADAMS", "BAKER"}));
}

TEST(FindQueryTest, ResultsFollowSetOrdering) {
  Database db = MakeCompanyDatabase();
  Result<std::vector<RecordId>> ids =
      RunFind(db, "FIND(EMP: SYSTEM, ALL-DIV, DIV, DIV-EMP, EMP)");
  ASSERT_TRUE(ids.ok());
  // MACHINERY's employees (sorted by name) then TEXTILES'.
  EXPECT_EQ(Names(db, *ids),
            (std::vector<std::string>{"ADAMS", "BAKER", "CLARK", "DAVIS"}));
}

TEST(FindQueryTest, SortWrapperReorders) {
  Database db = MakeCompanyDatabase();
  Result<std::vector<RecordId>> ids = RunFind(
      db, "SORT(FIND(EMP: SYSTEM, ALL-DIV, DIV, DIV-EMP, EMP)) ON (AGE)");
  ASSERT_TRUE(ids.ok());
  EXPECT_EQ(Names(db, *ids),
            (std::vector<std::string>{"BAKER", "DAVIS", "ADAMS", "CLARK"}));
}

TEST(FindQueryTest, QualificationOnVirtualField) {
  Database db = MakeCompanyDatabase();
  Result<std::vector<RecordId>> ids = RunFind(
      db,
      "FIND(EMP: SYSTEM, ALL-DIV, DIV, DIV-EMP, EMP(DIV-NAME = 'TEXTILES'))");
  ASSERT_TRUE(ids.ok());
  EXPECT_EQ(Names(db, *ids), (std::vector<std::string>{"DAVIS"}));
}

TEST(FindQueryTest, HostVariableInQualification) {
  Database db = MakeCompanyDatabase();
  Result<Retrieval> r = ParseRetrieval(
      "FIND(EMP: SYSTEM, ALL-DIV, DIV, DIV-EMP, EMP(AGE > :MINAGE))");
  ASSERT_TRUE(r.ok());
  Retrieval retrieval = *r;
  ASSERT_TRUE(ResolveFindQuery(db.schema(), &retrieval.query).ok());
  HostEnv env = [](const std::string& name) -> Result<Value> {
    if (name == "MINAGE") return Value::Int(40);
    return Status::NotFound(name);
  };
  Result<std::vector<RecordId>> ids =
      EvaluateRetrieval(db, retrieval, env, EmptyCollectionEnv());
  ASSERT_TRUE(ids.ok());
  EXPECT_EQ(Names(db, *ids), (std::vector<std::string>{"CLARK"}));
}

TEST(FindQueryTest, CollectionStartChainsRetrievals) {
  Database db = MakeCompanyDatabase();
  Result<std::vector<RecordId>> divs =
      RunFind(db, "FIND(DIV: SYSTEM, ALL-DIV, DIV(DIV-LOC = 'EAST'))");
  ASSERT_TRUE(divs.ok());
  Result<Retrieval> r = ParseRetrieval("FIND(EMP: EASTDIVS, DIV-EMP, EMP)");
  ASSERT_TRUE(r.ok());
  Retrieval retrieval = *r;
  ASSERT_TRUE(ResolveFindQuery(db.schema(), &retrieval.query).ok());
  CollectionEnv collections =
      [&](const std::string& name) -> Result<std::vector<RecordId>> {
    if (name == "EASTDIVS") return *divs;
    return Status::NotFound(name);
  };
  Result<std::vector<RecordId>> ids =
      EvaluateRetrieval(db, retrieval, EmptyHostEnv(), collections);
  ASSERT_TRUE(ids.ok());
  EXPECT_EQ(Names(db, *ids),
            (std::vector<std::string>{"ADAMS", "BAKER", "CLARK"}));
}

TEST(FindQueryTest, ToStringRoundTrips) {
  const std::string text =
      "FIND(EMP: SYSTEM, ALL-DIV, DIV(DIV-NAME = 'MACHINERY'), DIV-EMP, "
      "EMP(DEPT-NAME = 'SALES'))";
  Result<FindQuery> q = ParseFindQuery(text);
  ASSERT_TRUE(q.ok());
  Result<FindQuery> again = ParseFindQuery(q->ToString());
  ASSERT_TRUE(again.ok()) << again.status() << " from " << q->ToString();
  EXPECT_EQ(*q, *again);
}

TEST(FindQueryTest, SortRetrievalToStringRoundTrips) {
  const std::string text =
      "SORT(FIND(EMP: SYSTEM, ALL-DIV, DIV, DIV-EMP, EMP(AGE > 30))) "
      "ON (EMP-NAME, AGE)";
  Result<Retrieval> r = ParseRetrieval(text);
  ASSERT_TRUE(r.ok());
  Result<Retrieval> again = ParseRetrieval(r->ToString());
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*r, *again);
}

TEST(FindQueryTest, ResolveRejectsNonSystemOpeningSet) {
  Database db = MakeCompanyDatabase();
  Result<FindQuery> q = ParseFindQuery("FIND(EMP: SYSTEM, DIV-EMP, EMP)");
  ASSERT_TRUE(q.ok());
  FindQuery query = *q;
  EXPECT_EQ(ResolveFindQuery(db.schema(), &query).code(),
            StatusCode::kInvalidArgument);
}

TEST(FindQueryTest, ResolveRejectsWrongTarget) {
  Database db = MakeCompanyDatabase();
  FindQuery query = *ParseFindQuery("FIND(DIV: SYSTEM, ALL-DIV, DIV, DIV-EMP, EMP)");
  EXPECT_FALSE(ResolveFindQuery(db.schema(), &query).ok());
}

TEST(FindQueryTest, ResolveRejectsUnknownStep) {
  Database db = MakeCompanyDatabase();
  FindQuery query = *ParseFindQuery("FIND(EMP: SYSTEM, NO-SUCH, EMP)");
  EXPECT_EQ(ResolveFindQuery(db.schema(), &query).code(),
            StatusCode::kNotFound);
}

TEST(FindQueryTest, ResolveRejectsMismatchedChain) {
  Database db = MakeCompanyDatabase();
  // ALL-DIV yields DIVs; EMP does not match.
  FindQuery query = *ParseFindQuery("FIND(EMP: SYSTEM, ALL-DIV, EMP)");
  EXPECT_FALSE(ResolveFindQuery(db.schema(), &query).ok());
}

TEST(FindQueryTest, ResolveRejectsQualificationOnUnknownField) {
  Database db = MakeCompanyDatabase();
  FindQuery query = *ParseFindQuery(
      "FIND(DIV: SYSTEM, ALL-DIV, DIV(NO-FIELD = 1))");
  EXPECT_EQ(ResolveFindQuery(db.schema(), &query).code(),
            StatusCode::kNotFound);
}

TEST(FindQueryTest, EvaluateUnresolvedQueryFails) {
  Database db = MakeCompanyDatabase();
  FindQuery query = *ParseFindQuery("FIND(DIV: SYSTEM, ALL-DIV, DIV)");
  Result<std::vector<RecordId>> ids =
      EvaluateFind(db, query, EmptyHostEnv(), EmptyCollectionEnv());
  EXPECT_FALSE(ids.ok());
}

TEST(PredicateTest, AndOrNotEvaluation) {
  Database db = MakeCompanyDatabase();
  Predicate p = Predicate::And(
      Predicate::Compare("DEPT-NAME", CompareOp::kEq,
                         Operand::Literal(Value::String("SALES"))),
      Predicate::Not(Predicate::Compare("AGE", CompareOp::kLt,
                                        Operand::Literal(Value::Int(30)))));
  Result<std::vector<RecordId>> ids = db.SelectWhere("EMP", p, EmptyHostEnv());
  ASSERT_TRUE(ids.ok());
  EXPECT_EQ(Names(db, *ids), (std::vector<std::string>{"ADAMS", "DAVIS"}));
}

TEST(PredicateTest, NullComparisonsAreFalse) {
  Database db = MakeCompanyDatabase();
  RecordId machinery = db.SystemMembers("ALL-DIV")[0];
  RecordId emp = *db.StoreRecord(
      {"EMP", {{"EMP-NAME", Value::String("NOAGE")}}, {{"DIV-EMP", machinery}}});
  Predicate lt = Predicate::Compare("AGE", CompareOp::kLt,
                                    Operand::Literal(Value::Int(100)));
  Result<bool> r = lt.Evaluate(db.FieldGetter(emp), EmptyHostEnv());
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(*r);
  Predicate is_null = Predicate::Compare("AGE", CompareOp::kIsNull,
                                         Operand::Literal(Value::Null()));
  EXPECT_TRUE(*is_null.Evaluate(db.FieldGetter(emp), EmptyHostEnv()));
}

TEST(PredicateTest, RenameFieldRewritesReferences) {
  Predicate p = Predicate::Or(
      Predicate::Compare("A", CompareOp::kEq, Operand::Literal(Value::Int(1))),
      Predicate::Compare("A", CompareOp::kGt, Operand::Literal(Value::Int(5))));
  EXPECT_EQ(p.RenameField("A", "B"), 2);
  std::vector<std::string> fields;
  p.CollectFields(&fields);
  EXPECT_EQ(fields, (std::vector<std::string>{"B"}));
}

TEST(PredicateTest, ToStringAndEquality) {
  Predicate p = Predicate::Compare("AGE", CompareOp::kGe,
                                   Operand::HostVar("MIN"));
  EXPECT_EQ(p.ToString(), "AGE >= :MIN");
  Predicate q = p;
  EXPECT_EQ(p, q);
  EXPECT_EQ(q.RenameField("AGE", "YEARS"), 1);
  EXPECT_FALSE(p == q);
}

TEST(PredicateTest, CollectHostVars) {
  Predicate p = Predicate::And(
      Predicate::Compare("A", CompareOp::kEq, Operand::HostVar("X")),
      Predicate::Compare("B", CompareOp::kEq, Operand::HostVar("Y")));
  std::vector<std::string> vars;
  p.CollectHostVars(&vars);
  EXPECT_EQ(vars, (std::vector<std::string>{"X", "Y"}));
}

TEST(QueryCompareTest, NumericStringAgainstNumber) {
  // PIC X ages still compare numerically against int literals.
  EXPECT_EQ(QueryCompare(Value::String("31"), Value::Int(30)).value(), 1);
  EXPECT_EQ(QueryCompare(Value::String("9"), Value::Int(30)).value(), -1);
  EXPECT_FALSE(QueryCompare(Value::Null(), Value::Int(1)).has_value());
}

}  // namespace
}  // namespace dbpc
