// Su's second access pattern made executable: ACCESS A via B through
// (Ai, Bj) — relating record types that share no set through comparable
// fields (paper section 4.1: "If two entity types A and B are not related
// by an association, the only way of relating the data ... would be by
// taking the mathematical relation of their comparable data fields").

#include <gtest/gtest.h>

#include "engine/find_query.h"
#include "ir/access_pattern.h"
#include "lang/interpreter.h"
#include "lang/parser.h"
#include "schema/ddl_parser.h"
#include "testing/fixtures.h"

namespace dbpc {
namespace {

/// COMPANY plus an unassociated LOCATION record type sharing the DIV-LOC
/// value domain.
Database CompanyWithLocations() {
  Schema schema = testing::MakeCompanyDatabase().schema();
  RecordTypeDef loc;
  loc.name = "LOCATION";
  loc.fields.push_back({.name = "LOC-CODE", .type = FieldType::kString});
  loc.fields.push_back({.name = "CITY", .type = FieldType::kString});
  EXPECT_TRUE(schema.AddRecordType(loc).ok());
  Database db = *Database::Create(schema);
  RecordId machinery = *db.StoreRecord(
      {"DIV",
       {{"DIV-NAME", Value::String("MACHINERY")},
        {"DIV-LOC", Value::String("EAST")}},
       {}});
  RecordId textiles = *db.StoreRecord(
      {"DIV",
       {{"DIV-NAME", Value::String("TEXTILES")},
        {"DIV-LOC", Value::String("SOUTH")}},
       {}});
  auto emp = [&](const char* n, int64_t a, RecordId o) {
    (void)*db.StoreRecord(
        {"EMP", {{"EMP-NAME", Value::String(n)}, {"AGE", Value::Int(a)}},
         {{"DIV-EMP", o}}});
  };
  emp("ADAMS", 34, machinery);
  emp("DAVIS", 31, textiles);
  auto location = [&](const char* code, const char* city) {
    (void)*db.StoreRecord({"LOCATION",
                           {{"LOC-CODE", Value::String(code)},
                            {"CITY", Value::String(city)}},
                           {}});
  };
  location("EAST", "BOSTON");
  location("SOUTH", "ATLANTA");
  location("WEST", "DENVER");
  return db;
}

Result<std::vector<RecordId>> RunJoin(const Database& db,
                                      const std::string& text) {
  Result<Retrieval> r = ParseRetrieval(text);
  if (!r.ok()) return r.status();
  Retrieval retrieval = *r;
  DBPC_RETURN_IF_ERROR(ResolveFindQuery(db.schema(), &retrieval.query));
  return EvaluateRetrieval(db, retrieval, EmptyHostEnv(),
                           EmptyCollectionEnv());
}

TEST(ValueJoinTest, JoinsUnassociatedTypes) {
  Database db = CompanyWithLocations();
  Result<std::vector<RecordId>> ids = RunJoin(
      db,
      "FIND(LOCATION: SYSTEM, ALL-DIV, DIV(DIV-NAME = 'MACHINERY'), "
      "JOIN LOCATION THROUGH (LOC-CODE, DIV-LOC))");
  ASSERT_TRUE(ids.ok()) << ids.status();
  ASSERT_EQ(ids->size(), 1u);
  EXPECT_EQ(db.GetField((*ids)[0], "CITY")->as_string(), "BOSTON");
}

TEST(ValueJoinTest, DeduplicatesMatches) {
  Database db = CompanyWithLocations();
  // Both EAST divisions would match the same LOCATION once.
  (void)*db.StoreRecord({"DIV",
                         {{"DIV-NAME", Value::String("FOUNDRY")},
                          {"DIV-LOC", Value::String("EAST")}},
                         {}});
  Result<std::vector<RecordId>> ids = RunJoin(
      db,
      "FIND(LOCATION: SYSTEM, ALL-DIV, DIV, "
      "JOIN LOCATION THROUGH (LOC-CODE, DIV-LOC))");
  ASSERT_TRUE(ids.ok());
  EXPECT_EQ(ids->size(), 2u);  // BOSTON, ATLANTA — each once
}

TEST(ValueJoinTest, QualificationOnJoinTarget) {
  Database db = CompanyWithLocations();
  Result<std::vector<RecordId>> ids = RunJoin(
      db,
      "FIND(LOCATION: SYSTEM, ALL-DIV, DIV, "
      "JOIN LOCATION THROUGH (LOC-CODE, DIV-LOC)(CITY = 'ATLANTA'))");
  ASSERT_TRUE(ids.ok());
  ASSERT_EQ(ids->size(), 1u);
  EXPECT_EQ(db.GetField((*ids)[0], "CITY")->as_string(), "ATLANTA");
}

TEST(ValueJoinTest, JoinThroughVirtualSourceField) {
  Database db = CompanyWithLocations();
  // EMP has no DIV-LOC, but joining from DIV works through EMP's virtual
  // DIV-NAME the other way: join LOCATIONs from EMPs via owner-derived
  // DIV-LOC is not possible (EMP lacks it), so join from DIV level.
  Result<std::vector<RecordId>> ids = RunJoin(
      db,
      "FIND(LOCATION: SYSTEM, ALL-DIV, DIV(DIV-LOC = 'SOUTH'), "
      "JOIN LOCATION THROUGH (LOC-CODE, DIV-LOC))");
  ASSERT_TRUE(ids.ok());
  ASSERT_EQ(ids->size(), 1u);
  EXPECT_EQ(db.GetField((*ids)[0], "CITY")->as_string(), "ATLANTA");
}

TEST(ValueJoinTest, ToStringRoundTrips) {
  const std::string text =
      "FIND(LOCATION: SYSTEM, ALL-DIV, DIV, "
      "JOIN LOCATION THROUGH (LOC-CODE, DIV-LOC)(CITY = 'BOSTON'))";
  Result<FindQuery> q = ParseFindQuery(text);
  ASSERT_TRUE(q.ok()) << q.status();
  Result<FindQuery> again = ParseFindQuery(q->ToString());
  ASSERT_TRUE(again.ok()) << again.status() << "\n" << q->ToString();
  EXPECT_EQ(*q, *again);
}

TEST(ValueJoinTest, CannotOpenPathWithJoin) {
  Database db = CompanyWithLocations();
  FindQuery q = *ParseFindQuery(
      "FIND(LOCATION: SYSTEM, JOIN LOCATION THROUGH (LOC-CODE, DIV-LOC))");
  EXPECT_EQ(ResolveFindQuery(db.schema(), &q).code(),
            StatusCode::kInvalidArgument);
}

TEST(ValueJoinTest, UnknownJoinFieldsRejected) {
  Database db = CompanyWithLocations();
  FindQuery bad_target = *ParseFindQuery(
      "FIND(LOCATION: SYSTEM, ALL-DIV, DIV, "
      "JOIN LOCATION THROUGH (NOPE, DIV-LOC))");
  EXPECT_EQ(ResolveFindQuery(db.schema(), &bad_target).code(),
            StatusCode::kNotFound);
  FindQuery bad_source = *ParseFindQuery(
      "FIND(LOCATION: SYSTEM, ALL-DIV, DIV, "
      "JOIN LOCATION THROUGH (LOC-CODE, NOPE))");
  EXPECT_EQ(ResolveFindQuery(db.schema(), &bad_source).code(),
            StatusCode::kNotFound);
}

TEST(ValueJoinTest, AccessSequenceShowsThroughClause) {
  Database db = CompanyWithLocations();
  Retrieval r = *ParseRetrieval(
      "FIND(LOCATION: SYSTEM, ALL-DIV, DIV, "
      "JOIN LOCATION THROUGH (LOC-CODE, DIV-LOC))");
  AccessSequence seq =
      *DeriveAccessSequence(db.schema(), r, TerminalOp::kRetrieve);
  EXPECT_EQ(seq.ToString(),
            "ACCESS DIV via DIV\n"
            "ACCESS LOCATION via DIV through (LOC-CODE, DIV-LOC)\n"
            "RETRIEVE\n");
}

TEST(ValueJoinTest, WorksInsideCplPrograms) {
  Database db = CompanyWithLocations();
  Program p = *ParseProgram(R"(
PROGRAM JOINED.
  FOR EACH L IN FIND(LOCATION: SYSTEM, ALL-DIV, DIV,
      JOIN LOCATION THROUGH (LOC-CODE, DIV-LOC)) DO
    GET CITY OF L INTO C.
    DISPLAY C.
  END-FOR.
END PROGRAM.)");
  Interpreter interp(&db, IoScript());
  RunResult run = *interp.Run(p);
  ASSERT_EQ(run.trace.size(), 2u);
  EXPECT_EQ(run.trace.events()[0].payload, "BOSTON");
  EXPECT_EQ(run.trace.events()[1].payload, "ATLANTA");
}

}  // namespace
}  // namespace dbpc
