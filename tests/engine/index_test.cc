// Engine index subsystem: maintenance through every mutation path, probe
// vs. scan equivalence (the trace-invisibility contract at the unit level),
// and the OpStats accounting that E11 measures.

#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "engine/database.h"
#include "engine/predicate.h"
#include "testing/fixtures.h"

namespace dbpc {
namespace {

using testing::FillCompany;
using testing::MakeCompanyDatabase;
using testing::MakeDatabase;
using testing::MakeSchoolDatabase;

constexpr IndexOptions kIndexesOff{.enabled = false,
                                   .auto_join_indexes = false};

Predicate Eq(const std::string& field, Value v) {
  return Predicate::Compare(field, CompareOp::kEq,
                            Operand::Literal(std::move(v)));
}

/// Runs SelectWhere with indexes on and off and requires identical rows;
/// returns the indexed result.
std::vector<RecordId> SelectBothWays(Database* db, const std::string& type,
                                     const Predicate& pred,
                                     const HostEnv& env = EmptyHostEnv()) {
  db->SetIndexOptions(IndexOptions{});
  Result<std::vector<RecordId>> probed = db->SelectWhere(type, pred, env);
  db->SetIndexOptions(kIndexesOff);
  Result<std::vector<RecordId>> scanned = db->SelectWhere(type, pred, env);
  db->SetIndexOptions(IndexOptions{});
  EXPECT_TRUE(probed.ok()) << probed.status();
  EXPECT_TRUE(scanned.ok()) << scanned.status();
  EXPECT_EQ(*probed, *scanned) << "probe/scan divergence on "
                               << pred.ToString();
  return *probed;
}

TEST(IndexTest, SelectWhereProbeMatchesScanAndCountsProbes) {
  Database db = MakeCompanyDatabase();
  // EMP-NAME is a DIV-EMP set key, so it carries an eager secondary index.
  db.ResetStats();
  std::vector<RecordId> rows =
      SelectBothWays(&db, "EMP", Eq("EMP-NAME", Value::String("ADAMS")));
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_GT(db.stats().index_probes, 0u);
  EXPECT_GT(db.stats().index_hits, 0u);

  db.ResetStats();
  db.SetIndexOptions(kIndexesOff);
  ASSERT_TRUE(db.SelectWhere("EMP", Eq("EMP-NAME", Value::String("ADAMS")),
                             EmptyHostEnv())
                  .ok());
  EXPECT_EQ(db.stats().index_probes, 0u);
  EXPECT_EQ(db.stats().index_hits, 0u);
}

TEST(IndexTest, ProbeReducesEngineOps) {
  Database db = MakeDatabase(testing::CompanyDdl());
  FillCompany(&db, 20, 10);
  Predicate pred = Eq("EMP-NAME", Value::String("EMP-0007-00003"));

  db.ResetStats();
  ASSERT_TRUE(db.SelectWhere("EMP", pred, EmptyHostEnv()).ok());
  uint64_t probed_ops = db.stats().Total();

  db.SetIndexOptions(kIndexesOff);
  db.ResetStats();
  ASSERT_TRUE(db.SelectWhere("EMP", pred, EmptyHostEnv()).ok());
  uint64_t scanned_ops = db.stats().Total();
  EXPECT_GE(scanned_ops, 10 * probed_ops)
      << "probed=" << probed_ops << " scanned=" << scanned_ops;
}

TEST(IndexTest, ResidualConjunctsAndHostVarsAreHonored) {
  Database db = MakeCompanyDatabase();
  HostEnv env = [](const std::string& name) -> Result<Value> {
    if (name == "D") return Value::String("SALES");
    return Status::NotFound("host variable " + name);
  };
  // Indexed equality on EMP-NAME plus a residual AGE range and a hostvar
  // equality: the probe may only narrow candidates, never change results.
  Predicate pred = Predicate::And(
      Eq("EMP-NAME", Value::String("BAKER")),
      Predicate::And(Predicate::Compare("AGE", CompareOp::kLt,
                                        Operand::Literal(Value::Int(30))),
                     Predicate::Compare("DEPT-NAME", CompareOp::kEq,
                                        Operand::HostVar("D"))));
  EXPECT_EQ(SelectBothWays(&db, "EMP", pred, env).size(), 1u);

  // A hostvar that fails to resolve must surface the same error either way
  // (the probe path refuses rather than swallowing the scan's error).
  Predicate broken = Predicate::Compare("EMP-NAME", CompareOp::kEq,
                                        Operand::HostVar("MISSING"));
  Result<std::vector<RecordId>> probed =
      db.SelectWhere("EMP", broken, EmptyHostEnv());
  db.SetIndexOptions(kIndexesOff);
  Result<std::vector<RecordId>> scanned =
      db.SelectWhere("EMP", broken, EmptyHostEnv());
  EXPECT_EQ(probed.ok(), scanned.ok());
  EXPECT_FALSE(probed.ok());
}

TEST(IndexTest, OrAndNotShapesFallBackToScan) {
  Database db = MakeCompanyDatabase();
  db.ResetStats();
  Predicate pred = Predicate::Or(Eq("EMP-NAME", Value::String("ADAMS")),
                                 Eq("EMP-NAME", Value::String("DAVIS")));
  EXPECT_EQ(SelectBothWays(&db, "EMP", pred).size(), 2u);
  Predicate neg = Predicate::Not(Eq("EMP-NAME", Value::String("ADAMS")));
  EXPECT_EQ(SelectBothWays(&db, "EMP", neg).size(), 3u);
}

TEST(IndexTest, NumericEqualityMatchesQueryCompareSemantics) {
  Database db = MakeCompanyDatabase();
  ASSERT_TRUE(db.EnsureFieldIndex("EMP", "AGE"));
  // QueryCompare equates Int(34) with the numeric string "34"; the index
  // must agree with the scan on both probe spellings.
  EXPECT_EQ(SelectBothWays(&db, "EMP", Eq("AGE", Value::Int(34))).size(), 1u);
  EXPECT_EQ(SelectBothWays(&db, "EMP", Eq("AGE", Value::String("34"))).size(),
            1u);
  EXPECT_TRUE(SelectBothWays(&db, "EMP", Eq("AGE", Value::String("x")))
                  .empty());
}

TEST(IndexTest, ModifyRecordMovesIndexEntry) {
  Database db = MakeCompanyDatabase();
  std::vector<RecordId> adams =
      SelectBothWays(&db, "EMP", Eq("EMP-NAME", Value::String("ADAMS")));
  ASSERT_EQ(adams.size(), 1u);
  ASSERT_TRUE(
      db.ModifyRecord(adams[0], {{"EMP-NAME", Value::String("AARON")}}).ok());

  std::optional<std::vector<RecordId>> old_bucket =
      db.ProbeIndex("EMP", "EMP-NAME", Value::String("ADAMS"));
  ASSERT_TRUE(old_bucket.has_value());
  EXPECT_TRUE(old_bucket->empty());
  std::optional<std::vector<RecordId>> new_bucket =
      db.ProbeIndex("EMP", "EMP-NAME", Value::String("AARON"));
  ASSERT_TRUE(new_bucket.has_value());
  EXPECT_EQ(*new_bucket, adams);
  SelectBothWays(&db, "EMP", Eq("EMP-NAME", Value::String("AARON")));
}

TEST(IndexTest, EraseRecordCascadeRemovesCharacterizedMembers) {
  Database db = MakeSchoolDatabase();
  ASSERT_TRUE(db.EnsureFieldIndex("OFFERING", "YEAR"));
  std::optional<std::vector<RecordId>> y79 =
      db.ProbeIndex("OFFERING", "YEAR", Value::Int(1979));
  ASSERT_TRUE(y79.has_value());
  ASSERT_EQ(y79->size(), 2u);  // CS101/S79 and CS202/S79

  // Erasing CS101 cascades through its characterizing CRS-OFF members.
  std::vector<RecordId> cs101 =
      SelectBothWays(&db, "COURSE", Eq("CNO", Value::String("CS101")));
  ASSERT_EQ(cs101.size(), 1u);
  ASSERT_TRUE(db.EraseRecord(cs101[0]).ok());

  y79 = db.ProbeIndex("OFFERING", "YEAR", Value::Int(1979));
  ASSERT_TRUE(y79.has_value());
  EXPECT_EQ(y79->size(), 1u);
  EXPECT_TRUE(db.ProbeIndex("OFFERING", "YEAR", Value::Int(1978))->empty());
  SelectBothWays(&db, "OFFERING", Eq("YEAR", Value::Int(1979)));
}

TEST(IndexTest, ConnectAndDisconnectLeaveFieldIndexesIntact) {
  Database db = MakeDatabase(R"(
SCHEMA NAME IS CD
RECORD SECTION.
  RECORD NAME IS OWN.
  FIELDS ARE.
    O-NAME PIC X(10).
  END RECORD.
  RECORD NAME IS MEM.
  FIELDS ARE.
    M-NAME PIC X(10).
  END RECORD.
END RECORD SECTION.
SET SECTION.
  SET NAME IS OWN-MEM.
  OWNER IS OWN.
  MEMBER IS MEM.
  INSERTION IS MANUAL.
  RETENTION IS OPTIONAL.
  SET KEYS ARE (M-NAME).
  END SET.
END SET SECTION.
END SCHEMA.
)");
  RecordId own = *db.StoreRecord({"OWN", {{"O-NAME", Value::String("A")}}, {}});
  RecordId mem = *db.StoreRecord({"MEM", {{"M-NAME", Value::String("M1")}}, {}});

  auto probe = [&] {
    std::optional<std::vector<RecordId>> bucket =
        db.ProbeIndex("MEM", "M-NAME", Value::String("M1"));
    EXPECT_TRUE(bucket.has_value());
    return bucket.value_or(std::vector<RecordId>{});
  };
  EXPECT_EQ(probe(), std::vector<RecordId>{mem});
  ASSERT_TRUE(db.Connect("OWN-MEM", mem, own).ok());
  EXPECT_EQ(probe(), std::vector<RecordId>{mem});
  ASSERT_TRUE(db.Disconnect("OWN-MEM", mem).ok());
  EXPECT_EQ(probe(), std::vector<RecordId>{mem});
}

TEST(IndexTest, BulkLoadRequiresRebuildIndexes) {
  Database db = MakeCompanyDatabase();
  // A bulk load through the raw store bypasses index maintenance: probes
  // are stale until RebuildIndexes() — exactly what mutable_store()'s
  // contract says.
  db.mutable_store().Insert("EMP", {{"EMP-NAME", Value::String("ZELDA")},
                                    {"DEPT-NAME", Value::String("SALES")},
                                    {"AGE", Value::Int(30)}});
  std::optional<std::vector<RecordId>> stale =
      db.ProbeIndex("EMP", "EMP-NAME", Value::String("ZELDA"));
  ASSERT_TRUE(stale.has_value());
  EXPECT_TRUE(stale->empty());

  db.RebuildIndexes();
  EXPECT_EQ(db.ProbeIndex("EMP", "EMP-NAME", Value::String("ZELDA"))->size(),
            1u);
  EXPECT_EQ(
      SelectBothWays(&db, "EMP", Eq("EMP-NAME", Value::String("ZELDA")))
          .size(),
      1u);
}

TEST(IndexTest, TypeMismatchedStoredValueDisablesProbesNotResults) {
  Database db = MakeCompanyDatabase();
  // A bulk-loaded EMP-NAME of the wrong dynamic type breaks the
  // key-equality == value-equality invariant for the whole index: after
  // rebuild the field must drop out of IndexedFields and SelectWhere must
  // quietly scan — with identical results.
  db.mutable_store().Insert("EMP", {{"EMP-NAME", Value::Int(7)},
                                    {"DEPT-NAME", Value::String("SALES")},
                                    {"AGE", Value::Int(30)}});
  db.RebuildIndexes();
  for (const auto& [type, field] : db.IndexedFields()) {
    EXPECT_FALSE(type == "EMP" && field == "EMP-NAME");
  }
  EXPECT_FALSE(
      db.ProbeIndex("EMP", "EMP-NAME", Value::String("ADAMS")).has_value());
  EXPECT_EQ(
      SelectBothWays(&db, "EMP", Eq("EMP-NAME", Value::String("ADAMS")))
          .size(),
      1u);
}

TEST(IndexTest, IndexedFieldsListsEagerIndexesAndHonorsDisable) {
  Database db = MakeCompanyDatabase();
  bool saw_emp_name = false;
  for (const auto& [type, field] : db.IndexedFields()) {
    if (type == "EMP" && field == "EMP-NAME") saw_emp_name = true;
  }
  EXPECT_TRUE(saw_emp_name);
  db.SetIndexOptions(kIndexesOff);
  EXPECT_TRUE(db.IndexedFields().empty());
  EXPECT_FALSE(db.EnsureFieldIndex("EMP", "AGE"));
}

TEST(IndexTest, MembersRefMatchesMembersAndCountsScans) {
  Database db = MakeCompanyDatabase();
  std::vector<RecordId> divs = db.AllOfType("DIV");
  ASSERT_FALSE(divs.empty());
  db.ResetStats();
  const std::vector<RecordId>& borrowed = db.MembersRef("DIV-EMP", divs[0]);
  uint64_t after_ref = db.stats().members_scanned;
  EXPECT_EQ(borrowed.size(), after_ref);
  EXPECT_EQ(db.Members("DIV-EMP", divs[0]), borrowed);
}

}  // namespace
}  // namespace dbpc
