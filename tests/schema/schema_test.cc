#include "schema/schema.h"

#include <gtest/gtest.h>

#include "schema/ddl_parser.h"
#include "testing/fixtures.h"

namespace dbpc {
namespace {

Schema MustParse(const std::string& ddl) {
  Result<Schema> r = ParseDdl(ddl);
  EXPECT_TRUE(r.ok()) << r.status();
  return r.ok() ? *r : Schema();
}

TEST(SchemaTest, CompanyDdlParses) {
  Schema s = MustParse(testing::CompanyDdl());
  EXPECT_EQ(s.name(), "COMPANY");
  ASSERT_NE(s.FindRecordType("EMP"), nullptr);
  ASSERT_NE(s.FindRecordType("DIV"), nullptr);
  ASSERT_NE(s.FindSet("DIV-EMP"), nullptr);
  ASSERT_NE(s.FindSet("ALL-DIV"), nullptr);
  EXPECT_TRUE(s.FindSet("ALL-DIV")->system_owned());
  EXPECT_FALSE(s.FindSet("DIV-EMP")->system_owned());
}

TEST(SchemaTest, VirtualFieldParsed) {
  Schema s = MustParse(testing::CompanyDdl());
  const FieldDef* f = s.FindRecordType("EMP")->FindField("DIV-NAME");
  ASSERT_NE(f, nullptr);
  EXPECT_TRUE(f->is_virtual);
  EXPECT_EQ(f->via_set, "DIV-EMP");
  EXPECT_EQ(f->using_field, "DIV-NAME");
  EXPECT_EQ(f->type, FieldType::kString);
}

TEST(SchemaTest, PicClausesMapToTypes) {
  Schema s = MustParse(testing::CompanyDdl());
  EXPECT_EQ(s.FindRecordType("EMP")->FindField("AGE")->type, FieldType::kInt);
  EXPECT_EQ(s.FindRecordType("EMP")->FindField("EMP-NAME")->type,
            FieldType::kString);
  EXPECT_EQ(s.FindRecordType("EMP")->FindField("EMP-NAME")->pic_width, 25);
}

TEST(SchemaTest, DdlRoundTrips) {
  Schema s = MustParse(testing::CompanyDdl());
  Schema again = MustParse(s.ToDdl());
  EXPECT_EQ(s, again);
}

TEST(SchemaTest, SchoolDdlRoundTripsWithConstraints) {
  Schema s = MustParse(testing::SchoolDdl());
  ASSERT_NE(s.FindConstraint("TWICE-A-YEAR"), nullptr);
  EXPECT_EQ(s.FindConstraint("TWICE-A-YEAR")->kind,
            ConstraintKind::kCardinalityLimit);
  EXPECT_EQ(s.FindConstraint("TWICE-A-YEAR")->limit, 2);
  EXPECT_EQ(s.FindConstraint("TWICE-A-YEAR")->group_field, "YEAR");
  EXPECT_TRUE(s.FindSet("CRS-OFF")->member_characterizes_owner);
  Schema again = MustParse(s.ToDdl());
  EXPECT_EQ(s, again);
}

TEST(SchemaTest, RevisedCompanyHasChainedVirtualField) {
  Schema s = MustParse(testing::CompanyRevisedDdl());
  const FieldDef* f = s.FindRecordType("EMP")->FindField("DIV-NAME");
  ASSERT_NE(f, nullptr);
  EXPECT_TRUE(f->is_virtual);
  // EMP.DIV-NAME derives from DEPT.DIV-NAME which itself derives from DIV.
  const FieldDef* dept = s.FindRecordType("DEPT")->FindField("DIV-NAME");
  ASSERT_NE(dept, nullptr);
  EXPECT_TRUE(dept->is_virtual);
}

TEST(SchemaTest, DuplicateRecordTypeRejected) {
  Schema s;
  ASSERT_TRUE(s.AddRecordType({"R", {}}).ok());
  EXPECT_EQ(s.AddRecordType({"R", {}}).code(), StatusCode::kAlreadyExists);
}

TEST(SchemaTest, DuplicateFieldRejected) {
  Schema s;
  RecordTypeDef r;
  r.name = "R";
  r.fields.push_back({.name = "A"});
  r.fields.push_back({.name = "a"});  // case-insensitive duplicate
  EXPECT_EQ(s.AddRecordType(r).code(), StatusCode::kAlreadyExists);
}

TEST(SchemaTest, ValidateRejectsDanglingSetOwner) {
  Schema s;
  ASSERT_TRUE(s.AddRecordType({"M", {}}).ok());
  SetDef set;
  set.name = "S";
  set.owner = "MISSING";
  set.member = "M";
  set.ordering = SetOrdering::kChronological;
  ASSERT_TRUE(s.AddSet(set).ok());
  EXPECT_EQ(s.Validate().code(), StatusCode::kNotFound);
}

TEST(SchemaTest, ValidateRejectsSortedSetWithoutKeys) {
  Schema s;
  ASSERT_TRUE(s.AddRecordType({"M", {}}).ok());
  ASSERT_TRUE(s.AddRecordType({"O", {}}).ok());
  SetDef set;
  set.name = "S";
  set.owner = "O";
  set.member = "M";
  set.ordering = SetOrdering::kSortedByKeys;
  ASSERT_TRUE(s.AddSet(set).ok());
  EXPECT_EQ(s.Validate().code(), StatusCode::kInvalidArgument);
}

TEST(SchemaTest, ValidateRejectsCyclicVirtualChain) {
  // Two record types each deriving a field from the other through two sets.
  Schema s;
  RecordTypeDef a;
  a.name = "A";
  a.fields.push_back({.name = "KEY", .type = FieldType::kString});
  a.fields.push_back({.name = "V",
                      .type = FieldType::kString,
                      .is_virtual = true,
                      .via_set = "BA",
                      .using_field = "W"});
  RecordTypeDef b;
  b.name = "B";
  b.fields.push_back({.name = "KEY", .type = FieldType::kString});
  b.fields.push_back({.name = "W",
                      .type = FieldType::kString,
                      .is_virtual = true,
                      .via_set = "AB",
                      .using_field = "V"});
  ASSERT_TRUE(s.AddRecordType(a).ok());
  ASSERT_TRUE(s.AddRecordType(b).ok());
  SetDef ab{.name = "AB", .owner = "A", .member = "B",
            .ordering = SetOrdering::kChronological};
  SetDef ba{.name = "BA", .owner = "B", .member = "A",
            .ordering = SetOrdering::kChronological};
  ASSERT_TRUE(s.AddSet(ab).ok());
  ASSERT_TRUE(s.AddSet(ba).ok());
  EXPECT_EQ(s.Validate().code(), StatusCode::kInvalidArgument);
}

TEST(SchemaTest, ValidateRejectsVirtualTypeMismatch) {
  Schema s = MustParse(testing::CompanyDdl());
  // Make the virtual field an INT while the source DIV-NAME is a string.
  s.FindRecordType("EMP")->FindField("DIV-NAME");
  RecordTypeDef* emp = s.FindRecordType("EMP");
  for (FieldDef& f : emp->fields) {
    if (f.name == "DIV-NAME") f.type = FieldType::kInt;
  }
  EXPECT_EQ(s.Validate().code(), StatusCode::kTypeError);
}

TEST(SchemaTest, ValidateRejectsConstraintOnUnknownField) {
  Schema s = MustParse(testing::CompanyDdl());
  ConstraintDef c;
  c.name = "BAD";
  c.kind = ConstraintKind::kNonNull;
  c.record = "EMP";
  c.fields = {"NO-SUCH-FIELD"};
  ASSERT_TRUE(s.AddConstraint(c).ok());
  EXPECT_EQ(s.Validate().code(), StatusCode::kNotFound);
}

TEST(SchemaTest, ValidateRejectsNonPositiveCardinalityLimit) {
  Schema s = MustParse(testing::CompanyDdl());
  ConstraintDef c;
  c.name = "BAD";
  c.kind = ConstraintKind::kCardinalityLimit;
  c.set_name = "DIV-EMP";
  c.limit = 0;
  ASSERT_TRUE(s.AddConstraint(c).ok());
  EXPECT_EQ(s.Validate().code(), StatusCode::kInvalidArgument);
}

TEST(SchemaTest, FindSetBetween) {
  Schema s = MustParse(testing::CompanyDdl());
  const SetDef* set = s.FindSetBetween("DIV", "EMP");
  ASSERT_NE(set, nullptr);
  EXPECT_EQ(set->name, "DIV-EMP");
  EXPECT_EQ(s.FindSetBetween("EMP", "DIV"), nullptr);
}

TEST(SchemaTest, DropOperations) {
  Schema s = MustParse(testing::SchoolDdl());
  EXPECT_TRUE(s.DropConstraint("TWICE-A-YEAR").ok());
  EXPECT_EQ(s.DropConstraint("TWICE-A-YEAR").code(), StatusCode::kNotFound);
  EXPECT_TRUE(s.DropConstraint("UNIQ-S").ok());
  EXPECT_TRUE(s.DropSet("SEM-OFF").ok());
  EXPECT_TRUE(s.DropSet("ALL-SEM").ok());
  EXPECT_TRUE(s.DropRecordType("SEMESTER").ok());
  // OFFERING.S still derives through the dropped set: inconsistent.
  EXPECT_FALSE(s.Validate().ok());
  RecordTypeDef* offering = s.FindRecordType("OFFERING");
  std::erase_if(offering->fields,
                [](const FieldDef& f) { return f.name == "S"; });
  EXPECT_TRUE(s.Validate().ok());
}

TEST(DdlParserTest, SemicolonAcceptedAsClauseEnd) {
  // The paper's Figure 4.3 shows "RECORD SECTION;".
  std::string ddl = R"(
SCHEMA NAME IS T
RECORD SECTION;
  RECORD NAME IS R;
  FIELDS ARE;
    F PIC X(4);
  END RECORD;
END RECORD SECTION;
SET SECTION;
END SET SECTION;
END SCHEMA;
)";
  Schema s = MustParse(ddl);
  EXPECT_NE(s.FindRecordType("R"), nullptr);
}

TEST(DdlParserTest, ErrorsCarryLineNumbers) {
  Result<Schema> r = ParseDdl("SCHEMA NAME IS X\nOOPS");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
  EXPECT_NE(r.status().message().find("line 2"), std::string::npos);
}

TEST(DdlParserTest, TrailingInputRejected) {
  std::string ddl = MustParse(testing::CompanyDdl()).ToDdl() + " EXTRA";
  EXPECT_FALSE(ParseDdl(ddl).ok());
}

TEST(DdlParserTest, UnknownPicCodeRejected) {
  std::string ddl = R"(
SCHEMA NAME IS T
RECORD SECTION.
  RECORD NAME IS R.
  FIELDS ARE.
    F PIC Z(4).
  END RECORD.
END RECORD SECTION.
SET SECTION.
END SET SECTION.
END SCHEMA.
)";
  EXPECT_FALSE(ParseDdl(ddl).ok());
}

TEST(ConstraintDefTest, ToStringForms) {
  ConstraintDef c;
  c.name = "K";
  c.kind = ConstraintKind::kUniqueness;
  c.record = "EMP";
  c.fields = {"EMP-NAME"};
  EXPECT_EQ(c.ToString(), "CONSTRAINT K IS UNIQUE ON EMP (EMP-NAME)");
  c.kind = ConstraintKind::kCardinalityLimit;
  c.set_name = "CRS-OFF";
  c.limit = 2;
  c.group_field = "YEAR";
  EXPECT_EQ(c.ToString(),
            "CONSTRAINT K IS CARDINALITY ON SET CRS-OFF LIMIT 2 PER YEAR");
}

}  // namespace
}  // namespace dbpc
