#include "hierarchical/hierarchical.h"

#include <gtest/gtest.h>

#include "restructure/transformation.h"

#include "testing/fixtures.h"

namespace dbpc {
namespace {

using testing::MakeCompanyDatabase;

Predicate Eq(const std::string& field, const std::string& value) {
  return Predicate::Compare(field, CompareOp::kEq,
                            Operand::Literal(Value::String(value)));
}

TEST(HierarchicalTest, AttachRejectsNetworks) {
  // OFFERING has two parents (COURSE and SEMESTER): a genuine network.
  Database school = testing::MakeSchoolDatabase();
  Result<HierarchicalMachine> machine = HierarchicalMachine::Attach(&school);
  ASSERT_FALSE(machine.ok());
  EXPECT_EQ(machine.status().code(), StatusCode::kUnsupported);
}

TEST(HierarchicalTest, CompanyIsAHierarchy) {
  Database db = MakeCompanyDatabase();
  Result<HierarchicalMachine> machine = HierarchicalMachine::Attach(&db);
  ASSERT_TRUE(machine.ok()) << machine.status();
  EXPECT_EQ(machine->roots(), (std::vector<std::string>{"DIV"}));
}

TEST(HierarchicalTest, HierarchicSequenceIsPreOrder) {
  Database db = MakeCompanyDatabase();
  HierarchicalMachine m = *HierarchicalMachine::Attach(&db);
  std::vector<RecordId> seq = m.HierarchicSequence();
  // MACHINERY, its 3 EMPs, TEXTILES, its EMP.
  ASSERT_EQ(seq.size(), 6u);
  EXPECT_EQ(db.GetField(seq[0], "DIV-NAME")->as_string(), "MACHINERY");
  EXPECT_EQ(db.GetField(seq[1], "EMP-NAME")->as_string(), "ADAMS");
  EXPECT_EQ(db.GetField(seq[4], "DIV-NAME")->as_string(), "TEXTILES");
  EXPECT_EQ(db.GetField(seq[5], "EMP-NAME")->as_string(), "DAVIS");
}

TEST(HierarchicalTest, GetUniqueWithQualifiedPath) {
  Database db = MakeCompanyDatabase();
  HierarchicalMachine m = *HierarchicalMachine::Attach(&db);
  ASSERT_TRUE(m.GetUnique({{"DIV", Eq("DIV-NAME", "MACHINERY")},
                           {"EMP", Eq("EMP-NAME", "BAKER")}},
                          EmptyHostEnv())
                  .ok());
  EXPECT_EQ(m.status(), dli_status::kOk);
  EXPECT_EQ(m.Get("AGE")->as_int(), 28);
}

TEST(HierarchicalTest, GetUniqueNotFoundSetsGE) {
  Database db = MakeCompanyDatabase();
  HierarchicalMachine m = *HierarchicalMachine::Attach(&db);
  ASSERT_TRUE(
      m.GetUnique({{"DIV", Eq("DIV-NAME", "NOWHERE")}}, EmptyHostEnv()).ok());
  EXPECT_EQ(m.status(), dli_status::kNotFound);
}

TEST(HierarchicalTest, GetNextWalksSequence) {
  Database db = MakeCompanyDatabase();
  HierarchicalMachine m = *HierarchicalMachine::Attach(&db);
  std::vector<std::string> names;
  ASSERT_TRUE(m.GetNext("EMP", EmptyHostEnv()).ok());
  while (m.status() == dli_status::kOk) {
    names.push_back(m.Get("EMP-NAME")->as_string());
    ASSERT_TRUE(m.GetNext("EMP", EmptyHostEnv()).ok());
  }
  EXPECT_EQ(m.status(), dli_status::kEndOfDatabase);
  EXPECT_EQ(names,
            (std::vector<std::string>{"ADAMS", "BAKER", "CLARK", "DAVIS"}));
}

TEST(HierarchicalTest, GetNextWithinParentStopsAtSubtreeEnd) {
  Database db = MakeCompanyDatabase();
  HierarchicalMachine m = *HierarchicalMachine::Attach(&db);
  ASSERT_TRUE(
      m.GetUnique({{"DIV", Eq("DIV-NAME", "MACHINERY")}}, EmptyHostEnv()).ok());
  std::vector<std::string> names;
  ASSERT_TRUE(m.GetNextWithinParent("EMP", EmptyHostEnv()).ok());
  while (m.status() == dli_status::kOk) {
    names.push_back(m.Get("EMP-NAME")->as_string());
    ASSERT_TRUE(m.GetNextWithinParent("EMP", EmptyHostEnv()).ok());
  }
  EXPECT_EQ(m.status(), dli_status::kNotFound);
  EXPECT_EQ(names, (std::vector<std::string>{"ADAMS", "BAKER", "CLARK"}));
}

TEST(HierarchicalTest, InsertUnderQualifiedParent) {
  Database db = MakeCompanyDatabase();
  HierarchicalMachine m = *HierarchicalMachine::Attach(&db);
  ASSERT_TRUE(m.Insert("EMP",
                       {{"EMP-NAME", Value::String("EVANS")},
                        {"AGE", Value::Int(51)}},
                       {{"DIV", Eq("DIV-NAME", "TEXTILES")}}, EmptyHostEnv())
                  .ok());
  EXPECT_EQ(m.status(), dli_status::kOk);
  ASSERT_TRUE(m.GetUnique({{"DIV", Eq("DIV-NAME", "TEXTILES")},
                           {"EMP", Eq("EMP-NAME", "EVANS")}},
                          EmptyHostEnv())
                  .ok());
  EXPECT_EQ(m.status(), dli_status::kOk);
}

TEST(HierarchicalTest, ReplaceUpdatesCurrentSegment) {
  Database db = MakeCompanyDatabase();
  HierarchicalMachine m = *HierarchicalMachine::Attach(&db);
  ASSERT_TRUE(m.GetUnique({{"DIV", Eq("DIV-NAME", "MACHINERY")},
                           {"EMP", Eq("EMP-NAME", "ADAMS")}},
                          EmptyHostEnv())
                  .ok());
  ASSERT_TRUE(m.Replace({{"AGE", Value::Int(40)}}).ok());
  EXPECT_EQ(m.Get("AGE")->as_int(), 40);
}

TEST(HierarchicalTest, DeleteRemovesSubtree) {
  Database db = MakeCompanyDatabase();
  HierarchicalMachine m = *HierarchicalMachine::Attach(&db);
  ASSERT_TRUE(
      m.GetUnique({{"DIV", Eq("DIV-NAME", "MACHINERY")}}, EmptyHostEnv()).ok());
  ASSERT_TRUE(m.Delete().ok());
  EXPECT_EQ(m.status(), dli_status::kOk);
  EXPECT_EQ(db.AllOfType("DIV").size(), 1u);
  EXPECT_EQ(db.AllOfType("EMP").size(), 1u);  // only DAVIS survives
}

TEST(HierarchicalTest, OrderTransformationChangesHierarchicSequence) {
  // The Mehl & Wang setting (paper section 2.2): changing the hierarchical
  // order changes what GET NEXT returns.
  Database db = MakeCompanyDatabase();
  HierarchicalMachine before = *HierarchicalMachine::Attach(&db);
  std::vector<RecordId> original = before.HierarchicSequence();

  TransformationPtr reorder = MakeChangeSetOrder("DIV-EMP", {"AGE", "EMP-NAME"});
  Database reordered = *TranslateDatabase(db, {reorder.get()});
  HierarchicalMachine after = *HierarchicalMachine::Attach(&reordered);
  std::vector<RecordId> changed = after.HierarchicSequence();
  ASSERT_EQ(original.size(), changed.size());
  // MACHINERY's first employee is now the youngest (BAKER), not ADAMS.
  EXPECT_EQ(reordered.GetField(changed[1], "EMP-NAME")->as_string(), "BAKER");
}

}  // namespace
}  // namespace dbpc
