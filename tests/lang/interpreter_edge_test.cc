// Edge-case behaviour of the CPL interpreter: error paths, DB-STATUS flow
// through every DML level, file/terminal exhaustion, and the currency
// quirks the paper's section 3.2 warns about.

#include <gtest/gtest.h>

#include "lang/interpreter.h"
#include "lang/parser.h"
#include "testing/fixtures.h"

namespace dbpc {
namespace {

using testing::MakeCompanyDatabase;

Result<RunResult> TryRun(Database* db, const std::string& source,
                         IoScript script = {}) {
  Result<Program> p = ParseProgram(source);
  EXPECT_TRUE(p.ok()) << p.status();
  Interpreter interp(db, std::move(script));
  return interp.Run(*p);
}

std::vector<std::string> TerminalLines(const RunResult& r) {
  std::vector<std::string> out;
  for (const TraceEvent& e : r.trace.events()) {
    if (e.kind == TraceEventKind::kTerminalOut) out.push_back(e.payload);
  }
  return out;
}

TEST(InterpreterEdgeTest, DivisionByZeroIsARuntimeError) {
  Database db = MakeCompanyDatabase();
  Result<RunResult> r = TryRun(&db, R"(
PROGRAM T.
  LET X = 1 / 0.
END PROGRAM.)");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(InterpreterEdgeTest, NullArithmeticPropagatesNull) {
  Database db = MakeCompanyDatabase();
  Result<RunResult> r = TryRun(&db, R"(
PROGRAM T.
  LET X = UNSET + 1.
  IF X IS NULL THEN DISPLAY 'NULL'. END-IF.
END PROGRAM.)");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(TerminalLines(*r), (std::vector<std::string>{"NULL"}));
}

TEST(InterpreterEdgeTest, NonNumericArithmeticFails) {
  Database db = MakeCompanyDatabase();
  Result<RunResult> r = TryRun(&db, R"(
PROGRAM T.
  LET X = 'A' + 1.
END PROGRAM.)");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kTypeError);
}

TEST(InterpreterEdgeTest, AcceptPastEofYieldsNull) {
  Database db = MakeCompanyDatabase();
  IoScript script;
  script.terminal_input = {"ONE"};
  Result<RunResult> r = TryRun(&db, R"(
PROGRAM T.
  ACCEPT A.
  ACCEPT B.
  IF B IS NULL THEN DISPLAY 'EOF'. END-IF.
END PROGRAM.)",
                               script);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(TerminalLines(*r), (std::vector<std::string>{"EOF"}));
}

TEST(InterpreterEdgeTest, ReadFromUnknownFileYieldsNull) {
  Database db = MakeCompanyDatabase();
  Result<RunResult> r = TryRun(&db, R"(
PROGRAM T.
  READ NOFILE INTO X.
  IF X IS NULL THEN DISPLAY 'EMPTY'. END-IF.
END PROGRAM.)");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(TerminalLines(*r), (std::vector<std::string>{"EMPTY"}));
}

TEST(InterpreterEdgeTest, GetFromUnknownCursorFails) {
  Database db = MakeCompanyDatabase();
  Result<RunResult> r = TryRun(&db, R"(
PROGRAM T.
  GET EMP-NAME OF NOPE INTO X.
END PROGRAM.)");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(InterpreterEdgeTest, CursorOutOfScopeAfterLoop) {
  Database db = MakeCompanyDatabase();
  Result<RunResult> r = TryRun(&db, R"(
PROGRAM T.
  FOR EACH E IN FIND(EMP: SYSTEM, ALL-DIV, DIV, DIV-EMP, EMP) DO
    GET EMP-NAME OF E INTO N.
  END-FOR.
  GET EMP-NAME OF E INTO N.
END PROGRAM.)");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(InterpreterEdgeTest, NestedCursorShadowingRestores) {
  Database db = MakeCompanyDatabase();
  Result<RunResult> r = TryRun(&db, R"(
PROGRAM T.
  FOR EACH X IN FIND(DIV: SYSTEM, ALL-DIV, DIV(DIV-NAME = 'MACHINERY')) DO
    FOR EACH X IN FIND(EMP: X, DIV-EMP, EMP(AGE > 40)) DO
      GET EMP-NAME OF X INTO N.
      DISPLAY N.
    END-FOR.
    GET DIV-NAME OF X INTO D.
    DISPLAY D.
  END-FOR.
END PROGRAM.)");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(TerminalLines(*r),
            (std::vector<std::string>{"CLARK", "MACHINERY"}));
}

TEST(InterpreterEdgeTest, MarylandStoreConstraintFailureSetsStatus) {
  Database db = MakeCompanyDatabase();
  // Duplicate EMP-NAME within the MACHINERY occurrence: set-key violation.
  Result<RunResult> r = TryRun(&db, R"(
PROGRAM T.
  STORE EMP (EMP-NAME = 'ADAMS') IN DIV-EMP WHERE (DIV-NAME = 'MACHINERY').
  DISPLAY DB-STATUS.
END PROGRAM.)");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(TerminalLines(*r), (std::vector<std::string>{"0326"}));
}

TEST(InterpreterEdgeTest, ModifyConstraintFailureSetsStatusAndContinues) {
  Database db = MakeCompanyDatabase();
  Result<RunResult> r = TryRun(&db, R"(
PROGRAM T.
  FOR EACH E IN FIND(EMP: SYSTEM, ALL-DIV, DIV(DIV-NAME = 'MACHINERY'),
      DIV-EMP, EMP(EMP-NAME = 'ADAMS')) DO
    MODIFY E SET (EMP-NAME = 'BAKER').
    DISPLAY DB-STATUS.
  END-FOR.
  DISPLAY 'STILL RUNNING'.
END PROGRAM.)");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(TerminalLines(*r),
            (std::vector<std::string>{"0326", "STILL RUNNING"}));
}

TEST(InterpreterEdgeTest, DeleteBlockedByMandatoryMembersSetsStatus) {
  Database db = MakeCompanyDatabase();
  Result<RunResult> r = TryRun(&db, R"(
PROGRAM T.
  FOR EACH D IN FIND(DIV: SYSTEM, ALL-DIV, DIV(DIV-NAME = 'MACHINERY')) DO
    DELETE D.
    DISPLAY DB-STATUS.
  END-FOR.
END PROGRAM.)");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(TerminalLines(*r), (std::vector<std::string>{"0326"}));
  EXPECT_EQ(db.AllOfType("DIV").size(), 2u);
}

TEST(InterpreterEdgeTest, NavEraseClearsSetCurrencyEndingScan) {
  // The currency quirk: after ERASE the set currency is gone, so the next
  // FIND FIRST reports no current occurrence — exactly the kind of
  // behaviour section 3.2 says conversion systems must understand.
  Database db = MakeCompanyDatabase();
  Result<RunResult> r = TryRun(&db, R"(
PROGRAM T.
  FIND ANY DIV (DIV-NAME = 'MACHINERY').
  FIND FIRST EMP WITHIN DIV-EMP.
  WHILE DB-STATUS = '0000' DO
    ERASE.
    FIND FIRST EMP WITHIN DIV-EMP.
  END-WHILE.
  DISPLAY 'DONE'.
END PROGRAM.)");
  ASSERT_TRUE(r.ok()) << r.status();
  // Only the first employee is erased before currency is lost.
  EXPECT_EQ(db.AllOfType("EMP").size(), 3u);
}

TEST(InterpreterEdgeTest, RetrieveSnapshotSurvivesMutation) {
  Database db = MakeCompanyDatabase();
  Result<RunResult> r = TryRun(&db, R"(
PROGRAM T.
  RETRIEVE C = FIND(EMP: SYSTEM, ALL-DIV, DIV, DIV-EMP, EMP).
  STORE EMP (EMP-NAME = 'EVANS') IN DIV-EMP WHERE (DIV-NAME = 'TEXTILES').
  LET COUNT = 0.
  FOR EACH E IN COLLECTION C DO
    LET COUNT = COUNT + 1.
  END-FOR.
  DISPLAY COUNT.
END PROGRAM.)");
  ASSERT_TRUE(r.ok()) << r.status();
  // The snapshot holds the four original employees, not the new fifth.
  EXPECT_EQ(TerminalLines(*r), (std::vector<std::string>{"4"}));
}

TEST(InterpreterEdgeTest, WhileConditionErrorPropagates) {
  Database db = MakeCompanyDatabase();
  Result<RunResult> r = TryRun(&db, R"(
PROGRAM T.
  WHILE 'X' + 1 > 0 DO
    DISPLAY 'NEVER'.
  END-WHILE.
END PROGRAM.)");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kTypeError);
}

TEST(InterpreterEdgeTest, UnknownRecordTypeInFindFails) {
  Database db = MakeCompanyDatabase();
  Result<RunResult> r = TryRun(&db, R"(
PROGRAM T.
  FOR EACH E IN FIND(GHOST: SYSTEM, ALL-DIV, GHOST) DO
    DISPLAY 'X'.
  END-FOR.
END PROGRAM.)");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(InterpreterEdgeTest, ConcatCoercesEverything) {
  Database db = MakeCompanyDatabase();
  Result<RunResult> r = TryRun(&db, R"(
PROGRAM T.
  DISPLAY 1 & '-' & 2.5 & '-' & UNSET.
END PROGRAM.)");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(TerminalLines(*r), (std::vector<std::string>{"1-2.5-<null>"}));
}

}  // namespace
}  // namespace dbpc
