#include "lang/parser.h"

#include <gtest/gtest.h>

namespace dbpc {
namespace {

Program MustParse(const std::string& text) {
  Result<Program> r = ParseProgram(text);
  EXPECT_TRUE(r.ok()) << r.status() << "\n" << text;
  return r.ok() ? *r : Program();
}

TEST(ParserTest, EmptyProgram) {
  Program p = MustParse("PROGRAM EMPTY. END PROGRAM.");
  EXPECT_EQ(p.name, "EMPTY");
  EXPECT_TRUE(p.body.empty());
}

TEST(ParserTest, LetAndDisplay) {
  Program p = MustParse(R"(
PROGRAM T.
  LET X = 1 + 2 * 3.
  DISPLAY 'X=', X.
END PROGRAM.
)");
  ASSERT_EQ(p.body.size(), 2u);
  EXPECT_EQ(p.body[0].kind, StmtKind::kLet);
  EXPECT_EQ(p.body[1].kind, StmtKind::kDisplay);
  EXPECT_EQ(p.body[1].exprs.size(), 2u);
}

TEST(ParserTest, PrecedenceMultiplicationBindsTighter) {
  Program p = MustParse("PROGRAM T. LET X = 1 + 2 * 3. END PROGRAM.");
  const HostExpr& e = p.body[0].exprs[0];
  ASSERT_EQ(e.kind, HostExpr::Kind::kBinary);
  EXPECT_EQ(e.op, '+');
  EXPECT_EQ(e.children[1].op, '*');
}

TEST(ParserTest, IfElseNesting) {
  Program p = MustParse(R"(
PROGRAM T.
  IF X > 1 AND Y < 2 THEN
    DISPLAY 'A'.
    IF Z = 3 THEN DISPLAY 'B'. END-IF.
  ELSE
    DISPLAY 'C'.
  END-IF.
END PROGRAM.
)");
  ASSERT_EQ(p.body.size(), 1u);
  const Stmt& s = p.body[0];
  EXPECT_EQ(s.kind, StmtKind::kIf);
  EXPECT_EQ(s.cond->kind, HostCond::Kind::kAnd);
  ASSERT_EQ(s.body.size(), 2u);
  EXPECT_EQ(s.body[1].kind, StmtKind::kIf);
  ASSERT_EQ(s.else_body.size(), 1u);
}

TEST(ParserTest, WhileLoop) {
  Program p = MustParse(R"(
PROGRAM T.
  LET I = 0.
  WHILE I < 10 DO
    LET I = I + 1.
  END-WHILE.
END PROGRAM.
)");
  EXPECT_EQ(p.body[1].kind, StmtKind::kWhile);
  EXPECT_EQ(p.body[1].body.size(), 1u);
}

TEST(ParserTest, ForEachOverFind) {
  Program p = MustParse(R"(
PROGRAM T.
  FOR EACH E IN FIND(EMP: SYSTEM, ALL-DIV, DIV, DIV-EMP, EMP(AGE > 30)) DO
    GET EMP-NAME OF E INTO N.
    DISPLAY N.
  END-FOR.
END PROGRAM.
)");
  const Stmt& s = p.body[0];
  EXPECT_EQ(s.kind, StmtKind::kForEach);
  EXPECT_EQ(s.cursor, "E");
  ASSERT_TRUE(s.retrieval.has_value());
  EXPECT_EQ(s.retrieval->query.target_type, "EMP");
  EXPECT_EQ(s.body[0].kind, StmtKind::kGetField);
}

TEST(ParserTest, ForEachOverSortedFind) {
  Program p = MustParse(R"(
PROGRAM T.
  FOR EACH E IN SORT(FIND(EMP: SYSTEM, ALL-DIV, DIV, DIV-EMP, EMP)) ON (EMP-NAME) DO
    DISPLAY 'X'.
  END-FOR.
END PROGRAM.
)");
  EXPECT_EQ(p.body[0].retrieval->sort_on,
            (std::vector<std::string>{"EMP-NAME"}));
}

TEST(ParserTest, ForEachOverCollection) {
  Program p = MustParse(R"(
PROGRAM T.
  RETRIEVE C = FIND(DIV: SYSTEM, ALL-DIV, DIV).
  FOR EACH D IN COLLECTION C DO
    DISPLAY 'X'.
  END-FOR.
END PROGRAM.
)");
  EXPECT_EQ(p.body[0].kind, StmtKind::kRetrieve);
  EXPECT_EQ(p.body[1].collection_var, "C");
  EXPECT_FALSE(p.body[1].retrieval.has_value());
}

TEST(ParserTest, MarylandStoreWithOwnerSelection) {
  Program p = MustParse(R"(
PROGRAM T.
  STORE EMP (EMP-NAME = 'EVANS', AGE = 41)
    IN DIV-EMP WHERE (DIV-NAME = 'MACHINERY').
END PROGRAM.
)");
  const Stmt& s = p.body[0];
  EXPECT_EQ(s.kind, StmtKind::kStore);
  EXPECT_EQ(s.record_type, "EMP");
  ASSERT_EQ(s.assignments.size(), 2u);
  ASSERT_EQ(s.owners.size(), 1u);
  EXPECT_EQ(s.owners[0].set_name, "DIV-EMP");
}

TEST(ParserTest, NavigationalStatements) {
  Program p = MustParse(R"(
PROGRAM T.
  FIND ANY DIV (DIV-NAME = 'MACHINERY').
  FIND FIRST EMP WITHIN DIV-EMP.
  WHILE DB-STATUS = '0000' DO
    GET EMP-NAME INTO N.
    DISPLAY N.
    FIND NEXT EMP WITHIN DIV-EMP.
  END-WHILE.
  FIND OWNER WITHIN DIV-EMP.
  STORE EMP (EMP-NAME = 'NEW') USING CURRENCY.
  MODIFY SET (AGE = 1).
  ERASE.
  CONNECT DIV-EMP.
  DISCONNECT DIV-EMP.
END PROGRAM.
)");
  EXPECT_EQ(p.body[0].kind, StmtKind::kNavFind);
  EXPECT_EQ(p.body[0].nav_find->mode, NavFind::Mode::kAny);
  EXPECT_TRUE(p.body[0].nav_find->pred.has_value());
  EXPECT_EQ(p.body[1].nav_find->mode, NavFind::Mode::kFirst);
  EXPECT_EQ(p.body[2].kind, StmtKind::kWhile);
  EXPECT_EQ(p.body[2].body[0].kind, StmtKind::kNavGet);
  EXPECT_EQ(p.body[3].nav_find->mode, NavFind::Mode::kOwner);
  EXPECT_EQ(p.body[4].kind, StmtKind::kNavStore);
  EXPECT_EQ(p.body[5].kind, StmtKind::kNavModify);
  EXPECT_EQ(p.body[6].kind, StmtKind::kNavErase);
  EXPECT_EQ(p.body[7].kind, StmtKind::kConnect);
  EXPECT_EQ(p.body[8].kind, StmtKind::kDisconnect);
}

TEST(ParserTest, FindNextUsing) {
  Program p = MustParse(R"(
PROGRAM T.
  FIND NEXT EMP WITHIN ED USING (YEAR-OF-SERVICE = 3).
END PROGRAM.
)");
  ASSERT_TRUE(p.body[0].nav_find->pred.has_value());
  EXPECT_EQ(p.body[0].nav_find->set_name, "ED");
}

TEST(ParserTest, ReadWriteAcceptStatements) {
  Program p = MustParse(R"(
PROGRAM T.
  ACCEPT NAME.
  READ INFILE INTO REC.
  WRITE REPORT FROM 'ROW: ', REC.
END PROGRAM.
)");
  EXPECT_EQ(p.body[0].kind, StmtKind::kAccept);
  EXPECT_EQ(p.body[1].kind, StmtKind::kRead);
  EXPECT_EQ(p.body[1].file, "INFILE");
  EXPECT_EQ(p.body[2].kind, StmtKind::kWrite);
}

TEST(ParserTest, ModifyDeleteCursor) {
  Program p = MustParse(R"(
PROGRAM T.
  FOR EACH E IN FIND(EMP: SYSTEM, ALL-DIV, DIV, DIV-EMP, EMP) DO
    MODIFY E SET (AGE = 99).
    DELETE E.
  END-FOR.
END PROGRAM.
)");
  EXPECT_EQ(p.body[0].body[0].kind, StmtKind::kModify);
  EXPECT_EQ(p.body[0].body[0].cursor, "E");
  EXPECT_EQ(p.body[0].body[1].kind, StmtKind::kDelete);
}

TEST(ParserTest, CallDmlStatement) {
  Program p = MustParse(R"(
PROGRAM T.
  LET V = 'FIND'.
  CALL DML(V, EMP).
END PROGRAM.
)");
  EXPECT_EQ(p.body[1].kind, StmtKind::kCallDml);
  EXPECT_EQ(p.body[1].verb_var, "V");
  EXPECT_EQ(p.body[1].record_type, "EMP");
}

TEST(ParserTest, ParenthesizedConditionVsExpression) {
  // Both parenthesized conditions and parenthesized expressions must parse.
  Program p = MustParse(R"(
PROGRAM T.
  IF (A = 1 OR B = 2) AND C = 3 THEN DISPLAY 'Y'. END-IF.
  IF (A + 1) > 2 THEN DISPLAY 'Z'. END-IF.
END PROGRAM.
)");
  EXPECT_EQ(p.body[0].cond->kind, HostCond::Kind::kAnd);
  EXPECT_EQ(p.body[1].cond->kind, HostCond::Kind::kCompare);
}

TEST(ParserTest, StopStatement) {
  Program p = MustParse("PROGRAM T. STOP. DISPLAY 'UNREACHED'. END PROGRAM.");
  EXPECT_EQ(p.body[0].kind, StmtKind::kStop);
}

TEST(ParserTest, UnknownStatementFails) {
  Result<Program> r = ParseProgram("PROGRAM T. FROBNICATE X. END PROGRAM.");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
}

TEST(ParserTest, UnterminatedBlockFails) {
  EXPECT_FALSE(ParseProgram("PROGRAM T. WHILE A = 1 DO DISPLAY 'X'.").ok());
}

TEST(ParserTest, MissingPeriodFails) {
  EXPECT_FALSE(ParseProgram("PROGRAM T. DISPLAY 'X' END PROGRAM.").ok());
}

// Round-trip property: ToSource output reparses to the identical AST.
class RoundTripTest : public ::testing::TestWithParam<const char*> {};

TEST_P(RoundTripTest, SourceRoundTrips) {
  Program p = MustParse(GetParam());
  Result<Program> again = ParseProgram(p.ToSource());
  ASSERT_TRUE(again.ok()) << again.status() << "\n" << p.ToSource();
  EXPECT_EQ(p, *again) << p.ToSource();
}

INSTANTIATE_TEST_SUITE_P(
    Programs, RoundTripTest,
    ::testing::Values(
        "PROGRAM A. END PROGRAM.",
        "PROGRAM B. LET X = 1 + 2 * 3 - 4 / 2. DISPLAY X & 'END'. END PROGRAM.",
        R"(PROGRAM C.
  FOR EACH E IN SORT(FIND(EMP: SYSTEM, ALL-DIV, DIV(DIV-NAME = 'M'), DIV-EMP,
      EMP(AGE > 30 AND DEPT-NAME = :D))) ON (EMP-NAME) DO
    GET EMP-NAME OF E INTO N.
    WRITE OUT FROM N.
  END-FOR.
END PROGRAM.)",
        R"(PROGRAM D.
  FIND ANY DIV (DIV-NAME = 'M').
  FIND FIRST EMP WITHIN DIV-EMP USING (AGE >= 30).
  WHILE DB-STATUS = '0000' DO
    GET EMP-NAME INTO N.
    DISPLAY N.
    FIND NEXT EMP WITHIN DIV-EMP USING (AGE >= 30).
  END-WHILE.
END PROGRAM.)",
        R"(PROGRAM E.
  STORE EMP (EMP-NAME = 'X', AGE = 1) IN DIV-EMP WHERE (DIV-NAME = 'M').
  STORE DIV (DIV-NAME = 'N').
  STORE EMP (EMP-NAME = 'Y') USING CURRENCY.
END PROGRAM.)",
        R"(PROGRAM F.
  IF A IS NULL THEN DISPLAY 'N'. ELSE DISPLAY 'S'. END-IF.
  IF NOT (A = 1) THEN STOP. END-IF.
END PROGRAM.)",
        R"(PROGRAM G.
  RETRIEVE C = FIND(DIV: SYSTEM, ALL-DIV, DIV).
  FOR EACH D IN COLLECTION C DO
    FOR EACH E IN FIND(EMP: C, DIV-EMP, EMP) DO
      DELETE E.
    END-FOR.
  END-FOR.
END PROGRAM.)",
        R"(PROGRAM H.
  ACCEPT V.
  CALL DML(V, EMP).
  CONNECT DIV-EMP.
  DISCONNECT DIV-EMP.
  ERASE.
END PROGRAM.)"));

}  // namespace
}  // namespace dbpc
