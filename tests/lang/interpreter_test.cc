#include "lang/interpreter.h"

#include <gtest/gtest.h>

#include "lang/parser.h"
#include "testing/fixtures.h"

namespace dbpc {
namespace {

using testing::MakeCompanyDatabase;

RunResult MustRun(Database* db, const std::string& source,
                  IoScript script = {}) {
  Result<Program> p = ParseProgram(source);
  EXPECT_TRUE(p.ok()) << p.status();
  Interpreter interp(db, std::move(script));
  Result<RunResult> r = interp.Run(*p);
  EXPECT_TRUE(r.ok()) << r.status();
  return r.ok() ? *r : RunResult();
}

std::vector<std::string> TerminalLines(const RunResult& r) {
  std::vector<std::string> out;
  for (const TraceEvent& e : r.trace.events()) {
    if (e.kind == TraceEventKind::kTerminalOut) out.push_back(e.payload);
  }
  return out;
}

TEST(InterpreterTest, ArithmeticAndDisplay) {
  Database db = MakeCompanyDatabase();
  RunResult r = MustRun(&db, R"(
PROGRAM T.
  LET X = 2 + 3 * 4.
  DISPLAY 'X=', X.
  DISPLAY 10 / 4.
  DISPLAY 10.0 / 4.
END PROGRAM.
)");
  EXPECT_EQ(TerminalLines(r),
            (std::vector<std::string>{"X=14", "2", "2.5"}));
}

TEST(InterpreterTest, StringConcat) {
  Database db = MakeCompanyDatabase();
  RunResult r = MustRun(&db, "PROGRAM T. DISPLAY 'A' & 'B' & 1. END PROGRAM.");
  EXPECT_EQ(TerminalLines(r), (std::vector<std::string>{"AB1"}));
}

TEST(InterpreterTest, WhileAndIf) {
  Database db = MakeCompanyDatabase();
  RunResult r = MustRun(&db, R"(
PROGRAM T.
  LET I = 0.
  WHILE I < 5 DO
    LET I = I + 1.
    IF I = 3 THEN DISPLAY 'THREE'. END-IF.
  END-WHILE.
  DISPLAY I.
END PROGRAM.
)");
  EXPECT_EQ(TerminalLines(r), (std::vector<std::string>{"THREE", "5"}));
}

TEST(InterpreterTest, UndefinedVariableReadsNull) {
  Database db = MakeCompanyDatabase();
  RunResult r = MustRun(&db, R"(
PROGRAM T.
  IF NOWHERE IS NULL THEN DISPLAY 'NULL'. END-IF.
END PROGRAM.
)");
  EXPECT_EQ(TerminalLines(r), (std::vector<std::string>{"NULL"}));
}

TEST(InterpreterTest, ForEachOverFindReportsInOrder) {
  Database db = MakeCompanyDatabase();
  RunResult r = MustRun(&db, R"(
PROGRAM T.
  FOR EACH E IN FIND(EMP: SYSTEM, ALL-DIV, DIV, DIV-EMP, EMP(AGE > 30)) DO
    GET EMP-NAME OF E INTO N.
    DISPLAY N.
  END-FOR.
END PROGRAM.
)");
  EXPECT_EQ(TerminalLines(r),
            (std::vector<std::string>{"ADAMS", "CLARK", "DAVIS"}));
}

TEST(InterpreterTest, AcceptFeedsHostVariable) {
  Database db = MakeCompanyDatabase();
  IoScript script;
  script.terminal_input = {"MACHINERY"};
  RunResult r = MustRun(&db, R"(
PROGRAM T.
  ACCEPT D.
  FOR EACH E IN FIND(EMP: SYSTEM, ALL-DIV, DIV(DIV-NAME = :D), DIV-EMP, EMP) DO
    GET EMP-NAME OF E INTO N.
    DISPLAY N.
  END-FOR.
END PROGRAM.
)",
                        script);
  EXPECT_EQ(TerminalLines(r),
            (std::vector<std::string>{"ADAMS", "BAKER", "CLARK"}));
  EXPECT_EQ(r.trace.events()[0].kind, TraceEventKind::kTerminalIn);
}

TEST(InterpreterTest, ReadFileUntilEof) {
  Database db = MakeCompanyDatabase();
  IoScript script;
  script.input_files["INFILE"] = {"A", "B"};
  RunResult r = MustRun(&db, R"(
PROGRAM T.
  READ INFILE INTO X.
  WHILE X IS NOT NULL DO
    WRITE OUTFILE FROM 'GOT ', X.
    READ INFILE INTO X.
  END-WHILE.
END PROGRAM.
)",
                        script);
  size_t writes = 0;
  for (const TraceEvent& e : r.trace.events()) {
    if (e.kind == TraceEventKind::kFileWrite) {
      ++writes;
      EXPECT_EQ(e.channel, "OUTFILE");
    }
  }
  EXPECT_EQ(writes, 2u);
}

TEST(InterpreterTest, MarylandStoreSelectsOwner) {
  Database db = MakeCompanyDatabase();
  MustRun(&db, R"(
PROGRAM T.
  STORE EMP (EMP-NAME = 'EVANS', DEPT-NAME = 'SALES', AGE = 29)
    IN DIV-EMP WHERE (DIV-NAME = 'TEXTILES').
  DISPLAY DB-STATUS.
END PROGRAM.
)");
  Predicate p = Predicate::Compare("EMP-NAME", CompareOp::kEq,
                                   Operand::Literal(Value::String("EVANS")));
  Result<std::vector<RecordId>> evans =
      db.SelectWhere("EMP", p, EmptyHostEnv());
  ASSERT_TRUE(evans.ok());
  ASSERT_EQ(evans->size(), 1u);
  EXPECT_EQ(db.GetField((*evans)[0], "DIV-NAME")->as_string(), "TEXTILES");
}

TEST(InterpreterTest, MarylandStoreAmbiguousOwnerSetsStatus) {
  Database db = MakeCompanyDatabase();
  RunResult r = MustRun(&db, R"(
PROGRAM T.
  STORE EMP (EMP-NAME = 'EVANS') IN DIV-EMP WHERE (DIV-NAME <> 'NOPE').
  DISPLAY DB-STATUS.
END PROGRAM.
)");
  EXPECT_EQ(TerminalLines(r), (std::vector<std::string>{"0326"}));
  EXPECT_TRUE(db.SelectWhere("EMP",
                             Predicate::Compare(
                                 "EMP-NAME", CompareOp::kEq,
                                 Operand::Literal(Value::String("EVANS"))),
                             EmptyHostEnv())
                  ->empty());
}

TEST(InterpreterTest, ModifyAndDeleteThroughCursor) {
  Database db = MakeCompanyDatabase();
  RunResult r = MustRun(&db, R"(
PROGRAM T.
  FOR EACH E IN FIND(EMP: SYSTEM, ALL-DIV, DIV, DIV-EMP, EMP(AGE < 30)) DO
    DELETE E.
  END-FOR.
  FOR EACH E IN FIND(EMP: SYSTEM, ALL-DIV, DIV, DIV-EMP, EMP) DO
    MODIFY E SET (AGE = 0).
    GET EMP-NAME OF E INTO N.
    DISPLAY N.
  END-FOR.
END PROGRAM.
)");
  EXPECT_EQ(TerminalLines(r),
            (std::vector<std::string>{"ADAMS", "CLARK", "DAVIS"}));
  for (RecordId id : db.AllOfType("EMP")) {
    EXPECT_EQ(db.GetField(id, "AGE")->as_int(), 0);
  }
}

TEST(InterpreterTest, NavigationalLoopMatchesMarylandLoop) {
  Database db = MakeCompanyDatabase();
  RunResult nav = MustRun(&db, R"(
PROGRAM NAV.
  FIND ANY DIV (DIV-NAME = 'MACHINERY').
  FIND FIRST EMP WITHIN DIV-EMP.
  WHILE DB-STATUS = '0000' DO
    GET EMP-NAME INTO N.
    DISPLAY N.
    FIND NEXT EMP WITHIN DIV-EMP.
  END-WHILE.
END PROGRAM.
)");
  RunResult high = MustRun(&db, R"(
PROGRAM HIGH.
  FOR EACH E IN FIND(EMP: SYSTEM, ALL-DIV, DIV(DIV-NAME = 'MACHINERY'), DIV-EMP, EMP) DO
    GET EMP-NAME OF E INTO N.
    DISPLAY N.
  END-FOR.
END PROGRAM.
)");
  EXPECT_EQ(nav.trace, high.trace);
}

TEST(InterpreterTest, NavigationalStoreUsesCurrency) {
  Database db = MakeCompanyDatabase();
  RunResult r = MustRun(&db, R"(
PROGRAM T.
  FIND ANY DIV (DIV-NAME = 'TEXTILES').
  STORE EMP (EMP-NAME = 'EVANS', AGE = 61) USING CURRENCY.
  DISPLAY DB-STATUS.
  FIND OWNER WITHIN DIV-EMP.
  GET DIV-NAME INTO D.
  DISPLAY D.
END PROGRAM.
)");
  EXPECT_EQ(TerminalLines(r),
            (std::vector<std::string>{"0000", "TEXTILES"}));
}

TEST(InterpreterTest, CallDmlDispatchesOnRuntimeVerb) {
  Database db = MakeCompanyDatabase();
  IoScript script;
  script.terminal_input = {"ERASE"};
  size_t before = db.AllOfType("EMP").size();
  RunResult r = MustRun(&db, R"(
PROGRAM T.
  ACCEPT V.
  CALL DML(V, EMP).
  DISPLAY DB-STATUS.
END PROGRAM.
)",
                        script);
  (void)r;
  EXPECT_EQ(db.AllOfType("EMP").size(), before - 1);
}

TEST(InterpreterTest, StopEndsProgramEarly) {
  Database db = MakeCompanyDatabase();
  RunResult r = MustRun(&db, R"(
PROGRAM T.
  DISPLAY 'A'.
  STOP.
  DISPLAY 'B'.
END PROGRAM.
)");
  EXPECT_EQ(TerminalLines(r), (std::vector<std::string>{"A"}));
  EXPECT_TRUE(r.completed);
}

TEST(InterpreterTest, StepLimitGuardsInfiniteLoops) {
  Database db = MakeCompanyDatabase();
  Program p = *ParseProgram(R"(
PROGRAM T.
  WHILE 1 = 1 DO
    LET X = 1.
  END-WHILE.
END PROGRAM.
)");
  RunOptions opts;
  opts.max_steps = 1000;
  Interpreter interp(&db, IoScript(), opts);
  Result<RunResult> r = interp.Run(p);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

TEST(InterpreterTest, StatusCodeDependenceObservable) {
  // The paper's section 3.2: programs may branch on DB-STATUS values.
  Database db = MakeCompanyDatabase();
  RunResult r = MustRun(&db, R"(
PROGRAM T.
  FIND ANY EMP (EMP-NAME = 'NOBODY').
  IF DB-STATUS = '0326' THEN DISPLAY 'MISSING'. END-IF.
END PROGRAM.
)");
  EXPECT_EQ(TerminalLines(r), (std::vector<std::string>{"MISSING"}));
}

TEST(InterpreterTest, DeletedRecordsSkippedDuringIteration) {
  Database db = MakeCompanyDatabase();
  // Deleting CLARK while iterating must not break later iterations.
  RunResult r = MustRun(&db, R"(
PROGRAM T.
  RETRIEVE C = FIND(EMP: SYSTEM, ALL-DIV, DIV, DIV-EMP, EMP).
  FOR EACH E IN FIND(EMP: SYSTEM, ALL-DIV, DIV, DIV-EMP, EMP(EMP-NAME = 'CLARK')) DO
    DELETE E.
  END-FOR.
  FOR EACH E IN COLLECTION C DO
    GET EMP-NAME OF E INTO N.
    DISPLAY N.
  END-FOR.
END PROGRAM.
)");
  EXPECT_EQ(TerminalLines(r),
            (std::vector<std::string>{"ADAMS", "BAKER", "DAVIS"}));
}

TEST(InterpreterTest, RunsAreIndependent) {
  Database db = MakeCompanyDatabase();
  Program p = *ParseProgram(R"(
PROGRAM T.
  IF X IS NULL THEN DISPLAY 'FRESH'. END-IF.
  LET X = 1.
END PROGRAM.
)");
  Interpreter interp(&db, IoScript());
  RunResult a = *interp.Run(p);
  RunResult b = *interp.Run(p);
  EXPECT_EQ(a.trace, b.trace);
}

}  // namespace
}  // namespace dbpc
