#include "common/span.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

namespace dbpc {
namespace {

TEST(SpanTest, DisabledContextIsANoOp) {
  SpanContext none;
  EXPECT_FALSE(none.enabled());
  SpanContext child = none.StartChild("child");
  EXPECT_FALSE(child.enabled());
  none.SetAttribute("k", "v");
  none.AddCounter("c", 1);
  none.End();  // must not crash
}

TEST(SpanTest, TextTreeNestsChildrenWithAttributesAndCounters) {
  SpanCollector spans;
  SpanContext root = spans.StartRoot("conversion");
  root.SetAttribute("program", "SALES-RPT");
  SpanContext stage = root.StartChild("program_analyzer");
  stage.AddCounter("issues", 2);
  stage.AddCounter("issues", 3);  // accumulates
  stage.End();
  root.End();

  std::string text = spans.ToText(/*with_timing=*/false);
  EXPECT_EQ(text,
            "conversion program=SALES-RPT\n"
            "  program_analyzer #issues=5\n");
}

TEST(SpanTest, ZeroDurationSpanExports) {
  SpanCollector spans;
  SpanContext root = spans.StartRoot("instant");
  root.End();
  std::string text = spans.ToText();
  EXPECT_NE(text.find("instant ("), std::string::npos);
  EXPECT_NE(text.find("us)"), std::string::npos);
  std::string json = spans.ToChromeTraceJson();
  EXPECT_NE(json.find("\"name\": \"instant\""), std::string::npos);
}

TEST(SpanTest, EndIsIdempotent) {
  SpanCollector spans;
  SpanContext root = spans.StartRoot("r");
  root.End();
  root.End();
  EXPECT_EQ(spans.ToText(false), "r\n");
}

TEST(SpanTest, UnclosedChildrenAreForceClosedAndMarkedAtRootEnd) {
  SpanCollector spans;
  SpanContext root = spans.StartRoot("root");
  SpanContext open_child = root.StartChild("left-open");
  SpanContext open_grandchild = open_child.StartChild("also-open");
  (void)open_grandchild;
  root.End();  // closes both descendants

  std::string text = spans.ToText(false);
  EXPECT_EQ(text,
            "root\n"
            "  left-open auto-closed=true\n"
            "    also-open auto-closed=true\n");
  // Further mutation of a force-closed child must not reopen it.
  open_child.End();
  EXPECT_EQ(spans.ToText(false), text);
}

TEST(SpanTest, ChromeTraceEscapesAttributeValuesAndNames) {
  SpanCollector spans;
  SpanContext root = spans.StartRoot("name with \"quotes\"");
  root.SetAttribute("note", "line1\nline2\\tail");
  root.AddCounter("ops", 7);
  root.End();

  std::string json = spans.ToChromeTraceJson();
  EXPECT_NE(json.find("name with \\\"quotes\\\""), std::string::npos);
  EXPECT_NE(json.find("line1\\nline2\\\\tail"), std::string::npos);
  EXPECT_NE(json.find("\"ops\": 7"), std::string::npos);
  // No raw control bytes survive into the attribute value.
  EXPECT_EQ(json.find("line1\nline2"), std::string::npos);
}

TEST(SpanTest, ChromeTraceIsWellFormedCompleteEvents) {
  SpanCollector spans;
  SpanContext root = spans.StartRoot("pipeline", 3);
  root.StartChild("stage").End();
  root.End();
  std::string json = spans.ToChromeTraceJson();
  EXPECT_NE(json.find("{\"traceEvents\": ["), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"tid\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"ts\": "), std::string::npos);
  EXPECT_NE(json.find("\"dur\": "), std::string::npos);
}

TEST(SpanTest, RootsExportInSequenceOrderNotRegistrationOrder) {
  SpanCollector spans;
  spans.StartRoot("second", 2).End();
  spans.StartRoot("first", 1).End();
  spans.StartRoot("setup", 0).End();
  EXPECT_EQ(spans.ToText(false), "setup\nfirst\nsecond\n");
}

TEST(SpanTest, ConcurrentRootsExportDeterministically) {
  std::string baseline;
  for (int round = 0; round < 2; ++round) {
    SpanCollector spans;
    std::vector<std::thread> workers;
    for (int i = 0; i < 8; ++i) {
      workers.emplace_back([&spans, i] {
        SpanContext root = spans.StartRoot(
            "job-" + std::to_string(i), static_cast<uint64_t>(i));
        root.StartChild("work").End();
        root.End();
      });
    }
    for (std::thread& w : workers) w.join();
    ASSERT_EQ(spans.RootCount(), 8u);
    std::string text = spans.ToText(/*with_timing=*/false);
    if (round == 0) {
      baseline = text;
    } else {
      EXPECT_EQ(text, baseline);
    }
  }
  EXPECT_NE(baseline.find("job-0\n  work\n"), std::string::npos);
  EXPECT_LT(baseline.find("job-0"), baseline.find("job-7"));
}

}  // namespace
}  // namespace dbpc
