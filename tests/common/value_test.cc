#include "common/value.h"

#include <gtest/gtest.h>

namespace dbpc {
namespace {

TEST(ValueTest, DefaultIsNull) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_FALSE(v.is_int());
  EXPECT_EQ(v.ToDisplay(), "<null>");
  EXPECT_EQ(v.ToLiteral(), "NULL");
}

TEST(ValueTest, IntRoundTrip) {
  Value v = Value::Int(42);
  EXPECT_TRUE(v.is_int());
  EXPECT_EQ(v.as_int(), 42);
  EXPECT_EQ(v.ToDisplay(), "42");
  EXPECT_EQ(v.ToLiteral(), "42");
}

TEST(ValueTest, StringLiteralQuoting) {
  Value v = Value::String("O'BRIEN");
  EXPECT_EQ(v.ToDisplay(), "O'BRIEN");
  EXPECT_EQ(v.ToLiteral(), "'O''BRIEN'");
}

TEST(ValueTest, NumericViewWidensInt) {
  ASSERT_TRUE(Value::Int(7).ToNumeric().ok());
  EXPECT_DOUBLE_EQ(Value::Int(7).ToNumeric().value(), 7.0);
  EXPECT_FALSE(Value::String("x").ToNumeric().ok());
}

TEST(ValueTest, MatchesType) {
  EXPECT_TRUE(Value::Int(1).Matches(FieldType::kInt));
  EXPECT_FALSE(Value::Int(1).Matches(FieldType::kString));
  // Null matches every type (absence of a value).
  EXPECT_TRUE(Value::Null().Matches(FieldType::kInt));
  EXPECT_TRUE(Value::Null().Matches(FieldType::kString));
}

TEST(ValueTest, CoerceIntToDouble) {
  Result<Value> r = Value::Int(3).CoerceTo(FieldType::kDouble);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->is_double());
  EXPECT_DOUBLE_EQ(r->as_double(), 3.0);
}

TEST(ValueTest, CoerceDigitStringToInt) {
  Result<Value> r = Value::String("1978").CoerceTo(FieldType::kInt);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->as_int(), 1978);
}

TEST(ValueTest, CoerceNonDigitStringToIntFails) {
  EXPECT_FALSE(Value::String("12X").CoerceTo(FieldType::kInt).ok());
}

TEST(ValueTest, CoerceWholeDoubleToInt) {
  Result<Value> r = Value::Double(5.0).CoerceTo(FieldType::kInt);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->as_int(), 5);
  EXPECT_FALSE(Value::Double(5.5).CoerceTo(FieldType::kInt).ok());
}

TEST(ValueTest, CoerceAnythingToString) {
  Result<Value> r = Value::Int(12).CoerceTo(FieldType::kString);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->as_string(), "12");
}

TEST(ValueTest, NullCoercesToAnything) {
  ASSERT_TRUE(Value::Null().CoerceTo(FieldType::kInt).ok());
  EXPECT_TRUE(Value::Null().CoerceTo(FieldType::kInt)->is_null());
}

TEST(ValueTest, CompareOrdersNullFirst) {
  EXPECT_LT(Value::Null().Compare(Value::Int(0)), 0);
  EXPECT_EQ(Value::Null().Compare(Value::Null()), 0);
}

TEST(ValueTest, CompareIntAndDoubleNumerically) {
  EXPECT_EQ(Value::Int(2).Compare(Value::Double(2.0)), 0);
  EXPECT_LT(Value::Int(2).Compare(Value::Double(2.5)), 0);
  EXPECT_GT(Value::Double(3.1).Compare(Value::Int(3)), 0);
}

TEST(ValueTest, CompareStringsLexicographically) {
  EXPECT_LT(Value::String("ADAMS").Compare(Value::String("BAKER")), 0);
  EXPECT_EQ(Value::String("X") == Value::String("X"), true);
}

TEST(ValueTest, CrossTypeComparisonIsDeterministic) {
  // Numbers sort before strings (type rank), both directions agree.
  int a = Value::Int(5).Compare(Value::String("5"));
  int b = Value::String("5").Compare(Value::Int(5));
  EXPECT_EQ(a, -b);
  EXPECT_NE(a, 0);
}

TEST(FieldTypeTest, Names) {
  EXPECT_STREQ(FieldTypeName(FieldType::kInt), "INT");
  EXPECT_STREQ(FieldTypeName(FieldType::kDouble), "DOUBLE");
  EXPECT_STREQ(FieldTypeName(FieldType::kString), "STRING");
}

}  // namespace
}  // namespace dbpc
