#include "common/metrics.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace dbpc {
namespace {

TEST(CounterTest, IncrementsAndResets) {
  Counter counter;
  EXPECT_EQ(counter.Value(), 0u);
  counter.Increment();
  counter.Increment(41);
  EXPECT_EQ(counter.Value(), 42u);
  counter.Reset();
  EXPECT_EQ(counter.Value(), 0u);
}

TEST(HistogramTest, EmptyHistogramIsAllZero) {
  Histogram h;
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_EQ(h.SumMicros(), 0u);
  EXPECT_EQ(h.MinMicros(), 0u);
  EXPECT_EQ(h.MaxMicros(), 0u);
  EXPECT_EQ(h.MeanMicros(), 0.0);
  EXPECT_EQ(h.PercentileMicros(50), 0u);
}

TEST(HistogramTest, RecordsSummaryStatistics) {
  Histogram h;
  h.Record(1);
  h.Record(10);
  h.Record(100);
  EXPECT_EQ(h.Count(), 3u);
  EXPECT_EQ(h.SumMicros(), 111u);
  EXPECT_EQ(h.MinMicros(), 1u);
  EXPECT_EQ(h.MaxMicros(), 100u);
  EXPECT_DOUBLE_EQ(h.MeanMicros(), 37.0);
}

TEST(HistogramTest, BucketsArePowersOfTwo) {
  Histogram h;
  h.Record(0);    // bucket 0: [0, 2)
  h.Record(1);    // bucket 0
  h.Record(2);    // bucket 1: [2, 4)
  h.Record(3);    // bucket 1
  h.Record(4);    // bucket 2: [4, 8)
  h.Record(500);  // bucket 8: [256, 512)
  EXPECT_EQ(h.BucketCount(0), 2u);
  EXPECT_EQ(h.BucketCount(1), 2u);
  EXPECT_EQ(h.BucketCount(2), 1u);
  EXPECT_EQ(h.BucketCount(8), 1u);
}

TEST(HistogramTest, HugeSamplesLandInLastBucket) {
  Histogram h;
  h.Record(UINT64_MAX);
  EXPECT_EQ(h.BucketCount(Histogram::kBuckets - 1), 1u);
  EXPECT_EQ(h.MaxMicros(), UINT64_MAX);
}

TEST(HistogramTest, PercentileInterpolatesWithinBucketCappedAtMax) {
  Histogram h;
  for (int i = 0; i < 99; ++i) h.Record(1);
  h.Record(1000);
  // p50 falls in the [0,2) bucket and interpolates to 2*50/99 = 1 — not
  // the bucket's upper bound 2, which overstated fast percentiles by up
  // to 2x. p99.9 reaches the 1000us sample, whose in-bucket estimate
  // (1024) is capped at the observed max.
  EXPECT_EQ(h.PercentileMicros(50), 1u);
  EXPECT_EQ(h.PercentileMicros(99.9), 1000u);
}

TEST(HistogramTest, PercentileNeverBelowObservedMin) {
  Histogram h;
  h.Record(3);
  h.Record(3);
  // Interpolation inside [2,4) would put p50 at 3 exactly by luck of the
  // math, but a low rank must still clamp up to the observed min.
  EXPECT_GE(h.PercentileMicros(1), 3u);
  EXPECT_EQ(h.PercentileMicros(50), 3u);
  EXPECT_EQ(h.PercentileMicros(100), 3u);
}

TEST(HistogramTest, PercentileSpreadsEvenlyAcrossOneBucket) {
  Histogram h;
  // 8 samples spread over [256,512): estimates walk the bucket linearly
  // instead of all answering the upper bound.
  for (int i = 0; i < 8; ++i) h.Record(256 + 32 * static_cast<uint64_t>(i));
  uint64_t p25 = h.PercentileMicros(25);  // pos 2 of 8 -> 256 + 256*2/8
  uint64_t p75 = h.PercentileMicros(75);  // pos 6 of 8 -> 256 + 256*6/8
  EXPECT_EQ(p25, 320u);
  EXPECT_EQ(p75, 448u);
}

TEST(HistogramTest, TimerRecordsOneSample) {
  Histogram h;
  { Histogram::Timer timer(&h); }
  EXPECT_EQ(h.Count(), 1u);
  Histogram::Timer timer(&h);
  timer.Stop();
  timer.Stop();  // idempotent
  EXPECT_EQ(h.Count(), 2u);
}

TEST(MetricsRegistryTest, NamesAreStableAndDistinct) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("a");
  Counter* b = registry.GetCounter("b");
  EXPECT_NE(a, b);
  EXPECT_EQ(a, registry.GetCounter("a"));
  EXPECT_NE(static_cast<void*>(registry.GetHistogram("a")),
            static_cast<void*>(a));
}

TEST(MetricsRegistryTest, JsonSnapshotIsSortedAndComplete) {
  MetricsRegistry registry;
  registry.GetCounter("zeta")->Increment(3);
  registry.GetCounter("alpha")->Increment();
  registry.GetHistogram("lat")->Record(5);
  std::string json = registry.ToJson();
  EXPECT_NE(json.find("\"alpha\": 1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"zeta\": 3"), std::string::npos) << json;
  EXPECT_LT(json.find("\"alpha\""), json.find("\"zeta\"")) << json;
  EXPECT_NE(json.find("\"lat\": {\"count\": 1, \"sum_us\": 5"),
            std::string::npos)
      << json;
  // Snapshotting twice without activity is deterministic.
  EXPECT_EQ(json, registry.ToJson());
}

TEST(MetricsRegistryTest, JsonSnapshotEscapesNames) {
  // Program/stage names flow into metric names verbatim; quotes,
  // backslashes and control characters must not break the JSON.
  MetricsRegistry registry;
  registry.GetCounter("programs.RPT \"Q3\" \\ final")->Increment();
  registry.GetHistogram("stage.weird\nname")->Record(1);
  std::string json = registry.ToJson();
  EXPECT_NE(json.find("\"programs.RPT \\\"Q3\\\" \\\\ final\": 1"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"stage.weird\\nname\""), std::string::npos) << json;
  // No raw quote-in-name survives: every line has an even quote count.
  std::istringstream lines(json);
  std::string line;
  while (std::getline(lines, line)) {
    size_t quotes = 0;
    for (size_t i = 0; i < line.size(); ++i) {
      if (line[i] == '"' && (i == 0 || line[i - 1] != '\\')) ++quotes;
    }
    EXPECT_EQ(quotes % 2, 0u) << line;
  }
}

TEST(MetricsRegistryTest, JsonSnapshotReportsPercentileEstimates) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("lat");
  // 90 fast samples in [0,2), 10 slow ones at 1000us: p50 interpolates
  // inside the first bucket (2*50/90 = 1); p95 and p99 interpolate within
  // the slow tail's [512,1024) bucket (512 + 512*5/10 and 512 + 512*9/10).
  for (int i = 0; i < 90; ++i) h->Record(1);
  for (int i = 0; i < 10; ++i) h->Record(1000);
  std::string json = registry.ToJson();
  EXPECT_NE(json.find("\"p50_us\": 1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"p95_us\": 768"), std::string::npos) << json;
  EXPECT_NE(json.find("\"p99_us\": 972"), std::string::npos) << json;
  // Field order within a histogram object is fixed.
  EXPECT_LT(json.find("\"p50_us\""), json.find("\"p95_us\"")) << json;
  EXPECT_LT(json.find("\"p95_us\""), json.find("\"p99_us\"")) << json;
}

TEST(MetricsRegistryTest, PercentileFieldsStayEscapedUnderHostileNames) {
  // The percentile fields extend the histogram JSON object; a hostile
  // histogram name must not break the object shape around them.
  MetricsRegistry registry;
  registry.GetHistogram("stage.\"evil\"\\name")->Record(3);
  std::string json = registry.ToJson();
  EXPECT_NE(json.find("\"stage.\\\"evil\\\"\\\\name\": {\"count\": 1"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"p95_us\": 3"), std::string::npos) << json;
}

TEST(MetricsRegistryTest, ResetIsolatesSnapshots) {
  // Reset() gives tests a clean registry without re-registering names:
  // the percentile estimates drop back to zero with the buckets.
  MetricsRegistry registry;
  registry.GetHistogram("lat")->Record(500);
  EXPECT_NE(registry.ToJson().find("\"p95_us\": 500"), std::string::npos);
  registry.Reset();
  std::string json = registry.ToJson();
  EXPECT_NE(json.find("\"p50_us\": 0"), std::string::npos) << json;
  EXPECT_NE(json.find("\"p95_us\": 0"), std::string::npos) << json;
  EXPECT_NE(json.find("\"p99_us\": 0"), std::string::npos) << json;
}

TEST(MetricsRegistryTest, ResetZeroesButKeepsNames) {
  MetricsRegistry registry;
  registry.GetCounter("c")->Increment(7);
  registry.GetHistogram("h")->Record(7);
  registry.Reset();
  EXPECT_EQ(registry.GetCounter("c")->Value(), 0u);
  EXPECT_EQ(registry.GetHistogram("h")->Count(), 0u);
  EXPECT_NE(registry.ToJson().find("\"c\": 0"), std::string::npos);
}

TEST(GaugeTest, MovesBothWaysAndResets) {
  Gauge g;
  EXPECT_EQ(g.Value(), 0);
  g.Add(5);
  g.Sub(2);
  EXPECT_EQ(g.Value(), 3);
  g.Sub(7);
  EXPECT_EQ(g.Value(), -4);  // signed: transient dips below zero are legal
  g.Set(42);
  EXPECT_EQ(g.Value(), 42);
  g.Reset();
  EXPECT_EQ(g.Value(), 0);
}

TEST(GaugeTest, ConcurrentAddSubBalancesToZero) {
  Gauge g;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&g] {
      for (int i = 0; i < kPerThread; ++i) {
        g.Add(1);
        g.Sub(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(g.Value(), 0);
}

TEST(RollingRateTest, WindowAveragesAtTheSeam) {
  RollingRate rate;
  // 30 events at second 100, 10 at second 101, observed at second 101:
  // 1s window sees only the current second, 10s averages both.
  rate.TickAtSecond(100, 30);
  rate.TickAtSecond(101, 10);
  EXPECT_EQ(rate.Total(), 40u);
  EXPECT_DOUBLE_EQ(rate.PerSecondAtSecond(101, 1), 10.0);
  EXPECT_DOUBLE_EQ(rate.PerSecondAtSecond(101, 10), 4.0);
  EXPECT_DOUBLE_EQ(rate.PerSecondAtSecond(101, 60), 40.0 / 60.0);
}

TEST(RollingRateTest, OldSecondsAgeOutOfTheWindow) {
  RollingRate rate;
  rate.TickAtSecond(100, 50);
  // Within the 10s window the burst is visible; 15 seconds later it is not.
  EXPECT_DOUBLE_EQ(rate.PerSecondAtSecond(105, 10), 5.0);
  EXPECT_DOUBLE_EQ(rate.PerSecondAtSecond(115, 10), 0.0);
  // The ring recycles the same slot 64 seconds later without double count.
  rate.TickAtSecond(100 + RollingRate::kWindowSeconds, 7);
  EXPECT_DOUBLE_EQ(
      rate.PerSecondAtSecond(100 + RollingRate::kWindowSeconds, 1), 7.0);
  EXPECT_EQ(rate.Total(), 57u);
}

TEST(RollingRateTest, ConcurrentTickersLoseNothingWithinASecond) {
  RollingRate rate;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  // Stamp the slot once up front: slot recycling deliberately tolerates a
  // one-second smear under concurrency, and this test pins the steady
  // state (everyone ticking an already-stamped second), not the seam.
  rate.TickAtSecond(500, 0);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&rate] {
      for (int i = 0; i < kPerThread; ++i) rate.TickAtSecond(500, 1);
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(rate.Total(), uint64_t{kThreads} * kPerThread);
  EXPECT_DOUBLE_EQ(rate.PerSecondAtSecond(500, 1),
                   static_cast<double>(kThreads) * kPerThread);
}

TEST(MetricsRegistryTest, SnapshotCarriesEveryMetricKind) {
  MetricsRegistry registry;
  registry.GetCounter("c")->Increment(3);
  registry.GetGauge("g")->Set(-5);
  registry.GetRate("r")->TickAtSecond(100, 4);
  registry.GetHistogram("h")->Record(10);
  MetricsSnapshot snap = registry.Snapshot();
  ASSERT_EQ(snap.counters.size(), 1u);
  EXPECT_EQ(snap.counters[0].first, "c");
  EXPECT_EQ(snap.counters[0].second, 3u);
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_EQ(snap.gauges[0].first, "g");
  EXPECT_EQ(snap.gauges[0].second, -5);
  ASSERT_EQ(snap.rates.size(), 1u);
  EXPECT_EQ(snap.rates[0].name, "r");
  EXPECT_EQ(snap.rates[0].total, 4u);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].name, "h");
  EXPECT_EQ(snap.histograms[0].count, 1u);
  EXPECT_EQ(snap.histograms[0].buckets[3], 1u);  // 10us -> [8,16)
}

TEST(MetricsRegistryTest, JsonSnapshotIncludesGaugesAndRates) {
  MetricsRegistry registry;
  registry.GetGauge("daemon.queue_depth")->Set(12);
  registry.GetRate("service.conversions")->TickAtSecond(100, 5);
  std::string json = registry.ToJson();
  EXPECT_NE(json.find("\"daemon.queue_depth\": 12"), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"service.conversions\": {\"total\": 5"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"per_sec_1s\""), std::string::npos) << json;
  // Section order is fixed: counters, gauges, rates, histograms.
  EXPECT_LT(json.find("\"counters\""), json.find("\"gauges\"")) << json;
  EXPECT_LT(json.find("\"gauges\""), json.find("\"rates\"")) << json;
  EXPECT_LT(json.find("\"rates\""), json.find("\"histograms\"")) << json;
}

TEST(MetricsRegistryTest, ConcurrentRecordingLosesNothing) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      Counter* counter = registry.GetCounter("shared.counter");
      Histogram* histogram = registry.GetHistogram("shared.histogram");
      for (int i = 0; i < kPerThread; ++i) {
        counter->Increment();
        histogram->Record(static_cast<uint64_t>(i % 1024));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(registry.GetCounter("shared.counter")->Value(),
            uint64_t{kThreads} * kPerThread);
  EXPECT_EQ(registry.GetHistogram("shared.histogram")->Count(),
            uint64_t{kThreads} * kPerThread);
}

}  // namespace
}  // namespace dbpc
