#include "common/metrics.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace dbpc {
namespace {

TEST(CounterTest, IncrementsAndResets) {
  Counter counter;
  EXPECT_EQ(counter.Value(), 0u);
  counter.Increment();
  counter.Increment(41);
  EXPECT_EQ(counter.Value(), 42u);
  counter.Reset();
  EXPECT_EQ(counter.Value(), 0u);
}

TEST(HistogramTest, EmptyHistogramIsAllZero) {
  Histogram h;
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_EQ(h.SumMicros(), 0u);
  EXPECT_EQ(h.MinMicros(), 0u);
  EXPECT_EQ(h.MaxMicros(), 0u);
  EXPECT_EQ(h.MeanMicros(), 0.0);
  EXPECT_EQ(h.PercentileMicros(50), 0u);
}

TEST(HistogramTest, RecordsSummaryStatistics) {
  Histogram h;
  h.Record(1);
  h.Record(10);
  h.Record(100);
  EXPECT_EQ(h.Count(), 3u);
  EXPECT_EQ(h.SumMicros(), 111u);
  EXPECT_EQ(h.MinMicros(), 1u);
  EXPECT_EQ(h.MaxMicros(), 100u);
  EXPECT_DOUBLE_EQ(h.MeanMicros(), 37.0);
}

TEST(HistogramTest, BucketsArePowersOfTwo) {
  Histogram h;
  h.Record(0);    // bucket 0: [0, 2)
  h.Record(1);    // bucket 0
  h.Record(2);    // bucket 1: [2, 4)
  h.Record(3);    // bucket 1
  h.Record(4);    // bucket 2: [4, 8)
  h.Record(500);  // bucket 8: [256, 512)
  EXPECT_EQ(h.BucketCount(0), 2u);
  EXPECT_EQ(h.BucketCount(1), 2u);
  EXPECT_EQ(h.BucketCount(2), 1u);
  EXPECT_EQ(h.BucketCount(8), 1u);
}

TEST(HistogramTest, HugeSamplesLandInLastBucket) {
  Histogram h;
  h.Record(UINT64_MAX);
  EXPECT_EQ(h.BucketCount(Histogram::kBuckets - 1), 1u);
  EXPECT_EQ(h.MaxMicros(), UINT64_MAX);
}

TEST(HistogramTest, PercentileIsBucketUpperBoundCappedAtMax) {
  Histogram h;
  for (int i = 0; i < 99; ++i) h.Record(1);
  h.Record(1000);
  // p50 falls in the [0,2) bucket; p99.9 reaches the 1000us sample, whose
  // bucket upper bound (1024) is capped at the observed max.
  EXPECT_EQ(h.PercentileMicros(50), 2u);
  EXPECT_EQ(h.PercentileMicros(99.9), 1000u);
}

TEST(HistogramTest, TimerRecordsOneSample) {
  Histogram h;
  { Histogram::Timer timer(&h); }
  EXPECT_EQ(h.Count(), 1u);
  Histogram::Timer timer(&h);
  timer.Stop();
  timer.Stop();  // idempotent
  EXPECT_EQ(h.Count(), 2u);
}

TEST(MetricsRegistryTest, NamesAreStableAndDistinct) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("a");
  Counter* b = registry.GetCounter("b");
  EXPECT_NE(a, b);
  EXPECT_EQ(a, registry.GetCounter("a"));
  EXPECT_NE(static_cast<void*>(registry.GetHistogram("a")),
            static_cast<void*>(a));
}

TEST(MetricsRegistryTest, JsonSnapshotIsSortedAndComplete) {
  MetricsRegistry registry;
  registry.GetCounter("zeta")->Increment(3);
  registry.GetCounter("alpha")->Increment();
  registry.GetHistogram("lat")->Record(5);
  std::string json = registry.ToJson();
  EXPECT_NE(json.find("\"alpha\": 1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"zeta\": 3"), std::string::npos) << json;
  EXPECT_LT(json.find("\"alpha\""), json.find("\"zeta\"")) << json;
  EXPECT_NE(json.find("\"lat\": {\"count\": 1, \"sum_us\": 5"),
            std::string::npos)
      << json;
  // Snapshotting twice without activity is deterministic.
  EXPECT_EQ(json, registry.ToJson());
}

TEST(MetricsRegistryTest, JsonSnapshotEscapesNames) {
  // Program/stage names flow into metric names verbatim; quotes,
  // backslashes and control characters must not break the JSON.
  MetricsRegistry registry;
  registry.GetCounter("programs.RPT \"Q3\" \\ final")->Increment();
  registry.GetHistogram("stage.weird\nname")->Record(1);
  std::string json = registry.ToJson();
  EXPECT_NE(json.find("\"programs.RPT \\\"Q3\\\" \\\\ final\": 1"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"stage.weird\\nname\""), std::string::npos) << json;
  // No raw quote-in-name survives: every line has an even quote count.
  std::istringstream lines(json);
  std::string line;
  while (std::getline(lines, line)) {
    size_t quotes = 0;
    for (size_t i = 0; i < line.size(); ++i) {
      if (line[i] == '"' && (i == 0 || line[i - 1] != '\\')) ++quotes;
    }
    EXPECT_EQ(quotes % 2, 0u) << line;
  }
}

TEST(MetricsRegistryTest, JsonSnapshotReportsPercentileEstimates) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("lat");
  // 90 fast samples in [0,2), 10 slow ones at 1000us: p50 sits in the first
  // bucket, p95 and p99 in the slow tail (upper bound capped at max).
  for (int i = 0; i < 90; ++i) h->Record(1);
  for (int i = 0; i < 10; ++i) h->Record(1000);
  std::string json = registry.ToJson();
  EXPECT_NE(json.find("\"p50_us\": 2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"p95_us\": 1000"), std::string::npos) << json;
  EXPECT_NE(json.find("\"p99_us\": 1000"), std::string::npos) << json;
  // Field order within a histogram object is fixed.
  EXPECT_LT(json.find("\"p50_us\""), json.find("\"p95_us\"")) << json;
  EXPECT_LT(json.find("\"p95_us\""), json.find("\"p99_us\"")) << json;
}

TEST(MetricsRegistryTest, PercentileFieldsStayEscapedUnderHostileNames) {
  // The percentile fields extend the histogram JSON object; a hostile
  // histogram name must not break the object shape around them.
  MetricsRegistry registry;
  registry.GetHistogram("stage.\"evil\"\\name")->Record(3);
  std::string json = registry.ToJson();
  EXPECT_NE(json.find("\"stage.\\\"evil\\\"\\\\name\": {\"count\": 1"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"p95_us\": 3"), std::string::npos) << json;
}

TEST(MetricsRegistryTest, ResetIsolatesSnapshots) {
  // Reset() gives tests a clean registry without re-registering names:
  // the percentile estimates drop back to zero with the buckets.
  MetricsRegistry registry;
  registry.GetHistogram("lat")->Record(500);
  EXPECT_NE(registry.ToJson().find("\"p95_us\": 500"), std::string::npos);
  registry.Reset();
  std::string json = registry.ToJson();
  EXPECT_NE(json.find("\"p50_us\": 0"), std::string::npos) << json;
  EXPECT_NE(json.find("\"p95_us\": 0"), std::string::npos) << json;
  EXPECT_NE(json.find("\"p99_us\": 0"), std::string::npos) << json;
}

TEST(MetricsRegistryTest, ResetZeroesButKeepsNames) {
  MetricsRegistry registry;
  registry.GetCounter("c")->Increment(7);
  registry.GetHistogram("h")->Record(7);
  registry.Reset();
  EXPECT_EQ(registry.GetCounter("c")->Value(), 0u);
  EXPECT_EQ(registry.GetHistogram("h")->Count(), 0u);
  EXPECT_NE(registry.ToJson().find("\"c\": 0"), std::string::npos);
}

TEST(MetricsRegistryTest, ConcurrentRecordingLosesNothing) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      Counter* counter = registry.GetCounter("shared.counter");
      Histogram* histogram = registry.GetHistogram("shared.histogram");
      for (int i = 0; i < kPerThread; ++i) {
        counter->Increment();
        histogram->Record(static_cast<uint64_t>(i % 1024));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(registry.GetCounter("shared.counter")->Value(),
            uint64_t{kThreads} * kPerThread);
  EXPECT_EQ(registry.GetHistogram("shared.histogram")->Count(),
            uint64_t{kThreads} * kPerThread);
}

}  // namespace
}  // namespace dbpc
