#include "common/status.h"

#include <gtest/gtest.h>

#include "common/result.h"

namespace dbpc {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "ok");
}

TEST(StatusTest, FactoriesCarryCodeAndMessage) {
  Status s = Status::ConstraintViolation("limit exceeded");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kConstraintViolation);
  EXPECT_EQ(s.ToString(), "constraint-violation: limit exceeded");
}

TEST(StatusTest, EveryCodeHasAName) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kInternal); ++c) {
    EXPECT_STRNE(StatusCodeName(static_cast<StatusCode>(c)), "unknown");
  }
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status Caller(int x) {
  DBPC_RETURN_IF_ERROR(FailIfNegative(x));
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(Caller(1).ok());
  EXPECT_EQ(Caller(-1).code(), StatusCode::kInvalidArgument);
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  DBPC_ASSIGN_OR_RETURN(int h, Half(x));
  return Half(h);
}

TEST(ResultTest, HoldsValueOrStatus) {
  Result<int> r = Half(4);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 2);
  Result<int> e = Half(3);
  EXPECT_FALSE(e.ok());
  EXPECT_EQ(e.status().code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, AssignOrReturnChains) {
  EXPECT_EQ(Quarter(8).value(), 2);
  EXPECT_FALSE(Quarter(6).ok());  // 6/2=3 is odd
}

TEST(ResultTest, ValueOrFallback) {
  EXPECT_EQ(Half(3).value_or(-1), -1);
  EXPECT_EQ(Half(4).value_or(-1), 2);
}

TEST(ResultTest, ConstructingFromOkStatusBecomesInternalError) {
  Result<int> r = Status::OK();
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

}  // namespace
}  // namespace dbpc
