#include "common/lexer.h"

#include <gtest/gtest.h>

namespace dbpc {
namespace {

std::vector<Token> MustLex(const std::string& text) {
  Result<std::vector<Token>> r = Lex(text);
  EXPECT_TRUE(r.ok()) << r.status();
  return r.ok() ? *r : std::vector<Token>{};
}

TEST(LexerTest, HyphenatedIdentifiersAreSingleTokens) {
  std::vector<Token> tokens = MustLex("DIV-EMP EMP-NAME");
  ASSERT_EQ(tokens.size(), 3u);  // two identifiers + end
  EXPECT_EQ(tokens[0].text, "DIV-EMP");
  EXPECT_EQ(tokens[1].text, "EMP-NAME");
}

TEST(LexerTest, IdentifiersAreUpperCased) {
  std::vector<Token> tokens = MustLex("div_emp");
  EXPECT_EQ(tokens[0].text, "DIV_EMP");
}

TEST(LexerTest, HashAllowedInIdentifiers) {
  std::vector<Token> tokens = MustLex("E# D#");
  EXPECT_EQ(tokens[0].text, "E#");
  EXPECT_EQ(tokens[1].text, "D#");
}

TEST(LexerTest, TrailingHyphenSplitsOff) {
  // "X- 1" : hyphen must not be swallowed into the identifier.
  std::vector<Token> tokens = MustLex("X- 1");
  EXPECT_EQ(tokens[0].text, "X");
  EXPECT_TRUE(tokens[1].IsPunct("-"));
  EXPECT_EQ(tokens[2].int_value, 1);
}

TEST(LexerTest, IntegerAndFloatLiterals) {
  std::vector<Token> tokens = MustLex("30 2.5");
  EXPECT_EQ(tokens[0].kind, TokenKind::kInteger);
  EXPECT_EQ(tokens[0].int_value, 30);
  EXPECT_EQ(tokens[1].kind, TokenKind::kFloat);
  EXPECT_DOUBLE_EQ(tokens[1].float_value, 2.5);
}

TEST(LexerTest, OversizedIntegerLiteralIsParseError) {
  // 20 digits overflow int64; stoll used to throw std::out_of_range
  // straight through every parser entry point.
  Result<std::vector<Token>> r = Lex("AGE = 99999999999999999999.");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
  EXPECT_NE(r.status().message().find("out of range"), std::string::npos);
}

TEST(LexerTest, OversizedFloatLiteralIsParseError) {
  // ~1e400 overflows double.
  std::string huge(400, '9');
  Result<std::vector<Token>> r = Lex(huge + ".5");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
}

TEST(LexerTest, PeriodAfterIntegerIsPunct) {
  // "AGE > 30." must lex the period as the clause terminator.
  std::vector<Token> tokens = MustLex("30.");
  EXPECT_EQ(tokens[0].kind, TokenKind::kInteger);
  EXPECT_TRUE(tokens[1].IsPunct("."));
}

TEST(LexerTest, StringEscapes) {
  std::vector<Token> tokens = MustLex("'O''BRIEN'");
  EXPECT_EQ(tokens[0].kind, TokenKind::kString);
  EXPECT_EQ(tokens[0].text, "O'BRIEN");
}

TEST(LexerTest, UnterminatedStringFails) {
  EXPECT_FALSE(Lex("'oops").ok());
}

TEST(LexerTest, TwoCharOperators) {
  std::vector<Token> tokens = MustLex("<= >= <>");
  EXPECT_TRUE(tokens[0].IsPunct("<="));
  EXPECT_TRUE(tokens[1].IsPunct(">="));
  EXPECT_TRUE(tokens[2].IsPunct("<>"));
}

TEST(LexerTest, CommentsRunToEndOfLine) {
  std::vector<Token> tokens = MustLex("A -- this is a comment\nB");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0].text, "A");
  EXPECT_EQ(tokens[1].text, "B");
}

TEST(LexerTest, LineNumbersTracked) {
  std::vector<Token> tokens = MustLex("A\nB\nC");
  EXPECT_EQ(tokens[0].line, 1);
  EXPECT_EQ(tokens[1].line, 2);
  EXPECT_EQ(tokens[2].line, 3);
}

TEST(LexerTest, UnexpectedCharacterFails) {
  Result<std::vector<Token>> r = Lex("A @ B");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
}

TEST(TokenCursorTest, ExpectAndConsume) {
  TokenCursor cur(MustLex("FIND ANY EMP ."));
  EXPECT_TRUE(cur.ConsumeIdent("FIND"));
  EXPECT_FALSE(cur.ConsumeIdent("FIRST"));
  EXPECT_TRUE(cur.ExpectIdent("ANY").ok());
  Result<std::string> id = cur.TakeIdentifier("record type");
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(*id, "EMP");
  EXPECT_TRUE(cur.ExpectPunct(".").ok());
  EXPECT_TRUE(cur.AtEnd());
}

TEST(TokenCursorTest, ErrorMentionsLineAndToken) {
  TokenCursor cur(MustLex("X\nY"));
  cur.Next();
  Status s = cur.ExpectIdent("Z");
  EXPECT_EQ(s.code(), StatusCode::kParseError);
  EXPECT_NE(s.message().find("line 2"), std::string::npos);
  EXPECT_NE(s.message().find("'Y'"), std::string::npos);
}

TEST(TokenCursorTest, SeekToBacktracks) {
  TokenCursor cur(MustLex("A B C"));
  size_t mark = cur.Position();
  cur.Next();
  cur.Next();
  cur.SeekTo(mark);
  EXPECT_EQ(cur.Peek().text, "A");
}

}  // namespace
}  // namespace dbpc
