// Deterministic mutation fuzzing of every parser: corrupted input must
// produce a parse-error Status, never a crash or an accepted garbage
// artifact that later trips internal invariants.

#include <gtest/gtest.h>

#include "engine/find_query.h"
#include "engine/textio.h"
#include "lang/interpreter.h"
#include "lang/parser.h"
#include "relational/relational.h"
#include "restructure/plan_parser.h"
#include "schema/ddl_parser.h"
#include "testing/fixtures.h"

namespace dbpc {
namespace {

/// Tiny LCG so the mutations are reproducible.
class Rng {
 public:
  explicit Rng(unsigned seed) : state_(seed) {}
  unsigned Next() {
    state_ = state_ * 1103515245u + 12345u;
    return (state_ >> 16) & 0x7fff;
  }

 private:
  unsigned state_;
};

constexpr char kAlphabet[] =
    "ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789.,()'-=<> \n";

std::string Mutate(std::string text, Rng* rng) {
  if (text.empty()) return text;
  int edits = 1 + static_cast<int>(rng->Next() % 4);
  for (int i = 0; i < edits; ++i) {
    size_t pos = rng->Next() % text.size();
    switch (rng->Next() % 3) {
      case 0:  // replace
        text[pos] = kAlphabet[rng->Next() % (sizeof(kAlphabet) - 1)];
        break;
      case 1:  // delete
        text.erase(pos, 1);
        break;
      case 2:  // insert
        text.insert(pos, 1, kAlphabet[rng->Next() % (sizeof(kAlphabet) - 1)]);
        break;
    }
    if (text.empty()) break;
  }
  return text;
}

constexpr int kRounds = 400;

TEST(FuzzRobustnessTest, DdlParserNeverCrashes) {
  Rng rng(1);
  std::string base = testing::SchoolDdl();
  for (int i = 0; i < kRounds; ++i) {
    std::string mutated = Mutate(base, &rng);
    Result<Schema> schema = ParseDdl(mutated);
    if (schema.ok()) {
      // Whatever parsed must be a valid schema (ParseDdl validates).
      EXPECT_TRUE(schema->Validate().ok()) << mutated;
    }
  }
}

TEST(FuzzRobustnessTest, CplParserNeverCrashes) {
  Rng rng(2);
  std::string base = R"(
PROGRAM T.
  FOR EACH E IN SORT(FIND(EMP: SYSTEM, ALL-DIV, DIV(DIV-NAME = 'M'),
      DIV-EMP, EMP(AGE > 30))) ON (EMP-NAME) DO
    GET EMP-NAME OF E INTO N.
    IF N IS NOT NULL THEN DISPLAY N & '!'. END-IF.
  END-FOR.
  STORE EMP (EMP-NAME = 'X', AGE = 1) IN DIV-EMP WHERE (DIV-NAME = 'M').
END PROGRAM.)";
  for (int i = 0; i < kRounds; ++i) {
    (void)ParseProgram(Mutate(base, &rng));
  }
}

TEST(FuzzRobustnessTest, PlanParserNeverCrashes) {
  Rng rng(3);
  std::string base = R"(
RESTRUCTURE PLAN P.
  INTRODUCE RECORD DEPT BETWEEN DIV-EMP GROUPING BY DEPT-NAME
      AS DIV-DEPT AND DEPT-EMP.
  SPLIT RECORD EMP MOVING (AGE) TO EMP-DATA LINKED BY D USING EMP-NAME.
END PLAN.)";
  for (int i = 0; i < kRounds; ++i) {
    (void)ParsePlan(Mutate(base, &rng));
  }
}

TEST(FuzzRobustnessTest, FindParserNeverCrashes) {
  Rng rng(4);
  std::string base =
      "SORT(FIND(EMP: SYSTEM, ALL-DIV, DIV, JOIN LOC THROUGH (A, B), "
      "DIV-EMP, EMP(AGE > 30 AND DEPT-NAME = :D))) ON (EMP-NAME)";
  for (int i = 0; i < kRounds; ++i) {
    (void)ParseRetrieval(Mutate(base, &rng));
  }
}

TEST(FuzzRobustnessTest, SelectParserNeverCrashes) {
  Rng rng(5);
  std::string base =
      "SELECT EMP-NAME FROM EMP WHERE DEPT-NAME = 'SALES' AND DIV-NAME IN "
      "(SELECT DIV-NAME FROM DIV WHERE DIV-LOC = 'EAST') ORDER BY EMP-NAME";
  for (int i = 0; i < kRounds; ++i) {
    (void)ParseSelect(Mutate(base, &rng));
  }
}

TEST(FuzzRobustnessTest, DumpLoaderNeverCrashes) {
  Rng rng(6);
  Database db = testing::MakeCompanyDatabase();
  std::string base = *DumpDatabaseText(db);
  for (int i = 0; i < kRounds; ++i) {
    (void)LoadDatabaseText(db.schema(), Mutate(base, &rng));
  }
}

TEST(FuzzRobustnessTest, MutatedProgramsThatParseAlsoRun) {
  // Parsed-but-mutated programs must interpret without crashing: either a
  // clean run or a clean Status.
  Rng rng(7);
  std::string base = R"(
PROGRAM T.
  FOR EACH E IN FIND(EMP: SYSTEM, ALL-DIV, DIV, DIV-EMP, EMP(AGE > 30)) DO
    GET EMP-NAME OF E INTO N.
    DISPLAY N.
  END-FOR.
END PROGRAM.)";
  int parsed = 0;
  for (int i = 0; i < kRounds; ++i) {
    Result<Program> program = ParseProgram(Mutate(base, &rng));
    if (!program.ok()) continue;
    ++parsed;
    Database db = testing::MakeCompanyDatabase();
    RunOptions options;
    options.max_steps = 10000;
    Interpreter interp(&db, IoScript(), options);
    (void)interp.Run(*program);
  }
  // The mutation alphabet keeps a reasonable fraction parseable; make sure
  // the run-leg of the test actually exercised something.
  EXPECT_GT(parsed, 0);
}

}  // namespace
}  // namespace dbpc
