#include "common/trace.h"

#include <gtest/gtest.h>

namespace dbpc {
namespace {

TEST(TraceTest, RecordsEventsInOrder) {
  Trace t;
  t.RecordTerminalOut("HELLO");
  t.RecordFileWrite("REPORT", "LINE1");
  t.RecordTerminalIn("42");
  ASSERT_EQ(t.size(), 3u);
  EXPECT_EQ(t.events()[0].kind, TraceEventKind::kTerminalOut);
  EXPECT_EQ(t.events()[1].channel, "REPORT");
  EXPECT_EQ(t.events()[2].payload, "42");
}

TEST(TraceTest, EqualTracesCompareEqual) {
  Trace a, b;
  a.RecordTerminalOut("X");
  b.RecordTerminalOut("X");
  EXPECT_EQ(a, b);
  EXPECT_EQ(Trace::FirstDivergence(a, b), -1);
}

TEST(TraceTest, DivergenceAtPayload) {
  Trace a, b;
  a.RecordTerminalOut("SAME");
  b.RecordTerminalOut("SAME");
  a.RecordTerminalOut("X");
  b.RecordTerminalOut("Y");
  EXPECT_NE(a, b);
  EXPECT_EQ(Trace::FirstDivergence(a, b), 1);
}

TEST(TraceTest, DivergenceAtKind) {
  Trace a, b;
  a.RecordTerminalOut("X");
  b.RecordFileWrite("F", "X");
  EXPECT_EQ(Trace::FirstDivergence(a, b), 0);
}

TEST(TraceTest, PrefixTraceDivergesAtLength) {
  Trace a, b;
  a.RecordTerminalOut("X");
  b.RecordTerminalOut("X");
  b.RecordTerminalOut("EXTRA");
  EXPECT_EQ(Trace::FirstDivergence(a, b), 1);
}

TEST(TraceTest, ToStringIsLinePerEvent) {
  Trace t;
  t.RecordFileRead("IN", "row");
  EXPECT_EQ(t.ToString(), "file-read(IN): row\n");
}

TEST(TraceTest, ClearEmptiesTrace) {
  Trace t;
  t.RecordTerminalOut("X");
  t.Clear();
  EXPECT_EQ(t.size(), 0u);
}

}  // namespace
}  // namespace dbpc
