#include "common/trace.h"

#include <gtest/gtest.h>

namespace dbpc {
namespace {

TEST(TraceTest, RecordsEventsInOrder) {
  Trace t;
  t.RecordTerminalOut("HELLO");
  t.RecordFileWrite("REPORT", "LINE1");
  t.RecordTerminalIn("42");
  ASSERT_EQ(t.size(), 3u);
  EXPECT_EQ(t.events()[0].kind, TraceEventKind::kTerminalOut);
  EXPECT_EQ(t.events()[1].channel, "REPORT");
  EXPECT_EQ(t.events()[2].payload, "42");
}

TEST(TraceTest, EqualTracesCompareEqual) {
  Trace a, b;
  a.RecordTerminalOut("X");
  b.RecordTerminalOut("X");
  EXPECT_EQ(a, b);
  EXPECT_EQ(Trace::FirstDivergence(a, b), -1);
}

TEST(TraceTest, DivergenceAtPayload) {
  Trace a, b;
  a.RecordTerminalOut("SAME");
  b.RecordTerminalOut("SAME");
  a.RecordTerminalOut("X");
  b.RecordTerminalOut("Y");
  EXPECT_NE(a, b);
  EXPECT_EQ(Trace::FirstDivergence(a, b), 1);
}

TEST(TraceTest, DivergenceAtKind) {
  Trace a, b;
  a.RecordTerminalOut("X");
  b.RecordFileWrite("F", "X");
  EXPECT_EQ(Trace::FirstDivergence(a, b), 0);
}

TEST(TraceTest, PrefixTraceDivergesAtLength) {
  Trace a, b;
  a.RecordTerminalOut("X");
  b.RecordTerminalOut("X");
  b.RecordTerminalOut("EXTRA");
  EXPECT_EQ(Trace::FirstDivergence(a, b), 1);
}

TEST(TraceTest, ToStringIsLinePerEvent) {
  Trace t;
  t.RecordFileRead("IN", "row");
  EXPECT_EQ(t.ToString(), "file-read(IN): row\n");
}

TEST(TraceTest, ClearEmptiesTrace) {
  Trace t;
  t.RecordTerminalOut("X");
  t.Clear();
  EXPECT_EQ(t.size(), 0u);
}

TEST(TraceTest, DivergenceContextShowsWindowAroundMismatch) {
  Trace a, b;
  for (const char* line : {"ONE", "TWO", "THREE", "FOUR"}) {
    a.RecordTerminalOut(line);
  }
  for (const char* line : {"ONE", "TWO", "THREE", "DIFFERENT"}) {
    b.RecordTerminalOut(line);
  }
  ptrdiff_t index = Trace::FirstDivergence(a, b);
  ASSERT_EQ(index, 3);
  std::string report = Trace::DivergenceContext(a, b, index);
  EXPECT_EQ(report,
            "divergence at event 3:\n"
            "  source:\n"
            "      [1] terminal-out: TWO\n"
            "      [2] terminal-out: THREE\n"
            "    > [3] terminal-out: FOUR\n"
            "  converted:\n"
            "      [1] terminal-out: TWO\n"
            "      [2] terminal-out: THREE\n"
            "    > [3] terminal-out: DIFFERENT\n");
}

// Regression: the prefix case used to be reported with no indication of
// WHICH side ended — the context window must mark the truncated trace with
// "<end of trace>" at the divergence index instead of showing nothing.
TEST(TraceTest, DivergenceContextMarksEndOfTraceInPrefixCase) {
  Trace a, b;
  a.RecordTerminalOut("X");
  b.RecordTerminalOut("X");
  b.RecordTerminalOut("EXTRA");
  ptrdiff_t index = Trace::FirstDivergence(a, b);
  ASSERT_EQ(index, 1);
  std::string report = Trace::DivergenceContext(a, b, index);
  EXPECT_EQ(report,
            "divergence at event 1:\n"
            "  source:\n"
            "      [0] terminal-out: X\n"
            "    > [1] <end of trace>\n"
            "  converted:\n"
            "      [0] terminal-out: X\n"
            "    > [1] terminal-out: EXTRA\n");
}

TEST(TraceTest, DivergenceContextAtIndexZeroHasNoLeadingWindow) {
  Trace a, b;
  a.RecordTerminalOut("A");
  b.RecordTerminalOut("B");
  std::string report = Trace::DivergenceContext(a, b, 0);
  EXPECT_EQ(report,
            "divergence at event 0:\n"
            "  source:\n"
            "    > [0] terminal-out: A\n"
            "  converted:\n"
            "    > [0] terminal-out: B\n");
}

TEST(TraceTest, DivergenceContextNegativeIndexReportsEquivalence) {
  Trace a, b;
  EXPECT_EQ(Trace::DivergenceContext(a, b, -1), "traces are equivalent\n");
}

}  // namespace
}  // namespace dbpc
