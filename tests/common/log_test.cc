#include "common/log.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace dbpc {
namespace {

using std::chrono::steady_clock;

/// A logger with a capturing sink; lines are collected under a mutex so
/// concurrent emitters can be asserted on afterwards.
struct CapturingLogger {
  Logger logger;
  std::mutex mu;
  std::vector<std::string> lines;

  explicit CapturingLogger(LogLevel level = LogLevel::kDebug,
                           bool json = false) {
    Logger::Options options;
    options.level = level;
    options.json = json;
    options.sink = [this](std::string_view line) {
      std::lock_guard<std::mutex> lock(mu);
      lines.emplace_back(line);
    };
    logger.Configure(options);
  }

  std::string joined() {
    std::lock_guard<std::mutex> lock(mu);
    std::string out;
    for (const std::string& line : lines) out += line;
    return out;
  }
};

TEST(LogLevelTest, ParseRoundTripsEveryLevel) {
  for (LogLevel level : {LogLevel::kDebug, LogLevel::kInfo, LogLevel::kWarn,
                         LogLevel::kError, LogLevel::kOff}) {
    LogLevel parsed = LogLevel::kInfo;
    ASSERT_TRUE(ParseLogLevel(LogLevelName(level), &parsed));
    EXPECT_EQ(parsed, level);
  }
  LogLevel unused = LogLevel::kInfo;
  EXPECT_FALSE(ParseLogLevel("verbose", &unused));
  EXPECT_FALSE(ParseLogLevel("INFO", &unused));  // case-sensitive
  EXPECT_EQ(unused, LogLevel::kInfo);            // untouched on failure
}

TEST(LoggerTest, LevelFilteringDropsLowerSeverities) {
  CapturingLogger cap(LogLevel::kWarn);
  cap.logger.Log(LogLevel::kDebug, "d");
  cap.logger.Log(LogLevel::kInfo, "i");
  cap.logger.Log(LogLevel::kWarn, "w");
  cap.logger.Log(LogLevel::kError, "e");
  ASSERT_EQ(cap.lines.size(), 2u);
  EXPECT_NE(cap.lines[0].find("event=w"), std::string::npos);
  EXPECT_NE(cap.lines[1].find("event=e"), std::string::npos);
  EXPECT_FALSE(cap.logger.Enabled(LogLevel::kInfo));
  EXPECT_TRUE(cap.logger.Enabled(LogLevel::kWarn));
  // kOff is a filter setting: nothing is enabled, not even "off lines".
  cap.logger.Configure({LogLevel::kOff, false, nullptr});
  EXPECT_FALSE(cap.logger.Enabled(LogLevel::kError));
}

TEST(LoggerTest, LogfmtLineShapeAndFieldTypes) {
  CapturingLogger cap;
  cap.logger.Log(LogLevel::kInfo, "submit",
                 {LogField("job", uint64_t{42}), LogField("accepted", true),
                  LogField("latency", 1.5), LogField("delta", -3),
                  LogField("name", "seniors")});
  ASSERT_EQ(cap.lines.size(), 1u);
  const std::string& line = cap.lines[0];
  EXPECT_EQ(line.find("ts="), 0u) << line;
  EXPECT_NE(line.find(" level=info "), std::string::npos) << line;
  EXPECT_NE(line.find(" event=submit"), std::string::npos) << line;
  EXPECT_NE(line.find(" job=42"), std::string::npos) << line;
  EXPECT_NE(line.find(" accepted=true"), std::string::npos) << line;
  EXPECT_NE(line.find(" latency=1.5"), std::string::npos) << line;
  EXPECT_NE(line.find(" delta=-3"), std::string::npos) << line;
  EXPECT_NE(line.find(" name=seniors"), std::string::npos) << line;
  EXPECT_EQ(line.back(), '\n');
}

TEST(LoggerTest, LogfmtQuotesAndEscapesHostileValues) {
  CapturingLogger cap;
  cap.logger.Log(LogLevel::kInfo, "note",
                 {LogField("msg", "two words"),
                  LogField("evil", "quote\" slash\\ nl\n tab\t")});
  ASSERT_EQ(cap.lines.size(), 1u);
  const std::string& line = cap.lines[0];
  EXPECT_NE(line.find("msg=\"two words\""), std::string::npos) << line;
  EXPECT_NE(line.find("evil=\"quote\\\" slash\\\\ nl\\n tab\\t\""),
            std::string::npos)
      << line;
  // The line itself stays one physical line: the raw newline was escaped.
  EXPECT_EQ(line.find('\n'), line.size() - 1) << line;
}

TEST(LoggerTest, JsonLinesParseShapedFields) {
  CapturingLogger cap(LogLevel::kDebug, /*json=*/true);
  cap.logger.Log(LogLevel::kWarn, "slow_request",
                 {LogField("job", uint64_t{7}), LogField("ok", false),
                  LogField("name", "a\"b")});
  ASSERT_EQ(cap.lines.size(), 1u);
  const std::string& line = cap.lines[0];
  EXPECT_EQ(line.front(), '{') << line;
  EXPECT_EQ(line[line.size() - 2], '}') << line;
  EXPECT_NE(line.find("\"level\":\"warn\""), std::string::npos) << line;
  EXPECT_NE(line.find("\"event\":\"slow_request\""), std::string::npos)
      << line;
  EXPECT_NE(line.find("\"job\":7"), std::string::npos) << line;
  EXPECT_NE(line.find("\"ok\":false"), std::string::npos) << line;
  EXPECT_NE(line.find("\"name\":\"a\\\"b\""), std::string::npos) << line;
}

TEST(LogRateLimiterTest, TokenBucketAdmitsBurstThenRefills) {
  LogRateLimiter limiter(/*tokens_per_sec=*/1.0, /*burst=*/3.0);
  auto t0 = steady_clock::now();
  EXPECT_TRUE(limiter.AdmitAt(t0));
  EXPECT_TRUE(limiter.AdmitAt(t0));
  EXPECT_TRUE(limiter.AdmitAt(t0));
  EXPECT_FALSE(limiter.AdmitAt(t0));  // burst exhausted
  EXPECT_FALSE(limiter.AdmitAt(t0 + std::chrono::milliseconds(100)));
  EXPECT_EQ(limiter.TakeSuppressed(), 2u);
  EXPECT_EQ(limiter.TakeSuppressed(), 0u);  // take resets
  // One second later one token refilled; the burst cap holds after ten.
  EXPECT_TRUE(limiter.AdmitAt(t0 + std::chrono::seconds(1)));
  EXPECT_FALSE(limiter.AdmitAt(t0 + std::chrono::seconds(1)));
  EXPECT_TRUE(limiter.AdmitAt(t0 + std::chrono::seconds(11)));
  EXPECT_TRUE(limiter.AdmitAt(t0 + std::chrono::seconds(11)));
  EXPECT_TRUE(limiter.AdmitAt(t0 + std::chrono::seconds(11)));
  EXPECT_FALSE(limiter.AdmitAt(t0 + std::chrono::seconds(11)));
}

TEST(LoggerTest, SuppressedCountSurfacesOnTheLine) {
  CapturingLogger cap;
  cap.logger.Log(LogLevel::kWarn, "dropped", {LogField("k", 1)},
                 /*suppressed=*/5);
  ASSERT_EQ(cap.lines.size(), 1u);
  EXPECT_NE(cap.lines[0].find(" suppressed=5"), std::string::npos)
      << cap.lines[0];
}

TEST(LoggerTest, ConcurrentEmittersProduceWholeLines) {
  CapturingLogger cap;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cap, t] {
      for (int i = 0; i < kPerThread; ++i) {
        cap.logger.Log(LogLevel::kInfo, "tick",
                       {LogField("thread", t), LogField("i", i)});
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  ASSERT_EQ(cap.lines.size(), size_t{kThreads} * kPerThread);
  for (const std::string& line : cap.lines) {
    // Each sink call is one complete line: starts with ts=, ends with \n,
    // no interleaving.
    EXPECT_EQ(line.find("ts="), 0u) << line;
    EXPECT_EQ(line.find('\n'), line.size() - 1) << line;
    EXPECT_NE(line.find(" event=tick"), std::string::npos) << line;
  }
}

TEST(LoggerTest, RateLimitedMacroCountsSuppressions) {
  CapturingLogger cap;
  Logger::Options options;
  options.level = LogLevel::kDebug;
  options.sink = [&cap](std::string_view line) {
    std::lock_guard<std::mutex> lock(cap.mu);
    cap.lines.emplace_back(line);
  };
  // The macro logs through the global logger; point it at the capture for
  // the duration of this test, then restore stderr.
  GlobalLogger().Configure(options);
  for (int i = 0; i < 10; ++i) {
    DBPC_LOG_RATELIMITED(LogLevel::kWarn, 0.0001, 2.0, "limited",
                         LogField("i", i));
  }
  GlobalLogger().Configure({LogLevel::kInfo, false, nullptr});
  ASSERT_EQ(cap.lines.size(), 2u) << cap.joined();
  EXPECT_NE(cap.lines[0].find("event=limited"), std::string::npos);
  // 8 denied calls are invisible until the next admitted line; the burst
  // lines themselves carry no suppressed field.
  EXPECT_EQ(cap.joined().find("suppressed="), std::string::npos)
      << cap.joined();
}

}  // namespace
}  // namespace dbpc
