#include "restructure/data_copy.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "engine/textio.h"
#include "storage/extent.h"
#include "testing/fixtures.h"

namespace dbpc {
namespace {

using testing::MakeCompanyDatabase;
using testing::MakeSchoolDatabase;

TEST(CopyDatabaseTest, DefaultSpecIsIdentity) {
  Database source = MakeCompanyDatabase();
  Database target = *Database::Create(source.schema());
  Result<std::map<RecordId, RecordId>> map =
      CopyDatabase(source, &target, CopySpec{});
  ASSERT_TRUE(map.ok()) << map.status();
  EXPECT_EQ(map->size(), source.RecordCount());
  EXPECT_EQ(target.RecordCount(), source.RecordCount());
  // Memberships survive with mapped ids.
  RecordId src_machinery = source.SystemMembers("ALL-DIV")[0];
  RecordId tgt_machinery = map->at(src_machinery);
  EXPECT_EQ(target.Members("DIV-EMP", tgt_machinery).size(), 3u);
}

TEST(CopyDatabaseTest, DropTypeDropsMemberships) {
  Database source = MakeCompanyDatabase();
  // Target schema without EMP (and without its set).
  Schema schema = source.schema();
  ASSERT_TRUE(schema.DropSet("DIV-EMP").ok());
  RecordTypeDef* emp = schema.FindRecordType("EMP");
  std::erase_if(emp->fields, [](const FieldDef& f) { return f.is_virtual; });
  ASSERT_TRUE(schema.DropRecordType("EMP").ok());
  ASSERT_TRUE(schema.Validate().ok());
  Database target = *Database::Create(schema);
  CopySpec spec;
  spec.map_type = [](const std::string& type) -> std::optional<std::string> {
    if (type == "EMP") return std::nullopt;
    return type;
  };
  spec.map_set = [](const std::string& set) -> std::optional<std::string> {
    if (set == "DIV-EMP") return std::nullopt;
    return set;
  };
  ASSERT_TRUE(CopyDatabase(source, &target, spec).ok());
  EXPECT_EQ(target.RecordCount(), 2u);  // just the divisions
}

TEST(CopyDatabaseTest, ChronologicalOrderPreserved) {
  Database source = MakeSchoolDatabase();
  Database target = *Database::Create(source.schema());
  Result<std::map<RecordId, RecordId>> map =
      CopyDatabase(source, &target, CopySpec{});
  ASSERT_TRUE(map.ok());
  RecordId src_cs101 = source.SystemMembers("ALL-COURSE")[0];
  RecordId tgt_cs101 = map->at(src_cs101);
  std::vector<RecordId> src_off = source.Members("CRS-OFF", src_cs101);
  std::vector<RecordId> tgt_off = target.Members("CRS-OFF", tgt_cs101);
  ASSERT_EQ(src_off.size(), tgt_off.size());
  for (size_t i = 0; i < src_off.size(); ++i) {
    EXPECT_EQ(target.GetField(tgt_off[i], "YEAR")->as_int(),
              source.GetField(src_off[i], "YEAR")->as_int());
  }
}

TEST(CopyDatabaseTest, ExtraFieldsHookError) {
  Database source = MakeCompanyDatabase();
  Database target = *Database::Create(source.schema());
  CopySpec spec;
  spec.extra_fields = [](const Database&, RecordId,
                         const std::string&) -> Result<FieldMap> {
    return Status::Internal("hook failure");
  };
  Result<std::map<RecordId, RecordId>> map =
      CopyDatabase(source, &target, spec);
  ASSERT_FALSE(map.ok());
  EXPECT_EQ(map.status().code(), StatusCode::kInternal);
}

TEST(CopyDatabaseTest, ConstraintFailureNamesRecord) {
  Database source = MakeCompanyDatabase();
  // Target where AGE must be non-null; give one source EMP a null age.
  Schema schema = source.schema();
  ConstraintDef c;
  c.name = "AGE-REQUIRED";
  c.kind = ConstraintKind::kNonNull;
  c.record = "EMP";
  c.fields = {"AGE"};
  ASSERT_TRUE(schema.AddConstraint(c).ok());
  RecordId machinery = source.SystemMembers("ALL-DIV")[0];
  RecordId adams = source.Members("DIV-EMP", machinery)[0];
  ASSERT_TRUE(source.ModifyRecord(adams, {{"AGE", Value::Null()}}).ok());
  Database target = *Database::Create(schema);
  Result<std::map<RecordId, RecordId>> map =
      CopyDatabase(source, &target, CopySpec{});
  ASSERT_FALSE(map.ok());
  EXPECT_EQ(map.status().code(), StatusCode::kConstraintViolation);
  EXPECT_NE(map.status().message().find("translating record"),
            std::string::npos);
}

TEST(CopyDatabaseTest, SelfSetsAreAllowed) {
  // An EMP -> EMP "manager" self-set must not trip the topo sort.
  Schema schema("ORG");
  RecordTypeDef emp;
  emp.name = "EMP";
  emp.fields.push_back({.name = "NAME", .type = FieldType::kString});
  ASSERT_TRUE(schema.AddRecordType(emp).ok());
  SetDef manages;
  manages.name = "MANAGES";
  manages.owner = "EMP";
  manages.member = "EMP";
  manages.insertion = InsertionClass::kManual;
  manages.retention = RetentionClass::kOptional;
  manages.ordering = SetOrdering::kChronological;
  ASSERT_TRUE(schema.AddSet(manages).ok());
  ASSERT_TRUE(schema.Validate().ok());
  Database source = *Database::Create(schema);
  RecordId boss =
      *source.StoreRecord({"EMP", {{"NAME", Value::String("BOSS")}}, {}});
  RecordId worker =
      *source.StoreRecord({"EMP", {{"NAME", Value::String("WORKER")}}, {}});
  ASSERT_TRUE(source.Connect("MANAGES", worker, boss).ok());
  Database target = *Database::Create(schema);
  Result<std::map<RecordId, RecordId>> map =
      CopyDatabase(source, &target, CopySpec{});
  ASSERT_TRUE(map.ok()) << map.status();
  EXPECT_EQ(target.OwnerOf("MANAGES", map->at(worker)), map->at(boss));
}

/// ORG schema: an EMP self-set (MANAGES) plus an unrelated DIV type, so a
/// raw-store link can point a deferred self-set connect at a non-EMP owner.
Schema OrgSchema() {
  Schema schema("ORG");
  RecordTypeDef emp;
  emp.name = "EMP";
  emp.fields.push_back({.name = "NAME", .type = FieldType::kString});
  EXPECT_TRUE(schema.AddRecordType(emp).ok());
  RecordTypeDef div;
  div.name = "DIV";
  div.fields.push_back({.name = "DIV-NAME", .type = FieldType::kString});
  EXPECT_TRUE(schema.AddRecordType(div).ok());
  SetDef manages;
  manages.name = "MANAGES";
  manages.owner = "EMP";
  manages.member = "EMP";
  manages.insertion = InsertionClass::kManual;
  manages.retention = RetentionClass::kOptional;
  manages.ordering = SetOrdering::kChronological;
  EXPECT_TRUE(schema.AddSet(manages).ok());
  EXPECT_TRUE(schema.Validate().ok());
  return schema;
}

TEST(CopyDatabaseTest, DeferredLinkSkipsOwnerOfIntentionallyUnmappedType) {
  // A deferred self-set connect whose owner record belongs to a type the
  // spec maps away is an intentional drop, not an error: the membership
  // vanishes with the owner.
  Database source = *Database::Create(OrgSchema());
  RecordId worker =
      *source.StoreRecord({"EMP", {{"NAME", Value::String("WORKER")}}, {}});
  RecordId div = source.mutable_store().Insert(
      "DIV", {{"DIV-NAME", Value::String("SALES")}});
  // Raw link: a DIV record owns a MANAGES occurrence (only the raw store
  // allows this shape; the deferred path must still handle it).
  ASSERT_TRUE(source.mutable_store().LinkLast("MANAGES", div, worker).ok());
  Database target = *Database::Create(OrgSchema());
  CopySpec spec;
  spec.map_type = [](const std::string& type) -> std::optional<std::string> {
    if (type == "DIV") return std::nullopt;
    return type;
  };
  Result<std::map<RecordId, RecordId>> map = CopyDatabase(source, &target, spec);
  ASSERT_TRUE(map.ok()) << map.status();
  EXPECT_EQ(target.RecordCount(), 1u);
  EXPECT_EQ(target.OwnerOf("MANAGES", map->at(worker)), 0u);
}

TEST(CopyDatabaseTest, DeferredLinkDanglingOwnerIsAnError) {
  // Regression: a deferred self-set connect whose owner simply was not
  // copied (here: a dangling raw-store owner id) used to be dropped
  // silently; it must fail exactly like the eager path does.
  Database source = *Database::Create(OrgSchema());
  RecordId worker =
      *source.StoreRecord({"EMP", {{"NAME", Value::String("WORKER")}}, {}});
  constexpr RecordId kDangling = 9999;
  ASSERT_TRUE(
      source.mutable_store().LinkLast("MANAGES", kDangling, worker).ok());
  Database target = *Database::Create(OrgSchema());
  Result<std::map<RecordId, RecordId>> map =
      CopyDatabase(source, &target, CopySpec{});
  ASSERT_FALSE(map.ok());
  EXPECT_EQ(map.status().code(), StatusCode::kInternal);
  EXPECT_NE(map.status().message().find("was not copied first"),
            std::string::npos)
      << map.status();
}

TEST(CopyDatabaseTest, ManyTypesCopyOwnersBeforeMembers) {
  // Pins TopoOrderTypes over a deep ownership chain: every owner must be
  // copied (and so assigned a target id) before its member.
  constexpr int kTypes = 40;
  Schema schema("CHAIN");
  for (int i = 0; i < kTypes; ++i) {
    RecordTypeDef t;
    t.name = "T" + std::to_string(i);
    t.fields.push_back({.name = "N", .type = FieldType::kInt});
    ASSERT_TRUE(schema.AddRecordType(t).ok());
  }
  for (int i = 1; i < kTypes; ++i) {
    SetDef s;
    s.name = "S" + std::to_string(i);
    s.owner = "T" + std::to_string(i - 1);
    s.member = "T" + std::to_string(i);
    s.insertion = InsertionClass::kManual;
    s.retention = RetentionClass::kOptional;
    s.ordering = SetOrdering::kChronological;
    ASSERT_TRUE(schema.AddSet(s).ok());
  }
  ASSERT_TRUE(schema.Validate().ok());
  Database source = *Database::Create(schema);
  // Store members before owners so source id order contradicts topo order.
  std::vector<RecordId> ids(kTypes);
  for (int i = kTypes - 1; i >= 0; --i) {
    ids[i] = *source.StoreRecord(
        {"T" + std::to_string(i), {{"N", Value::Int(i)}}, {}});
  }
  for (int i = 1; i < kTypes; ++i) {
    ASSERT_TRUE(
        source.Connect("S" + std::to_string(i), ids[i], ids[i - 1]).ok());
  }
  Database target = *Database::Create(schema);
  Result<std::map<RecordId, RecordId>> map =
      CopyDatabase(source, &target, CopySpec{});
  ASSERT_TRUE(map.ok()) << map.status();
  for (int i = 1; i < kTypes; ++i) {
    EXPECT_LT(map->at(ids[i - 1]), map->at(ids[i])) << "type T" << i;
    EXPECT_EQ(target.OwnerOf("S" + std::to_string(i), map->at(ids[i])),
              map->at(ids[i - 1]));
  }
}

TEST(CopyDatabaseTest, BulkAndRecordEnginesProduceIdenticalDatabases) {
  for (Database source :
       {MakeCompanyDatabase(), testing::MakeSchoolDatabase()}) {
    Database bulk_target = *Database::Create(source.schema());
    Database record_target = *Database::Create(source.schema());
    Result<std::map<RecordId, RecordId>> bulk_map = [&] {
      ScopedDataCopyEngine scoped(DataCopyEngine::kColumnarBulk);
      return CopyDatabase(source, &bulk_target, CopySpec{});
    }();
    Result<std::map<RecordId, RecordId>> record_map = [&] {
      ScopedDataCopyEngine scoped(DataCopyEngine::kRecordAtATime);
      return CopyDatabase(source, &record_target, CopySpec{});
    }();
    ASSERT_TRUE(bulk_map.ok()) << bulk_map.status();
    ASSERT_TRUE(record_map.ok()) << record_map.status();
    EXPECT_EQ(*bulk_map, *record_map);
    EXPECT_EQ(*DumpDatabaseText(bulk_target), *DumpDatabaseText(record_target));
  }
}

TEST(CopyDatabaseTest, BulkAndRecordEnginesAgreeOnConstraintErrors) {
  // Same failing copy under both engines: identical status, including the
  // record named in the message.
  Database source = MakeCompanyDatabase();
  Schema schema = source.schema();
  ConstraintDef c;
  c.name = "AGE-REQUIRED";
  c.kind = ConstraintKind::kNonNull;
  c.record = "EMP";
  c.fields = {"AGE"};
  ASSERT_TRUE(schema.AddConstraint(c).ok());
  RecordId machinery = source.SystemMembers("ALL-DIV")[0];
  RecordId adams = source.Members("DIV-EMP", machinery)[0];
  ASSERT_TRUE(source.ModifyRecord(adams, {{"AGE", Value::Null()}}).ok());
  std::vector<std::string> messages;
  for (DataCopyEngine engine :
       {DataCopyEngine::kColumnarBulk, DataCopyEngine::kRecordAtATime}) {
    ScopedDataCopyEngine scoped(engine);
    Database target = *Database::Create(schema);
    Result<std::map<RecordId, RecordId>> map =
        CopyDatabase(source, &target, CopySpec{});
    ASSERT_FALSE(map.ok());
    EXPECT_EQ(map.status().code(), StatusCode::kConstraintViolation);
    messages.push_back(map.status().ToString());
  }
  EXPECT_EQ(messages[0], messages[1]);
}

TEST(CopyDatabaseTest, BulkAndRecordEnginesAgreeOnDuplicateKeyErrors) {
  // Duplicate unique keys smuggled in through the raw store fail the copy
  // with the same message under both engines.
  Database source = testing::MakeDatabase(testing::SchoolDdl());
  source.mutable_store().Insert("COURSE",
                                {{"CNO", Value::String("CS101")},
                                 {"CNAME", Value::String("INTRO")}});
  source.mutable_store().Insert("COURSE",
                                {{"CNO", Value::String("CS101")},
                                 {"CNAME", Value::String("INTRO AGAIN")}});
  std::vector<std::string> messages;
  for (DataCopyEngine engine :
       {DataCopyEngine::kColumnarBulk, DataCopyEngine::kRecordAtATime}) {
    ScopedDataCopyEngine scoped(engine);
    Database target = testing::MakeDatabase(testing::SchoolDdl());
    Result<std::map<RecordId, RecordId>> map =
        CopyDatabase(source, &target, CopySpec{});
    ASSERT_FALSE(map.ok());
    EXPECT_EQ(map.status().code(), StatusCode::kConstraintViolation);
    EXPECT_NE(map.status().message().find("duplicate key"), std::string::npos)
        << map.status();
    messages.push_back(map.status().ToString());
  }
  EXPECT_EQ(messages[0], messages[1]);
}

// --- columnar-source staging (extent-to-extent fast path) -----------------

constexpr char kColumnarDdl[] = R"(
SCHEMA NAME IS COLSRC
RECORD SECTION.
  RECORD NAME IS DIV.
  FIELDS ARE.
    DIV-NAME PIC X(20).
    DIV-LOC PIC X(10).
  END RECORD.
  RECORD NAME IS EMP.
  FIELDS ARE.
    EMP-NAME PIC X(25).
    DEPT-NAME PIC X(5).
    AGE PIC 9(2).
  END RECORD.
END RECORD SECTION.
SET SECTION.
  SET NAME IS ALL-DIV.
  OWNER IS SYSTEM.
  MEMBER IS DIV.
  ORDER IS CHRONOLOGICAL.
  END SET.
  SET NAME IS DIV-EMP.
  OWNER IS DIV.
  MEMBER IS EMP.
  ORDER IS CHRONOLOGICAL.
  END SET.
END SET SECTION.
END SCHEMA.
)";

/// A small bulk-loaded source: both types adopted as columnar segments
/// (never promoted), with null cells in string and int columns.
Database BuildColumnarSource() {
  Database db = testing::MakeDatabase(kColumnarDdl);
  Store& store = db.mutable_store();
  ExtentTable divs("DIV", {"DIV-NAME", "DIV-LOC"},
                   {FieldType::kString, FieldType::kString});
  divs.AppendRow(0, {Value::String("MACHINERY"), Value::String("EAST")});
  divs.AppendRow(0, {Value::String("AEROSPACE"), Value::Null()});
  const ExtentTable& div_rows = store.AdoptExtents(std::move(divs));
  EXPECT_TRUE(
      store.LinkLast("ALL-DIV", kSystemOwner, div_rows.IdAt(0)).ok());
  EXPECT_TRUE(
      store.LinkLast("ALL-DIV", kSystemOwner, div_rows.IdAt(1)).ok());
  ExtentTable emps("EMP", {"EMP-NAME", "DEPT-NAME", "AGE"},
                   {FieldType::kString, FieldType::kString, FieldType::kInt});
  emps.AppendRow(
      0, {Value::String("ADAMS"), Value::String("SALES"), Value::Int(33)});
  emps.AppendRow(0, {Value::String("BAKER"), Value::Null(), Value::Int(41)});
  emps.AppendRow(
      0, {Value::String("COOK"), Value::String("ADMIN"), Value::Null()});
  const ExtentTable& emp_rows = store.AdoptExtents(std::move(emps));
  EXPECT_TRUE(
      store.LinkLast("DIV-EMP", div_rows.IdAt(0), emp_rows.IdAt(0)).ok());
  EXPECT_TRUE(
      store.LinkLast("DIV-EMP", div_rows.IdAt(0), emp_rows.IdAt(1)).ok());
  EXPECT_TRUE(
      store.LinkLast("DIV-EMP", div_rows.IdAt(1), emp_rows.IdAt(2)).ok());
  db.RebuildIndexes();
  return db;
}

/// True when no columnar row of `type` has been promoted into the record
/// heap — i.e. the copy read the extents directly.
bool StillFullyColumnar(const Database& db, const std::string& type) {
  for (const Store::ColumnarRun& run : db.raw_store().ColumnarRuns(type)) {
    if (run.live != run.table->rows()) return false;
  }
  return true;
}

TEST(CopyDatabaseTest, ColumnarSourceBulkMatchesRecordEngine) {
  // Fresh source per engine: promotion is one-way, and the bulk engine
  // must see the same columnar image the record engine promotes.
  std::vector<std::string> dumps;
  std::vector<std::map<RecordId, RecordId>> maps;
  for (DataCopyEngine engine :
       {DataCopyEngine::kColumnarBulk, DataCopyEngine::kRecordAtATime}) {
    Database source = BuildColumnarSource();
    Database target = testing::MakeDatabase(kColumnarDdl);
    ScopedDataCopyEngine scoped(engine);
    Result<std::map<RecordId, RecordId>> map =
        CopyDatabase(source, &target, CopySpec{});
    ASSERT_TRUE(map.ok()) << map.status();
    maps.push_back(*map);
    dumps.push_back(*DumpDatabaseText(target));
    if (engine == DataCopyEngine::kColumnarBulk) {
      // The fast path reads extents in place; nothing may be promoted.
      EXPECT_TRUE(StillFullyColumnar(source, "DIV"));
      EXPECT_TRUE(StillFullyColumnar(source, "EMP"));
    }
  }
  EXPECT_EQ(maps[0], maps[1]);
  EXPECT_EQ(dumps[0], dumps[1]);
}

TEST(CopyDatabaseTest, ColumnarChainedCopiesMatchRecordEngine) {
  // A bulk target is itself columnar; copying it again must keep matching
  // the record engine (copy-of-copy chain).
  std::vector<std::string> dumps;
  for (DataCopyEngine engine :
       {DataCopyEngine::kColumnarBulk, DataCopyEngine::kRecordAtATime}) {
    Database source = BuildColumnarSource();
    Database mid = testing::MakeDatabase(kColumnarDdl);
    Database final_target = testing::MakeDatabase(kColumnarDdl);
    ScopedDataCopyEngine scoped(engine);
    ASSERT_TRUE(CopyDatabase(source, &mid, CopySpec{}).ok());
    ASSERT_TRUE(CopyDatabase(mid, &final_target, CopySpec{}).ok());
    if (engine == DataCopyEngine::kColumnarBulk) {
      EXPECT_TRUE(StillFullyColumnar(mid, "EMP"));
    }
    dumps.push_back(*DumpDatabaseText(final_target));
  }
  EXPECT_EQ(dumps[0], dumps[1]);
}

TEST(CopyDatabaseTest, ColumnarSourceDroppedFieldGetsDefault) {
  // A source column mapped away leaves the target column at its declared
  // default; null source cells stay null (present-but-null, not default).
  CopySpec spec;
  spec.map_field = [](const std::string&,
                      const std::string& field) -> std::optional<std::string> {
    if (field == "DEPT-NAME") return std::nullopt;
    return field;
  };
  std::vector<std::string> dumps;
  for (DataCopyEngine engine :
       {DataCopyEngine::kColumnarBulk, DataCopyEngine::kRecordAtATime}) {
    Database source = BuildColumnarSource();
    Database target = testing::MakeDatabase(kColumnarDdl);
    ScopedDataCopyEngine scoped(engine);
    ASSERT_TRUE(CopyDatabase(source, &target, spec).ok());
    if (engine == DataCopyEngine::kColumnarBulk) {
      EXPECT_TRUE(StillFullyColumnar(source, "EMP"));
    }
    dumps.push_back(*DumpDatabaseText(target));
  }
  EXPECT_EQ(dumps[0], dumps[1]);
}

TEST(CopyDatabaseTest, PartiallyPromotedColumnarSourceCopiesIdentically) {
  // Promoting even one row makes the type ineligible for the extent read
  // path; the record-read fallback must produce the identical database.
  std::vector<std::string> dumps;
  for (DataCopyEngine engine :
       {DataCopyEngine::kColumnarBulk, DataCopyEngine::kRecordAtATime}) {
    Database source = BuildColumnarSource();
    RecordId second_emp = source.raw_store().OfType("EMP")[1];
    ASSERT_NE(source.raw_store().Get(second_emp), nullptr);  // promotes
    EXPECT_FALSE(StillFullyColumnar(source, "EMP"));
    Database target = testing::MakeDatabase(kColumnarDdl);
    ScopedDataCopyEngine scoped(engine);
    ASSERT_TRUE(CopyDatabase(source, &target, CopySpec{}).ok());
    dumps.push_back(*DumpDatabaseText(target));
  }
  EXPECT_EQ(dumps[0], dumps[1]);
}

}  // namespace
}  // namespace dbpc
