#include "restructure/data_copy.h"

#include <gtest/gtest.h>

#include "testing/fixtures.h"

namespace dbpc {
namespace {

using testing::MakeCompanyDatabase;
using testing::MakeSchoolDatabase;

TEST(CopyDatabaseTest, DefaultSpecIsIdentity) {
  Database source = MakeCompanyDatabase();
  Database target = *Database::Create(source.schema());
  Result<std::map<RecordId, RecordId>> map =
      CopyDatabase(source, &target, CopySpec{});
  ASSERT_TRUE(map.ok()) << map.status();
  EXPECT_EQ(map->size(), source.RecordCount());
  EXPECT_EQ(target.RecordCount(), source.RecordCount());
  // Memberships survive with mapped ids.
  RecordId src_machinery = source.SystemMembers("ALL-DIV")[0];
  RecordId tgt_machinery = map->at(src_machinery);
  EXPECT_EQ(target.Members("DIV-EMP", tgt_machinery).size(), 3u);
}

TEST(CopyDatabaseTest, DropTypeDropsMemberships) {
  Database source = MakeCompanyDatabase();
  // Target schema without EMP (and without its set).
  Schema schema = source.schema();
  ASSERT_TRUE(schema.DropSet("DIV-EMP").ok());
  RecordTypeDef* emp = schema.FindRecordType("EMP");
  std::erase_if(emp->fields, [](const FieldDef& f) { return f.is_virtual; });
  ASSERT_TRUE(schema.DropRecordType("EMP").ok());
  ASSERT_TRUE(schema.Validate().ok());
  Database target = *Database::Create(schema);
  CopySpec spec;
  spec.map_type = [](const std::string& type) -> std::optional<std::string> {
    if (type == "EMP") return std::nullopt;
    return type;
  };
  spec.map_set = [](const std::string& set) -> std::optional<std::string> {
    if (set == "DIV-EMP") return std::nullopt;
    return set;
  };
  ASSERT_TRUE(CopyDatabase(source, &target, spec).ok());
  EXPECT_EQ(target.RecordCount(), 2u);  // just the divisions
}

TEST(CopyDatabaseTest, ChronologicalOrderPreserved) {
  Database source = MakeSchoolDatabase();
  Database target = *Database::Create(source.schema());
  Result<std::map<RecordId, RecordId>> map =
      CopyDatabase(source, &target, CopySpec{});
  ASSERT_TRUE(map.ok());
  RecordId src_cs101 = source.SystemMembers("ALL-COURSE")[0];
  RecordId tgt_cs101 = map->at(src_cs101);
  std::vector<RecordId> src_off = source.Members("CRS-OFF", src_cs101);
  std::vector<RecordId> tgt_off = target.Members("CRS-OFF", tgt_cs101);
  ASSERT_EQ(src_off.size(), tgt_off.size());
  for (size_t i = 0; i < src_off.size(); ++i) {
    EXPECT_EQ(target.GetField(tgt_off[i], "YEAR")->as_int(),
              source.GetField(src_off[i], "YEAR")->as_int());
  }
}

TEST(CopyDatabaseTest, ExtraFieldsHookError) {
  Database source = MakeCompanyDatabase();
  Database target = *Database::Create(source.schema());
  CopySpec spec;
  spec.extra_fields = [](const Database&, RecordId,
                         const std::string&) -> Result<FieldMap> {
    return Status::Internal("hook failure");
  };
  Result<std::map<RecordId, RecordId>> map =
      CopyDatabase(source, &target, spec);
  ASSERT_FALSE(map.ok());
  EXPECT_EQ(map.status().code(), StatusCode::kInternal);
}

TEST(CopyDatabaseTest, ConstraintFailureNamesRecord) {
  Database source = MakeCompanyDatabase();
  // Target where AGE must be non-null; give one source EMP a null age.
  Schema schema = source.schema();
  ConstraintDef c;
  c.name = "AGE-REQUIRED";
  c.kind = ConstraintKind::kNonNull;
  c.record = "EMP";
  c.fields = {"AGE"};
  ASSERT_TRUE(schema.AddConstraint(c).ok());
  RecordId machinery = source.SystemMembers("ALL-DIV")[0];
  RecordId adams = source.Members("DIV-EMP", machinery)[0];
  ASSERT_TRUE(source.ModifyRecord(adams, {{"AGE", Value::Null()}}).ok());
  Database target = *Database::Create(schema);
  Result<std::map<RecordId, RecordId>> map =
      CopyDatabase(source, &target, CopySpec{});
  ASSERT_FALSE(map.ok());
  EXPECT_EQ(map.status().code(), StatusCode::kConstraintViolation);
  EXPECT_NE(map.status().message().find("translating record"),
            std::string::npos);
}

TEST(CopyDatabaseTest, SelfSetsAreAllowed) {
  // An EMP -> EMP "manager" self-set must not trip the topo sort.
  Schema schema("ORG");
  RecordTypeDef emp;
  emp.name = "EMP";
  emp.fields.push_back({.name = "NAME", .type = FieldType::kString});
  ASSERT_TRUE(schema.AddRecordType(emp).ok());
  SetDef manages;
  manages.name = "MANAGES";
  manages.owner = "EMP";
  manages.member = "EMP";
  manages.insertion = InsertionClass::kManual;
  manages.retention = RetentionClass::kOptional;
  manages.ordering = SetOrdering::kChronological;
  ASSERT_TRUE(schema.AddSet(manages).ok());
  ASSERT_TRUE(schema.Validate().ok());
  Database source = *Database::Create(schema);
  RecordId boss =
      *source.StoreRecord({"EMP", {{"NAME", Value::String("BOSS")}}, {}});
  RecordId worker =
      *source.StoreRecord({"EMP", {{"NAME", Value::String("WORKER")}}, {}});
  ASSERT_TRUE(source.Connect("MANAGES", worker, boss).ok());
  Database target = *Database::Create(schema);
  Result<std::map<RecordId, RecordId>> map =
      CopyDatabase(source, &target, CopySpec{});
  ASSERT_TRUE(map.ok()) << map.status();
  EXPECT_EQ(target.OwnerOf("MANAGES", map->at(worker)), map->at(boss));
}

}  // namespace
}  // namespace dbpc
