#include <gtest/gtest.h>

#include "equivalence/checker.h"
#include "lang/parser.h"
#include "restructure/transformation.h"
#include "supervisor/supervisor.h"
#include "testing/fixtures.h"

namespace dbpc {
namespace {

using testing::MakeCompanyDatabase;

/// EMP splits into EMP (name) + EMP-DATA (dept, age), linked 1:1.
SplitRecordParams EmpSplit() {
  SplitRecordParams p;
  p.record = "EMP";
  p.detail = "EMP-DATA";
  p.set_name = "EMP-DETAIL";
  p.link_field = "EMP-NAME";
  p.moved_fields = {"DEPT-NAME", "AGE"};
  return p;
}

/// The company schema plus a uniqueness constraint making EMP-NAME a
/// global identifier (the split's precondition).
Schema CompanyWithUniqueNames() {
  Schema schema = MakeCompanyDatabase().schema();
  ConstraintDef unique;
  unique.name = "UNIQ-EMP-NAME";
  unique.kind = ConstraintKind::kUniqueness;
  unique.record = "EMP";
  unique.fields = {"EMP-NAME"};
  EXPECT_TRUE(schema.AddConstraint(unique).ok());
  return schema;
}

Database CompanyDbWithUniqueNames() {
  Database db = *Database::Create(CompanyWithUniqueNames());
  RecordId machinery = *db.StoreRecord(
      {"DIV",
       {{"DIV-NAME", Value::String("MACHINERY")},
        {"DIV-LOC", Value::String("EAST")}},
       {}});
  RecordId textiles = *db.StoreRecord(
      {"DIV",
       {{"DIV-NAME", Value::String("TEXTILES")},
        {"DIV-LOC", Value::String("SOUTH")}},
       {}});
  auto emp = [&](const char* n, const char* d, int64_t a, RecordId o) {
    (void)*db.StoreRecord({"EMP",
                           {{"EMP-NAME", Value::String(n)},
                            {"DEPT-NAME", Value::String(d)},
                            {"AGE", Value::Int(a)}},
                           {{"DIV-EMP", o}}});
  };
  emp("ADAMS", "SALES", 34, machinery);
  emp("BAKER", "SALES", 28, machinery);
  emp("CLARK", "PLANG", 45, machinery);
  emp("DAVIS", "SALES", 31, textiles);
  return db;
}

TEST(SplitRecordTest, SchemaShape) {
  TransformationPtr t = MakeSplitRecordVertical(EmpSplit());
  Result<Schema> target = t->ApplyToSchema(CompanyWithUniqueNames());
  ASSERT_TRUE(target.ok()) << target.status();
  const RecordTypeDef* detail = target->FindRecordType("EMP-DATA");
  ASSERT_NE(detail, nullptr);
  EXPECT_TRUE(detail->HasField("EMP-NAME"));
  EXPECT_TRUE(detail->HasField("DEPT-NAME"));
  EXPECT_TRUE(detail->HasField("AGE"));
  const FieldDef* age = target->FindRecordType("EMP")->FindField("AGE");
  ASSERT_NE(age, nullptr);
  EXPECT_TRUE(age->is_virtual);
  EXPECT_EQ(age->via_set, "EMP-DETAIL");
  const SetDef* set = target->FindSet("EMP-DETAIL");
  ASSERT_NE(set, nullptr);
  EXPECT_EQ(set->owner, "EMP-DATA");
  EXPECT_EQ(set->member, "EMP");
  EXPECT_NE(target->FindConstraint("UNIQ-EMP-DATA-EMP-NAME"), nullptr);
}

TEST(SplitRecordTest, RequiresUniqueLinkField) {
  SplitRecordParams p = EmpSplit();
  // Plain company schema: EMP-NAME is only unique per division.
  TransformationPtr t = MakeSplitRecordVertical(p);
  Result<Schema> target = t->ApplyToSchema(MakeCompanyDatabase().schema());
  ASSERT_FALSE(target.ok());
  EXPECT_EQ(target.status().code(), StatusCode::kInvalidArgument);
}

TEST(SplitRecordTest, RejectsMovingSetKey) {
  SplitRecordParams p = EmpSplit();
  p.link_field = "AGE";
  p.moved_fields = {"EMP-NAME"};  // DIV-EMP sort key
  Schema schema = CompanyWithUniqueNames();
  ConstraintDef unique;
  unique.name = "UNIQ-AGE";
  unique.kind = ConstraintKind::kUniqueness;
  unique.record = "EMP";
  unique.fields = {"AGE"};
  ASSERT_TRUE(schema.AddConstraint(unique).ok());
  TransformationPtr t = MakeSplitRecordVertical(p);
  EXPECT_FALSE(t->ApplyToSchema(schema).ok());
}

TEST(SplitRecordTest, DataCarriesThroughDetail) {
  TransformationPtr t = MakeSplitRecordVertical(EmpSplit());
  Database source = CompanyDbWithUniqueNames();
  Result<Database> translated = TranslateDatabase(source, {t.get()});
  ASSERT_TRUE(translated.ok()) << translated.status();
  EXPECT_EQ(translated->AllOfType("EMP-DATA").size(), 4u);
  // Virtual reads reproduce the moved values.
  RecordId machinery = translated->SystemMembers("ALL-DIV")[0];
  RecordId adams = translated->Members("DIV-EMP", machinery)[0];
  EXPECT_EQ(translated->GetField(adams, "AGE")->as_int(), 34);
  EXPECT_EQ(translated->GetField(adams, "DEPT-NAME")->as_string(), "SALES");
}

TEST(SplitRecordTest, RoundTripsThroughMerge) {
  TransformationPtr split = MakeSplitRecordVertical(EmpSplit());
  ASSERT_TRUE(split->HasInverse());
  TransformationPtr merge = split->Inverse();
  Database source = CompanyDbWithUniqueNames();
  Result<Database> round =
      TranslateDatabase(source, {split.get(), merge.get()});
  ASSERT_TRUE(round.ok()) << round.status();
  EXPECT_EQ(round->schema().ToDdl(), source.schema().ToDdl());
  RecordId machinery = round->SystemMembers("ALL-DIV")[0];
  RecordId adams = round->Members("DIV-EMP", machinery)[0];
  EXPECT_EQ(round->GetField(adams, "AGE")->as_int(), 34);
}

TEST(SplitRecordTest, ReadOnlyProgramConvertsAutomatically) {
  Database source = CompanyDbWithUniqueNames();
  TransformationPtr split = MakeSplitRecordVertical(EmpSplit());
  ConversionSupervisor supervisor =
      *ConversionSupervisor::Create(source.schema(), {split.get()},
                                    SupervisorOptions{});
  Program p = *ParseProgram(R"(
PROGRAM RPT.
  FOR EACH E IN FIND(EMP: SYSTEM, ALL-DIV, DIV, DIV-EMP, EMP(AGE > 30)) DO
    GET EMP-NAME OF E INTO N.
    GET DEPT-NAME OF E INTO D.
    DISPLAY N & '/' & D.
  END-FOR.
END PROGRAM.)");
  PipelineOutcome outcome = *supervisor.ConvertProgram(p);
  ASSERT_TRUE(outcome.accepted);
  EXPECT_EQ(outcome.classification, Convertibility::kAutomatic);
  Database target = *supervisor.TranslateDatabase(source);
  EquivalenceReport report = *CheckEquivalence(
      source, p, target, outcome.conversion.converted, IoScript());
  EXPECT_TRUE(report.equivalent) << report.detail;
}

TEST(SplitRecordTest, StoreGainsDetailCreation) {
  Database source = CompanyDbWithUniqueNames();
  TransformationPtr split = MakeSplitRecordVertical(EmpSplit());
  ConversionSupervisor supervisor =
      *ConversionSupervisor::Create(source.schema(), {split.get()},
                                    SupervisorOptions{});
  Program p = *ParseProgram(R"(
PROGRAM STO.
  STORE EMP (EMP-NAME = 'EVANS', DEPT-NAME = 'SALES', AGE = 50)
    IN DIV-EMP WHERE (DIV-NAME = 'TEXTILES').
  DISPLAY 'DONE'.
END PROGRAM.)");
  PipelineOutcome outcome = *supervisor.ConvertProgram(p);
  ASSERT_TRUE(outcome.accepted) << ConvertibilityName(outcome.classification);
  // The converted program stores the detail first, then the member.
  ASSERT_GE(outcome.conversion.converted.body.size(), 3u);
  EXPECT_EQ(outcome.conversion.converted.body[0].record_type, "EMP-DATA");
  EXPECT_EQ(outcome.conversion.converted.body[1].record_type, "EMP");

  Database target = *supervisor.TranslateDatabase(source);
  EquivalenceReport report = *CheckEquivalence(
      source, p, target, outcome.conversion.converted, IoScript());
  EXPECT_TRUE(report.equivalent)
      << report.detail << "\n"
      << outcome.conversion.converted.ToSource();
  // And the stored employee's split data is reachable in the target.
  Database check = target;
  Interpreter interp(&check, IoScript());
  RunResult run = *interp.Run(outcome.conversion.converted);
  Predicate evans = Predicate::Compare(
      "EMP-NAME", CompareOp::kEq, Operand::Literal(Value::String("EVANS")));
  std::vector<RecordId> found =
      *check.SelectWhere("EMP", evans, EmptyHostEnv());
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(check.GetField(found[0], "AGE")->as_int(), 50);
}

TEST(SplitRecordTest, ModifyOfMovedFieldNeedsAnalyst) {
  Database source = CompanyDbWithUniqueNames();
  TransformationPtr split = MakeSplitRecordVertical(EmpSplit());
  ConversionSupervisor supervisor =
      *ConversionSupervisor::Create(source.schema(), {split.get()},
                                    SupervisorOptions{});
  Program p = *ParseProgram(R"(
PROGRAM UPD.
  FOR EACH E IN FIND(EMP: SYSTEM, ALL-DIV, DIV, DIV-EMP, EMP) DO
    MODIFY E SET (AGE = 1).
  END-FOR.
END PROGRAM.)");
  PipelineOutcome outcome = *supervisor.ConvertProgram(p);
  EXPECT_EQ(outcome.classification, Convertibility::kNeedsAnalyst);
}

TEST(MergeRecordsTest, FoldsSplitStoresBack) {
  // Split then merge at the program level: a split-produced program merges
  // back into a single STORE.
  Database source = CompanyDbWithUniqueNames();
  TransformationPtr split = MakeSplitRecordVertical(EmpSplit());
  TransformationPtr merge = split->Inverse();
  ConversionSupervisor supervisor = *ConversionSupervisor::Create(
      source.schema(), {split.get(), merge.get()}, SupervisorOptions{});
  Program p = *ParseProgram(R"(
PROGRAM STO.
  STORE EMP (EMP-NAME = 'EVANS', DEPT-NAME = 'SALES', AGE = 50)
    IN DIV-EMP WHERE (DIV-NAME = 'TEXTILES').
  DISPLAY 'DONE'.
END PROGRAM.)");
  PipelineOutcome outcome = *supervisor.ConvertProgram(p);
  ASSERT_TRUE(outcome.accepted);
  // Round trip: back to a single store plus the display.
  ASSERT_EQ(outcome.conversion.converted.body.size(), 2u)
      << outcome.conversion.converted.ToSource();
  Database target = *supervisor.TranslateDatabase(source);
  EquivalenceReport report = *CheckEquivalence(
      source, p, target, outcome.conversion.converted, IoScript());
  EXPECT_TRUE(report.equivalent) << report.detail;
}

}  // namespace
}  // namespace dbpc
