// Property sweeps across the corpus and the transformation catalog:
//
//  P1  inverse translation: for every invertible plan, translating forward
//      and back reproduces the source database content exactly (Housel's
//      inverse-operator condition, paper section 2.2);
//  P2  strategy agreement: for every corpus program the pipeline accepts
//      automatically, the rewritten program, the DML-emulation layer and
//      the bridge all produce the source program's exact I/O trace;
//  P3  lower/lift: lowering an accepted Maryland program to navigational
//      templates and re-analyzing it preserves behaviour.

#include <gtest/gtest.h>

#include "bridge/bridge.h"
#include "corpus/corpus.h"
#include "emulate/emulator.h"
#include "equivalence/checker.h"
#include "generate/generator.h"
#include "lang/interpreter.h"
#include "restructure/plan_parser.h"
#include "supervisor/supervisor.h"
#include "testing/fixtures.h"

namespace dbpc {
namespace {

using testing::MakeCompanyDatabase;

/// Invertible plans, written in the plan language for good measure.
const char* const kInvertiblePlans[] = {
    R"(RESTRUCTURE PLAN RENAMES.
  RENAME RECORD EMP TO WORKER.
  RENAME FIELD AGE OF WORKER TO YEARS.
  RENAME SET DIV-EMP TO STAFF.
END PLAN.)",
    R"(RESTRUCTURE PLAN FIG44.
  INTRODUCE RECORD DEPT BETWEEN DIV-EMP GROUPING BY DEPT-NAME
      AS DIV-DEPT AND DEPT-EMP.
END PLAN.)",
    R"(RESTRUCTURE PLAN MATERIALIZE.
  MATERIALIZE FIELD DIV-NAME OF EMP.
END PLAN.)",
    R"(RESTRUCTURE PLAN REORDER.
  ORDER SET DIV-EMP BY (AGE, EMP-NAME).
END PLAN.)",
};

/// Canonical content fingerprint: type + sorted fields + owners, sorted.
std::string ContentFingerprint(const Database& db) {
  std::vector<std::string> lines;
  for (RecordId id : db.raw_store().AllRecords()) {
    const StoredRecord* rec = db.raw_store().Get(id);
    std::string line = rec->type + "{";
    for (const auto& [field, value] : rec->fields) {
      line += field + "=" + value.ToLiteral() + ";";
    }
    line += "}[";
    for (const SetDef& set : db.schema().sets()) {
      if (set.system_owned()) continue;
      RecordId owner = db.OwnerOf(set.name, id);
      if (owner == 0) continue;
      const StoredRecord* orec = db.raw_store().Get(owner);
      line += set.name + "->" + orec->type + "{";
      for (const auto& [field, value] : orec->fields) {
        line += field + "=" + value.ToLiteral() + ";";
      }
      line += "};";
    }
    line += "]";
    lines.push_back(std::move(line));
  }
  std::sort(lines.begin(), lines.end());
  std::string out;
  for (const std::string& l : lines) {
    out += l;
    out += "\n";
  }
  return out;
}

class InverseTranslationTest : public ::testing::TestWithParam<const char*> {};

TEST_P(InverseTranslationTest, ForwardThenBackwardIsIdentity) {
  RestructuringPlan plan = std::move(ParsePlan(GetParam())).value();
  Database source = MakeCompanyDatabase();

  // Forward.
  Result<Database> forward = TranslateDatabase(source, plan.View());
  ASSERT_TRUE(forward.ok()) << forward.status();
  // Backward: the inverse plan resolves schema-dependent inverses itself.
  Result<std::vector<TransformationPtr>> inverse_owned =
      InversePlan(source.schema(), plan.View());
  ASSERT_TRUE(inverse_owned.ok()) << inverse_owned.status();
  std::vector<const Transformation*> inverse_plan;
  for (const TransformationPtr& t : *inverse_owned) {
    inverse_plan.push_back(t.get());
  }
  Result<Database> round = TranslateDatabase(*forward, inverse_plan);
  ASSERT_TRUE(round.ok()) << round.status();
  EXPECT_EQ(round->schema().ToDdl(), source.schema().ToDdl());
  EXPECT_EQ(ContentFingerprint(*round), ContentFingerprint(source));
}

INSTANTIATE_TEST_SUITE_P(Plans, InverseTranslationTest,
                         ::testing::ValuesIn(kInvertiblePlans));

class StrategyAgreementTest : public ::testing::TestWithParam<int> {};

TEST_P(StrategyAgreementTest, AllStrategiesMatchSourceTrace) {
  std::vector<CorpusProgram> corpus = GenerateCompanyCorpus(CorpusMix{}, 99);
  const CorpusProgram& entry = corpus[static_cast<size_t>(GetParam())];

  Database source = MakeCompanyDatabase();
  RestructuringPlan plan = std::move(ParsePlan(kInvertiblePlans[1])).value();

  ConversionSupervisor supervisor = *ConversionSupervisor::Create(
      source.schema(), plan.View(), SupervisorOptions{});
  PipelineOutcome outcome = *supervisor.ConvertProgram(entry.program);
  if (outcome.classification != Convertibility::kAutomatic) {
    GTEST_SKIP() << ConvertibilityName(outcome.classification);
  }
  Database target = *supervisor.TranslateDatabase(source);

  IoScript script;
  script.terminal_input = {"FIND"};
  Trace source_trace = *TraceOf(source, entry.program, script);

  // Rewritten.
  Trace rewritten = *TraceOf(target, outcome.conversion.converted, script);
  EXPECT_EQ(rewritten, source_trace)
      << CorpusShapeName(entry.shape) << " rewritten\n"
      << entry.program.ToSource();
  // Emulation.
  {
    DmlEmulator emulator =
        *DmlEmulator::Create(source.schema(), plan.View());
    Database db = target;
    DmlEmulator::EmulationRun run = *emulator.Run(entry.program, &db, script);
    EXPECT_EQ(run.run.trace, source_trace)
        << CorpusShapeName(entry.shape) << " emulation";
  }
  // Bridge.
  {
    BridgeRunner bridge =
        std::move(BridgeRunner::Create(source.schema(), plan.View())).value();
    Database db = target;
    BridgeRunner::BridgeRun run =
        *bridge.Run(entry.program, &db, script, {.differential = true});
    EXPECT_EQ(run.run.trace, source_trace)
        << CorpusShapeName(entry.shape) << " bridge";
  }
}

INSTANTIATE_TEST_SUITE_P(Corpus, StrategyAgreementTest,
                         ::testing::Range(0, CorpusMix{}.Total()));

class LowerLiftSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(LowerLiftSweepTest, LoweredProgramsBehaveIdentically) {
  std::vector<CorpusProgram> corpus = GenerateCompanyCorpus(CorpusMix{}, 123);
  const CorpusProgram& entry = corpus[static_cast<size_t>(GetParam())];
  Database db = MakeCompanyDatabase();
  Result<LoweringResult> lowered =
      LowerToNavigational(db.schema(), entry.program);
  ASSERT_TRUE(lowered.ok()) << lowered.status();
  IoScript script;
  script.terminal_input = {"FIND"};
  EquivalenceReport report = *CheckEquivalence(
      db, entry.program, db, lowered->program, script);
  EXPECT_TRUE(report.equivalent)
      << CorpusShapeName(entry.shape) << "\n"
      << report.detail << "\noriginal:\n"
      << entry.program.ToSource() << "\nlowered:\n"
      << lowered->program.ToSource();
}

INSTANTIATE_TEST_SUITE_P(Corpus, LowerLiftSweepTest,
                         ::testing::Range(0, CorpusMix{}.Total()));

TEST(SystemConversionTest, ReportTalliesBuckets) {
  Database source = MakeCompanyDatabase();
  RestructuringPlan plan = std::move(ParsePlan(kInvertiblePlans[0])).value();
  SupervisorOptions options;
  options.analyst = ApproveAllAnalyst();
  ConversionSupervisor supervisor = *ConversionSupervisor::Create(
      source.schema(), plan.View(), options);
  std::vector<Program> programs;
  for (const CorpusProgram& entry : GenerateCompanyCorpus(CorpusMix{}, 7)) {
    programs.push_back(entry.program);
  }
  SystemConversionReport report = *supervisor.ConvertSystem(programs);
  EXPECT_EQ(report.outcomes.size(), programs.size());
  EXPECT_EQ(report.automatic + report.needs_analyst + report.refused,
            static_cast<int>(programs.size()));
  EXPECT_GT(report.automatic, 0);
  EXPECT_GT(report.refused, 0);
  EXPECT_FALSE(report.fully_converted());  // run-time-variable shape refused
  std::string text = report.ToText();
  EXPECT_NE(text.find("summary:"), std::string::npos);
  EXPECT_NE(text.find("NOT fully converted"), std::string::npos);
}

}  // namespace
}  // namespace dbpc
