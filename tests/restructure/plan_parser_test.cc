#include "restructure/plan_parser.h"

#include <gtest/gtest.h>

#include "equivalence/checker.h"
#include "lang/parser.h"
#include "supervisor/supervisor.h"
#include "testing/fixtures.h"

namespace dbpc {
namespace {

using testing::MakeCompanyDatabase;

RestructuringPlan MustParsePlan(const std::string& text) {
  Result<RestructuringPlan> plan = ParsePlan(text);
  EXPECT_TRUE(plan.ok()) << plan.status();
  return plan.ok() ? std::move(plan).value() : RestructuringPlan{};
}

TEST(PlanParserTest, EmptyPlan) {
  RestructuringPlan plan = MustParsePlan("RESTRUCTURE PLAN NOP. END PLAN.");
  EXPECT_EQ(plan.name, "NOP");
  EXPECT_TRUE(plan.steps.empty());
}

TEST(PlanParserTest, EveryClauseKindParses) {
  RestructuringPlan plan = MustParsePlan(R"(
RESTRUCTURE PLAN EVERYTHING.
  RENAME RECORD EMP TO WORKER.
  RENAME FIELD AGE OF WORKER TO YEARS.
  RENAME SET DIV-EMP TO STAFF.
  ADD FIELD SALARY TO WORKER TYPE 9(6) DEFAULT 0.
  REMOVE FIELD DIV-LOC OF DIV.
  INTRODUCE RECORD DEPT BETWEEN STAFF GROUPING BY DEPT-NAME
      AS DIV-DEPT AND DEPT-EMP.
  ORDER SET DIV-DEPT BY (DEPT-NAME).
  ORDER SET DEPT-EMP CHRONOLOGICALLY.
  MAKE SET DEPT-EMP MANUAL OPTIONAL.
  DROP DEPENDENCY OF DIV-DEPT.
  ADD CONSTRAINT UNIQ-NAME IS UNIQUE ON WORKER (EMP-NAME).
  ADD CONSTRAINT LIMIT-DEPTS IS CARDINALITY ON SET DIV-DEPT LIMIT 8.
  DROP CONSTRAINT UNIQ-NAME.
  MATERIALIZE FIELD DIV-NAME OF WORKER.
  VIRTUALIZE FIELD DIV-NAME OF WORKER VIA DEPT-EMP USING DIV-NAME.
  SPLIT RECORD WORKER MOVING (YEARS) TO WORKER-DATA
      LINKED BY WORKER-DETAIL USING EMP-NAME.
  MERGE RECORD WORKER-DATA INTO WORKER MOVING (YEARS)
      LINKED BY WORKER-DETAIL USING EMP-NAME.
END PLAN.
)");
  ASSERT_EQ(plan.steps.size(), 17u);
  EXPECT_EQ(plan.steps[0]->Name(), "rename-record");
  EXPECT_EQ(plan.steps[3]->Name(), "add-field");
  EXPECT_EQ(plan.steps[5]->Name(), "introduce-intermediate");
  EXPECT_EQ(plan.steps[9]->Name(), "drop-dependency");
  EXPECT_EQ(plan.steps[15]->Name(), "split-record-vertical");
  EXPECT_EQ(plan.steps[16]->Name(), "merge-records");
  EXPECT_EQ(plan.clauses.size(), plan.steps.size());
}

TEST(PlanParserTest, PlanDrivesFullPipeline) {
  RestructuringPlan plan = MustParsePlan(R"(
RESTRUCTURE PLAN FIG44.
  INTRODUCE RECORD DEPT BETWEEN DIV-EMP GROUPING BY DEPT-NAME
      AS DIV-DEPT AND DEPT-EMP.
END PLAN.
)");
  Database source = MakeCompanyDatabase();
  ConversionSupervisor supervisor = *ConversionSupervisor::Create(
      source.schema(), plan.View(), SupervisorOptions{});
  Program p = *ParseProgram(R"(
PROGRAM RPT.
  FOR EACH E IN FIND(EMP: SYSTEM, ALL-DIV, DIV, DIV-EMP, EMP(AGE > 30)) DO
    GET EMP-NAME OF E INTO N.
    DISPLAY N.
  END-FOR.
END PROGRAM.)");
  PipelineOutcome outcome = *supervisor.ConvertProgram(p);
  ASSERT_TRUE(outcome.accepted);
  Database target = *supervisor.TranslateDatabase(source);
  EquivalenceReport report = *CheckEquivalence(
      source, p, target, outcome.conversion.converted, IoScript());
  EXPECT_TRUE(report.equivalent) << report.detail;
}

TEST(PlanParserTest, PlanSourceRoundTrips) {
  const std::string text = R"(
RESTRUCTURE PLAN RT.
  RENAME RECORD EMP TO WORKER.
  ORDER SET DIV-EMP BY (AGE, EMP-NAME).
  ADD FIELD NOTE TO WORKER TYPE X(10) DEFAULT 'NONE'.
END PLAN.
)";
  RestructuringPlan plan = MustParsePlan(text);
  std::string rendered = PlanToSource(plan);
  RestructuringPlan again = MustParsePlan(rendered);
  ASSERT_EQ(again.steps.size(), plan.steps.size());
  for (size_t i = 0; i < plan.steps.size(); ++i) {
    EXPECT_EQ(again.steps[i]->Describe(), plan.steps[i]->Describe());
  }
  EXPECT_EQ(PlanToSource(again), rendered);
}

TEST(PlanParserTest, ApiAssembledPlanRendersDescriptions) {
  RestructuringPlan plan;
  plan.name = "API";
  plan.steps.push_back(MakeRenameRecord("EMP", "WORKER"));
  std::string rendered = PlanToSource(plan);
  EXPECT_NE(rendered.find("-- rename record type EMP to WORKER"),
            std::string::npos);
}

TEST(PlanParserTest, ErrorsReportLineAndClause) {
  Result<RestructuringPlan> plan = ParsePlan(R"(
RESTRUCTURE PLAN BAD.
  FROBNICATE EVERYTHING.
END PLAN.
)");
  ASSERT_FALSE(plan.ok());
  EXPECT_EQ(plan.status().code(), StatusCode::kParseError);
  EXPECT_NE(plan.status().message().find("line 3"), std::string::npos);
}

TEST(PlanParserTest, MissingPeriodFails) {
  EXPECT_FALSE(
      ParsePlan("RESTRUCTURE PLAN P. RENAME RECORD A TO B END PLAN.").ok());
}

TEST(PlanParserTest, UnterminatedPlanFails) {
  EXPECT_FALSE(ParsePlan("RESTRUCTURE PLAN P. RENAME RECORD A TO B.").ok());
}

}  // namespace
}  // namespace dbpc
