#include "restructure/transformation.h"

#include <gtest/gtest.h>

#include "schema/ddl_parser.h"
#include "testing/fixtures.h"

namespace dbpc {
namespace {

using testing::MakeCompanyDatabase;
using testing::MakeDatabase;
using testing::MakeSchoolDatabase;

Schema CompanySchema() { return MakeDatabase(testing::CompanyDdl()).schema(); }

IntroduceIntermediateParams Fig44Params() {
  // The paper's Figure 4.2 -> 4.4 restructuring.
  IntroduceIntermediateParams p;
  p.set_name = "DIV-EMP";
  p.intermediate = "DEPT";
  p.upper_set = "DIV-DEPT";
  p.lower_set = "DEPT-EMP";
  p.group_field = "DEPT-NAME";
  return p;
}

TEST(RenameRecordTest, SchemaAndData) {
  TransformationPtr t = MakeRenameRecord("EMP", "EMPLOYEE");
  Result<Schema> target = t->ApplyToSchema(CompanySchema());
  ASSERT_TRUE(target.ok()) << target.status();
  EXPECT_EQ(target->FindRecordType("EMP"), nullptr);
  ASSERT_NE(target->FindRecordType("EMPLOYEE"), nullptr);
  EXPECT_EQ(target->FindSet("DIV-EMP")->member, "EMPLOYEE");

  Database source = MakeCompanyDatabase();
  Result<Database> translated = TranslateDatabase(source, {t.get()});
  ASSERT_TRUE(translated.ok()) << translated.status();
  EXPECT_EQ(translated->AllOfType("EMPLOYEE").size(), 4u);
  EXPECT_EQ(translated->AllOfType("EMP").size(), 0u);
}

TEST(RenameRecordTest, RejectsCollidingName) {
  TransformationPtr t = MakeRenameRecord("EMP", "DIV");
  EXPECT_FALSE(t->ApplyToSchema(CompanySchema()).ok());
  TransformationPtr set_clash = MakeRenameRecord("EMP", "DIV-EMP");
  EXPECT_FALSE(set_clash->ApplyToSchema(CompanySchema()).ok());
}

TEST(RenameFieldTest, SchemaCarriesAllReferences) {
  TransformationPtr t = MakeRenameField("EMP", "EMP-NAME", "FULL-NAME");
  Result<Schema> target = t->ApplyToSchema(CompanySchema());
  ASSERT_TRUE(target.ok()) << target.status();
  EXPECT_FALSE(target->FindRecordType("EMP")->HasField("EMP-NAME"));
  EXPECT_TRUE(target->FindRecordType("EMP")->HasField("FULL-NAME"));
  // The set key follows the rename.
  EXPECT_EQ(target->FindSet("DIV-EMP")->keys,
            (std::vector<std::string>{"FULL-NAME"}));
}

TEST(RenameFieldTest, VirtualSourceFieldRenameFollowsThrough) {
  // Renaming DIV.DIV-NAME must update EMP's virtual using-reference.
  TransformationPtr t = MakeRenameField("DIV", "DIV-NAME", "DIVISION");
  Result<Schema> target = t->ApplyToSchema(CompanySchema());
  ASSERT_TRUE(target.ok()) << target.status();
  const FieldDef* v = target->FindRecordType("EMP")->FindField("DIV-NAME");
  ASSERT_NE(v, nullptr);  // the virtual field keeps its own name
  EXPECT_EQ(v->using_field, "DIVISION");
  EXPECT_EQ(target->FindSet("ALL-DIV")->keys,
            (std::vector<std::string>{"DIVISION"}));
}

TEST(RenameFieldTest, DataValuesSurvive) {
  TransformationPtr t = MakeRenameField("EMP", "AGE", "YEARS");
  Database source = MakeCompanyDatabase();
  Result<Database> translated = TranslateDatabase(source, {t.get()});
  ASSERT_TRUE(translated.ok()) << translated.status();
  RecordId machinery = translated->SystemMembers("ALL-DIV")[0];
  RecordId adams = translated->Members("DIV-EMP", machinery)[0];
  EXPECT_EQ(translated->GetField(adams, "YEARS")->as_int(), 34);
}

TEST(RenameSetTest, VirtualViaReferencesFollow) {
  TransformationPtr t = MakeRenameSet("DIV-EMP", "STAFF");
  Result<Schema> target = t->ApplyToSchema(CompanySchema());
  ASSERT_TRUE(target.ok()) << target.status();
  EXPECT_EQ(target->FindSet("DIV-EMP"), nullptr);
  ASSERT_NE(target->FindSet("STAFF"), nullptr);
  EXPECT_EQ(target->FindRecordType("EMP")->FindField("DIV-NAME")->via_set,
            "STAFF");
  Database source = MakeCompanyDatabase();
  Result<Database> translated = TranslateDatabase(source, {t.get()});
  ASSERT_TRUE(translated.ok());
  RecordId machinery = translated->SystemMembers("ALL-DIV")[0];
  EXPECT_EQ(translated->Members("STAFF", machinery).size(), 3u);
}

TEST(AddFieldTest, DefaultAppliedToExistingRecords) {
  FieldDef f;
  f.name = "SALARY";
  f.type = FieldType::kInt;
  f.default_value = Value::Int(1000);
  TransformationPtr t = MakeAddField("EMP", f);
  Database source = MakeCompanyDatabase();
  Result<Database> translated = TranslateDatabase(source, {t.get()});
  ASSERT_TRUE(translated.ok()) << translated.status();
  for (RecordId id : translated->AllOfType("EMP")) {
    EXPECT_EQ(translated->GetField(id, "SALARY")->as_int(), 1000);
  }
}

TEST(RemoveFieldTest, DataDropped) {
  TransformationPtr t = MakeRemoveField("EMP", "DEPT-NAME");
  Database source = MakeCompanyDatabase();
  Result<Database> translated = TranslateDatabase(source, {t.get()});
  ASSERT_TRUE(translated.ok()) << translated.status();
  EXPECT_FALSE(
      translated->schema().FindRecordType("EMP")->HasField("DEPT-NAME"));
  EXPECT_FALSE(t->HasInverse());
}

TEST(RemoveFieldTest, CannotRemoveSetKeyField) {
  TransformationPtr t = MakeRemoveField("EMP", "EMP-NAME");
  // EMP-NAME is the DIV-EMP sort key; the target schema is invalid.
  EXPECT_FALSE(t->ApplyToSchema(CompanySchema()).ok());
}

TEST(IntroduceIntermediateTest, SchemaMatchesFigure44) {
  TransformationPtr t = MakeIntroduceIntermediate(Fig44Params());
  Result<Schema> target = t->ApplyToSchema(CompanySchema());
  ASSERT_TRUE(target.ok()) << target.status();
  // New record type and sets.
  ASSERT_NE(target->FindRecordType("DEPT"), nullptr);
  ASSERT_NE(target->FindSet("DIV-DEPT"), nullptr);
  ASSERT_NE(target->FindSet("DEPT-EMP"), nullptr);
  EXPECT_EQ(target->FindSet("DIV-EMP"), nullptr);
  EXPECT_EQ(target->FindSet("DIV-DEPT")->owner, "DIV");
  EXPECT_EQ(target->FindSet("DIV-DEPT")->member, "DEPT");
  EXPECT_EQ(target->FindSet("DEPT-EMP")->owner, "DEPT");
  EXPECT_EQ(target->FindSet("DEPT-EMP")->member, "EMP");
  // EMP.DEPT-NAME became virtual; DEPT carries DIV-NAME virtually.
  const FieldDef* dept_name =
      target->FindRecordType("EMP")->FindField("DEPT-NAME");
  ASSERT_NE(dept_name, nullptr);
  EXPECT_TRUE(dept_name->is_virtual);
  EXPECT_EQ(dept_name->via_set, "DEPT-EMP");
  const FieldDef* div_name =
      target->FindRecordType("DEPT")->FindField("DIV-NAME");
  ASSERT_NE(div_name, nullptr);
  EXPECT_TRUE(div_name->is_virtual);
  // EMP.DIV-NAME re-derives through the new set chain.
  EXPECT_EQ(target->FindRecordType("EMP")->FindField("DIV-NAME")->via_set,
            "DEPT-EMP");
}

TEST(IntroduceIntermediateTest, DataGroupsMembersByField) {
  TransformationPtr t = MakeIntroduceIntermediate(Fig44Params());
  Database source = MakeCompanyDatabase();
  Result<Database> translated = TranslateDatabase(source, {t.get()});
  ASSERT_TRUE(translated.ok()) << translated.status();
  // MACHINERY has SALES (ADAMS, BAKER) and PLANNING (CLARK); TEXTILES has
  // SALES (DAVIS): four EMPs, three DEPT groups.
  EXPECT_EQ(translated->AllOfType("DEPT").size(), 3u);
  EXPECT_EQ(translated->AllOfType("EMP").size(), 4u);
  RecordId machinery = translated->SystemMembers("ALL-DIV")[0];
  std::vector<RecordId> depts = translated->Members("DIV-DEPT", machinery);
  ASSERT_EQ(depts.size(), 2u);  // PLANNING < SALES by name
  EXPECT_EQ(translated->GetField(depts[0], "DEPT-NAME")->as_string(),
            "PLANNING");
  EXPECT_EQ(translated->GetField(depts[1], "DEPT-NAME")->as_string(), "SALES");
  std::vector<RecordId> sales = translated->Members("DEPT-EMP", depts[1]);
  ASSERT_EQ(sales.size(), 2u);
  EXPECT_EQ(translated->GetField(sales[0], "EMP-NAME")->as_string(), "ADAMS");
  // Virtual fields resolve through the new chain.
  EXPECT_EQ(translated->GetField(sales[0], "DEPT-NAME")->as_string(), "SALES");
  EXPECT_EQ(translated->GetField(sales[0], "DIV-NAME")->as_string(),
            "MACHINERY");
}

TEST(IntroduceIntermediateTest, RoundTripsThroughCollapse) {
  TransformationPtr intro = MakeIntroduceIntermediate(Fig44Params());
  ASSERT_TRUE(intro->HasInverse());
  TransformationPtr collapse = intro->Inverse();
  ASSERT_NE(collapse, nullptr);

  Database source = MakeCompanyDatabase();
  Result<Database> round =
      TranslateDatabase(source, {intro.get(), collapse.get()});
  ASSERT_TRUE(round.ok()) << round.status();
  // Same schema shape and same data.
  EXPECT_EQ(round->schema().ToDdl(), source.schema().ToDdl());
  ASSERT_EQ(round->AllOfType("EMP").size(), 4u);
  RecordId machinery = round->SystemMembers("ALL-DIV")[0];
  std::vector<RecordId> emps = round->Members("DIV-EMP", machinery);
  ASSERT_EQ(emps.size(), 3u);
  EXPECT_EQ(round->GetField(emps[0], "EMP-NAME")->as_string(), "ADAMS");
  EXPECT_EQ(round->GetField(emps[0], "DEPT-NAME")->as_string(), "SALES");
}

TEST(IntroduceIntermediateTest, RejectsVirtualGroupField) {
  IntroduceIntermediateParams p = Fig44Params();
  p.group_field = "DIV-NAME";  // already virtual on EMP
  TransformationPtr t = MakeIntroduceIntermediate(p);
  EXPECT_FALSE(t->ApplyToSchema(CompanySchema()).ok());
}

TEST(ChangeSetOrderTest, DataResorted) {
  TransformationPtr t = MakeChangeSetOrder("DIV-EMP", {"AGE", "EMP-NAME"});
  Database source = MakeCompanyDatabase();
  Result<Database> translated = TranslateDatabase(source, {t.get()});
  ASSERT_TRUE(translated.ok()) << translated.status();
  RecordId machinery = translated->SystemMembers("ALL-DIV")[0];
  std::vector<RecordId> emps = translated->Members("DIV-EMP", machinery);
  ASSERT_EQ(emps.size(), 3u);
  EXPECT_EQ(translated->GetField(emps[0], "AGE")->as_int(), 28);  // BAKER
  EXPECT_EQ(translated->GetField(emps[2], "AGE")->as_int(), 45);  // CLARK
}

TEST(ChangeSetOrderTest, ToChronologicalKeepsSourceOrder) {
  TransformationPtr t = MakeChangeSetOrder("DIV-EMP", {});
  Database source = MakeCompanyDatabase();
  Result<Database> translated = TranslateDatabase(source, {t.get()});
  ASSERT_TRUE(translated.ok()) << translated.status();
  RecordId machinery = translated->SystemMembers("ALL-DIV")[0];
  std::vector<RecordId> emps = translated->Members("DIV-EMP", machinery);
  ASSERT_EQ(emps.size(), 3u);
  // Source order (sorted by name) is preserved as insertion order.
  EXPECT_EQ(translated->GetField(emps[0], "EMP-NAME")->as_string(), "ADAMS");
  EXPECT_EQ(translated->GetField(emps[2], "EMP-NAME")->as_string(), "CLARK");
}

TEST(ChangeSetOrderTest, DuplicateNewKeyFailsTranslation) {
  // Two MACHINERY SALES employees aged equal would collide on a (DEPT-NAME)
  // key; build that situation.
  Database source = MakeCompanyDatabase();
  TransformationPtr t = MakeChangeSetOrder("DIV-EMP", {"DEPT-NAME"});
  Result<Database> translated = TranslateDatabase(source, {t.get()});
  ASSERT_FALSE(translated.ok());
  EXPECT_EQ(translated.status().code(), StatusCode::kConstraintViolation);
}

TEST(ChangeMembershipClassTest, TighteningFailsOnUnconnectedData) {
  // Build a schema where DIV-EMP is MANUAL/OPTIONAL and an EMP floats free.
  Schema loose = CompanySchema();
  loose.FindSet("DIV-EMP")->insertion = InsertionClass::kManual;
  loose.FindSet("DIV-EMP")->retention = RetentionClass::kOptional;
  Database db = *Database::Create(loose);
  ASSERT_TRUE(db.StoreRecord({"EMP", {{"EMP-NAME", Value::String("X")}}, {}})
                  .ok());
  TransformationPtr t = MakeChangeMembershipClass(
      "DIV-EMP", InsertionClass::kAutomatic, RetentionClass::kMandatory);
  Result<Database> translated = TranslateDatabase(db, {t.get()});
  EXPECT_FALSE(translated.ok());
}

TEST(DropDependencyTest, SchemaFlagCleared) {
  Database school = MakeSchoolDatabase();
  TransformationPtr t = MakeDropDependency("CRS-OFF");
  Result<Schema> target = t->ApplyToSchema(school.schema());
  ASSERT_TRUE(target.ok());
  EXPECT_FALSE(target->FindSet("CRS-OFF")->member_characterizes_owner);
}

TEST(AddConstraintTest, ViolatingDataFailsTranslation) {
  Database school = MakeSchoolDatabase();  // CS101 offered in 1978 and 1979
  ConstraintDef once;
  once.name = "ONCE-EVER";
  once.kind = ConstraintKind::kCardinalityLimit;
  once.set_name = "CRS-OFF";
  once.limit = 1;
  TransformationPtr t = MakeAddConstraint(once);
  Result<Database> translated = TranslateDatabase(school, {t.get()});
  ASSERT_FALSE(translated.ok());
  EXPECT_EQ(translated.status().code(), StatusCode::kConstraintViolation);
}

TEST(MaterializeVirtualFieldTest, ValuesCopied) {
  TransformationPtr t = MakeMaterializeVirtualField("EMP", "DIV-NAME");
  Database source = MakeCompanyDatabase();
  Result<Database> translated = TranslateDatabase(source, {t.get()});
  ASSERT_TRUE(translated.ok()) << translated.status();
  const FieldDef* f =
      translated->schema().FindRecordType("EMP")->FindField("DIV-NAME");
  EXPECT_FALSE(f->is_virtual);
  RecordId machinery = translated->SystemMembers("ALL-DIV")[0];
  RecordId adams = translated->Members("DIV-EMP", machinery)[0];
  EXPECT_EQ(translated->GetField(adams, "DIV-NAME")->as_string(), "MACHINERY");
}

TEST(VirtualizeFieldTest, ConsistentDataRoundTrips) {
  TransformationPtr materialize = MakeMaterializeVirtualField("EMP", "DIV-NAME");
  TransformationPtr virtualize =
      MakeVirtualizeField("EMP", "DIV-NAME", "DIV-EMP", "DIV-NAME");
  Database source = MakeCompanyDatabase();
  Result<Database> round =
      TranslateDatabase(source, {materialize.get(), virtualize.get()});
  ASSERT_TRUE(round.ok()) << round.status();
  EXPECT_EQ(round->schema().ToDdl(), source.schema().ToDdl());
}

TEST(VirtualizeFieldTest, InconsistentDataRefused) {
  TransformationPtr materialize = MakeMaterializeVirtualField("EMP", "DIV-NAME");
  Database source = MakeCompanyDatabase();
  Database materialized = *TranslateDatabase(source, {materialize.get()});
  // Corrupt one stored copy so it disagrees with the owner.
  RecordId machinery = materialized.SystemMembers("ALL-DIV")[0];
  RecordId adams = materialized.Members("DIV-EMP", machinery)[0];
  ASSERT_TRUE(materialized
                  .ModifyRecord(adams, {{"DIV-NAME", Value::String("WRONG")}})
                  .ok());
  TransformationPtr virtualize =
      MakeVirtualizeField("EMP", "DIV-NAME", "DIV-EMP", "DIV-NAME");
  Result<Database> translated =
      TranslateDatabase(materialized, {virtualize.get()});
  ASSERT_FALSE(translated.ok());
  EXPECT_EQ(translated.status().code(), StatusCode::kConstraintViolation);
}

TEST(PlanTest, EmptyPlanIsIdentityCopy) {
  Database source = MakeCompanyDatabase();
  Result<Database> copy = TranslateDatabase(source, {});
  ASSERT_TRUE(copy.ok());
  EXPECT_EQ(copy->RecordCount(), source.RecordCount());
}

TEST(PlanTest, ChainedTransformations) {
  TransformationPtr a = MakeRenameRecord("EMP", "WORKER");
  TransformationPtr b = MakeRenameField("WORKER", "AGE", "YEARS");
  Result<Schema> target =
      ApplyPlanToSchema(CompanySchema(), {a.get(), b.get()});
  ASSERT_TRUE(target.ok()) << target.status();
  EXPECT_TRUE(target->FindRecordType("WORKER")->HasField("YEARS"));
  Database source = MakeCompanyDatabase();
  Result<Database> translated = TranslateDatabase(source, {a.get(), b.get()});
  ASSERT_TRUE(translated.ok()) << translated.status();
  EXPECT_EQ(translated->AllOfType("WORKER").size(), 4u);
}

}  // namespace
}  // namespace dbpc
