// The framework's central property (paper section 1.1): whenever the
// pipeline accepts a program, the converted program running against the
// restructured database preserves the original's input/output behaviour.
// This suite sweeps (program shape x transformation) pairs.

#include <gtest/gtest.h>

#include "corpus/corpus.h"
#include "equivalence/checker.h"
#include "lang/parser.h"
#include "restructure/transformation.h"
#include "supervisor/supervisor.h"
#include "testing/fixtures.h"

namespace dbpc {
namespace {

using testing::MakeCompanyDatabase;

/// Named transformation plans over the COMPANY schema.
struct PlanCase {
  const char* name;
  std::vector<TransformationPtr> (*make)();
};

std::vector<TransformationPtr> RenameEverything() {
  std::vector<TransformationPtr> plan;
  plan.push_back(MakeRenameRecord("EMP", "WORKER"));
  plan.push_back(MakeRenameField("WORKER", "AGE", "YEARS"));
  plan.push_back(MakeRenameSet("DIV-EMP", "STAFF"));
  return plan;
}

std::vector<TransformationPtr> Figure44() {
  IntroduceIntermediateParams p;
  p.set_name = "DIV-EMP";
  p.intermediate = "DEPT";
  p.upper_set = "DIV-DEPT";
  p.lower_set = "DEPT-EMP";
  p.group_field = "DEPT-NAME";
  std::vector<TransformationPtr> plan;
  plan.push_back(MakeIntroduceIntermediate(p));
  return plan;
}

std::vector<TransformationPtr> ReorderByAge() {
  std::vector<TransformationPtr> plan;
  plan.push_back(MakeChangeSetOrder("DIV-EMP", {"AGE", "EMP-NAME"}));
  return plan;
}

std::vector<TransformationPtr> MaterializeDivName() {
  std::vector<TransformationPtr> plan;
  plan.push_back(MakeMaterializeVirtualField("EMP", "DIV-NAME"));
  return plan;
}

std::vector<TransformationPtr> AddAuditField() {
  FieldDef f;
  f.name = "AUDIT-FLAG";
  f.type = FieldType::kString;
  f.pic_width = 1;
  f.default_value = Value::String("N");
  std::vector<TransformationPtr> plan;
  plan.push_back(MakeAddField("EMP", f));
  return plan;
}

std::vector<TransformationPtr> Fig44ThenRename() {
  std::vector<TransformationPtr> plan = Figure44();
  plan.push_back(MakeRenameField("EMP", "EMP-NAME", "FULL-NAME"));
  return plan;
}

const PlanCase kPlans[] = {
    {"renames", &RenameEverything},
    {"figure-4-4", &Figure44},
    {"reorder-by-age", &ReorderByAge},
    {"materialize-div-name", &MaterializeDivName},
    {"add-audit-field", &AddAuditField},
    {"figure-4-4-then-rename", &Fig44ThenRename},
};

class ConversionEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<const PlanCase*, int>> {};

TEST_P(ConversionEquivalenceTest, AcceptedProgramsRunEquivalently) {
  const PlanCase* plan_case = std::get<0>(GetParam());
  int program_index = std::get<1>(GetParam());

  std::vector<CorpusProgram> corpus = GenerateCompanyCorpus(CorpusMix{}, 42);
  ASSERT_LT(program_index, static_cast<int>(corpus.size()));
  const CorpusProgram& entry = corpus[static_cast<size_t>(program_index)];

  Database source_db = MakeCompanyDatabase();
  std::vector<TransformationPtr> owned = plan_case->make();
  std::vector<const Transformation*> plan;
  for (const TransformationPtr& t : owned) plan.push_back(t.get());

  SupervisorOptions options;
  options.analyst = ApproveAllAnalyst();
  Result<ConversionSupervisor> supervisor =
      ConversionSupervisor::Create(source_db.schema(), plan, options);
  ASSERT_TRUE(supervisor.ok()) << supervisor.status();

  Result<PipelineOutcome> outcome =
      supervisor->ConvertProgram(entry.program);
  ASSERT_TRUE(outcome.ok()) << outcome.status() << "\nprogram:\n"
                            << entry.program.ToSource();
  if (!outcome->accepted ||
      outcome->classification != Convertibility::kAutomatic) {
    // Analyst-approved or refused conversions do not promise strict
    // equivalence; the property below only covers kAutomatic.
    GTEST_SKIP() << "classification: "
                 << ConvertibilityName(outcome->classification);
  }

  Result<Database> target_db = supervisor->TranslateDatabase(source_db);
  ASSERT_TRUE(target_db.ok()) << target_db.status();

  IoScript script;
  script.terminal_input = {"FIND", "MACHINERY"};
  Result<EquivalenceReport> report =
      CheckEquivalence(source_db, entry.program, *target_db,
                       outcome->conversion.converted, script);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->equivalent)
      << "plan: " << plan_case->name << "\nshape: "
      << CorpusShapeName(entry.shape) << "\n"
      << report->detail << "\noriginal:\n"
      << entry.program.ToSource() << "\nconverted:\n"
      << outcome->conversion.converted.ToSource() << "\nsource trace:\n"
      << report->source_trace.ToString() << "\ntarget trace:\n"
      << report->target_trace.ToString();
}

std::string CaseName(
    const ::testing::TestParamInfo<std::tuple<const PlanCase*, int>>& info) {
  std::string name = std::get<0>(info.param)->name;
  for (char& c : name) {
    if (c == '-') c = '_';
  }
  return name + "_p" + std::to_string(std::get<1>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    PlansTimesPrograms, ConversionEquivalenceTest,
    ::testing::Combine(::testing::Values(&kPlans[0], &kPlans[1], &kPlans[2],
                                         &kPlans[3], &kPlans[4], &kPlans[5]),
                       ::testing::Range(0, CorpusMix{}.Total())),
    CaseName);

// Focused end-to-end check of the paper's own Figure 4.2 -> 4.4 example:
// the two FIND statements of section 4.2 convert into the forms the paper
// shows (a SORT-wrapped spliced path, and a pushed-down DEPT
// qualification after optimization).
TEST(Figure44ConversionTest, PaperFindStatementsConvertAsPublished) {
  Database source_db = MakeCompanyDatabase();
  std::vector<TransformationPtr> owned = Figure44();
  std::vector<const Transformation*> plan{owned[0].get()};

  Program program = *ParseProgram(R"(
PROGRAM FIG42.
  FOR EACH E IN FIND(EMP: SYSTEM, ALL-DIV, DIV, DIV-EMP, EMP(AGE > 30)) DO
    GET EMP-NAME OF E INTO N.
    DISPLAY N.
  END-FOR.
  FOR EACH E IN FIND(EMP: SYSTEM, ALL-DIV, DIV(DIV-NAME = 'MACHINERY'),
      DIV-EMP, EMP(DEPT-NAME = 'SALES')) DO
    GET EMP-NAME OF E INTO N.
    DISPLAY N.
  END-FOR.
END PROGRAM.)");

  SupervisorOptions options;
  options.analyst = ApproveAllAnalyst();
  ConversionSupervisor supervisor =
      *ConversionSupervisor::Create(source_db.schema(), plan, options);
  PipelineOutcome outcome = *supervisor.ConvertProgram(program);
  ASSERT_TRUE(outcome.accepted);
  ASSERT_EQ(outcome.classification, Convertibility::kAutomatic);

  const Stmt& first = outcome.conversion.converted.body[0];
  const Stmt& second = outcome.conversion.converted.body[1];
  // First query: spliced path, SORT to preserve the old DIV-EMP ordering.
  // The paper's Figure 4.4 writes SORT(FIND(...)) ON (EMP-NAME) — an
  // order *within* each division. This engine's SORT is a global stable
  // sort over the flattened result, so the compensation must also restate
  // the enclosing ALL-DIV order (DIV-NAME) or employees of different
  // divisions would interleave.
  EXPECT_EQ(first.retrieval->ToString(),
            "SORT(FIND(EMP: SYSTEM, ALL-DIV, DIV, DIV-DEPT, DEPT, DEPT-EMP, "
            "EMP(AGE > 30))) ON (DIV-NAME, EMP-NAME)");
  // Second query: the optimizer pushed DEPT-NAME onto the DEPT step, as in
  // the paper's hand-converted FIND.
  EXPECT_EQ(second.retrieval->ToString(),
            "FIND(EMP: SYSTEM, ALL-DIV, DIV(DIV-NAME = 'MACHINERY'), "
            "DIV-DEPT, DEPT(DEPT-NAME = 'SALES'), DEPT-EMP, EMP)");

  // And it all actually runs equivalently.
  Database target_db = *supervisor.TranslateDatabase(source_db);
  EquivalenceReport report =
      *CheckEquivalence(source_db, program, target_db,
                        outcome.conversion.converted, IoScript());
  EXPECT_TRUE(report.equivalent) << report.detail;
}

// Su's dependency example (section 4.1): after dropping the dependency the
// converted program must delete dependents explicitly.
TEST(DependencyMigrationTest, DeleteGainsExplicitMemberLoop) {
  // Build a COMPANY variant where DIV-EMP members characterize DIV.
  Schema schema = MakeCompanyDatabase().schema();
  schema.FindSet("DIV-EMP")->member_characterizes_owner = true;
  Database source_db = *Database::Create(schema);
  RecordId m = *source_db.StoreRecord(
      {"DIV", {{"DIV-NAME", Value::String("MACHINERY")}}, {}});
  (void)*source_db.StoreRecord(
      {"EMP", {{"EMP-NAME", Value::String("ADAMS")}}, {{"DIV-EMP", m}}});
  (void)*source_db.StoreRecord(
      {"EMP", {{"EMP-NAME", Value::String("BAKER")}}, {{"DIV-EMP", m}}});

  Program program = *ParseProgram(R"(
PROGRAM KILLDIV.
  FOR EACH D IN FIND(DIV: SYSTEM, ALL-DIV, DIV(DIV-NAME = 'MACHINERY')) DO
    DELETE D.
  END-FOR.
  DISPLAY 'GONE'.
END PROGRAM.)");

  TransformationPtr drop = MakeDropDependency("DIV-EMP");
  SupervisorOptions options;
  ConversionSupervisor supervisor =
      *ConversionSupervisor::Create(source_db.schema(), {drop.get()}, options);
  PipelineOutcome outcome = *supervisor.ConvertProgram(program);
  ASSERT_TRUE(outcome.accepted) << ConvertibilityName(outcome.classification);

  // The converted DELETE is preceded by an explicit member-deletion loop.
  const Stmt& loop = outcome.conversion.converted.body[0];
  ASSERT_EQ(loop.body.size(), 2u) << outcome.conversion.converted.ToSource();
  EXPECT_EQ(loop.body[0].kind, StmtKind::kForEach);
  EXPECT_EQ(loop.body[0].body[0].kind, StmtKind::kDelete);
  EXPECT_EQ(loop.body[1].kind, StmtKind::kDelete);

  Database target_db = *supervisor.TranslateDatabase(source_db);
  EquivalenceReport report = *CheckEquivalence(
      source_db, program, target_db, outcome.conversion.converted, IoScript());
  EXPECT_TRUE(report.equivalent)
      << report.detail << "\n"
      << outcome.conversion.converted.ToSource();
}

}  // namespace
}  // namespace dbpc
