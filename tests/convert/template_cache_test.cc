#include "convert/template_cache.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "convert/provenance.h"
#include "corpus/corpus.h"
#include "generate/generator.h"
#include "optimize/stats.h"
#include "restructure/plan_parser.h"
#include "service/service.h"
#include "supervisor/supervisor.h"
#include "testing/fixtures.h"

namespace dbpc {
namespace {

RestructuringPlan Figure44Plan() {
  return std::move(ParsePlan(R"(
RESTRUCTURE PLAN FIGURE-4-4.
  INTRODUCE RECORD DEPT BETWEEN DIV-EMP GROUPING BY DEPT-NAME
      AS DIV-DEPT AND DEPT-EMP.
END PLAN.
)"))
      .value();
}

Schema CompanySchema() {
  return testing::MakeDatabase(testing::CompanyDdl()).schema();
}

/// Deterministic corpus programs of one shape (all convert automatically
/// for kMarylandReport; kAmbiguousOwner consults the analyst).
std::vector<Program> ShapePrograms(CorpusShape shape, int count) {
  CorpusMix mix;
  mix.maryland_reports = shape == CorpusShape::kMarylandReport ? count : 0;
  mix.sorted_reports = shape == CorpusShape::kSortedReport ? count : 0;
  mix.navigational_reports = 0;
  mix.nested_navigational = 0;
  mix.updates = 0;
  mix.deletions = 0;
  mix.stores = 0;
  mix.file_reports = 0;
  mix.ambiguous_owner = shape == CorpusShape::kAmbiguousOwner ? count : 0;
  mix.status_dependent = 0;
  mix.erase_in_scan = 0;
  mix.runtime_variable = shape == CorpusShape::kRuntimeVariable ? count : 0;
  std::vector<Program> out;
  for (CorpusProgram& p : GenerateCompanyCorpus(mix, 1979)) {
    out.push_back(std::move(p.program));
  }
  return out;
}

Program OneMarylandReport() { return ShapePrograms(CorpusShape::kMarylandReport, 1)[0]; }

CachedConversion EntryFor(const Program& program, const std::string& context) {
  CachedConversion entry;
  entry.context = context;
  entry.canonical_body = program.body;
  entry.result.converted = program;
  entry.result.converted.name.clear();
  entry.accepted = true;
  return entry;
}

// --- options ---------------------------------------------------------------

TEST(TemplateCacheOptionsTest, DefaultsValidate) {
  EXPECT_TRUE(TemplateCacheOptions{}.Validate().ok());
}

TEST(TemplateCacheOptionsTest, RejectsNonPositiveShardsAndCapacity) {
  TemplateCacheOptions options;
  options.shards = 0;
  EXPECT_EQ(options.Validate().code(), StatusCode::kInvalidArgument);
  options.shards = -3;
  EXPECT_EQ(options.Validate().code(), StatusCode::kInvalidArgument);
  options.shards = 1;
  options.capacity = 0;
  EXPECT_EQ(options.Validate().code(), StatusCode::kInvalidArgument);
  // A disabled cache still validates its numbers: the service rejects a
  // nonsensical config before anyone flips enabled back on.
  options.enabled = false;
  EXPECT_EQ(options.Validate().code(), StatusCode::kInvalidArgument);
}

TEST(ServiceOptionsTest, InvalidCacheOptionsRejectedAtServiceEntry) {
  RestructuringPlan plan = Figure44Plan();
  ServiceOptions options;
  options.cache.capacity = -1;
  Result<std::unique_ptr<ConversionService>> service =
      ConversionService::Create(CompanySchema(), plan.View(), options);
  ASSERT_FALSE(service.ok());
  EXPECT_EQ(service.status().code(), StatusCode::kInvalidArgument);
}

// --- fingerprints ----------------------------------------------------------

TEST(FingerprintTest, DeterministicAndDiscriminating) {
  EXPECT_EQ(Fingerprint64("abc"), Fingerprint64("abc"));
  EXPECT_NE(Fingerprint64("abc"), Fingerprint64("abd"));
  EXPECT_NE(Fingerprint64(""), Fingerprint64(" "));
  EXPECT_NE(MixFingerprints(1, 2), MixFingerprints(2, 1));
}

TEST(CanonicalProgramTextTest, ExcludesNameAndProvenance) {
  Program a = OneMarylandReport();
  Program b = a;
  b.name = "SOMETHING-ELSE";
  EXPECT_EQ(CanonicalProgramText(a), CanonicalProgramText(b));

  // Provenance stamps render nowhere in ToSource, so canonical text (and
  // with it the memo key) is insensitive to them.
  Program stamped = a;
  StampSourceProvenance(&stamped, "test", "prestamp");
  EXPECT_EQ(CanonicalProgramText(a), CanonicalProgramText(stamped));

  // The body is what remains; a different body is a different template.
  ASSERT_FALSE(a.body.empty());
  Program truncated = a;
  truncated.body.pop_back();
  EXPECT_NE(CanonicalProgramText(a), CanonicalProgramText(truncated));
}

// --- LRU / sharding mechanics ----------------------------------------------

TEST(TemplateCacheTest, LruEvictsLeastRecentlyUsed) {
  Program program = OneMarylandReport();
  TemplateCacheOptions options;
  options.shards = 1;
  options.capacity = 2;
  TemplateCache cache(options);
  cache.Insert(1, EntryFor(program, "ctx"));
  cache.Insert(2, EntryFor(program, "ctx"));
  // Touch key 1 so key 2 is the least recently used.
  EXPECT_NE(cache.Lookup(1, "ctx", program), nullptr);
  EXPECT_EQ(cache.Insert(3, EntryFor(program, "ctx")), 1u);

  EXPECT_EQ(cache.Lookup(2, "ctx", program), nullptr);
  EXPECT_NE(cache.Lookup(1, "ctx", program), nullptr);
  EXPECT_NE(cache.Lookup(3, "ctx", program), nullptr);
  TemplateCacheStats stats = cache.Stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_EQ(stats.inserts, 3u);
}

TEST(TemplateCacheTest, ReinsertRefreshesInsteadOfEvicting) {
  Program program = OneMarylandReport();
  TemplateCacheOptions options;
  options.shards = 1;
  options.capacity = 2;
  TemplateCache cache(options);
  cache.Insert(1, EntryFor(program, "old"));
  EXPECT_EQ(cache.Insert(1, EntryFor(program, "new")), 0u);
  EXPECT_EQ(cache.Stats().entries, 1u);
  EXPECT_EQ(cache.Lookup(1, "old", program), nullptr);
  EXPECT_NE(cache.Lookup(1, "new", program), nullptr);
}

TEST(TemplateCacheTest, ShardingKeepsEntriesWithinCapacity) {
  Program program = OneMarylandReport();
  TemplateCacheOptions options;
  options.shards = 4;
  options.capacity = 8;
  TemplateCache cache(options);
  for (uint64_t key = 0; key < 64; ++key) {
    cache.Insert(key, EntryFor(program, "ctx"));
  }
  TemplateCacheStats stats = cache.Stats();
  EXPECT_LE(stats.entries, 8u);
  EXPECT_EQ(stats.entries + stats.evictions, 64u);
  // Most recently inserted keys survive per shard.
  EXPECT_NE(cache.Lookup(63, "ctx", program), nullptr);
}

TEST(TemplateCacheTest, ClearCountsInvalidations) {
  Program program = OneMarylandReport();
  TemplateCache cache;
  cache.Insert(1, EntryFor(program, "ctx"));
  cache.Insert(2, EntryFor(program, "ctx"));
  EXPECT_EQ(cache.Clear(), 2u);
  EXPECT_EQ(cache.Stats().invalidations, 2u);
  EXPECT_EQ(cache.Stats().entries, 0u);
  EXPECT_EQ(cache.Lookup(1, "ctx", program), nullptr);
}

TEST(TemplateCacheTest, VerificationTurnsCollisionsIntoMisses) {
  Program program = OneMarylandReport();
  TemplateCache cache;
  cache.Insert(1, EntryFor(program, "context A"));
  // Same 64-bit key, different key material: must miss, never serve.
  EXPECT_EQ(cache.Lookup(1, "context B", program), nullptr);
  Program other = program;
  other.body.pop_back();
  EXPECT_EQ(cache.Lookup(1, "context A", other), nullptr);
  EXPECT_NE(cache.Lookup(1, "context A", program), nullptr);
}

// --- supervisor integration ------------------------------------------------

struct Pipeline {
  Schema schema = CompanySchema();
  RestructuringPlan plan = Figure44Plan();
  TemplateCache cache;

  ConversionSupervisor Make(SupervisorOptions options = {},
                            bool with_cache = true) {
    if (with_cache) options.cache = &cache;
    Result<ConversionSupervisor> supervisor =
        ConversionSupervisor::Create(schema, plan.View(), options);
    EXPECT_TRUE(supervisor.ok()) << supervisor.status();
    return std::move(supervisor).value();
  }
};

TEST(TemplateCacheSupervisorTest, HitServesIdenticalArtifactsWithOwnName) {
  Pipeline p;
  ConversionSupervisor cached = p.Make();
  ConversionSupervisor uncached = p.Make({}, /*with_cache=*/false);

  Program first = OneMarylandReport();
  Program second = first;
  second.name = "SECOND-PROGRAM";

  PipelineOutcome cold = std::move(cached.ConvertProgram(first)).value();
  EXPECT_FALSE(cold.cache_hit);
  ASSERT_TRUE(cold.accepted);
  PipelineOutcome warm = std::move(cached.ConvertProgram(second)).value();
  EXPECT_TRUE(warm.cache_hit);
  EXPECT_FALSE(warm.cache_key.empty());
  EXPECT_EQ(warm.cache_key, cold.cache_key);

  // The served program carries the *second* program's identity...
  EXPECT_EQ(warm.conversion.converted.name, "SECOND-PROGRAM");
  // ...and is otherwise byte-identical to the uncached pipeline's output.
  PipelineOutcome reference = std::move(uncached.ConvertProgram(second)).value();
  EXPECT_EQ(GenerateCplSource(warm.conversion.converted),
            GenerateCplSource(reference.conversion.converted));
  EXPECT_EQ(ProvenanceListing("X", warm.conversion.source_statements,
                              warm.conversion.converted),
            ProvenanceListing("X", reference.conversion.source_statements,
                              reference.conversion.converted));
  EXPECT_EQ(warm.classification, reference.classification);
  EXPECT_EQ(p.cache.Stats().hits, 1u);
}

// Regression (the provenance-split bug class): programs differing only in
// Provenance stamps share one memo entry, and a hit is fully stamped with
// per-program statement ids.
TEST(TemplateCacheSupervisorTest, ProvenanceOnlyDifferencesShareOneEntry) {
  Pipeline p;
  ConversionSupervisor supervisor = p.Make();

  Program plain = OneMarylandReport();
  Program stamped = plain;
  // Stamps from some earlier pipeline pass; operator== ignores them and so
  // must the memo key.
  StampSourceProvenance(&stamped, "previous", "stale-stamp");

  PipelineOutcome cold = std::move(supervisor.ConvertProgram(plain)).value();
  ASSERT_TRUE(cold.accepted);
  PipelineOutcome warm = std::move(supervisor.ConvertProgram(stamped)).value();
  EXPECT_TRUE(warm.cache_hit);
  EXPECT_EQ(p.cache.Stats().entries, 1u);

  // The served conversion is totally stamped and its listing matches the
  // cold conversion's statement ids (the canonical bodies are identical,
  // so the pre-order numbering is too).
  EXPECT_EQ(UnstampedCount(warm.conversion.converted), 0u);
  EXPECT_EQ(ProvenanceListing(warm.conversion.converted.name,
                              warm.conversion.source_statements,
                              warm.conversion.converted),
            ProvenanceListing(cold.conversion.converted.name,
                              cold.conversion.source_statements,
                              cold.conversion.converted));
}

// Regression (the stale-statistics bug class): mutating the statistics
// catalog — or pointing a differently-switched supervisor at the same
// cache — must never serve the previously optimized fragment.
TEST(TemplateCacheSupervisorTest, StaleStatisticsAreNeverServed) {
  Pipeline p;
  StatisticsCatalog catalog;
  SupervisorOptions options;
  options.statistics = &catalog;
  ConversionSupervisor supervisor = p.Make(options);

  Program program = OneMarylandReport();
  PipelineOutcome cold = std::move(supervisor.ConvertProgram(program)).value();
  ASSERT_TRUE(cold.accepted);
  PipelineOutcome warm = std::move(supervisor.ConvertProgram(program)).value();
  EXPECT_TRUE(warm.cache_hit);

  // In-place catalog mutation: same pointer, new contents, new key.
  Database db = testing::MakeCompanyDatabase();
  testing::FillCompany(&db, 3, 4);
  Database translated =
      std::move(dbpc::TranslateDatabase(db, p.plan.View())).value();
  catalog = StatisticsCatalog::Collect(translated);
  PipelineOutcome after_mutation =
      std::move(supervisor.ConvertProgram(program)).value();
  EXPECT_FALSE(after_mutation.cache_hit);
  // The refreshed statistics are now memoized under their own key.
  PipelineOutcome after_mutation_warm =
      std::move(supervisor.ConvertProgram(program)).value();
  EXPECT_TRUE(after_mutation_warm.cache_hit);

  // Toggling option switches addresses different entries even on a shared
  // cache: optimizer, index configuration, template lifting.
  SupervisorOptions no_optimizer;
  no_optimizer.run_optimizer = false;
  EXPECT_FALSE(std::move(p.Make(no_optimizer).ConvertProgram(program))
                   .value()
                   .cache_hit);
  SupervisorOptions no_indexes;
  no_indexes.index.enabled = false;
  no_indexes.index.auto_join_indexes = false;
  EXPECT_FALSE(std::move(p.Make(no_indexes).ConvertProgram(program))
                   .value()
                   .cache_hit);
  SupervisorOptions no_lifting;
  no_lifting.analyzer.lift_templates = false;
  EXPECT_FALSE(std::move(p.Make(no_lifting).ConvertProgram(program))
                   .value()
                   .cache_hit);
}

TEST(TemplateCacheSupervisorTest, AnalystConversionsAreNeverMemoized) {
  Pipeline p;
  SupervisorOptions options;
  options.analyst = ApproveAllAnalyst();
  ConversionSupervisor supervisor = p.Make(options);

  Program program = ShapePrograms(CorpusShape::kAmbiguousOwner, 1)[0];
  PipelineOutcome first = std::move(supervisor.ConvertProgram(program)).value();
  ASSERT_EQ(first.classification, Convertibility::kNeedsAnalyst);
  ASSERT_FALSE(first.analyst_log.empty());
  PipelineOutcome second =
      std::move(supervisor.ConvertProgram(program)).value();
  EXPECT_FALSE(second.cache_hit);
  EXPECT_EQ(p.cache.Stats().entries, 0u);
  // Both conversions consulted the analyst afresh.
  EXPECT_EQ(first.analyst_log, second.analyst_log);
}

TEST(TemplateCacheSupervisorTest, RefusalsAreMemoizedToo) {
  Pipeline p;
  ConversionSupervisor supervisor = p.Make();
  Program program = ShapePrograms(CorpusShape::kRuntimeVariable, 1)[0];
  PipelineOutcome cold = std::move(supervisor.ConvertProgram(program)).value();
  ASSERT_EQ(cold.classification, Convertibility::kNotConvertible);
  PipelineOutcome warm = std::move(supervisor.ConvertProgram(program)).value();
  EXPECT_TRUE(warm.cache_hit);
  EXPECT_EQ(warm.classification, Convertibility::kNotConvertible);
  EXPECT_FALSE(warm.accepted);
}

TEST(TemplateCacheSupervisorTest, TracedConversionsBypassTheCache) {
  Pipeline p;
  SpanCollector cached_spans;
  SupervisorOptions options;
  options.spans = &cached_spans;
  ConversionSupervisor supervisor = p.Make(options);

  Program program = OneMarylandReport();
  PipelineOutcome first = std::move(supervisor.ConvertProgram(program)).value();
  PipelineOutcome second =
      std::move(supervisor.ConvertProgram(program)).value();
  EXPECT_FALSE(first.cache_hit);
  EXPECT_FALSE(second.cache_hit);
  EXPECT_EQ(p.cache.Stats().hits, 0u);
  EXPECT_EQ(p.cache.Stats().entries, 0u);

  // The traced forest matches an uncached supervisor's exactly.
  SpanCollector plain_spans;
  SupervisorOptions plain_options;
  plain_options.spans = &plain_spans;
  ConversionSupervisor plain = p.Make(plain_options, /*with_cache=*/false);
  (void)std::move(plain.ConvertProgram(program)).value();
  (void)std::move(plain.ConvertProgram(program)).value();
  EXPECT_EQ(cached_spans.ToText(false), plain_spans.ToText(false));
}

// Golden output for the --explain marker (dbpcc prints this line verbatim
// on a memoized outcome; candidate costs below it are historical).
TEST(TemplateCacheSupervisorTest, ExplainCacheLineGolden) {
  PipelineOutcome outcome;
  EXPECT_EQ(ExplainCacheLine(outcome), "");
  outcome.cache_hit = true;
  outcome.cache_key = "0x00000000deadbeef";
  EXPECT_EQ(ExplainCacheLine(outcome),
            "  plan: cached (memo key 0x00000000deadbeef); candidate costs "
            "below were enumerated when the cache entry was populated\n");
}

// --- service integration ---------------------------------------------------

TEST(TemplateCacheServiceTest, WorkersShareOneCacheAndCountersLand) {
  RestructuringPlan plan = Figure44Plan();
  std::vector<Program> distinct = ShapePrograms(CorpusShape::kMarylandReport, 4);
  std::vector<ConversionRequest> requests;
  for (int repeat = 0; repeat < 6; ++repeat) {
    for (const Program& program : distinct) {
      ConversionRequest request;
      request.program = program;
      requests.push_back(std::move(request));
    }
  }

  ServiceOptions cached_options;
  cached_options.jobs = 4;
  cached_options.supervisor.analyst = ApproveAllAnalyst();
  std::unique_ptr<ConversionService> cached =
      std::move(ConversionService::Create(CompanySchema(), plan.View(),
                                          cached_options))
          .value();
  ASSERT_NE(cached->cache(), nullptr);

  ServiceOptions uncached_options = cached_options;
  uncached_options.jobs = 1;
  uncached_options.cache.enabled = false;
  std::unique_ptr<ConversionService> uncached =
      std::move(ConversionService::Create(CompanySchema(), plan.View(),
                                          uncached_options))
          .value();
  ASSERT_EQ(uncached->cache(), nullptr);

  SystemConversionReport warm_report =
      std::move(cached->ConvertSystem(requests)).value();
  SystemConversionReport cold_report =
      std::move(uncached->ConvertSystem(requests)).value();

  // Byte-identical reports cache on/off, any worker count.
  EXPECT_EQ(warm_report.ToText(), cold_report.ToText());
  ASSERT_EQ(warm_report.outcomes.size(), cold_report.outcomes.size());
  for (size_t i = 0; i < warm_report.outcomes.size(); ++i) {
    EXPECT_EQ(
        GenerateCplSource(warm_report.outcomes[i].conversion.converted),
        GenerateCplSource(cold_report.outcomes[i].conversion.converted));
  }

  // 4 distinct templates, 24 requests, all shards and workers sharing the
  // one memo; the counters land in the service registry (and from there
  // in --metrics-json and daemon METRICS). Workers racing on the same
  // cold template each miss and convert independently (the memo does not
  // coalesce in-flight conversions), so under a 4-worker pool the miss
  // count is at least one per template but can reach one per worker per
  // template; every lookup is exactly one hit or one miss either way.
  MetricsRegistry& metrics = cached->metrics();
  const uint64_t misses = metrics.GetCounter("cache.misses")->Value();
  const uint64_t hits = metrics.GetCounter("cache.hits")->Value();
  EXPECT_GE(misses, 4u);
  EXPECT_LE(misses, 4u * static_cast<uint64_t>(cached_options.jobs));
  EXPECT_EQ(hits + misses, requests.size());
  EXPECT_EQ(cached->cache()->Stats().entries, 4u);
  for (const char* key :
       {"cache.hits", "cache.misses", "cache.evictions",
        "cache.invalidations", "cache.traced_bypass"}) {
    EXPECT_NE(metrics.ToJson().find(key), std::string::npos) << key;
  }
  EXPECT_EQ(metrics.GetCounter("cache.misses")->Value() +
                metrics.GetCounter("cache.hits")->Value(),
            requests.size());

  // Operational flush: entries drop and the invalidation is counted.
  cached->InvalidateCache();
  EXPECT_EQ(cached->cache()->Stats().entries, 0u);
  EXPECT_EQ(metrics.GetCounter("cache.invalidations")->Value(), 4u);
}

TEST(TemplateCacheServiceTest, ExternalCacheIsSharedAcrossServices) {
  RestructuringPlan plan = Figure44Plan();
  TemplateCache shared;
  ServiceOptions options;
  options.supervisor.cache = &shared;
  std::unique_ptr<ConversionService> a =
      std::move(ConversionService::Create(CompanySchema(), plan.View(),
                                          options))
          .value();
  std::unique_ptr<ConversionService> b =
      std::move(ConversionService::Create(CompanySchema(), plan.View(),
                                          options))
          .value();
  EXPECT_EQ(a->cache(), &shared);
  EXPECT_EQ(b->cache(), &shared);

  ConversionRequest request;
  request.program = OneMarylandReport();
  (void)a->Convert(request, 1);
  ConversionResponse warm = b->Convert(request, 2);
  EXPECT_TRUE(warm.outcome.cache_hit);
  EXPECT_EQ(b->metrics().GetCounter("cache.hits")->Value(), 1u);
}

// --- concurrency (runs under -DDBPC_SANITIZE=thread in check.sh) -----------

TEST(TemplateCacheConcurrencyTest, ParallelLookupsAndInsertsAreSafe) {
  Program program = OneMarylandReport();
  TemplateCacheOptions options;
  options.shards = 4;
  options.capacity = 32;  // small: forces concurrent eviction
  TemplateCache cache(options);

  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 2000;
  std::atomic<uint64_t> served{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        uint64_t key = static_cast<uint64_t>((t * 7 + i) % 64);
        std::shared_ptr<const CachedConversion> entry =
            cache.Lookup(key, "ctx", program);
        if (entry != nullptr) {
          // Read through the entry while another thread may evict it.
          served.fetch_add(entry->canonical_body.size());
        } else {
          cache.Insert(key, EntryFor(program, "ctx"));
        }
        if (i % 500 == 0 && t == 0) cache.Clear();
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  TemplateCacheStats stats = cache.Stats();
  EXPECT_EQ(stats.hits + stats.misses,
            static_cast<uint64_t>(kThreads) * kOpsPerThread);
  EXPECT_LE(stats.entries, 32u);
  EXPECT_GT(served.load(), 0u);
}

TEST(TemplateCacheConcurrencyTest, ServiceBatchUnderContention) {
  RestructuringPlan plan = Figure44Plan();
  std::vector<Program> distinct = ShapePrograms(CorpusShape::kSortedReport, 3);
  std::vector<ConversionRequest> requests;
  for (int repeat = 0; repeat < 16; ++repeat) {
    for (const Program& program : distinct) {
      ConversionRequest request;
      request.program = program;
      requests.push_back(std::move(request));
    }
  }
  ServiceOptions options;
  options.jobs = 8;
  options.supervisor.analyst = ApproveAllAnalyst();
  std::unique_ptr<ConversionService> service =
      std::move(ConversionService::Create(CompanySchema(), plan.View(),
                                          options))
          .value();
  SystemConversionReport report =
      std::move(service->ConvertSystem(requests)).value();
  EXPECT_EQ(report.outcomes.size(), requests.size());
  MetricsRegistry& metrics = service->metrics();
  EXPECT_EQ(metrics.GetCounter("cache.hits")->Value() +
                metrics.GetCounter("cache.misses")->Value(),
            requests.size());
  // Every outcome for one template is identical regardless of which
  // worker (or the cache) produced it.
  for (size_t i = distinct.size(); i < report.outcomes.size(); ++i) {
    EXPECT_EQ(GenerateCplSource(report.outcomes[i].conversion.converted),
              GenerateCplSource(
                  report.outcomes[i % distinct.size()].conversion.converted));
  }
}

}  // namespace
}  // namespace dbpc
