#include "convert/provenance.h"

#include <gtest/gtest.h>

#include "convert/converter.h"
#include "lang/parser.h"
#include "restructure/plan_parser.h"
#include "testing/fixtures.h"

namespace dbpc {
namespace {

RestructuringPlan Figure44Plan() {
  return std::move(ParsePlan(R"(
RESTRUCTURE PLAN FIGURE-4-4.
  INTRODUCE RECORD DEPT BETWEEN DIV-EMP GROUPING BY DEPT-NAME
      AS DIV-DEPT AND DEPT-EMP.
END PLAN.
)"))
      .value();
}

constexpr const char* kSalesReport = R"(
PROGRAM SALES-RPT.
  FOR EACH CUR-1 IN FIND(EMP: SYSTEM, ALL-DIV, DIV(DIV-NAME = 'MACHINERY'),
                         DIV-EMP, EMP(DEPT-NAME = 'SALES')) DO
    GET EMP-NAME OF CUR-1 INTO N.
    WRITE REPORT FROM N.
  END-FOR.
END PROGRAM.)";

TEST(ProvenanceTest, StmtHeadTextElidesNestedBlocks) {
  Program p = *ParseProgram(kSalesReport);
  ASSERT_EQ(p.body.size(), 1u);
  std::string head = StmtHeadText(p.body[0]);
  EXPECT_NE(head.find("FOR EACH CUR-1"), std::string::npos) << head;
  EXPECT_EQ(head.find("GET EMP-NAME"), std::string::npos) << head;
  EXPECT_EQ(head.find('\n'), std::string::npos) << head;
}

TEST(ProvenanceTest, ProvenanceNeverAffectsStatementEquality) {
  Program a = *ParseProgram(kSalesReport);
  Program b = *ParseProgram(kSalesReport);
  StampSourceProvenance(&a, "rewrite", "source");
  EXPECT_EQ(a, b);  // provenance is observation-invisible
  EXPECT_EQ(a.body[0], b.body[0]);
  ASSERT_TRUE(a.body[0].prov.has_value());
  EXPECT_FALSE(b.body[0].prov.has_value());
}

TEST(ProvenanceTest, StampSourceNumbersStatementsPreOrder) {
  Program p = *ParseProgram(kSalesReport);
  std::vector<std::string> heads = StampSourceProvenance(&p, "rewrite", "source");
  ASSERT_EQ(heads.size(), 3u);  // FOR-EACH, GET, WRITE
  EXPECT_EQ(p.body[0].prov->source_stmt_id, 0);
  EXPECT_EQ(p.body[0].body[0].prov->source_stmt_id, 1);
  EXPECT_EQ(p.body[0].body[1].prov->source_stmt_id, 2);
  EXPECT_EQ(p.body[0].prov->rule, "source");
  EXPECT_EQ(UnstampedCount(p), 0u);
}

TEST(ProvenanceTest, StampRewriteStepKeepsCarriedStatementsAndTagsNewOnes) {
  Program before = *ParseProgram(kSalesReport);
  StampSourceProvenance(&before, "rewrite", "source");
  Program after = before;
  // Simulate a rewrite: a new DISPLAY appended after the FOR-EACH.
  Program extra = *ParseProgram(R"(
PROGRAM X.
  DISPLAY 'DONE'.
END PROGRAM.)");
  after.body.push_back(extra.body[0]);
  std::vector<StampedRewrite> stamped =
      StampRewriteStep(before, &after, "rewrite", "append-display");
  ASSERT_EQ(stamped.size(), 1u);
  EXPECT_EQ(stamped[0].rule, "append-display");
  // The new statement inherits the id of the nearest preceding stamped
  // statement (the WRITE, pre-order id 2).
  EXPECT_EQ(stamped[0].source_stmt_id, 2);
  // Carried statements keep their original stamps.
  EXPECT_EQ(after.body[0].prov->rule, "source");
  EXPECT_EQ(UnstampedCount(after), 0u);
}

TEST(ProvenanceTest, RestampStrategyRelabelsWithoutTouchingIds) {
  Program p = *ParseProgram(kSalesReport);
  StampSourceProvenance(&p, "rewrite", "source");
  RestampStrategy(&p, "emulation");
  EXPECT_EQ(p.body[0].prov->strategy, "emulation");
  EXPECT_EQ(p.body[0].prov->rule, "source");
  EXPECT_EQ(p.body[0].prov->source_stmt_id, 0);
}

TEST(ProvenanceTest, ConverterStampsEveryEmittedStatement) {
  Schema schema = testing::MakeDatabase(testing::CompanyDdl()).schema();
  RestructuringPlan plan = Figure44Plan();
  ProgramConverter converter =
      *ProgramConverter::Create(schema, plan.View());
  ConversionResult result = *converter.Convert(*ParseProgram(kSalesReport));
  ASSERT_EQ(result.outcome, Convertibility::kAutomatic);
  EXPECT_EQ(UnstampedCount(result.converted), 0u);
  ASSERT_FALSE(result.source_statements.empty());
  // The FIND was respliced through the introduced DEPT record: its
  // statement must be stamped by the plan step, not left as "source".
  ASSERT_TRUE(result.converted.body[0].prov.has_value());
  EXPECT_EQ(result.converted.body[0].prov->strategy, "rewrite");
  EXPECT_EQ(result.converted.body[0].prov->rule, "introduce-intermediate");
  EXPECT_EQ(result.converted.body[0].prov->source_stmt_id, 0);
}

TEST(ProvenanceTest, ListingMapsEveryStatementToItsSource) {
  Schema schema = testing::MakeDatabase(testing::CompanyDdl()).schema();
  RestructuringPlan plan = Figure44Plan();
  ProgramConverter converter =
      *ProgramConverter::Create(schema, plan.View());
  ConversionResult result = *converter.Convert(*ParseProgram(kSalesReport));
  std::string listing = ProvenanceListing(
      result.converted.name, result.source_statements, result.converted);
  EXPECT_NE(listing.find("== provenance for program SALES-RPT =="),
            std::string::npos)
      << listing;
  EXPECT_EQ(listing.find("UNSTAMPED"), std::string::npos) << listing;
  EXPECT_NE(listing.find("introduce-intermediate"), std::string::npos)
      << listing;
}

}  // namespace
}  // namespace dbpc
