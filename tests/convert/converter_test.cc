#include "convert/converter.h"

#include <gtest/gtest.h>

#include "lang/parser.h"
#include "testing/fixtures.h"

namespace dbpc {
namespace {

using testing::MakeCompanyDatabase;

bool HasCategory(const std::vector<SchemaChange>& changes,
                 const std::string& category) {
  for (const SchemaChange& c : changes) {
    if (c.category == category) return true;
  }
  return false;
}

TEST(ClassifySchemaChangesTest, IdenticalSchemasNoChanges) {
  Schema s = MakeCompanyDatabase().schema();
  EXPECT_TRUE(ClassifySchemaChanges(s, s).empty());
}

TEST(ClassifySchemaChangesTest, DetectsFieldAndRecordChanges) {
  Schema source = MakeCompanyDatabase().schema();
  Schema target = source;
  ASSERT_TRUE(target.DropConstraint("X").code() == StatusCode::kNotFound);
  RecordTypeDef* emp = target.FindRecordType("EMP");
  emp->fields.push_back({.name = "SALARY", .type = FieldType::kInt});
  std::erase_if(emp->fields,
                [](const FieldDef& f) { return f.name == "DEPT-NAME"; });
  std::vector<SchemaChange> changes = ClassifySchemaChanges(source, target);
  EXPECT_TRUE(HasCategory(changes, "field-added"));
  EXPECT_TRUE(HasCategory(changes, "field-removed"));
}

TEST(ClassifySchemaChangesTest, DetectsSetChanges) {
  Schema source = MakeCompanyDatabase().schema();
  Schema target = source;
  target.FindSet("DIV-EMP")->keys = {"AGE"};
  target.FindSet("DIV-EMP")->insertion = InsertionClass::kManual;
  target.FindSet("DIV-EMP")->member_characterizes_owner = true;
  std::vector<SchemaChange> changes = ClassifySchemaChanges(source, target);
  EXPECT_TRUE(HasCategory(changes, "set-order-changed"));
  EXPECT_TRUE(HasCategory(changes, "set-membership-changed"));
  EXPECT_TRUE(HasCategory(changes, "dependency-added"));
}

TEST(ClassifySchemaChangesTest, DetectsConstraintChanges) {
  Schema source = testing::MakeSchoolDatabase().schema();
  Schema target = source;
  ASSERT_TRUE(target.DropConstraint("TWICE-A-YEAR").ok());
  ConstraintDef extra;
  extra.name = "UNIQ-CNAME";
  extra.kind = ConstraintKind::kUniqueness;
  extra.record = "COURSE";
  extra.fields = {"CNAME"};
  ASSERT_TRUE(target.AddConstraint(extra).ok());
  std::vector<SchemaChange> changes = ClassifySchemaChanges(source, target);
  EXPECT_TRUE(HasCategory(changes, "constraint-removed"));
  EXPECT_TRUE(HasCategory(changes, "constraint-added"));
}

TEST(ClassifySchemaChangesTest, RenameAppearsAsAddRemovePair) {
  Schema source = MakeCompanyDatabase().schema();
  TransformationPtr t = MakeRenameRecord("EMP", "WORKER");
  Schema target = *t->ApplyToSchema(source);
  std::vector<SchemaChange> changes = ClassifySchemaChanges(source, target);
  // The diff alone cannot see intent: this is why the framework takes the
  // restructuring definition as an input.
  EXPECT_TRUE(HasCategory(changes, "record-type-removed"));
  EXPECT_TRUE(HasCategory(changes, "record-type-added"));
}

TEST(ProgramConverterTest, EmptyPlanIsIdentityOnLiftedPrograms) {
  Schema schema = MakeCompanyDatabase().schema();
  ProgramConverter converter = *ProgramConverter::Create(schema, {});
  Program p = *ParseProgram(R"(
PROGRAM P.
  FOR EACH E IN FIND(EMP: SYSTEM, ALL-DIV, DIV, DIV-EMP, EMP) DO
    GET EMP-NAME OF E INTO N.
    DISPLAY N.
  END-FOR.
END PROGRAM.)");
  ConversionResult result = *converter.Convert(p);
  EXPECT_EQ(result.outcome, Convertibility::kAutomatic);
  EXPECT_EQ(result.converted, p);
}

TEST(ProgramConverterTest, RefusesRuntimeVariablePrograms) {
  Schema schema = MakeCompanyDatabase().schema();
  TransformationPtr t = MakeRenameRecord("EMP", "WORKER");
  ProgramConverter converter = *ProgramConverter::Create(schema, {t.get()});
  Program p = *ParseProgram(R"(
PROGRAM P.
  ACCEPT V.
  CALL DML(V, EMP).
END PROGRAM.)");
  ConversionResult result = *converter.Convert(p);
  EXPECT_EQ(result.outcome, Convertibility::kNotConvertible);
}

TEST(ProgramConverterTest, RemoveReferencedFieldNeedsAnalyst) {
  Schema schema = MakeCompanyDatabase().schema();
  TransformationPtr t = MakeRemoveField("EMP", "AGE");
  ProgramConverter converter = *ProgramConverter::Create(schema, {t.get()});
  Program p = *ParseProgram(R"(
PROGRAM P.
  FOR EACH E IN FIND(EMP: SYSTEM, ALL-DIV, DIV, DIV-EMP, EMP(AGE > 30)) DO
    GET EMP-NAME OF E INTO N.
    DISPLAY N.
  END-FOR.
END PROGRAM.)");
  ConversionResult result = *converter.Convert(p);
  EXPECT_EQ(result.outcome, Convertibility::kNeedsAnalyst);
  EXPECT_FALSE(result.notes.empty());
}

TEST(ProgramConverterTest, RemoveUnreferencedFieldAutomatic) {
  Schema schema = MakeCompanyDatabase().schema();
  TransformationPtr t = MakeRemoveField("EMP", "DEPT-NAME");
  ProgramConverter converter = *ProgramConverter::Create(schema, {t.get()});
  Program p = *ParseProgram(R"(
PROGRAM P.
  FOR EACH E IN FIND(EMP: SYSTEM, ALL-DIV, DIV, DIV-EMP, EMP(AGE > 30)) DO
    GET EMP-NAME OF E INTO N.
    DISPLAY N.
  END-FOR.
END PROGRAM.)");
  ConversionResult result = *converter.Convert(p);
  EXPECT_EQ(result.outcome, Convertibility::kAutomatic);
}

TEST(ProgramConverterTest, ConvertsNavigationalProgramsThroughLifting) {
  Schema schema = MakeCompanyDatabase().schema();
  TransformationPtr t = MakeRenameSet("DIV-EMP", "STAFF");
  ProgramConverter converter = *ProgramConverter::Create(schema, {t.get()});
  Program p = *ParseProgram(R"(
PROGRAM P.
  FIND ANY DIV (DIV-NAME = 'MACHINERY').
  FIND FIRST EMP WITHIN DIV-EMP.
  WHILE DB-STATUS = '0000' DO
    GET EMP-NAME INTO N.
    DISPLAY N.
    FIND NEXT EMP WITHIN DIV-EMP.
  END-WHILE.
END PROGRAM.)");
  ConversionResult result = *converter.Convert(p);
  EXPECT_EQ(result.outcome, Convertibility::kAutomatic);
  EXPECT_EQ(result.converted.body[0].retrieval->query.ToString(),
            "FIND(EMP: SYSTEM, ALL-DIV, DIV(DIV-NAME = 'MACHINERY'), "
            "STAFF, EMP)");
}

TEST(ProgramConverterTest, VirtualizeDropsFieldAssignmentsWithNote) {
  Schema schema = MakeCompanyDatabase().schema();
  TransformationPtr m = MakeMaterializeVirtualField("EMP", "DIV-NAME");
  Schema mat_schema = *m->ApplyToSchema(schema);
  TransformationPtr v =
      MakeVirtualizeField("EMP", "DIV-NAME", "DIV-EMP", "DIV-NAME");
  ProgramConverter converter =
      *ProgramConverter::Create(mat_schema, {v.get()});
  Program p = *ParseProgram(R"(
PROGRAM P.
  STORE EMP (EMP-NAME = 'X', DIV-NAME = 'MACHINERY')
    IN DIV-EMP WHERE (DIV-NAME = 'MACHINERY').
END PROGRAM.)");
  ConversionResult result = *converter.Convert(p);
  ASSERT_EQ(result.converted.body[0].kind, StmtKind::kStore);
  for (const auto& [field, expr] : result.converted.body[0].assignments) {
    EXPECT_NE(field, "DIV-NAME");
  }
  EXPECT_FALSE(result.notes.empty());
}

TEST(ProgramConverterTest, TargetSchemaExposedAndValid) {
  Schema schema = MakeCompanyDatabase().schema();
  TransformationPtr a = MakeRenameRecord("EMP", "WORKER");
  TransformationPtr b = MakeRenameField("WORKER", "EMP-NAME", "WNAME");
  ProgramConverter converter =
      *ProgramConverter::Create(schema, {a.get(), b.get()});
  EXPECT_NE(converter.target_schema().FindRecordType("WORKER"), nullptr);
  EXPECT_TRUE(converter.target_schema().Validate().ok());
  EXPECT_FALSE(converter.changes().empty());
}

}  // namespace
}  // namespace dbpc
