// Conversion sweep over the Figure 3.1 school database: multi-parent
// members (OFFERING belongs to both its COURSE and its SEMESTER),
// characterizing dependencies and the cardinality rule interact with the
// transformation rules here in ways the single-parent COMPANY schema
// cannot exercise.

#include <gtest/gtest.h>

#include "equivalence/checker.h"
#include "lang/parser.h"
#include "restructure/plan_parser.h"
#include "supervisor/supervisor.h"
#include "testing/fixtures.h"

namespace dbpc {
namespace {

using testing::MakeSchoolDatabase;

const char* const kSchoolPrograms[] = {
    // Offerings of one course, through the course side.
    R"(PROGRAM COURSE-OFFERINGS.
  FOR EACH O IN FIND(OFFERING: SYSTEM, ALL-COURSE, COURSE(CNO = 'CS101'),
      CRS-OFF, OFFERING) DO
    GET S OF O INTO SEM.
    GET SECTION-NO OF O INTO SEC.
    DISPLAY 'CS101 ' & SEM & ' SEC ' & SEC.
  END-FOR.
END PROGRAM.)",
    // The same offerings reached through the semester side.
    R"(PROGRAM SEMESTER-LOAD.
  FOR EACH O IN FIND(OFFERING: SYSTEM, ALL-SEM, SEMESTER(YEAR = 1979),
      SEM-OFF, OFFERING) DO
    GET CNO OF O INTO C.
    DISPLAY C.
  END-FOR.
END PROGRAM.)",
    // Store with two owner selections (both sets are AUTOMATIC/MANDATORY).
    R"(PROGRAM ADD-OFFERING.
  STORE OFFERING (SECTION-NO = 7, YEAR = 1978)
    IN CRS-OFF WHERE (CNO = 'CS202')
    IN SEM-OFF WHERE (S = 'F78').
  DISPLAY 'ADDED'.
END PROGRAM.)",
    // Cascade delete through the characterizing sets.
    R"(PROGRAM RETIRE-COURSE.
  FOR EACH C IN FIND(COURSE: SYSTEM, ALL-COURSE, COURSE(CNO = 'CS101')) DO
    DELETE C.
  END-FOR.
  FOR EACH O IN FIND(OFFERING: SYSTEM, ALL-SEM, SEMESTER, SEM-OFF, OFFERING) DO
    GET CNO OF O INTO K.
    DISPLAY 'LEFT ' & K.
  END-FOR.
END PROGRAM.)",
    // Navigational scan of courses (template lifting on the school schema).
    R"(PROGRAM LIST-COURSES.
  FIND FIRST COURSE WITHIN ALL-COURSE.
  WHILE DB-STATUS = '0000' DO
    GET CNAME INTO N.
    DISPLAY N.
    FIND NEXT COURSE WITHIN ALL-COURSE.
  END-WHILE.
END PROGRAM.)",
};

const char* const kSchoolPlans[] = {
    R"(RESTRUCTURE PLAN RENAME-OFFERING.
  RENAME RECORD OFFERING TO CLASS.
  RENAME SET CRS-OFF TO COURSE-CLASSES.
  RENAME FIELD SECTION-NO OF CLASS TO SECTION-NUM.
END PLAN.)",
    R"(RESTRUCTURE PLAN SORT-OFFERINGS.
  ORDER SET CRS-OFF BY (YEAR, SECTION-NO).
END PLAN.)",
    R"(RESTRUCTURE PLAN DROP-DEPENDENCIES.
  DROP DEPENDENCY OF CRS-OFF.
  DROP DEPENDENCY OF SEM-OFF.
END PLAN.)",
    R"(RESTRUCTURE PLAN ANNOTATE.
  ADD FIELD ROOM TO OFFERING TYPE X(6) DEFAULT 'TBA'.
END PLAN.)",
};

class SchoolConversionTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(SchoolConversionTest, AcceptedConversionsRunEquivalently) {
  int plan_index = std::get<0>(GetParam());
  int program_index = std::get<1>(GetParam());
  RestructuringPlan plan =
      std::move(ParsePlan(kSchoolPlans[plan_index])).value();
  Program program =
      std::move(ParseProgram(kSchoolPrograms[program_index])).value();

  Database source = MakeSchoolDatabase();
  SupervisorOptions options;
  options.analyst = ApproveAllAnalyst();
  ConversionSupervisor supervisor = *ConversionSupervisor::Create(
      source.schema(), plan.View(), options);
  PipelineOutcome outcome = *supervisor.ConvertProgram(program);
  if (outcome.classification != Convertibility::kAutomatic) {
    GTEST_SKIP() << ConvertibilityName(outcome.classification);
  }
  Result<Database> target = supervisor.TranslateDatabase(source);
  ASSERT_TRUE(target.ok()) << target.status();
  EquivalenceReport report = *CheckEquivalence(
      source, program, *target, outcome.conversion.converted, IoScript());
  EXPECT_TRUE(report.equivalent)
      << "plan " << plan.name << "\n"
      << report.detail << "\noriginal:\n"
      << program.ToSource() << "\nconverted:\n"
      << outcome.conversion.converted.ToSource();
}

INSTANTIATE_TEST_SUITE_P(
    PlansTimesPrograms, SchoolConversionTest,
    ::testing::Combine(::testing::Range(0, 4), ::testing::Range(0, 5)));

TEST(SchoolConversionTest, DropDependencyGuardsBothSets) {
  // A course delete must gain explicit offering deletion when CRS-OFF's
  // dependency is dropped; the SEM-OFF dependency (also dropped) must not
  // produce a loop on course deletes (courses do not own SEM-OFF).
  RestructuringPlan plan = std::move(ParsePlan(kSchoolPlans[2])).value();
  Program program = std::move(ParseProgram(kSchoolPrograms[3])).value();
  Database source = MakeSchoolDatabase();
  ConversionSupervisor supervisor = *ConversionSupervisor::Create(
      source.schema(), plan.View(), SupervisorOptions{});
  PipelineOutcome outcome = *supervisor.ConvertProgram(program);
  ASSERT_TRUE(outcome.accepted);
  const Stmt& loop = outcome.conversion.converted.body[0];
  ASSERT_EQ(loop.body.size(), 2u) << outcome.conversion.converted.ToSource();
  EXPECT_EQ(loop.body[0].kind, StmtKind::kForEach);
  EXPECT_EQ(loop.body[0].retrieval->query.steps[0].name, "CRS-OFF");
}

TEST(SchoolConversionTest, CardinalityTightenedConversionNotesBehaviour) {
  // Tightening the twice-a-year rule to once-a-year: existing data violates
  // it, so the data translation refuses — the paper's "conversion when not
  // all information is preserved is a different and more difficult
  // problem" boundary.
  RestructuringPlan plan = std::move(ParsePlan(R"(
RESTRUCTURE PLAN TIGHTEN.
  DROP CONSTRAINT TWICE-A-YEAR.
  ADD CONSTRAINT ONCE-A-YEAR IS CARDINALITY ON SET CRS-OFF LIMIT 1 PER YEAR.
END PLAN.)")).value();
  Database source = MakeSchoolDatabase();
  // CS101 has two 1979 offerings? No: one in 1978, one in 1979 each; add a
  // second 1979 offering so the tightened rule is violated.
  RecordId cs101 = source.SystemMembers("ALL-COURSE")[0];
  RecordId s79 = source.SystemMembers("ALL-SEM")[1];
  ASSERT_TRUE(source
                  .StoreRecord({"OFFERING",
                                {{"SECTION-NO", Value::Int(2)},
                                 {"YEAR", Value::Int(1979)}},
                                {{"CRS-OFF", cs101}, {"SEM-OFF", s79}}})
                  .ok());
  ConversionSupervisor supervisor = *ConversionSupervisor::Create(
      source.schema(), plan.View(), SupervisorOptions{});
  Result<Database> target = supervisor.TranslateDatabase(source);
  ASSERT_FALSE(target.ok());
  EXPECT_EQ(target.status().code(), StatusCode::kConstraintViolation);
}

}  // namespace
}  // namespace dbpc
