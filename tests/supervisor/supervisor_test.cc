#include "supervisor/supervisor.h"

#include <gtest/gtest.h>

#include "convert/provenance.h"
#include "corpus/corpus.h"
#include "lang/parser.h"
#include "testing/fixtures.h"

namespace dbpc {
namespace {

using testing::MakeCompanyDatabase;

constexpr const char* kAmbiguous = R"(
PROGRAM AMB.
  FIND ANY DIV (DIV-LOC = 'EAST').
  FIND FIRST EMP WITHIN DIV-EMP.
  WHILE DB-STATUS = '0000' DO
    GET EMP-NAME INTO N.
    DISPLAY N.
    FIND NEXT EMP WITHIN DIV-EMP.
  END-WHILE.
END PROGRAM.)";

TEST(SupervisorTest, AutomaticProgramAcceptedWithoutAnalyst) {
  Schema schema = MakeCompanyDatabase().schema();
  TransformationPtr t = MakeRenameSet("DIV-EMP", "STAFF");
  ConversionSupervisor supervisor =
      *ConversionSupervisor::Create(schema, {t.get()}, SupervisorOptions{});
  Program p = *ParseProgram(R"(
PROGRAM P.
  FOR EACH E IN FIND(EMP: SYSTEM, ALL-DIV, DIV, DIV-EMP, EMP) DO
    GET EMP-NAME OF E INTO N.
    DISPLAY N.
  END-FOR.
END PROGRAM.)");
  PipelineOutcome outcome = *supervisor.ConvertProgram(p);
  EXPECT_TRUE(outcome.accepted);
  EXPECT_EQ(outcome.classification, Convertibility::kAutomatic);
  EXPECT_TRUE(outcome.analyst_log.empty());
}

TEST(SupervisorTest, AnalystQuestionsAskedAndLogged) {
  Schema schema = MakeCompanyDatabase().schema();
  TransformationPtr t = MakeRenameSet("DIV-EMP", "STAFF");
  SupervisorOptions options;
  options.analyst = ApproveAllAnalyst();
  ConversionSupervisor supervisor =
      *ConversionSupervisor::Create(schema, {t.get()}, options);
  PipelineOutcome outcome =
      *supervisor.ConvertProgram(*ParseProgram(kAmbiguous));
  EXPECT_EQ(outcome.classification, Convertibility::kNeedsAnalyst);
  EXPECT_TRUE(outcome.accepted);
  ASSERT_FALSE(outcome.analyst_log.empty());
  EXPECT_TRUE(outcome.analyst_log[0].second);
}

TEST(SupervisorTest, StrictModeRejectsAnalystCases) {
  Schema schema = MakeCompanyDatabase().schema();
  TransformationPtr t = MakeRenameSet("DIV-EMP", "STAFF");
  SupervisorOptions options;  // null analyst = strict automatic mode
  ConversionSupervisor supervisor =
      *ConversionSupervisor::Create(schema, {t.get()}, options);
  PipelineOutcome outcome =
      *supervisor.ConvertProgram(*ParseProgram(kAmbiguous));
  EXPECT_EQ(outcome.classification, Convertibility::kNeedsAnalyst);
  EXPECT_FALSE(outcome.accepted);
}

TEST(SupervisorTest, RejectingAnalystBlocksConversion) {
  Schema schema = MakeCompanyDatabase().schema();
  TransformationPtr t = MakeRenameSet("DIV-EMP", "STAFF");
  SupervisorOptions options;
  options.analyst = RejectAllAnalyst();
  ConversionSupervisor supervisor =
      *ConversionSupervisor::Create(schema, {t.get()}, options);
  PipelineOutcome outcome =
      *supervisor.ConvertProgram(*ParseProgram(kAmbiguous));
  EXPECT_FALSE(outcome.accepted);
  ASSERT_FALSE(outcome.analyst_log.empty());
  EXPECT_FALSE(outcome.analyst_log[0].second);
}

TEST(SupervisorTest, RuntimeVariableProgramRefusedRegardlessOfAnalyst) {
  Schema schema = MakeCompanyDatabase().schema();
  TransformationPtr t = MakeRenameSet("DIV-EMP", "STAFF");
  SupervisorOptions options;
  options.analyst = ApproveAllAnalyst();
  ConversionSupervisor supervisor =
      *ConversionSupervisor::Create(schema, {t.get()}, options);
  PipelineOutcome outcome = *supervisor.ConvertProgram(*ParseProgram(R"(
PROGRAM P.
  ACCEPT V.
  CALL DML(V, EMP).
END PROGRAM.)"));
  EXPECT_EQ(outcome.classification, Convertibility::kNotConvertible);
  EXPECT_FALSE(outcome.accepted);
}

TEST(SupervisorTest, OptimizerRunsOnAcceptedConversions) {
  IntroduceIntermediateParams params;
  params.set_name = "DIV-EMP";
  params.intermediate = "DEPT";
  params.upper_set = "DIV-DEPT";
  params.lower_set = "DEPT-EMP";
  params.group_field = "DEPT-NAME";
  TransformationPtr t = MakeIntroduceIntermediate(params);
  Schema schema = MakeCompanyDatabase().schema();
  ConversionSupervisor supervisor =
      *ConversionSupervisor::Create(schema, {t.get()}, SupervisorOptions{});
  Program p = *ParseProgram(R"(
PROGRAM P.
  FOR EACH E IN FIND(EMP: SYSTEM, ALL-DIV, DIV(DIV-NAME = 'MACHINERY'),
      DIV-EMP, EMP(DEPT-NAME = 'SALES')) DO
    GET EMP-NAME OF E INTO N.
    DISPLAY N.
  END-FOR.
END PROGRAM.)");
  PipelineOutcome outcome = *supervisor.ConvertProgram(p);
  ASSERT_TRUE(outcome.accepted);
  EXPECT_GT(outcome.optimizer_stats.predicates_pushed, 0);
}

TEST(SupervisorTest, OptimizerCanBeDisabled) {
  TransformationPtr t = MakeRenameSet("DIV-EMP", "STAFF");
  Schema schema = MakeCompanyDatabase().schema();
  SupervisorOptions options;
  options.run_optimizer = false;
  ConversionSupervisor supervisor =
      *ConversionSupervisor::Create(schema, {t.get()}, options);
  Program p = *ParseProgram(R"(
PROGRAM P.
  FOR EACH E IN SORT(FIND(EMP: SYSTEM, ALL-DIV, DIV(DIV-NAME = 'MACHINERY'),
      DIV-EMP, EMP)) ON (EMP-NAME) DO
    GET EMP-NAME OF E INTO N.
    DISPLAY N.
  END-FOR.
END PROGRAM.)");
  PipelineOutcome outcome = *supervisor.ConvertProgram(p);
  EXPECT_EQ(outcome.optimizer_stats.sorts_removed, 0);
}

TEST(SupervisorTest, ChangesExposedFromConversionAnalyzer) {
  TransformationPtr t = MakeRenameSet("DIV-EMP", "STAFF");
  Schema schema = MakeCompanyDatabase().schema();
  ConversionSupervisor supervisor =
      *ConversionSupervisor::Create(schema, {t.get()}, SupervisorOptions{});
  EXPECT_FALSE(supervisor.changes().empty());
}

TEST(SupervisorTest, CorpusClassificationMatchesShapes) {
  // Every refused program in the default corpus is the run-time-variable
  // shape; analyst shapes classify as needs-analyst; the rest automatic.
  Schema schema = MakeCompanyDatabase().schema();
  TransformationPtr t = MakeRenameSet("DIV-EMP", "STAFF");
  SupervisorOptions options;
  options.analyst = ApproveAllAnalyst();
  ConversionSupervisor supervisor =
      *ConversionSupervisor::Create(schema, {t.get()}, options);
  for (const CorpusProgram& entry : GenerateCompanyCorpus(CorpusMix{}, 7)) {
    PipelineOutcome outcome = *supervisor.ConvertProgram(entry.program);
    switch (entry.shape) {
      case CorpusShape::kRuntimeVariable:
        EXPECT_EQ(outcome.classification, Convertibility::kNotConvertible)
            << entry.program.ToSource();
        break;
      case CorpusShape::kAmbiguousOwner:
      case CorpusShape::kStatusDependent:
      case CorpusShape::kEraseInScan:
        EXPECT_EQ(outcome.classification, Convertibility::kNeedsAnalyst)
            << entry.program.ToSource();
        break;
      default:
        EXPECT_EQ(outcome.classification, Convertibility::kAutomatic)
            << CorpusShapeName(entry.shape) << "\n"
            << entry.program.ToSource();
        break;
    }
  }
}

// --- span tracing ----------------------------------------------------------

TEST(SupervisorTest, SelfRootedConversionEmitsEveryPipelineStage) {
  Schema schema = MakeCompanyDatabase().schema();
  TransformationPtr t = MakeRenameSet("DIV-EMP", "STAFF");
  SpanCollector spans;
  SupervisorOptions options;
  options.spans = &spans;
  ConversionSupervisor supervisor =
      *ConversionSupervisor::Create(schema, {t.get()}, options);
  Program p = *ParseProgram(R"(
PROGRAM P.
  FOR EACH E IN FIND(EMP: SYSTEM, ALL-DIV, DIV, DIV-EMP, EMP) DO
    GET EMP-NAME OF E INTO N.
    DISPLAY N.
  END-FOR.
END PROGRAM.)");
  PipelineOutcome outcome = *supervisor.ConvertProgram(p);
  ASSERT_TRUE(outcome.accepted);
  ASSERT_EQ(spans.RootCount(), 1u);
  std::string tree = spans.ToText(/*with_timing=*/false);
  EXPECT_NE(tree.find("convert P"), std::string::npos) << tree;
  // The supervisor-side Figure 4.1 stages, in pipeline order (the fifth,
  // program_generator, belongs to the conversion service).
  size_t analyzer_stage = tree.find("conversion_analyzer");
  size_t program_analyzer = tree.find("program_analyzer");
  size_t converter_stage = tree.find("program_converter");
  size_t optimizer_stage = tree.find("optimizer");
  ASSERT_NE(analyzer_stage, std::string::npos) << tree;
  ASSERT_NE(program_analyzer, std::string::npos) << tree;
  ASSERT_NE(converter_stage, std::string::npos) << tree;
  ASSERT_NE(optimizer_stage, std::string::npos) << tree;
  EXPECT_LT(analyzer_stage, program_analyzer);
  EXPECT_LT(program_analyzer, converter_stage);
  EXPECT_LT(converter_stage, optimizer_stage);
  // Per-transformation subspan under program_converter.
  EXPECT_NE(tree.find("rename-set"), std::string::npos) << tree;
}

TEST(SupervisorTest, TracingIsObservationInvisible) {
  Schema schema = MakeCompanyDatabase().schema();
  TransformationPtr t = MakeRenameSet("DIV-EMP", "STAFF");
  Program p = *ParseProgram(R"(
PROGRAM P.
  FOR EACH E IN FIND(EMP: SYSTEM, ALL-DIV, DIV, DIV-EMP, EMP) DO
    GET EMP-NAME OF E INTO N.
    DISPLAY N.
  END-FOR.
END PROGRAM.)");
  ConversionSupervisor plain =
      *ConversionSupervisor::Create(schema, {t.get()}, SupervisorOptions{});
  SpanCollector spans;
  SupervisorOptions traced_options;
  traced_options.spans = &spans;
  ConversionSupervisor traced =
      *ConversionSupervisor::Create(schema, {t.get()}, traced_options);
  PipelineOutcome without = *plain.ConvertProgram(p);
  PipelineOutcome with = *traced.ConvertProgram(p);
  EXPECT_EQ(without.conversion.converted.ToSource(),
            with.conversion.converted.ToSource());
  EXPECT_EQ(without.conversion.converted, with.conversion.converted);
  EXPECT_EQ(without.classification, with.classification);
  EXPECT_GE(spans.RootCount(), 1u);
}

TEST(SupervisorTest, RewriteSpansCarryProvenanceAttributes) {
  Schema schema = MakeCompanyDatabase().schema();
  TransformationPtr t = MakeRenameSet("DIV-EMP", "STAFF");
  SpanCollector spans;
  SupervisorOptions options;
  options.spans = &spans;
  ConversionSupervisor supervisor =
      *ConversionSupervisor::Create(schema, {t.get()}, options);
  // Navigational form: lifting rewrites it, so rename-set stamps the FIND.
  PipelineOutcome outcome = *supervisor.ConvertProgram(*ParseProgram(R"(
PROGRAM P.
  FIND ANY DIV (DIV-NAME = 'MACHINERY').
  FIND FIRST EMP WITHIN DIV-EMP.
  WHILE DB-STATUS = '0000' DO
    GET EMP-NAME INTO N.
    DISPLAY N.
    FIND NEXT EMP WITHIN DIV-EMP.
  END-WHILE.
END PROGRAM.)"));
  ASSERT_TRUE(outcome.accepted);
  EXPECT_EQ(UnstampedCount(outcome.conversion.converted), 0u);
  std::string tree = spans.ToText(/*with_timing=*/false);
  EXPECT_NE(tree.find("rewrite rule=rename-set"), std::string::npos) << tree;
  EXPECT_NE(tree.find("src="), std::string::npos) << tree;
}

TEST(CorpusTest, DeterministicForSameSeed) {
  std::vector<CorpusProgram> a = GenerateCompanyCorpus(CorpusMix{}, 5);
  std::vector<CorpusProgram> b = GenerateCompanyCorpus(CorpusMix{}, 5);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].program, b[i].program);
  }
}

TEST(CorpusTest, SizedGeneratorProducesExactly) {
  std::vector<CorpusProgram> c = GenerateCompanyCorpus(100, 11);
  EXPECT_EQ(c.size(), 100u);
}

}  // namespace
}  // namespace dbpc
