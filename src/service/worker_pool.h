#ifndef DBPC_SERVICE_WORKER_POOL_H_
#define DBPC_SERVICE_WORKER_POOL_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/metrics.h"

namespace dbpc {

/// A fixed-size pool of worker threads draining a shared FIFO work queue.
/// Tasks must not throw (the conversion service wraps every fallible stage
/// in its own try/catch). The destructor drains the queue and joins.
class WorkerPool {
 public:
  /// Spawns `threads` workers (at least 1).
  explicit WorkerPool(int threads);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Enqueues a task for any idle worker.
  void Submit(std::function<void()> task);

  /// Blocks until every task submitted so far has finished executing.
  void Wait();

  int thread_count() const { return static_cast<int>(workers_.size()); }

  /// Attaches a gauge tracking how many workers are executing a task right
  /// now. The gauge must outlive the pool; null detaches.
  void SetBusyGauge(Gauge* gauge) {
    busy_gauge_.store(gauge, std::memory_order_release);
  }

 private:
  void WorkerLoop();

  std::atomic<Gauge*> busy_gauge_{nullptr};
  std::mutex mu_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  int in_flight_ = 0;  ///< queued + currently executing tasks
  bool shutting_down_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace dbpc

#endif  // DBPC_SERVICE_WORKER_POOL_H_
