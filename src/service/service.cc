#include "service/service.h"

#include <algorithm>
#include <chrono>
#include <exception>
#include <utility>

#include "common/log.h"
#include "generate/generator.h"
#include "lang/parser.h"

namespace dbpc {

namespace {

uint64_t ElapsedMicros(std::chrono::steady_clock::time_point start) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
}

/// The refused outcome a program degrades to when every attempt failed.
PipelineOutcome DegradedOutcome(const Program& program,
                                const std::string& diagnostic) {
  PipelineOutcome outcome;
  outcome.classification = Convertibility::kNotConvertible;
  outcome.accepted = false;
  outcome.conversion.outcome = Convertibility::kNotConvertible;
  outcome.conversion.converted.name = program.name;
  outcome.conversion.notes.push_back("conversion degraded to refused: " +
                                     diagnostic);
  return outcome;
}

}  // namespace

Status ServiceOptions::Validate() const {
  if (jobs <= 0) {
    return Status::InvalidArgument(
        "ServiceOptions::jobs must be >= 1 (got " + std::to_string(jobs) +
        ")");
  }
  if (deadline_ms < 0) {
    return Status::InvalidArgument(
        "ServiceOptions::deadline_ms must be >= 0 (got " +
        std::to_string(deadline_ms) + ")");
  }
  if (retries < 0) {
    return Status::InvalidArgument(
        "ServiceOptions::retries must be >= 0 (got " +
        std::to_string(retries) + ")");
  }
  DBPC_RETURN_IF_ERROR(cache.Validate());
  return supervisor.Validate();
}

ConversionService::ConversionService(ServiceOptions options)
    : options_(std::move(options)),
      pool_(std::make_unique<WorkerPool>(options_.jobs)) {}

Result<std::unique_ptr<ConversionService>> ConversionService::Create(
    Schema source, std::vector<const Transformation*> plan,
    ServiceOptions options) {
  DBPC_RETURN_IF_ERROR(options.Validate());
  std::unique_ptr<ConversionService> service(
      new ConversionService(std::move(options)));
  service->options_.supervisor.metrics = &service->metrics_;
  if (service->options_.supervisor.cache == nullptr &&
      service->options_.cache.enabled) {
    service->cache_ =
        std::make_unique<TemplateCache>(service->options_.cache);
    service->options_.supervisor.cache = service->cache_.get();
  }
  if (service->options_.supervisor.cache != nullptr) {
    // Register the cache.* counters up front so every metrics snapshot
    // shows them, traffic or not.
    for (const char* name :
         {"cache.hits", "cache.misses", "cache.evictions",
          "cache.invalidations", "cache.traced_bypass"}) {
      service->metrics_.GetCounter(name);
    }
    service->cache_entries_gauge_ =
        service->metrics_.GetGauge("cache.entries");
  }
  service->conversions_rate_ =
      service->metrics_.GetRate("service.conversions");
  service->pool_->SetBusyGauge(
      service->metrics_.GetGauge("service.workers_busy"));
  DBPC_ASSIGN_OR_RETURN(
      ConversionSupervisor supervisor,
      ConversionSupervisor::Create(std::move(source), std::move(plan),
                                   service->options_.supervisor));
  service->supervisor_ =
      std::make_unique<ConversionSupervisor>(std::move(supervisor));
  return service;
}

void ConversionService::RefreshGauges() {
  if (cache_entries_gauge_ != nullptr) {
    TemplateCache* cache = options_.supervisor.cache;
    if (cache != nullptr) {
      cache_entries_gauge_->Set(
          static_cast<int64_t>(cache->Stats().entries));
    }
  }
}

void ConversionService::InvalidateCache() {
  TemplateCache* cache = options_.supervisor.cache;
  if (cache == nullptr) return;
  size_t dropped = cache->Clear();
  if (dropped > 0) {
    metrics_.GetCounter("cache.invalidations")->Increment(dropped);
  }
}

PipelineOutcome ConversionService::RunOne(const Program& program,
                                          uint64_t sequence, int deadline_ms,
                                          SpanCollector* span_override,
                                          std::string* generated) {
  const int effective_deadline_ms =
      deadline_ms > 0 ? deadline_ms : options_.deadline_ms;
  const uint64_t deadline_us =
      static_cast<uint64_t>(effective_deadline_ms) * 1000;
  const int attempts = 1 + options_.retries;
  SpanCollector* spans =
      span_override != nullptr ? span_override : options_.supervisor.spans;
  std::string diagnostic;
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) metrics_.GetCounter("service.retries")->Increment();
    // One root span per attempt (each worker job mutates only its own
    // tree); the sequence is the program's batch index, so exports are
    // ordered identically for any worker count.
    SpanContext root;
    if (spans != nullptr) {
      root = spans->StartRoot("convert " + program.name, sequence);
      root.SetAttribute("job", std::to_string(sequence));
      if (attempt > 0) {
        root.SetAttribute("attempt", std::to_string(attempt + 1));
      }
    }
    auto start = std::chrono::steady_clock::now();
    Result<PipelineOutcome> result = [&]() -> Result<PipelineOutcome> {
      try {
        if (options_.pipeline_override) {
          return options_.pipeline_override(program);
        }
        return supervisor_->ConvertProgram(program, root);
      } catch (const std::exception& e) {
        metrics_.GetCounter("service.exceptions")->Increment();
        return Status::Internal(std::string("conversion threw: ") + e.what());
      } catch (...) {
        metrics_.GetCounter("service.exceptions")->Increment();
        return Status::Internal("conversion threw a non-standard exception");
      }
    }();
    uint64_t elapsed_us = ElapsedMicros(start);
    bool over_deadline = deadline_us > 0 && elapsed_us > deadline_us;
    if (result.ok() && !over_deadline) {
      metrics_.GetHistogram("program.total_us")->Record(elapsed_us);
      PipelineOutcome outcome = std::move(result).value();
      if (outcome.accepted) {
        // The Program Generator stage: emit target source once so its cost
        // is part of the pipeline metrics.
        SpanContext gen_span = root.StartChild("program_generator");
        Histogram::Timer timer(metrics_.GetHistogram("stage.generate_us"));
        std::string text = GenerateCplSource(outcome.conversion.converted);
        timer.Stop();
        gen_span.AddCounter("bytes", text.size());
        gen_span.End();
        metrics_.GetCounter("generator.bytes")->Increment(text.size());
        if (generated != nullptr) *generated = std::move(text);
      }
      root.End();
      return outcome;
    }
    if (over_deadline) {
      metrics_.GetCounter("service.deadline_exceeded")->Increment();
      diagnostic = "deadline of " + std::to_string(effective_deadline_ms) +
                   "ms exceeded (attempt took " +
                   std::to_string(elapsed_us / 1000) + "ms)";
    } else {
      diagnostic = result.status().ToString();
    }
    root.SetAttribute("failed", diagnostic);
    root.End();
  }
  metrics_.GetCounter("service.degraded")->Increment();
  DBPC_LOG_RATELIMITED(LogLevel::kWarn, 5.0, 10.0, "conversion_degraded",
                       LogField("program", program.name),
                       LogField("attempts", attempts),
                       LogField("diagnostic", diagnostic));
  return DegradedOutcome(
      program, diagnostic + " after " + std::to_string(attempts) +
                   (attempts == 1 ? " attempt" : " attempts"));
}

ConversionResponse ConversionService::Convert(const ConversionRequest& request,
                                              JobId id) {
  ConversionResponse response;
  response.id = id;
  response.program_name = request.name;
  auto start = std::chrono::steady_clock::now();
  Status valid = request.Validate();
  if (!valid.ok()) {
    metrics_.GetCounter("service.requests_invalid")->Increment();
    response.state = JobState::kFailed;
    response.status = std::move(valid);
    return response;
  }
  Program program;
  if (request.program.has_value()) {
    program = *request.program;
  } else {
    Result<Program> parsed = ParseProgram(request.source);
    if (!parsed.ok()) {
      metrics_.GetCounter("service.requests_invalid")->Increment();
      response.state = JobState::kFailed;
      response.status = parsed.status();
      response.latency_us = ElapsedMicros(start);
      return response;
    }
    program = std::move(parsed).value();
  }
  if (!request.name.empty()) program.name = request.name;

  // Per-request tracing uses a collector local to this job so concurrent
  // jobs never share span state; the job id is the deterministic sequence.
  SpanCollector local_spans;
  std::string generated;
  response.outcome =
      RunOne(program, id == 0 ? 1 : id, request.deadline_ms,
             request.trace ? &local_spans : nullptr, &generated);
  response.state = JobState::kDone;
  response.accepted = response.outcome.accepted;
  response.classification = response.outcome.classification;
  response.program_name = program.name;
  response.converted_source = std::move(generated);
  response.notes = response.outcome.conversion.notes;
  if (request.trace) response.trace_text = local_spans.ToText();
  response.latency_us = ElapsedMicros(start);
  metrics_.GetCounter("service.requests")->Increment();
  if (conversions_rate_ != nullptr) conversions_rate_->Tick();
  return response;
}

Result<SystemConversionReport> ConversionService::ConvertSystem(
    const std::vector<ConversionRequest>& requests) {
  // Workers fill per-request slots; the report is assembled in input order
  // afterwards, so completion order never shows in the output. Batch runs
  // trace through ServiceOptions (one collector, per-job sequences);
  // ConversionRequest::trace is a single-job (daemon) knob and is ignored
  // here so batch span forests stay byte-identical for any job count.
  std::vector<PipelineOutcome> slots(requests.size());
  auto run_request = [this](const ConversionRequest& request,
                            uint64_t sequence) -> PipelineOutcome {
    Status valid = request.Validate();
    if (!valid.ok()) {
      metrics_.GetCounter("service.requests_invalid")->Increment();
      Program named;
      named.name = request.name.empty() ? "request" : request.name;
      return DegradedOutcome(named, valid.ToString());
    }
    if (request.program.has_value()) {
      Program program = *request.program;
      if (!request.name.empty()) program.name = request.name;
      return RunOne(program, sequence, request.deadline_ms);
    }
    Result<Program> parsed = ParseProgram(request.source);
    if (!parsed.ok()) {
      metrics_.GetCounter("service.requests_invalid")->Increment();
      Program named;
      named.name = request.name.empty() ? "request" : request.name;
      return DegradedOutcome(named, parsed.status().ToString());
    }
    Program program = std::move(parsed).value();
    if (!request.name.empty()) program.name = request.name;
    return RunOne(program, sequence, request.deadline_ms);
  };
  if (options_.jobs == 1) {
    // Run on the caller's thread: jobs=1 is the reference serial mode.
    for (size_t i = 0; i < requests.size(); ++i) {
      slots[i] = run_request(requests[i], i + 1);
    }
  } else {
    for (size_t i = 0; i < requests.size(); ++i) {
      pool_->Submit([&run_request, &requests, &slots, i] {
        slots[i] = run_request(requests[i], i + 1);
      });
    }
    pool_->Wait();
  }

  SystemConversionReport report;
  for (PipelineOutcome& outcome : slots) {
    switch (outcome.classification) {
      case Convertibility::kAutomatic:
        ++report.automatic;
        metrics_.GetCounter("programs.automatic")->Increment();
        break;
      case Convertibility::kNeedsAnalyst:
        ++report.needs_analyst;
        metrics_.GetCounter("programs.needs_analyst")->Increment();
        break;
      case Convertibility::kNotConvertible:
        ++report.refused;
        metrics_.GetCounter("programs.refused")->Increment();
        break;
    }
    if (outcome.accepted) {
      ++report.accepted;
      metrics_.GetCounter("programs.accepted")->Increment();
    }
    report.outcomes.push_back(std::move(outcome));
  }
  metrics_.GetCounter("service.batches")->Increment();
  if (conversions_rate_ != nullptr) {
    conversions_rate_->Tick(static_cast<uint64_t>(requests.size()));
  }
  return report;
}

Result<SystemConversionReport> ConversionService::ConvertSystem(
    const std::vector<Program>& programs) {
  std::vector<ConversionRequest> requests;
  requests.reserve(programs.size());
  for (const Program& program : programs) {
    ConversionRequest request;
    request.program = program;
    requests.push_back(std::move(request));
  }
  return ConvertSystem(requests);
}

}  // namespace dbpc
