#ifndef DBPC_SERVICE_SERVICE_H_
#define DBPC_SERVICE_SERVICE_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "api/types.h"
#include "common/metrics.h"
#include "service/worker_pool.h"
#include "supervisor/supervisor.h"

namespace dbpc {

/// Conversion service configuration.
struct ServiceOptions {
  /// Worker threads in the pool. Must be >= 1; 1 reproduces the serial
  /// supervisor behaviour exactly.
  int jobs = 1;
  /// Per-program soft deadline in milliseconds; 0 disables. The deadline is
  /// enforced cooperatively: it is checked after each conversion attempt,
  /// so a runaway program occupies its worker until the attempt finishes,
  /// but the batch still completes and the program degrades to refused.
  int deadline_ms = 0;
  /// Extra attempts after a throw, internal error or deadline overrun
  /// before the program degrades to refused.
  int retries = 1;
  /// The Figure 4.1 pipeline configuration. `supervisor.metrics` is
  /// overwritten by the service with its own registry. An analyst policy,
  /// if set, is invoked from worker threads and must be thread-safe.
  /// `supervisor.spans`, when set, makes every job emit one span tree per
  /// attempt, rooted by the service with the program's batch index as the
  /// deterministic sequence and closed after the program_generator stage.
  SupervisorOptions supervisor;
  /// The template-level conversion memo shared by every worker
  /// (convert/template_cache.h): enabled by default, repeat-heavy traffic
  /// pays the analyze/convert/optimize pipeline once per statement
  /// template. `cache.enabled = false` (dbpcc/dbpcd --no-cache) is the
  /// no-cache fallback. Ignored when `supervisor.cache` is already set by
  /// the caller — that instance (possibly shared across services) wins.
  /// Hit/miss/eviction counters land in metrics() under cache.*.
  TemplateCacheOptions cache;
  /// Test seam: replaces ConversionSupervisor::ConvertProgram for every
  /// program when set (used to inject slow / throwing pipelines).
  std::function<Result<PipelineOutcome>(const Program&)> pipeline_override;

  /// Rejects nonsensical configurations (jobs == 0, negative deadline or
  /// retry budget, invalid supervisor options) with a structured error.
  /// Called at service entry (ConversionService::Create).
  Status Validate() const;
};

/// Batch conversion of an application system over a worker pool.
///
/// The paper frames conversion as a whole-system batch job ("a database
/// application system is converted when each program actually existing in
/// the source system has been converted"); this service runs that batch
/// concurrently while keeping the supervisor's exact per-program semantics:
///
///  - Deterministic reports: `ConvertSystem` output order matches input
///    order regardless of completion order, so a parallel run's report is
///    byte-identical to the serial one.
///  - Degradation instead of abort: a program whose conversion throws,
///    fails internally or overruns the deadline is retried
///    (`ServiceOptions::retries`) and then reported as refused with a
///    diagnostic note; the rest of the batch is unaffected.
///  - Observability: a `MetricsRegistry` accumulates per-stage latency
///    histograms (analyze / convert / optimize / generate), classification
///    counters and analyst/optimizer/degradation activity across batches,
///    snapshotable to JSON.
class ConversionService {
 public:
  /// Validates `options` and builds the pipeline. Transformations must
  /// outlive the service.
  static Result<std::unique_ptr<ConversionService>> Create(
      Schema source, std::vector<const Transformation*> plan,
      ServiceOptions options = {});

  /// Converts one request synchronously on the caller's thread and returns
  /// the full response (parse errors -> JobState::kFailed; pipeline
  /// failures degrade to refused but still JobState::kDone). Thread-safe:
  /// the daemon's workers call this concurrently. `id` is echoed into the
  /// response and doubles as the deterministic span sequence when the
  /// request asks for tracing.
  ConversionResponse Convert(const ConversionRequest& request, JobId id = 1);

  /// Converts every request of an application system on the worker pool.
  /// Never fails for per-request reasons (parse errors fail that request's
  /// response, pipeline errors degrade to refused); the Result shape is
  /// kept for future batch-level failure modes. `report.outcomes[i]`
  /// corresponds to `requests[i]`.
  Result<SystemConversionReport> ConvertSystem(
      const std::vector<ConversionRequest>& requests);

  /// Deprecated shim over the request-based ConvertSystem for callers that
  /// hold parsed programs; kept for one release (see api/dbpc.h). Wraps
  /// each program in a ConversionRequest with service-default options.
  Result<SystemConversionReport> ConvertSystem(
      const std::vector<Program>& programs);

  /// Cumulative metrics across every ConvertSystem call on this service.
  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }

  /// Brings sampled gauges (currently `cache.entries`) current. Called by
  /// metrics exporters before a snapshot; cheap and thread-safe.
  void RefreshGauges();

  /// The underlying serial pipeline (for database translation, target
  /// schema access and single-program conversion).
  const ConversionSupervisor& supervisor() const { return *supervisor_; }

  /// The worker pool. ConvertSystem batches schedule on it; the daemon
  /// submits its per-request Convert jobs to the same pool so one `jobs`
  /// knob governs pipeline concurrency everywhere.
  WorkerPool& pool() { return *pool_; }

  const ServiceOptions& options() const { return options_; }

  /// The conversion memo every worker shares; null when disabled or when
  /// the caller supplied its own via ServiceOptions::supervisor.cache.
  TemplateCache* cache() { return options_.supervisor.cache; }

  /// Drops every memoized conversion and counts the invalidation under
  /// cache.invalidations. Ordinary reconfiguration never needs this (plan,
  /// options and statistics are part of the memo key); it exists for
  /// operational cache flushes.
  void InvalidateCache();

 private:
  ConversionService(ServiceOptions options);

  /// Runs one program through the pipeline with retry + degradation;
  /// never throws. `sequence` is the program's 1-based batch index — the
  /// deterministic sort key for its span tree when tracing is on.
  /// `deadline_ms` overrides ServiceOptions::deadline_ms when > 0; `spans`
  /// overrides the supervisor's collector (per-request tracing) when
  /// non-null. When the conversion is accepted, `generated` (if non-null)
  /// receives the generated CPL source so callers don't regenerate it.
  PipelineOutcome RunOne(const Program& program, uint64_t sequence,
                         int deadline_ms = 0, SpanCollector* spans = nullptr,
                         std::string* generated = nullptr);

  ServiceOptions options_;
  MetricsRegistry metrics_;
  /// Hot-path telemetry handles, resolved once in Create().
  RollingRate* conversions_rate_ = nullptr;
  Gauge* cache_entries_gauge_ = nullptr;
  /// The service-owned conversion memo (null when disabled or external).
  std::unique_ptr<TemplateCache> cache_;
  /// unique_ptr: the supervisor is created after metrics_ so its options
  /// can point at the registry.
  std::unique_ptr<ConversionSupervisor> supervisor_;
  std::unique_ptr<WorkerPool> pool_;
};

}  // namespace dbpc

#endif  // DBPC_SERVICE_SERVICE_H_
