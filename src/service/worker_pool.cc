#include "service/worker_pool.h"

#include <algorithm>
#include <utility>

namespace dbpc {

WorkerPool::WorkerPool(int threads) {
  threads = std::max(threads, 1);
  workers_.reserve(static_cast<size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

WorkerPool::~WorkerPool() {
  Wait();
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void WorkerPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_available_.notify_one();
}

void WorkerPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void WorkerPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(
          lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutting down
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    Gauge* busy = busy_gauge_.load(std::memory_order_acquire);
    if (busy) busy->Add(1);
    task();
    if (busy) busy->Sub(1);
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--in_flight_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace dbpc
