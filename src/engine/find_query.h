#ifndef DBPC_ENGINE_FIND_QUERY_H_
#define DBPC_ENGINE_FIND_QUERY_H_

#include <optional>
#include <string>
#include <vector>

#include "common/lexer.h"
#include "engine/database.h"
#include "engine/predicate.h"

namespace dbpc {

/// One element of a FIND access path: a set to traverse (owner -> ordered
/// members), a record type to confirm/filter, or a value join to an
/// unassociated record type (Su's second access pattern, "ACCESS A via B
/// through (Ai, Bj)"). Until a path is resolved against a schema the kind
/// of a plain name is unknown, since set and record names share one
/// identifier space in the DML text.
struct PathStep {
  enum class Kind { kUnresolved, kSet, kRecord, kJoin };
  Kind kind = Kind::kUnresolved;
  std::string name;
  /// Qualification in parentheses after a record name / join.
  std::optional<Predicate> qualification;
  /// kJoin only: JOIN <name> THROUGH (<join_target_field>,
  /// <join_source_field>) — target field on the joined type `name`,
  /// source field on the records flowing in.
  std::string join_target_field;
  std::string join_source_field;

  /// Factory for a plain (set/record/unresolved) step.
  static PathStep Make(Kind kind, std::string name,
                       std::optional<Predicate> qualification = {}) {
    PathStep step;
    step.kind = kind;
    step.name = std::move(name);
    step.qualification = std::move(qualification);
    return step;
  }

  bool operator==(const PathStep& other) const;

  std::string ToString() const;
};

/// The Maryland FIND statement of paper section 4.2:
///
///   FIND(EMP: SYSTEM, ALL-DIV, DIV(DIV-NAME = 'MACHINERY'),
///        DIV-EMP, EMP(DEPT-NAME = 'SALES'))
///
/// The access path begins at SYSTEM (through a system-owned set) or at a
/// previously retrieved collection held in a host variable, and is extended
/// by set/record name pairs; record names may carry boolean qualifications.
struct FindQuery {
  std::string target_type;
  /// "SYSTEM" or the (upper-cased) name of a host collection variable.
  std::string start = "SYSTEM";
  std::vector<PathStep> steps;

  bool starts_at_system() const { return start == "SYSTEM"; }

  bool operator==(const FindQuery&) const = default;

  /// Renders the canonical DML text (always with FIND(...) syntax).
  std::string ToString() const;
};

/// A retrieval expression: a FIND optionally wrapped in SORT ... ON (...),
/// the form the paper uses to preserve order dependence across conversion:
///   SORT(FIND(...)) ON (EMP-NAME)
struct Retrieval {
  FindQuery query;
  std::vector<std::string> sort_on;

  bool operator==(const Retrieval&) const = default;

  std::string ToString() const;
};

/// Assigns set/record kinds to every step and checks the path is
/// well-formed against `schema`:
///  - names resolve to exactly one of set / record type;
///  - a SYSTEM start opens with a system-owned set;
///  - each set's owner type matches the preceding record context;
///  - each record step matches the member type of the preceding set;
///  - the final record type equals `target_type`.
Status ResolveFindQuery(const Schema& schema, FindQuery* query);

/// Resolves host collection variables (prior FIND results) by name.
using CollectionEnv =
    std::function<Result<std::vector<RecordId>>(const std::string&)>;

/// Returns an environment that fails on every lookup.
CollectionEnv EmptyCollectionEnv();

/// Evaluates a resolved FIND against a database. Results preserve set
/// ordering (members are visited in occurrence order), which is what makes
/// order-dependent programs sensitive to ChangeSetOrder restructurings.
Result<std::vector<RecordId>> EvaluateFind(const Database& db,
                                           const FindQuery& query,
                                           const HostEnv& host_env,
                                           const CollectionEnv& collections);

/// Stable-sorts `ids` ascending by the given fields (virtual fields are
/// resolved). Implements the SORT ... ON (...) wrapper.
Result<std::vector<RecordId>> SortRecords(const Database& db,
                                          std::vector<RecordId> ids,
                                          const std::vector<std::string>& on);

/// Evaluates a full retrieval (FIND plus optional SORT).
Result<std::vector<RecordId>> EvaluateRetrieval(const Database& db,
                                                const Retrieval& retrieval,
                                                const HostEnv& host_env,
                                                const CollectionEnv& collections);

/// Parses a record qualification, e.g. "AGE > 30 AND DIV-NAME = :D".
/// Exposed for reuse by the CPL parser.
Result<Predicate> ParsePredicate(TokenCursor* cur);

/// Parses "FIND(TARGET: START, step, ...)" starting at the FIND keyword.
Result<FindQuery> ParseFindQuery(TokenCursor* cur);

/// Parses a retrieval: FIND(...) or SORT(FIND(...)) ON (fields).
Result<Retrieval> ParseRetrieval(TokenCursor* cur);

/// Convenience wrappers over whole strings.
Result<FindQuery> ParseFindQuery(const std::string& text);
Result<Retrieval> ParseRetrieval(const std::string& text);

}  // namespace dbpc

#endif  // DBPC_ENGINE_FIND_QUERY_H_
