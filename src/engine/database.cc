#include "engine/database.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/string_util.h"

namespace dbpc {

Result<Database> Database::Create(Schema schema) {
  DBPC_RETURN_IF_ERROR(schema.Validate());
  Database db(std::move(schema));
  db.RegisterAutoIndexes();
  return db;
}

namespace {

/// Canonicalizes field map keys to upper case so lookups are uniform.
FieldMap CanonicalFields(const FieldMap& in) {
  FieldMap out;
  for (const auto& [name, value] : in) {
    out[ToUpper(name)] = value;
  }
  return out;
}

constexpr char kIndexKeySep = '\x1f';

/// Distinct int64 values at or beyond 2^53 can collapse under
/// QueryCompare's double comparison while keeping distinct decimal
/// renderings, so text keys stop capturing query equality there.
constexpr int64_t kIntExactLimit = int64_t{1} << 53;

std::string FieldIndexKey(const std::string& type_upper,
                          const std::string& field_upper) {
  return type_upper + kIndexKeySep + field_upper;
}

/// Key under which a stored value is bucketed, or nullopt when the value
/// breaks the index (NaN, or a dynamic type contradicting the declared
/// field class); callers count those as unusable. Nulls never reach here.
std::optional<std::string> StoredIndexKey(bool numeric, const Value& v) {
  if (numeric) {
    if (v.is_int()) return QueryNumericKey(static_cast<double>(v.as_int()));
    if (v.is_double() && !std::isnan(v.as_double())) {
      return QueryNumericKey(v.as_double());
    }
    return std::nullopt;
  }
  if (v.is_string()) return v.as_string();
  return std::nullopt;
}

/// True when a stored value keeps the uniqueness index's display-form keys
/// faithful to QueryCompare equality for its declared field type.
bool UniqueProbeUsable(FieldType type, const Value& v) {
  switch (type) {
    case FieldType::kInt:
      return v.is_int() && v.as_int() < kIntExactLimit &&
             v.as_int() > -kIntExactLimit;
    case FieldType::kDouble:
      return v.is_double() && !std::isnan(v.as_double());
    case FieldType::kString:
      return v.is_string();
  }
  return false;
}

void SortedInsert(std::vector<RecordId>* ids, RecordId id) {
  auto pos = std::lower_bound(ids->begin(), ids->end(), id);
  if (pos == ids->end() || *pos != id) ids->insert(pos, id);
}

void SortedErase(std::vector<RecordId>* ids, RecordId id) {
  auto pos = std::lower_bound(ids->begin(), ids->end(), id);
  if (pos != ids->end() && *pos == id) ids->erase(pos);
}

}  // namespace

void Database::RegisterAutoIndexes() {
  // Uniqueness probe paths first: a single-field uniqueness constraint
  // already maintains unique_index_, so its field gets no duplicate
  // secondary index.
  for (const ConstraintDef& c : schema_.constraints()) {
    if (c.kind != ConstraintKind::kUniqueness || c.fields.size() != 1) {
      continue;
    }
    const RecordTypeDef* type = schema_.FindRecordType(c.record);
    if (type == nullptr) continue;
    const FieldDef* f = type->FindField(c.fields[0]);
    if (f == nullptr || f->is_virtual) continue;
    UniqueProbe probe;
    probe.constraint = c.name;
    probe.type = f->type;
    unique_probes_.emplace(
        FieldIndexKey(ToUpper(type->name), ToUpper(f->name)),
        std::move(probe));
  }
  auto register_secondary = [this](const RecordTypeDef& type,
                                   const std::string& field) {
    const FieldDef* f = type.FindField(field);
    if (f == nullptr || f->is_virtual) return;
    std::string key = FieldIndexKey(ToUpper(type.name), ToUpper(f->name));
    if (unique_probes_.count(key) > 0) return;
    field_indexes_[key].numeric = f->type != FieldType::kString;
  };
  // Set key fields: SortedPosition and sorted-set queries select on them.
  for (const SetDef& set : schema_.sets()) {
    const RecordTypeDef* member = schema_.FindRecordType(set.member);
    if (member == nullptr) continue;
    for (const std::string& key : set.keys) {
      register_secondary(*member, key);
    }
  }
  // Components of multi-field uniqueness keys are selective on their own.
  for (const ConstraintDef& c : schema_.constraints()) {
    if (c.kind != ConstraintKind::kUniqueness || c.fields.size() < 2) {
      continue;
    }
    const RecordTypeDef* type = schema_.FindRecordType(c.record);
    if (type == nullptr) continue;
    for (const std::string& f : c.fields) {
      register_secondary(*type, f);
    }
  }
}

void Database::IndexInsert(const StoredRecord& rec) {
  std::string prefix = ToUpper(rec.type) + kIndexKeySep;
  for (auto it = field_indexes_.lower_bound(prefix);
       it != field_indexes_.end() &&
       it->first.compare(0, prefix.size(), prefix) == 0;
       ++it) {
    auto fit = rec.fields.find(it->first.substr(prefix.size()));
    if (fit == rec.fields.end() || fit->second.is_null()) continue;
    std::optional<std::string> key =
        StoredIndexKey(it->second.numeric, fit->second);
    if (!key.has_value()) {
      ++it->second.unusable;
      continue;
    }
    SortedInsert(&it->second.buckets[*key], rec.id);
  }
  for (auto it = unique_probes_.lower_bound(prefix);
       it != unique_probes_.end() &&
       it->first.compare(0, prefix.size(), prefix) == 0;
       ++it) {
    auto fit = rec.fields.find(it->first.substr(prefix.size()));
    if (fit == rec.fields.end() || fit->second.is_null()) continue;
    if (!UniqueProbeUsable(it->second.type, fit->second)) {
      ++it->second.unusable;
    }
  }
}

void Database::IndexRemove(const StoredRecord& rec) {
  std::string prefix = ToUpper(rec.type) + kIndexKeySep;
  for (auto it = field_indexes_.lower_bound(prefix);
       it != field_indexes_.end() &&
       it->first.compare(0, prefix.size(), prefix) == 0;
       ++it) {
    auto fit = rec.fields.find(it->first.substr(prefix.size()));
    if (fit == rec.fields.end() || fit->second.is_null()) continue;
    std::optional<std::string> key =
        StoredIndexKey(it->second.numeric, fit->second);
    if (!key.has_value()) {
      if (it->second.unusable > 0) --it->second.unusable;
      continue;
    }
    auto bucket = it->second.buckets.find(*key);
    if (bucket == it->second.buckets.end()) continue;
    SortedErase(&bucket->second, rec.id);
    if (bucket->second.empty()) it->second.buckets.erase(bucket);
  }
  for (auto it = unique_probes_.lower_bound(prefix);
       it != unique_probes_.end() &&
       it->first.compare(0, prefix.size(), prefix) == 0;
       ++it) {
    auto fit = rec.fields.find(it->first.substr(prefix.size()));
    if (fit == rec.fields.end() || fit->second.is_null()) continue;
    if (!UniqueProbeUsable(it->second.type, fit->second) &&
        it->second.unusable > 0) {
      --it->second.unusable;
    }
  }
}

Database::FieldIndex* Database::FindFieldIndex(
    const std::string& type_upper, const std::string& field_upper) const {
  auto it = field_indexes_.find(FieldIndexKey(type_upper, field_upper));
  return it == field_indexes_.end() ? nullptr : &it->second;
}

std::optional<std::string> Database::ProbeKey(const FieldIndex& index,
                                              const Value& value) {
  if (index.numeric) {
    // Native numbers and fully numeric strings compare numerically against
    // a numeric field; anything else would compare as display text, which
    // key equality does not model.
    std::optional<double> n = QueryNumeric(value);
    if (!n.has_value() || std::isnan(*n)) return std::nullopt;
    return QueryNumericKey(*n);
  }
  // A native-number probe compares numerically against parseable stored
  // strings ("05" = 5), which spans buckets; only text probes are exact.
  if (value.is_string()) return value.as_string();
  return std::nullopt;
}

std::optional<std::vector<RecordId>> Database::ProbeIndex(
    const std::string& type, const std::string& field,
    const Value& value) const {
  if (!index_options_.enabled) return std::nullopt;
  FieldIndex* index = FindFieldIndex(ToUpper(type), ToUpper(field));
  if (index == nullptr || index->unusable > 0) return std::nullopt;
  if (value.is_null()) {
    // Null equals nothing under query semantics.
    ++stats_.index_probes;
    return std::vector<RecordId>();
  }
  std::optional<std::string> key = ProbeKey(*index, value);
  if (!key.has_value()) return std::nullopt;
  ++stats_.index_probes;
  auto bucket = index->buckets.find(*key);
  if (bucket == index->buckets.end()) return std::vector<RecordId>();
  stats_.index_hits += bucket->second.size();
  return bucket->second;
}

std::optional<std::vector<RecordId>> Database::ProbeUnique(
    const UniqueProbe& probe, const Value& value) const {
  if (probe.unusable > 0) return std::nullopt;
  if (value.is_null()) {
    ++stats_.index_probes;
    return std::vector<RecordId>();
  }
  // Numeric probes against a string field match numerically against
  // parseable stored strings; the text key cannot model that.
  if (probe.type == FieldType::kString && !value.is_string()) {
    return std::nullopt;
  }
  Result<Value> coerced = value.CoerceTo(probe.type);
  if (!coerced.ok()) return std::nullopt;
  if (probe.type == FieldType::kDouble && std::isnan(coerced->as_double())) {
    return std::nullopt;
  }
  if (probe.type == FieldType::kInt &&
      (coerced->as_int() >= kIntExactLimit ||
       coerced->as_int() <= -kIntExactLimit)) {
    return std::nullopt;
  }
  ++stats_.index_probes;
  auto index = unique_index_.find(probe.constraint);
  if (index == unique_index_.end()) return std::vector<RecordId>();
  auto hit = index->second.find(coerced->ToLiteral() + "\x1f");
  if (hit == index->second.end()) return std::vector<RecordId>();
  ++stats_.index_hits;
  return std::vector<RecordId>{hit->second};
}

std::optional<std::vector<RecordId>> Database::ProbeCandidates(
    const std::string& type, const std::string& field,
    const Value& value) const {
  if (!index_options_.enabled) return std::nullopt;
  auto probe = unique_probes_.find(
      FieldIndexKey(ToUpper(type), ToUpper(field)));
  if (probe != unique_probes_.end()) {
    std::optional<std::vector<RecordId>> out =
        ProbeUnique(probe->second, value);
    if (out.has_value()) return out;
  }
  return ProbeIndex(type, field, value);
}

bool Database::EnsureFieldIndex(const std::string& type,
                                const std::string& field) const {
  if (!index_options_.enabled) return false;
  std::string type_upper = ToUpper(type);
  std::string field_upper = ToUpper(field);
  if (FindFieldIndex(type_upper, field_upper) != nullptr) return true;
  if (!index_options_.auto_join_indexes) return false;
  const RecordTypeDef* tdef = schema_.FindRecordType(type_upper);
  if (tdef == nullptr) return false;
  const FieldDef* f = tdef->FindField(field_upper);
  if (f == nullptr || f->is_virtual) return false;
  FieldIndex& index =
      field_indexes_[FieldIndexKey(type_upper, field_upper)];
  index.numeric = f->type != FieldType::kString;
  for (RecordId id : store_.OfType(type_upper)) {
    const StoredRecord* rec = store_.Get(id);
    auto fit = rec->fields.find(field_upper);
    if (fit == rec->fields.end() || fit->second.is_null()) continue;
    std::optional<std::string> key =
        StoredIndexKey(index.numeric, fit->second);
    if (!key.has_value()) {
      ++index.unusable;
      continue;
    }
    // OfType is ascending, so appending keeps buckets sorted.
    index.buckets[*key].push_back(id);
  }
  return true;
}

std::vector<std::pair<std::string, std::string>> Database::IndexedFields()
    const {
  std::vector<std::pair<std::string, std::string>> out;
  if (!index_options_.enabled) return out;  // probes would refuse anyway
  auto split = [&out](const std::string& key) {
    size_t sep = key.find(kIndexKeySep);
    out.emplace_back(key.substr(0, sep), key.substr(sep + 1));
  };
  for (const auto& [key, index] : field_indexes_) {
    if (index.unusable == 0) split(key);
  }
  for (const auto& [key, probe] : unique_probes_) {
    if (probe.unusable == 0) split(key);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

void Database::RebuildIndexes() {
  unique_index_.clear();
  for (auto& [key, index] : field_indexes_) {
    index.buckets.clear();
    index.unusable = 0;
  }
  for (auto& [key, probe] : unique_probes_) {
    probe.unusable = 0;
  }
  // Fast path: when every live record carries its canonical (upper-case
  // schema) type string — true for anything StoreRecord or BulkLoad ever
  // inserted — rebuild type by type from the ascending id directories,
  // with the per-type index, probe, and constraint lookups hoisted out of
  // the record loop. Appending to buckets in directory order keeps them
  // sorted without per-record insertion sorts.
  size_t covered = 0;
  for (const RecordTypeDef& type : schema_.record_types()) {
    covered += store_.OfType(ToUpper(type.name)).size();
  }
  if (covered == store_.LiveCount()) {
    for (const RecordTypeDef& type : schema_.record_types()) {
      const std::string type_upper = ToUpper(type.name);
      const std::string prefix = type_upper + kIndexKeySep;
      struct SecondaryTarget {
        std::string field;
        FieldIndex* index;
      };
      std::vector<SecondaryTarget> secondary;
      for (auto it = field_indexes_.lower_bound(prefix);
           it != field_indexes_.end() &&
           it->first.compare(0, prefix.size(), prefix) == 0;
           ++it) {
        secondary.push_back({it->first.substr(prefix.size()), &it->second});
      }
      struct ProbeTarget {
        std::string field;
        UniqueProbe* probe;
      };
      std::vector<ProbeTarget> probes;
      for (auto it = unique_probes_.lower_bound(prefix);
           it != unique_probes_.end() &&
           it->first.compare(0, prefix.size(), prefix) == 0;
           ++it) {
        probes.push_back({it->first.substr(prefix.size()), &it->second});
      }
      std::vector<const ConstraintDef*> uniques;
      for (const ConstraintDef& c : schema_.constraints()) {
        if (c.kind == ConstraintKind::kUniqueness &&
            EqualsIgnoreCase(c.record, type.name)) {
          uniques.push_back(&c);
        }
      }
      if (secondary.empty() && probes.empty() && uniques.empty()) continue;
      for (RecordId id : store_.OfType(type_upper)) {
        const StoredRecord* rec = store_.Get(id);
        for (auto& target : secondary) {
          auto fit = rec->fields.find(target.field);
          if (fit == rec->fields.end() || fit->second.is_null()) continue;
          std::optional<std::string> key =
              StoredIndexKey(target.index->numeric, fit->second);
          if (!key.has_value()) {
            ++target.index->unusable;
            continue;
          }
          target.index->buckets[*key].push_back(id);
        }
        for (auto& target : probes) {
          auto fit = rec->fields.find(target.field);
          if (fit == rec->fields.end() || fit->second.is_null()) continue;
          if (!UniqueProbeUsable(target.probe->type, fit->second)) {
            ++target.probe->unusable;
          }
        }
        for (const ConstraintDef* c : uniques) {
          Result<std::optional<std::string>> key =
              UniqueKeyOf(*c, rec->fields);
          if (key.ok() && (*key).has_value()) {
            unique_index_[c->name][**key] = id;
          }
        }
      }
    }
    return;
  }
  // Legacy path for stores holding oddly-cased or unknown type strings
  // (only reachable through mutable_store()): the original global walk.
  for (RecordId id : store_.AllRecords()) {
    const StoredRecord* rec = store_.Get(id);
    IndexInsert(*rec);
    for (const ConstraintDef& c : schema_.constraints()) {
      if (c.kind != ConstraintKind::kUniqueness ||
          !EqualsIgnoreCase(c.record, rec->type)) {
        continue;
      }
      Result<std::optional<std::string>> key = UniqueKeyOf(c, rec->fields);
      if (key.ok() && (*key).has_value()) {
        unique_index_[c.name][**key] = id;
      }
    }
  }
}

Result<ExtentTable> Database::SnapshotExtents(const std::string& type) const {
  const RecordTypeDef* def = schema_.FindRecordType(type);
  if (def == nullptr) {
    return Status::NotFound("record type " + type);
  }
  std::vector<std::string> names;
  std::vector<FieldType> types;
  names.reserve(def->fields.size());
  types.reserve(def->fields.size());
  for (const FieldDef& f : def->fields) {
    if (f.is_virtual) continue;
    names.push_back(ToUpper(f.name));
    types.push_back(f.type);
  }
  // A raw-store scan, not navigational access: no OpStats accounting, so
  // diagnostic consumers (statistics collection, fingerprints) can snapshot
  // without disturbing the counters a program run is being measured by.
  return ExtentTable::FromStore(store_, ToUpper(def->name), std::move(names),
                                std::move(types));
}

Result<std::vector<RecordId>> Database::BulkLoad(const ExtentTable& table) {
  const RecordTypeDef* def = schema_.FindRecordType(table.type());
  if (def == nullptr) {
    return Status::NotFound("record type " + table.type());
  }
  for (const std::string& name : table.field_names()) {
    const FieldDef* f = def->FindField(name);
    if (f == nullptr) {
      return Status::InvalidArgument("record type " + def->name +
                                     " has no field " + name);
    }
    if (f->is_virtual) {
      return Status::InvalidArgument("cannot bulk-load virtual field " +
                                     def->name + "." + f->name);
    }
  }
  const std::string type_upper = ToUpper(def->name);
  // Column positions sorted by field name: each row's FieldMap is then
  // built with end-position emplace_hints, linear in the column count.
  std::vector<size_t> order(table.columns());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&table](size_t a, size_t b) {
    return table.field_names()[a] < table.field_names()[b];
  });
  std::vector<RecordId> ids;
  ids.reserve(table.rows());
  table.Scan([&](const Extent& extent, size_t) {
    for (size_t r = 0; r < extent.rows(); ++r) {
      FieldMap fields;
      for (size_t c : order) {
        fields.emplace_hint(fields.end(), table.field_names()[c],
                            extent.column(c).At(r));
      }
      ids.push_back(store_.Insert(type_upper, std::move(fields)));
    }
  });
  RebuildIndexes();
  return ids;
}

Result<std::optional<std::string>> Database::UniqueKeyOf(
    const ConstraintDef& c, const FieldMap& fields) const {
  std::string key;
  for (const std::string& f : c.fields) {
    auto it = fields.find(ToUpper(f));
    if (it == fields.end() || it->second.is_null()) {
      // Null key components exempt the record from uniqueness, the
      // standard interpretation for partial keys.
      return std::optional<std::string>();
    }
    key += it->second.ToLiteral();
    key += "\x1f";
  }
  return std::optional<std::string>(std::move(key));
}

Result<RecordId> Database::StoreRecord(const StoreRequest& request) {
  const RecordTypeDef* type = schema_.FindRecordType(request.type);
  if (type == nullptr) {
    return Status::NotFound("record type " + request.type);
  }
  FieldMap incoming = CanonicalFields(request.fields);
  FieldMap fields;
  for (const FieldDef& f : type->fields) {
    std::string fname = ToUpper(f.name);
    auto it = incoming.find(fname);
    if (f.is_virtual) {
      if (it != incoming.end()) {
        return Status::InvalidArgument("cannot store virtual field " +
                                       type->name + "." + f.name);
      }
      continue;
    }
    if (it == incoming.end()) {
      fields[fname] = f.default_value;
      continue;
    }
    DBPC_ASSIGN_OR_RETURN(Value coerced, it->second.CoerceTo(f.type));
    fields[fname] = std::move(coerced);
    incoming.erase(it);
  }
  if (!incoming.empty()) {
    return Status::InvalidArgument("unknown field " + incoming.begin()->first +
                                   " for record type " + type->name);
  }

  // Plan connections before touching storage.
  struct PlannedLink {
    const SetDef* set;
    RecordId owner;
  };
  std::vector<PlannedLink> links;
  std::map<std::string, RecordId> requested;
  for (const auto& [set_name, owner] : request.connect) {
    requested[ToUpper(set_name)] = owner;
  }
  for (const SetDef* set : schema_.SetsWithMember(type->name)) {
    std::string sname = ToUpper(set->name);
    auto it = requested.find(sname);
    if (set->system_owned()) {
      // Every record of the member type belongs to the singular occurrence.
      links.push_back({set, kSystemOwner});
      if (it != requested.end()) requested.erase(it);
      continue;
    }
    if (it != requested.end()) {
      RecordId owner = it->second;
      const StoredRecord* owner_rec = store_.Get(owner);
      if (owner_rec == nullptr) {
        return Status::NotFound("owner record " + std::to_string(owner) +
                                " for set " + set->name);
      }
      if (!EqualsIgnoreCase(owner_rec->type, set->owner)) {
        return Status::TypeError("record " + std::to_string(owner) +
                                 " is a " + owner_rec->type + ", not a " +
                                 set->owner + " (owner of " + set->name + ")");
      }
      links.push_back({set, owner});
      requested.erase(it);
      continue;
    }
    bool must_connect = set->insertion == InsertionClass::kAutomatic;
    for (const ConstraintDef& c : schema_.constraints()) {
      if (c.kind == ConstraintKind::kExistence &&
          EqualsIgnoreCase(c.set_name, set->name)) {
        must_connect = true;
      }
    }
    if (must_connect) {
      return Status::ConstraintViolation(
          "record type " + type->name + " is an AUTOMATIC member of set " +
          set->name + " but no owner was supplied");
    }
  }
  if (!requested.empty()) {
    return Status::InvalidArgument("record type " + type->name +
                                   " is not a member of set " +
                                   requested.begin()->first);
  }

  // Field-level constraints.
  for (const ConstraintDef& c : schema_.constraints()) {
    if (c.kind == ConstraintKind::kNonNull &&
        EqualsIgnoreCase(c.record, type->name)) {
      for (const std::string& f : c.fields) {
        auto it = fields.find(ToUpper(f));
        if (it == fields.end() || it->second.is_null()) {
          return Status::ConstraintViolation("field " + type->name + "." + f +
                                             " may not be null (" + c.name +
                                             ")");
        }
      }
    }
    if (c.kind == ConstraintKind::kUniqueness &&
        EqualsIgnoreCase(c.record, type->name)) {
      DBPC_ASSIGN_OR_RETURN(std::optional<std::string> key,
                            UniqueKeyOf(c, fields));
      if (key.has_value() && unique_index_[c.name].count(*key) > 0) {
        return Status::ConstraintViolation("duplicate key for " + c.name +
                                           " on " + type->name);
      }
    }
    if (c.kind == ConstraintKind::kCardinalityLimit) {
      const SetDef* set = schema_.FindSet(c.set_name);
      for (const PlannedLink& link : links) {
        if (link.set == set) {
          DBPC_RETURN_IF_ERROR(
              CheckCardinality(c, *set, link.owner, fields, /*exclude=*/0));
        }
      }
    }
  }

  RecordId id = store_.Insert(ToUpper(type->name), std::move(fields));
  ++stats_.records_written;
  for (const PlannedLink& link : links) {
    Status s = ConnectInternal(*link.set, id, link.owner);
    if (!s.ok()) {
      // Roll back: unlink what was linked, drop the record.
      for (const PlannedLink& done : links) {
        if (done.set == link.set) break;
        (void)store_.Unlink(ToUpper(done.set->name), id);
      }
      (void)store_.Remove(id);
      return s;
    }
  }
  // Maintain indexes only after full success.
  const StoredRecord* rec = store_.Get(id);
  for (const ConstraintDef& c : schema_.constraints()) {
    if (c.kind == ConstraintKind::kUniqueness &&
        EqualsIgnoreCase(c.record, type->name)) {
      DBPC_ASSIGN_OR_RETURN(std::optional<std::string> key,
                            UniqueKeyOf(c, rec->fields));
      if (key.has_value()) unique_index_[c.name][*key] = id;
    }
  }
  IndexInsert(*rec);
  return id;
}

int Database::CompareByKeys(const SetDef& set, RecordId a, RecordId b) const {
  const StoredRecord* ra = store_.Get(a);
  const StoredRecord* rb = store_.Get(b);
  stats_.records_read += 2;
  for (const std::string& key : set.keys) {
    std::string k = ToUpper(key);
    auto ia = ra->fields.find(k);
    auto ib = rb->fields.find(k);
    Value va = ia == ra->fields.end() ? Value() : ia->second;
    Value vb = ib == rb->fields.end() ? Value() : ib->second;
    int cmp = va.Compare(vb);
    if (cmp != 0) return cmp;
  }
  return 0;
}

Result<size_t> Database::SortedPosition(const SetDef& set, RecordId owner,
                                        RecordId member) const {
  const std::vector<RecordId>& members =
      store_.Members(ToUpper(set.name), owner);
  if (set.ordering == SetOrdering::kChronological) return members.size();
  size_t pos = 0;
  for (RecordId existing : members) {
    ++stats_.members_scanned;
    int cmp = CompareByKeys(set, existing, member);
    if (cmp == 0) {
      return Status::ConstraintViolation(
          "duplicate set key in occurrence of " + set.name);
    }
    if (cmp > 0) break;
    ++pos;
  }
  return pos;
}

Status Database::CheckCardinality(const ConstraintDef& c, const SetDef& set,
                                  RecordId owner,
                                  const FieldMap& new_member_fields,
                                  RecordId exclude_member) const {
  const std::vector<RecordId>& members =
      store_.Members(ToUpper(set.name), owner);
  int64_t count = 0;
  if (c.group_field.empty()) {
    count = static_cast<int64_t>(members.size());
    if (exclude_member != 0) {
      for (RecordId m : members) {
        if (m == exclude_member) {
          --count;
          break;
        }
      }
    }
  } else {
    std::string gf = ToUpper(c.group_field);
    auto it = new_member_fields.find(gf);
    Value group = it == new_member_fields.end() ? Value() : it->second;
    for (RecordId m : members) {
      if (m == exclude_member) continue;
      ++stats_.members_scanned;
      const StoredRecord* rec = store_.Get(m);
      auto mit = rec->fields.find(gf);
      Value mv = mit == rec->fields.end() ? Value() : mit->second;
      if (mv == group) ++count;
    }
  }
  if (count + 1 > c.limit) {
    return Status::ConstraintViolation(
        "cardinality limit " + std::to_string(c.limit) + " of " + c.name +
        " on set " + set.name + " exceeded");
  }
  return Status::OK();
}

Status Database::ConnectInternal(const SetDef& set, RecordId member,
                                 RecordId owner) {
  DBPC_ASSIGN_OR_RETURN(size_t pos, SortedPosition(set, owner, member));
  DBPC_RETURN_IF_ERROR(store_.Link(ToUpper(set.name), owner, member, pos));
  ++stats_.links_changed;
  return Status::OK();
}

Status Database::EraseRecord(RecordId id) {
  const StoredRecord* rec = store_.Get(id);
  if (rec == nullptr) {
    return Status::NotFound("record " + std::to_string(id));
  }
  std::string type = rec->type;
  // Owned members: cascade, disconnect, or refuse.
  for (const SetDef* set : schema_.SetsOwnedBy(type)) {
    std::vector<RecordId> members = store_.Members(ToUpper(set->name), id);
    if (members.empty()) continue;
    if (set->member_characterizes_owner) {
      for (RecordId m : members) {
        DBPC_RETURN_IF_ERROR(EraseRecord(m));
      }
      continue;
    }
    if (set->retention == RetentionClass::kMandatory) {
      return Status::ConstraintViolation(
          "record owns MANDATORY members in set " + set->name);
    }
    for (RecordId m : members) {
      DBPC_RETURN_IF_ERROR(store_.Unlink(ToUpper(set->name), m));
      ++stats_.links_changed;
    }
  }
  // Remove from sets where this record is a member.
  for (const SetDef* set : schema_.SetsWithMember(type)) {
    if (store_.IsMember(ToUpper(set->name), id)) {
      DBPC_RETURN_IF_ERROR(store_.Unlink(ToUpper(set->name), id));
      ++stats_.links_changed;
    }
  }
  // Drop index entries.
  const StoredRecord* current = store_.Get(id);
  for (const ConstraintDef& c : schema_.constraints()) {
    if (c.kind == ConstraintKind::kUniqueness &&
        EqualsIgnoreCase(c.record, type)) {
      DBPC_ASSIGN_OR_RETURN(std::optional<std::string> key,
                            UniqueKeyOf(c, current->fields));
      if (key.has_value()) unique_index_[c.name].erase(*key);
    }
  }
  IndexRemove(*current);
  DBPC_RETURN_IF_ERROR(store_.Remove(id));
  ++stats_.records_erased;
  return Status::OK();
}

Status Database::ModifyRecord(RecordId id, const FieldMap& updates) {
  StoredRecord* rec = store_.GetMutable(id);
  if (rec == nullptr) {
    return Status::NotFound("record " + std::to_string(id));
  }
  const RecordTypeDef* type = schema_.FindRecordType(rec->type);
  FieldMap canonical = CanonicalFields(updates);
  FieldMap next = rec->fields;
  for (const auto& [name, value] : canonical) {
    const FieldDef* f = type->FindField(name);
    if (f == nullptr) {
      return Status::NotFound("field " + rec->type + "." + name);
    }
    if (f->is_virtual) {
      return Status::InvalidArgument("cannot modify virtual field " +
                                     rec->type + "." + name);
    }
    DBPC_ASSIGN_OR_RETURN(Value coerced, value.CoerceTo(f->type));
    next[name] = std::move(coerced);
  }

  // Field constraints against the post-image.
  for (const ConstraintDef& c : schema_.constraints()) {
    if (c.kind == ConstraintKind::kNonNull &&
        EqualsIgnoreCase(c.record, rec->type)) {
      for (const std::string& f : c.fields) {
        auto it = next.find(ToUpper(f));
        if (it == next.end() || it->second.is_null()) {
          return Status::ConstraintViolation("field " + rec->type + "." + f +
                                             " may not be null (" + c.name +
                                             ")");
        }
      }
    }
    if (c.kind == ConstraintKind::kUniqueness &&
        EqualsIgnoreCase(c.record, rec->type)) {
      DBPC_ASSIGN_OR_RETURN(std::optional<std::string> old_key,
                            UniqueKeyOf(c, rec->fields));
      DBPC_ASSIGN_OR_RETURN(std::optional<std::string> new_key,
                            UniqueKeyOf(c, next));
      if (new_key.has_value() && new_key != old_key) {
        auto& index = unique_index_[c.name];
        auto hit = index.find(*new_key);
        if (hit != index.end() && hit->second != id) {
          return Status::ConstraintViolation("duplicate key for " + c.name +
                                             " on " + rec->type);
        }
      }
    }
    if (c.kind == ConstraintKind::kCardinalityLimit &&
        !c.group_field.empty()) {
      const SetDef* set = schema_.FindSet(c.set_name);
      if (set != nullptr && EqualsIgnoreCase(set->member, rec->type)) {
        std::string gf = ToUpper(c.group_field);
        auto changed = canonical.find(gf);
        if (changed != canonical.end()) {
          RecordId owner = store_.OwnerOf(ToUpper(set->name), id);
          if (owner != 0) {
            DBPC_RETURN_IF_ERROR(
                CheckCardinality(c, *set, owner, next, /*exclude=*/id));
          }
        }
      }
    }
  }

  // Does any set key change? Then re-place within each affected occurrence.
  std::vector<const SetDef*> resort;
  for (const SetDef* set : schema_.SetsWithMember(rec->type)) {
    if (set->ordering != SetOrdering::kSortedByKeys) continue;
    for (const std::string& key : set->keys) {
      auto it = canonical.find(ToUpper(key));
      if (it != canonical.end()) {
        auto old_it = rec->fields.find(ToUpper(key));
        Value old_val = old_it == rec->fields.end() ? Value() : old_it->second;
        if (!(old_val == it->second)) {
          resort.push_back(set);
          break;
        }
      }
    }
  }

  // Apply; maintain indexes around the field swap.
  for (const ConstraintDef& c : schema_.constraints()) {
    if (c.kind == ConstraintKind::kUniqueness &&
        EqualsIgnoreCase(c.record, rec->type)) {
      DBPC_ASSIGN_OR_RETURN(std::optional<std::string> old_key,
                            UniqueKeyOf(c, rec->fields));
      if (old_key.has_value()) unique_index_[c.name].erase(*old_key);
    }
  }
  IndexRemove(*rec);
  rec->fields = std::move(next);
  ++stats_.records_written;
  IndexInsert(*rec);
  for (const ConstraintDef& c : schema_.constraints()) {
    if (c.kind == ConstraintKind::kUniqueness &&
        EqualsIgnoreCase(c.record, rec->type)) {
      DBPC_ASSIGN_OR_RETURN(std::optional<std::string> new_key,
                            UniqueKeyOf(c, rec->fields));
      if (new_key.has_value()) unique_index_[c.name][*new_key] = id;
    }
  }
  for (const SetDef* set : resort) {
    RecordId owner = store_.OwnerOf(ToUpper(set->name), id);
    if (owner == 0) continue;
    DBPC_RETURN_IF_ERROR(store_.Unlink(ToUpper(set->name), id));
    Result<size_t> pos = SortedPosition(*set, owner, id);
    if (!pos.ok()) {
      // Duplicate key at new position: relink at end to keep structural
      // integrity, then report the violation.
      (void)store_.LinkLast(ToUpper(set->name), owner, id);
      return pos.status();
    }
    DBPC_RETURN_IF_ERROR(store_.Link(ToUpper(set->name), owner, id, *pos));
    stats_.links_changed += 2;
  }
  return Status::OK();
}

Status Database::Connect(const std::string& set_name, RecordId member,
                         RecordId owner) {
  const SetDef* set = schema_.FindSet(set_name);
  if (set == nullptr) return Status::NotFound("set " + set_name);
  const StoredRecord* mrec = store_.Get(member);
  if (mrec == nullptr) {
    return Status::NotFound("record " + std::to_string(member));
  }
  if (!EqualsIgnoreCase(mrec->type, set->member)) {
    return Status::TypeError("record " + std::to_string(member) +
                             " is not a " + set->member);
  }
  if (set->system_owned()) {
    owner = kSystemOwner;
  } else {
    const StoredRecord* orec = store_.Get(owner);
    if (orec == nullptr) {
      return Status::NotFound("owner record " + std::to_string(owner));
    }
    if (!EqualsIgnoreCase(orec->type, set->owner)) {
      return Status::TypeError("record " + std::to_string(owner) +
                               " is not a " + set->owner);
    }
  }
  for (const ConstraintDef& c : schema_.constraints()) {
    if (c.kind == ConstraintKind::kCardinalityLimit &&
        EqualsIgnoreCase(c.set_name, set->name)) {
      DBPC_RETURN_IF_ERROR(
          CheckCardinality(c, *set, owner, mrec->fields, /*exclude=*/0));
    }
  }
  return ConnectInternal(*set, member, owner);
}

Status Database::Disconnect(const std::string& set_name, RecordId member) {
  const SetDef* set = schema_.FindSet(set_name);
  if (set == nullptr) return Status::NotFound("set " + set_name);
  if (set->retention == RetentionClass::kMandatory) {
    return Status::ConstraintViolation("set " + set->name +
                                       " membership is MANDATORY");
  }
  DBPC_RETURN_IF_ERROR(store_.Unlink(ToUpper(set->name), member));
  ++stats_.links_changed;
  return Status::OK();
}

Result<std::string> Database::TypeOf(RecordId id) const {
  const StoredRecord* rec = store_.Get(id);
  if (rec == nullptr) {
    return Status::NotFound("record " + std::to_string(id));
  }
  return rec->type;
}

Result<Value> Database::GetField(RecordId id, const std::string& field) const {
  const StoredRecord* rec = store_.Get(id);
  if (rec == nullptr) {
    return Status::NotFound("record " + std::to_string(id));
  }
  ++stats_.records_read;
  const RecordTypeDef* type = schema_.FindRecordType(rec->type);
  const FieldDef* f = type->FindField(field);
  if (f == nullptr) {
    return Status::NotFound("field " + rec->type + "." + field);
  }
  if (!f->is_virtual) {
    auto it = rec->fields.find(ToUpper(f->name));
    return it == rec->fields.end() ? Value() : it->second;
  }
  RecordId owner = store_.OwnerOf(ToUpper(f->via_set), id);
  if (owner == 0 || owner == kSystemOwner) return Value();
  return GetField(owner, f->using_field);
}

Result<FieldMap> Database::GetAllFields(RecordId id) const {
  const StoredRecord* rec = store_.Get(id);
  if (rec == nullptr) {
    return Status::NotFound("record " + std::to_string(id));
  }
  const RecordTypeDef* type = schema_.FindRecordType(rec->type);
  FieldMap out;
  for (const FieldDef& f : type->fields) {
    DBPC_ASSIGN_OR_RETURN(Value v, GetField(id, f.name));
    out[ToUpper(f.name)] = std::move(v);
  }
  return out;
}

std::vector<RecordId> Database::Members(const std::string& set_name,
                                        RecordId owner) const {
  return MembersRef(set_name, owner);
}

const std::vector<RecordId>& Database::MembersRef(const std::string& set_name,
                                                  RecordId owner) const {
  const std::vector<RecordId>& members =
      store_.Members(ToUpper(set_name), owner);
  stats_.members_scanned += members.size();
  return members;
}

RecordId Database::OwnerOf(const std::string& set_name,
                           RecordId member) const {
  ++stats_.members_scanned;
  return store_.OwnerOf(ToUpper(set_name), member);
}

std::vector<RecordId> Database::AllOfType(const std::string& type) const {
  std::vector<RecordId> out = store_.AllOfType(ToUpper(type));
  stats_.records_read += out.size();
  return out;
}

std::function<Result<Value>(const std::string&)> Database::FieldGetter(
    RecordId id) const {
  return [this, id](const std::string& field) { return GetField(id, field); };
}

std::optional<std::vector<RecordId>> Database::SelectCandidates(
    const std::string& type, const Predicate& pred,
    const HostEnv& host_env) const {
  if (!index_options_.enabled) return std::nullopt;
  const RecordTypeDef* tdef = schema_.FindRecordType(type);
  if (tdef == nullptr) return std::nullopt;
  // A probe skips records the scan would have evaluated, so it is only
  // sound when that evaluation could not have raised an error: every
  // referenced field must exist on the type and every host variable must
  // resolve.
  std::vector<std::string> fields;
  pred.CollectFields(&fields);
  for (const std::string& f : fields) {
    if (tdef->FindField(f) == nullptr) return std::nullopt;
  }
  std::vector<std::string> host_vars;
  pred.CollectHostVars(&host_vars);
  std::map<std::string, Value> resolved;
  for (const std::string& v : host_vars) {
    Result<Value> r = host_env(v);
    if (!r.ok()) return std::nullopt;
    resolved[v] = *r;
  }
  std::vector<const Predicate*> conjuncts;
  CollectEqualityConjuncts(pred, &conjuncts);
  std::optional<std::vector<RecordId>> best;
  for (const Predicate* c : conjuncts) {
    const Value& probe = c->operand().kind == Operand::Kind::kHostVar
                             ? resolved[c->operand().host_var]
                             : c->operand().literal;
    std::optional<std::vector<RecordId>> candidates =
        ProbeCandidates(tdef->name, c->field(), probe);
    if (!candidates.has_value()) continue;
    if (!best.has_value() || candidates->size() < best->size()) {
      best = std::move(candidates);
    }
    if (best->empty()) break;
  }
  return best;
}

Result<std::vector<RecordId>> Database::SelectWhere(
    const std::string& type, const Predicate& pred,
    const HostEnv& host_env) const {
  std::vector<RecordId> out;
  std::optional<std::vector<RecordId>> candidates =
      SelectCandidates(type, pred, host_env);
  if (candidates.has_value()) {
    // Candidate lists are ascending by id, so filtering preserves the
    // scan's result order. The full predicate still runs on every
    // candidate: uniqueness probes may over-approximate, and residual
    // conjuncts must hold too.
    for (RecordId id : *candidates) {
      DBPC_ASSIGN_OR_RETURN(bool keep,
                            pred.Evaluate(FieldGetter(id), host_env));
      if (keep) out.push_back(id);
    }
    return out;
  }
  for (RecordId id : AllOfType(type)) {
    DBPC_ASSIGN_OR_RETURN(bool keep, pred.Evaluate(FieldGetter(id), host_env));
    if (keep) out.push_back(id);
  }
  return out;
}

}  // namespace dbpc
