#include "engine/find_query.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/string_util.h"

namespace dbpc {

bool PathStep::operator==(const PathStep& other) const {
  return kind == other.kind && name == other.name &&
         qualification == other.qualification &&
         join_target_field == other.join_target_field &&
         join_source_field == other.join_source_field;
}

std::string PathStep::ToString() const {
  std::string out;
  if (kind == Kind::kJoin) {
    out = "JOIN " + name + " THROUGH (" + join_target_field + ", " +
          join_source_field + ")";
  } else {
    out = name;
  }
  if (qualification.has_value()) {
    out += "(";
    out += qualification->ToString();
    out += ")";
  }
  return out;
}

std::string FindQuery::ToString() const {
  std::string out = "FIND(" + target_type + ": " + start;
  for (const PathStep& step : steps) {
    out += ", ";
    out += step.ToString();
  }
  out += ")";
  return out;
}

std::string Retrieval::ToString() const {
  if (sort_on.empty()) return query.ToString();
  return "SORT(" + query.ToString() + ") ON (" + Join(sort_on, ", ") + ")";
}

Status ResolveFindQuery(const Schema& schema, FindQuery* query) {
  // The record type context produced by the previous step; empty when the
  // next step must be the opening system-owned set.
  std::string context;
  bool at_start = true;
  if (!query->starts_at_system()) {
    // Collection start: the caller's collection holds records of the target
    // type of a previous FIND. We cannot know that type statically here, so
    // the first step fixes the context: a record step names it directly, a
    // set step implies its owner type.
    at_start = false;
  }
  for (size_t i = 0; i < query->steps.size(); ++i) {
    PathStep& step = query->steps[i];
    if (step.kind == PathStep::Kind::kJoin) {
      // Su's value join: relate the current entities to an unassociated
      // type through comparable fields.
      if (at_start) {
        return Status::InvalidArgument(
            "path cannot open with a value join; there is nothing to join "
            "from");
      }
      const RecordTypeDef* target = schema.FindRecordType(step.name);
      if (target == nullptr) {
        return Status::NotFound("join target record type " + step.name);
      }
      if (!target->HasField(step.join_target_field)) {
        return Status::NotFound("join field " + step.name + "." +
                                step.join_target_field);
      }
      if (!context.empty()) {
        const RecordTypeDef* source_rec = schema.FindRecordType(context);
        if (source_rec != nullptr &&
            !source_rec->HasField(step.join_source_field)) {
          return Status::NotFound("join field " + context + "." +
                                  step.join_source_field);
        }
      }
      if (step.qualification.has_value()) {
        std::vector<std::string> fields;
        step.qualification->CollectFields(&fields);
        for (const std::string& f : fields) {
          if (!target->HasField(f)) {
            return Status::NotFound("qualification field " + step.name + "." +
                                    f);
          }
        }
      }
      context = target->name;
      continue;
    }
    const SetDef* set = schema.FindSet(step.name);
    const RecordTypeDef* rec = schema.FindRecordType(step.name);
    if (set != nullptr && rec != nullptr) {
      return Status::InvalidArgument("name " + step.name +
                                     " is both a set and a record type");
    }
    if (set == nullptr && rec == nullptr) {
      return Status::NotFound("path step " + step.name +
                              " is neither a set nor a record type");
    }
    if (set != nullptr) {
      if (step.qualification.has_value()) {
        return Status::InvalidArgument("set step " + step.name +
                                       " cannot carry a qualification");
      }
      step.kind = PathStep::Kind::kSet;
      if (at_start) {
        if (!set->system_owned()) {
          return Status::InvalidArgument(
              "path from SYSTEM must open with a system-owned set, not " +
              step.name);
        }
        at_start = false;
      } else if (!context.empty() &&
                 !EqualsIgnoreCase(set->owner, context)) {
        return Status::InvalidArgument("set " + step.name + " is owned by " +
                                       set->owner + ", not by " + context);
      }
      context = set->member;
    } else {
      if (at_start) {
        return Status::InvalidArgument(
            "path from SYSTEM must open with a set, not record " + step.name);
      }
      step.kind = PathStep::Kind::kRecord;
      if (!context.empty() && !EqualsIgnoreCase(rec->name, context)) {
        return Status::InvalidArgument("record step " + step.name +
                                       " does not match path context " +
                                       context);
      }
      context = rec->name;
      if (step.qualification.has_value()) {
        std::vector<std::string> fields;
        step.qualification->CollectFields(&fields);
        for (const std::string& f : fields) {
          if (!rec->HasField(f)) {
            return Status::NotFound("qualification field " + step.name + "." +
                                    f);
          }
        }
      }
    }
  }
  if (context.empty()) {
    return Status::InvalidArgument("FIND path is empty");
  }
  if (!EqualsIgnoreCase(context, query->target_type)) {
    return Status::InvalidArgument("FIND path ends at " + context +
                                   " but targets " + query->target_type);
  }
  return Status::OK();
}

CollectionEnv EmptyCollectionEnv() {
  return [](const std::string& name) -> Result<std::vector<RecordId>> {
    return Status::NotFound("collection variable " + name);
  };
}

namespace {

/// Build side of a hashed value join: answers "does any source value
/// QueryCompare-equal this target value" in O(1), replicating
/// QueryCompare's branch structure exactly — numeric comparison when a
/// native number is involved, display-text comparison otherwise, NaN
/// comparing equal to every number.
class JoinMatcher {
 public:
  explicit JoinMatcher(const std::vector<Value>& sources) {
    for (const Value& v : sources) {
      if (v.is_null()) continue;
      if (v.is_int() || v.is_double()) {
        has_native_ = true;
        double n =
            v.is_int() ? static_cast<double>(v.as_int()) : v.as_double();
        if (std::isnan(n)) {
          has_nan_ = true;
        } else {
          native_keys_.insert(QueryNumericKey(n));
        }
        continue;
      }
      text_keys_.insert(v.as_string());
      std::optional<double> n = QueryNumeric(v);
      if (n.has_value()) {
        // Parseable strings compare numerically against native-number
        // targets (but still textually against string targets).
        if (std::isnan(*n)) {
          has_nan_parseable_ = true;
        } else {
          parseable_keys_.insert(QueryNumericKey(*n));
        }
      }
    }
  }

  bool Matches(const Value& target) const {
    if (target.is_null()) return false;
    if (target.is_int() || target.is_double()) {
      double n = target.is_int() ? static_cast<double>(target.as_int())
                                 : target.as_double();
      // A NaN target compares equal to every numeric-interpretable source.
      if (std::isnan(n)) {
        return has_native_ || has_nan_parseable_ || !parseable_keys_.empty();
      }
      if (has_nan_ || has_nan_parseable_) return true;
      std::string key = QueryNumericKey(n);
      return native_keys_.count(key) > 0 || parseable_keys_.count(key) > 0;
    }
    // String target: text equality against string sources; numeric
    // comparison against native-number sources when the target parses.
    // (Unparseable text never equals a native number's display form.)
    if (text_keys_.count(target.as_string()) > 0) return true;
    std::optional<double> n = QueryNumeric(target);
    if (!n.has_value()) return false;
    if (std::isnan(*n)) return has_native_;
    return has_nan_ || native_keys_.count(QueryNumericKey(*n)) > 0;
  }

 private:
  bool has_native_ = false;         ///< any native int/double source
  bool has_nan_ = false;            ///< a native NaN source
  bool has_nan_parseable_ = false;  ///< a string source parsing to NaN
  std::unordered_set<std::string> native_keys_;
  std::unordered_set<std::string> parseable_keys_;
  std::unordered_set<std::string> text_keys_;
};

/// Index-served superset of the ids in `ids` that can satisfy `pred`, or
/// nullopt to evaluate everything. Skipping an id is only sound when its
/// evaluation could not have raised an error, so this requires every id to
/// be a live `type` record (whose qualification fields were resolved
/// against that type) and every host variable to resolve.
std::optional<std::vector<RecordId>> QualificationCandidates(
    const Database& db, const std::string& type, const Predicate& pred,
    const HostEnv& host_env, const std::vector<RecordId>& ids) {
  if (!db.index_options().enabled || ids.empty()) return std::nullopt;
  for (RecordId id : ids) {
    Result<std::string> t = db.TypeOf(id);
    if (!t.ok() || !EqualsIgnoreCase(*t, type)) return std::nullopt;
  }
  std::vector<std::string> host_vars;
  pred.CollectHostVars(&host_vars);
  std::map<std::string, Value> resolved;
  for (const std::string& v : host_vars) {
    Result<Value> r = host_env(v);
    if (!r.ok()) return std::nullopt;
    resolved[v] = *r;
  }
  std::vector<const Predicate*> conjuncts;
  CollectEqualityConjuncts(pred, &conjuncts);
  std::optional<std::vector<RecordId>> best;
  for (const Predicate* c : conjuncts) {
    const Value& probe = c->operand().kind == Operand::Kind::kHostVar
                             ? resolved[c->operand().host_var]
                             : c->operand().literal;
    std::optional<std::vector<RecordId>> candidates =
        db.ProbeCandidates(type, c->field(), probe);
    if (!candidates.has_value()) continue;
    if (!best.has_value() || candidates->size() < best->size()) {
      best = std::move(candidates);
    }
    if (best->empty()) break;
  }
  return best;
}

}  // namespace

Result<std::vector<RecordId>> EvaluateFind(const Database& db,
                                           const FindQuery& query,
                                           const HostEnv& host_env,
                                           const CollectionEnv& collections) {
  std::vector<RecordId> current;
  bool have_current = false;
  if (!query.starts_at_system()) {
    DBPC_ASSIGN_OR_RETURN(current, collections(query.start));
    have_current = true;
  }
  for (const PathStep& step : query.steps) {
    switch (step.kind) {
      case PathStep::Kind::kUnresolved:
        return Status::InvalidArgument(
            "FIND path not resolved against a schema: " + query.ToString());
      case PathStep::Kind::kSet: {
        std::vector<RecordId> next;
        if (!have_current) {
          next = db.SystemMembers(ToUpper(step.name));
          have_current = true;
        } else {
          for (RecordId owner : current) {
            const std::vector<RecordId>& members =
                db.MembersRef(ToUpper(step.name), owner);
            next.insert(next.end(), members.begin(), members.end());
          }
        }
        current = std::move(next);
        break;
      }
      case PathStep::Kind::kRecord: {
        if (!step.qualification.has_value()) break;
        // Probe an equality conjunct so only plausible records are
        // evaluated; the full qualification still decides membership.
        std::optional<std::vector<RecordId>> candidates =
            QualificationCandidates(db, step.name, *step.qualification,
                                    host_env, current);
        std::vector<RecordId> kept;
        for (RecordId id : current) {
          if (candidates.has_value() &&
              !std::binary_search(candidates->begin(), candidates->end(),
                                  id)) {
            continue;
          }
          DBPC_ASSIGN_OR_RETURN(
              bool keep,
              step.qualification->Evaluate(db.FieldGetter(id), host_env));
          if (keep) kept.push_back(id);
        }
        current = std::move(kept);
        break;
      }
      case PathStep::Kind::kJoin: {
        // Value join: targets whose join field equals some incoming
        // record's source field. Result is deduplicated, first-match
        // (ascending id) order — both access paths below reproduce the
        // matched set and order of the original nested-loop scan.
        std::vector<Value> source_values;
        source_values.reserve(current.size());
        for (RecordId id : current) {
          DBPC_ASSIGN_OR_RETURN(Value v,
                                db.GetField(id, step.join_source_field));
          source_values.push_back(std::move(v));
        }
        std::string target_type = ToUpper(step.name);

        // Access path 1: probe a (lazily built) secondary index per source
        // value and merge the buckets. Bucket membership coincides exactly
        // with QueryCompare equality for accepted probes, so no
        // re-verification pass is needed.
        std::optional<std::vector<RecordId>> matched;
        if (db.EnsureFieldIndex(target_type, step.join_target_field)) {
          std::vector<RecordId> merged;
          bool usable = true;
          for (const Value& v : source_values) {
            if (v.is_null()) continue;  // null joins with nothing
            std::optional<std::vector<RecordId>> bucket =
                db.ProbeIndex(target_type, step.join_target_field, v);
            if (!bucket.has_value()) {
              usable = false;
              break;
            }
            merged.insert(merged.end(), bucket->begin(), bucket->end());
          }
          if (usable) {
            std::sort(merged.begin(), merged.end());
            merged.erase(std::unique(merged.begin(), merged.end()),
                         merged.end());
            matched = std::move(merged);
          }
        }

        std::vector<RecordId> joined;
        if (matched.has_value()) {
          for (RecordId candidate : *matched) {
            if (step.qualification.has_value()) {
              DBPC_ASSIGN_OR_RETURN(bool keep,
                                    step.qualification->Evaluate(
                                        db.FieldGetter(candidate), host_env));
              if (!keep) continue;
            }
            joined.push_back(candidate);
          }
        } else {
          // Access path 2: one scan of the target type with a hashed
          // build side replacing the inner comparison loop.
          JoinMatcher matcher(source_values);
          for (RecordId candidate : db.AllOfType(target_type)) {
            DBPC_ASSIGN_OR_RETURN(
                Value target_value,
                db.GetField(candidate, step.join_target_field));
            if (!matcher.Matches(target_value)) continue;
            if (step.qualification.has_value()) {
              DBPC_ASSIGN_OR_RETURN(bool keep,
                                    step.qualification->Evaluate(
                                        db.FieldGetter(candidate), host_env));
              if (!keep) continue;
            }
            joined.push_back(candidate);
          }
        }
        current = std::move(joined);
        have_current = true;
        break;
      }
    }
  }
  return current;
}

Result<std::vector<RecordId>> SortRecords(const Database& db,
                                          std::vector<RecordId> ids,
                                          const std::vector<std::string>& on) {
  // Materialize sort keys first so comparator cannot fail mid-sort.
  std::vector<std::pair<std::vector<Value>, RecordId>> keyed;
  keyed.reserve(ids.size());
  for (RecordId id : ids) {
    std::vector<Value> key;
    key.reserve(on.size());
    for (const std::string& field : on) {
      DBPC_ASSIGN_OR_RETURN(Value v, db.GetField(id, field));
      key.push_back(std::move(v));
    }
    keyed.emplace_back(std::move(key), id);
  }
  std::stable_sort(keyed.begin(), keyed.end(),
                   [](const auto& a, const auto& b) {
                     for (size_t i = 0; i < a.first.size(); ++i) {
                       int cmp = a.first[i].Compare(b.first[i]);
                       if (cmp != 0) return cmp < 0;
                     }
                     return false;
                   });
  std::vector<RecordId> out;
  out.reserve(keyed.size());
  for (const auto& [key, id] : keyed) out.push_back(id);
  return out;
}

Result<std::vector<RecordId>> EvaluateRetrieval(
    const Database& db, const Retrieval& retrieval, const HostEnv& host_env,
    const CollectionEnv& collections) {
  DBPC_ASSIGN_OR_RETURN(
      std::vector<RecordId> ids,
      EvaluateFind(db, retrieval.query, host_env, collections));
  if (retrieval.sort_on.empty()) return ids;
  return SortRecords(db, std::move(ids), retrieval.sort_on);
}

namespace {

Result<Operand> ParseOperand(TokenCursor* cur) {
  const Token& t = cur->Peek();
  switch (t.kind) {
    case TokenKind::kInteger:
      cur->Next();
      return Operand::Literal(Value::Int(t.int_value));
    case TokenKind::kFloat:
      cur->Next();
      return Operand::Literal(Value::Double(t.float_value));
    case TokenKind::kString:
      cur->Next();
      return Operand::Literal(Value::String(t.text));
    case TokenKind::kPunct:
      if (t.text == ":") {
        cur->Next();
        DBPC_ASSIGN_OR_RETURN(std::string name,
                              cur->TakeIdentifier("host variable name"));
        return Operand::HostVar(std::move(name));
      }
      if (t.text == "-") {
        cur->Next();
        const Token& num = cur->Peek();
        if (num.kind == TokenKind::kInteger) {
          cur->Next();
          return Operand::Literal(Value::Int(-num.int_value));
        }
        if (num.kind == TokenKind::kFloat) {
          cur->Next();
          return Operand::Literal(Value::Double(-num.float_value));
        }
        return cur->ErrorHere("expected number after '-'");
      }
      break;
    case TokenKind::kIdentifier:
      if (t.text == "NULL") {
        cur->Next();
        return Operand::Literal(Value::Null());
      }
      break;
    default:
      break;
  }
  return cur->ErrorHere("expected literal or :host-variable");
}

Result<Predicate> ParseComparison(TokenCursor* cur) {
  DBPC_ASSIGN_OR_RETURN(std::string field, cur->TakeIdentifier("field name"));
  if (cur->ConsumeIdent("IS")) {
    bool negated = cur->ConsumeIdent("NOT");
    DBPC_RETURN_IF_ERROR(cur->ExpectIdent("NULL"));
    return Predicate::Compare(
        std::move(field), negated ? CompareOp::kIsNotNull : CompareOp::kIsNull,
        Operand::Literal(Value::Null()));
  }
  CompareOp op;
  const Token& t = cur->Peek();
  if (t.IsPunct("=")) {
    op = CompareOp::kEq;
  } else if (t.IsPunct("<>")) {
    op = CompareOp::kNe;
  } else if (t.IsPunct("<")) {
    op = CompareOp::kLt;
  } else if (t.IsPunct("<=")) {
    op = CompareOp::kLe;
  } else if (t.IsPunct(">")) {
    op = CompareOp::kGt;
  } else if (t.IsPunct(">=")) {
    op = CompareOp::kGe;
  } else {
    return cur->ErrorHere("expected comparison operator");
  }
  cur->Next();
  DBPC_ASSIGN_OR_RETURN(Operand rhs, ParseOperand(cur));
  return Predicate::Compare(std::move(field), op, std::move(rhs));
}

Result<Predicate> ParseOrExpr(TokenCursor* cur);

Result<Predicate> ParseUnary(TokenCursor* cur) {
  if (cur->ConsumeIdent("NOT")) {
    DBPC_ASSIGN_OR_RETURN(Predicate inner, ParseUnary(cur));
    return Predicate::Not(std::move(inner));
  }
  if (cur->ConsumePunct("(")) {
    DBPC_ASSIGN_OR_RETURN(Predicate inner, ParseOrExpr(cur));
    DBPC_RETURN_IF_ERROR(cur->ExpectPunct(")"));
    return inner;
  }
  return ParseComparison(cur);
}

Result<Predicate> ParseAndExpr(TokenCursor* cur) {
  DBPC_ASSIGN_OR_RETURN(Predicate lhs, ParseUnary(cur));
  while (cur->ConsumeIdent("AND")) {
    DBPC_ASSIGN_OR_RETURN(Predicate rhs, ParseUnary(cur));
    lhs = Predicate::And(std::move(lhs), std::move(rhs));
  }
  return lhs;
}

Result<Predicate> ParseOrExpr(TokenCursor* cur) {
  DBPC_ASSIGN_OR_RETURN(Predicate lhs, ParseAndExpr(cur));
  while (cur->ConsumeIdent("OR")) {
    DBPC_ASSIGN_OR_RETURN(Predicate rhs, ParseAndExpr(cur));
    lhs = Predicate::Or(std::move(lhs), std::move(rhs));
  }
  return lhs;
}

}  // namespace

Result<Predicate> ParsePredicate(TokenCursor* cur) { return ParseOrExpr(cur); }

Result<FindQuery> ParseFindQuery(TokenCursor* cur) {
  DBPC_RETURN_IF_ERROR(cur->ExpectIdent("FIND"));
  DBPC_RETURN_IF_ERROR(cur->ExpectPunct("("));
  FindQuery query;
  DBPC_ASSIGN_OR_RETURN(query.target_type,
                        cur->TakeIdentifier("target record type"));
  DBPC_RETURN_IF_ERROR(cur->ExpectPunct(":"));
  DBPC_ASSIGN_OR_RETURN(query.start,
                        cur->TakeIdentifier("SYSTEM or collection name"));
  while (cur->ConsumePunct(",")) {
    PathStep step;
    if (cur->ConsumeIdent("JOIN")) {
      step.kind = PathStep::Kind::kJoin;
      DBPC_ASSIGN_OR_RETURN(step.name,
                            cur->TakeIdentifier("join target type"));
      DBPC_RETURN_IF_ERROR(cur->ExpectIdent("THROUGH"));
      DBPC_RETURN_IF_ERROR(cur->ExpectPunct("("));
      DBPC_ASSIGN_OR_RETURN(step.join_target_field,
                            cur->TakeIdentifier("join target field"));
      DBPC_RETURN_IF_ERROR(cur->ExpectPunct(","));
      DBPC_ASSIGN_OR_RETURN(step.join_source_field,
                            cur->TakeIdentifier("join source field"));
      DBPC_RETURN_IF_ERROR(cur->ExpectPunct(")"));
    } else {
      DBPC_ASSIGN_OR_RETURN(step.name, cur->TakeIdentifier("path step name"));
    }
    if (cur->ConsumePunct("(")) {
      DBPC_ASSIGN_OR_RETURN(Predicate pred, ParsePredicate(cur));
      DBPC_RETURN_IF_ERROR(cur->ExpectPunct(")"));
      step.qualification = std::move(pred);
    }
    query.steps.push_back(std::move(step));
  }
  DBPC_RETURN_IF_ERROR(cur->ExpectPunct(")"));
  return query;
}

Result<Retrieval> ParseRetrieval(TokenCursor* cur) {
  Retrieval retrieval;
  if (cur->Peek().IsIdent("SORT")) {
    cur->Next();
    DBPC_RETURN_IF_ERROR(cur->ExpectPunct("("));
    DBPC_ASSIGN_OR_RETURN(retrieval.query, ParseFindQuery(cur));
    DBPC_RETURN_IF_ERROR(cur->ExpectPunct(")"));
    DBPC_RETURN_IF_ERROR(cur->ExpectIdent("ON"));
    DBPC_RETURN_IF_ERROR(cur->ExpectPunct("("));
    do {
      DBPC_ASSIGN_OR_RETURN(std::string field,
                            cur->TakeIdentifier("sort field"));
      retrieval.sort_on.push_back(std::move(field));
    } while (cur->ConsumePunct(","));
    DBPC_RETURN_IF_ERROR(cur->ExpectPunct(")"));
    return retrieval;
  }
  DBPC_ASSIGN_OR_RETURN(retrieval.query, ParseFindQuery(cur));
  return retrieval;
}

Result<FindQuery> ParseFindQuery(const std::string& text) {
  DBPC_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(text));
  TokenCursor cur(std::move(tokens));
  DBPC_ASSIGN_OR_RETURN(FindQuery query, ParseFindQuery(&cur));
  if (!cur.AtEnd()) return cur.ErrorHere("trailing input after FIND");
  return query;
}

Result<Retrieval> ParseRetrieval(const std::string& text) {
  DBPC_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(text));
  TokenCursor cur(std::move(tokens));
  DBPC_ASSIGN_OR_RETURN(Retrieval retrieval, ParseRetrieval(&cur));
  if (!cur.AtEnd()) return cur.ErrorHere("trailing input after retrieval");
  return retrieval;
}

}  // namespace dbpc
