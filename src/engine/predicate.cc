#include "engine/predicate.h"

#include <charconv>
#include <cstdio>

namespace dbpc {

const char* CompareOpSymbol(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "<>";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
    case CompareOp::kIsNull:
      return "IS NULL";
    case CompareOp::kIsNotNull:
      return "IS NOT NULL";
  }
  return "?";
}

std::string Operand::ToString() const {
  if (kind == Kind::kHostVar) return ":" + host_var;
  return literal.ToLiteral();
}

HostEnv EmptyHostEnv() {
  return [](const std::string& name) -> Result<Value> {
    return Status::NotFound("host variable " + name +
                            " referenced in host-variable-free context");
  };
}

Predicate Predicate::Compare(std::string field, CompareOp op, Operand rhs) {
  Predicate p;
  p.kind_ = Kind::kCompare;
  p.field_ = std::move(field);
  p.op_ = op;
  p.operand_ = std::move(rhs);
  return p;
}

Predicate Predicate::And(Predicate lhs, Predicate rhs) {
  Predicate p;
  p.kind_ = Kind::kAnd;
  p.lhs_ = std::make_unique<Predicate>(std::move(lhs));
  p.rhs_ = std::make_unique<Predicate>(std::move(rhs));
  return p;
}

Predicate Predicate::Or(Predicate lhs, Predicate rhs) {
  Predicate p;
  p.kind_ = Kind::kOr;
  p.lhs_ = std::make_unique<Predicate>(std::move(lhs));
  p.rhs_ = std::make_unique<Predicate>(std::move(rhs));
  return p;
}

Predicate Predicate::Not(Predicate inner) {
  Predicate p;
  p.kind_ = Kind::kNot;
  p.lhs_ = std::make_unique<Predicate>(std::move(inner));
  return p;
}

Predicate::Predicate(const Predicate& other)
    : kind_(other.kind_),
      field_(other.field_),
      op_(other.op_),
      operand_(other.operand_) {
  if (other.lhs_) lhs_ = std::make_unique<Predicate>(*other.lhs_);
  if (other.rhs_) rhs_ = std::make_unique<Predicate>(*other.rhs_);
}

Predicate& Predicate::operator=(const Predicate& other) {
  if (this == &other) return *this;
  kind_ = other.kind_;
  field_ = other.field_;
  op_ = other.op_;
  operand_ = other.operand_;
  lhs_ = other.lhs_ ? std::make_unique<Predicate>(*other.lhs_) : nullptr;
  rhs_ = other.rhs_ ? std::make_unique<Predicate>(*other.rhs_) : nullptr;
  return *this;
}

std::optional<double> QueryNumeric(const Value& v) {
  if (v.is_int()) return static_cast<double>(v.as_int());
  if (v.is_double()) return v.as_double();
  if (!v.is_string()) return std::nullopt;
  const std::string& s = v.as_string();
  double out = 0;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), out);
  if (ec == std::errc() && ptr == s.data() + s.size()) return out;
  return std::nullopt;
}

std::string QueryNumericKey(double d) {
  if (d == 0.0) d = 0.0;
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", d);
  return buf;
}

std::optional<int> QueryCompare(const Value& lhs, const Value& rhs) {
  if (lhs.is_null() || rhs.is_null()) return std::nullopt;
  // Numeric comparison applies when at least one side is a native number
  // and the other is a number or numeric string; otherwise lexicographic.
  if (lhs.is_int() || lhs.is_double() || rhs.is_int() || rhs.is_double()) {
    std::optional<double> ln = QueryNumeric(lhs);
    std::optional<double> rn = QueryNumeric(rhs);
    if (ln.has_value() && rn.has_value()) {
      return *ln < *rn ? -1 : (*ln > *rn ? 1 : 0);
    }
    // Mixed incomparable types: fall back to display-text comparison so the
    // result is at least deterministic.
  }
  std::string a = lhs.ToDisplay();
  std::string b = rhs.ToDisplay();
  return a < b ? -1 : (a > b ? 1 : 0);
}

Result<bool> Predicate::Evaluate(
    const std::function<Result<Value>(const std::string&)>& get_field,
    const HostEnv& host_env) const {
  switch (kind_) {
    case Kind::kCompare: {
      DBPC_ASSIGN_OR_RETURN(Value lhs, get_field(field_));
      if (op_ == CompareOp::kIsNull) return lhs.is_null();
      if (op_ == CompareOp::kIsNotNull) return !lhs.is_null();
      Value rhs;
      if (operand_.kind == Operand::Kind::kLiteral) {
        rhs = operand_.literal;
      } else {
        DBPC_ASSIGN_OR_RETURN(rhs, host_env(operand_.host_var));
      }
      std::optional<int> cmp = QueryCompare(lhs, rhs);
      if (!cmp.has_value()) return false;
      switch (op_) {
        case CompareOp::kEq:
          return *cmp == 0;
        case CompareOp::kNe:
          return *cmp != 0;
        case CompareOp::kLt:
          return *cmp < 0;
        case CompareOp::kLe:
          return *cmp <= 0;
        case CompareOp::kGt:
          return *cmp > 0;
        case CompareOp::kGe:
          return *cmp >= 0;
        default:
          return Status::Internal("unexpected comparison op");
      }
    }
    case Kind::kAnd: {
      DBPC_ASSIGN_OR_RETURN(bool l, lhs_->Evaluate(get_field, host_env));
      if (!l) return false;
      return rhs_->Evaluate(get_field, host_env);
    }
    case Kind::kOr: {
      DBPC_ASSIGN_OR_RETURN(bool l, lhs_->Evaluate(get_field, host_env));
      if (l) return true;
      return rhs_->Evaluate(get_field, host_env);
    }
    case Kind::kNot: {
      DBPC_ASSIGN_OR_RETURN(bool l, lhs_->Evaluate(get_field, host_env));
      return !l;
    }
  }
  return Status::Internal("corrupt predicate");
}

void CollectEqualityConjuncts(const Predicate& pred,
                              std::vector<const Predicate*>* out) {
  switch (pred.kind()) {
    case Predicate::Kind::kCompare:
      if (pred.op() == CompareOp::kEq) out->push_back(&pred);
      return;
    case Predicate::Kind::kAnd:
      CollectEqualityConjuncts(*pred.lhs_child(), out);
      CollectEqualityConjuncts(*pred.rhs_child(), out);
      return;
    case Predicate::Kind::kOr:
    case Predicate::Kind::kNot:
      return;
  }
}

int Predicate::RenameField(const std::string& old_field,
                           const std::string& new_field) {
  int count = 0;
  if (kind_ == Kind::kCompare) {
    if (field_ == old_field) {
      field_ = new_field;
      ++count;
    }
    return count;
  }
  if (lhs_) count += lhs_->RenameField(old_field, new_field);
  if (rhs_) count += rhs_->RenameField(old_field, new_field);
  return count;
}

void Predicate::CollectFields(std::vector<std::string>* out) const {
  if (kind_ == Kind::kCompare) {
    bool seen = false;
    for (const std::string& f : *out) {
      if (f == field_) {
        seen = true;
        break;
      }
    }
    if (!seen) out->push_back(field_);
    return;
  }
  if (lhs_) lhs_->CollectFields(out);
  if (rhs_) rhs_->CollectFields(out);
}

void Predicate::CollectHostVars(std::vector<std::string>* out) const {
  if (kind_ == Kind::kCompare) {
    if (operand_.kind == Operand::Kind::kHostVar) {
      for (const std::string& v : *out) {
        if (v == operand_.host_var) return;
      }
      out->push_back(operand_.host_var);
    }
    return;
  }
  if (lhs_) lhs_->CollectHostVars(out);
  if (rhs_) rhs_->CollectHostVars(out);
}

std::string Predicate::ToString() const {
  switch (kind_) {
    case Kind::kCompare:
      if (op_ == CompareOp::kIsNull || op_ == CompareOp::kIsNotNull) {
        return field_ + " " + CompareOpSymbol(op_);
      }
      return field_ + " " + CompareOpSymbol(op_) + " " + operand_.ToString();
    case Kind::kAnd:
      return "(" + lhs_->ToString() + " AND " + rhs_->ToString() + ")";
    case Kind::kOr:
      return "(" + lhs_->ToString() + " OR " + rhs_->ToString() + ")";
    case Kind::kNot:
      return "(NOT " + lhs_->ToString() + ")";
  }
  return "?";
}

bool Predicate::operator==(const Predicate& other) const {
  if (kind_ != other.kind_) return false;
  if (kind_ == Kind::kCompare) {
    return field_ == other.field_ && op_ == other.op_ &&
           operand_ == other.operand_;
  }
  auto child_eq = [](const Predicate* a, const Predicate* b) {
    if ((a == nullptr) != (b == nullptr)) return false;
    return a == nullptr || *a == *b;
  };
  return child_eq(lhs_.get(), other.lhs_.get()) &&
         child_eq(rhs_.get(), other.rhs_.get());
}

}  // namespace dbpc
