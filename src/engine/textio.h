#ifndef DBPC_ENGINE_TEXTIO_H_
#define DBPC_ENGINE_TEXTIO_H_

#include <string>

#include "engine/database.h"

namespace dbpc {

/// Serializes a database instance to a line-oriented text form (the 1979
/// equivalent of an unload tape):
///
///   DATABASE <schema-name>.
///   RECORD <type> #<n> (FIELD = literal, ...) [IN <set> #<owner-n>, ...].
///   END DATABASE.
///
/// `#<n>` are per-dump sequence numbers (not storage ids); owners are
/// referenced by their sequence number, and records are emitted in
/// owner-before-member order so a load can connect as it goes. Member
/// order within chronological sets is preserved (across *all*
/// chronological sets a record belongs to). Fails with kUnsupported when
/// the schema's owner/member graph is cyclic: no owner-before-member
/// emission order exists, and silently dropping every record would lose
/// the database.
Result<std::string> DumpDatabaseText(const Database& db);

/// Loads a dump produced by DumpDatabaseText into an empty database over
/// `schema` (which must match the dump's structural expectations; all
/// constraints are enforced during the load). The schema name in the dump
/// is informational and not required to match.
Result<Database> LoadDatabaseText(const Schema& schema,
                                  const std::string& text);

}  // namespace dbpc

#endif  // DBPC_ENGINE_TEXTIO_H_
