#ifndef DBPC_ENGINE_DATABASE_H_
#define DBPC_ENGINE_DATABASE_H_

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "engine/predicate.h"
#include "schema/schema.h"
#include "storage/extent.h"
#include "storage/store.h"

namespace dbpc {

/// Cumulative operation counters. Benchmarks diff these to attribute cost
/// (e.g. the emulation strategy's extra record touches, paper section 2.1.2).
struct OpStats {
  uint64_t records_read = 0;
  uint64_t records_written = 0;
  uint64_t records_erased = 0;
  uint64_t members_scanned = 0;
  uint64_t links_changed = 0;
  /// Access-path index lookups (one per probed equality key).
  uint64_t index_probes = 0;
  /// Candidate records produced by index probes (bucket entries touched).
  uint64_t index_hits = 0;

  uint64_t Total() const {
    return records_read + records_written + records_erased + members_scanned +
           links_changed + index_probes + index_hits;
  }
};

/// Knobs for the engine's internal access-path indexes. Indexes are
/// trace-invisible: whenever a probe could change an observable outcome
/// (errors included) the engine falls back to a scan, so results are
/// byte-identical with indexing on or off — only OpStats differ.
struct IndexOptions {
  /// Master switch; off forces every access through scans.
  bool enabled = true;
  /// Build secondary indexes lazily for value-join target fields.
  bool auto_join_indexes = true;
};

/// A STORE request: new record contents plus the set occurrences it joins.
/// For each AUTOMATIC set the member participates in, `connect` must name
/// the owner (system-owned sets connect implicitly); MANUAL sets connect
/// only when requested.
struct StoreRequest {
  std::string type;
  FieldMap fields;
  /// set name -> owner record id.
  std::map<std::string, RecordId> connect;
};

/// A schema-conforming database instance: storage plus full enforcement of
/// the schema's structural rules and explicit integrity constraints
/// (paper section 3.1). All three data-model facades and the conversion
/// baselines operate through this one engine.
class Database {
 public:
  /// Validates the schema and creates an empty instance.
  static Result<Database> Create(Schema schema);

  const Schema& schema() const { return schema_; }

  // --- update operations ------------------------------------------------

  /// Stores a new record, connects it into sets, and enforces every
  /// applicable constraint. On success returns the record id.
  Result<RecordId> StoreRecord(const StoreRequest& request);

  /// Erases a record with CODASYL ERASE semantics: characterizing members
  /// are erased recursively, OPTIONAL members are disconnected, and
  /// MANDATORY (non-characterizing) members block the erase.
  Status EraseRecord(RecordId id);

  /// Updates fields of an existing record; re-sorts set positions when a
  /// set key changes and re-checks constraints.
  Status ModifyRecord(RecordId id, const FieldMap& updates);

  /// Connects `member` into the `set_name` occurrence owned by `owner`
  /// (MANUAL sets, or reconnect of OPTIONAL members).
  Status Connect(const std::string& set_name, RecordId member, RecordId owner);

  /// Disconnects `member` from `set_name`. Fails for MANDATORY sets.
  Status Disconnect(const std::string& set_name, RecordId member);

  // --- read operations ----------------------------------------------------

  bool Exists(RecordId id) const { return store_.Exists(id); }

  /// Record type name of `id`.
  Result<std::string> TypeOf(RecordId id) const;

  /// Field value, resolving VIRTUAL fields through their set to the owner
  /// (null when the record is unconnected). Unknown fields are errors.
  Result<Value> GetField(RecordId id, const std::string& field) const;

  /// All fields of the record including resolved virtual fields.
  Result<FieldMap> GetAllFields(RecordId id) const;

  /// Ordered members of a set occurrence. For system-owned sets pass
  /// `kSystemOwner` (or use SystemMembers).
  std::vector<RecordId> Members(const std::string& set_name,
                                RecordId owner) const;

  /// Like Members (including stats accounting) but returns a reference into
  /// storage instead of a copy. Invalidated by any database mutation; use
  /// only when no mutation happens while iterating.
  const std::vector<RecordId>& MembersRef(const std::string& set_name,
                                          RecordId owner) const;

  std::vector<RecordId> SystemMembers(const std::string& set_name) const {
    return Members(set_name, kSystemOwner);
  }

  /// Owner of `member` in `set_name`; 0 when not connected.
  RecordId OwnerOf(const std::string& set_name, RecordId member) const;

  /// All records of a type in insertion order (Access A via A scans).
  std::vector<RecordId> AllOfType(const std::string& type) const;

  /// Records of `type` satisfying `pred`.
  Result<std::vector<RecordId>> SelectWhere(const std::string& type,
                                            const Predicate& pred,
                                            const HostEnv& host_env) const;

  /// Number of live records across all types.
  size_t RecordCount() const { return store_.LiveCount(); }

  /// Field-getter closure for `id`, for use with Predicate::Evaluate.
  std::function<Result<Value>(const std::string&)> FieldGetter(
      RecordId id) const;

  const OpStats& stats() const { return stats_; }
  void ResetStats() { stats_ = OpStats(); }

  // --- access-path indexes ------------------------------------------------

  const IndexOptions& index_options() const { return index_options_; }
  void SetIndexOptions(IndexOptions options) { index_options_ = options; }

  /// Ids of live `type` records whose actual field `field` equals `value`
  /// under query (QueryCompare) semantics, ascending by id — i.e. exactly
  /// the ids an AllOfType scan with an equality test would keep, in the
  /// same order. Returns nullopt when no index can answer the probe
  /// exactly (disabled, unindexed field, NaN anywhere, or a probe/field
  /// type pairing whose equality is broader than key equality); the caller
  /// must then scan.
  std::optional<std::vector<RecordId>> ProbeIndex(const std::string& type,
                                                  const std::string& field,
                                                  const Value& value) const;

  /// Superset variant of ProbeIndex for callers that re-verify candidates
  /// (e.g. by evaluating the full predicate on them): may additionally be
  /// served from a single-field uniqueness index, whose display-form keys
  /// can collide, so the result may contain ids whose field is not equal
  /// to `value` — but it never misses one that is.
  std::optional<std::vector<RecordId>> ProbeCandidates(
      const std::string& type, const std::string& field,
      const Value& value) const;

  /// Ensures a secondary index exists for (type, field), building it from
  /// the store on first use (value-join support). Returns true when an
  /// index is available afterwards. No-op returning false when indexing is
  /// disabled, auto_join_indexes is off, or the field is not indexable
  /// (virtual or unknown).
  bool EnsureFieldIndex(const std::string& type, const std::string& field) const;

  /// (TYPE, FIELD) pairs with a currently usable secondary index, sorted.
  /// Single-field uniqueness constraints are reported too: their probes are
  /// served by the uniqueness index.
  std::vector<std::pair<std::string, std::string>> IndexedFields() const;

  /// Drops and rebuilds every access-path index (secondary and uniqueness)
  /// from the store. Call after bulk-loading through mutable_store().
  void RebuildIndexes();

  // --- bulk extent path ---------------------------------------------------

  /// Columnar snapshot of every live record of `type`: one column per
  /// actual (non-virtual) field of the schema type, in declaration order,
  /// rows ascending by id. A raw-store scan — no OpStats accounting — so
  /// diagnostic consumers can snapshot without disturbing the counters.
  /// Returns NotFound for an unknown record type.
  Result<ExtentTable> SnapshotExtents(const std::string& type) const;

  /// Bulk-loads every row of `table` into the store and rebuilds all
  /// access-path indexes once at the end (the extent loader behind
  /// "bulk-loading through mutable_store()"). Columns must name actual
  /// fields of the table's record type; values are stored as-is — like a
  /// mutable_store() load, nothing is coerced and no constraints or set
  /// memberships are checked, so callers stage validated rows. Returns
  /// the assigned record ids, ascending, one per row.
  Result<std::vector<RecordId>> BulkLoad(const ExtentTable& table);

  /// Direct storage access for the data translator and tests. Mutating
  /// through this bypasses constraint enforcement *and* index maintenance;
  /// call RebuildIndexes() afterwards.
  Store& mutable_store() { return store_; }
  const Store& raw_store() const { return store_; }

 private:
  explicit Database(Schema schema) : schema_(std::move(schema)) {}

  /// One secondary access path over an actual field: canonical equality key
  /// -> live record ids ascending. For the probe shapes ProbeIndex accepts,
  /// bucket membership coincides exactly with QueryCompare equality.
  struct FieldIndex {
    /// Field declared INT/DOUBLE: keys are canonical "%.17g" renderings of
    /// the value-as-double (QueryCompare's equality classes). String
    /// fields key on the exact text.
    bool numeric = false;
    /// Live values that break the key-equality <=> value-equality
    /// correspondence (stored NaN compares equal to every number; a value
    /// whose dynamic type contradicts the declared field type can match
    /// across keys). Probes are refused while nonzero.
    uint64_t unusable = 0;
    std::unordered_map<std::string, std::vector<RecordId>> buckets;
  };

  /// A single-field uniqueness constraint whose unique_index_ doubles as an
  /// equality probe path for SelectWhere (no duplicate secondary index).
  struct UniqueProbe {
    std::string constraint;
    FieldType type = FieldType::kString;
    /// Same role as FieldIndex::unusable; additionally counts INT values at
    /// or beyond 2^53, where distinct ints collapse under QueryCompare's
    /// double comparison but keep distinct ToLiteral keys.
    uint64_t unusable = 0;
  };

  /// Key string for a uniqueness constraint, or nullopt if any field null.
  Result<std::optional<std::string>> UniqueKeyOf(
      const ConstraintDef& c, const FieldMap& fields) const;

  /// Registers eager secondary indexes (set key fields, multi-field
  /// uniqueness components) and uniqueness probe paths at creation.
  void RegisterAutoIndexes();

  /// Adds / removes `rec`'s entries in every index registered for its type.
  void IndexInsert(const StoredRecord& rec);
  void IndexRemove(const StoredRecord& rec);

  /// Secondary index for (type, field), both upper case; null when absent.
  FieldIndex* FindFieldIndex(const std::string& type_upper,
                             const std::string& field_upper) const;

  /// Exact-probe key for `value` against a field of the index's class, or
  /// nullopt when key equality would not capture QueryCompare equality.
  static std::optional<std::string> ProbeKey(const FieldIndex& index,
                                             const Value& value);

  /// Probe via a single-field uniqueness constraint. Result may include
  /// false positives (display-form keys collide) but never misses a match;
  /// callers must re-verify. nullopt when the probe cannot be served.
  std::optional<std::vector<RecordId>> ProbeUnique(const UniqueProbe& probe,
                                                   const Value& value) const;

  /// Index-served candidate superset for `pred` on `type`, or nullopt when
  /// the engine must scan. Guards ensure a probe is only used when the
  /// scan could not have surfaced an error the probe would hide.
  std::optional<std::vector<RecordId>> SelectCandidates(
      const std::string& type, const Predicate& pred,
      const HostEnv& host_env) const;

  /// Compares two member records by a set's key fields.
  int CompareByKeys(const SetDef& set, RecordId a, RecordId b) const;

  /// Position at which `member` belongs in `set`'s occurrence of `owner`;
  /// fails on duplicate full key (paper section 4.2).
  Result<size_t> SortedPosition(const SetDef& set, RecordId owner,
                                RecordId member) const;

  Status CheckCardinality(const ConstraintDef& c, const SetDef& set,
                          RecordId owner, const FieldMap& new_member_fields,
                          RecordId exclude_member) const;

  Status ConnectInternal(const SetDef& set, RecordId member, RecordId owner);

  Schema schema_;
  Store store_;
  /// constraint name -> serialized key -> record id.
  std::unordered_map<std::string, std::unordered_map<std::string, RecordId>>
      unique_index_;
  IndexOptions index_options_;
  /// "TYPE\x1fFIELD" -> secondary index. Ordered so one type's indexes form
  /// a contiguous prefix range; mutable for lazily built join indexes.
  mutable std::map<std::string, FieldIndex> field_indexes_;
  /// "TYPE\x1fFIELD" -> uniqueness probe path for that field.
  std::map<std::string, UniqueProbe> unique_probes_;
  mutable OpStats stats_;
};

}  // namespace dbpc

#endif  // DBPC_ENGINE_DATABASE_H_
