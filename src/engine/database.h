#ifndef DBPC_ENGINE_DATABASE_H_
#define DBPC_ENGINE_DATABASE_H_

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "engine/predicate.h"
#include "schema/schema.h"
#include "storage/store.h"

namespace dbpc {

/// Cumulative operation counters. Benchmarks diff these to attribute cost
/// (e.g. the emulation strategy's extra record touches, paper section 2.1.2).
struct OpStats {
  uint64_t records_read = 0;
  uint64_t records_written = 0;
  uint64_t records_erased = 0;
  uint64_t members_scanned = 0;
  uint64_t links_changed = 0;

  uint64_t Total() const {
    return records_read + records_written + records_erased + members_scanned +
           links_changed;
  }
};

/// A STORE request: new record contents plus the set occurrences it joins.
/// For each AUTOMATIC set the member participates in, `connect` must name
/// the owner (system-owned sets connect implicitly); MANUAL sets connect
/// only when requested.
struct StoreRequest {
  std::string type;
  FieldMap fields;
  /// set name -> owner record id.
  std::map<std::string, RecordId> connect;
};

/// A schema-conforming database instance: storage plus full enforcement of
/// the schema's structural rules and explicit integrity constraints
/// (paper section 3.1). All three data-model facades and the conversion
/// baselines operate through this one engine.
class Database {
 public:
  /// Validates the schema and creates an empty instance.
  static Result<Database> Create(Schema schema);

  const Schema& schema() const { return schema_; }

  // --- update operations ------------------------------------------------

  /// Stores a new record, connects it into sets, and enforces every
  /// applicable constraint. On success returns the record id.
  Result<RecordId> StoreRecord(const StoreRequest& request);

  /// Erases a record with CODASYL ERASE semantics: characterizing members
  /// are erased recursively, OPTIONAL members are disconnected, and
  /// MANDATORY (non-characterizing) members block the erase.
  Status EraseRecord(RecordId id);

  /// Updates fields of an existing record; re-sorts set positions when a
  /// set key changes and re-checks constraints.
  Status ModifyRecord(RecordId id, const FieldMap& updates);

  /// Connects `member` into the `set_name` occurrence owned by `owner`
  /// (MANUAL sets, or reconnect of OPTIONAL members).
  Status Connect(const std::string& set_name, RecordId member, RecordId owner);

  /// Disconnects `member` from `set_name`. Fails for MANDATORY sets.
  Status Disconnect(const std::string& set_name, RecordId member);

  // --- read operations ----------------------------------------------------

  bool Exists(RecordId id) const { return store_.Exists(id); }

  /// Record type name of `id`.
  Result<std::string> TypeOf(RecordId id) const;

  /// Field value, resolving VIRTUAL fields through their set to the owner
  /// (null when the record is unconnected). Unknown fields are errors.
  Result<Value> GetField(RecordId id, const std::string& field) const;

  /// All fields of the record including resolved virtual fields.
  Result<FieldMap> GetAllFields(RecordId id) const;

  /// Ordered members of a set occurrence. For system-owned sets pass
  /// `kSystemOwner` (or use SystemMembers).
  std::vector<RecordId> Members(const std::string& set_name,
                                RecordId owner) const;

  std::vector<RecordId> SystemMembers(const std::string& set_name) const {
    return Members(set_name, kSystemOwner);
  }

  /// Owner of `member` in `set_name`; 0 when not connected.
  RecordId OwnerOf(const std::string& set_name, RecordId member) const;

  /// All records of a type in insertion order (Access A via A scans).
  std::vector<RecordId> AllOfType(const std::string& type) const;

  /// Records of `type` satisfying `pred`.
  Result<std::vector<RecordId>> SelectWhere(const std::string& type,
                                            const Predicate& pred,
                                            const HostEnv& host_env) const;

  /// Number of live records across all types.
  size_t RecordCount() const { return store_.LiveCount(); }

  /// Field-getter closure for `id`, for use with Predicate::Evaluate.
  std::function<Result<Value>(const std::string&)> FieldGetter(
      RecordId id) const;

  const OpStats& stats() const { return stats_; }
  void ResetStats() { stats_ = OpStats(); }

  /// Direct storage access for the data translator and tests. Mutating
  /// through this bypasses constraint enforcement.
  Store& mutable_store() { return store_; }
  const Store& raw_store() const { return store_; }

 private:
  explicit Database(Schema schema) : schema_(std::move(schema)) {}

  /// Key string for a uniqueness constraint, or nullopt if any field null.
  Result<std::optional<std::string>> UniqueKeyOf(
      const ConstraintDef& c, const FieldMap& fields) const;

  /// Compares two member records by a set's key fields.
  int CompareByKeys(const SetDef& set, RecordId a, RecordId b) const;

  /// Position at which `member` belongs in `set`'s occurrence of `owner`;
  /// fails on duplicate full key (paper section 4.2).
  Result<size_t> SortedPosition(const SetDef& set, RecordId owner,
                                RecordId member) const;

  Status CheckCardinality(const ConstraintDef& c, const SetDef& set,
                          RecordId owner, const FieldMap& new_member_fields,
                          RecordId exclude_member) const;

  Status ConnectInternal(const SetDef& set, RecordId member, RecordId owner);

  Schema schema_;
  Store store_;
  /// constraint name -> serialized key -> record id.
  std::unordered_map<std::string, std::unordered_map<std::string, RecordId>>
      unique_index_;
  mutable OpStats stats_;
};

}  // namespace dbpc

#endif  // DBPC_ENGINE_DATABASE_H_
