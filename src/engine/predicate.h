#ifndef DBPC_ENGINE_PREDICATE_H_
#define DBPC_ENGINE_PREDICATE_H_

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/value.h"

namespace dbpc {

/// Comparison operators usable in record qualifications.
enum class CompareOp {
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kIsNull,
  kIsNotNull,
};

const char* CompareOpSymbol(CompareOp op);

/// Right-hand side of a comparison: a literal or a reference to a host
/// program variable (":NAME" in DML text). Host variables are resolved at
/// evaluation time through a caller-supplied environment.
struct Operand {
  enum class Kind { kLiteral, kHostVar };
  Kind kind = Kind::kLiteral;
  Value literal;
  std::string host_var;

  static Operand Literal(Value v) {
    Operand o;
    o.kind = Kind::kLiteral;
    o.literal = std::move(v);
    return o;
  }
  static Operand HostVar(std::string name) {
    Operand o;
    o.kind = Kind::kHostVar;
    o.host_var = std::move(name);
    return o;
  }

  bool operator==(const Operand&) const = default;

  std::string ToString() const;
};

/// Resolves host variable names to values during predicate evaluation.
using HostEnv = std::function<Result<Value>(const std::string&)>;

/// Returns an environment that fails on every lookup; used for predicates
/// known to be host-variable-free.
HostEnv EmptyHostEnv();

/// Boolean qualification over one record's fields:
///   expr := comparison | expr AND expr | expr OR expr | NOT expr
/// Comparisons with null operands are false (except IS NULL / IS NOT NULL),
/// the conventional three-valued-collapsed semantics.
class Predicate {
 public:
  enum class Kind { kCompare, kAnd, kOr, kNot };

  /// An empty comparison placeholder; assign a real predicate before use.
  Predicate() = default;

  /// Leaf comparison `field <op> rhs`.
  static Predicate Compare(std::string field, CompareOp op, Operand rhs);
  static Predicate And(Predicate lhs, Predicate rhs);
  static Predicate Or(Predicate lhs, Predicate rhs);
  static Predicate Not(Predicate inner);

  Predicate(const Predicate& other);
  Predicate& operator=(const Predicate& other);
  Predicate(Predicate&&) = default;
  Predicate& operator=(Predicate&&) = default;

  Kind kind() const { return kind_; }
  const std::string& field() const { return field_; }
  CompareOp op() const { return op_; }
  const Operand& operand() const { return operand_; }
  /// Left child for kAnd/kOr, the single child for kNot.
  const Predicate* lhs_child() const { return lhs_.get(); }
  const Predicate* rhs_child() const { return rhs_.get(); }

  /// Evaluates against a record whose field values are produced by
  /// `get_field` (which resolves virtual fields etc.).
  Result<bool> Evaluate(
      const std::function<Result<Value>(const std::string&)>& get_field,
      const HostEnv& host_env) const;

  /// Renames every reference to `old_field` to `new_field` (conversion
  /// rule support). Returns the number of references rewritten.
  int RenameField(const std::string& old_field, const std::string& new_field);

  /// Collects the field names referenced, in first-occurrence order.
  void CollectFields(std::vector<std::string>* out) const;

  /// Collects host variable names referenced.
  void CollectHostVars(std::vector<std::string>* out) const;

  /// DML-dialect text, e.g. "AGE > 30 AND DIV-NAME = :D".
  std::string ToString() const;

  bool operator==(const Predicate& other) const;

 private:
  Kind kind_ = Kind::kCompare;
  std::string field_;
  CompareOp op_ = CompareOp::kEq;
  Operand operand_;
  std::unique_ptr<Predicate> lhs_;
  std::unique_ptr<Predicate> rhs_;
};

/// Compares two values with query semantics: numeric comparison when both
/// sides are (coercible to) numbers, string comparison otherwise. Returns
/// nullopt when either side is null.
std::optional<int> QueryCompare(const Value& lhs, const Value& rhs);

/// The numeric interpretation a value gets inside QueryCompare: native
/// numbers as-is, strings only when std::from_chars consumes them fully.
std::optional<double> QueryNumeric(const Value& v);

/// Canonical key text for a number under QueryCompare equality: equal
/// doubles produce equal keys and distinct doubles distinct keys ("%.17g"
/// round-trips; -0 collapses onto +0). NaN is the caller's problem — it
/// compares equal to every number, so no key can represent it.
std::string QueryNumericKey(double d);

/// Collects the top-level AND conjuncts of `pred` that are plain equality
/// comparisons (`field = literal` / `field = :hostvar`), left to right.
/// Subtrees under OR/NOT contribute nothing: only conjuncts that must hold
/// for the whole predicate to hold are returned, which is what makes them
/// usable as index probes.
void CollectEqualityConjuncts(const Predicate& pred,
                              std::vector<const Predicate*>* out);

}  // namespace dbpc

#endif  // DBPC_ENGINE_PREDICATE_H_
