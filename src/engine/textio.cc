#include "engine/textio.h"

#include <algorithm>
#include <map>
#include <set>

#include "common/lexer.h"
#include "common/string_util.h"

namespace dbpc {

namespace {

/// Record types ordered so set owners precede members (load connects
/// AUTOMATIC memberships as it stores).
Result<std::vector<std::string>> TopoTypes(const Schema& schema) {
  std::vector<std::string> types;
  std::map<std::string, int> indegree;
  for (const RecordTypeDef& r : schema.record_types()) {
    types.push_back(ToUpper(r.name));
    indegree[ToUpper(r.name)] = 0;
  }
  std::multimap<std::string, std::string> edges;
  for (const SetDef& s : schema.sets()) {
    if (s.system_owned() || EqualsIgnoreCase(s.owner, s.member)) continue;
    edges.emplace(ToUpper(s.owner), ToUpper(s.member));
    ++indegree[ToUpper(s.member)];
  }
  std::vector<std::string> order;
  std::vector<std::string> ready;
  for (const std::string& t : types) {
    if (indegree[t] == 0) ready.push_back(t);
  }
  while (!ready.empty()) {
    std::string t = ready.front();
    ready.erase(ready.begin());
    order.push_back(t);
    auto [lo, hi] = edges.equal_range(t);
    for (auto it = lo; it != hi; ++it) {
      if (--indegree[it->second] == 0) ready.push_back(it->second);
    }
  }
  if (order.size() != types.size()) {
    return Status::Unsupported("cyclic owner/member graph");
  }
  return order;
}

/// Records of `type` in an order that preserves chronological-set member
/// sequences on reload. A record may belong to several chronological sets
/// (e.g. OFFERING in both CRS-OFF and SEM-OFF), and the loader replays
/// every membership in dump order, so the emitted order must be consistent
/// with every occurrence's member sequence at once: a topological sort over
/// the successor edges of each occurrence, storage order breaking ties.
std::vector<RecordId> OrderedRecords(const Database& db,
                                     const std::string& type) {
  std::vector<const SetDef*> chronos;
  for (const SetDef* s : db.schema().SetsWithMember(type)) {
    if (s->ordering == SetOrdering::kChronological) chronos.push_back(s);
  }
  std::vector<RecordId> all = db.AllOfType(type);
  if (chronos.empty()) return all;
  std::map<RecordId, std::vector<RecordId>> successors;
  std::map<RecordId, int> indegree;
  for (RecordId id : all) indegree[id] = 0;
  for (const SetDef* chrono : chronos) {
    std::vector<RecordId> owners =
        chrono->system_owned()
            ? std::vector<RecordId>{kSystemOwner}
            : db.AllOfType(ToUpper(chrono->owner));
    for (RecordId owner : owners) {
      std::vector<RecordId> members = db.Members(ToUpper(chrono->name), owner);
      for (size_t i = 1; i < members.size(); ++i) {
        successors[members[i - 1]].push_back(members[i]);
        ++indegree[members[i]];
      }
    }
  }
  std::vector<RecordId> ordered;
  std::vector<RecordId> ready;
  for (RecordId id : all) {
    if (indegree[id] == 0) ready.push_back(id);
  }
  while (!ready.empty()) {
    auto it = std::min_element(ready.begin(), ready.end());
    RecordId id = *it;
    ready.erase(it);
    ordered.push_back(id);
    for (RecordId next : successors[id]) {
      if (--indegree[next] == 0) ready.push_back(next);
    }
  }
  if (ordered.size() != all.size()) {
    // Conflicting chronological orders (only reachable through MANUAL
    // connects made in opposing sequences); no single emission order can
    // reproduce both, so fall back to storage order for the remainder.
    std::set<RecordId> seen(ordered.begin(), ordered.end());
    for (RecordId id : all) {
      if (!seen.count(id)) ordered.push_back(id);
    }
  }
  return ordered;
}

}  // namespace

Result<std::string> DumpDatabaseText(const Database& db) {
  std::string out = "DATABASE " + db.schema().name() + ".\n";
  DBPC_ASSIGN_OR_RETURN(std::vector<std::string> types, TopoTypes(db.schema()));
  std::map<RecordId, size_t> seq;
  for (const std::string& type : types) {
    for (RecordId id : OrderedRecords(db, type)) {
      size_t n = seq.size() + 1;
      seq[id] = n;
      const StoredRecord* rec = db.raw_store().Get(id);
      out += "RECORD " + rec->type + " " + std::to_string(n) + " (";
      bool first = true;
      for (const auto& [field, value] : rec->fields) {
        if (value.is_null()) continue;
        if (!first) out += ", ";
        first = false;
        out += field + " = " + value.ToLiteral();
      }
      out += ")";
      for (const SetDef& set : db.schema().sets()) {
        if (set.system_owned()) continue;
        if (!EqualsIgnoreCase(set.member, rec->type)) continue;
        RecordId owner = db.OwnerOf(set.name, id);
        if (owner == 0) continue;
        auto it = seq.find(owner);
        if (it == seq.end()) continue;  // owner not dumped (shouldn't happen)
        out += " IN " + ToUpper(set.name) + " " + std::to_string(it->second);
      }
      out += ".\n";
    }
  }
  out += "END DATABASE.\n";
  return out;
}

Result<Database> LoadDatabaseText(const Schema& schema,
                                  const std::string& text) {
  DBPC_ASSIGN_OR_RETURN(Database db, Database::Create(schema));
  DBPC_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(text));
  TokenCursor cur(std::move(tokens));
  DBPC_RETURN_IF_ERROR(cur.ExpectIdent("DATABASE"));
  DBPC_RETURN_IF_ERROR(cur.TakeIdentifier("schema name").status());
  DBPC_RETURN_IF_ERROR(cur.ExpectPunct("."));

  std::map<int64_t, RecordId> seq_to_id;
  while (cur.ConsumeIdent("RECORD")) {
    StoreRequest request;
    DBPC_ASSIGN_OR_RETURN(request.type, cur.TakeIdentifier("record type"));
    DBPC_ASSIGN_OR_RETURN(int64_t seq, cur.TakeInteger("sequence number"));
    DBPC_RETURN_IF_ERROR(cur.ExpectPunct("("));
    if (!cur.Peek().IsPunct(")")) {
      do {
        DBPC_ASSIGN_OR_RETURN(std::string field,
                              cur.TakeIdentifier("field name"));
        DBPC_RETURN_IF_ERROR(cur.ExpectPunct("="));
        const Token& t = cur.Peek();
        Value value;
        switch (t.kind) {
          case TokenKind::kInteger:
            value = Value::Int(t.int_value);
            cur.Next();
            break;
          case TokenKind::kFloat:
            value = Value::Double(t.float_value);
            cur.Next();
            break;
          case TokenKind::kString:
            value = Value::String(t.text);
            cur.Next();
            break;
          case TokenKind::kPunct:
            if (t.text == "-") {
              cur.Next();
              const Token& num = cur.Peek();
              if (num.kind == TokenKind::kInteger) {
                value = Value::Int(-num.int_value);
              } else if (num.kind == TokenKind::kFloat) {
                value = Value::Double(-num.float_value);
              } else {
                return cur.ErrorHere("expected number after '-'");
              }
              cur.Next();
              break;
            }
            return cur.ErrorHere("expected literal");
          case TokenKind::kIdentifier:
            if (t.text == "NULL") {
              cur.Next();
              break;
            }
            return cur.ErrorHere("expected literal");
          default:
            return cur.ErrorHere("expected literal");
        }
        request.fields[ToUpper(field)] = std::move(value);
      } while (cur.ConsumePunct(","));
    }
    DBPC_RETURN_IF_ERROR(cur.ExpectPunct(")"));
    while (cur.ConsumeIdent("IN")) {
      DBPC_ASSIGN_OR_RETURN(std::string set_name,
                            cur.TakeIdentifier("set name"));
      DBPC_ASSIGN_OR_RETURN(int64_t owner_seq,
                            cur.TakeInteger("owner sequence number"));
      auto it = seq_to_id.find(owner_seq);
      if (it == seq_to_id.end()) {
        return Status::ParseError("record " + std::to_string(seq) +
                                  " references owner " +
                                  std::to_string(owner_seq) +
                                  " which has not been loaded yet");
      }
      request.connect[ToUpper(set_name)] = it->second;
    }
    DBPC_RETURN_IF_ERROR(cur.ExpectPunct("."));
    Result<RecordId> id = db.StoreRecord(request);
    if (!id.ok()) {
      return Status(id.status().code(),
                    "loading record " + std::to_string(seq) + ": " +
                        id.status().message());
    }
    seq_to_id[seq] = *id;
  }
  DBPC_RETURN_IF_ERROR(cur.ExpectIdent("END"));
  DBPC_RETURN_IF_ERROR(cur.ExpectIdent("DATABASE"));
  DBPC_RETURN_IF_ERROR(cur.ExpectPunct("."));
  if (!cur.AtEnd()) return cur.ErrorHere("trailing input after END DATABASE");
  return db;
}

}  // namespace dbpc
