#ifndef DBPC_CONVERT_CONVERTER_H_
#define DBPC_CONVERT_CONVERTER_H_

#include <string>
#include <vector>

#include "analyze/analyzer.h"
#include "common/span.h"
#include "lang/ast.h"
#include "restructure/transformation.h"
#include "schema/schema.h"

namespace dbpc {

/// One classified difference between two schemas (output of the Conversion
/// Analyzer of Figure 4.1). The restructuring *definition* is an input to
/// the framework; classification is what drives rule selection and what an
/// analyst reviews.
struct SchemaChange {
  std::string category;  ///< e.g. "record-type-added", "set-order-changed"
  std::string detail;

  std::string ToString() const { return category + ": " + detail; }
};

/// Diffs two schemas into classified changes. Renames and structural
/// reshapes appear as paired add/remove entries — recovering intent from a
/// diff alone is exactly why the framework takes an explicit restructuring
/// definition (transformation plan) as input.
std::vector<SchemaChange> ClassifySchemaChanges(const Schema& source,
                                                const Schema& target);

/// Output of one program conversion.
struct ConversionResult {
  /// The converted program (valid against the target schema) — meaningful
  /// when `outcome` is not kNotConvertible.
  Program converted;
  /// The analyzer's report on the source program.
  Analysis analysis;
  /// Notes accumulated by transformation rewrite rules for the analyst.
  RewriteNotes notes;
  /// Final classification: the analyzer's verdict tightened by any rewrite
  /// rule that required analyst intervention.
  Convertibility outcome = Convertibility::kAutomatic;
  /// Head text of every numbered source statement (index ==
  /// Provenance::source_stmt_id on the converted program's statements);
  /// empty when the conversion was refused before numbering. See
  /// convert/provenance.h.
  std::vector<std::string> source_statements;
  /// Wall time spent in the Program Analyzer / in rule rewriting, for the
  /// per-stage latency metrics (common/metrics.h).
  uint64_t analyze_micros = 0;
  uint64_t convert_micros = 0;
};

/// The Program Converter of Figure 4.1: selects and applies transformation
/// rules (owned by the plan's transformations) to map the source program
/// representation to the target program representation.
class ProgramConverter {
 public:
  /// `plan` transformations are applied in order; the converter computes
  /// the intermediate schemas. Transformations must outlive the converter.
  static Result<ProgramConverter> Create(
      Schema source, std::vector<const Transformation*> plan,
      AnalyzerOptions analyzer_options = {});

  /// Analyzes and converts one program. A non-OK status means the program
  /// or plan is malformed; inconvertibility is reported in the result.
  /// With an enabled `span`, emits Figure 4.1 stage spans
  /// (program_analyzer, program_converter) with per-transformation
  /// subspans and a per-rewrite-rule subspan for every statement a step
  /// produced or modified, provenance attached as attributes.
  Result<ConversionResult> Convert(const Program& source_program,
                                   SpanContext span = {}) const;

  const Schema& source_schema() const { return schemas_.front(); }
  const Schema& target_schema() const { return schemas_.back(); }
  const std::vector<SchemaChange>& changes() const { return changes_; }

 private:
  ProgramConverter(std::vector<Schema> schemas,
                   std::vector<const Transformation*> plan,
                   AnalyzerOptions analyzer_options)
      : schemas_(std::move(schemas)),
        plan_(std::move(plan)),
        analyzer_options_(analyzer_options) {
    changes_ = ClassifySchemaChanges(schemas_.front(), schemas_.back());
  }

  /// source schema, then the schema after each plan step.
  std::vector<Schema> schemas_;
  std::vector<const Transformation*> plan_;
  AnalyzerOptions analyzer_options_;
  std::vector<SchemaChange> changes_;
};

}  // namespace dbpc

#endif  // DBPC_CONVERT_CONVERTER_H_
