#ifndef DBPC_CONVERT_TEMPLATE_CACHE_H_
#define DBPC_CONVERT_TEMPLATE_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/status.h"
#include "convert/converter.h"
#include "optimize/optimizer.h"

namespace dbpc {

/// The template-level conversion memo (ROADMAP "Template-level conversion
/// caching"): at fleet scale most submitted programs share statement
/// templates, so the full analyze/convert/optimize cost of a template is
/// paid once and every further program with the same canonical body reuses
/// the converted+optimized fragment.
///
/// Key contract (see DESIGN.md). An entry is addressed by a 64-bit
/// fingerprint over two parts:
///
///  - the *conversion context*: source and target schema DDL, every
///    restructuring plan step's name + description, the option switches
///    that change converted output (optimizer on/off, template lifting,
///    index configuration), and the full text of the statistics catalog.
///    The statistics text is re-fingerprinted on every lookup, so mutating
///    the catalog in place — or pointing a new supervisor with different
///    options at a shared cache — can never serve a stale optimized plan.
///  - the *canonical program body*: the program's source rendering minus
///    its name line. `Stmt::ToSource` never renders `Provenance` and
///    `Stmt::operator==` never compares it, so two programs differing only
///    in name or provenance stamps share one entry by construction.
///
/// Hash collisions cannot serve wrong answers: each entry stores its full
/// context string and canonical body, and a hit is only declared when both
/// compare equal (the body via `Stmt::operator==`). A mismatch is a miss.
///
/// Thread safety: every method is safe to call concurrently; the service
/// shares one instance across its whole worker pool. Internally the map is
/// sharded by key with one mutex, one LRU list and one hash map per shard.

/// FNV-1a over `text`. Stable across runs and platforms; the basis of
/// every cache fingerprint.
uint64_t Fingerprint64(std::string_view text);

/// Order-dependent combination of two fingerprints.
uint64_t MixFingerprints(uint64_t a, uint64_t b);

/// The program body's canonical source form: `Program::ToSource()` minus
/// the `PROGRAM <name>.` line. Provenance is excluded because ToSource
/// never renders it (lang/ast.h).
std::string CanonicalProgramText(const Program& program);

struct TemplateCacheOptions {
  /// Serve hits. When false the service runs rules-only (every program
  /// pays the full pipeline); the supervisor knob is the null pointer.
  bool enabled = true;
  /// Lock shards. More shards cut contention across worker threads.
  int shards = 8;
  /// Total cached templates across all shards; least recently used
  /// entries are evicted per shard once its share (capacity/shards,
  /// at least 1) fills up.
  int capacity = 4096;

  Status Validate() const;
};

/// Cumulative counters, also mirrored into the supervisor's
/// MetricsRegistry under cache.* (hits/misses/evictions/invalidations).
struct TemplateCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t inserts = 0;
  uint64_t evictions = 0;
  uint64_t invalidations = 0;  ///< entries dropped by Clear()
  uint64_t entries = 0;        ///< currently resident
};

/// One memoized conversion. The converted program is stored with an empty
/// name (re-stamped per program on every hit) and zeroed stage timings
/// (a hit spends no analyzer/converter time). Provenance ids stored on
/// `result.converted` are valid for every program that hits this entry:
/// the canonical-body equality check guarantees statement-for-statement
/// identical sources, so `StampSourceProvenance` would number them
/// identically.
struct CachedConversion {
  std::string context;             ///< full key material, for verification
  std::vector<Stmt> canonical_body;  ///< compared via Stmt::operator==
  ConversionResult result;
  OptimizerStats optimizer_stats;
  bool accepted = false;
};

class TemplateCache {
 public:
  explicit TemplateCache(TemplateCacheOptions options = {});
  TemplateCache(const TemplateCache&) = delete;
  TemplateCache& operator=(const TemplateCache&) = delete;

  /// Returns the entry for `key` after verifying that its stored context
  /// and canonical body match (`program.body` via Stmt::operator==, which
  /// excludes Provenance); null on miss or verification failure. The
  /// returned entry is immutable and stays alive even if evicted
  /// concurrently.
  std::shared_ptr<const CachedConversion> Lookup(uint64_t key,
                                                 std::string_view context,
                                                 const Program& program) {
    return Lookup(key, context, std::string_view(), program);
  }

  /// Same, with the context supplied in two pieces (`prefix` then
  /// `suffix`, compared against the stored context without concatenating):
  /// the supervisor's hot path passes its kilobyte Create-time prefix and
  /// the per-call statistics text without building a combined string.
  std::shared_ptr<const CachedConversion> Lookup(uint64_t key,
                                                 std::string_view prefix,
                                                 std::string_view suffix,
                                                 const Program& program);

  /// Inserts (or refreshes) `key`. Returns the number of entries evicted
  /// to make room.
  size_t Insert(uint64_t key, CachedConversion entry);

  /// Drops every entry (explicit invalidation, e.g. after swapping the
  /// restructuring plan wholesale). Returns the number dropped. Note that
  /// ordinary reconfiguration never needs this: plan, options and
  /// statistics are folded into the key, so stale entries simply stop
  /// being addressed.
  size_t Clear();

  TemplateCacheStats Stats() const;
  const TemplateCacheOptions& options() const { return options_; }

 private:
  struct Shard {
    std::mutex mu;
    /// Front = most recently used.
    std::list<std::pair<uint64_t, std::shared_ptr<const CachedConversion>>>
        lru;
    std::unordered_map<
        uint64_t,
        std::list<std::pair<uint64_t,
                            std::shared_ptr<const CachedConversion>>>::iterator>
        index;
  };

  Shard& ShardFor(uint64_t key) {
    return *shards_[static_cast<size_t>(key) % shards_.size()];
  }

  TemplateCacheOptions options_;
  size_t per_shard_capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;

  mutable std::atomic<uint64_t> hits_{0};
  mutable std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> inserts_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> invalidations_{0};
};

}  // namespace dbpc

#endif  // DBPC_CONVERT_TEMPLATE_CACHE_H_
