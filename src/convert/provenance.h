#ifndef DBPC_CONVERT_PROVENANCE_H_
#define DBPC_CONVERT_PROVENANCE_H_

#include <string>
#include <vector>

#include "lang/ast.h"

namespace dbpc {

/// Statement-level conversion provenance (paper Figure 4.1: the supervisor
/// must be able to explain what was converted and how). The converter
/// numbers the source statements, every plan step stamps the statements it
/// produced or modified, and the result is a total map from emitted
/// statement to (source statement, strategy, rule) — surfaced by
/// `dbpcc --provenance` and embedded as attributes on rewrite spans.

/// A statement's *head text*: its source form with nested blocks elided
/// (an IF renders its guard, not its branches). The identity used both to
/// detect which statements a rewrite step touched and to show a statement
/// on one listing line.
std::string StmtHeadText(const Stmt& stmt);

/// Numbers every statement of `program` pre-order and stamps it with
/// Provenance{id, strategy, rule}. Returns the head text of each numbered
/// statement (index == source_stmt_id), the "source" column of listings.
std::vector<std::string> StampSourceProvenance(Program* program,
                                               const std::string& strategy,
                                               const std::string& rule);

/// One statement a rewrite step produced or modified.
struct StampedRewrite {
  int source_stmt_id = -1;
  std::string rule;
  std::string head;  ///< head text of the emitted statement
};

/// Diffs `after` against the pre-step snapshot `before` (by head text,
/// multiset semantics) and stamps every new or modified statement with
/// `rule`: a statement already carrying provenance keeps its source id; a
/// synthesized one inherits the id of the nearest preceding stamped
/// statement (falling back to 0 so the map stays total). Returns the
/// statements stamped, for per-rule span emission.
std::vector<StampedRewrite> StampRewriteStep(const Program& before,
                                             Program* after,
                                             const std::string& strategy,
                                             const std::string& rule);

/// Overwrites the strategy of every stamped statement; the emulator reuses
/// the converter's output and re-tags it as its own.
void RestampStrategy(Program* program, const std::string& strategy);

/// Statements lacking provenance (0 for any converter-emitted program).
size_t UnstampedCount(const Program& program);

/// Annotated side-by-side listing: every emitted statement with its source
/// statement and the rule chain that produced it (dbpcc --provenance).
/// `source_statements` is StampSourceProvenance's return value.
std::string ProvenanceListing(const std::string& program_name,
                              const std::vector<std::string>& source_statements,
                              const Program& converted);

}  // namespace dbpc

#endif  // DBPC_CONVERT_PROVENANCE_H_
