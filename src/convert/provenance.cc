#include "convert/provenance.h"

#include <functional>
#include <map>

#include "common/string_util.h"

namespace dbpc {

namespace {

/// Pre-order walk passing each statement to `fn`; the traversal order is
/// the numbering order (matches VisitStmtsMutable).
void Walk(std::vector<Stmt>* body, const std::function<void(Stmt*)>& fn) {
  for (Stmt& s : *body) {
    fn(&s);
    Walk(&s.body, fn);
    Walk(&s.else_body, fn);
  }
}

void WalkConst(const std::vector<Stmt>& body,
               const std::function<void(const Stmt&)>& fn) {
  for (const Stmt& s : body) {
    fn(s);
    WalkConst(s.body, fn);
    WalkConst(s.else_body, fn);
  }
}

}  // namespace

std::string StmtHeadText(const Stmt& stmt) {
  Stmt head = stmt;
  head.body.clear();
  head.else_body.clear();
  std::string out;
  head.AppendSource(&out, 0);
  // AppendSource renders one '.'-terminated line for block-less statements;
  // block heads render their opening line first. Either way the first line
  // is the head.
  size_t newline = out.find('\n');
  if (newline != std::string::npos) out.resize(newline);
  return Trim(out);
}

std::vector<std::string> StampSourceProvenance(Program* program,
                                               const std::string& strategy,
                                               const std::string& rule) {
  std::vector<std::string> heads;
  Walk(&program->body, [&](Stmt* s) {
    Provenance p;
    p.source_stmt_id = static_cast<int>(heads.size());
    p.strategy = strategy;
    p.rule = rule;
    s->prov = std::move(p);
    heads.push_back(StmtHeadText(*s));
  });
  return heads;
}

std::vector<StampedRewrite> StampRewriteStep(const Program& before,
                                             Program* after,
                                             const std::string& strategy,
                                             const std::string& rule) {
  // Multiset of pre-step head texts: statements whose head text survives
  // verbatim were carried through (possibly moved); the rest are this
  // step's work.
  std::map<std::string, int> carried;
  WalkConst(before.body, [&](const Stmt& s) { ++carried[StmtHeadText(s)]; });

  std::vector<StampedRewrite> stamped;
  int last_id = 0;
  Walk(&after->body, [&](Stmt* s) {
    std::string head = StmtHeadText(*s);
    auto it = carried.find(head);
    if (it != carried.end() && it->second > 0) {
      --it->second;
      if (s->prov.has_value() && s->prov->source_stmt_id >= 0) {
        last_id = s->prov->source_stmt_id;
      }
      return;
    }
    Provenance p = s->prov.value_or(Provenance{});
    if (p.source_stmt_id < 0) p.source_stmt_id = last_id;
    p.strategy = strategy;
    p.rule = rule;
    s->prov = p;
    last_id = p.source_stmt_id;
    stamped.push_back({p.source_stmt_id, rule, std::move(head)});
  });
  return stamped;
}

void RestampStrategy(Program* program, const std::string& strategy) {
  Walk(&program->body, [&](Stmt* s) {
    if (s->prov.has_value()) s->prov->strategy = strategy;
  });
}

size_t UnstampedCount(const Program& program) {
  size_t n = 0;
  WalkConst(program.body,
            [&](const Stmt& s) { n += s.prov.has_value() ? 0 : 1; });
  return n;
}

std::string ProvenanceListing(const std::string& program_name,
                              const std::vector<std::string>& source_statements,
                              const Program& converted) {
  std::string out =
      "== provenance for program " + program_name + " ==\n";
  int index = 0;
  WalkConst(converted.body, [&](const Stmt& s) {
    out += "[" + std::to_string(index++) + "] " + StmtHeadText(s) + "\n";
    if (!s.prov.has_value()) {
      out += "    <- UNSTAMPED\n";
      return;
    }
    const Provenance& p = *s.prov;
    std::string source_head =
        p.source_stmt_id >= 0 &&
                p.source_stmt_id < static_cast<int>(source_statements.size())
            ? source_statements[static_cast<size_t>(p.source_stmt_id)]
            : "<unknown>";
    out += "    <- " + p.ToString() + ": " + source_head + "\n";
  });
  return out;
}

}  // namespace dbpc
