#include "convert/converter.h"

#include <chrono>

#include "common/string_util.h"
#include "convert/provenance.h"
#include "restructure/rewrite_util.h"

namespace dbpc {

namespace {

std::string MembershipText(const SetDef& s) {
  return std::string(InsertionClassName(s.insertion)) + "/" +
         RetentionClassName(s.retention);
}

}  // namespace

std::vector<SchemaChange> ClassifySchemaChanges(const Schema& source,
                                                const Schema& target) {
  std::vector<SchemaChange> out;
  for (const RecordTypeDef& r : source.record_types()) {
    const RecordTypeDef* t = target.FindRecordType(r.name);
    if (t == nullptr) {
      out.push_back({"record-type-removed", r.name});
      continue;
    }
    for (const FieldDef& f : r.fields) {
      const FieldDef* tf = t->FindField(f.name);
      if (tf == nullptr) {
        out.push_back({"field-removed", r.name + "." + f.name});
      } else if (f.is_virtual != tf->is_virtual) {
        out.push_back({tf->is_virtual ? "field-virtualized"
                                      : "field-materialized",
                       r.name + "." + f.name});
      } else if (f.type != tf->type) {
        out.push_back({"field-retyped", r.name + "." + f.name});
      }
    }
    for (const FieldDef& tf : t->fields) {
      if (!r.HasField(tf.name)) {
        out.push_back({"field-added", r.name + "." + tf.name});
      }
    }
  }
  for (const RecordTypeDef& t : target.record_types()) {
    if (source.FindRecordType(t.name) == nullptr) {
      out.push_back({"record-type-added", t.name});
    }
  }
  for (const SetDef& s : source.sets()) {
    const SetDef* t = target.FindSet(s.name);
    if (t == nullptr) {
      out.push_back({"set-removed", s.name});
      continue;
    }
    if (!EqualsIgnoreCase(s.owner, t->owner) ||
        !EqualsIgnoreCase(s.member, t->member)) {
      out.push_back({"set-relinked", s.name + ": " + s.owner + "->" +
                                         s.member + " becomes " + t->owner +
                                         "->" + t->member});
    }
    if (s.keys != t->keys || s.ordering != t->ordering) {
      out.push_back({"set-order-changed", s.name});
    }
    if (s.insertion != t->insertion || s.retention != t->retention) {
      out.push_back({"set-membership-changed",
                     s.name + ": " + MembershipText(s) + " becomes " +
                         MembershipText(*t)});
    }
    if (s.member_characterizes_owner != t->member_characterizes_owner) {
      out.push_back({t->member_characterizes_owner ? "dependency-added"
                                                   : "dependency-removed",
                     s.name});
    }
  }
  for (const SetDef& t : target.sets()) {
    if (source.FindSet(t.name) == nullptr) {
      out.push_back({"set-added", t.name + " (" + t.owner + " -> " + t.member +
                                      ")"});
    }
  }
  for (const ConstraintDef& c : source.constraints()) {
    if (target.FindConstraint(c.name) == nullptr) {
      out.push_back({"constraint-removed", c.ToString()});
    }
  }
  for (const ConstraintDef& c : target.constraints()) {
    if (source.FindConstraint(c.name) == nullptr) {
      out.push_back({"constraint-added", c.ToString()});
    }
  }
  return out;
}

Result<ProgramConverter> ProgramConverter::Create(
    Schema source, std::vector<const Transformation*> plan,
    AnalyzerOptions analyzer_options) {
  DBPC_RETURN_IF_ERROR(source.Validate());
  std::vector<Schema> schemas;
  schemas.push_back(std::move(source));
  for (const Transformation* t : plan) {
    DBPC_ASSIGN_OR_RETURN(Schema next, t->ApplyToSchema(schemas.back()));
    schemas.push_back(std::move(next));
  }
  return ProgramConverter(std::move(schemas), std::move(plan),
                          analyzer_options);
}

Result<ConversionResult> ProgramConverter::Convert(
    const Program& source_program, SpanContext span) const {
  ConversionResult result;
  SpanContext analyze_span = span.StartChild("program_analyzer");
  auto analyze_start = std::chrono::steady_clock::now();
  ProgramAnalyzer analyzer(schemas_.front(), analyzer_options_);
  DBPC_ASSIGN_OR_RETURN(result.analysis, analyzer.Analyze(source_program));
  auto convert_start = std::chrono::steady_clock::now();
  result.analyze_micros = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(convert_start -
                                                            analyze_start)
          .count());
  analyze_span.SetAttribute("classification",
                            ConvertibilityName(result.analysis.convertibility));
  analyze_span.AddCounter("issues", result.analysis.issues.size());
  analyze_span.AddCounter("statements", source_program.StatementCount());
  analyze_span.End();
  result.outcome = result.analysis.convertibility;
  result.converted = result.analysis.lifted;
  if (result.outcome == Convertibility::kNotConvertible) {
    result.notes.push_back(
        "conversion refused: program behaviour varies at run time");
    return result;
  }

  // Number the (lifted) source statements: the ids every later rewrite's
  // provenance refers back to.
  result.source_statements = StampSourceProvenance(
      &result.converted, "rewrite",
      result.converted == source_program ? "source" : "lift");

  // The analyzer names order-dependent sets as of the source schema; keep
  // the list current as plan steps rename or split sets so later steps can
  // still find theirs in it.
  SpanContext convert_span = span.StartChild("program_converter");
  std::vector<std::string> order_sets = result.analysis.order_dependent_sets;
  for (size_t i = 0; i < plan_.size(); ++i) {
    SpanContext step_span = convert_span.StartChild(plan_[i]->Name());
    if (step_span.enabled()) {
      step_span.SetAttribute("transformation", plan_[i]->Describe());
    }
    Program before = result.converted;
    Status s = plan_[i]->RewriteProgram(schemas_[i], schemas_[i + 1],
                                        order_sets, &result.converted,
                                        &result.notes);
    plan_[i]->MapSetNames(&order_sets);
    // Stamp regardless of the step's verdict: an analyst-level step may
    // still have rewritten statements the analyst will want mapped.
    std::vector<StampedRewrite> stamped = StampRewriteStep(
        before, &result.converted, "rewrite", plan_[i]->Name());
    step_span.AddCounter("rewrites", stamped.size());
    if (step_span.enabled()) {
      for (StampedRewrite& r : stamped) {
        SpanContext rewrite_span = step_span.StartChild("rewrite");
        rewrite_span.SetAttribute("rule", std::move(r.rule));
        rewrite_span.SetAttribute("src", std::to_string(r.source_stmt_id));
        rewrite_span.SetAttribute("stmt", std::move(r.head));
        rewrite_span.End();
      }
    }
    step_span.End();
    if (!s.ok()) {
      if (s.code() == StatusCode::kNeedsAnalyst) {
        result.notes.push_back("step '" + plan_[i]->Name() +
                               "' needs analyst review: " + s.message());
        if (result.outcome == Convertibility::kAutomatic) {
          result.outcome = Convertibility::kNeedsAnalyst;
        }
        continue;
      }
      convert_span.End();
      return s;
    }
  }
  convert_span.End();

  // Sanity: every retrieval must resolve against the target schema. A
  // failure here is a transformation-rule bug, not an input problem.
  Status resolve_status = Status::OK();
  rewrite::ForEachRetrievalMut(&result.converted, [&](Retrieval* r) {
    FindQuery probe = r->query;  // validate on a copy; keep steps unresolved
    Status s = ResolveFindQuery(target_schema(), &probe);
    if (!s.ok() && resolve_status.ok()) resolve_status = s;
  });
  if (!resolve_status.ok() && result.outcome == Convertibility::kAutomatic) {
    return Status::Internal("converted program does not fit target schema: " +
                            resolve_status.message());
  }
  result.convert_micros = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - convert_start)
          .count());
  return result;
}

}  // namespace dbpc
