#include "convert/template_cache.h"

#include <algorithm>

namespace dbpc {

uint64_t Fingerprint64(std::string_view text) {
  // FNV-1a, 64-bit.
  uint64_t hash = 0xcbf29ce484222325ull;
  for (unsigned char c : text) {
    hash ^= c;
    hash *= 0x100000001b3ull;
  }
  return hash;
}

uint64_t MixFingerprints(uint64_t a, uint64_t b) {
  // boost::hash_combine's 64-bit golden-ratio mix; order-dependent.
  a ^= b + 0x9e3779b97f4a7c15ull + (a << 12) + (a >> 4);
  return a;
}

std::string CanonicalProgramText(const Program& program) {
  std::string text = program.ToSource();
  // Drop the "PROGRAM <name>.\n" line: the name is per-program identity,
  // not template identity, and is re-stamped on every hit.
  size_t eol = text.find('\n');
  return eol == std::string::npos ? std::string() : text.substr(eol + 1);
}

Status TemplateCacheOptions::Validate() const {
  if (shards <= 0) {
    return Status::InvalidArgument(
        "TemplateCacheOptions::shards must be >= 1 (got " +
        std::to_string(shards) + ")");
  }
  if (capacity <= 0) {
    return Status::InvalidArgument(
        "TemplateCacheOptions::capacity must be >= 1 (got " +
        std::to_string(capacity) + ")");
  }
  return Status::OK();
}

TemplateCache::TemplateCache(TemplateCacheOptions options)
    : options_(options) {
  int shards = std::max(1, options_.shards);
  per_shard_capacity_ = static_cast<size_t>(
      std::max(1, (std::max(1, options_.capacity) + shards - 1) / shards));
  shards_.reserve(static_cast<size_t>(shards));
  for (int i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

std::shared_ptr<const CachedConversion> TemplateCache::Lookup(
    uint64_t key, std::string_view prefix, std::string_view suffix,
    const Program& program) {
  Shard& shard = ShardFor(key);
  std::shared_ptr<const CachedConversion> entry;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      entry = it->second->second;
    }
  }
  // Verification runs outside the shard lock: the entry is immutable and
  // the shared_ptr keeps it alive past any concurrent eviction. The stored
  // context is compared piecewise against prefix+suffix so the caller
  // never has to concatenate them.
  const std::string_view stored =
      entry != nullptr ? std::string_view(entry->context) : std::string_view();
  if (entry != nullptr && stored.size() == prefix.size() + suffix.size() &&
      stored.substr(0, prefix.size()) == prefix &&
      stored.substr(prefix.size()) == suffix &&
      entry->canonical_body == program.body) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    return entry;
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  return nullptr;
}

size_t TemplateCache::Insert(uint64_t key, CachedConversion entry) {
  auto shared = std::make_shared<const CachedConversion>(std::move(entry));
  Shard& shard = ShardFor(key);
  size_t evicted = 0;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      // Refresh: replace the payload and promote to most recently used.
      it->second->second = std::move(shared);
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    } else {
      shard.lru.emplace_front(key, std::move(shared));
      shard.index[key] = shard.lru.begin();
      while (shard.lru.size() > per_shard_capacity_) {
        shard.index.erase(shard.lru.back().first);
        shard.lru.pop_back();
        ++evicted;
      }
    }
  }
  inserts_.fetch_add(1, std::memory_order_relaxed);
  if (evicted > 0) evictions_.fetch_add(evicted, std::memory_order_relaxed);
  return evicted;
}

size_t TemplateCache::Clear() {
  size_t dropped = 0;
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    dropped += shard->lru.size();
    shard->lru.clear();
    shard->index.clear();
  }
  if (dropped > 0) {
    invalidations_.fetch_add(dropped, std::memory_order_relaxed);
  }
  return dropped;
}

TemplateCacheStats TemplateCache::Stats() const {
  TemplateCacheStats stats;
  stats.hits = hits_.load(std::memory_order_relaxed);
  stats.misses = misses_.load(std::memory_order_relaxed);
  stats.inserts = inserts_.load(std::memory_order_relaxed);
  stats.evictions = evictions_.load(std::memory_order_relaxed);
  stats.invalidations = invalidations_.load(std::memory_order_relaxed);
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    stats.entries += shard->lru.size();
  }
  return stats;
}

}  // namespace dbpc
