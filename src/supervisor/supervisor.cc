#include "supervisor/supervisor.h"

#include <cmath>
#include <cstdio>
#include <optional>

#include "common/log.h"
#include "convert/provenance.h"
#include "optimize/stats.h"

namespace dbpc {

namespace {

std::string CacheKeyHex(uint64_t key) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "0x%016llx",
                static_cast<unsigned long long>(key));
  return buf;
}

}  // namespace

AnalystPolicy ApproveAllAnalyst() {
  return [](const std::string&) { return true; };
}

AnalystPolicy RejectAllAnalyst() {
  return [](const std::string&) { return false; };
}

Status SupervisorOptions::Validate() const {
  if (mode == AnalystMode::kAssisted && !analyst) {
    return Status::InvalidArgument(
        "assisted mode requires an analyst policy (SupervisorOptions::analyst "
        "is unset)");
  }
  if (mode == AnalystMode::kStrict && analyst) {
    return Status::InvalidArgument(
        "strict mode never consults the analyst, but an analyst policy is "
        "set; drop the policy or use AnalystMode::kAuto");
  }
  return Status::OK();
}

Result<ConversionSupervisor> ConversionSupervisor::Create(
    Schema source, std::vector<const Transformation*> plan,
    SupervisorOptions options) {
  DBPC_RETURN_IF_ERROR(options.Validate());
  DBPC_ASSIGN_OR_RETURN(
      ProgramConverter converter,
      ProgramConverter::Create(std::move(source), plan, options.analyzer));
  return ConversionSupervisor(std::move(converter), std::move(plan),
                              std::move(options));
}

ConversionSupervisor::ConversionSupervisor(
    ProgramConverter converter, std::vector<const Transformation*> plan,
    SupervisorOptions options)
    : converter_(std::move(converter)),
      plan_(std::move(plan)),
      options_(std::move(options)) {
  if (options_.cache == nullptr) return;
  // Everything besides the program and the statistics that can change the
  // converted output, rendered once. Two supervisors sharing one cache
  // (different plans, schemas or switches) can therefore never serve each
  // other's entries. The analyst configuration is deliberately absent:
  // analyst-consulting conversions are never memoized.
  std::string& prefix = cache_context_prefix_;
  prefix = "source schema:\n" + converter_.source_schema().ToDdl();
  prefix += "target schema:\n" + converter_.target_schema().ToDdl();
  prefix += "plan:\n";
  for (const Transformation* step : plan_) {
    prefix += step->Name() + ": " + step->Describe() + "\n";
  }
  prefix += "options: optimizer=" + std::to_string(options_.run_optimizer) +
            " lift=" + std::to_string(options_.analyzer.lift_templates) +
            " index=" + std::to_string(options_.index.enabled) +
            " auto_join=" + std::to_string(options_.index.auto_join_indexes) +
            "\nstatistics:\n";
  // The prefix is kilobytes (two schemas' DDL); hash it once here instead
  // of on every conversion. The statistics text is still hashed per call —
  // that recomputation is what invalidates entries when the catalog is
  // mutated in place.
  cache_context_prefix_fp_ = Fingerprint64(cache_context_prefix_);
}

std::string ExplainCacheLine(const PipelineOutcome& outcome) {
  if (!outcome.cache_hit) return "";
  return "  plan: cached (memo key " + outcome.cache_key +
         "); candidate costs below were enumerated when the cache entry "
         "was populated\n";
}

Result<PipelineOutcome> ConversionSupervisor::ConvertProgram(
    const Program& program, SpanContext span) const {
  MetricsRegistry* metrics = options_.metrics;

  // The conversion memo. Traced conversions bypass it: a hit skips the
  // pipeline stages, so serving one under a collector would leave the span
  // forest describing work that never ran — tracing on/off must produce
  // identical, honest forests.
  TemplateCache* cache = options_.cache;
  uint64_t cache_key = 0;
  std::string cache_context;
  std::string cache_key_hex;
  if (cache != nullptr) {
    if (span.enabled() || options_.spans != nullptr) {
      if (metrics != nullptr) {
        metrics->GetCounter("cache.traced_bypass")->Increment();
      }
      cache = nullptr;
    } else {
      std::string statistics_text =
          options_.statistics != nullptr ? options_.statistics->ToText() : "";
      cache_key = MixFingerprints(
          MixFingerprints(cache_context_prefix_fp_,
                          Fingerprint64(statistics_text)),
          Fingerprint64(CanonicalProgramText(program)));
      cache_key_hex = CacheKeyHex(cache_key);
      // Piecewise lookup: the kilobyte prefix and the statistics text are
      // compared against the stored context without being concatenated.
      if (std::shared_ptr<const CachedConversion> entry = cache->Lookup(
              cache_key, cache_context_prefix_, statistics_text, program)) {
        if (metrics != nullptr) metrics->GetCounter("cache.hits")->Increment();
        PipelineOutcome outcome;
        outcome.conversion = entry->result;
        // Re-stamp the per-program identity: the memo stores the template,
        // the name belongs to this request. Provenance ids on the cached
        // statements are already this program's ids — the canonical-body
        // equality check guarantees statement-for-statement identical
        // sources, which StampSourceProvenance numbers identically.
        outcome.conversion.converted.name = program.name;
        outcome.classification = entry->result.outcome;
        outcome.accepted = entry->accepted;
        outcome.optimizer_stats = entry->optimizer_stats;
        outcome.cache_hit = true;
        outcome.cache_key = cache_key_hex;
        return outcome;
      }
      if (metrics != nullptr) metrics->GetCounter("cache.misses")->Increment();
      // Only a miss needs the combined context string — it becomes the
      // stored key material of the entry memoized below.
      cache_context = cache_context_prefix_ + statistics_text;
    }
  }

  // Self-rooting: a direct caller with only a collector configured still
  // gets one complete tree per conversion. The service passes its own root
  // (with a per-job sequence) instead and keeps it open for the generator
  // stage.
  SpanContext owned_root;
  if (!span.enabled() && options_.spans != nullptr) {
    owned_root = options_.spans->StartRoot("convert " + program.name);
    span = owned_root;
  }
  // The Conversion Analyzer classified the schema restructuring when the
  // supervisor was built; restate its verdict on every conversion root so
  // each tree shows all Figure 4.1 stages.
  if (span.enabled()) {
    SpanContext analyzer_span = span.StartChild("conversion_analyzer");
    analyzer_span.AddCounter("schema_changes", converter_.changes().size());
    analyzer_span.AddCounter("plan_steps", plan_.size());
    analyzer_span.End();
  }

  PipelineOutcome outcome;
  DBPC_ASSIGN_OR_RETURN(outcome.conversion, converter_.Convert(program, span));
  outcome.classification = outcome.conversion.outcome;
  auto finish = [&]() {
    if (span.enabled()) {
      span.SetAttribute("classification",
                        ConvertibilityName(outcome.classification));
      span.SetAttribute("accepted", outcome.accepted ? "true" : "false");
    }
    owned_root.End();
  };
  // Memoizes a finished outcome. Conversions the analyst participated in
  // are never cached: the policy is an arbitrary (possibly stateful)
  // function, so its answers are not a function of the memo key.
  auto memoize = [&](PipelineOutcome& out) {
    out.cache_key = cache_key_hex;
    if (cache == nullptr) return;
    if (out.classification == Convertibility::kNeedsAnalyst ||
        !out.analyst_log.empty()) {
      return;
    }
    CachedConversion entry;
    entry.context = cache_context;
    entry.canonical_body = program.body;
    entry.result = out.conversion;
    entry.result.converted.name.clear();  // re-stamped per hit
    entry.result.analyze_micros = 0;      // a hit spends no stage time
    entry.result.convert_micros = 0;
    entry.optimizer_stats = out.optimizer_stats;
    entry.accepted = out.accepted;
    size_t evicted = cache->Insert(cache_key, std::move(entry));
    if (metrics != nullptr && evicted > 0) {
      metrics->GetCounter("cache.evictions")->Increment(evicted);
    }
  };

  if (metrics != nullptr) {
    metrics->GetHistogram("stage.analyze_us")
        ->Record(outcome.conversion.analyze_micros);
    metrics->GetHistogram("stage.convert_us")
        ->Record(outcome.conversion.convert_micros);
  }
  const bool consult_analyst =
      options_.mode != AnalystMode::kStrict && options_.analyst != nullptr;

  switch (outcome.classification) {
    case Convertibility::kNotConvertible:
      outcome.accepted = false;
      DBPC_LOG_RATELIMITED(
          LogLevel::kDebug, 10.0, 20.0, "program_refused",
          LogField("program", program.name),
          LogField("issues", outcome.conversion.analysis.issues.size()));
      memoize(outcome);
      RecordOutcomeMetrics(outcome);
      finish();
      return outcome;
    case Convertibility::kAutomatic:
      outcome.accepted = true;
      break;
    case Convertibility::kNeedsAnalyst: {
      // One question per analyst-relevant finding; all must be approved.
      bool all_approved = true;
      auto ask = [&](const std::string& question) {
        bool answer = consult_analyst ? options_.analyst(question) : false;
        outcome.analyst_log.emplace_back(question, answer);
        if (!answer) all_approved = false;
      };
      for (const AnalysisIssue& issue : outcome.conversion.analysis.issues) {
        switch (issue.kind) {
          case AnalysisIssue::Kind::kAmbiguousOwnerSelection:
          case AnalysisIssue::Kind::kUnliftedNavigation:
          case AnalysisIssue::Kind::kStatusCodeDependence:
            ask(issue.ToString());
            break;
          default:
            break;  // informational
        }
      }
      for (const std::string& note : outcome.conversion.notes) {
        ask(note);
      }
      outcome.accepted = all_approved;
      break;
    }
  }
  if (span.enabled() && !outcome.analyst_log.empty()) {
    // The Conversion Analyst's involvement, folded into one span: the
    // questions were answered synchronously above.
    SpanContext analyst_span = span.StartChild("conversion_analyst");
    uint64_t approved = 0;
    for (const auto& [question, answer] : outcome.analyst_log) {
      if (answer) ++approved;
    }
    analyst_span.AddCounter("questions", outcome.analyst_log.size());
    analyst_span.AddCounter("approved", approved);
    analyst_span.End();
  }

  if (outcome.accepted && options_.run_optimizer) {
    SpanContext opt_span = span.StartChild("optimizer");
    std::optional<Histogram::Timer> timer;
    if (metrics != nullptr) {
      timer.emplace(metrics->GetHistogram("stage.optimize_us"));
    }
    Program before = outcome.conversion.converted;
    Status opt_status = OptimizeProgram(converter_.target_schema(),
                                        options_.statistics,
                                        &outcome.conversion.converted,
                                        &outcome.optimizer_stats);
    if (!opt_status.ok()) {
      opt_span.End();
      finish();
      return opt_status;
    }
    // Statements the optimizer rewrote are re-tagged as its work; their
    // source ids survive from the converter's stamps.
    std::vector<StampedRewrite> stamped = StampRewriteStep(
        before, &outcome.conversion.converted, "optimizer", "optimize");
    const OptimizerStats& os = outcome.optimizer_stats;
    if (opt_span.enabled()) {
      opt_span.AddCounter("predicates_pushed",
                          static_cast<uint64_t>(os.predicates_pushed));
      opt_span.AddCounter("sorts_removed",
                          static_cast<uint64_t>(os.sorts_removed));
      opt_span.AddCounter("plans_costed",
                          static_cast<uint64_t>(os.plans_costed));
      opt_span.AddCounter("rewrites", stamped.size());
      for (const PlanChoice& pc : os.plan_choices) {
        SpanContext choice_span = opt_span.StartChild("plan_choice");
        choice_span.SetAttribute("original", pc.original);
        choice_span.SetAttribute("chosen", pc.chosen);
        choice_span.AddCounter("candidates", pc.candidates.size());
        choice_span.End();
      }
      for (StampedRewrite& r : stamped) {
        SpanContext rewrite_span = opt_span.StartChild("rewrite");
        rewrite_span.SetAttribute("rule", std::move(r.rule));
        rewrite_span.SetAttribute("src", std::to_string(r.source_stmt_id));
        rewrite_span.SetAttribute("stmt", std::move(r.head));
        rewrite_span.End();
      }
    }
    opt_span.End();
  }
  memoize(outcome);
  RecordOutcomeMetrics(outcome);
  finish();
  return outcome;
}

// Classification counters (programs.*) are deliberately not recorded here:
// the conversion service retries failed attempts, and only it knows which
// attempt's outcome is final.
void ConversionSupervisor::RecordOutcomeMetrics(
    const PipelineOutcome& outcome) const {
  MetricsRegistry* metrics = options_.metrics;
  if (metrics == nullptr) return;
  if (!outcome.analyst_log.empty()) {
    metrics->GetCounter("analyst.questions")
        ->Increment(outcome.analyst_log.size());
  }
  if (outcome.optimizer_stats.predicates_pushed > 0) {
    metrics->GetCounter("optimizer.predicates_pushed")
        ->Increment(
            static_cast<uint64_t>(outcome.optimizer_stats.predicates_pushed));
  }
  if (outcome.optimizer_stats.sorts_removed > 0) {
    metrics->GetCounter("optimizer.sorts_removed")
        ->Increment(
            static_cast<uint64_t>(outcome.optimizer_stats.sorts_removed));
  }
  if (outcome.optimizer_stats.plans_costed > 0) {
    metrics->GetCounter("optimizer.plans_costed")
        ->Increment(
            static_cast<uint64_t>(outcome.optimizer_stats.plans_costed));
  }
  if (outcome.optimizer_stats.plans_rerouted > 0) {
    metrics->GetCounter("optimizer.plans_rerouted")
        ->Increment(
            static_cast<uint64_t>(outcome.optimizer_stats.plans_rerouted));
  }
  if (outcome.optimizer_stats.estimated_ops_saved >= 1.0) {
    metrics->GetCounter("optimizer.est_ops_saved")
        ->Increment(static_cast<uint64_t>(
            std::llround(outcome.optimizer_stats.estimated_ops_saved)));
  }
}

std::string SystemConversionReport::ToText() const {
  std::string out;
  out += "=== application system conversion report ===\n";
  for (const PipelineOutcome& o : outcomes) {
    out += "program " + o.conversion.converted.name + ": " +
           ConvertibilityName(o.classification) +
           (o.accepted ? " (accepted)" : " (not converted)") + "\n";
    for (const AnalysisIssue& issue : o.conversion.analysis.issues) {
      out += "  issue: " + issue.ToString() + "\n";
    }
    for (const std::string& note : o.conversion.notes) {
      out += "  note: " + note + "\n";
    }
    for (const auto& [question, answer] : o.analyst_log) {
      out += std::string("  analyst ") + (answer ? "approved" : "rejected") +
             ": " + question + "\n";
    }
  }
  out += "summary: " + std::to_string(outcomes.size()) + " programs, " +
         std::to_string(automatic) + " automatic, " +
         std::to_string(needs_analyst) + " analyst, " +
         std::to_string(refused) + " refused; " +
         std::to_string(accepted) + " accepted -> system " +
         (fully_converted() ? "fully converted" : "NOT fully converted") +
         "\n";
  return out;
}

Result<SystemConversionReport> ConversionSupervisor::ConvertSystem(
    const std::vector<Program>& programs) const {
  SystemConversionReport report;
  for (const Program& program : programs) {
    DBPC_ASSIGN_OR_RETURN(PipelineOutcome outcome, ConvertProgram(program));
    switch (outcome.classification) {
      case Convertibility::kAutomatic:
        ++report.automatic;
        break;
      case Convertibility::kNeedsAnalyst:
        ++report.needs_analyst;
        break;
      case Convertibility::kNotConvertible:
        ++report.refused;
        break;
    }
    if (outcome.accepted) ++report.accepted;
    report.outcomes.push_back(std::move(outcome));
  }
  return report;
}

Result<Database> ConversionSupervisor::TranslateDatabase(
    const Database& source) const {
  DBPC_ASSIGN_OR_RETURN(Database target, dbpc::TranslateDatabase(source, plan_));
  target.SetIndexOptions(options_.index);
  return target;
}

}  // namespace dbpc
