#include "supervisor/supervisor.h"

namespace dbpc {

AnalystPolicy ApproveAllAnalyst() {
  return [](const std::string&) { return true; };
}

AnalystPolicy RejectAllAnalyst() {
  return [](const std::string&) { return false; };
}

Result<ConversionSupervisor> ConversionSupervisor::Create(
    Schema source, std::vector<const Transformation*> plan,
    SupervisorOptions options) {
  DBPC_ASSIGN_OR_RETURN(
      ProgramConverter converter,
      ProgramConverter::Create(std::move(source), plan, options.analyzer));
  return ConversionSupervisor(std::move(converter), std::move(plan),
                              std::move(options));
}

Result<PipelineOutcome> ConversionSupervisor::ConvertProgram(
    const Program& program) const {
  PipelineOutcome outcome;
  DBPC_ASSIGN_OR_RETURN(outcome.conversion, converter_.Convert(program));
  outcome.classification = outcome.conversion.outcome;

  switch (outcome.classification) {
    case Convertibility::kNotConvertible:
      outcome.accepted = false;
      return outcome;
    case Convertibility::kAutomatic:
      outcome.accepted = true;
      break;
    case Convertibility::kNeedsAnalyst: {
      // One question per analyst-relevant finding; all must be approved.
      bool all_approved = true;
      auto ask = [&](const std::string& question) {
        bool answer =
            options_.analyst ? options_.analyst(question) : false;
        outcome.analyst_log.emplace_back(question, answer);
        if (!answer) all_approved = false;
      };
      for (const AnalysisIssue& issue : outcome.conversion.analysis.issues) {
        switch (issue.kind) {
          case AnalysisIssue::Kind::kAmbiguousOwnerSelection:
          case AnalysisIssue::Kind::kUnliftedNavigation:
          case AnalysisIssue::Kind::kStatusCodeDependence:
            ask(issue.ToString());
            break;
          default:
            break;  // informational
        }
      }
      for (const std::string& note : outcome.conversion.notes) {
        ask(note);
      }
      outcome.accepted = all_approved;
      break;
    }
  }

  if (outcome.accepted && options_.run_optimizer) {
    DBPC_RETURN_IF_ERROR(OptimizeProgram(converter_.target_schema(),
                                         &outcome.conversion.converted,
                                         &outcome.optimizer_stats));
  }
  return outcome;
}

std::string SystemConversionReport::ToText() const {
  std::string out;
  out += "=== application system conversion report ===\n";
  for (const PipelineOutcome& o : outcomes) {
    out += "program " + o.conversion.converted.name + ": " +
           ConvertibilityName(o.classification) +
           (o.accepted ? " (accepted)" : " (not converted)") + "\n";
    for (const AnalysisIssue& issue : o.conversion.analysis.issues) {
      out += "  issue: " + issue.ToString() + "\n";
    }
    for (const std::string& note : o.conversion.notes) {
      out += "  note: " + note + "\n";
    }
    for (const auto& [question, answer] : o.analyst_log) {
      out += std::string("  analyst ") + (answer ? "approved" : "rejected") +
             ": " + question + "\n";
    }
  }
  out += "summary: " + std::to_string(outcomes.size()) + " programs, " +
         std::to_string(automatic) + " automatic, " +
         std::to_string(needs_analyst) + " analyst, " +
         std::to_string(refused) + " refused; " +
         std::to_string(accepted) + " accepted -> system " +
         (fully_converted() ? "fully converted" : "NOT fully converted") +
         "\n";
  return out;
}

Result<SystemConversionReport> ConversionSupervisor::ConvertSystem(
    const std::vector<Program>& programs) const {
  SystemConversionReport report;
  for (const Program& program : programs) {
    DBPC_ASSIGN_OR_RETURN(PipelineOutcome outcome, ConvertProgram(program));
    switch (outcome.classification) {
      case Convertibility::kAutomatic:
        ++report.automatic;
        break;
      case Convertibility::kNeedsAnalyst:
        ++report.needs_analyst;
        break;
      case Convertibility::kNotConvertible:
        ++report.refused;
        break;
    }
    if (outcome.accepted) ++report.accepted;
    report.outcomes.push_back(std::move(outcome));
  }
  return report;
}

Result<Database> ConversionSupervisor::TranslateDatabase(
    const Database& source) const {
  return dbpc::TranslateDatabase(source, plan_);
}

}  // namespace dbpc
