#include "supervisor/supervisor.h"

#include <cmath>
#include <optional>

#include "optimize/stats.h"

namespace dbpc {

AnalystPolicy ApproveAllAnalyst() {
  return [](const std::string&) { return true; };
}

AnalystPolicy RejectAllAnalyst() {
  return [](const std::string&) { return false; };
}

Status SupervisorOptions::Validate() const {
  if (mode == AnalystMode::kAssisted && !analyst) {
    return Status::InvalidArgument(
        "assisted mode requires an analyst policy (SupervisorOptions::analyst "
        "is unset)");
  }
  if (mode == AnalystMode::kStrict && analyst) {
    return Status::InvalidArgument(
        "strict mode never consults the analyst, but an analyst policy is "
        "set; drop the policy or use AnalystMode::kAuto");
  }
  return Status::OK();
}

Result<ConversionSupervisor> ConversionSupervisor::Create(
    Schema source, std::vector<const Transformation*> plan,
    SupervisorOptions options) {
  DBPC_RETURN_IF_ERROR(options.Validate());
  DBPC_ASSIGN_OR_RETURN(
      ProgramConverter converter,
      ProgramConverter::Create(std::move(source), plan, options.analyzer));
  return ConversionSupervisor(std::move(converter), std::move(plan),
                              std::move(options));
}

Result<PipelineOutcome> ConversionSupervisor::ConvertProgram(
    const Program& program) const {
  PipelineOutcome outcome;
  DBPC_ASSIGN_OR_RETURN(outcome.conversion, converter_.Convert(program));
  outcome.classification = outcome.conversion.outcome;

  MetricsRegistry* metrics = options_.metrics;
  if (metrics != nullptr) {
    metrics->GetHistogram("stage.analyze_us")
        ->Record(outcome.conversion.analyze_micros);
    metrics->GetHistogram("stage.convert_us")
        ->Record(outcome.conversion.convert_micros);
  }
  const bool consult_analyst =
      options_.mode != AnalystMode::kStrict && options_.analyst != nullptr;

  switch (outcome.classification) {
    case Convertibility::kNotConvertible:
      outcome.accepted = false;
      RecordOutcomeMetrics(outcome);
      return outcome;
    case Convertibility::kAutomatic:
      outcome.accepted = true;
      break;
    case Convertibility::kNeedsAnalyst: {
      // One question per analyst-relevant finding; all must be approved.
      bool all_approved = true;
      auto ask = [&](const std::string& question) {
        bool answer = consult_analyst ? options_.analyst(question) : false;
        outcome.analyst_log.emplace_back(question, answer);
        if (!answer) all_approved = false;
      };
      for (const AnalysisIssue& issue : outcome.conversion.analysis.issues) {
        switch (issue.kind) {
          case AnalysisIssue::Kind::kAmbiguousOwnerSelection:
          case AnalysisIssue::Kind::kUnliftedNavigation:
          case AnalysisIssue::Kind::kStatusCodeDependence:
            ask(issue.ToString());
            break;
          default:
            break;  // informational
        }
      }
      for (const std::string& note : outcome.conversion.notes) {
        ask(note);
      }
      outcome.accepted = all_approved;
      break;
    }
  }

  if (outcome.accepted && options_.run_optimizer) {
    std::optional<Histogram::Timer> timer;
    if (metrics != nullptr) {
      timer.emplace(metrics->GetHistogram("stage.optimize_us"));
    }
    DBPC_RETURN_IF_ERROR(OptimizeProgram(converter_.target_schema(),
                                         options_.statistics,
                                         &outcome.conversion.converted,
                                         &outcome.optimizer_stats));
  }
  RecordOutcomeMetrics(outcome);
  return outcome;
}

// Classification counters (programs.*) are deliberately not recorded here:
// the conversion service retries failed attempts, and only it knows which
// attempt's outcome is final.
void ConversionSupervisor::RecordOutcomeMetrics(
    const PipelineOutcome& outcome) const {
  MetricsRegistry* metrics = options_.metrics;
  if (metrics == nullptr) return;
  if (!outcome.analyst_log.empty()) {
    metrics->GetCounter("analyst.questions")
        ->Increment(outcome.analyst_log.size());
  }
  if (outcome.optimizer_stats.predicates_pushed > 0) {
    metrics->GetCounter("optimizer.predicates_pushed")
        ->Increment(
            static_cast<uint64_t>(outcome.optimizer_stats.predicates_pushed));
  }
  if (outcome.optimizer_stats.sorts_removed > 0) {
    metrics->GetCounter("optimizer.sorts_removed")
        ->Increment(
            static_cast<uint64_t>(outcome.optimizer_stats.sorts_removed));
  }
  if (outcome.optimizer_stats.plans_costed > 0) {
    metrics->GetCounter("optimizer.plans_costed")
        ->Increment(
            static_cast<uint64_t>(outcome.optimizer_stats.plans_costed));
  }
  if (outcome.optimizer_stats.plans_rerouted > 0) {
    metrics->GetCounter("optimizer.plans_rerouted")
        ->Increment(
            static_cast<uint64_t>(outcome.optimizer_stats.plans_rerouted));
  }
  if (outcome.optimizer_stats.estimated_ops_saved >= 1.0) {
    metrics->GetCounter("optimizer.est_ops_saved")
        ->Increment(static_cast<uint64_t>(
            std::llround(outcome.optimizer_stats.estimated_ops_saved)));
  }
}

std::string SystemConversionReport::ToText() const {
  std::string out;
  out += "=== application system conversion report ===\n";
  for (const PipelineOutcome& o : outcomes) {
    out += "program " + o.conversion.converted.name + ": " +
           ConvertibilityName(o.classification) +
           (o.accepted ? " (accepted)" : " (not converted)") + "\n";
    for (const AnalysisIssue& issue : o.conversion.analysis.issues) {
      out += "  issue: " + issue.ToString() + "\n";
    }
    for (const std::string& note : o.conversion.notes) {
      out += "  note: " + note + "\n";
    }
    for (const auto& [question, answer] : o.analyst_log) {
      out += std::string("  analyst ") + (answer ? "approved" : "rejected") +
             ": " + question + "\n";
    }
  }
  out += "summary: " + std::to_string(outcomes.size()) + " programs, " +
         std::to_string(automatic) + " automatic, " +
         std::to_string(needs_analyst) + " analyst, " +
         std::to_string(refused) + " refused; " +
         std::to_string(accepted) + " accepted -> system " +
         (fully_converted() ? "fully converted" : "NOT fully converted") +
         "\n";
  return out;
}

Result<SystemConversionReport> ConversionSupervisor::ConvertSystem(
    const std::vector<Program>& programs) const {
  SystemConversionReport report;
  for (const Program& program : programs) {
    DBPC_ASSIGN_OR_RETURN(PipelineOutcome outcome, ConvertProgram(program));
    switch (outcome.classification) {
      case Convertibility::kAutomatic:
        ++report.automatic;
        break;
      case Convertibility::kNeedsAnalyst:
        ++report.needs_analyst;
        break;
      case Convertibility::kNotConvertible:
        ++report.refused;
        break;
    }
    if (outcome.accepted) ++report.accepted;
    report.outcomes.push_back(std::move(outcome));
  }
  return report;
}

Result<Database> ConversionSupervisor::TranslateDatabase(
    const Database& source) const {
  DBPC_ASSIGN_OR_RETURN(Database target, dbpc::TranslateDatabase(source, plan_));
  target.SetIndexOptions(options_.index);
  return target;
}

}  // namespace dbpc
