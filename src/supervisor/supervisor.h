#ifndef DBPC_SUPERVISOR_SUPERVISOR_H_
#define DBPC_SUPERVISOR_SUPERVISOR_H_

#include <functional>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/span.h"
#include "convert/converter.h"
#include "convert/template_cache.h"
#include "engine/database.h"
#include "optimize/optimizer.h"

namespace dbpc {

class StatisticsCatalog;

/// The Conversion Analyst's decision procedure. The supervisor asks one
/// question per analyst-facing issue or note; returning true approves the
/// proposed handling, false rejects the conversion.
using AnalystPolicy = std::function<bool(const std::string& question)>;

/// An analyst that approves everything (assisted mode) / rejects everything
/// (strictly automatic mode).
AnalystPolicy ApproveAllAnalyst();
AnalystPolicy RejectAllAnalyst();

/// Whether the Conversion Analyst participates in the pipeline.
enum class AnalystMode {
  /// Assisted iff an analyst policy is set (the historical default).
  kAuto,
  /// Never consult the analyst; only kAutomatic conversions are accepted.
  kStrict,
  /// An analyst policy is required; Validate() rejects the options
  /// otherwise.
  kAssisted,
};

/// Supervisor configuration.
struct SupervisorOptions {
  bool run_optimizer = true;
  /// Statistics of the *translated* target database instance
  /// (optimize/stats.h). When set (and non-empty) the optimizer runs
  /// cost-based plan selection; otherwise the rule-based pass is the
  /// fallback. Must outlive the supervisor.
  const StatisticsCatalog* statistics = nullptr;
  AnalystMode mode = AnalystMode::kAuto;
  /// Null behaves like RejectAllAnalyst(): only kAutomatic conversions are
  /// accepted. When conversions run on several worker threads
  /// (service/service.h) the policy is invoked concurrently and must be
  /// thread-safe.
  AnalystPolicy analyst;
  /// Program Analyzer configuration (lifting ablation switch).
  AnalyzerOptions analyzer;
  /// Index configuration applied to databases produced by
  /// TranslateDatabase (engine/database.h). Defaults keep equality indexes
  /// on; disabling them is an ablation/debugging switch — results are
  /// identical either way, only access-path costs change.
  IndexOptions index;
  /// When set, the pipeline records per-stage latency histograms
  /// (stage.analyze_us / stage.convert_us / stage.optimize_us),
  /// classification counters (programs.*) and analyst/optimizer activity
  /// counters. The registry must outlive the supervisor.
  MetricsRegistry* metrics = nullptr;
  /// When set, every conversion emits a span tree (common/span.h): one
  /// root per ConvertProgram call with children for each Figure 4.1 stage
  /// (conversion_analyzer, program_analyzer, program_converter, optimizer)
  /// and per-transformation / per-rewrite-rule subspans carrying statement
  /// provenance. A caller that passes its own SpanContext to
  /// ConvertProgram (the conversion service does, to add the
  /// program_generator stage and a per-job sequence) owns the root
  /// instead. The collector must outlive the supervisor.
  SpanCollector* spans = nullptr;
  /// Template-level conversion memo (convert/template_cache.h). Null runs
  /// every program through the full pipeline (the rules-only / --no-cache
  /// fallback). The cache may be shared by any number of supervisors —
  /// schema pair, plan, options and statistics are all folded into the
  /// memo key — and must outlive them all. Conversions that consult the
  /// analyst are never memoized (policies are arbitrary functions), and
  /// traced conversions bypass the cache so span forests stay complete
  /// and honest.
  TemplateCache* cache = nullptr;

  /// Rejects nonsensical configurations with a structured error instead of
  /// letting the pipeline silently misbehave. Called at pipeline entry
  /// (ConversionSupervisor::Create).
  Status Validate() const;
};

/// Outcome of the full Figure 4.1 pipeline for one program.
struct PipelineOutcome {
  /// The analyzer/converter classification.
  Convertibility classification = Convertibility::kAutomatic;
  /// True when a converted program was produced (automatic, or every
  /// analyst question was approved).
  bool accepted = false;
  ConversionResult conversion;
  OptimizerStats optimizer_stats;
  /// Questions asked of the analyst and the answers given.
  std::vector<std::pair<std::string, bool>> analyst_log;
  /// True when this outcome was served from the conversion memo; the
  /// optimizer_stats (candidate costs included) were then enumerated when
  /// the entry was populated, not for this request — `dbpcc --explain`
  /// marks them accordingly (ExplainCacheLine).
  bool cache_hit = false;
  /// Hex memo key ("0x...."), set whenever the cache was consulted (hit
  /// or miss); empty when no cache was configured or tracing bypassed it.
  std::string cache_key;
};

/// The `cached` marker line `dbpcc --explain` prints for a memoized
/// outcome (empty string for a pipeline-computed one): candidate costs
/// shown below it were enumerated when the memo entry was populated, not
/// re-costed for this request.
std::string ExplainCacheLine(const PipelineOutcome& outcome);

/// Result of converting a whole application system (paper section 1.1:
/// "a database application system is converted when each program actually
/// existing in the source system has been converted").
struct SystemConversionReport {
  std::vector<PipelineOutcome> outcomes;
  int automatic = 0;
  int needs_analyst = 0;
  int refused = 0;
  int accepted = 0;

  bool fully_converted() const {
    return accepted == static_cast<int>(outcomes.size());
  }

  /// Analyst-facing text report: per-program classification, notes and
  /// questions, plus the summary line.
  std::string ToText() const;
};

/// The Program Conversion Supervisor (Figure 4.1): drives Conversion
/// Analyzer, Program Analyzer, Program Converter, Optimizer and Program
/// Generator over one schema restructuring, consulting the Conversion
/// Analyst where the pipeline cannot proceed automatically.
class ConversionSupervisor {
 public:
  /// Transformations must outlive the supervisor.
  static Result<ConversionSupervisor> Create(
      Schema source, std::vector<const Transformation*> plan,
      SupervisorOptions options = {});

  /// Converts one program through the full pipeline. With an enabled
  /// `span` the stage spans become its children; otherwise, when
  /// SupervisorOptions::spans is set, the call opens (and closes) its own
  /// root span in that collector.
  Result<PipelineOutcome> ConvertProgram(const Program& program,
                                         SpanContext span = {}) const;

  /// Converts every program of an application system and tallies the
  /// outcome buckets.
  Result<SystemConversionReport> ConvertSystem(
      const std::vector<Program>& programs) const;

  /// Translates a database instance along the same plan.
  Result<Database> TranslateDatabase(const Database& source) const;

  const Schema& source_schema() const { return converter_.source_schema(); }
  const Schema& target_schema() const { return converter_.target_schema(); }
  /// The Conversion Analyzer's classified schema changes.
  const std::vector<SchemaChange>& changes() const {
    return converter_.changes();
  }

 private:
  void RecordOutcomeMetrics(const PipelineOutcome& outcome) const;

  ConversionSupervisor(ProgramConverter converter,
                       std::vector<const Transformation*> plan,
                       SupervisorOptions options);

  ProgramConverter converter_;
  std::vector<const Transformation*> plan_;
  SupervisorOptions options_;
  /// Schema pair + plan + option switches, rendered once at Create; the
  /// statistics catalog's current text is appended per call (re-read every
  /// conversion, so mutating the catalog in place invalidates every prior
  /// entry).
  std::string cache_context_prefix_;
  /// Fingerprint64 of the prefix, precomputed at Create so the per-call
  /// key derivation only hashes the statistics text and the program.
  uint64_t cache_context_prefix_fp_ = 0;
};

}  // namespace dbpc

#endif  // DBPC_SUPERVISOR_SUPERVISOR_H_
