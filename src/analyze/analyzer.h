#ifndef DBPC_ANALYZE_ANALYZER_H_
#define DBPC_ANALYZE_ANALYZER_H_

#include <string>
#include <vector>

#include "ir/access_pattern.h"
#include "lang/ast.h"
#include "schema/schema.h"

namespace dbpc {

/// How convertible a program is (paper sections 2.1.1 / 3.2: operational
/// tools succeed on 65-70% of programs automatically; a completely
/// automated system is probably impossible, so the remainder is split
/// between analyst-assisted and refused).
enum class Convertibility {
  kAutomatic,      ///< The full pipeline can run unattended.
  kNeedsAnalyst,   ///< Conversion is possible but an analyst must confirm
                   ///< flagged decisions (ambiguous owners, residual
                   ///< navigation, status-code logic).
  kNotConvertible, ///< Run-time variability defeats static analysis.
};

const char* ConvertibilityName(Convertibility c);

/// One problem or property the analyzer discovered.
struct AnalysisIssue {
  enum class Kind {
    /// DML verb determined at run time (CALL DML) — section 3.2's "what
    /// appeared to be a read might become an update".
    kRuntimeVariability,
    /// The program branches on DB-STATUS outside a recognized template.
    kStatusCodeDependence,
    /// Output order depends on set member ordering; restructurings that
    /// change ordering need a compensating SORT.
    kOrderDependence,
    /// A FIND ANY used as loop context may match several records ("process
    /// all" vs "process the first", section 3.2).
    kAmbiguousOwnerSelection,
    /// Navigational statements the templates could not lift.
    kUnliftedNavigation,
    /// An integrity check enforced in program logic (section 5.3).
    kProceduralConstraint,
  };
  Kind kind;
  std::string detail;

  std::string ToString() const;
};

const char* AnalysisIssueKindName(AnalysisIssue::Kind kind);

/// Analyzer output: the lifted program plus everything the Program
/// Converter and the Conversion Analyst need to know about it.
struct Analysis {
  /// The program with navigational loops lifted to FOR EACH over FIND
  /// paths wherever a template matched. Runs equivalently to the input.
  Program lifted;
  /// True when no navigational/currency statements remain in `lifted`.
  bool fully_lifted = true;
  std::vector<AnalysisIssue> issues;
  Convertibility convertibility = Convertibility::kAutomatic;
  /// Su access-pattern sequences of every database operation (derived from
  /// the lifted form).
  std::vector<AccessSequence> sequences;
  /// Sets whose member ordering reaches program output (order dependence).
  std::vector<std::string> order_dependent_sets;

  bool HasIssue(AnalysisIssue::Kind kind) const;
};

/// Analyzer configuration (the lifting switch exists for the ablation
/// experiment: how much of the corpus is automatic *because of* template
/// matching).
struct AnalyzerOptions {
  /// Match navigational loop templates and lift them to FIND paths. With
  /// this off, every navigational statement is reported as unlifted.
  bool lift_templates = true;
};

/// The Program Analyzer of Figure 4.1: matches language templates against
/// the program to recover its access patterns, performs the dataflow checks
/// of section 3.2, and classifies convertibility.
class ProgramAnalyzer {
 public:
  explicit ProgramAnalyzer(const Schema& schema, AnalyzerOptions options = {})
      : schema_(schema), options_(options) {}

  /// Analyzes one program. Errors indicate malformed programs (unknown
  /// record types in DML, unresolvable FIND paths) — not inconvertibility,
  /// which is reported through `Analysis::convertibility`.
  Result<Analysis> Analyze(const Program& program) const;

 private:
  const Schema& schema_;
  AnalyzerOptions options_;
};

/// True when `pred` provably selects at most one record of `type` under
/// `schema`'s uniqueness machinery: an equality on the sole sort key of a
/// system-owned set of the type (duplicates are rejected within an
/// occurrence) or equalities covering a uniqueness constraint.
bool SelectsAtMostOne(const Schema& schema, const std::string& type,
                      const Predicate& pred);

/// Collects host variable names referenced by an expression / condition.
void CollectExprVars(const HostExpr& expr, std::vector<std::string>* out);
void CollectCondVars(const HostCond& cond, std::vector<std::string>* out);

}  // namespace dbpc

#endif  // DBPC_ANALYZE_ANALYZER_H_
