#include "analyze/analyzer.h"

#include <algorithm>
#include <map>
#include <optional>

#include "common/string_util.h"

namespace dbpc {

const char* ConvertibilityName(Convertibility c) {
  switch (c) {
    case Convertibility::kAutomatic:
      return "automatic";
    case Convertibility::kNeedsAnalyst:
      return "needs-analyst";
    case Convertibility::kNotConvertible:
      return "not-convertible";
  }
  return "?";
}

const char* AnalysisIssueKindName(AnalysisIssue::Kind kind) {
  switch (kind) {
    case AnalysisIssue::Kind::kRuntimeVariability:
      return "runtime-variability";
    case AnalysisIssue::Kind::kStatusCodeDependence:
      return "status-code-dependence";
    case AnalysisIssue::Kind::kOrderDependence:
      return "order-dependence";
    case AnalysisIssue::Kind::kAmbiguousOwnerSelection:
      return "ambiguous-owner-selection";
    case AnalysisIssue::Kind::kUnliftedNavigation:
      return "unlifted-navigation";
    case AnalysisIssue::Kind::kProceduralConstraint:
      return "procedural-constraint";
  }
  return "?";
}

std::string AnalysisIssue::ToString() const {
  return std::string(AnalysisIssueKindName(kind)) + ": " + detail;
}

bool Analysis::HasIssue(AnalysisIssue::Kind kind) const {
  for (const AnalysisIssue& issue : issues) {
    if (issue.kind == kind) return true;
  }
  return false;
}

void CollectExprVars(const HostExpr& expr, std::vector<std::string>* out) {
  switch (expr.kind) {
    case HostExpr::Kind::kLiteral:
      return;
    case HostExpr::Kind::kVar:
      out->push_back(expr.var);
      return;
    case HostExpr::Kind::kBinary:
      for (const HostExpr& c : expr.children) CollectExprVars(c, out);
      return;
  }
}

void CollectCondVars(const HostCond& cond, std::vector<std::string>* out) {
  for (const HostExpr& e : cond.operands) CollectExprVars(e, out);
  for (const HostCond& c : cond.children) CollectCondVars(c, out);
}

namespace {

bool ExprMentions(const HostExpr& expr, const std::string& var) {
  std::vector<std::string> vars;
  CollectExprVars(expr, &vars);
  return std::find(vars.begin(), vars.end(), var) != vars.end();
}

bool CondMentions(const HostCond& cond, const std::string& var) {
  std::vector<std::string> vars;
  CollectCondVars(cond, &vars);
  return std::find(vars.begin(), vars.end(), var) != vars.end();
}

/// Any expression/condition in this statement subtree referencing DB-STATUS.
bool StmtMentionsDbStatus(const Stmt& stmt) {
  for (const HostExpr& e : stmt.exprs) {
    if (ExprMentions(e, "DB-STATUS")) return true;
  }
  if (stmt.cond.has_value() && CondMentions(*stmt.cond, "DB-STATUS")) {
    return true;
  }
  for (const auto& [field, e] : stmt.assignments) {
    if (ExprMentions(e, "DB-STATUS")) return true;
  }
  for (const Stmt& s : stmt.body) {
    if (StmtMentionsDbStatus(s)) return true;
  }
  for (const Stmt& s : stmt.else_body) {
    if (StmtMentionsDbStatus(s)) return true;
  }
  return false;
}

bool IsNavKind(StmtKind kind) {
  switch (kind) {
    case StmtKind::kNavFind:
    case StmtKind::kNavGet:
    case StmtKind::kNavStore:
    case StmtKind::kNavModify:
    case StmtKind::kNavErase:
    case StmtKind::kConnect:
    case StmtKind::kDisconnect:
      return true;
    default:
      return false;
  }
}

/// The canonical status-loop guard: DB-STATUS = '0000'.
bool IsStatusLoop(const Stmt& stmt) {
  if (stmt.kind != StmtKind::kWhile || !stmt.cond.has_value()) return false;
  const HostCond& c = *stmt.cond;
  if (c.kind != HostCond::Kind::kCompare || c.op != CompareOp::kEq) {
    return false;
  }
  if (c.operands.size() != 2) return false;
  const HostExpr& lhs = c.operands[0];
  const HostExpr& rhs = c.operands[1];
  return lhs.kind == HostExpr::Kind::kVar && lhs.var == "DB-STATUS" &&
         rhs.kind == HostExpr::Kind::kLiteral && rhs.literal.is_string() &&
         rhs.literal.as_string() == "0000";
}

/// Collects equality-compared fields from an AND-only predicate. Returns
/// false when the predicate contains OR/NOT (no uniqueness guarantee).
bool CollectEqualityFields(const Predicate& pred,
                           std::vector<std::string>* out) {
  switch (pred.kind()) {
    case Predicate::Kind::kCompare:
      if (pred.op() == CompareOp::kEq) out->push_back(ToUpper(pred.field()));
      return true;
    case Predicate::Kind::kAnd:
      return CollectEqualityFields(*pred.lhs_child(), out) &&
             CollectEqualityFields(*pred.rhs_child(), out);
    case Predicate::Kind::kOr:
    case Predicate::Kind::kNot:
      return false;
  }
  return false;
}

/// State threaded through the lifting walk.
struct LiftState {
  const Schema* schema = nullptr;
  std::vector<AnalysisIssue>* issues = nullptr;
  int cursor_counter = 0;
  /// Record type (upper) -> innermost cursor bound to it.
  std::map<std::string, std::string> cursor_of_type;
  /// Record type (upper) -> set its enclosing scan traverses.
  std::map<std::string, std::string> scanned_set_of_type;
  /// Abstract current of run-unit ("" = unknown).
  std::string run_unit_type;

  std::string NewCursor() {
    return "CUR-" + std::to_string(++cursor_counter);
  }
};

std::optional<Stmt> TryBuildForEach(const std::vector<Stmt>& stmts, size_t i,
                                    LiftState* st, size_t* consumed);

/// Rewrites a status-loop body (without its trailing FIND NEXT) into
/// Maryland-level statements. Returns nullopt when anything in the body
/// defeats the template (currency disturbance, status-code logic, fields
/// of the wrong record type).
std::optional<std::vector<Stmt>> TryLiftLoopBody(const std::vector<Stmt>& body,
                                                 LiftState* st) {
  std::vector<Stmt> out;
  for (size_t i = 0; i < body.size(); ++i) {
    const Stmt& s = body[i];
    switch (s.kind) {
      case StmtKind::kNavGet: {
        const std::string& type = st->run_unit_type;
        auto cur = st->cursor_of_type.find(type);
        if (type.empty() || cur == st->cursor_of_type.end()) return std::nullopt;
        const RecordTypeDef* rec = st->schema->FindRecordType(type);
        if (rec == nullptr || !rec->HasField(s.field)) return std::nullopt;
        Stmt g;
        g.kind = StmtKind::kGetField;
        g.field = s.field;
        g.cursor = cur->second;
        g.target_var = s.target_var;
        out.push_back(std::move(g));
        break;
      }
      case StmtKind::kNavModify: {
        const std::string& type = st->run_unit_type;
        auto cur = st->cursor_of_type.find(type);
        if (type.empty() || cur == st->cursor_of_type.end()) return std::nullopt;
        // Modifying the scanned set's sort key would re-position the record
        // mid-scan; the template refuses.
        auto scanned = st->scanned_set_of_type.find(type);
        if (scanned != st->scanned_set_of_type.end()) {
          const SetDef* set = st->schema->FindSet(scanned->second);
          if (set != nullptr) {
            for (const auto& [field, expr] : s.assignments) {
              for (const std::string& key : set->keys) {
                if (EqualsIgnoreCase(field, key)) return std::nullopt;
              }
            }
          }
        }
        Stmt m;
        m.kind = StmtKind::kModify;
        m.cursor = cur->second;
        m.assignments = s.assignments;
        out.push_back(std::move(m));
        break;
      }
      case StmtKind::kNavFind: {
        size_t consumed = 0;
        std::optional<Stmt> lifted = TryBuildForEach(body, i, st, &consumed);
        if (!lifted.has_value()) return std::nullopt;
        out.push_back(std::move(*lifted));
        i += consumed - 1;
        st->run_unit_type.clear();  // inner loop leaves currency behind
        break;
      }
      case StmtKind::kNavStore:
      case StmtKind::kNavErase:
      case StmtKind::kConnect:
      case StmtKind::kDisconnect:
      case StmtKind::kCallDml:
        return std::nullopt;
      case StmtKind::kIf: {
        if (s.cond.has_value() && CondMentions(*s.cond, "DB-STATUS")) {
          return std::nullopt;
        }
        Stmt copy = s;
        std::optional<std::vector<Stmt>> then_body =
            TryLiftLoopBody(s.body, st);
        if (!then_body.has_value()) return std::nullopt;
        std::optional<std::vector<Stmt>> else_body =
            TryLiftLoopBody(s.else_body, st);
        if (!else_body.has_value()) return std::nullopt;
        copy.body = std::move(*then_body);
        copy.else_body = std::move(*else_body);
        out.push_back(std::move(copy));
        break;
      }
      case StmtKind::kWhile: {
        if (s.cond.has_value() && CondMentions(*s.cond, "DB-STATUS")) {
          return std::nullopt;
        }
        Stmt copy = s;
        std::optional<std::vector<Stmt>> inner = TryLiftLoopBody(s.body, st);
        if (!inner.has_value()) return std::nullopt;
        copy.body = std::move(*inner);
        out.push_back(std::move(copy));
        break;
      }
      case StmtKind::kForEach: {
        Stmt copy = s;
        std::string target;
        if (s.retrieval.has_value()) target = ToUpper(s.retrieval->query.target_type);
        auto saved_cursor = st->cursor_of_type;
        if (!target.empty()) st->cursor_of_type[target] = s.cursor;
        std::optional<std::vector<Stmt>> inner = TryLiftLoopBody(s.body, st);
        st->cursor_of_type = std::move(saved_cursor);
        if (!inner.has_value()) return std::nullopt;
        copy.body = std::move(*inner);
        out.push_back(std::move(copy));
        break;
      }
      default: {
        if (StmtMentionsDbStatus(s)) return std::nullopt;
        out.push_back(s);
        break;
      }
    }
  }
  return out;
}

/// Attempts the two loop templates starting at stmts[i]:
///  (a) FIND ANY <O> (pred). FIND FIRST <M> WITHIN <S>. WHILE DB-STATUS ...
///  (b) FIND FIRST <M> WITHIN <S>. WHILE DB-STATUS ...
/// Returns the replacement FOR EACH and sets *consumed.
std::optional<Stmt> TryBuildForEach(const std::vector<Stmt>& stmts, size_t i,
                                    LiftState* st, size_t* consumed) {
  const Schema& schema = *st->schema;
  size_t first_idx = i;
  std::optional<Predicate> owner_pred;
  std::string owner_type;
  bool has_owner_find = false;

  if (stmts[i].kind == StmtKind::kNavFind &&
      stmts[i].nav_find->mode == NavFind::Mode::kAny && i + 2 < stmts.size()) {
    // Candidate (a); only commit if the next two statements fit.
    if (stmts[i + 1].kind == StmtKind::kNavFind &&
        stmts[i + 1].nav_find->mode == NavFind::Mode::kFirst &&
        IsStatusLoop(stmts[i + 2])) {
      has_owner_find = true;
      owner_type = ToUpper(stmts[i].nav_find->record_type);
      owner_pred = stmts[i].nav_find->pred;
      first_idx = i + 1;
    }
  }
  if (stmts[first_idx].kind != StmtKind::kNavFind ||
      stmts[first_idx].nav_find->mode != NavFind::Mode::kFirst ||
      first_idx + 1 >= stmts.size() || !IsStatusLoop(stmts[first_idx + 1])) {
    return std::nullopt;
  }
  const NavFind& first = *stmts[first_idx].nav_find;
  const Stmt& loop = stmts[first_idx + 1];
  if (loop.body.empty()) return std::nullopt;
  const Stmt& last = loop.body.back();
  if (last.kind != StmtKind::kNavFind ||
      last.nav_find->mode != NavFind::Mode::kNext ||
      !EqualsIgnoreCase(last.nav_find->record_type, first.record_type) ||
      !EqualsIgnoreCase(last.nav_find->set_name, first.set_name) ||
      last.nav_find->pred != first.pred) {
    return std::nullopt;
  }
  const SetDef* set = schema.FindSet(first.set_name);
  if (set == nullptr || !EqualsIgnoreCase(set->member, first.record_type)) {
    return std::nullopt;
  }

  // Build the FIND path.
  FindQuery query;
  query.target_type = ToUpper(first.record_type);
  if (has_owner_find) {
    if (!EqualsIgnoreCase(set->owner, owner_type)) return std::nullopt;
    // The owner must be reachable through a system-owned set.
    const SetDef* sys = nullptr;
    for (const SetDef* cand : schema.SetsWithMember(owner_type)) {
      if (cand->system_owned()) {
        sys = cand;
        break;
      }
    }
    if (sys == nullptr) return std::nullopt;
    query.start = "SYSTEM";
    query.steps.push_back(PathStep::Make(PathStep::Kind::kSet, ToUpper(sys->name)));
    PathStep owner_step;
    owner_step.kind = PathStep::Kind::kRecord;
    owner_step.name = owner_type;
    owner_step.qualification = owner_pred;
    query.steps.push_back(std::move(owner_step));
    // "Process the first" vs "process all" (section 3.2): the original
    // FIND ANY stopped at one owner; the path visits all matches.
    if (!owner_pred.has_value() ||
        !SelectsAtMostOne(schema, owner_type, *owner_pred)) {
      st->issues->push_back(
          {AnalysisIssue::Kind::kAmbiguousOwnerSelection,
           "FIND ANY " + owner_type +
               (owner_pred.has_value() ? " (" + owner_pred->ToString() + ")"
                                       : "") +
               " may match several records; the lifted path processes all"});
    }
  } else if (set->system_owned()) {
    query.start = "SYSTEM";
  } else {
    // The occurrence must come from an enclosing cursor over the owner type.
    auto cur = st->cursor_of_type.find(ToUpper(set->owner));
    if (cur == st->cursor_of_type.end()) return std::nullopt;
    query.start = cur->second;
  }
  query.steps.push_back(PathStep::Make(PathStep::Kind::kSet, ToUpper(set->name)));
  PathStep member_step;
  member_step.kind = PathStep::Kind::kRecord;
  member_step.name = ToUpper(set->member);
  member_step.qualification = first.pred;
  query.steps.push_back(std::move(member_step));

  // Lift the loop body under the new cursor.
  std::string member_type = ToUpper(first.record_type);
  std::string cursor = st->NewCursor();
  auto saved_cursors = st->cursor_of_type;
  auto saved_scans = st->scanned_set_of_type;
  std::string saved_run_unit = st->run_unit_type;
  st->cursor_of_type[member_type] = cursor;
  st->scanned_set_of_type[member_type] = ToUpper(set->name);
  st->run_unit_type = member_type;
  std::vector<Stmt> body_without_next(loop.body.begin(),
                                      std::prev(loop.body.end()));
  std::optional<std::vector<Stmt>> lifted_body =
      TryLiftLoopBody(body_without_next, st);
  st->cursor_of_type = std::move(saved_cursors);
  st->scanned_set_of_type = std::move(saved_scans);
  st->run_unit_type = saved_run_unit;
  if (!lifted_body.has_value()) return std::nullopt;

  Stmt for_each;
  for_each.kind = StmtKind::kForEach;
  for_each.cursor = cursor;
  Retrieval retrieval;
  retrieval.query = std::move(query);
  for_each.retrieval = std::move(retrieval);
  for_each.body = std::move(*lifted_body);
  *consumed = (first_idx - i) + 2;
  return for_each;
}

/// Top-level lifting walk. Statements the templates cannot absorb pass
/// through unchanged (and are reported as unlifted navigation afterwards).
std::vector<Stmt> LiftBlock(const std::vector<Stmt>& stmts, LiftState* st) {
  std::vector<Stmt> out;
  for (size_t i = 0; i < stmts.size(); ++i) {
    const Stmt& s = stmts[i];
    if (s.kind == StmtKind::kNavFind) {
      size_t consumed = 0;
      std::optional<Stmt> lifted = TryBuildForEach(stmts, i, st, &consumed);
      if (lifted.has_value()) {
        out.push_back(std::move(*lifted));
        i += consumed - 1;
        st->run_unit_type.clear();
        continue;
      }
      // Track currency for diagnostics even when unlifted.
      st->run_unit_type = ToUpper(s.nav_find->record_type);
      out.push_back(s);
      continue;
    }
    if (s.kind == StmtKind::kIf || s.kind == StmtKind::kWhile) {
      Stmt copy = s;
      copy.body = LiftBlock(s.body, st);
      copy.else_body = LiftBlock(s.else_body, st);
      out.push_back(std::move(copy));
      continue;
    }
    if (s.kind == StmtKind::kForEach) {
      Stmt copy = s;
      std::string target;
      if (s.retrieval.has_value()) {
        target = ToUpper(s.retrieval->query.target_type);
      }
      auto saved = st->cursor_of_type;
      if (!target.empty()) st->cursor_of_type[target] = s.cursor;
      copy.body = LiftBlock(s.body, st);
      st->cursor_of_type = std::move(saved);
      out.push_back(std::move(copy));
      continue;
    }
    out.push_back(s);
  }
  return out;
}

/// Sets traversed by a retrieval (used for order-dependence reporting).
/// Steps are matched against the schema because program retrievals are
/// unresolved (record and set names share one identifier space).
std::vector<std::string> SetsInPath(const Schema& schema,
                                    const FindQuery& query) {
  std::vector<std::string> out;
  for (const PathStep& step : query.steps) {
    if (step.qualification.has_value()) continue;
    if (schema.FindSet(step.name) != nullptr) {
      out.push_back(ToUpper(step.name));
    }
  }
  return out;
}

bool BlockEmitsOutput(const std::vector<Stmt>& body) {
  for (const Stmt& s : body) {
    if (s.kind == StmtKind::kDisplay || s.kind == StmtKind::kWrite) return true;
    if (BlockEmitsOutput(s.body) || BlockEmitsOutput(s.else_body)) return true;
  }
  return false;
}

}  // namespace

bool SelectsAtMostOne(const Schema& schema, const std::string& type,
                      const Predicate& pred) {
  std::vector<std::string> eq_fields;
  if (!CollectEqualityFields(pred, &eq_fields)) return false;
  auto covered = [&eq_fields](const std::vector<std::string>& key_fields) {
    if (key_fields.empty()) return false;
    for (const std::string& k : key_fields) {
      bool found = false;
      for (const std::string& f : eq_fields) {
        if (EqualsIgnoreCase(f, k)) {
          found = true;
          break;
        }
      }
      if (!found) return false;
    }
    return true;
  };
  // Full sort key of a system-owned set: duplicates are rejected within the
  // single occurrence, so equality on the key selects at most one record.
  for (const SetDef* set : schema.SetsWithMember(type)) {
    if (set->system_owned() && set->ordering == SetOrdering::kSortedByKeys &&
        covered(set->keys)) {
      return true;
    }
  }
  for (const ConstraintDef& c : schema.constraints()) {
    if (c.kind == ConstraintKind::kUniqueness &&
        EqualsIgnoreCase(c.record, type) && covered(c.fields)) {
      return true;
    }
  }
  return false;
}

Result<Analysis> ProgramAnalyzer::Analyze(const Program& program) const {
  Analysis analysis;

  LiftState state;
  state.schema = &schema_;
  state.issues = &analysis.issues;
  analysis.lifted = program;
  if (options_.lift_templates) {
    analysis.lifted.body = LiftBlock(program.body, &state);
  }

  // Residual navigation / run-time variability.
  VisitStmts(analysis.lifted.body, [&](const Stmt& s) {
    if (IsNavKind(s.kind)) {
      analysis.fully_lifted = false;
      analysis.issues.push_back(
          {AnalysisIssue::Kind::kUnliftedNavigation,
           "statement not covered by any template: " +
               [&s] {
                 std::string text;
                 s.AppendSource(&text, 0);
                 return Trim(text);
               }()});
    }
    if (s.kind == StmtKind::kCallDml) {
      analysis.issues.push_back(
          {AnalysisIssue::Kind::kRuntimeVariability,
           "DML verb of CALL DML(" + s.verb_var + ", " + s.record_type +
               ") is determined at run time"});
    }
  });

  // Status-code dependence in the lifted form.
  for (const Stmt& s : analysis.lifted.body) {
    if (StmtMentionsDbStatus(s)) {
      analysis.issues.push_back({AnalysisIssue::Kind::kStatusCodeDependence,
                                 "program logic branches on DB-STATUS"});
      break;
    }
  }

  // Order dependence: unsorted retrieval order reaching program output.
  VisitStmts(analysis.lifted.body, [&](const Stmt& s) {
    if (s.kind != StmtKind::kForEach || !s.retrieval.has_value()) return;
    if (!s.retrieval->sort_on.empty()) return;
    if (!BlockEmitsOutput(s.body)) return;
    for (const std::string& set_name :
         SetsInPath(schema_, s.retrieval->query)) {
      if (std::find(analysis.order_dependent_sets.begin(),
                    analysis.order_dependent_sets.end(),
                    set_name) == analysis.order_dependent_sets.end()) {
        analysis.order_dependent_sets.push_back(set_name);
      }
    }
    analysis.issues.push_back(
        {AnalysisIssue::Kind::kOrderDependence,
         "output order depends on member ordering of " +
             Join(SetsInPath(schema_, s.retrieval->query), ", ")});
  });

  // Procedural constraint detection (section 5.3): a STORE guarded by a
  // condition over data read from the would-be owner's record type.
  {
    std::map<std::string, std::string> var_source_type;   // var -> record type
    std::map<std::string, std::string> cursor_type;       // cursor -> type
    std::function<void(const std::vector<Stmt>&)> walk =
        [&](const std::vector<Stmt>& body) {
          for (const Stmt& s : body) {
            if (s.kind == StmtKind::kForEach && s.retrieval.has_value()) {
              cursor_type[s.cursor] = ToUpper(s.retrieval->query.target_type);
            }
            if (s.kind == StmtKind::kGetField) {
              auto it = cursor_type.find(s.cursor);
              if (it != cursor_type.end()) {
                var_source_type[s.target_var] = it->second;
              }
            }
            if (s.kind == StmtKind::kIf && s.cond.has_value()) {
              std::vector<std::string> vars;
              CollectCondVars(*s.cond, &vars);
              VisitStmts(s.body, [&](const Stmt& inner) {
                if (inner.kind != StmtKind::kStore) return;
                for (const Stmt::OwnerSelect& sel : inner.owners) {
                  const SetDef* set = schema_.FindSet(sel.set_name);
                  if (set == nullptr) continue;
                  for (const std::string& v : vars) {
                    auto src = var_source_type.find(v);
                    if (src != var_source_type.end() &&
                        EqualsIgnoreCase(src->second, set->owner)) {
                      analysis.issues.push_back(
                          {AnalysisIssue::Kind::kProceduralConstraint,
                           "STORE " + inner.record_type + " into " +
                               set->name +
                               " is guarded by program logic over " +
                               set->owner +
                               " data (existence check in the program, not "
                               "the model)"});
                      return;
                    }
                  }
                }
              });
            }
            walk(s.body);
            walk(s.else_body);
          }
        };
    walk(analysis.lifted.body);
  }

  // Su access-pattern sequences from the lifted form.
  DBPC_ASSIGN_OR_RETURN(analysis.sequences,
                        DeriveProgramSequences(schema_, analysis.lifted));

  // Classification.
  if (analysis.HasIssue(AnalysisIssue::Kind::kRuntimeVariability)) {
    analysis.convertibility = Convertibility::kNotConvertible;
  } else if (analysis.HasIssue(AnalysisIssue::Kind::kUnliftedNavigation) ||
             analysis.HasIssue(AnalysisIssue::Kind::kStatusCodeDependence) ||
             analysis.HasIssue(
                 AnalysisIssue::Kind::kAmbiguousOwnerSelection)) {
    analysis.convertibility = Convertibility::kNeedsAnalyst;
  } else {
    analysis.convertibility = Convertibility::kAutomatic;
  }
  return analysis;
}

}  // namespace dbpc
