#include "analyze/advisor.h"

#include <functional>
#include <map>

#include "analyze/analyzer.h"
#include "common/string_util.h"
#include "engine/find_query.h"

namespace dbpc {

namespace {

/// The record-type context flowing into step `index` of a resolved query.
std::string ContextBefore(const Schema& schema, const FindQuery& query,
                          size_t index) {
  std::string context;
  for (size_t i = 0; i < index && i < query.steps.size(); ++i) {
    const PathStep& step = query.steps[i];
    if (step.kind == PathStep::Kind::kSet) {
      const SetDef* set = schema.FindSet(step.name);
      if (set != nullptr) context = ToUpper(set->member);
    } else {
      context = ToUpper(step.name);
    }
  }
  return context;
}

void AdviseJoins(const Schema& schema, const Retrieval& retrieval,
                 std::vector<Advice>* out) {
  Retrieval resolved = retrieval;
  if (!ResolveFindQuery(schema, &resolved.query).ok()) return;
  for (size_t i = 0; i < resolved.query.steps.size(); ++i) {
    const PathStep& step = resolved.query.steps[i];
    if (step.kind != PathStep::Kind::kJoin) continue;
    std::string source = ContextBefore(schema, resolved.query, i);
    if (source.empty()) continue;
    // An association between the joined types in either direction makes the
    // value join suspicious: the programmer may not know the access path
    // exists (the paper's "may not be aware of all the access paths").
    const SetDef* down = schema.FindSetBetween(source, step.name);
    const SetDef* up = schema.FindSetBetween(step.name, source);
    if (down != nullptr || up != nullptr) {
      const SetDef* set = down != nullptr ? down : up;
      out->push_back(
          {"join-duplicates-association",
           "JOIN " + step.name + " THROUGH (" + step.join_target_field +
               ", " + step.join_source_field + ") relates " + source +
               " and " + step.name + ", which set " + set->name +
               " already associates; traverse the set instead"});
    }
  }
}

/// Fields assigned by GET <field> OF <cursor> into host variables inside
/// one loop body (direct statements only).
std::map<std::string, std::string> CursorFieldVars(const Stmt& loop) {
  std::map<std::string, std::string> var_to_field;
  for (const Stmt& s : loop.body) {
    if (s.kind == StmtKind::kGetField &&
        EqualsIgnoreCase(s.cursor, loop.cursor)) {
      var_to_field[s.target_var] = ToUpper(s.field);
    }
  }
  return var_to_field;
}

/// True when the condition is a single comparison `var <op> literal` for a
/// var in `var_to_field`; returns the suggested qualification text.
bool SuggestsQualification(const HostCond& cond,
                           const std::map<std::string, std::string>& vars,
                           std::string* suggestion) {
  if (cond.kind != HostCond::Kind::kCompare || cond.operands.size() != 2) {
    return false;
  }
  const HostExpr& lhs = cond.operands[0];
  const HostExpr& rhs = cond.operands[1];
  if (lhs.kind != HostExpr::Kind::kVar ||
      rhs.kind != HostExpr::Kind::kLiteral) {
    return false;
  }
  auto it = vars.find(lhs.var);
  if (it == vars.end()) return false;
  *suggestion = it->second + std::string(" ") + CompareOpSymbol(cond.op) +
                " " + rhs.literal.ToLiteral();
  return true;
}

void AdviseFilters(const Stmt& loop, std::vector<Advice>* out) {
  if (!loop.retrieval.has_value()) return;
  std::map<std::string, std::string> vars = CursorFieldVars(loop);
  if (vars.empty()) return;
  for (const Stmt& s : loop.body) {
    if (s.kind != StmtKind::kIf || !s.cond.has_value()) continue;
    std::string suggestion;
    if (SuggestsQualification(*s.cond, vars, &suggestion)) {
      out->push_back(
          {"filter-after-retrieval",
           "loop over " + loop.retrieval->query.target_type +
               " filters with IF " + s.cond->ToString() +
               "; move the test into the FIND qualification as (" +
               suggestion + ")"});
    }
  }
}

}  // namespace

std::vector<Advice> AdviseProgram(const Schema& schema,
                                  const Program& program) {
  std::vector<Advice> out;

  // Run the analyzer once for the "process first" suspicion, which it
  // already detects as an issue during lifting.
  ProgramAnalyzer analyzer(schema);
  Result<Analysis> analysis = analyzer.Analyze(program);
  if (analysis.ok()) {
    for (const AnalysisIssue& issue : analysis->issues) {
      if (issue.kind == AnalysisIssue::Kind::kAmbiguousOwnerSelection) {
        out.push_back({"process-first-suspicion", issue.detail});
      }
    }
  }

  const Program& subject = analysis.ok() ? analysis->lifted : program;
  VisitStmts(subject.body, [&](const Stmt& s) {
    if ((s.kind == StmtKind::kForEach || s.kind == StmtKind::kRetrieve) &&
        s.retrieval.has_value()) {
      AdviseJoins(schema, *s.retrieval, &out);
    }
    if (s.kind == StmtKind::kForEach) {
      AdviseFilters(s, &out);
    }
  });
  return out;
}

}  // namespace dbpc
