#ifndef DBPC_ANALYZE_ADVISOR_H_
#define DBPC_ANALYZE_ADVISOR_H_

#include <string>
#include <vector>

#include "lang/ast.h"
#include "schema/schema.h"

namespace dbpc {

/// A program-improvement suggestion. Paper section 5.3: "If a program
/// analyzer can be successfully constructed, it could be used as a
/// programmer's aid during initial writing of database application
/// programs. Application programmers may misunderstand or misuse data
/// relationships ... Program 'improvement' of this kind should be a
/// natural byproduct of a good program analyzer."
struct Advice {
  /// Stable kebab-case kind:
  ///  - "join-duplicates-association": a value join relates two types that
  ///    the schema already associates; the set traversal is cheaper and
  ///    conversion-friendlier.
  ///  - "filter-after-retrieval": a loop retrieves unqualified records and
  ///    immediately filters with IF; the test belongs in the FIND
  ///    qualification.
  ///  - "process-first-suspicion": a FIND ANY whose predicate may match
  ///    several records feeds a member scan ("process all" vs "process the
  ///    first", section 3.2).
  std::string kind;
  std::string detail;

  std::string ToString() const { return kind + ": " + detail; }
};

/// Inspects a program against a schema and returns improvement advice.
/// Purely advisory: the program is valid and convertible (or not)
/// regardless.
std::vector<Advice> AdviseProgram(const Schema& schema,
                                  const Program& program);

}  // namespace dbpc

#endif  // DBPC_ANALYZE_ADVISOR_H_
