#include "equivalence/checker.h"

namespace dbpc {

Result<Trace> TraceOf(const Database& db, const Program& program,
                      const IoScript& script) {
  Database copy = db;
  Interpreter interp(&copy, script);
  DBPC_ASSIGN_OR_RETURN(RunResult run, interp.Run(program));
  return run.trace;
}

Result<EquivalenceReport> CheckEquivalence(const Database& source_db,
                                           const Program& source_program,
                                           const Database& target_db,
                                           const Program& target_program,
                                           const IoScript& script) {
  EquivalenceReport report;
  DBPC_ASSIGN_OR_RETURN(report.source_trace,
                        TraceOf(source_db, source_program, script));
  DBPC_ASSIGN_OR_RETURN(report.target_trace,
                        TraceOf(target_db, target_program, script));
  report.divergence =
      Trace::FirstDivergence(report.source_trace, report.target_trace);
  report.equivalent = report.divergence < 0;
  if (!report.equivalent) {
    size_t idx = static_cast<size_t>(report.divergence);
    auto text = [idx](const Trace& t) {
      return idx < t.events().size() ? t.events()[idx].ToString()
                                     : std::string("<no event>");
    };
    report.detail = "traces diverge at event " + std::to_string(idx) +
                    ": source " + text(report.source_trace) + " vs target " +
                    text(report.target_trace);
  }
  return report;
}

}  // namespace dbpc
