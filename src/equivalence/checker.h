#ifndef DBPC_EQUIVALENCE_CHECKER_H_
#define DBPC_EQUIVALENCE_CHECKER_H_

#include <string>

#include "engine/database.h"
#include "lang/ast.h"
#include "lang/interpreter.h"

namespace dbpc {

/// Verdict of the operational "runs equivalently" check (paper section
/// 1.1): except with respect to the database, the converted program must
/// preserve the input/output behaviour of the original — identical terminal
/// interactions and identical reads/writes of non-database files.
struct EquivalenceReport {
  bool equivalent = false;
  /// Index of the first differing trace event (-1 when equivalent).
  ptrdiff_t divergence = -1;
  /// Human-readable explanation of the divergence.
  std::string detail;
  Trace source_trace;
  Trace target_trace;
};

/// Runs `source_program` against a copy of `source_db` and `target_program`
/// against a copy of `target_db` under the same I/O script, then compares
/// the non-database I/O traces event by event. Database state changes are
/// deliberately NOT compared (the definition permits different database
/// interactions).
Result<EquivalenceReport> CheckEquivalence(const Database& source_db,
                                           const Program& source_program,
                                           const Database& target_db,
                                           const Program& target_program,
                                           const IoScript& script);

/// Convenience: runs a program against a copy of `db` and returns its trace.
Result<Trace> TraceOf(const Database& db, const Program& program,
                      const IoScript& script);

}  // namespace dbpc

#endif  // DBPC_EQUIVALENCE_CHECKER_H_
