#include "api/types.h"

namespace dbpc {

const char* JobStateName(JobState state) {
  switch (state) {
    case JobState::kQueued:
      return "queued";
    case JobState::kRunning:
      return "running";
    case JobState::kDone:
      return "done";
    case JobState::kFailed:
      return "failed";
  }
  return "unknown";
}

Result<JobState> ParseJobState(const std::string& name) {
  if (name == "queued") return JobState::kQueued;
  if (name == "running") return JobState::kRunning;
  if (name == "done") return JobState::kDone;
  if (name == "failed") return JobState::kFailed;
  return Status::InvalidArgument("unknown job state \"" + name + "\"");
}

namespace {

/// The stable StatusCode <-> wire-error table. Append-only: tokens are
/// part of the dbpcd protocol (DAEMON.md "Error codes") and clients
/// switch on them, so an entry is never renamed or removed.
constexpr struct {
  StatusCode code;
  const char* token;
} kWireErrors[] = {
    {StatusCode::kOk, "ok"},
    {StatusCode::kInvalidArgument, "bad-request"},
    {StatusCode::kNotFound, "not-found"},
    {StatusCode::kAlreadyExists, "already-exists"},
    {StatusCode::kConstraintViolation, "constraint"},
    {StatusCode::kParseError, "parse-error"},
    {StatusCode::kTypeError, "type-error"},
    {StatusCode::kNotConvertible, "refused"},
    {StatusCode::kNeedsAnalyst, "needs-analyst"},
    {StatusCode::kUnsupported, "unsupported"},
    {StatusCode::kInternal, "internal"},
    {StatusCode::kUnavailable, "unavailable"},
    {StatusCode::kDeadlineExceeded, "deadline"},
};

}  // namespace

const char* WireErrorName(StatusCode code) {
  for (const auto& entry : kWireErrors) {
    if (entry.code == code) return entry.token;
  }
  return "internal";
}

Result<StatusCode> ParseWireError(const std::string& token) {
  for (const auto& entry : kWireErrors) {
    if (token == entry.token) return entry.code;
  }
  return Status::InvalidArgument("unknown wire error token \"" + token +
                                 "\"");
}

Status ConversionRequest::Validate() const {
  if (source.empty() && !program.has_value()) {
    return Status::InvalidArgument(
        "ConversionRequest needs source text or a parsed program");
  }
  if (deadline_ms < 0) {
    return Status::InvalidArgument(
        "ConversionRequest::deadline_ms must be >= 0 (got " +
        std::to_string(deadline_ms) + ")");
  }
  return Status::OK();
}

}  // namespace dbpc
