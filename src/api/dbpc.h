#ifndef DBPC_API_DBPC_H_
#define DBPC_API_DBPC_H_

/// The supported public surface of the dbpc library.
///
/// External callers (tools, examples, embedders) include this single
/// header — and link `dbpc_api` — instead of reaching into the internal
/// module headers, whose layout may change between releases. Everything
/// re-exported here is covered by the compatibility expectations described
/// in README.md; anything included directly from `src/<module>/` is
/// internal.
///
/// Entry points by layer:
///
///   Infrastructure   Status, StatusCode, Result<T>, MetricsRegistry,
///                    Counter, Histogram, SpanCollector, SpanContext
///                    (structured span tracing, Chrome trace_event export)
///   Schema & data    Schema, ParseDdl, Database, LoadDatabaseText,
///                    DumpDatabaseText
///   Programs         Program, ParseProgram, ExecuteProgram (interpreter)
///   Restructuring    Transformation, RestructuringPlan, ParsePlan
///   Pipeline         ProgramAnalyzer, ProgramConverter, OptimizeProgram,
///                    StatisticsCatalog (cost-based plan selection),
///                    GenerateCplSource, ConversionSupervisor,
///                    SupervisorOptions, AnalystMode, Provenance,
///                    ProvenanceListing, UnstampedCount (statement-level
///                    conversion provenance)
///   Requests         ConversionRequest, ConversionResponse, JobId,
///                    JobState, WireErrorName/ParseWireError (api/types.h:
///                    the one request model shared by the in-process
///                    service and the dbpcd wire protocol)
///   Batch service    ConversionService, ServiceOptions (parallel
///                    whole-system conversion with metrics).
///                    `ConvertSystem(std::vector<Program>)` is a
///                    deprecated shim kept for one release; submit
///                    ConversionRequests instead.
///   Network daemon   ConversionDaemon, DaemonOptions, DaemonClient
///                    (daemon/daemon.h, daemon/client.h; wire protocol in
///                    DAEMON.md)
///   Verification     CheckEquivalence, AdviseProgram
///   Cross-model      LowerToNavigational, GenerateSequel, hierarchical
///                    and relational backends, emulation bridge
///   Workloads        GenerateCompanyCorpus (synthetic application systems)
///   Fuzzing          GenerateFuzzCase, RunFuzzCase, RunFuzz, ShrinkFuzzCase,
///                    ReplayRepro (differential trace-equivalence harness)

#include "api/types.h"
#include "common/metrics.h"
#include "common/result.h"
#include "common/span.h"
#include "common/status.h"

#include "engine/database.h"
#include "engine/textio.h"
#include "schema/ddl_parser.h"
#include "schema/schema.h"

#include "lang/ast.h"
#include "lang/interpreter.h"
#include "lang/parser.h"

#include "restructure/plan_parser.h"
#include "restructure/transformation.h"

#include "analyze/advisor.h"
#include "analyze/analyzer.h"
#include "convert/converter.h"
#include "convert/provenance.h"
#include "generate/generator.h"
#include "optimize/optimizer.h"
#include "optimize/stats.h"
#include "supervisor/supervisor.h"

#include "service/service.h"

#include "common/log.h"

#include "daemon/admin.h"
#include "daemon/client.h"
#include "daemon/daemon.h"
#include "daemon/protocol.h"

#include "equivalence/checker.h"

#include "bridge/bridge.h"
#include "emulate/emulator.h"
#include "hierarchical/hierarchical.h"
#include "relational/relational.h"

#include "corpus/corpus.h"

#include "fuzz/fuzz.h"

#endif  // DBPC_API_DBPC_H_
