#ifndef DBPC_API_TYPES_H_
#define DBPC_API_TYPES_H_

/// Public request/response value types for submitting conversion jobs.
///
/// Both entry points into the conversion pipeline consume these types:
///
///   - in-process: `ConversionService::Convert` /
///     `ConversionService::ConvertSystem` (service/service.h)
///   - over the network: the `dbpcd` wire protocol (daemon/protocol.h,
///     documented in DAEMON.md) encodes a `ConversionRequest` per SUBMIT
///     and decodes every reply into a `ConversionResponse`
///
/// so a program converted locally and one submitted to a daemon share one
/// request model, one `StatusCode`-to-wire error mapping (the table below)
/// and one metrics/span story.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "lang/ast.h"
#include "supervisor/supervisor.h"

namespace dbpc {

/// Identifies one submitted conversion job. Assigned by the accepting
/// service (the daemon numbers jobs 1, 2, ... per process); 0 means
/// "not yet assigned".
using JobId = uint64_t;

/// Lifecycle of a submitted job. `kDone` covers every conversion that ran
/// to completion — including ones degraded to refused — while `kFailed` is
/// reserved for jobs whose input never reached the pipeline (parse or
/// validation errors); `ConversionResponse::status` carries the cause.
enum class JobState {
  kQueued,   ///< Admitted, waiting for a worker.
  kRunning,  ///< A worker is converting it now.
  kDone,     ///< Conversion finished; see `accepted` / `classification`.
  kFailed,   ///< Input rejected before conversion; see `status`.
};

/// Canonical lowercase wire name of a job state ("queued", "running",
/// "done", "failed"). Stable: clients parse these.
const char* JobStateName(JobState state);

/// Inverse of JobStateName; kInvalidArgument for unknown names.
Result<JobState> ParseJobState(const std::string& name);

/// The stable wire-error token for a status code ("bad-request",
/// "refused", "unavailable", ...). This is the on-the-wire error
/// vocabulary of the dbpcd protocol: tokens are append-only across
/// releases, never renamed, so clients may switch on them.
const char* WireErrorName(StatusCode code);

/// Inverse of WireErrorName; kInvalidArgument for unknown tokens.
Result<StatusCode> ParseWireError(const std::string& token);

/// One program submitted for conversion.
///
/// A request is self-contained and serializable: the wire codec ships
/// `source` (plus the scalar knobs) and the receiving end parses it. An
/// in-process caller that already holds a parsed `Program` sets `program`
/// instead and `source` is ignored.
struct ConversionRequest {
  /// Program name override for reports and job listings. When empty the
  /// parsed program's own name is used.
  std::string name;
  /// CPL source text of the program. Parsed by the converting service;
  /// a parse error fails the job (JobState::kFailed, kParseError).
  std::string source;
  /// Pre-parsed program; takes precedence over `source` when set. Never
  /// sent over the wire.
  std::optional<Program> program;
  /// Per-request soft deadline in milliseconds; 0 inherits the service
  /// default (ServiceOptions::deadline_ms). Enforced cooperatively like
  /// the service deadline: an overrunning conversion is retried and then
  /// degraded to refused, never dropped without a response.
  int deadline_ms = 0;
  /// When true the conversion is traced (common/span.h) and the response
  /// carries the span forest as indented text in `trace_text`.
  bool trace = false;

  /// Rejects structurally invalid requests (no source and no program,
  /// negative deadline) with a structured error.
  Status Validate() const;
};

/// The outcome of one conversion job, shared by the in-process and
/// network paths. The wire codec serializes the scalar fields, `notes`
/// and the converted source; `outcome` (the full PipelineOutcome with
/// optimizer stats and the parsed converted program) is in-process-only
/// detail for callers that need more than the wire carries.
struct ConversionResponse {
  JobId id = 0;
  JobState state = JobState::kDone;
  /// kOk unless `state` is kFailed (parse/validation error) or the
  /// response reports a daemon-level refusal (queue full -> kUnavailable).
  Status status;
  /// True when a converted program was produced.
  bool accepted = false;
  Convertibility classification = Convertibility::kAutomatic;
  /// The program name as reported (request override or parsed name).
  std::string program_name;
  /// Generated CPL source of the converted program when `accepted`.
  std::string converted_source;
  /// Analyst-facing notes: rewrite-rule notes plus degradation
  /// diagnostics.
  std::vector<std::string> notes;
  /// Span forest (SpanCollector::ToText) when the request asked for
  /// tracing; empty otherwise.
  std::string trace_text;
  /// Wall time the job spent converting (excludes daemon queue wait).
  uint64_t latency_us = 0;
  /// Full pipeline detail (classification, converted Program, optimizer
  /// stats, analyst log). Not serialized by the wire codec.
  PipelineOutcome outcome;
};

}  // namespace dbpc

#endif  // DBPC_API_TYPES_H_
