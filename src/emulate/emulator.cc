#include "emulate/emulator.h"

#include "analyze/analyzer.h"
#include "optimize/optimizer.h"
#include "restructure/rewrite_util.h"

namespace dbpc {

Result<DmlEmulator> DmlEmulator::Create(
    Schema source, std::vector<const Transformation*> plan) {
  DBPC_ASSIGN_OR_RETURN(
      ProgramConverter converter,
      ProgramConverter::Create(std::move(source), std::move(plan)));
  return DmlEmulator(std::move(converter));
}

namespace {

/// The key list reproducing a SYSTEM-rooted source path's full result
/// order: the concatenated sort keys of every traversed sorted set, usable
/// only when each key is readable (actually or virtually) on the target
/// record type. Unlike NaturalOrderKeys this also covers grouped orders
/// (outer set keys prefix the inner ones). Returns nullopt when any
/// traversed set is chronological or a key is not reachable.
std::optional<std::vector<std::string>> SourceOrderKeys(
    const Schema& schema, const FindQuery& query) {
  if (!query.starts_at_system()) return std::nullopt;
  const RecordTypeDef* target = schema.FindRecordType(query.target_type);
  if (target == nullptr) return std::nullopt;
  std::vector<std::string> keys;
  for (const PathStep& step : query.steps) {
    const SetDef* set = schema.FindSet(step.name);
    if (set == nullptr) continue;  // record step
    if (set->ordering != SetOrdering::kSortedByKeys) return std::nullopt;
    for (const std::string& key : set->keys) {
      if (!target->HasField(key)) return std::nullopt;
      keys.push_back(key);
    }
  }
  if (keys.empty()) return std::nullopt;
  return keys;
}

}  // namespace

Result<DmlEmulator::EmulationRun> DmlEmulator::Run(
    const Program& source_program, Database* target_db,
    const IoScript& script) const {
  EmulationRun out;

  // Per-call order reconstruction: the emulation layer must hand records
  // back in the order the source database would have produced, so record
  // the natural order of every source retrieval before mapping.
  ProgramAnalyzer analyzer(converter_.source_schema());
  DBPC_ASSIGN_OR_RETURN(Analysis source_analysis,
                        analyzer.Analyze(source_program));
  std::vector<std::optional<std::vector<std::string>>> source_orders;
  {
    Program lifted = source_analysis.lifted;
    rewrite::ForEachRetrievalMut(&lifted, [&](Retrieval* r) {
      FindQuery q = r->query;
      if (ResolveFindQuery(converter_.source_schema(), &q).ok()) {
        source_orders.push_back(SourceOrderKeys(converter_.source_schema(), q));
      } else {
        source_orders.push_back(std::nullopt);
      }
    });
  }

  // The mapping work happens on EVERY run — that is the point of the
  // strategy and of this accounting.
  DBPC_ASSIGN_OR_RETURN(ConversionResult mapped,
                        converter_.Convert(source_program));
  if (mapped.outcome == Convertibility::kNotConvertible) {
    return Status::NotConvertible(
        "emulation layer cannot map a run-time-variable program");
  }
  out.mapping_statements = mapped.converted.StatementCount();

  // Force order reconstruction on every retrieval that has a known source
  // order and no explicit SORT after mapping (emulation mimics the source
  // behaviour at the call level; it cannot know which orders matter).
  size_t index = 0;
  rewrite::ForEachRetrievalMut(&mapped.converted, [&](Retrieval* r) {
    if (index < source_orders.size() && r->sort_on.empty() &&
        source_orders[index].has_value()) {
      r->sort_on = *source_orders[index];
      ++out.reconstruction_sorts;
    }
    ++index;
  });

  Interpreter interp(target_db, script);
  DBPC_ASSIGN_OR_RETURN(out.run, interp.Run(mapped.converted));
  return out;
}

}  // namespace dbpc
