#include "emulate/emulator.h"

#include "analyze/analyzer.h"
#include "convert/provenance.h"
#include "optimize/optimizer.h"
#include "restructure/rewrite_util.h"

namespace dbpc {

Result<DmlEmulator> DmlEmulator::Create(
    Schema source, std::vector<const Transformation*> plan) {
  DBPC_ASSIGN_OR_RETURN(
      ProgramConverter converter,
      ProgramConverter::Create(std::move(source), std::move(plan)));
  return DmlEmulator(std::move(converter));
}

Result<DmlEmulator::EmulationRun> DmlEmulator::Run(
    const Program& source_program, Database* target_db, const IoScript& script,
    SpanContext span) const {
  EmulationRun out;

  // Per-call order reconstruction: the emulation layer must hand records
  // back in the order the source database would have produced. Make that
  // order explicit as a SORT on the *source* program before mapping, so
  // later plan steps (field/record renames, path splices) rewrite the sort
  // keys along with everything else. Forcing the sort after mapping would
  // leave source-schema field names in a target-schema program.
  ProgramAnalyzer analyzer(converter_.source_schema());
  DBPC_ASSIGN_OR_RETURN(Analysis source_analysis,
                        analyzer.Analyze(source_program));
  Program prepared = source_analysis.lifted;
  rewrite::ForEachRetrievalMut(&prepared, [&](Retrieval* r) {
    if (!r->sort_on.empty()) return;  // explicit order already
    FindQuery q = r->query;
    if (!ResolveFindQuery(converter_.source_schema(), &q).ok()) return;
    std::optional<std::vector<std::string>> keys =
        rewrite::PathOrderKeys(converter_.source_schema(), q, "");
    // The SORT restates the path's natural order, so the source program's
    // behaviour is unchanged; emulation mimics the source behaviour at the
    // call level and cannot know which orders matter.
    if (keys.has_value() && !keys->empty()) {
      r->sort_on = *keys;
      ++out.reconstruction_sorts;
    }
  });

  // The mapping work happens on EVERY run — that is the point of the
  // strategy and of this accounting.
  DBPC_ASSIGN_OR_RETURN(ConversionResult mapped,
                        converter_.Convert(prepared, span));
  if (mapped.outcome == Convertibility::kNotConvertible) {
    return Status::NotConvertible(
        "emulation layer cannot map a run-time-variable program");
  }
  // The mapped calls are the emulation layer's work, not a program
  // rewrite's; provenance says so.
  RestampStrategy(&mapped.converted, "emulation");
  out.mapping_statements = mapped.converted.StatementCount();

  Interpreter interp(target_db, script);
  SpanContext exec_span = span.StartChild("emulated_execution");
  Result<RunResult> run = interp.Run(mapped.converted, exec_span);
  exec_span.End();
  DBPC_ASSIGN_OR_RETURN(out.run, std::move(run));
  return out;
}

}  // namespace dbpc
