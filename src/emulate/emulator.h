#ifndef DBPC_EMULATE_EMULATOR_H_
#define DBPC_EMULATE_EMULATOR_H_

#include <vector>

#include "convert/converter.h"
#include "lang/interpreter.h"
#include "restructure/transformation.h"

namespace dbpc {

/// The DML emulation strategy (paper section 2.1.2, Honeywell "Task 609"):
/// the application program is *not* rewritten; each of its DML calls is
/// intercepted at execution time and mapped, through a mapping description
/// derived from the restructuring, onto equivalent calls against the
/// restructured database.
///
/// This implementation builds the per-call mapping by converting the
/// program's DML statements afresh on every run (modelling the mapping
/// tables and interception work), applies no global optimization — each
/// source call maps to the literal spliced path — and reconstructs the
/// source database's set ordering on every retrieval (a per-call SORT),
/// which is where the strategy's "degraded efficiency" comes from.
class DmlEmulator {
 public:
  /// The plan describes the restructuring the emulator must hide.
  /// Transformations must outlive the emulator.
  static Result<DmlEmulator> Create(Schema source,
                                    std::vector<const Transformation*> plan);

  /// Per-run accounting.
  struct EmulationRun {
    RunResult run;
    /// Statements of mapping work performed before execution (per run —
    /// emulation pays this on every execution, a rewrite pays it once).
    size_t mapping_statements = 0;
    /// Retrievals that required order reconstruction (per-call SORTs).
    size_t reconstruction_sorts = 0;
  };

  /// Runs the ORIGINAL source program against the restructured `target_db`
  /// through the emulation layer. Refuses programs the mapping cannot
  /// cover (same refusals as conversion — the strategy shares the analysis
  /// problem). The mapped statements carry Provenance with strategy
  /// "emulation". With an enabled `span`, the mapping stages and the
  /// emulated execution (per-statement OpStats) appear as child spans.
  Result<EmulationRun> Run(const Program& source_program, Database* target_db,
                           const IoScript& script,
                           SpanContext span = {}) const;

  const Schema& source_schema() const { return converter_.source_schema(); }
  const Schema& target_schema() const { return converter_.target_schema(); }

 private:
  explicit DmlEmulator(ProgramConverter converter)
      : converter_(std::move(converter)) {}

  ProgramConverter converter_;
};

}  // namespace dbpc

#endif  // DBPC_EMULATE_EMULATOR_H_
