#ifndef DBPC_STORAGE_RECORD_H_
#define DBPC_STORAGE_RECORD_H_

#include <cstdint>
#include <map>
#include <string>

#include "common/value.h"

namespace dbpc {

/// Stable identifier of a stored record. Zero is never a valid id.
using RecordId = uint64_t;

/// Pseudo-owner id used for the single occurrence of a SYSTEM-owned set.
inline constexpr RecordId kSystemOwner = static_cast<RecordId>(-1);

/// Field name (canonical upper case) to value.
using FieldMap = std::map<std::string, Value>;

/// One stored record instance. Only actual (non-virtual) fields are
/// materialized; virtual fields are resolved by the engine layer.
struct StoredRecord {
  RecordId id = 0;
  std::string type;
  FieldMap fields;
};

}  // namespace dbpc

#endif  // DBPC_STORAGE_RECORD_H_
