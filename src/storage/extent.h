#ifndef DBPC_STORAGE_EXTENT_H_
#define DBPC_STORAGE_EXTENT_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/value.h"
#include "storage/record.h"

namespace dbpc {

class Store;

/// Extent-based columnar storage, the DataSeries extent + sink pattern:
/// fixed-size typed extents per record type, one typed column vector per
/// field plus a null bitmap, optional dictionary encoding for string
/// columns. Extents are the framework's bulk-data currency — the data
/// translator stages rows through them, `Database::BulkLoad` ingests them,
/// and full-scan consumers (statistics collection, the bridge fingerprint,
/// the scale benches) read them column-wise instead of record-at-a-time
/// through `Store`'s map heap. The record-at-a-time `Store` API stays
/// authoritative for the navigational engines: an `ExtentTable` is either
/// a staging buffer on its way into a store or a read snapshot of one, so
/// trace semantics are untouched.

struct ExtentOptions {
  /// Rows per extent (the fixed extent size of the DataSeries pattern).
  size_t extent_rows = 4096;
  /// Dictionary-encode string columns: each distinct value stored once,
  /// rows hold 32-bit codes. Repetitive bulk data (names, categories)
  /// shrinks by the repetition factor.
  bool dictionary_strings = true;
};

/// One typed column fragment inside an extent. Values whose dynamic type
/// matches the declared column type live in the typed vector; nulls are a
/// bit in the bitmap (with a placeholder keeping the vector row-aligned);
/// the rare value whose dynamic type contradicts the declared type — odd
/// DEFAULT values, unchecked `mutable_store()` loads — is kept row-aligned
/// in a side table so a snapshot is always faithful to the store.
class ExtentColumn {
 public:
  /// Code stored for null / exception rows of a dictionary column.
  static constexpr uint32_t kNullCode = 0xffffffffu;

  ExtentColumn(FieldType declared, bool dictionary);

  FieldType declared() const { return declared_; }
  bool dictionary_encoded() const { return dictionary_; }
  size_t rows() const { return rows_; }

  void Append(const Value& v);

  // Typed appends for bulk writers that already know the value shape
  // (e.g. staging straight from another extent). AppendInt / AppendDouble /
  // AppendString require the matching declared type; callers that cannot
  // guarantee it must go through Append(Value).
  void AppendNull() {
    const size_t row = BeginAppend();
    null_bits_.back() |= uint64_t{1} << (row & 63u);
    AppendPlaceholder();
  }
  void AppendInt(int64_t v) {
    BeginAppend();
    ints_.push_back(v);
  }
  void AppendDouble(double v) {
    BeginAppend();
    doubles_.push_back(v);
  }
  void AppendString(const std::string& s) {
    BeginAppend();
    if (dictionary_) {
      // find-then-insert: emplace would allocate a node per call even for
      // the duplicate hits a dictionary exists to absorb.
      auto it = dict_index_.find(s);
      if (it == dict_index_.end()) {
        it = dict_index_.emplace(s, static_cast<uint32_t>(dict_.size())).first;
        dict_.push_back(s);
      }
      codes_.push_back(it->second);
    } else {
      plain_.push_back(s);
    }
  }

  bool IsNull(size_t row) const {
    return (null_bits_[row >> 6] >> (row & 63u)) & 1u;
  }

  /// Value at `row` (cold path; scans should read the typed vectors).
  Value At(size_t row) const;

  // Typed fast paths. Each vector has exactly one entry per row; null and
  // exception rows hold placeholders (check IsNull / exceptions()).
  const std::vector<int64_t>& ints() const { return ints_; }
  const std::vector<double>& doubles() const { return doubles_; }
  /// Dictionary codes per row (kNullCode for null / exception rows).
  const std::vector<uint32_t>& codes() const { return codes_; }
  /// Distinct string values, indexed by code, in first-seen order.
  const std::vector<std::string>& dictionary() const { return dict_; }
  /// Row-aligned strings of a non-dictionary string column.
  const std::vector<std::string>& plain() const { return plain_; }

  bool has_exceptions() const { return !exceptions_.empty(); }
  /// row -> value for rows whose dynamic type contradicts declared().
  const std::map<size_t, Value>& exceptions() const { return exceptions_; }

  /// Approximate heap footprint in bytes (benchmark accounting).
  size_t ByteSize() const;

 private:
  void AppendPlaceholder();

  /// Claims the next row slot and keeps the null bitmap sized; returns the
  /// row just claimed.
  size_t BeginAppend() {
    const size_t row = rows_++;
    if ((row & 63u) == 0) null_bits_.push_back(0);
    return row;
  }

  FieldType declared_;
  bool dictionary_;
  size_t rows_ = 0;
  std::vector<uint64_t> null_bits_;
  std::vector<int64_t> ints_;
  std::vector<double> doubles_;
  std::vector<uint32_t> codes_;
  std::vector<std::string> plain_;
  std::vector<std::string> dict_;
  std::unordered_map<std::string, uint32_t> dict_index_;
  std::map<size_t, Value> exceptions_;
};

/// A fixed-capacity chunk of rows: one ExtentColumn per field plus the
/// row's record id (0 for staged rows that have no store identity yet).
class Extent {
 public:
  Extent(const std::vector<FieldType>& types, const ExtentOptions& options);
  /// As above with a per-column dictionary override (adaptive encoding).
  Extent(const std::vector<FieldType>& types, const ExtentOptions& options,
         const std::vector<char>& dict_enabled);

  size_t rows() const { return ids_.size(); }
  size_t columns() const { return columns_.size(); }
  bool Full() const { return ids_.size() >= capacity_; }

  const ExtentColumn& column(size_t i) const { return columns_[i]; }
  const std::vector<RecordId>& ids() const { return ids_; }

  /// Opens one row for column-by-column typed appends: the caller must
  /// append exactly one value to every column before the next row opens.
  void BeginRow(RecordId id) { ids_.push_back(id); }
  ExtentColumn& MutableColumn(size_t i) { return columns_[i]; }

  /// Appends one row; `values` must hold columns() entries.
  void AppendRow(RecordId id, const Value* values, size_t n);

  /// As above, through per-column pointers (no staged Value copies).
  void AppendRow(RecordId id, const Value* const* values, size_t n);

  /// Rewrites row ids to the consecutive run starting at `first`
  /// (store adoption: staged rows receive their real identities).
  void AssignIds(RecordId first);

  size_t ByteSize() const;

 private:
  size_t capacity_;
  std::vector<ExtentColumn> columns_;
  std::vector<RecordId> ids_;
};

/// All rows of one record type as a sequence of fixed-size extents; the
/// bulk Append / Scan API. Field names are canonicalized to upper case.
class ExtentTable {
 public:
  ExtentTable(std::string type, std::vector<std::string> field_names,
              std::vector<FieldType> field_types, ExtentOptions options = {});

  /// Columnar snapshot of every live `type_upper` record of `store`, in
  /// ascending id order, one column per entry of `field_names`. A field
  /// missing from a record snapshots as null (the engine reads the two
  /// identically).
  static ExtentTable FromStore(const Store& store,
                               const std::string& type_upper,
                               std::vector<std::string> field_names,
                               std::vector<FieldType> field_types,
                               ExtentOptions options = {});

  const std::string& type() const { return type_; }
  const std::vector<std::string>& field_names() const { return field_names_; }
  const std::vector<FieldType>& field_types() const { return field_types_; }
  size_t columns() const { return field_names_.size(); }
  size_t rows() const { return rows_; }

  /// Column position of `field_upper`, or -1 when absent.
  int ColumnIndex(const std::string& field_upper) const;

  /// Appends one row; `values` must hold columns() entries, in column
  /// order. `id` is the row's store identity (0 while staging).
  void AppendRow(RecordId id, const std::vector<Value>& values);

  /// Pointer variant for hot staging paths: `values` must hold columns()
  /// non-null entries; each pointee is appended without a copy.
  void AppendRow(RecordId id, const Value* const* values);

  /// Opens one row and hands back the extent it lives in so the caller can
  /// drive each column's typed append itself (extent-to-extent staging).
  /// Exactly one value must be appended to every column before the next
  /// row opens.
  Extent& BeginRow(RecordId id);

  /// Rewrites all row ids to the consecutive run starting at `first`.
  void AssignIds(RecordId first);

  /// Random access (cold path; bulk consumers iterate extents()).
  Value At(size_t row, size_t col) const;
  RecordId IdAt(size_t row) const;
  /// Null check without constructing a Value (exception rows are non-null).
  bool IsNull(size_t row, size_t col) const;

  const std::vector<Extent>& extents() const { return extents_; }

  /// Bulk scan: visits each extent with the table-global index of its
  /// first row.
  void Scan(const std::function<void(const Extent&, size_t first_row)>&
                visit) const;

  /// Approximate heap footprint in bytes (benchmark accounting).
  size_t ByteSize() const;

 private:
  Extent& CurrentExtent();
  void ReviseDictionaries(const Extent& full);

  std::string type_;
  std::vector<std::string> field_names_;
  std::vector<FieldType> field_types_;
  ExtentOptions options_;
  std::unordered_map<std::string, int> col_index_;
  std::vector<Extent> extents_;
  /// Adaptive per-column dictionary choice for the NEXT extent: a column
  /// whose finished extent dictionary held nearly one entry per row (all
  /// values distinct) encodes nothing, so later extents store it plain.
  std::vector<char> dict_enabled_;
  size_t rows_ = 0;
};

}  // namespace dbpc

#endif  // DBPC_STORAGE_EXTENT_H_
