#ifndef DBPC_STORAGE_STORE_H_
#define DBPC_STORAGE_STORE_H_

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/value.h"

namespace dbpc {

/// Stable identifier of a stored record. Zero is never a valid id.
using RecordId = uint64_t;

/// Pseudo-owner id used for the single occurrence of a SYSTEM-owned set.
inline constexpr RecordId kSystemOwner = static_cast<RecordId>(-1);

/// Field name (canonical upper case) to value.
using FieldMap = std::map<std::string, Value>;

/// One stored record instance. Only actual (non-virtual) fields are
/// materialized; virtual fields are resolved by the engine layer.
struct StoredRecord {
  RecordId id = 0;
  std::string type;
  FieldMap fields;
};

/// Untyped record heap plus owner-coupled set membership, shared by all
/// three data-model facades. The store knows nothing about schemas; the
/// `Database` engine layers validation and constraint enforcement on top.
///
/// Set occurrences are kept as explicit ordered member lists per owner, the
/// in-memory analogue of 1970s chain/pointer-array set implementations.
class Store {
 public:
  /// Inserts a record and returns its new id.
  RecordId Insert(std::string type, FieldMap fields);

  /// Removes a record. The caller must already have disconnected it from
  /// every set (the engine's Erase handles ordering).
  Status Remove(RecordId id);

  bool Exists(RecordId id) const { return records_.count(id) > 0; }
  const StoredRecord* Get(RecordId id) const;
  StoredRecord* GetMutable(RecordId id);

  /// All live records of `type`, in ascending id (i.e. insertion) order.
  /// Served from a per-type directory: O(live-of-type), not a heap walk.
  const std::vector<RecordId>& OfType(const std::string& type) const;

  /// Copying wrapper around OfType for callers that mutate while iterating.
  std::vector<RecordId> AllOfType(const std::string& type) const {
    return OfType(type);
  }

  /// All live record ids in insertion order.
  std::vector<RecordId> AllRecords() const;

  size_t LiveCount() const { return records_.size(); }

  // --- set membership -------------------------------------------------

  /// Links `member` into the `set_name` occurrence owned by `owner` at
  /// `position` within the member list. Fails if already a member.
  Status Link(const std::string& set_name, RecordId owner, RecordId member,
              size_t position);

  /// Appends `member` to the occurrence owned by `owner`.
  Status LinkLast(const std::string& set_name, RecordId owner,
                  RecordId member);

  /// Unlinks `member` from its occurrence of `set_name`.
  Status Unlink(const std::string& set_name, RecordId member);

  /// Owner of `member` within `set_name`, or 0 when not a member.
  RecordId OwnerOf(const std::string& set_name, RecordId member) const;

  /// Ordered members of the occurrence owned by `owner`; empty when the
  /// occurrence is empty or absent.
  const std::vector<RecordId>& Members(const std::string& set_name,
                                       RecordId owner) const;

  bool IsMember(const std::string& set_name, RecordId member) const {
    return OwnerOf(set_name, member) != 0;
  }

  /// Deep copy (used by the bridge baseline and by benchmarks).
  Store Clone() const { return *this; }

 private:
  struct SetIndex {
    std::unordered_map<RecordId, RecordId> owner_of;
    std::unordered_map<RecordId, std::vector<RecordId>> members_of;
  };

  RecordId next_id_ = 1;
  std::map<RecordId, StoredRecord> records_;
  std::unordered_map<std::string, SetIndex> sets_;
  /// type -> live ids, ascending (ids are allocated monotonically, so
  /// appending on insert keeps each list in insertion order).
  std::unordered_map<std::string, std::vector<RecordId>> by_type_;
};

}  // namespace dbpc

#endif  // DBPC_STORAGE_STORE_H_
