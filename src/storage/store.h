#ifndef DBPC_STORAGE_STORE_H_
#define DBPC_STORAGE_STORE_H_

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/value.h"
#include "storage/extent.h"
#include "storage/record.h"

namespace dbpc {

/// Untyped record heap plus owner-coupled set membership, shared by all
/// three data-model facades. The store knows nothing about schemas; the
/// `Database` engine layers validation and constraint enforcement on top.
///
/// Set occurrences are kept as explicit ordered member lists per owner, the
/// in-memory analogue of 1970s chain/pointer-array set implementations.
///
/// Bulk loads may hand the store whole extent tables via `AdoptExtents`:
/// the rows become live records immediately but stay columnar until a
/// record-at-a-time accessor first touches them, at which point they are
/// promoted (materialized) into the record heap. Record-at-a-time callers
/// cannot tell the difference — `Get` et al. are a view over both layouts.
class Store {
  struct SetIndex;  // defined below; named by BulkLinker

 public:
  /// Inserts a record and returns its new id.
  RecordId Insert(std::string type, FieldMap fields);

  /// Adopts a staged extent table as a columnar segment. Every row receives
  /// a fresh consecutive id (readable through `ExtentTable::IdAt` on the
  /// returned table) and becomes a live record of `table.type()`. Returns a
  /// reference to the adopted table, stable until the store is destroyed.
  const ExtentTable& AdoptExtents(ExtentTable table);

  /// Removes a record. The caller must already have disconnected it from
  /// every set (the engine's Erase handles ordering).
  Status Remove(RecordId id);

  bool Exists(RecordId id) const;
  const StoredRecord* Get(RecordId id) const;
  StoredRecord* GetMutable(RecordId id);

  /// Read cursor for bulk scans in (mostly) ascending id order: Next(id)
  /// returns Get(id), but consecutive calls with increasing ids amortize
  /// the heap lookup into one ordered walk. Out-of-order ids and columnar
  /// rows fall back to Get, so any call sequence is correct.
  class ReadCursor {
   public:
    const StoredRecord* Next(RecordId id) {
      while (it_ != end_ && it_->first < id) ++it_;
      if (it_ != end_ && it_->first == id) return &it_->second;
      return store_->Get(id);
    }

   private:
    friend class Store;
    explicit ReadCursor(const Store* store)
        : store_(store),
          it_(store->records_.begin()),
          end_(store->records_.end()) {}
    const Store* store_;
    std::map<RecordId, StoredRecord>::const_iterator it_;
    std::map<RecordId, StoredRecord>::const_iterator end_;
  };
  ReadCursor Cursor() const { return ReadCursor(this); }

  /// Read-side accessor bound to one set: the set index is resolved once
  /// instead of per OwnerOf probe. An absent set binds to a null reader
  /// (every owner is 0, like OwnerOf). The bound index node is stable
  /// across unrelated set creation, so a reader stays valid as long as
  /// the store does.
  class SetReader {
   public:
    SetReader() = default;
    RecordId OwnerOf(RecordId member) const {
      if (idx_ == nullptr) return 0;
      auto it = idx_->owner_of.find(member);
      return it == idx_->owner_of.end() ? 0 : it->second;
    }

   private:
    friend class Store;
    explicit SetReader(const SetIndex* idx) : idx_(idx) {}
    const SetIndex* idx_ = nullptr;
  };
  SetReader ReaderFor(const std::string& set_name_upper) const {
    auto it = sets_.find(set_name_upper);
    return SetReader(it == sets_.end() ? nullptr : &it->second);
  }

  /// All live records of `type`, in ascending id (i.e. insertion) order.
  /// Served from a per-type directory: O(live-of-type), not a heap walk.
  const std::vector<RecordId>& OfType(const std::string& type) const;

  /// Copying wrapper around OfType for callers that mutate while iterating.
  std::vector<RecordId> AllOfType(const std::string& type) const {
    return OfType(type);
  }

  /// All live record ids in insertion order.
  std::vector<RecordId> AllRecords() const;

  /// One adopted, not-yet-fully-promoted columnar segment of a type, as
  /// exposed to bulk readers. Row r holds record `first_id + r` and is
  /// live iff !(*vacated)[r]; promoted or removed rows must be read
  /// through `Get` instead.
  struct ColumnarRun {
    const ExtentTable* table;
    RecordId first_id;
    const std::vector<bool>* vacated;
    size_t live = 0;
  };

  /// The columnar segments holding rows of `type`, ascending by first id.
  /// Bulk consumers that scan these directly skip per-record promotion —
  /// the whole point of keeping adopted extents columnar.
  std::vector<ColumnarRun> ColumnarRuns(const std::string& type) const;

  size_t LiveCount() const { return records_.size() + columnar_live_; }

  // --- set membership -------------------------------------------------

  /// Links `member` into the `set_name` occurrence owned by `owner` at
  /// `position` within the member list. Fails if already a member.
  Status Link(const std::string& set_name, RecordId owner, RecordId member,
              size_t position);

  /// Appends `member` to the occurrence owned by `owner`.
  Status LinkLast(const std::string& set_name, RecordId owner,
                  RecordId member);

  /// Unlinks `member` from its occurrence of `set_name`.
  Status Unlink(const std::string& set_name, RecordId member);

  /// Append-only bulk linker bound to one set: the set index is resolved
  /// once instead of per link, and repeat owners (bulk loads link long
  /// owner runs) hit a one-entry cache instead of the occurrence table.
  /// LinkLast semantics, including the already-a-member failure.
  class BulkLinker {
   public:
    Status LinkLast(RecordId owner, RecordId member) {
      auto [it, inserted] = idx_->owner_of.emplace(member, owner);
      (void)it;
      if (!inserted) {
        return Status::AlreadyExists("record " + std::to_string(member) +
                                     " already a member of " + set_name_);
      }
      if (cached_members_ == nullptr || owner != cached_owner_) {
        cached_owner_ = owner;
        cached_members_ = &idx_->members_of[owner];
      }
      cached_members_->push_back(member);
      return Status::OK();
    }

   private:
    friend class Store;
    BulkLinker(SetIndex* idx, std::string set_name)
        : idx_(idx), set_name_(std::move(set_name)) {}
    SetIndex* idx_;
    std::string set_name_;
    RecordId cached_owner_ = 0;
    // Stable across inserts: unordered_map never moves mapped values.
    std::vector<RecordId>* cached_members_ = nullptr;
  };
  /// `expected_links` (when nonzero) pre-sizes the occurrence table for
  /// that many additional memberships, sparing bulk loads the rehashes.
  BulkLinker LinkerFor(const std::string& set_name_upper,
                       size_t expected_links = 0) {
    SetIndex& idx = sets_[set_name_upper];
    if (expected_links > 0) {
      idx.owner_of.reserve(idx.owner_of.size() + expected_links);
    }
    return BulkLinker(&idx, set_name_upper);
  }

  /// Owner of `member` within `set_name`, or 0 when not a member.
  RecordId OwnerOf(const std::string& set_name, RecordId member) const;

  /// Ordered members of the occurrence owned by `owner`; empty when the
  /// occurrence is empty or absent.
  const std::vector<RecordId>& Members(const std::string& set_name,
                                       RecordId owner) const;

  bool IsMember(const std::string& set_name, RecordId member) const {
    return OwnerOf(set_name, member) != 0;
  }

  /// Deep copy (used by the bridge baseline and by benchmarks).
  Store Clone() const { return *this; }

 private:
  struct SetIndex {
    std::unordered_map<RecordId, RecordId> owner_of;
    std::unordered_map<RecordId, std::vector<RecordId>> members_of;
  };

  /// One adopted extent table, keyed in `segments_` by the id of its first
  /// row (row r is record first_id + r). `vacated` marks rows that were
  /// promoted into the record heap or removed outright.
  struct ColumnarSegment {
    ExtentTable table;
    std::vector<bool> vacated;
    size_t live = 0;
  };

  /// Segment and row holding `id`, or {nullptr, 0} when `id` is not a live
  /// un-promoted columnar row. Mutable access from const methods is fine:
  /// the columnar members exist to serve logically-const promotion.
  std::pair<ColumnarSegment*, size_t> SegmentRow(RecordId id) const;

  /// Materializes columnar row `id` into the record heap; nullptr when
  /// `id` is not a live columnar row. Promotion never changes the set of
  /// live records or any observable value, so it is logically const.
  const StoredRecord* Promote(RecordId id) const;

  RecordId next_id_ = 1;
  mutable std::map<RecordId, StoredRecord> records_;
  mutable std::map<RecordId, ColumnarSegment> segments_;
  /// Live rows across all segments (not yet promoted or removed).
  mutable size_t columnar_live_ = 0;
  std::unordered_map<std::string, SetIndex> sets_;
  /// type -> live ids, ascending (ids are allocated monotonically, so
  /// appending on insert keeps each list in insertion order).
  std::unordered_map<std::string, std::vector<RecordId>> by_type_;
};

}  // namespace dbpc

#endif  // DBPC_STORAGE_STORE_H_
