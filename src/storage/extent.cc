#include "storage/extent.h"

#include <utility>

#include "common/string_util.h"
#include "storage/store.h"

namespace dbpc {

ExtentColumn::ExtentColumn(FieldType declared, bool dictionary)
    : declared_(declared),
      dictionary_(declared == FieldType::kString && dictionary) {}

void ExtentColumn::AppendPlaceholder() {
  switch (declared_) {
    case FieldType::kInt:
      ints_.push_back(0);
      break;
    case FieldType::kDouble:
      doubles_.push_back(0.0);
      break;
    case FieldType::kString:
      if (dictionary_) {
        codes_.push_back(kNullCode);
      } else {
        plain_.emplace_back();
      }
      break;
  }
}

void ExtentColumn::Append(const Value& v) {
  if (v.is_null()) {
    AppendNull();
    return;
  }
  switch (declared_) {
    case FieldType::kInt:
      if (v.is_int()) {
        AppendInt(v.as_int());
        return;
      }
      break;
    case FieldType::kDouble:
      if (v.is_double()) {
        AppendDouble(v.as_double());
        return;
      }
      break;
    case FieldType::kString:
      if (v.is_string()) {
        AppendString(v.as_string());
        return;
      }
      break;
  }
  const size_t row = BeginAppend();
  // Dynamic type contradicts the declared column type; keep the value on
  // the side so the snapshot stays faithful to the store.
  exceptions_.emplace(row, v);
  AppendPlaceholder();
}

Value ExtentColumn::At(size_t row) const {
  if (IsNull(row)) return Value();
  if (!exceptions_.empty()) {
    auto it = exceptions_.find(row);
    if (it != exceptions_.end()) return it->second;
  }
  switch (declared_) {
    case FieldType::kInt:
      return Value::Int(ints_[row]);
    case FieldType::kDouble:
      return Value::Double(doubles_[row]);
    case FieldType::kString:
      if (dictionary_) return Value::String(dict_[codes_[row]]);
      return Value::String(plain_[row]);
  }
  return Value();
}

size_t ExtentColumn::ByteSize() const {
  size_t bytes = null_bits_.size() * sizeof(uint64_t) +
                 ints_.size() * sizeof(int64_t) +
                 doubles_.size() * sizeof(double) +
                 codes_.size() * sizeof(uint32_t);
  for (const auto& s : plain_) bytes += sizeof(std::string) + s.size();
  for (const auto& s : dict_) bytes += sizeof(std::string) + s.size();
  bytes += exceptions_.size() * (sizeof(size_t) + sizeof(Value));
  return bytes;
}

Extent::Extent(const std::vector<FieldType>& types,
               const ExtentOptions& options)
    : capacity_(options.extent_rows == 0 ? 1 : options.extent_rows) {
  columns_.reserve(types.size());
  for (FieldType t : types) {
    columns_.emplace_back(t, options.dictionary_strings);
  }
  ids_.reserve(capacity_);
}

Extent::Extent(const std::vector<FieldType>& types,
               const ExtentOptions& options,
               const std::vector<char>& dict_enabled)
    : capacity_(options.extent_rows == 0 ? 1 : options.extent_rows) {
  columns_.reserve(types.size());
  for (size_t i = 0; i < types.size(); ++i) {
    columns_.emplace_back(types[i],
                          options.dictionary_strings && dict_enabled[i] != 0);
  }
  ids_.reserve(capacity_);
}

void Extent::AppendRow(RecordId id, const Value* values, size_t n) {
  ids_.push_back(id);
  for (size_t i = 0; i < n; ++i) columns_[i].Append(values[i]);
}

void Extent::AppendRow(RecordId id, const Value* const* values, size_t n) {
  ids_.push_back(id);
  for (size_t i = 0; i < n; ++i) columns_[i].Append(*values[i]);
}

void Extent::AssignIds(RecordId first) {
  for (size_t r = 0; r < ids_.size(); ++r) {
    ids_[r] = first + static_cast<RecordId>(r);
  }
}

size_t Extent::ByteSize() const {
  size_t bytes = ids_.size() * sizeof(RecordId);
  for (const auto& col : columns_) bytes += col.ByteSize();
  return bytes;
}

ExtentTable::ExtentTable(std::string type,
                         std::vector<std::string> field_names,
                         std::vector<FieldType> field_types,
                         ExtentOptions options)
    : type_(std::move(type)),
      field_names_(std::move(field_names)),
      field_types_(std::move(field_types)),
      options_(options),
      dict_enabled_(field_names_.size(),
                    options.dictionary_strings ? char{1} : char{0}) {
  for (auto& name : field_names_) name = ToUpper(name);
  col_index_.reserve(field_names_.size());
  for (size_t i = 0; i < field_names_.size(); ++i) {
    col_index_.emplace(field_names_[i], static_cast<int>(i));
  }
}

ExtentTable ExtentTable::FromStore(const Store& store,
                                   const std::string& type_upper,
                                   std::vector<std::string> field_names,
                                   std::vector<FieldType> field_types,
                                   ExtentOptions options) {
  ExtentTable table(type_upper, std::move(field_names),
                    std::move(field_types), options);
  std::vector<Value> row(table.columns());
  for (RecordId id : store.OfType(type_upper)) {
    const StoredRecord* rec = store.Get(id);
    if (rec == nullptr) continue;
    for (size_t c = 0; c < table.columns(); ++c) {
      auto it = rec->fields.find(table.field_names_[c]);
      row[c] = it == rec->fields.end() ? Value() : it->second;
    }
    table.AppendRow(id, row);
  }
  return table;
}

int ExtentTable::ColumnIndex(const std::string& field_upper) const {
  auto it = col_index_.find(field_upper);
  return it == col_index_.end() ? -1 : it->second;
}

Extent& ExtentTable::CurrentExtent() {
  if (extents_.empty() || extents_.back().Full()) {
    if (!extents_.empty()) ReviseDictionaries(extents_.back());
    extents_.emplace_back(field_types_, options_, dict_enabled_);
  }
  return extents_.back();
}

void ExtentTable::ReviseDictionaries(const Extent& full) {
  for (size_t c = 0; c < field_names_.size(); ++c) {
    if (dict_enabled_[c] == 0) continue;
    const ExtentColumn& col = full.column(c);
    if (!col.dictionary_encoded()) continue;
    // A dictionary holding nearly one entry per row encodes nothing; pay
    // the plain representation in later extents instead of two copies of
    // every distinct string.
    if (col.dictionary().size() * 8 > col.rows() * 7) dict_enabled_[c] = 0;
  }
}

void ExtentTable::AppendRow(RecordId id, const std::vector<Value>& values) {
  CurrentExtent().AppendRow(id, values.data(), values.size());
  ++rows_;
}

void ExtentTable::AppendRow(RecordId id, const Value* const* values) {
  CurrentExtent().AppendRow(id, values, field_names_.size());
  ++rows_;
}

Extent& ExtentTable::BeginRow(RecordId id) {
  Extent& extent = CurrentExtent();
  extent.BeginRow(id);
  ++rows_;
  return extent;
}

void ExtentTable::AssignIds(RecordId first) {
  for (auto& extent : extents_) {
    extent.AssignIds(first);
    first += extent.rows();
  }
}

Value ExtentTable::At(size_t row, size_t col) const {
  const size_t per = options_.extent_rows == 0 ? 1 : options_.extent_rows;
  return extents_[row / per].column(col).At(row % per);
}

RecordId ExtentTable::IdAt(size_t row) const {
  const size_t per = options_.extent_rows == 0 ? 1 : options_.extent_rows;
  return extents_[row / per].ids()[row % per];
}

bool ExtentTable::IsNull(size_t row, size_t col) const {
  const size_t per = options_.extent_rows == 0 ? 1 : options_.extent_rows;
  return extents_[row / per].column(col).IsNull(row % per);
}

void ExtentTable::Scan(
    const std::function<void(const Extent&, size_t first_row)>& visit) const {
  size_t first = 0;
  for (const auto& extent : extents_) {
    visit(extent, first);
    first += extent.rows();
  }
}

size_t ExtentTable::ByteSize() const {
  size_t bytes = 0;
  for (const auto& extent : extents_) bytes += extent.ByteSize();
  return bytes;
}

}  // namespace dbpc
