#include "storage/store.h"

#include <algorithm>
#include <iterator>
#include <utility>

namespace dbpc {

RecordId Store::Insert(std::string type, FieldMap fields) {
  RecordId id = next_id_++;
  StoredRecord rec;
  rec.id = id;
  rec.type = std::move(type);
  rec.fields = std::move(fields);
  by_type_[rec.type].push_back(id);
  // Ids are monotonic, so every insert lands at the end of the map; the
  // hint turns bulk loads from O(log n) per record into amortized O(1).
  records_.emplace_hint(records_.end(), id, std::move(rec));
  return id;
}

const ExtentTable& Store::AdoptExtents(ExtentTable table) {
  const RecordId first = next_id_;
  const size_t rows = table.rows();
  next_id_ += rows;
  table.AssignIds(first);
  std::vector<RecordId>& dir = by_type_[table.type()];
  dir.reserve(dir.size() + rows);
  for (size_t r = 0; r < rows; ++r) {
    dir.push_back(first + static_cast<RecordId>(r));
  }
  ColumnarSegment seg{std::move(table), std::vector<bool>(rows, false), rows};
  // insert_or_assign: an empty adoption leaves next_id_ unchanged, so a
  // later adoption may legitimately reuse the key of a zero-row segment.
  auto it = segments_.insert_or_assign(first, std::move(seg)).first;
  columnar_live_ += rows;
  return it->second.table;
}

std::pair<Store::ColumnarSegment*, size_t> Store::SegmentRow(
    RecordId id) const {
  if (segments_.empty()) return {nullptr, 0};
  auto it = segments_.upper_bound(id);
  if (it == segments_.begin()) return {nullptr, 0};
  --it;
  ColumnarSegment& seg = it->second;
  const size_t row = static_cast<size_t>(id - it->first);
  if (row >= seg.table.rows() || seg.vacated[row]) return {nullptr, 0};
  return {&seg, row};
}

const StoredRecord* Store::Promote(RecordId id) const {
  auto [seg, row] = SegmentRow(id);
  if (seg == nullptr) return nullptr;
  const ExtentTable& table = seg->table;
  StoredRecord rec;
  rec.id = id;
  rec.type = table.type();
  for (size_t c = 0; c < table.columns(); ++c) {
    rec.fields.emplace(table.field_names()[c], table.At(row, c));
  }
  seg->vacated[row] = true;
  --seg->live;
  --columnar_live_;
  return &records_.emplace(id, std::move(rec)).first->second;
}

Status Store::Remove(RecordId id) {
  auto it = records_.find(id);
  if (it == records_.end()) {
    auto [seg, row] = SegmentRow(id);
    if (seg == nullptr) {
      return Status::NotFound("record " + std::to_string(id));
    }
    auto dir = by_type_.find(seg->table.type());
    if (dir != by_type_.end()) {
      std::vector<RecordId>& ids = dir->second;
      auto pos = std::lower_bound(ids.begin(), ids.end(), id);
      if (pos != ids.end() && *pos == id) ids.erase(pos);
    }
    seg->vacated[row] = true;
    --seg->live;
    --columnar_live_;
    return Status::OK();
  }
  auto dir = by_type_.find(it->second.type);
  if (dir != by_type_.end()) {
    std::vector<RecordId>& ids = dir->second;
    auto pos = std::lower_bound(ids.begin(), ids.end(), id);
    if (pos != ids.end() && *pos == id) ids.erase(pos);
  }
  records_.erase(it);
  return Status::OK();
}

bool Store::Exists(RecordId id) const {
  if (records_.count(id) > 0) return true;
  return SegmentRow(id).first != nullptr;
}

const StoredRecord* Store::Get(RecordId id) const {
  auto it = records_.find(id);
  if (it != records_.end()) return &it->second;
  return Promote(id);
}

StoredRecord* Store::GetMutable(RecordId id) {
  return const_cast<StoredRecord*>(Get(id));
}

const std::vector<RecordId>& Store::OfType(const std::string& type) const {
  static const std::vector<RecordId> kEmpty;
  auto it = by_type_.find(type);
  return it == by_type_.end() ? kEmpty : it->second;
}

std::vector<RecordId> Store::AllRecords() const {
  std::vector<RecordId> heap_ids;
  heap_ids.reserve(records_.size());
  for (const auto& [id, rec] : records_) heap_ids.push_back(id);
  if (columnar_live_ == 0) return heap_ids;
  std::vector<RecordId> columnar_ids;
  columnar_ids.reserve(columnar_live_);
  for (const auto& [first, seg] : segments_) {
    for (size_t r = 0; r < seg.table.rows(); ++r) {
      if (!seg.vacated[r]) {
        columnar_ids.push_back(first + static_cast<RecordId>(r));
      }
    }
  }
  // Both runs are ascending (map order; rows within a segment ascend).
  std::vector<RecordId> out;
  out.reserve(heap_ids.size() + columnar_ids.size());
  std::merge(heap_ids.begin(), heap_ids.end(), columnar_ids.begin(),
             columnar_ids.end(), std::back_inserter(out));
  return out;
}

std::vector<Store::ColumnarRun> Store::ColumnarRuns(
    const std::string& type) const {
  std::vector<ColumnarRun> runs;
  for (const auto& [first, seg] : segments_) {
    if (seg.table.type() != type) continue;
    runs.push_back({&seg.table, first, &seg.vacated, seg.live});
  }
  return runs;
}

Status Store::Link(const std::string& set_name, RecordId owner,
                   RecordId member, size_t position) {
  SetIndex& idx = sets_[set_name];
  // Single probe: emplace only succeeds when not yet a member.
  if (!idx.owner_of.emplace(member, owner).second) {
    return Status::AlreadyExists("record " + std::to_string(member) +
                                 " already a member of " + set_name);
  }
  std::vector<RecordId>& members = idx.members_of[owner];
  if (position > members.size()) position = members.size();
  members.insert(members.begin() + static_cast<ptrdiff_t>(position), member);
  return Status::OK();
}

Status Store::LinkLast(const std::string& set_name, RecordId owner,
                       RecordId member) {
  SetIndex& idx = sets_[set_name];
  if (!idx.owner_of.emplace(member, owner).second) {
    return Status::AlreadyExists("record " + std::to_string(member) +
                                 " already a member of " + set_name);
  }
  idx.members_of[owner].push_back(member);
  return Status::OK();
}

Status Store::Unlink(const std::string& set_name, RecordId member) {
  auto set_it = sets_.find(set_name);
  if (set_it == sets_.end()) {
    return Status::NotFound("set " + set_name + " has no occurrences");
  }
  SetIndex& idx = set_it->second;
  auto it = idx.owner_of.find(member);
  if (it == idx.owner_of.end()) {
    return Status::NotFound("record " + std::to_string(member) +
                            " not a member of " + set_name);
  }
  std::vector<RecordId>& members = idx.members_of[it->second];
  members.erase(std::remove(members.begin(), members.end(), member),
                members.end());
  idx.owner_of.erase(it);
  return Status::OK();
}

RecordId Store::OwnerOf(const std::string& set_name, RecordId member) const {
  auto set_it = sets_.find(set_name);
  if (set_it == sets_.end()) return 0;
  auto it = set_it->second.owner_of.find(member);
  return it == set_it->second.owner_of.end() ? 0 : it->second;
}

const std::vector<RecordId>& Store::Members(const std::string& set_name,
                                            RecordId owner) const {
  static const std::vector<RecordId> kEmpty;
  auto set_it = sets_.find(set_name);
  if (set_it == sets_.end()) return kEmpty;
  auto it = set_it->second.members_of.find(owner);
  return it == set_it->second.members_of.end() ? kEmpty : it->second;
}

}  // namespace dbpc
