#include "storage/store.h"

#include <algorithm>

namespace dbpc {

RecordId Store::Insert(std::string type, FieldMap fields) {
  RecordId id = next_id_++;
  StoredRecord rec;
  rec.id = id;
  rec.type = std::move(type);
  rec.fields = std::move(fields);
  by_type_[rec.type].push_back(id);
  records_.emplace(id, std::move(rec));
  return id;
}

Status Store::Remove(RecordId id) {
  auto it = records_.find(id);
  if (it == records_.end()) {
    return Status::NotFound("record " + std::to_string(id));
  }
  auto dir = by_type_.find(it->second.type);
  if (dir != by_type_.end()) {
    std::vector<RecordId>& ids = dir->second;
    auto pos = std::lower_bound(ids.begin(), ids.end(), id);
    if (pos != ids.end() && *pos == id) ids.erase(pos);
  }
  records_.erase(it);
  return Status::OK();
}

const StoredRecord* Store::Get(RecordId id) const {
  auto it = records_.find(id);
  return it == records_.end() ? nullptr : &it->second;
}

StoredRecord* Store::GetMutable(RecordId id) {
  auto it = records_.find(id);
  return it == records_.end() ? nullptr : &it->second;
}

const std::vector<RecordId>& Store::OfType(const std::string& type) const {
  static const std::vector<RecordId> kEmpty;
  auto it = by_type_.find(type);
  return it == by_type_.end() ? kEmpty : it->second;
}

std::vector<RecordId> Store::AllRecords() const {
  std::vector<RecordId> out;
  out.reserve(records_.size());
  for (const auto& [id, rec] : records_) out.push_back(id);
  return out;
}

Status Store::Link(const std::string& set_name, RecordId owner,
                   RecordId member, size_t position) {
  SetIndex& idx = sets_[set_name];
  if (idx.owner_of.count(member) > 0) {
    return Status::AlreadyExists("record " + std::to_string(member) +
                                 " already a member of " + set_name);
  }
  std::vector<RecordId>& members = idx.members_of[owner];
  if (position > members.size()) position = members.size();
  members.insert(members.begin() + static_cast<ptrdiff_t>(position), member);
  idx.owner_of[member] = owner;
  return Status::OK();
}

Status Store::LinkLast(const std::string& set_name, RecordId owner,
                       RecordId member) {
  SetIndex& idx = sets_[set_name];
  if (idx.owner_of.count(member) > 0) {
    return Status::AlreadyExists("record " + std::to_string(member) +
                                 " already a member of " + set_name);
  }
  idx.members_of[owner].push_back(member);
  idx.owner_of[member] = owner;
  return Status::OK();
}

Status Store::Unlink(const std::string& set_name, RecordId member) {
  auto set_it = sets_.find(set_name);
  if (set_it == sets_.end()) {
    return Status::NotFound("set " + set_name + " has no occurrences");
  }
  SetIndex& idx = set_it->second;
  auto it = idx.owner_of.find(member);
  if (it == idx.owner_of.end()) {
    return Status::NotFound("record " + std::to_string(member) +
                            " not a member of " + set_name);
  }
  std::vector<RecordId>& members = idx.members_of[it->second];
  members.erase(std::remove(members.begin(), members.end(), member),
                members.end());
  idx.owner_of.erase(it);
  return Status::OK();
}

RecordId Store::OwnerOf(const std::string& set_name, RecordId member) const {
  auto set_it = sets_.find(set_name);
  if (set_it == sets_.end()) return 0;
  auto it = set_it->second.owner_of.find(member);
  return it == set_it->second.owner_of.end() ? 0 : it->second;
}

const std::vector<RecordId>& Store::Members(const std::string& set_name,
                                            RecordId owner) const {
  static const std::vector<RecordId> kEmpty;
  auto set_it = sets_.find(set_name);
  if (set_it == sets_.end()) return kEmpty;
  auto it = set_it->second.members_of.find(owner);
  return it == set_it->second.members_of.end() ? kEmpty : it->second;
}

}  // namespace dbpc
