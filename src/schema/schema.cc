#include "schema/schema.h"

#include <algorithm>

#include "common/string_util.h"

namespace dbpc {

const char* InsertionClassName(InsertionClass c) {
  return c == InsertionClass::kAutomatic ? "AUTOMATIC" : "MANUAL";
}

const char* RetentionClassName(RetentionClass c) {
  return c == RetentionClass::kMandatory ? "MANDATORY" : "OPTIONAL";
}

const char* ConstraintKindName(ConstraintKind kind) {
  switch (kind) {
    case ConstraintKind::kNonNull:
      return "NON-NULL";
    case ConstraintKind::kUniqueness:
      return "UNIQUE";
    case ConstraintKind::kExistence:
      return "EXISTENCE";
    case ConstraintKind::kCardinalityLimit:
      return "CARDINALITY";
  }
  return "UNKNOWN";
}

std::string ConstraintDef::ToString() const {
  std::string out = "CONSTRAINT ";
  out += name;
  out += " IS ";
  out += ConstraintKindName(kind);
  switch (kind) {
    case ConstraintKind::kNonNull:
    case ConstraintKind::kUniqueness:
      out += " ON " + record + " (" + Join(fields, ", ") + ")";
      break;
    case ConstraintKind::kExistence:
      out += " ON SET " + set_name;
      break;
    case ConstraintKind::kCardinalityLimit:
      out += " ON SET " + set_name + " LIMIT " + std::to_string(limit);
      if (!group_field.empty()) out += " PER " + group_field;
      break;
  }
  return out;
}

const FieldDef* RecordTypeDef::FindField(const std::string& field_name) const {
  for (const FieldDef& f : fields) {
    if (EqualsIgnoreCase(f.name, field_name)) return &f;
  }
  return nullptr;
}

std::vector<std::string> RecordTypeDef::ActualFieldNames() const {
  std::vector<std::string> out;
  for (const FieldDef& f : fields) {
    if (!f.is_virtual) out.push_back(f.name);
  }
  return out;
}

Status Schema::AddRecordType(RecordTypeDef def) {
  if (!IsIdentifier(def.name)) {
    return Status::InvalidArgument("bad record type name '" + def.name + "'");
  }
  if (FindRecordType(def.name) != nullptr) {
    return Status::AlreadyExists("record type " + def.name);
  }
  for (size_t i = 0; i < def.fields.size(); ++i) {
    if (!IsIdentifier(def.fields[i].name)) {
      return Status::InvalidArgument("bad field name '" + def.fields[i].name +
                                     "' in " + def.name);
    }
    for (size_t j = 0; j < i; ++j) {
      if (EqualsIgnoreCase(def.fields[i].name, def.fields[j].name)) {
        return Status::AlreadyExists("field " + def.fields[i].name + " in " +
                                     def.name);
      }
    }
  }
  record_types_.push_back(std::move(def));
  return Status::OK();
}

Status Schema::AddSet(SetDef def) {
  if (!IsIdentifier(def.name)) {
    return Status::InvalidArgument("bad set name '" + def.name + "'");
  }
  if (FindSet(def.name) != nullptr) {
    return Status::AlreadyExists("set " + def.name);
  }
  sets_.push_back(std::move(def));
  return Status::OK();
}

Status Schema::AddConstraint(ConstraintDef def) {
  if (!IsIdentifier(def.name)) {
    return Status::InvalidArgument("bad constraint name '" + def.name + "'");
  }
  if (FindConstraint(def.name) != nullptr) {
    return Status::AlreadyExists("constraint " + def.name);
  }
  constraints_.push_back(std::move(def));
  return Status::OK();
}

Status Schema::DropRecordType(const std::string& name) {
  auto it = std::find_if(
      record_types_.begin(), record_types_.end(),
      [&](const RecordTypeDef& r) { return EqualsIgnoreCase(r.name, name); });
  if (it == record_types_.end()) {
    return Status::NotFound("record type " + name);
  }
  record_types_.erase(it);
  return Status::OK();
}

Status Schema::DropSet(const std::string& name) {
  auto it = std::find_if(sets_.begin(), sets_.end(), [&](const SetDef& s) {
    return EqualsIgnoreCase(s.name, name);
  });
  if (it == sets_.end()) return Status::NotFound("set " + name);
  sets_.erase(it);
  return Status::OK();
}

Status Schema::DropConstraint(const std::string& name) {
  auto it = std::find_if(
      constraints_.begin(), constraints_.end(),
      [&](const ConstraintDef& c) { return EqualsIgnoreCase(c.name, name); });
  if (it == constraints_.end()) return Status::NotFound("constraint " + name);
  constraints_.erase(it);
  return Status::OK();
}

const RecordTypeDef* Schema::FindRecordType(const std::string& name) const {
  for (const RecordTypeDef& r : record_types_) {
    if (EqualsIgnoreCase(r.name, name)) return &r;
  }
  return nullptr;
}

RecordTypeDef* Schema::FindRecordType(const std::string& name) {
  return const_cast<RecordTypeDef*>(
      static_cast<const Schema*>(this)->FindRecordType(name));
}

const SetDef* Schema::FindSet(const std::string& name) const {
  for (const SetDef& s : sets_) {
    if (EqualsIgnoreCase(s.name, name)) return &s;
  }
  return nullptr;
}

SetDef* Schema::FindSet(const std::string& name) {
  return const_cast<SetDef*>(static_cast<const Schema*>(this)->FindSet(name));
}

const ConstraintDef* Schema::FindConstraint(const std::string& name) const {
  for (const ConstraintDef& c : constraints_) {
    if (EqualsIgnoreCase(c.name, name)) return &c;
  }
  return nullptr;
}

std::vector<const SetDef*> Schema::SetsOwnedBy(const std::string& owner) const {
  std::vector<const SetDef*> out;
  for (const SetDef& s : sets_) {
    if (EqualsIgnoreCase(s.owner, owner)) out.push_back(&s);
  }
  return out;
}

std::vector<const SetDef*> Schema::SetsWithMember(
    const std::string& member) const {
  std::vector<const SetDef*> out;
  for (const SetDef& s : sets_) {
    if (EqualsIgnoreCase(s.member, member)) out.push_back(&s);
  }
  return out;
}

const SetDef* Schema::FindSetBetween(const std::string& owner,
                                     const std::string& member) const {
  const SetDef* found = nullptr;
  for (const SetDef& s : sets_) {
    if (EqualsIgnoreCase(s.owner, owner) && EqualsIgnoreCase(s.member, member)) {
      if (found != nullptr) return nullptr;  // ambiguous
      found = &s;
    }
  }
  return found;
}

Status Schema::Validate() const {
  for (const SetDef& s : sets_) {
    if (!s.system_owned() && FindRecordType(s.owner) == nullptr) {
      return Status::NotFound("set " + s.name + " owner " + s.owner);
    }
    const RecordTypeDef* member = FindRecordType(s.member);
    if (member == nullptr) {
      return Status::NotFound("set " + s.name + " member " + s.member);
    }
    for (const std::string& key : s.keys) {
      const FieldDef* key_field = member->FindField(key);
      if (key_field == nullptr) {
        return Status::NotFound("set " + s.name + " key field " + key +
                                " in member " + s.member);
      }
      if (key_field->is_virtual) {
        return Status::InvalidArgument("set " + s.name + " key field " + key +
                                       " is virtual; sort keys must be "
                                       "stored data");
      }
    }
    if (s.ordering == SetOrdering::kSortedByKeys && s.keys.empty()) {
      return Status::InvalidArgument("set " + s.name +
                                     " sorted but has no keys");
    }
  }
  for (const RecordTypeDef& r : record_types_) {
    for (const FieldDef& f : r.fields) {
      if (!f.is_virtual) continue;
      const SetDef* via = FindSet(f.via_set);
      if (via == nullptr) {
        return Status::NotFound("virtual field " + r.name + "." + f.name +
                                " via unknown set " + f.via_set);
      }
      if (!EqualsIgnoreCase(via->member, r.name)) {
        return Status::InvalidArgument("virtual field " + r.name + "." +
                                       f.name + ": record is not a member of " +
                                       f.via_set);
      }
      if (via->system_owned()) {
        return Status::InvalidArgument("virtual field " + r.name + "." +
                                       f.name + " via system-owned set");
      }
      const RecordTypeDef* owner = FindRecordType(via->owner);
      if (owner == nullptr || !owner->HasField(f.using_field)) {
        return Status::NotFound("virtual field " + r.name + "." + f.name +
                                " using unknown owner field " + f.using_field);
      }
      const FieldDef* src = owner->FindField(f.using_field);
      if (src->type != f.type) {
        return Status::TypeError("virtual field " + r.name + "." + f.name +
                                 " type differs from " + via->owner + "." +
                                 f.using_field);
      }
    }
  }
  // Virtual fields may chain (a virtual field derived from the owner's own
  // virtual field); reject cyclic chains, which could never resolve.
  for (const RecordTypeDef& r : record_types_) {
    for (const FieldDef& f : r.fields) {
      if (!f.is_virtual) continue;
      const FieldDef* cur = &f;
      const RecordTypeDef* cur_rec = &r;
      size_t hops = 0;
      while (cur->is_virtual) {
        if (++hops > record_types_.size() + 1) {
          return Status::InvalidArgument("virtual field chain through " +
                                         r.name + "." + f.name + " is cyclic");
        }
        const SetDef* via = FindSet(cur->via_set);
        cur_rec = FindRecordType(via->owner);
        cur = cur_rec->FindField(cur->using_field);
      }
    }
  }
  for (const ConstraintDef& c : constraints_) {
    switch (c.kind) {
      case ConstraintKind::kNonNull:
      case ConstraintKind::kUniqueness: {
        const RecordTypeDef* r = FindRecordType(c.record);
        if (r == nullptr) {
          return Status::NotFound("constraint " + c.name + " record " +
                                  c.record);
        }
        if (c.fields.empty()) {
          return Status::InvalidArgument("constraint " + c.name +
                                         " names no fields");
        }
        for (const std::string& f : c.fields) {
          if (!r->HasField(f)) {
            return Status::NotFound("constraint " + c.name + " field " +
                                    c.record + "." + f);
          }
        }
        break;
      }
      case ConstraintKind::kExistence: {
        if (FindSet(c.set_name) == nullptr) {
          return Status::NotFound("constraint " + c.name + " set " +
                                  c.set_name);
        }
        break;
      }
      case ConstraintKind::kCardinalityLimit: {
        const SetDef* s = FindSet(c.set_name);
        if (s == nullptr) {
          return Status::NotFound("constraint " + c.name + " set " +
                                  c.set_name);
        }
        if (c.limit <= 0) {
          return Status::InvalidArgument("constraint " + c.name +
                                         " non-positive limit");
        }
        if (!c.group_field.empty()) {
          const RecordTypeDef* member = FindRecordType(s->member);
          if (member == nullptr || !member->HasField(c.group_field)) {
            return Status::NotFound("constraint " + c.name + " group field " +
                                    c.group_field);
          }
        }
        break;
      }
    }
  }
  return Status::OK();
}

namespace {

std::string PicClause(const FieldDef& f) {
  std::string out = "PIC ";
  out += f.type == FieldType::kString ? "X" : (f.type == FieldType::kInt ? "9" : "F");
  out += "(";
  out += std::to_string(f.pic_width > 0 ? f.pic_width : 10);
  out += ")";
  return out;
}

}  // namespace

std::string Schema::ToDdl() const {
  std::string out;
  out += "SCHEMA NAME IS " + name_ + "\n";
  out += "RECORD SECTION.\n";
  for (const RecordTypeDef& r : record_types_) {
    out += "  RECORD NAME IS " + r.name + ".\n";
    out += "  FIELDS ARE.\n";
    for (const FieldDef& f : r.fields) {
      if (f.is_virtual) {
        out += "    " + f.name + " VIRTUAL VIA " + f.via_set + " USING " +
               f.using_field + ".\n";
      } else {
        out += "    " + f.name + " " + PicClause(f) + ".\n";
      }
    }
    out += "  END RECORD.\n";
  }
  out += "END RECORD SECTION.\n";
  out += "SET SECTION.\n";
  for (const SetDef& s : sets_) {
    out += "  SET NAME IS " + s.name + ".\n";
    out += "  OWNER IS " + s.owner + ".\n";
    out += "  MEMBER IS " + s.member + ".\n";
    if (!s.keys.empty()) {
      out += "  SET KEYS ARE (" + Join(s.keys, ", ") + ").\n";
    }
    if (s.ordering == SetOrdering::kChronological) {
      out += "  ORDER IS CHRONOLOGICAL.\n";
    }
    if (s.insertion != InsertionClass::kAutomatic) {
      out += std::string("  INSERTION IS ") + InsertionClassName(s.insertion) +
             ".\n";
    }
    if (s.retention != RetentionClass::kMandatory) {
      out += std::string("  RETENTION IS ") + RetentionClassName(s.retention) +
             ".\n";
    }
    if (s.member_characterizes_owner) {
      out += "  MEMBER IS CHARACTERIZING.\n";
    }
    out += "  END SET.\n";
  }
  out += "END SET SECTION.\n";
  if (!constraints_.empty()) {
    out += "CONSTRAINT SECTION.\n";
    for (const ConstraintDef& c : constraints_) {
      out += "  " + c.ToString() + ".\n";
    }
    out += "END CONSTRAINT SECTION.\n";
  }
  out += "END SCHEMA.\n";
  return out;
}

bool Schema::operator==(const Schema& other) const {
  return name_ == other.name_ && record_types_ == other.record_types_ &&
         sets_ == other.sets_ && constraints_ == other.constraints_;
}

}  // namespace dbpc
