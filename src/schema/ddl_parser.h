#ifndef DBPC_SCHEMA_DDL_PARSER_H_
#define DBPC_SCHEMA_DDL_PARSER_H_

#include <string>

#include "common/result.h"
#include "schema/schema.h"

namespace dbpc {

/// Parses the Maryland DDL dialect of Figure 4.3, extended with optional
/// INSERTION / RETENTION / ORDER clauses and a CONSTRAINT SECTION so that
/// the full schema model of `Schema` is expressible in text.
///
/// Grammar (clauses end with '.'; ';' is accepted as a synonym, matching
/// the figure's "RECORD SECTION;"):
///
///   SCHEMA NAME IS <id>
///   RECORD SECTION.
///     RECORD NAME IS <id>. FIELDS ARE.
///       <id> PIC X(<n>).                       -- string field
///       <id> PIC 9(<n>).                       -- integer field
///       <id> PIC F(<n>).                       -- floating field
///       <id> VIRTUAL VIA <set> USING <field>.  -- derived from owner
///     END RECORD.
///   END RECORD SECTION.
///   SET SECTION.
///     SET NAME IS <id>. OWNER IS <id|SYSTEM>. MEMBER IS <id>.
///       [SET KEYS ARE (<f> {, <f>}).]
///       [ORDER IS CHRONOLOGICAL.]
///       [INSERTION IS AUTOMATIC|MANUAL.]
///       [RETENTION IS MANDATORY|OPTIONAL.]
///       [MEMBER IS CHARACTERIZING.]
///     END SET.
///   END SET SECTION.
///   [CONSTRAINT SECTION.
///     CONSTRAINT <id> IS NON-NULL ON <rec> (<f>{, <f>}).
///     CONSTRAINT <id> IS UNIQUE ON <rec> (<f>{, <f>}).
///     CONSTRAINT <id> IS EXISTENCE ON SET <set>.
///     CONSTRAINT <id> IS CARDINALITY ON SET <set> LIMIT <n> [PER <f>].
///   END CONSTRAINT SECTION.]
///   END SCHEMA.
///
/// The result is validated (`Schema::Validate`) before being returned.
Result<Schema> ParseDdl(const std::string& text);

}  // namespace dbpc

#endif  // DBPC_SCHEMA_DDL_PARSER_H_
