#include "schema/ddl_parser.h"

#include "common/lexer.h"

namespace dbpc {

namespace {

/// '.' ends every DDL clause; ';' is tolerated as in the paper's figure.
Status ExpectClauseEnd(TokenCursor* cur) {
  if (cur->ConsumePunct(".") || cur->ConsumePunct(";")) return Status::OK();
  return cur->ErrorHere("expected '.' ending clause");
}

Result<std::vector<std::string>> ParseNameList(TokenCursor* cur,
                                               const std::string& what) {
  DBPC_RETURN_IF_ERROR(cur->ExpectPunct("("));
  std::vector<std::string> names;
  do {
    DBPC_ASSIGN_OR_RETURN(std::string name, cur->TakeIdentifier(what));
    names.push_back(std::move(name));
  } while (cur->ConsumePunct(","));
  DBPC_RETURN_IF_ERROR(cur->ExpectPunct(")"));
  return names;
}

/// PIC 9(...) lexes as identifier "PIC" then integer token 9, so the PIC
/// code is matched by token kind, not text.
Result<FieldDef> ParseField(TokenCursor* cur) {
  FieldDef field;
  DBPC_ASSIGN_OR_RETURN(field.name, cur->TakeIdentifier("field name"));
  if (cur->ConsumeIdent("VIRTUAL")) {
    field.is_virtual = true;
    DBPC_RETURN_IF_ERROR(cur->ExpectIdent("VIA"));
    DBPC_ASSIGN_OR_RETURN(field.via_set, cur->TakeIdentifier("set name"));
    DBPC_RETURN_IF_ERROR(cur->ExpectIdent("USING"));
    DBPC_ASSIGN_OR_RETURN(field.using_field,
                          cur->TakeIdentifier("owner field name"));
    DBPC_RETURN_IF_ERROR(ExpectClauseEnd(cur));
    return field;
  }
  DBPC_RETURN_IF_ERROR(cur->ExpectIdent("PIC"));
  if (cur->Peek().kind == TokenKind::kInteger &&
      cur->Peek().int_value == 9) {
    cur->Next();
    field.type = FieldType::kInt;
  } else {
    DBPC_ASSIGN_OR_RETURN(std::string pic, cur->TakeIdentifier("PIC code"));
    if (pic == "X") {
      field.type = FieldType::kString;
    } else if (pic == "F") {
      field.type = FieldType::kDouble;
    } else {
      return cur->ErrorHere("unknown PIC code '" + pic + "'");
    }
  }
  DBPC_RETURN_IF_ERROR(cur->ExpectPunct("("));
  DBPC_ASSIGN_OR_RETURN(int64_t width, cur->TakeInteger("PIC width"));
  DBPC_RETURN_IF_ERROR(cur->ExpectPunct(")"));
  field.pic_width = static_cast<int>(width);
  DBPC_RETURN_IF_ERROR(ExpectClauseEnd(cur));
  return field;
}

Result<RecordTypeDef> ParseRecord(TokenCursor* cur) {
  RecordTypeDef record;
  DBPC_RETURN_IF_ERROR(cur->ExpectIdent("NAME"));
  DBPC_RETURN_IF_ERROR(cur->ExpectIdent("IS"));
  DBPC_ASSIGN_OR_RETURN(record.name, cur->TakeIdentifier("record name"));
  DBPC_RETURN_IF_ERROR(ExpectClauseEnd(cur));
  DBPC_RETURN_IF_ERROR(cur->ExpectIdent("FIELDS"));
  DBPC_RETURN_IF_ERROR(cur->ExpectIdent("ARE"));
  DBPC_RETURN_IF_ERROR(ExpectClauseEnd(cur));
  while (!cur->Peek().IsIdent("END")) {
    DBPC_ASSIGN_OR_RETURN(FieldDef field, ParseField(cur));
    record.fields.push_back(std::move(field));
  }
  DBPC_RETURN_IF_ERROR(cur->ExpectIdent("END"));
  DBPC_RETURN_IF_ERROR(cur->ExpectIdent("RECORD"));
  DBPC_RETURN_IF_ERROR(ExpectClauseEnd(cur));
  return record;
}

Result<SetDef> ParseSet(TokenCursor* cur) {
  SetDef set;
  DBPC_RETURN_IF_ERROR(cur->ExpectIdent("NAME"));
  DBPC_RETURN_IF_ERROR(cur->ExpectIdent("IS"));
  DBPC_ASSIGN_OR_RETURN(set.name, cur->TakeIdentifier("set name"));
  DBPC_RETURN_IF_ERROR(ExpectClauseEnd(cur));
  bool saw_member = false;
  while (true) {
    if (cur->ConsumeIdent("END")) {
      DBPC_RETURN_IF_ERROR(cur->ExpectIdent("SET"));
      DBPC_RETURN_IF_ERROR(ExpectClauseEnd(cur));
      break;
    }
    if (cur->ConsumeIdent("OWNER")) {
      DBPC_RETURN_IF_ERROR(cur->ExpectIdent("IS"));
      DBPC_ASSIGN_OR_RETURN(set.owner, cur->TakeIdentifier("owner name"));
      DBPC_RETURN_IF_ERROR(ExpectClauseEnd(cur));
      continue;
    }
    if (cur->ConsumeIdent("MEMBER")) {
      DBPC_RETURN_IF_ERROR(cur->ExpectIdent("IS"));
      DBPC_ASSIGN_OR_RETURN(std::string name,
                            cur->TakeIdentifier("member name"));
      if (name == "CHARACTERIZING") {
        set.member_characterizes_owner = true;
      } else {
        set.member = std::move(name);
        saw_member = true;
      }
      DBPC_RETURN_IF_ERROR(ExpectClauseEnd(cur));
      continue;
    }
    if (cur->ConsumeIdent("SET")) {
      DBPC_RETURN_IF_ERROR(cur->ExpectIdent("KEYS"));
      DBPC_RETURN_IF_ERROR(cur->ExpectIdent("ARE"));
      DBPC_ASSIGN_OR_RETURN(set.keys, ParseNameList(cur, "key field"));
      DBPC_RETURN_IF_ERROR(ExpectClauseEnd(cur));
      continue;
    }
    if (cur->ConsumeIdent("ORDER")) {
      DBPC_RETURN_IF_ERROR(cur->ExpectIdent("IS"));
      DBPC_RETURN_IF_ERROR(cur->ExpectIdent("CHRONOLOGICAL"));
      set.ordering = SetOrdering::kChronological;
      DBPC_RETURN_IF_ERROR(ExpectClauseEnd(cur));
      continue;
    }
    if (cur->ConsumeIdent("INSERTION")) {
      DBPC_RETURN_IF_ERROR(cur->ExpectIdent("IS"));
      if (cur->ConsumeIdent("AUTOMATIC")) {
        set.insertion = InsertionClass::kAutomatic;
      } else if (cur->ConsumeIdent("MANUAL")) {
        set.insertion = InsertionClass::kManual;
      } else {
        return cur->ErrorHere("expected AUTOMATIC or MANUAL");
      }
      DBPC_RETURN_IF_ERROR(ExpectClauseEnd(cur));
      continue;
    }
    if (cur->ConsumeIdent("RETENTION")) {
      DBPC_RETURN_IF_ERROR(cur->ExpectIdent("IS"));
      if (cur->ConsumeIdent("MANDATORY")) {
        set.retention = RetentionClass::kMandatory;
      } else if (cur->ConsumeIdent("OPTIONAL")) {
        set.retention = RetentionClass::kOptional;
      } else {
        return cur->ErrorHere("expected MANDATORY or OPTIONAL");
      }
      DBPC_RETURN_IF_ERROR(ExpectClauseEnd(cur));
      continue;
    }
    return cur->ErrorHere("unexpected clause in SET");
  }
  if (set.owner.empty() || !saw_member) {
    return Status::ParseError("set " + set.name +
                              " missing OWNER or MEMBER clause");
  }
  if (set.keys.empty()) set.ordering = SetOrdering::kChronological;
  return set;
}

Result<ConstraintDef> ParseConstraint(TokenCursor* cur) {
  ConstraintDef c;
  DBPC_ASSIGN_OR_RETURN(c.name, cur->TakeIdentifier("constraint name"));
  DBPC_RETURN_IF_ERROR(cur->ExpectIdent("IS"));
  DBPC_ASSIGN_OR_RETURN(std::string kind, cur->TakeIdentifier("constraint kind"));
  if (kind == "NON-NULL" || kind == "UNIQUE") {
    c.kind = kind == "UNIQUE" ? ConstraintKind::kUniqueness
                              : ConstraintKind::kNonNull;
    DBPC_RETURN_IF_ERROR(cur->ExpectIdent("ON"));
    DBPC_ASSIGN_OR_RETURN(c.record, cur->TakeIdentifier("record name"));
    DBPC_ASSIGN_OR_RETURN(c.fields, ParseNameList(cur, "field name"));
  } else if (kind == "EXISTENCE") {
    c.kind = ConstraintKind::kExistence;
    DBPC_RETURN_IF_ERROR(cur->ExpectIdent("ON"));
    DBPC_RETURN_IF_ERROR(cur->ExpectIdent("SET"));
    DBPC_ASSIGN_OR_RETURN(c.set_name, cur->TakeIdentifier("set name"));
  } else if (kind == "CARDINALITY") {
    c.kind = ConstraintKind::kCardinalityLimit;
    DBPC_RETURN_IF_ERROR(cur->ExpectIdent("ON"));
    DBPC_RETURN_IF_ERROR(cur->ExpectIdent("SET"));
    DBPC_ASSIGN_OR_RETURN(c.set_name, cur->TakeIdentifier("set name"));
    DBPC_RETURN_IF_ERROR(cur->ExpectIdent("LIMIT"));
    DBPC_ASSIGN_OR_RETURN(c.limit, cur->TakeInteger("limit"));
    if (cur->ConsumeIdent("PER")) {
      DBPC_ASSIGN_OR_RETURN(c.group_field,
                            cur->TakeIdentifier("group field"));
    }
  } else {
    return cur->ErrorHere("unknown constraint kind '" + kind + "'");
  }
  DBPC_RETURN_IF_ERROR(ExpectClauseEnd(cur));
  return c;
}

}  // namespace

Result<Schema> ParseDdl(const std::string& text) {
  DBPC_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(text));
  TokenCursor cur(std::move(tokens));
  DBPC_RETURN_IF_ERROR(cur.ExpectIdent("SCHEMA"));
  DBPC_RETURN_IF_ERROR(cur.ExpectIdent("NAME"));
  DBPC_RETURN_IF_ERROR(cur.ExpectIdent("IS"));
  DBPC_ASSIGN_OR_RETURN(std::string name, cur.TakeIdentifier("schema name"));
  Schema schema(name);
  // An optional clause terminator after the schema name (the figure omits it).
  (void)(cur.ConsumePunct(".") || cur.ConsumePunct(";"));

  DBPC_RETURN_IF_ERROR(cur.ExpectIdent("RECORD"));
  DBPC_RETURN_IF_ERROR(cur.ExpectIdent("SECTION"));
  DBPC_RETURN_IF_ERROR(ExpectClauseEnd(&cur));
  while (cur.ConsumeIdent("RECORD")) {
    DBPC_ASSIGN_OR_RETURN(RecordTypeDef record, ParseRecord(&cur));
    DBPC_RETURN_IF_ERROR(schema.AddRecordType(std::move(record)));
  }
  DBPC_RETURN_IF_ERROR(cur.ExpectIdent("END"));
  DBPC_RETURN_IF_ERROR(cur.ExpectIdent("RECORD"));
  DBPC_RETURN_IF_ERROR(cur.ExpectIdent("SECTION"));
  DBPC_RETURN_IF_ERROR(ExpectClauseEnd(&cur));

  DBPC_RETURN_IF_ERROR(cur.ExpectIdent("SET"));
  DBPC_RETURN_IF_ERROR(cur.ExpectIdent("SECTION"));
  DBPC_RETURN_IF_ERROR(ExpectClauseEnd(&cur));
  while (cur.ConsumeIdent("SET")) {
    DBPC_ASSIGN_OR_RETURN(SetDef set, ParseSet(&cur));
    DBPC_RETURN_IF_ERROR(schema.AddSet(std::move(set)));
  }
  DBPC_RETURN_IF_ERROR(cur.ExpectIdent("END"));
  DBPC_RETURN_IF_ERROR(cur.ExpectIdent("SET"));
  DBPC_RETURN_IF_ERROR(cur.ExpectIdent("SECTION"));
  DBPC_RETURN_IF_ERROR(ExpectClauseEnd(&cur));

  if (cur.ConsumeIdent("CONSTRAINT")) {
    DBPC_RETURN_IF_ERROR(cur.ExpectIdent("SECTION"));
    DBPC_RETURN_IF_ERROR(ExpectClauseEnd(&cur));
    while (cur.ConsumeIdent("CONSTRAINT")) {
      DBPC_ASSIGN_OR_RETURN(ConstraintDef c, ParseConstraint(&cur));
      DBPC_RETURN_IF_ERROR(schema.AddConstraint(std::move(c)));
    }
    DBPC_RETURN_IF_ERROR(cur.ExpectIdent("END"));
    DBPC_RETURN_IF_ERROR(cur.ExpectIdent("CONSTRAINT"));
    DBPC_RETURN_IF_ERROR(cur.ExpectIdent("SECTION"));
    DBPC_RETURN_IF_ERROR(ExpectClauseEnd(&cur));
  }

  DBPC_RETURN_IF_ERROR(cur.ExpectIdent("END"));
  DBPC_RETURN_IF_ERROR(cur.ExpectIdent("SCHEMA"));
  (void)(cur.ConsumePunct(".") || cur.ConsumePunct(";"));
  if (!cur.AtEnd()) {
    return cur.ErrorHere("trailing input after END SCHEMA");
  }
  DBPC_RETURN_IF_ERROR(schema.Validate());
  return schema;
}

}  // namespace dbpc
