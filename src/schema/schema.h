#ifndef DBPC_SCHEMA_SCHEMA_H_
#define DBPC_SCHEMA_SCHEMA_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/value.h"

namespace dbpc {

/// One field of a record type. Mirrors the Figure 4.3 DDL: actual fields
/// carry a PIC clause (type + display width); virtual fields are derived
/// through a set from the owner record (VIRTUAL VIA <set> USING <field>).
struct FieldDef {
  std::string name;
  FieldType type = FieldType::kString;
  /// Display width from the PIC clause, e.g. PIC X(20) -> 20. Zero means
  /// unspecified (fields created programmatically).
  int pic_width = 0;
  /// True for VIRTUAL fields; `via_set`/`using_field` identify the source.
  bool is_virtual = false;
  std::string via_set;
  std::string using_field;
  /// Default supplied on STORE when the program omits the field.
  Value default_value;

  bool operator==(const FieldDef&) const = default;
};

/// CODASYL insertion class: AUTOMATIC members are connected into their set
/// occurrence by the system at STORE time; MANUAL members require an
/// explicit CONNECT.
enum class InsertionClass { kAutomatic, kManual };

/// CODASYL retention class: MANDATORY members must belong to some
/// occurrence of the set for their whole life; OPTIONAL members may be
/// disconnected.
enum class RetentionClass { kMandatory, kOptional };

/// Member ordering within a set occurrence.
enum class SetOrdering {
  kSortedByKeys,   ///< ascending by `keys` (the Figure 4.3 SET KEYS clause)
  kChronological,  ///< insertion (FIFO) order
};

const char* InsertionClassName(InsertionClass c);
const char* RetentionClassName(RetentionClass c);

/// An owner-coupled set type (Figure 4.3 SET SECTION). `owner` may be the
/// distinguished name SYSTEM for singular (system-owned) sets.
struct SetDef {
  std::string name;
  std::string owner;
  std::string member;
  InsertionClass insertion = InsertionClass::kAutomatic;
  RetentionClass retention = RetentionClass::kMandatory;
  SetOrdering ordering = SetOrdering::kSortedByKeys;
  /// Member fields forming the sort key; duplicates of the full key are
  /// rejected within one occurrence (paper section 4.2).
  std::vector<std::string> keys;
  /// Su's "characterizing entity" dependency: erasing the owner erases the
  /// members (the EMP -> EMP.DEPENDENT example of section 4.1).
  bool member_characterizes_owner = false;

  bool system_owned() const { return owner == "SYSTEM"; }

  bool operator==(const SetDef&) const = default;
};

/// Kinds of explicit integrity constraints (paper section 3.1). Existence
/// and uniqueness are expressible in 1979 models; cardinality limits are
/// the paper's example of a rule "maintained only by user programs".
enum class ConstraintKind {
  kNonNull,           ///< Named fields may not be null.
  kUniqueness,        ///< Named fields form a unique key of the record type.
  kExistence,         ///< Member may not exist outside an owner occurrence.
  kCardinalityLimit,  ///< At most `limit` members per owner, optionally per
                      ///< distinct value of `group_field` (e.g. a course may
                      ///< be offered at most twice per YEAR).
};

const char* ConstraintKindName(ConstraintKind kind);

/// One declared integrity constraint.
struct ConstraintDef {
  std::string name;
  ConstraintKind kind = ConstraintKind::kNonNull;
  /// Subject record type (kNonNull, kUniqueness) .
  std::string record;
  /// Subject set (kExistence, kCardinalityLimit).
  std::string set_name;
  std::vector<std::string> fields;
  int64_t limit = 0;
  std::string group_field;

  std::string ToString() const;

  bool operator==(const ConstraintDef&) const = default;
};

/// One record type (Figure 4.3 RECORD SECTION entry).
struct RecordTypeDef {
  std::string name;
  std::vector<FieldDef> fields;

  const FieldDef* FindField(const std::string& field_name) const;
  bool HasField(const std::string& field_name) const {
    return FindField(field_name) != nullptr;
  }
  /// Names of non-virtual fields, in declaration order.
  std::vector<std::string> ActualFieldNames() const;

  bool operator==(const RecordTypeDef&) const = default;
};

/// A complete database schema: record types, owner-coupled sets, and
/// explicit integrity constraints. This single description is the input to
/// all three data-model facades and to the conversion pipeline; the paper
/// calls such explicitness "a necessary base for database program
/// conversion systems" (section 3.1).
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  /// Adds a record type; fails on duplicate names.
  Status AddRecordType(RecordTypeDef def);
  /// Adds a set type; fails on duplicate names. Owner/member references are
  /// checked by Validate(), not here, so construction order is free.
  Status AddSet(SetDef def);
  Status AddConstraint(ConstraintDef def);

  /// Removes by name (used by schema transformations).
  Status DropRecordType(const std::string& name);
  Status DropSet(const std::string& name);
  Status DropConstraint(const std::string& name);

  const RecordTypeDef* FindRecordType(const std::string& name) const;
  RecordTypeDef* FindRecordType(const std::string& name);
  const SetDef* FindSet(const std::string& name) const;
  SetDef* FindSet(const std::string& name);
  const ConstraintDef* FindConstraint(const std::string& name) const;

  const std::vector<RecordTypeDef>& record_types() const {
    return record_types_;
  }
  const std::vector<SetDef>& sets() const { return sets_; }
  const std::vector<ConstraintDef>& constraints() const { return constraints_; }

  /// Mutable views for schema transformations. Callers must re-Validate().
  std::vector<RecordTypeDef>& mutable_record_types() { return record_types_; }
  std::vector<SetDef>& mutable_sets() { return sets_; }
  std::vector<ConstraintDef>& mutable_constraints() { return constraints_; }

  /// Sets owned by `owner` record type / with `member` record type.
  std::vector<const SetDef*> SetsOwnedBy(const std::string& owner) const;
  std::vector<const SetDef*> SetsWithMember(const std::string& member) const;

  /// The set linking `owner` to `member`, if exactly one exists.
  const SetDef* FindSetBetween(const std::string& owner,
                               const std::string& member) const;

  /// Structural well-formedness: every set's owner/member exists, virtual
  /// fields resolve through a set to an owner field of matching type, set
  /// keys name member fields, constraints reference real objects.
  Status Validate() const;

  /// Serializes to the Figure 4.3 DDL dialect; `DdlParser` round-trips it.
  std::string ToDdl() const;

  /// Structural equality (used by transformation inverse tests).
  bool operator==(const Schema& other) const;

 private:
  std::string name_;
  std::vector<RecordTypeDef> record_types_;
  std::vector<SetDef> sets_;
  std::vector<ConstraintDef> constraints_;
};

}  // namespace dbpc

#endif  // DBPC_SCHEMA_SCHEMA_H_
