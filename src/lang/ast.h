#ifndef DBPC_LANG_AST_H_
#define DBPC_LANG_AST_H_

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/value.h"
#include "engine/find_query.h"
#include "engine/predicate.h"

namespace dbpc {

/// Arithmetic/string expression over host variables and literals.
/// Operators: + - * / on numbers, & for string concatenation.
struct HostExpr {
  enum class Kind { kLiteral, kVar, kBinary };
  Kind kind = Kind::kLiteral;
  Value literal;
  std::string var;
  char op = 0;
  /// Exactly two children for kBinary.
  std::vector<HostExpr> children;

  static HostExpr Lit(Value v) {
    HostExpr e;
    e.kind = Kind::kLiteral;
    e.literal = std::move(v);
    return e;
  }
  static HostExpr Var(std::string name) {
    HostExpr e;
    e.kind = Kind::kVar;
    e.var = std::move(name);
    return e;
  }
  static HostExpr Binary(char op, HostExpr lhs, HostExpr rhs) {
    HostExpr e;
    e.kind = Kind::kBinary;
    e.op = op;
    e.children.push_back(std::move(lhs));
    e.children.push_back(std::move(rhs));
    return e;
  }

  bool operator==(const HostExpr&) const = default;

  std::string ToString() const;
};

/// Boolean condition over host expressions (IF / WHILE guards).
struct HostCond {
  enum class Kind { kCompare, kAnd, kOr, kNot };
  Kind kind = Kind::kCompare;
  CompareOp op = CompareOp::kEq;
  /// Exactly two operands for kCompare (one for IS NULL forms).
  std::vector<HostExpr> operands;
  /// Two children for kAnd/kOr, one for kNot.
  std::vector<HostCond> children;

  static HostCond Compare(HostExpr lhs, CompareOp op, HostExpr rhs) {
    HostCond c;
    c.kind = Kind::kCompare;
    c.op = op;
    c.operands.push_back(std::move(lhs));
    c.operands.push_back(std::move(rhs));
    return c;
  }

  bool operator==(const HostCond&) const = default;

  std::string ToString() const;
};

/// A navigational (CODASYL-dialect) FIND statement.
struct NavFind {
  enum class Mode { kAny, kDuplicate, kFirst, kNext, kOwner };
  Mode mode = Mode::kAny;
  std::string record_type;  ///< empty for kOwner
  std::string set_name;     ///< kFirst/kNext/kOwner
  /// Qualification for kAny/kDuplicate; USING predicate for kFirst/kNext.
  std::optional<Predicate> pred;

  bool operator==(const NavFind&) const = default;

  std::string ToString() const;
};

/// Statement kinds of CPL, the framework's host language. The language
/// deliberately contains two embedded DML levels:
///  - the high-level Maryland DML (FOR EACH over FIND paths, qualified
///    STORE/MODIFY/DELETE), and
///  - the navigational CODASYL dialect (FIND FIRST/NEXT with currency,
///    GET, navigational STORE/MODIFY/ERASE, CONNECT/DISCONNECT),
/// because the paper's program analysis problem is precisely recognizing
/// the second and lifting it to the level of the first.
enum class StmtKind {
  kLet,
  kDisplay,
  kAccept,
  kRead,
  kWrite,
  kIf,
  kWhile,
  kForEach,
  kRetrieve,
  kGetField,   ///< GET <field> OF <cursor> INTO <var>
  kStore,      ///< Maryland STORE with WHERE owner selection
  kModify,     ///< MODIFY <cursor> SET (...)
  kDelete,     ///< DELETE <cursor>
  kNavFind,
  kNavGet,     ///< GET <field> INTO <var> (current of run-unit)
  kNavStore,   ///< STORE <type> (...) USING CURRENCY
  kNavModify,  ///< MODIFY SET (...)
  kNavErase,   ///< ERASE
  kConnect,
  kDisconnect,
  kCallDml,  ///< CALL DML(<verb-var>, <type>) — run-time-variable DML verb
  kStop,
};

const char* StmtKindName(StmtKind kind);

/// Where an emitted statement came from. Every statement the converter,
/// emulator or optimizer emits carries one of these: the pre-order index of
/// the source statement it descends from, the conversion strategy, and the
/// last rewrite rule that produced or modified it. Provenance is
/// observability metadata only — it is excluded from Stmt equality and from
/// ToSource(), so it can never affect comparisons, round-trips or traces.
struct Provenance {
  /// Pre-order index into the numbered (lifted) source program; statements
  /// synthesized by a rule inherit the id of their nearest stamped
  /// neighbour, so every emitted statement maps to a source statement.
  int source_stmt_id = -1;
  /// Conversion strategy that emitted the statement: "rewrite",
  /// "emulation", "optimizer".
  std::string strategy;
  /// The transformation / rewrite rule, e.g. "introduce-record";
  /// "source" for statements passed through unchanged.
  std::string rule;
  std::string note;

  bool operator==(const Provenance&) const = default;

  /// e.g. `src 2 via rewrite/introduce-record`.
  std::string ToString() const;
};

/// One statement. A single struct with per-kind fields keeps program
/// rewriting (the Program Converter's job) simple and uniform.
struct Stmt {
  StmtKind kind = StmtKind::kStop;

  // kLet/kAccept/kRead/kGetField/kNavGet: assignment target.
  std::string target_var;
  // kRead/kWrite: non-database file name.
  std::string file;
  // kLet (single), kDisplay/kWrite (list).
  std::vector<HostExpr> exprs;
  // kIf/kWhile guard.
  std::optional<HostCond> cond;
  // kIf THEN / kWhile / kForEach body.
  std::vector<Stmt> body;
  // kIf ELSE body.
  std::vector<Stmt> else_body;
  // kForEach/kGetField/kModify/kDelete: cursor name.
  std::string cursor;
  // kForEach/kRetrieve: the retrieval; empty when iterating a collection.
  std::optional<Retrieval> retrieval;
  // kForEach over a previously retrieved collection variable.
  std::string collection_var;
  // kStore/kNavStore/kCallDml: record type.
  std::string record_type;
  // kStore/kNavStore/kModify/kNavModify: field assignments.
  std::vector<std::pair<std::string, HostExpr>> assignments;

  /// Owner selection of a Maryland STORE: connect into `set_name` choosing
  /// the owner record satisfying `pred` (must identify exactly one).
  struct OwnerSelect {
    std::string set_name;
    Predicate pred;
    bool operator==(const OwnerSelect&) const = default;
  };
  std::vector<OwnerSelect> owners;

  // kNavFind payload.
  std::optional<NavFind> nav_find;
  // kGetField/kNavGet: field name. kConnect/kDisconnect: unused.
  std::string field;
  // kConnect/kDisconnect: set name.
  std::string set_name;
  // kCallDml: host variable holding the DML verb at run time.
  std::string verb_var;

  /// Conversion provenance; unset on freshly parsed programs. Deliberately
  /// NOT part of operator== (two programs differing only in provenance are
  /// the same program).
  std::optional<Provenance> prov;

  /// Compares every field except `prov`.
  bool operator==(const Stmt&) const;

  /// Renders this statement (and nested blocks) as CPL source.
  void AppendSource(std::string* out, int indent) const;
};

/// A complete CPL database program.
struct Program {
  std::string name;
  std::vector<Stmt> body;

  bool operator==(const Program&) const = default;

  /// Canonical source text; `ParseProgram` round-trips it.
  std::string ToSource() const;

  /// Total statement count including nested blocks (program size metric
  /// for the analyzer-throughput experiment).
  size_t StatementCount() const;
};

/// Statement-tree traversal helpers (pre-order). The mutable visitor is the
/// workhorse of the Program Converter.
void VisitStmts(const std::vector<Stmt>& body,
                const std::function<void(const Stmt&)>& fn);
void VisitStmtsMutable(std::vector<Stmt>* body,
                       const std::function<void(Stmt*)>& fn);

}  // namespace dbpc

#endif  // DBPC_LANG_AST_H_
