#ifndef DBPC_LANG_PARSER_H_
#define DBPC_LANG_PARSER_H_

#include <string>

#include "common/result.h"
#include "lang/ast.h"

namespace dbpc {

/// Parses a CPL program:
///
///   PROGRAM <name>.
///     <statement>*
///   END PROGRAM.
///
/// Statements are '.'-terminated. The statement grammar is documented on
/// `StmtKind`; `Program::ToSource()` produces text this parser accepts
/// (round-trip property, tested).
Result<Program> ParseProgram(const std::string& text);

/// Parses a single statement (testing / template construction aid).
Result<Stmt> ParseStatement(const std::string& text);

}  // namespace dbpc

#endif  // DBPC_LANG_PARSER_H_
