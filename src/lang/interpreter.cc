#include "lang/interpreter.h"

#include "common/string_util.h"

namespace dbpc {

Interpreter::Interpreter(Database* db, IoScript script, RunOptions options)
    : db_(db), machine_(db), script_(std::move(script)), options_(options) {}

namespace {

/// Folds the engine operations a statement incurred into its span; only
/// counters that moved are recorded.
void AddOpStatsDelta(const SpanContext& span, const OpStats& before,
                     const OpStats& after) {
  auto add = [&](const char* name, uint64_t b, uint64_t a) {
    if (a > b) span.AddCounter(name, a - b);
  };
  add("records_read", before.records_read, after.records_read);
  add("records_written", before.records_written, after.records_written);
  add("records_erased", before.records_erased, after.records_erased);
  add("members_scanned", before.members_scanned, after.members_scanned);
  add("links_changed", before.links_changed, after.links_changed);
  add("index_probes", before.index_probes, after.index_probes);
  add("index_hits", before.index_hits, after.index_hits);
}

}  // namespace

Result<RunResult> Interpreter::Run(const Program& program, SpanContext span) {
  trace_.Clear();
  vars_.clear();
  collections_.clear();
  cursors_.clear();
  file_pos_.clear();
  terminal_pos_ = 0;
  steps_ = 0;
  stopped_ = false;
  status_ = db_status::kOk;
  machine_.Reset();

  if (!span.enabled()) {
    DBPC_RETURN_IF_ERROR(ExecBlock(program.body));
  } else {
    for (const Stmt& stmt : program.body) {
      if (stopped_) break;
      SpanContext stmt_span = span.StartChild(StmtKindName(stmt.kind));
      if (stmt.prov.has_value()) {
        stmt_span.SetAttribute("src",
                               std::to_string(stmt.prov->source_stmt_id));
        stmt_span.SetAttribute("rule", stmt.prov->rule);
      }
      OpStats before = db_->stats();
      Status s = ExecStmt(stmt);
      AddOpStatsDelta(stmt_span, before, db_->stats());
      stmt_span.End();
      DBPC_RETURN_IF_ERROR(s);
    }
  }

  RunResult result;
  result.trace = trace_;
  result.steps = steps_;
  result.completed = true;
  return result;
}

Result<Value> Interpreter::LookupVar(const std::string& name) const {
  if (name == "DB-STATUS") return Value::String(status_);
  auto it = vars_.find(name);
  if (it == vars_.end()) return Value::Null();
  return it->second;
}

Result<Value> Interpreter::EvalExpr(const HostExpr& expr) const {
  switch (expr.kind) {
    case HostExpr::Kind::kLiteral:
      return expr.literal;
    case HostExpr::Kind::kVar:
      return LookupVar(expr.var);
    case HostExpr::Kind::kBinary: {
      DBPC_ASSIGN_OR_RETURN(Value lhs, EvalExpr(expr.children[0]));
      DBPC_ASSIGN_OR_RETURN(Value rhs, EvalExpr(expr.children[1]));
      if (expr.op == '&') {
        return Value::String(lhs.ToDisplay() + rhs.ToDisplay());
      }
      if (lhs.is_null() || rhs.is_null()) return Value::Null();
      if (lhs.is_int() && rhs.is_int() && expr.op != '/') {
        int64_t a = lhs.as_int(), b = rhs.as_int();
        switch (expr.op) {
          case '+':
            return Value::Int(a + b);
          case '-':
            return Value::Int(a - b);
          case '*':
            return Value::Int(a * b);
        }
      }
      DBPC_ASSIGN_OR_RETURN(double a, lhs.ToNumeric());
      DBPC_ASSIGN_OR_RETURN(double b, rhs.ToNumeric());
      switch (expr.op) {
        case '+':
          return Value::Double(a + b);
        case '-':
          return Value::Double(a - b);
        case '*':
          return Value::Double(a * b);
        case '/':
          if (b == 0) return Status::InvalidArgument("division by zero");
          if (lhs.is_int() && rhs.is_int()) {
            return Value::Int(lhs.as_int() / rhs.as_int());
          }
          return Value::Double(a / b);
      }
      return Status::Internal("unknown operator");
    }
  }
  return Status::Internal("corrupt expression");
}

Result<bool> Interpreter::EvalCond(const HostCond& cond) const {
  switch (cond.kind) {
    case HostCond::Kind::kCompare: {
      DBPC_ASSIGN_OR_RETURN(Value lhs, EvalExpr(cond.operands[0]));
      if (cond.op == CompareOp::kIsNull) return lhs.is_null();
      if (cond.op == CompareOp::kIsNotNull) return !lhs.is_null();
      DBPC_ASSIGN_OR_RETURN(Value rhs, EvalExpr(cond.operands[1]));
      std::optional<int> cmp = QueryCompare(lhs, rhs);
      if (!cmp.has_value()) return false;
      switch (cond.op) {
        case CompareOp::kEq:
          return *cmp == 0;
        case CompareOp::kNe:
          return *cmp != 0;
        case CompareOp::kLt:
          return *cmp < 0;
        case CompareOp::kLe:
          return *cmp <= 0;
        case CompareOp::kGt:
          return *cmp > 0;
        case CompareOp::kGe:
          return *cmp >= 0;
        default:
          return Status::Internal("unexpected comparison op");
      }
    }
    case HostCond::Kind::kAnd: {
      DBPC_ASSIGN_OR_RETURN(bool l, EvalCond(cond.children[0]));
      if (!l) return false;
      return EvalCond(cond.children[1]);
    }
    case HostCond::Kind::kOr: {
      DBPC_ASSIGN_OR_RETURN(bool l, EvalCond(cond.children[0]));
      if (l) return true;
      return EvalCond(cond.children[1]);
    }
    case HostCond::Kind::kNot: {
      DBPC_ASSIGN_OR_RETURN(bool l, EvalCond(cond.children[0]));
      return !l;
    }
  }
  return Status::Internal("corrupt condition");
}

HostEnv Interpreter::MakeHostEnv() const {
  return [this](const std::string& name) { return LookupVar(name); };
}

CollectionEnv Interpreter::MakeCollectionEnv() const {
  return [this](const std::string& name) -> Result<std::vector<RecordId>> {
    auto it = collections_.find(name);
    if (it != collections_.end()) return it->second;
    // A FOR EACH cursor in scope acts as a one-record collection, so
    // nested FIND paths can start from the current record of an enclosing
    // loop (the lifted form of nested navigational scans).
    auto cursor = cursors_.find(name);
    if (cursor != cursors_.end()) {
      return std::vector<RecordId>{cursor->second};
    }
    return Status::NotFound("collection variable " + name);
  };
}

Result<std::vector<RecordId>> Interpreter::EvalRetrieval(
    const Retrieval& retrieval) {
  Retrieval resolved = retrieval;
  DBPC_RETURN_IF_ERROR(ResolveFindQuery(db_->schema(), &resolved.query));
  return EvaluateRetrieval(*db_, resolved, MakeHostEnv(), MakeCollectionEnv());
}

Result<FieldMap> Interpreter::EvalAssignments(
    const std::vector<std::pair<std::string, HostExpr>>& assignments) const {
  FieldMap fields;
  for (const auto& [name, expr] : assignments) {
    DBPC_ASSIGN_OR_RETURN(Value v, EvalExpr(expr));
    fields[ToUpper(name)] = std::move(v);
  }
  return fields;
}

Status Interpreter::ExecBlock(const std::vector<Stmt>& body) {
  for (const Stmt& stmt : body) {
    if (stopped_) return Status::OK();
    DBPC_RETURN_IF_ERROR(ExecStmt(stmt));
  }
  return Status::OK();
}

Status Interpreter::ExecForEach(const Stmt& stmt) {
  std::vector<RecordId> ids;
  if (stmt.retrieval.has_value()) {
    DBPC_ASSIGN_OR_RETURN(ids, EvalRetrieval(*stmt.retrieval));
  } else {
    auto it = collections_.find(stmt.collection_var);
    if (it == collections_.end()) {
      return Status::NotFound("collection variable " + stmt.collection_var);
    }
    ids = it->second;
  }
  auto saved = cursors_.find(stmt.cursor) != cursors_.end()
                   ? std::optional<RecordId>(cursors_[stmt.cursor])
                   : std::nullopt;
  for (RecordId id : ids) {
    if (stopped_) break;
    if (!db_->Exists(id)) continue;  // erased by an earlier iteration
    cursors_[stmt.cursor] = id;
    DBPC_RETURN_IF_ERROR(ExecBlock(stmt.body));
  }
  if (saved.has_value()) {
    cursors_[stmt.cursor] = *saved;
  } else {
    cursors_.erase(stmt.cursor);
  }
  return Status::OK();
}

Status Interpreter::ExecStore(const Stmt& stmt) {
  DBPC_ASSIGN_OR_RETURN(FieldMap fields, EvalAssignments(stmt.assignments));
  StoreRequest request;
  request.type = stmt.record_type;
  request.fields = std::move(fields);
  for (const Stmt::OwnerSelect& sel : stmt.owners) {
    const SetDef* set = db_->schema().FindSet(sel.set_name);
    if (set == nullptr) return Status::NotFound("set " + sel.set_name);
    if (set->system_owned()) continue;  // implicit
    DBPC_ASSIGN_OR_RETURN(
        std::vector<RecordId> owners,
        db_->SelectWhere(set->owner, sel.pred, MakeHostEnv()));
    if (owners.size() != 1) {
      // Ambiguous or missing owner: the store fails like a DBTG set
      // selection failure; the program sees DB-STATUS 0326.
      status_ = db_status::kNotFound;
      return Status::OK();
    }
    request.connect[set->name] = owners[0];
  }
  Result<RecordId> id = db_->StoreRecord(request);
  if (!id.ok()) {
    if (id.status().code() == StatusCode::kConstraintViolation) {
      status_ = db_status::kNotFound;
      return Status::OK();
    }
    return id.status();
  }
  status_ = db_status::kOk;
  return Status::OK();
}

Status Interpreter::ExecCallDml(const Stmt& stmt) {
  DBPC_ASSIGN_OR_RETURN(Value verb, LookupVar(stmt.verb_var));
  std::string v = ToUpper(verb.ToDisplay());
  if (v == "FIND") {
    DBPC_RETURN_IF_ERROR(
        machine_.FindAny(stmt.record_type, nullptr, MakeHostEnv()));
  } else if (v == "ERASE") {
    DBPC_RETURN_IF_ERROR(
        machine_.FindAny(stmt.record_type, nullptr, MakeHostEnv()));
    if (machine_.db_status() == db_status::kOk) {
      DBPC_RETURN_IF_ERROR(machine_.Erase());
    }
  } else {
    return Status::InvalidArgument("CALL DML verb '" + v + "' unsupported");
  }
  status_ = machine_.db_status();
  return Status::OK();
}

Status Interpreter::ExecStmt(const Stmt& stmt) {
  if (++steps_ > options_.max_steps) {
    return Status::Internal("step limit exceeded");
  }
  switch (stmt.kind) {
    case StmtKind::kLet: {
      DBPC_ASSIGN_OR_RETURN(Value v, EvalExpr(stmt.exprs[0]));
      vars_[stmt.target_var] = std::move(v);
      return Status::OK();
    }
    case StmtKind::kDisplay: {
      std::string line;
      for (const HostExpr& e : stmt.exprs) {
        DBPC_ASSIGN_OR_RETURN(Value v, EvalExpr(e));
        line += v.ToDisplay();
      }
      trace_.RecordTerminalOut(std::move(line));
      return Status::OK();
    }
    case StmtKind::kAccept: {
      if (terminal_pos_ < script_.terminal_input.size()) {
        const std::string& line = script_.terminal_input[terminal_pos_++];
        vars_[stmt.target_var] = Value::String(line);
        trace_.RecordTerminalIn(line);
      } else {
        vars_[stmt.target_var] = Value::Null();
        trace_.RecordTerminalIn("<eof>");
      }
      return Status::OK();
    }
    case StmtKind::kRead: {
      auto file_it = script_.input_files.find(stmt.file);
      size_t& pos = file_pos_[stmt.file];
      if (file_it != script_.input_files.end() &&
          pos < file_it->second.size()) {
        const std::string& line = file_it->second[pos++];
        vars_[stmt.target_var] = Value::String(line);
        trace_.RecordFileRead(stmt.file, line);
      } else {
        vars_[stmt.target_var] = Value::Null();
        trace_.RecordFileRead(stmt.file, "<eof>");
      }
      return Status::OK();
    }
    case StmtKind::kWrite: {
      std::string line;
      for (const HostExpr& e : stmt.exprs) {
        DBPC_ASSIGN_OR_RETURN(Value v, EvalExpr(e));
        line += v.ToDisplay();
      }
      trace_.RecordFileWrite(stmt.file, std::move(line));
      return Status::OK();
    }
    case StmtKind::kIf: {
      DBPC_ASSIGN_OR_RETURN(bool taken, EvalCond(*stmt.cond));
      return ExecBlock(taken ? stmt.body : stmt.else_body);
    }
    case StmtKind::kWhile: {
      while (true) {
        if (stopped_) return Status::OK();
        if (++steps_ > options_.max_steps) {
          return Status::Internal("step limit exceeded");
        }
        DBPC_ASSIGN_OR_RETURN(bool keep, EvalCond(*stmt.cond));
        if (!keep) return Status::OK();
        DBPC_RETURN_IF_ERROR(ExecBlock(stmt.body));
      }
    }
    case StmtKind::kForEach:
      return ExecForEach(stmt);
    case StmtKind::kRetrieve: {
      DBPC_ASSIGN_OR_RETURN(std::vector<RecordId> ids,
                            EvalRetrieval(*stmt.retrieval));
      collections_[stmt.target_var] = std::move(ids);
      return Status::OK();
    }
    case StmtKind::kGetField: {
      auto it = cursors_.find(stmt.cursor);
      if (it == cursors_.end()) {
        return Status::NotFound("cursor " + stmt.cursor);
      }
      DBPC_ASSIGN_OR_RETURN(Value v, db_->GetField(it->second, stmt.field));
      vars_[stmt.target_var] = std::move(v);
      return Status::OK();
    }
    case StmtKind::kStore:
      return ExecStore(stmt);
    case StmtKind::kModify: {
      auto it = cursors_.find(stmt.cursor);
      if (it == cursors_.end()) {
        return Status::NotFound("cursor " + stmt.cursor);
      }
      DBPC_ASSIGN_OR_RETURN(FieldMap updates,
                            EvalAssignments(stmt.assignments));
      Status s = db_->ModifyRecord(it->second, updates);
      if (!s.ok() && s.code() == StatusCode::kConstraintViolation) {
        status_ = db_status::kNotFound;
        return Status::OK();
      }
      if (s.ok()) status_ = db_status::kOk;
      return s;
    }
    case StmtKind::kDelete: {
      auto it = cursors_.find(stmt.cursor);
      if (it == cursors_.end()) {
        return Status::NotFound("cursor " + stmt.cursor);
      }
      Status s = db_->EraseRecord(it->second);
      if (!s.ok() && s.code() == StatusCode::kConstraintViolation) {
        status_ = db_status::kNotFound;
        return Status::OK();
      }
      if (s.ok()) status_ = db_status::kOk;
      return s;
    }
    case StmtKind::kNavFind: {
      const NavFind& nav = *stmt.nav_find;
      const Predicate* pred =
          nav.pred.has_value() ? &nav.pred.value() : nullptr;
      Status s;
      switch (nav.mode) {
        case NavFind::Mode::kAny:
          s = machine_.FindAny(nav.record_type, pred, MakeHostEnv());
          break;
        case NavFind::Mode::kDuplicate:
          s = machine_.FindDuplicate(nav.record_type, pred, MakeHostEnv());
          break;
        case NavFind::Mode::kFirst:
          s = machine_.FindFirst(nav.record_type, nav.set_name, pred,
                                 MakeHostEnv());
          break;
        case NavFind::Mode::kNext:
          s = machine_.FindNext(nav.record_type, nav.set_name, pred,
                                MakeHostEnv());
          break;
        case NavFind::Mode::kOwner:
          s = machine_.FindOwner(nav.set_name);
          break;
      }
      DBPC_RETURN_IF_ERROR(s);
      status_ = machine_.db_status();
      return Status::OK();
    }
    case StmtKind::kNavGet: {
      DBPC_ASSIGN_OR_RETURN(Value v, machine_.Get(stmt.field));
      vars_[stmt.target_var] = std::move(v);
      return Status::OK();
    }
    case StmtKind::kNavStore: {
      DBPC_ASSIGN_OR_RETURN(FieldMap fields,
                            EvalAssignments(stmt.assignments));
      DBPC_RETURN_IF_ERROR(machine_.StoreRecord(stmt.record_type, fields));
      status_ = machine_.db_status();
      return Status::OK();
    }
    case StmtKind::kNavModify: {
      DBPC_ASSIGN_OR_RETURN(FieldMap updates,
                            EvalAssignments(stmt.assignments));
      DBPC_RETURN_IF_ERROR(machine_.Modify(updates));
      status_ = machine_.db_status();
      return Status::OK();
    }
    case StmtKind::kNavErase: {
      DBPC_RETURN_IF_ERROR(machine_.Erase());
      status_ = machine_.db_status();
      return Status::OK();
    }
    case StmtKind::kConnect: {
      DBPC_RETURN_IF_ERROR(machine_.Connect(stmt.set_name));
      status_ = machine_.db_status();
      return Status::OK();
    }
    case StmtKind::kDisconnect: {
      DBPC_RETURN_IF_ERROR(machine_.Disconnect(stmt.set_name));
      status_ = machine_.db_status();
      return Status::OK();
    }
    case StmtKind::kCallDml:
      return ExecCallDml(stmt);
    case StmtKind::kStop:
      stopped_ = true;
      return Status::OK();
  }
  return Status::Internal("corrupt statement");
}

}  // namespace dbpc
