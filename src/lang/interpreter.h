#ifndef DBPC_LANG_INTERPRETER_H_
#define DBPC_LANG_INTERPRETER_H_

#include <map>
#include <string>
#include <vector>

#include "codasyl/machine.h"
#include "common/span.h"
#include "common/trace.h"
#include "engine/database.h"
#include "lang/ast.h"

namespace dbpc {

/// Interpreter limits.
struct RunOptions {
  /// Statement executions before the run aborts (runaway-loop guard for
  /// generated corpus programs).
  size_t max_steps = 2'000'000;
};

/// Outcome of one program run.
struct RunResult {
  /// The observable (non-database) behaviour — what "runs equivalently"
  /// compares (paper section 1.1).
  Trace trace;
  /// Statements executed.
  size_t steps = 0;
  /// True when the program ended via STOP or by falling off the end (as
  /// opposed to the step limit, which returns an error instead).
  bool completed = false;
};

/// Executes CPL programs against a database. Each `Run` starts from fresh
/// host state (variables, currency, file positions) but shares the
/// database, so a sequence of runs models an application system's programs
/// operating on one database.
class Interpreter {
 public:
  /// `db` must outlive the interpreter. `script` supplies terminal input
  /// and the contents of non-database input files.
  Interpreter(Database* db, IoScript script, RunOptions options = {});

  /// Runs the program to completion; the trace captures terminal and file
  /// I/O. Database errors that a 1979 application would see as DB-STATUS
  /// codes do not abort the run; genuine misuse (unknown names, type
  /// errors) returns a non-OK status.
  ///
  /// With an enabled `span`, each top-level statement gets a child span
  /// (named by its statement kind, provenance as attributes) carrying the
  /// engine OpStats deltas the statement incurred — nested statements'
  /// operations roll up into their top-level statement's span. Tracing
  /// never changes execution or the trace.
  Result<RunResult> Run(const Program& program, SpanContext span = {});

  /// The DB-STATUS register visible to the last run's final statement
  /// (exposed for tests).
  const std::string& last_db_status() const { return status_; }

 private:
  Result<Value> EvalExpr(const HostExpr& expr) const;
  Result<bool> EvalCond(const HostCond& cond) const;
  Result<Value> LookupVar(const std::string& name) const;
  HostEnv MakeHostEnv() const;
  CollectionEnv MakeCollectionEnv() const;

  Status ExecBlock(const std::vector<Stmt>& body);
  Status ExecStmt(const Stmt& stmt);
  Status ExecForEach(const Stmt& stmt);
  Status ExecStore(const Stmt& stmt);
  Status ExecCallDml(const Stmt& stmt);

  Result<std::vector<RecordId>> EvalRetrieval(const Retrieval& retrieval);
  Result<FieldMap> EvalAssignments(
      const std::vector<std::pair<std::string, HostExpr>>& assignments) const;

  Database* db_;
  CodasylMachine machine_;
  IoScript script_;
  RunOptions options_;

  Trace trace_;
  std::map<std::string, Value> vars_;
  std::map<std::string, std::vector<RecordId>> collections_;
  std::map<std::string, RecordId> cursors_;
  std::map<std::string, size_t> file_pos_;
  size_t terminal_pos_ = 0;
  size_t steps_ = 0;
  bool stopped_ = false;
  std::string status_ = "0000";
};

}  // namespace dbpc

#endif  // DBPC_LANG_INTERPRETER_H_
